// Instrumentation hook layer: how the hot code paths (model/Evaluator, the
// assign/ solvers, core/controller, sweep/Engine) report into a
// MetricsRegistry without paying registry lookups per event.
//
// Usage at an instrumentation site:
//
//   if (obs::MetricsScope* s = obs::CurrentScope()) {
//     s->solver.swap_evaluated.Add(1);
//   }
//
// A MetricsScope pre-resolves every hook counter against one registry (a
// handful of mutex-guarded lookups, paid once per ScopedMetrics install —
// e.g. once per sweep task); the hot path is then one thread-local load,
// one branch, and a relaxed atomic add. With no scope installed the hooks
// cost the load+branch only, so un-instrumented runs (every existing test
// and bench) are unaffected.
//
// Compile-time kill switch: building with -DWOLT_OBS=OFF (CMake) defines
// WOLT_OBS_ENABLED=0, CurrentScope() becomes a constexpr nullptr, and every
// hook folds to dead code — zero overhead, verified by the bench guard in
// bench_scaling_runtime.cc. The obs library itself (metrics, tracer) always
// builds; only the hooks vanish.
#pragma once

#include <cstdint>

#include "obs/metrics.h"

#ifndef WOLT_OBS_ENABLED
#define WOLT_OBS_ENABLED 1
#endif

namespace wolt::obs {

// Shared bucket edges for timing histograms: latency decades, 1µs..10s.
// Everything that registers a *_us histogram uses these bounds so per-task
// snapshots always merge cleanly.
inline constexpr double kLatencyBoundsUs[] = {1.0, 10.0, 100.0, 1000.0,
                                              1e4, 1e5,  1e6,   1e7};

#if WOLT_OBS_ENABLED

// --- Hook counter bundles, resolved once per scope ----------------------

// model/Evaluator: work volume and bottleneck attribution.
struct EvalCounters {
  explicit EvalCounters(MetricsRegistry& r);
  Counter& evaluations;          // full Evaluate() calls
  Counter& bottleneck_wifi;      // per-extender tallies per evaluation
  Counter& bottleneck_plc;
  Counter& bottleneck_balanced;
  Counter& bottleneck_idle;
  Counter& dead_backhaul;        // extenders skipped for a dead PLC link
  Counter& maxmin_rounds;        // progressive-filling rebalance iterations
};

// assign/ solvers: Hungarian, Phase-II local search, NLP.
struct SolverCounters {
  explicit SolverCounters(MetricsRegistry& r);
  Counter& hungarian_solves;
  Counter& hungarian_augment_steps;

  // Candidate accounting for the relocation and swap stages. Invariant
  // (asserted per-instance by tests/solver_differential_test.cc): every
  // generated candidate is either pruned or evaluated, and only evaluated
  // candidates can be accepted.
  Counter& relocate_generated;
  Counter& relocate_pruned;
  Counter& relocate_evaluated;
  Counter& relocate_accepted;
  Counter& swap_generated;
  Counter& swap_pruned;
  Counter& swap_evaluated;
  Counter& swap_accepted;
  Counter& ls_passes;
  Counter& ls_memo_skips;   // whole user scans skipped by mutation memos
  Counter& ls_inserts;      // greedy-insertion placements

  Counter& nlp_solves;
  Counter& nlp_iterations;  // accepted ascent steps
  Counter& nlp_backtracks;  // rejected trial steps

  // util::SolverArena block growth. Flat across a window of solves ==
  // those solves ran allocation-free (the steady-state assertion of
  // tests/solver_differential_test.cc).
  Counter& arena_grows;
  Counter& arena_block_bytes;

  // In-solve parallel multi-start: total starts searched and how many of
  // them ran under a thread pool (0 for the serial path).
  Counter& ls_starts;
  Counter& ls_parallel_starts;
};

// core/CentralController: control-plane traffic and safety valves.
struct ControllerCounters {
  explicit ControllerCounters(MetricsRegistry& r);
  Counter& directives_sent;      // first transmissions
  Counter& directives_retried;   // retransmissions from CollectRetries
  Counter& directives_given_up;
  Counter& acks;                 // accepted (pending directive cleared)
  Counter& acks_stale;           // superseded/duplicate acks ignored
  Counter& evictions;            // stale users reaped
  Counter& reopt_guard_trips;    // do-no-harm fallback taken
  Counter& policy_runs;
  // Anytime degradation ladder: which tier served each budgeted epoch.
  Counter& reopt_tier_full;      // full policy fit the budget
  Counter& reopt_tier_hungarian; // Hungarian-only fallback served
  Counter& reopt_tier_greedy;    // greedy re-association served
  Counter& reopt_tier_hold;      // held last-good assignment
  Counter& reopt_tier_joint;     // joint association+channel tier served
  Counter& reopt_budget_overruns;  // budget expired before any tier fit
  // Flap quarantine: oscillating backhauls forced out of reoptimization.
  Counter& quarantine_trips;
  Counter& quarantine_releases;
};

// assign/joint: the alternating association + channel-assignment solver.
struct JointCounters {
  explicit JointCounters(MetricsRegistry& r);
  Counter& solves;          // SolveJointAlternating entries
  Counter& rounds;          // alternating rounds executed
  Counter& recolours;       // weighted recolour half-steps taken
  Counter& improvements;    // rounds whose candidate beat the incumbent
  Counter& converged;       // solves ending at a fixed point
  Counter& deadline_hits;   // solves truncated by deadline expiry
  Counter& bf_plans;        // channel plans enumerated by the joint BF
};

// fleet/Runtime: multi-building ingestion, shedding and supervision. The
// shed counters are the observable half of the overload contract: every
// message the bounded queue dropped is accounted here, per message class.
struct FleetCounters {
  explicit FleetCounters(MetricsRegistry& r);
  Counter& enqueued;             // messages accepted by the fleet queue
  Counter& delivered;            // messages drained into a shard batch
  Counter& shed_total;           // fleet.shed.messages (all classes)
  Counter& shed_scan;            // fleet.shed.scan
  Counter& shed_directive;       // fleet.shed.directive
  Counter& shed_capacity;        // fleet.shed.capacity
  Counter& shed_ack;             // fleet.shed.ack
  Counter& shed_departure;       // fleet.shed.departure
  Counter& dropped_unavailable;  // dropped: shard degraded or restarting
  Counter& restarts;             // supervisor-ordered shard restarts
  Counter& circuit_breaks;       // crash loops parked in Degraded
  Counter& probes;               // half-open probes of degraded shards
  Counter& reopt_scheduled;      // per-shard reoptimizations scheduled
  Counter& reopt_overruns;       // shard reopt blew its wall budget
};

// sim/workload + frontier replay: trace generation volume and the
// stickiness-frontier epoch accounting (oracle solves, reassociations).
struct WorkloadCounters {
  explicit WorkloadCounters(MetricsRegistry& r);
  Counter& traces;              // GenerateTrace calls
  Counter& events;              // total trace events generated
  Counter& arrivals;
  Counter& departures;
  Counter& moves;
  Counter& load_updates;        // offered-load curve samples/flips
  Counter& background_updates;  // contention-domain busy-share flips
  Counter& replay_events;       // trace events fed into a controller
  Counter& epochs;              // frontier reoptimization epochs
  Counter& oracle_solves;       // per-epoch oracle evaluations
  Counter& oracle_exact;        // ...of which were exact brute force
  Counter& reassociations;      // sticky users redirected at a boundary
};

// sweep/Engine: task accounting plus per-phase latency histograms. The
// histograms are timing-flagged — wall-clock is the one thread-count-
// dependent signal a sweep produces, and the deterministic snapshot section
// must exclude it (tests/obs_golden_test.cc).
struct SweepCounters {
  explicit SweepCounters(MetricsRegistry& r);
  Counter& tasks_completed;
  Counter& tasks_failed;
  Histogram& task_latency_us;       // timing
  Histogram& phase_generate_us;     // timing: scenario generation
  Histogram& phase_solve_us;        // timing: associate + evaluate
};

// io/vfs + util/fileio: storage-layer retries and audited write failures.
// write_errors is the headline "an artefact failed to persist" signal; the
// errno-classified splits let an operator tell disk-full from medium error.
struct IoCounters {
  explicit IoCounters(MetricsRegistry& r);
  Counter& write_errors;         // io.write_errors (all audited failures)
  Counter& write_errors_enospc;  // io.write_errors.enospc (ENOSPC/EDQUOT)
  Counter& write_errors_eio;     // io.write_errors.eio
  Counter& write_errors_other;   // io.write_errors.other
  Counter& retries_eintr;        // io.retries.eintr (write/fsync retried)
  Counter& short_writes;         // io.short_writes (partial write continued)
};

// recover/journal + recover/fleet_journal: graceful-degradation accounting.
// io_error counts failed appends; degraded counts the one-way flips into
// best-effort (journaling-disabled) mode; rot_truncated/torn_tail classify
// what replay discarded from the tail of a damaged journal.
struct RecoverCounters {
  explicit RecoverCounters(MetricsRegistry& r);
  Counter& journal_io_error;       // recover.journal.io_error
  Counter& journal_degraded;       // recover.journal.degraded
  Counter& journal_compact_failed; // recover.journal.compact_failed
  Counter& journal_rot_truncated;  // recover.journal.rot_truncated
  Counter& journal_torn_tail;      // recover.journal.torn_tail
  Counter& fleet_io_error;         // recover.fleet.io_error
  Counter& fleet_degraded;         // recover.fleet.degraded
  Counter& fleet_rot_truncated;    // recover.fleet.rot_truncated
  Counter& fleet_torn_tail;        // recover.fleet.torn_tail
};

// Every hook bundle bound to one registry.
struct MetricsScope {
  explicit MetricsScope(MetricsRegistry& r)
      : registry(r), eval(r), solver(r), joint(r), ctrl(r), fleet(r),
        workload(r), sweep(r), io(r), recover(r) {}
  MetricsRegistry& registry;
  EvalCounters eval;
  SolverCounters solver;
  JointCounters joint;
  ControllerCounters ctrl;
  FleetCounters fleet;
  WorkloadCounters workload;
  SweepCounters sweep;
  IoCounters io;
  RecoverCounters recover;
};

namespace internal {
inline thread_local MetricsScope* tls_scope = nullptr;
}  // namespace internal

// The calling thread's active scope, or nullptr when instrumentation is
// off. Hot-path contract: one thread-local load.
inline MetricsScope* CurrentScope() { return internal::tls_scope; }

// The registry behind the calling thread's scope, or nullptr. Lets a
// parallel region re-install the caller's registry on its worker threads
// (counter updates commute, so totals stay thread-count-independent).
inline MetricsRegistry* CurrentRegistry() {
  MetricsScope* s = CurrentScope();
  return s ? &s->registry : nullptr;
}

// RAII install of a scope on the calling thread. Nests: the previous scope
// is restored on destruction (an inner ScopedMetrics shadows, not merges).
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry& registry)
      : scope_(registry), prev_(internal::tls_scope) {
    internal::tls_scope = &scope_;
  }
  ~ScopedMetrics() { internal::tls_scope = prev_; }

  ScopedMetrics(const ScopedMetrics&) = delete;
  ScopedMetrics& operator=(const ScopedMetrics&) = delete;

  MetricsScope& scope() { return scope_; }

 private:
  MetricsScope scope_;
  MetricsScope* prev_;
};

#else  // WOLT_OBS_ENABLED == 0: hooks compile to nothing.

struct NoopCounter {
  void Add(std::uint64_t = 1) const {}
};
struct NoopHistogram {
  void Observe(double) const {}
};

struct EvalCounters {
  NoopCounter evaluations, bottleneck_wifi, bottleneck_plc,
      bottleneck_balanced, bottleneck_idle, dead_backhaul, maxmin_rounds;
};
struct SolverCounters {
  NoopCounter hungarian_solves, hungarian_augment_steps, relocate_generated,
      relocate_pruned, relocate_evaluated, relocate_accepted, swap_generated,
      swap_pruned, swap_evaluated, swap_accepted, ls_passes, ls_memo_skips,
      ls_inserts, nlp_solves, nlp_iterations, nlp_backtracks, arena_grows,
      arena_block_bytes, ls_starts, ls_parallel_starts;
};
struct ControllerCounters {
  NoopCounter directives_sent, directives_retried, directives_given_up,
      acks, acks_stale, evictions, reopt_guard_trips, policy_runs,
      reopt_tier_full, reopt_tier_hungarian, reopt_tier_greedy,
      reopt_tier_hold, reopt_tier_joint, reopt_budget_overruns,
      quarantine_trips, quarantine_releases;
};
struct JointCounters {
  NoopCounter solves, rounds, recolours, improvements, converged,
      deadline_hits, bf_plans;
};
struct FleetCounters {
  NoopCounter enqueued, delivered, shed_total, shed_scan, shed_directive,
      shed_capacity, shed_ack, shed_departure, dropped_unavailable, restarts,
      circuit_breaks, probes, reopt_scheduled, reopt_overruns;
};
struct WorkloadCounters {
  NoopCounter traces, events, arrivals, departures, moves, load_updates,
      background_updates, replay_events, epochs, oracle_solves, oracle_exact,
      reassociations;
};
struct SweepCounters {
  NoopCounter tasks_completed, tasks_failed;
  NoopHistogram task_latency_us, phase_generate_us, phase_solve_us;
};
struct IoCounters {
  NoopCounter write_errors, write_errors_enospc, write_errors_eio,
      write_errors_other, retries_eintr, short_writes;
};
struct RecoverCounters {
  NoopCounter journal_io_error, journal_degraded, journal_compact_failed,
      journal_rot_truncated, journal_torn_tail, fleet_io_error,
      fleet_degraded, fleet_rot_truncated, fleet_torn_tail;
};

struct MetricsScope {
  EvalCounters eval;
  SolverCounters solver;
  JointCounters joint;
  ControllerCounters ctrl;
  FleetCounters fleet;
  WorkloadCounters workload;
  SweepCounters sweep;
  IoCounters io;
  RecoverCounters recover;
};

constexpr MetricsScope* CurrentScope() { return nullptr; }
constexpr MetricsRegistry* CurrentRegistry() { return nullptr; }

// Accepts and ignores a registry so call sites compile unchanged; the
// registry stays empty (snapshots of an un-hooked run report nothing).
class ScopedMetrics {
 public:
  explicit ScopedMetrics(MetricsRegistry&) {}
};

#endif  // WOLT_OBS_ENABLED

}  // namespace wolt::obs
