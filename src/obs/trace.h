// Scoped tracing: RAII spans collected into a Tracer and exported as Chrome
// trace_event JSON (load into chrome://tracing or Perfetto) or as a
// plain-text per-span summary table.
//
// Timing is wall-clock and therefore never deterministic; traces are a
// profiling artefact, not a comparison artefact. The golden/differential
// tests validate only the *shape* of the output (well-formed JSON, properly
// nested spans), never the numbers.
//
// Cost model: constructing a ScopedTimer against a null tracer reads no
// clock and touches no shared state — benches leave tracing off and pay a
// branch. Event capture takes the tracer mutex (spans mark phase/task
// boundaries, not inner-loop iterations).
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace wolt::obs {

struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;   // since tracer construction
  double dur_us = 0.0;
  int tid = 0;
};

// Small dense id for the calling thread (0, 1, 2, ... in first-use order) —
// readable lane labels instead of opaque native handles.
int CurrentTraceTid();

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Microseconds since construction (the trace clock).
  double NowUs() const;

  void Record(std::string_view name, std::string_view category,
              double ts_us, double dur_us, int tid);

  std::size_t NumEvents() const;
  std::vector<TraceEvent> Events() const;

  // {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,"pid":1,
  //                  "tid":...},...]} — complete ("X") events only.
  std::string ChromeTraceJson() const;
  bool WriteChromeTrace(const std::string& path) const;

  // Per-span-name aggregate (count, total/mean/min/max µs) via util::Table.
  std::string SummaryTableString() const;

  // Process-wide tracer the instrumentation hooks emit to; null (the
  // default) disables span capture globally. The caller keeps ownership and
  // must SetGlobal(nullptr) before destroying the tracer.
  static Tracer* Global();
  static void SetGlobal(Tracer* tracer);

 private:
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// RAII span: records [construction, destruction) into `tracer` and, when
// `latency` is given, Observes the duration (µs) into that histogram. With
// both sinks null the timer is fully inert — no clock reads.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name,
                       std::string_view category = "wolt",
                       Tracer* tracer = Tracer::Global(),
                       Histogram* latency = nullptr);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  bool active() const { return tracer_ != nullptr || latency_ != nullptr; }

 private:
  Tracer* tracer_;
  Histogram* latency_;
  std::string name_;
  std::string category_;
  std::chrono::steady_clock::time_point start_{};
  double start_ts_us_ = 0.0;
};

}  // namespace wolt::obs
