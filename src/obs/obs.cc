#include "obs/obs.h"

#if WOLT_OBS_ENABLED

namespace wolt::obs {
namespace {

Histogram& LatencyHist(MetricsRegistry& r, std::string_view name) {
  return r.GetHistogram(name, kLatencyBoundsUs, /*timing=*/true);
}

}  // namespace

EvalCounters::EvalCounters(MetricsRegistry& r)
    : evaluations(r.GetCounter("eval.evaluations")),
      bottleneck_wifi(r.GetCounter("eval.bottleneck.wifi")),
      bottleneck_plc(r.GetCounter("eval.bottleneck.plc")),
      bottleneck_balanced(r.GetCounter("eval.bottleneck.balanced")),
      bottleneck_idle(r.GetCounter("eval.bottleneck.idle")),
      dead_backhaul(r.GetCounter("eval.dead_backhaul")),
      maxmin_rounds(r.GetCounter("eval.maxmin_rounds")) {}

SolverCounters::SolverCounters(MetricsRegistry& r)
    : hungarian_solves(r.GetCounter("hungarian.solves")),
      hungarian_augment_steps(r.GetCounter("hungarian.augment_steps")),
      relocate_generated(r.GetCounter("ls.relocate.generated")),
      relocate_pruned(r.GetCounter("ls.relocate.pruned")),
      relocate_evaluated(r.GetCounter("ls.relocate.evaluated")),
      relocate_accepted(r.GetCounter("ls.relocate.accepted")),
      swap_generated(r.GetCounter("ls.swap.generated")),
      swap_pruned(r.GetCounter("ls.swap.pruned")),
      swap_evaluated(r.GetCounter("ls.swap.evaluated")),
      swap_accepted(r.GetCounter("ls.swap.accepted")),
      ls_passes(r.GetCounter("ls.passes")),
      ls_memo_skips(r.GetCounter("ls.memo_skips")),
      ls_inserts(r.GetCounter("ls.inserts")),
      nlp_solves(r.GetCounter("nlp.solves")),
      nlp_iterations(r.GetCounter("nlp.iterations")),
      nlp_backtracks(r.GetCounter("nlp.backtracks")),
      arena_grows(r.GetCounter("arena.grows")),
      arena_block_bytes(r.GetCounter("arena.block_bytes")),
      ls_starts(r.GetCounter("ls.starts")),
      ls_parallel_starts(r.GetCounter("ls.parallel_starts")) {}

ControllerCounters::ControllerCounters(MetricsRegistry& r)
    : directives_sent(r.GetCounter("ctrl.directives.sent")),
      directives_retried(r.GetCounter("ctrl.directives.retried")),
      directives_given_up(r.GetCounter("ctrl.directives.given_up")),
      acks(r.GetCounter("ctrl.acks")),
      acks_stale(r.GetCounter("ctrl.acks.stale")),
      evictions(r.GetCounter("ctrl.evictions")),
      reopt_guard_trips(r.GetCounter("ctrl.reopt_guard_trips")),
      policy_runs(r.GetCounter("ctrl.policy_runs")),
      reopt_tier_full(r.GetCounter("ctrl.reopt.tier.full")),
      reopt_tier_hungarian(r.GetCounter("ctrl.reopt.tier.hungarian")),
      reopt_tier_greedy(r.GetCounter("ctrl.reopt.tier.greedy")),
      reopt_tier_hold(r.GetCounter("ctrl.reopt.tier.hold")),
      reopt_tier_joint(r.GetCounter("ctrl.reopt.tier.joint")),
      reopt_budget_overruns(r.GetCounter("ctrl.reopt.budget_overruns")),
      quarantine_trips(r.GetCounter("ctrl.quarantine.trips")),
      quarantine_releases(r.GetCounter("ctrl.quarantine.releases")) {}

JointCounters::JointCounters(MetricsRegistry& r)
    : solves(r.GetCounter("joint.solves")),
      rounds(r.GetCounter("joint.rounds")),
      recolours(r.GetCounter("joint.recolours")),
      improvements(r.GetCounter("joint.improvements")),
      converged(r.GetCounter("joint.converged")),
      deadline_hits(r.GetCounter("joint.deadline_hits")),
      bf_plans(r.GetCounter("joint.bf_plans")) {}

FleetCounters::FleetCounters(MetricsRegistry& r)
    : enqueued(r.GetCounter("fleet.queue.enqueued")),
      delivered(r.GetCounter("fleet.queue.delivered")),
      shed_total(r.GetCounter("fleet.shed.messages")),
      shed_scan(r.GetCounter("fleet.shed.scan")),
      shed_directive(r.GetCounter("fleet.shed.directive")),
      shed_capacity(r.GetCounter("fleet.shed.capacity")),
      shed_ack(r.GetCounter("fleet.shed.ack")),
      shed_departure(r.GetCounter("fleet.shed.departure")),
      dropped_unavailable(r.GetCounter("fleet.dropped.unavailable")),
      restarts(r.GetCounter("fleet.supervisor.restarts")),
      circuit_breaks(r.GetCounter("fleet.supervisor.circuit_breaks")),
      probes(r.GetCounter("fleet.supervisor.probes")),
      reopt_scheduled(r.GetCounter("fleet.reopt.scheduled")),
      reopt_overruns(r.GetCounter("fleet.reopt.overruns")) {}

WorkloadCounters::WorkloadCounters(MetricsRegistry& r)
    : traces(r.GetCounter("workload.traces")),
      events(r.GetCounter("workload.events")),
      arrivals(r.GetCounter("workload.arrivals")),
      departures(r.GetCounter("workload.departures")),
      moves(r.GetCounter("workload.moves")),
      load_updates(r.GetCounter("workload.load_updates")),
      background_updates(r.GetCounter("workload.background_updates")),
      replay_events(r.GetCounter("workload.replay.events")),
      epochs(r.GetCounter("workload.frontier.epochs")),
      oracle_solves(r.GetCounter("workload.oracle.solves")),
      oracle_exact(r.GetCounter("workload.oracle.exact")),
      reassociations(r.GetCounter("workload.frontier.reassociations")) {}

SweepCounters::SweepCounters(MetricsRegistry& r)
    : tasks_completed(r.GetCounter("sweep.tasks.completed")),
      tasks_failed(r.GetCounter("sweep.tasks.failed")),
      task_latency_us(LatencyHist(r, "sweep.task_latency_us")),
      phase_generate_us(LatencyHist(r, "sweep.phase.generate_us")),
      phase_solve_us(LatencyHist(r, "sweep.phase.solve_us")) {}

IoCounters::IoCounters(MetricsRegistry& r)
    : write_errors(r.GetCounter("io.write_errors")),
      write_errors_enospc(r.GetCounter("io.write_errors.enospc")),
      write_errors_eio(r.GetCounter("io.write_errors.eio")),
      write_errors_other(r.GetCounter("io.write_errors.other")),
      retries_eintr(r.GetCounter("io.retries.eintr")),
      short_writes(r.GetCounter("io.short_writes")) {}

RecoverCounters::RecoverCounters(MetricsRegistry& r)
    : journal_io_error(r.GetCounter("recover.journal.io_error")),
      journal_degraded(r.GetCounter("recover.journal.degraded")),
      journal_compact_failed(r.GetCounter("recover.journal.compact_failed")),
      journal_rot_truncated(r.GetCounter("recover.journal.rot_truncated")),
      journal_torn_tail(r.GetCounter("recover.journal.torn_tail")),
      fleet_io_error(r.GetCounter("recover.fleet.io_error")),
      fleet_degraded(r.GetCounter("recover.fleet.degraded")),
      fleet_rot_truncated(r.GetCounter("recover.fleet.rot_truncated")),
      fleet_torn_tail(r.GetCounter("recover.fleet.torn_tail")) {}

}  // namespace wolt::obs

#endif  // WOLT_OBS_ENABLED
