#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/table.h"

namespace wolt::obs {
namespace {

std::string FmtDouble(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  return buf;
}

std::string FmtU64(std::uint64_t x) { return std::to_string(x); }

std::uint64_t SaturatingAdd(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t sum = a + b;
  return sum < a ? ~std::uint64_t{0} : sum;
}

// Metric names are identifier-like by convention ("ls.swap.evaluated");
// escaping keeps the serializer total anyway.
void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendHistogramJson(std::string& out, const HistogramSample& h) {
  out += "{\"bounds\":[";
  for (std::size_t k = 0; k < h.bounds.size(); ++k) {
    if (k) out += ',';
    out += FmtDouble(h.bounds[k]);
  }
  out += "],\"counts\":[";
  for (std::size_t k = 0; k < h.counts.size(); ++k) {
    if (k) out += ',';
    out += FmtU64(h.counts[k]);
  }
  out += "],\"underflow\":" + FmtU64(h.underflow);
  out += ",\"overflow\":" + FmtU64(h.overflow);
  out += ",\"rejected\":" + FmtU64(h.rejected);
  out += '}';
}

// One {"counters":...,"gauges":...,"histograms":...} object over the
// samples matching `timing`.
void AppendSection(std::string& out, const MetricsSnapshot& snap,
                   bool timing) {
  out += "{\"counters\":{";
  bool first = true;
  for (const CounterSample& c : snap.counters) {
    if (c.timing != timing) continue;
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, c.name);
    out += ':';
    out += FmtU64(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const GaugeSample& g : snap.gauges) {
    if (g.timing != timing) continue;
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, g.name);
    out += ':';
    out += FmtDouble(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSample& h : snap.histograms) {
    if (h.timing != timing) continue;
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, h.name);
    out += ':';
    AppendHistogramJson(out, h);
  }
  out += "}}";
}

}  // namespace

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  if (bounds_.size() < 2) {
    throw std::invalid_argument("histogram needs >= 2 bucket edges");
  }
  for (std::size_t k = 0; k < bounds_.size(); ++k) {
    if (!std::isfinite(bounds_[k])) {
      throw std::invalid_argument("histogram edges must be finite");
    }
    if (k > 0 && !(bounds_[k - 1] < bounds_[k])) {
      throw std::invalid_argument(
          "histogram edges must be strictly increasing");
    }
  }
  counts_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() - 1);
}

void Histogram::Observe(double x) {
  if (std::isnan(x)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x < bounds_.front()) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x >= bounds_.back()) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Linear scan: bucket counts are small and fixed (latency decades), and
  // the scan beats binary search at these sizes.
  std::size_t k = 0;
  while (x >= bounds_[k + 1]) ++k;
  counts_[k].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = Underflow() + Overflow();
  for (const auto& c : counts_) {
    total += c.load(std::memory_order_relaxed);
  }
  return total;
}

const MetricsRegistry::Slot* MetricsRegistry::FindSlot(std::string_view name,
                                                       Kind kind,
                                                       bool timing) const {
  if (name.empty()) throw std::invalid_argument("empty metric name");
  const auto it = slots_.find(name);
  if (it == slots_.end()) return nullptr;
  if (it->second.kind != kind) {
    throw std::invalid_argument("metric '" + std::string(name) +
                                "' re-registered as a different kind");
  }
  if (it->second.timing != timing) {
    throw std::invalid_argument("metric '" + std::string(name) +
                                "' re-registered with a different timing "
                                "flag");
  }
  return &it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, bool timing) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const Slot* slot = FindSlot(name, Kind::kCounter, timing)) {
    return counters_[slot->index];
  }
  const std::size_t index = counters_.size();
  counters_.emplace_back();
  const auto [it, inserted] =
      slots_.emplace(std::string(name), Slot{Kind::kCounter, timing, index});
  counter_names_.push_back(&it->first);
  return counters_[index];
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, bool timing) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const Slot* slot = FindSlot(name, Kind::kGauge, timing)) {
    return gauges_[slot->index];
  }
  const std::size_t index = gauges_.size();
  gauges_.emplace_back();
  const auto [it, inserted] =
      slots_.emplace(std::string(name), Slot{Kind::kGauge, timing, index});
  gauge_names_.push_back(&it->first);
  return gauges_[index];
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> bounds,
                                         bool timing) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const Slot* slot = FindSlot(name, Kind::kHistogram, timing)) {
    Histogram& h = histograms_[slot->index];
    if (h.Bounds().size() != bounds.size() ||
        !std::equal(bounds.begin(), bounds.end(), h.Bounds().begin())) {
      throw std::invalid_argument("histogram '" + std::string(name) +
                                  "' re-registered with different bounds");
    }
    return h;
  }
  const std::size_t index = histograms_.size();
  histograms_.emplace_back(bounds);
  const auto [it, inserted] = slots_.emplace(
      std::string(name), Slot{Kind::kHistogram, timing, index});
  histogram_names_.push_back(&it->first);
  return histograms_[index];
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  // slots_ is name-ordered, so emitting in map order yields sorted samples.
  for (const auto& [name, slot] : slots_) {
    switch (slot.kind) {
      case Kind::kCounter:
        snap.counters.push_back(
            {name, slot.timing, counters_[slot.index].Value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back(
            {name, slot.timing, gauges_[slot.index].Value()});
        break;
      case Kind::kHistogram: {
        const Histogram& h = histograms_[slot.index];
        HistogramSample sample;
        sample.name = name;
        sample.timing = slot.timing;
        sample.bounds = h.Bounds();
        sample.counts.resize(h.NumBuckets());
        for (std::size_t k = 0; k < h.NumBuckets(); ++k) {
          sample.counts[k] = h.BucketCount(k);
        }
        sample.underflow = h.Underflow();
        sample.overflow = h.Overflow();
        sample.rejected = h.Rejected();
        snap.histograms.push_back(std::move(sample));
        break;
      }
    }
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

// Merge one sorted sample vector into another with kind-specific folding.
template <typename Sample, typename Fold>
void MergeSamples(std::vector<Sample>& into, const std::vector<Sample>& from,
                  const Fold& fold) {
  std::vector<Sample> merged;
  merged.reserve(into.size() + from.size());
  std::size_t a = 0, b = 0;
  while (a < into.size() || b < from.size()) {
    if (b == from.size() ||
        (a < into.size() && into[a].name < from[b].name)) {
      merged.push_back(std::move(into[a++]));
    } else if (a == into.size() || from[b].name < into[a].name) {
      merged.push_back(from[b++]);
    } else {
      Sample s = std::move(into[a++]);
      fold(s, from[b++]);
      merged.push_back(std::move(s));
    }
  }
  into = std::move(merged);
}

}  // namespace

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  const auto check = [](bool ok, const std::string& name) {
    if (!ok) {
      throw std::invalid_argument("metrics snapshot merge conflict on '" +
                                  name + "'");
    }
  };
  MergeSamples(counters, other.counters,
               [&](CounterSample& s, const CounterSample& o) {
                 check(s.timing == o.timing, s.name);
                 s.value = SaturatingAdd(s.value, o.value);
               });
  MergeSamples(gauges, other.gauges,
               [&](GaugeSample& s, const GaugeSample& o) {
                 check(s.timing == o.timing, s.name);
                 s.value = std::max(s.value, o.value);
               });
  MergeSamples(histograms, other.histograms,
               [&](HistogramSample& s, const HistogramSample& o) {
                 check(s.timing == o.timing && s.bounds == o.bounds, s.name);
                 for (std::size_t k = 0; k < s.counts.size(); ++k) {
                   s.counts[k] = SaturatingAdd(s.counts[k], o.counts[k]);
                 }
                 s.underflow = SaturatingAdd(s.underflow, o.underflow);
                 s.overflow = SaturatingAdd(s.overflow, o.overflow);
                 s.rejected = SaturatingAdd(s.rejected, o.rejected);
               });
}

std::string MetricsSnapshot::Json(bool include_timing) const {
  std::string out;
  out.reserve(1024);
  AppendSection(out, *this, /*timing=*/false);
  if (include_timing) {
    // Splice the timing section into the same object.
    out.pop_back();  // trailing '}'
    out += ",\"timing\":";
    AppendSection(out, *this, /*timing=*/true);
    out += '}';
  }
  out += '\n';
  return out;
}

std::string MetricsSnapshot::TableString() const {
  std::string out;
  if (!counters.empty()) {
    util::Table table({"counter", "value", "timing"});
    for (const CounterSample& c : counters) {
      table.AddRow({c.name, FmtU64(c.value), c.timing ? "yes" : ""});
    }
    out += table.Render();
  }
  if (!gauges.empty()) {
    util::Table table({"gauge", "value", "timing"});
    for (const GaugeSample& g : gauges) {
      table.AddRow({g.name, util::Fmt(g.value, 3), g.timing ? "yes" : ""});
    }
    if (!out.empty()) out += '\n';
    out += table.Render();
  }
  if (!histograms.empty()) {
    util::Table table(
        {"histogram", "count", "underflow", "overflow", "rejected",
         "timing"});
    for (const HistogramSample& h : histograms) {
      std::uint64_t count = h.underflow + h.overflow;
      for (const std::uint64_t c : h.counts) count += c;
      table.AddRow({h.name, FmtU64(count), FmtU64(h.underflow),
                    FmtU64(h.overflow), FmtU64(h.rejected),
                    h.timing ? "yes" : ""});
    }
    if (!out.empty()) out += '\n';
    out += table.Render();
  }
  return out;
}

}  // namespace wolt::obs
