// Structured runtime metrics: a registry of named monotonic counters,
// gauges, and fixed-bucket histograms with a lock-free fast path.
//
// Determinism contract (tested by tests/obs_golden_test.cc):
//  * Counter/histogram updates are commutative, so any set of updates folds
//    to the same totals regardless of thread interleaving; on top of that
//    the sweep engine keeps one registry per task and merges the snapshots
//    strictly in task-index order, so even order-sensitive metrics (gauges,
//    future additions) cannot observe thread count.
//  * Every metric carries a `timing` flag at registration. Timing-derived
//    values (latency histograms, steal counts) are the only thread-count-
//    dependent output and are quarantined: MetricsSnapshot::Json(false) —
//    the "deterministic section" — omits them entirely, exactly as the
//    sweep reporters quarantine per-task wall-clock.
//
// Concurrency: value updates (Counter::Add, Gauge::Set/Max,
// Histogram::Observe) are lock-free relaxed atomics — safe from any thread,
// cheap enough for solver inner loops. Name registration and snapshotting
// take the registry mutex (cold paths: instrumentation resolves handles
// once per scope, see obs/obs.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wolt::obs {

// Monotonic counter. Add saturates at 2^64-1 instead of wrapping, so a
// runaway increment can never masquerade as a small value.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    const std::uint64_t old = value_.fetch_add(n, std::memory_order_relaxed);
    if (old + n < old) {  // wrapped: pin to the ceiling
      value_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    }
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-value / high-watermark gauge. Merges (across sweep tasks) take the
// maximum, which is order-independent.
class Gauge {
 public:
  void Set(double x) { value_.store(x, std::memory_order_relaxed); }
  void Max(double x) {
    double cur = value_.load(std::memory_order_relaxed);
    while (x > cur && !value_.compare_exchange_weak(
                          cur, x, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram over `bounds` (>= 2 strictly increasing finite
// edges): bucket k counts observations in [bounds[k], bounds[k+1]).
// Observations below the first edge land in `underflow`, at/above the last
// edge in `overflow`; NaN is rejected (tallied separately, never counted).
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double x);

  const std::vector<double>& Bounds() const { return bounds_; }
  std::size_t NumBuckets() const { return counts_.size(); }
  std::uint64_t BucketCount(std::size_t k) const {
    return counts_[k].load(std::memory_order_relaxed);
  }
  std::uint64_t Underflow() const {
    return underflow_.load(std::memory_order_relaxed);
  }
  std::uint64_t Overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  std::uint64_t Rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  // Total accepted observations (buckets + underflow + overflow).
  std::uint64_t Count() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

// Plain-data copy of a registry's state at one instant. Mergeable (the
// sweep engine folds per-task snapshots in task-index order) and
// serializable with a byte-stable encoding: names sorted, integers exact,
// doubles %.17g.
struct CounterSample {
  std::string name;
  bool timing = false;
  std::uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  bool timing = false;
  double value = 0.0;
};
struct HistogramSample {
  std::string name;
  bool timing = false;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  std::uint64_t rejected = 0;
};

class MetricsSnapshot {
 public:
  // Sorted by name (Snapshot() and Merge() maintain the invariant).
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  bool Empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  // Fold `other` in: counters add (saturating), gauges take the max,
  // histograms add bucket-wise. Metrics unknown to *this are adopted.
  // Throws std::invalid_argument on a shape conflict (same name, different
  // kind/bounds/timing flag) — merging snapshots of differently-shaped
  // registries is a programming error.
  void Merge(const MetricsSnapshot& other);

  // Deterministic JSON document:
  //   {"counters":{...},"gauges":{...},
  //    "histograms":{"name":{"bounds":[...],"counts":[...],
  //                          "underflow":0,"overflow":0,"rejected":0}},
  //    "timing":{"counters":...,"gauges":...,"histograms":...}}
  // include_timing=false omits the "timing" section entirely — that is the
  // deterministic section the golden test asserts byte-identical across
  // thread counts.
  std::string Json(bool include_timing = true) const;
  std::string DeterministicJson() const { return Json(false); }

  // Human-readable summary (one util::Table per metric kind).
  std::string TableString() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name; the returned reference is stable for the
  // registry's lifetime (deque storage). Re-registration must agree on the
  // timing flag (and, for histograms, the bounds) or std::invalid_argument
  // is thrown. Names must be non-empty; one name cannot be reused across
  // metric kinds.
  Counter& GetCounter(std::string_view name, bool timing = false);
  Gauge& GetGauge(std::string_view name, bool timing = false);
  Histogram& GetHistogram(std::string_view name,
                          std::span<const double> bounds,
                          bool timing = false);

  MetricsSnapshot Snapshot() const;

  // Process-wide registry for ad-hoc instrumentation outside a sweep task
  // scope (benches install it via obs::ScopedMetrics; nothing writes to it
  // unless a scope is active).
  static MetricsRegistry& Default();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Slot {
    Kind kind;
    bool timing;
    std::size_t index;  // into the kind's deque
  };

  // Checks name/kind/timing consistency; returns the slot if present.
  const Slot* FindSlot(std::string_view name, Kind kind, bool timing) const;

  mutable std::mutex mu_;
  std::map<std::string, Slot, std::less<>> slots_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<const std::string*> counter_names_;
  std::vector<const std::string*> gauge_names_;
  std::vector<const std::string*> histogram_names_;
};

}  // namespace wolt::obs
