#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>

#include "util/fileio.h"
#include "util/table.h"

namespace wolt::obs {
namespace {

std::atomic<Tracer*> g_tracer{nullptr};

void AppendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string FmtUs(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", x);
  return buf;
}

}  // namespace

int CurrentTraceTid() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Tracer() : origin_(std::chrono::steady_clock::now()) {}

double Tracer::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void Tracer::Record(std::string_view name, std::string_view category,
                    double ts_us, double dur_us, int tid) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(TraceEvent{std::string(name), std::string(category),
                               ts_us, dur_us, tid});
}

std::size_t Tracer::NumEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Tracer::ChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i) out += ',';
    out += "{\"name\":\"";
    AppendEscaped(out, e.name);
    out += "\",\"cat\":\"";
    AppendEscaped(out, e.category);
    out += "\",\"ph\":\"X\",\"ts\":" + FmtUs(e.ts_us);
    out += ",\"dur\":" + FmtUs(e.dur_us);
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    out += '}';
  }
  out += "]}\n";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  const wolt::io::IoStatus st = util::WriteFileAtomic(path, ChromeTraceJson());
  wolt::io::CountWriteError(st, path);
  return st.ok();
}

std::string Tracer::SummaryTableString() const {
  struct Agg {
    std::size_t count = 0;
    double total = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::map<std::string, Agg> by_name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TraceEvent& e : events_) {
      Agg& agg = by_name[e.name];
      if (agg.count == 0) {
        agg.min = e.dur_us;
        agg.max = e.dur_us;
      } else {
        agg.min = std::min(agg.min, e.dur_us);
        agg.max = std::max(agg.max, e.dur_us);
      }
      ++agg.count;
      agg.total += e.dur_us;
    }
  }
  util::Table table(
      {"span", "count", "total_ms", "mean_us", "min_us", "max_us"});
  for (const auto& [name, agg] : by_name) {
    table.AddRow({name, std::to_string(agg.count),
                  util::Fmt(agg.total / 1000.0, 3),
                  util::Fmt(agg.total / static_cast<double>(agg.count), 1),
                  util::Fmt(agg.min, 1), util::Fmt(agg.max, 1)});
  }
  return table.Render();
}

Tracer* Tracer::Global() {
  return g_tracer.load(std::memory_order_acquire);
}

void Tracer::SetGlobal(Tracer* tracer) {
  g_tracer.store(tracer, std::memory_order_release);
}

ScopedTimer::ScopedTimer(std::string_view name, std::string_view category,
                         Tracer* tracer, Histogram* latency)
    : tracer_(tracer), latency_(latency) {
  if (!active()) return;
  name_.assign(name);
  category_.assign(category);
  // Timestamps come from the tracer's own clock so that a span opened
  // before and closed after another is recorded as *exactly* containing it
  // (the nesting property the trace fuzz test asserts); the steady_clock
  // fallback serves latency-histogram-only timers.
  if (tracer_) {
    start_ts_us_ = tracer_->NowUs();
  } else {
    start_ = std::chrono::steady_clock::now();
  }
}

ScopedTimer::~ScopedTimer() {
  if (!active()) return;
  double dur_us = 0.0;
  if (tracer_) {
    const double end_ts_us = tracer_->NowUs();
    dur_us = end_ts_us - start_ts_us_;
    tracer_->Record(name_, category_, start_ts_us_, dur_us,
                    CurrentTraceTid());
  } else {
    dur_us = std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  }
  if (latency_) latency_->Observe(dur_us);
}

}  // namespace wolt::obs
