// End-to-end chaos scenario driver: the §V-A control plane (clients,
// capacity probes, Central Controller) run over a lossy wire (FaultPlane)
// while extender backhauls crash, flap and drift (HealthModel), all on the
// discrete-event engine.
//
// A scenario has three phases on one simulated timeline:
//   warmup  — clean wire, users join and the controller converges;
//   faults  — wire faults + backhaul faults active, epoch reoptimizations
//             and retries keep running; some users depart mid-chaos (their
//             goodbye may be lost — staleness eviction reaps the ghosts);
//   settle  — faults stop, capacities restore, the wire is clean; the
//             control plane must reconverge and quiesce.
//
// RunChaosScenario never lets an exception escape: any throw is captured
// in ChaosResult::error, which the soak test asserts empty. The driver also
// checks the degradation invariants (see DESIGN.md "Failure semantics and
// the fault plane"): controller/client id consistency, aggregate >= the
// evacuate-dead-extenders baseline at every reoptimization, bounded churn,
// and post-fault reconvergence.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.h"
#include "fault/health.h"
#include "fault/plane.h"
#include "model/evaluator.h"
#include "sim/scenario.h"

namespace wolt::fault {

struct ChaosParams {
  sim::ScenarioParams scenario;  // topology; chaos soak shrinks this
  int warmup_epochs = 2;
  int fault_epochs = 5;
  int settle_epochs = 3;
  double epoch_length = 4.0;

  double scan_interval_mean = 1.5;  // per-user re-scan period (+-50% jitter)
  double probe_interval = 2.0;      // per-extender capacity probe period
  double retry_tick = 1.0;          // retry collection cadence
  double departure_prob = 0.15;     // per-user chance to leave mid-chaos
  double stale_age = 6.0;           // ghost eviction threshold

  FaultPlaneParams wire;   // active during the fault phase only
  HealthParams health;     // active during the fault phase only
  core::RetryParams retry;
  model::EvalOptions eval;
};

// A small mixed-fault default: 8 extenders / 16 users with lossy, corrupting,
// reordering wire and crash+flap+drift backhaul faults.
ChaosParams DefaultChaosParams();

struct ChaosResult {
  // Run outcome. `error` is empty iff the scenario completed without any
  // exception escaping the control plane.
  std::string error;
  bool completed = false;

  std::size_t extenders = 0;
  std::size_t initial_users = 0;
  std::size_t surviving_users = 0;  // clients still alive at the end

  // Plumbing statistics.
  FaultPlaneStats wire_stats;
  HealthStats health_stats;
  std::size_t decode_rejects = 0;   // messages dropped at the decoders
  std::size_t status_rejects = 0;   // typed non-kOk handler statuses
  std::size_t retries_sent = 0;
  std::size_t directives_given_up = 0;
  std::size_t evictions = 0;
  std::size_t departures = 0;

  // Invariants.
  bool ids_consistent = false;      // CC user set == surviving client set
  bool clients_match_controller = false;  // believed == actual association
  std::size_t unassociated_clients = 0;   // survivors without an extender
  bool aggregate_ge_evacuation = false;   // at every reoptimization epoch
  double worst_margin = 0.0;  // min(reopt aggregate - evacuation baseline)
  std::size_t total_reassignments = 0;
  std::size_t max_epoch_reassignments = 0;
  bool quiesced = false;            // settle ended: no directives pending
  int epochs_to_quiesce = -1;       // settle epochs until quiescence
  double prefault_aggregate = 0.0;  // ground truth, end of warmup
  double final_aggregate = 0.0;     // ground truth, end of settle
};

ChaosResult RunChaosScenario(const ChaosParams& params, std::uint64_t seed);

// Runs `count` scenarios seeded base_seed, base_seed+1, ... (one fault
// universe each).
std::vector<ChaosResult> RunChaosSoak(const ChaosParams& params,
                                      std::uint64_t base_seed, int count);

// Same soak fanned out over a fixed-size work-stealing thread pool. Each
// scenario is a pure function of its seed and writes only its own slot of
// the result vector, so the output is element-for-element identical to the
// sequential RunChaosSoak regardless of thread count or completion order.
// If `cancel` is non-null and becomes true (e.g. from a SIGINT handler),
// workers stop claiming new scenarios; unrun slots stay default-constructed
// (completed=false).
std::vector<ChaosResult> RunChaosSoakParallel(
    const ChaosParams& params, std::uint64_t base_seed, int count,
    int threads, const std::atomic<bool>* cancel = nullptr);

}  // namespace wolt::fault
