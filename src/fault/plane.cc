#include "fault/plane.h"

#include <algorithm>

namespace wolt::fault {

const char* ToString(MessageClass c) {
  switch (c) {
    case MessageClass::kScan: return "scan";
    case MessageClass::kDirective: return "directive";
    case MessageClass::kCapacity: return "capacity";
    case MessageClass::kAck: return "ack";
    case MessageClass::kDeparture: return "departure";
  }
  return "?";
}

FaultPlaneParams FaultPlaneParams::Uniform(const WireFaults& w) {
  FaultPlaneParams p;
  for (auto& f : p.per_class) f = w;
  return p;
}

FaultPlane::FaultPlane(FaultPlaneParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

std::string FaultPlane::Corrupt(std::string bytes) {
  if (bytes.empty()) return bytes;
  // A burst of 1..3 independent mutations. Bit flips dominate (they model
  // in-flight bit errors and often keep the line parseable-but-wrong, the
  // nastiest case for a decoder); splices and truncations model framing
  // errors and torn reads.
  const int mutations = rng_.UniformInt(1, 3);
  for (int m = 0; m < mutations && !bytes.empty(); ++m) {
    const std::size_t pos = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<int>(bytes.size()) - 1));
    switch (rng_.UniformInt(0, 3)) {
      case 0:  // flip one bit
        bytes[pos] = static_cast<char>(bytes[pos] ^ (1 << rng_.UniformInt(0, 7)));
        break;
      case 1:  // overwrite with an arbitrary byte
        bytes[pos] = static_cast<char>(rng_.UniformInt(0, 255));
        break;
      case 2:  // truncate (torn read)
        bytes.resize(pos);
        break;
      case 3:  // insert a random byte
        bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                     static_cast<char>(rng_.UniformInt(0, 255)));
        break;
    }
  }
  return bytes;
}

std::vector<FaultPlane::Delivery> FaultPlane::Transmit(
    MessageClass cls, const std::string& bytes) {
  const WireFaults& f = params_.ForClass(cls);
  ++stats_.sent;
  if (f.loss > 0.0 && rng_.Bernoulli(f.loss)) {
    ++stats_.lost;
    return {};
  }
  int copies = 1;
  if (f.duplicate > 0.0 && rng_.Bernoulli(f.duplicate)) {
    ++copies;
    ++stats_.duplicated;
  }
  std::vector<Delivery> out;
  out.reserve(static_cast<std::size_t>(copies));
  for (int c = 0; c < copies; ++c) {
    Delivery d;
    d.delay = f.base_latency;
    if (f.delay_prob > 0.0 && rng_.Bernoulli(f.delay_prob)) {
      d.delay += rng_.Exponential(1.0 / std::max(f.delay_mean, 1e-9));
      ++stats_.delayed;
    }
    if (f.corrupt > 0.0 && rng_.Bernoulli(f.corrupt)) {
      d.bytes = Corrupt(bytes);
      ++stats_.corrupted;
    } else {
      d.bytes = bytes;
    }
    ++stats_.delivered;
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace wolt::fault
