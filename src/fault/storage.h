// Storage fault plane: the disk-side sibling of the wire-side FaultPlane in
// fault/plane.h. Where plane.h mangles control messages in flight, this file
// mangles the persistence layer itself, behind the io::Vfs seam that every
// writer in the tree (util/fileio, util/csv, recover/journal,
// recover/fleet_journal) routes through.
//
// Two implementations:
//
//  * MemVfs — an in-memory filesystem with an explicit durability model:
//    writes land in a volatile page-cache image, and only fsync, or a rename
//    committed by a directory sync, moves bytes into the durable image
//    (modelled on ext4 data=ordered: committing a rename durably also
//    commits the renamed file's contents as of rename time). SimulateCrash()
//    is a power cut: the volatile image is discarded and the durable image
//    becomes reality. This is what lets a test enumerate "what does the disk
//    hold if power dies here?" for every single I/O operation, in-process,
//    with no fork.
//
//  * FaultVfs — a decorator over any inner Vfs that injects faults from a
//    seeded util::Rng: short writes, EINTR, hard errors (ENOSPC/EIO/...),
//    fsync lies (report success, skip the barrier), torn renames (perform
//    the rename, report failure), and post-write bit-flips, each with a
//    per-op-class probability. Two deterministic modes ride on a global op
//    counter: `fail_at_op` makes exactly the Nth operation fail (the crash-
//    consistency harness sweeps N over every index), and `crash_at_op`
//    silently no-ops every operation from index N onward — the run finishes,
//    its in-memory results are discarded, and the inner MemVfs now holds the
//    exact pre-crash disk state.
//
// All randomness derives from the construction seed, so any failing fault
// schedule replays exactly.
#pragma once

#include <cerrno>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "io/vfs.h"
#include "util/rng.h"

namespace wolt::fault {

// ---------------------------------------------------------------------------
// MemVfs

class MemVfs : public io::Vfs {
 public:
  MemVfs() = default;

  int OpenWrite(const std::string& path, OpenMode mode,
                io::IoStatus* status) override;
  long Write(int handle, const char* data, std::size_t size,
             io::IoStatus* status) override;
  io::IoStatus Fsync(int handle) override;
  io::IoStatus Close(int handle) override;
  io::IoStatus Rename(const std::string& from, const std::string& to) override;
  io::IoStatus Truncate(const std::string& path, std::uint64_t size) override;
  io::IoStatus Remove(const std::string& path) override;
  // Commits every pending rename (simplification: one directory).
  io::IoStatus SyncDir(const std::string& dir) override;
  io::IoStatus ReadFileBytes(const std::string& path,
                             std::string* out) override;

  // Power cut: volatile state is discarded, the durable image becomes the
  // visible one, pending renames are dropped, and every open handle dies
  // (subsequent operations on it fail with EBADF).
  void SimulateCrash();

  // --- test helpers (operate on both images unless noted) ---
  void SetFileBytes(const std::string& path, const std::string& bytes);
  // Visible content, or nullopt if the file does not exist.
  std::optional<std::string> GetFileBytes(const std::string& path) const;
  std::optional<std::string> GetDurableBytes(const std::string& path) const;
  bool Exists(const std::string& path) const;
  // Bit-rot injection: flips one bit at `bit_index` in both images.
  // Returns false if the file is missing or too short.
  bool FlipBit(const std::string& path, std::uint64_t bit_index);
  std::vector<std::string> ListFiles() const;

 private:
  struct Handle {
    std::string path;
    bool open = false;
  };
  struct PendingRename {
    std::string from;
    std::string to;
    std::string data_at_rename;  // ext4 data=ordered snapshot
  };

  mutable std::mutex mu_;
  std::map<std::string, std::string> visible_;  // page-cache image
  std::map<std::string, std::string> durable_;  // what survives power loss
  std::vector<PendingRename> pending_renames_;
  std::vector<Handle> handles_;
};

// ---------------------------------------------------------------------------
// FaultVfs

// Operation classes, each with its own fault knobs.
enum class StorageOp : int {
  kOpen = 0,
  kWrite,
  kFsync,
  kClose,
  kRename,
  kTruncate,
  kRemove,
  kSyncDir,
};
inline constexpr int kNumStorageOps = 8;
const char* ToString(StorageOp op);

// Fault probabilities for one op class. Fields that make no sense for a
// class (e.g. `short_write` on fsync) are ignored there.
struct StorageOpFaults {
  double fail = 0.0;          // hard failure with `fail_err`
  int fail_err = EIO;         // commonly overridden to ENOSPC
  double eintr = 0.0;         // write/fsync interrupted (caller retries)
  double short_write = 0.0;   // write accepts only part of the buffer
  double fsync_lie = 0.0;     // fsync reports success, skips the barrier
  double torn_rename = 0.0;   // rename happens but reports failure
  double bit_flip = 0.0;      // one random bit of the written bytes flips
};

struct StorageFaultParams {
  StorageOpFaults per_op[kNumStorageOps];

  StorageOpFaults& ForOp(StorageOp op) { return per_op[static_cast<int>(op)]; }
  const StorageOpFaults& ForOp(StorageOp op) const {
    return per_op[static_cast<int>(op)];
  }
  // Same faults on every op class.
  static StorageFaultParams Uniform(const StorageOpFaults& f);

  static constexpr std::uint64_t kNever = ~0ULL;
  // Deterministic mode 1: operation index `fail_at_op` (0-based, counted
  // across all classes) fails with `fail_at_op_err`; everything else is
  // clean. The crash harness sweeps this over [0, op_count).
  std::uint64_t fail_at_op = kNever;
  int fail_at_op_err = ENOSPC;
  // Deterministic mode 2: operation `crash_at_op` and everything after it
  // silently no-op (a write at the crash index lands half its bytes first —
  // a torn final write). Pair with MemVfs::SimulateCrash() afterwards.
  std::uint64_t crash_at_op = kNever;
};

struct StorageFaultStats {
  std::uint64_t ops = 0;  // operations that passed through (incl. faulted)
  std::uint64_t injected_fail = 0;
  std::uint64_t injected_eintr = 0;
  std::uint64_t injected_short = 0;
  std::uint64_t injected_fsync_lie = 0;
  std::uint64_t injected_torn_rename = 0;
  std::uint64_t injected_bit_flip = 0;
  std::uint64_t crashed_ops = 0;  // ops swallowed by crash_at_op mode
};

class FaultVfs : public io::Vfs {
 public:
  FaultVfs(io::Vfs& inner, StorageFaultParams params, std::uint64_t seed);

  int OpenWrite(const std::string& path, OpenMode mode,
                io::IoStatus* status) override;
  long Write(int handle, const char* data, std::size_t size,
             io::IoStatus* status) override;
  io::IoStatus Fsync(int handle) override;
  io::IoStatus Close(int handle) override;
  io::IoStatus Rename(const std::string& from, const std::string& to) override;
  io::IoStatus Truncate(const std::string& path, std::uint64_t size) override;
  io::IoStatus Remove(const std::string& path) override;
  io::IoStatus SyncDir(const std::string& dir) override;
  // Reads pass through uncounted: the crash harness enumerates the ops of
  // the *writing* run; replay reads during resume are left clean.
  io::IoStatus ReadFileBytes(const std::string& path,
                             std::string* out) override;

  const StorageFaultStats& stats() const { return stats_; }
  void ResetStats() { stats_ = StorageFaultStats{}; }
  // Total operations counted so far; after a clean instrumented run this is
  // the exclusive upper bound for fail_at_op / crash_at_op sweeps.
  std::uint64_t op_count() const;

 private:
  io::Vfs& inner_;
  StorageFaultParams params_;
  mutable std::mutex mu_;  // guards rng_, stats_, op_index_
  util::Rng rng_;
  StorageFaultStats stats_;
  std::uint64_t op_index_ = 0;
  // Handles invented for OpenWrite calls swallowed by crash mode; writes to
  // them no-op silently.
  static constexpr int kDeadHandleBase = 1 << 28;
  int next_dead_handle_ = kDeadHandleBase;
};

}  // namespace wolt::fault
