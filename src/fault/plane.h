// Deterministic wire-level fault injection for the control plane of §V-A.
//
// The paper's deployment runs the Central Controller as a user-space utility
// talking to clients and capacity probes over a real enterprise network — a
// channel that loses, delays, reorders, duplicates and corrupts messages.
// FaultPlane models that channel: every encoded control message passes
// through Transmit(), which returns zero or more (delay, bytes) deliveries
// drawn from a seeded RNG with per-message-class fault probabilities. The
// caller schedules each delivery on its discrete-event queue; independent
// random delays yield reordering for free.
//
// All randomness comes from the seed given at construction, so any fault
// trace — and therefore any chaos-soak failure — replays exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace wolt::fault {

// Control-plane message classes (the wire formats of core/controller.h).
enum class MessageClass : int {
  kScan = 0,       // client -> CC measurement report
  kDirective,      // CC -> client association directive
  kCapacity,       // probe -> CC PLC capacity estimate
  kAck,            // client -> CC directive acknowledgement
  kDeparture,      // client -> CC goodbye
};
inline constexpr int kNumMessageClasses = 5;
const char* ToString(MessageClass c);

// Fault probabilities for one message class. All probabilities are per
// message; `delay_mean` is the mean of the exponential extra latency added
// when the delay fault fires.
struct WireFaults {
  double loss = 0.0;         // message vanishes entirely
  double duplicate = 0.0;    // a second, independently delayed copy arrives
  double corrupt = 0.0;      // byte-level mangling (per delivered copy)
  double delay_prob = 0.0;   // extra queueing delay (per delivered copy)
  double delay_mean = 0.5;   // mean of the extra delay (time units)
  double base_latency = 0.0; // fixed latency added to every delivery
};

struct FaultPlaneParams {
  // Indexed by MessageClass.
  WireFaults per_class[kNumMessageClasses];

  WireFaults& ForClass(MessageClass c) {
    return per_class[static_cast<int>(c)];
  }
  const WireFaults& ForClass(MessageClass c) const {
    return per_class[static_cast<int>(c)];
  }
  // Same faults on every message class.
  static FaultPlaneParams Uniform(const WireFaults& w);
};

struct FaultPlaneStats {
  std::size_t sent = 0;        // Transmit() calls
  std::size_t delivered = 0;   // copies handed back to the caller
  std::size_t lost = 0;        // messages dropped outright
  std::size_t duplicated = 0;  // extra copies generated
  std::size_t corrupted = 0;   // copies whose bytes were mangled
  std::size_t delayed = 0;     // copies that drew extra latency
};

class FaultPlane {
 public:
  struct Delivery {
    double delay = 0.0;  // relative to the send time
    std::string bytes;
  };

  FaultPlane(FaultPlaneParams params, std::uint64_t seed);

  // Push one encoded message through the lossy wire. Empty result = lost;
  // more than one entry = duplicated. Bytes may differ from the input when
  // the corruption fault fired.
  std::vector<Delivery> Transmit(MessageClass cls, const std::string& bytes);

  // Swap the fault configuration mid-run (e.g. a clean wire for the settle
  // phase of a chaos scenario). The RNG stream continues.
  void SetParams(const FaultPlaneParams& params) { params_ = params; }
  const FaultPlaneParams& params() const { return params_; }

  const FaultPlaneStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FaultPlaneStats{}; }

 private:
  std::string Corrupt(std::string bytes);

  FaultPlaneParams params_;
  FaultPlaneStats stats_;
  util::Rng rng_;
};

}  // namespace wolt::fault
