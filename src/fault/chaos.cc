#include "fault/chaos.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <unordered_map>

#include "util/thread_pool.h"

#include "core/wolt.h"
#include "sim/des.h"
#include "util/rng.h"

namespace wolt::fault {

ChaosParams DefaultChaosParams() {
  ChaosParams p;
  p.scenario.num_extenders = 8;
  p.scenario.num_users = 16;
  WireFaults w;
  w.loss = 0.15;
  w.duplicate = 0.10;
  w.corrupt = 0.10;
  w.delay_prob = 0.30;
  w.delay_mean = 0.4;
  w.base_latency = 0.02;
  p.wire = FaultPlaneParams::Uniform(w);
  p.health.crash_rate = 0.25;   // ~1 hard backhaul failure per epoch
  p.health.repair_rate = 0.2;   // mean 5 time units of downtime
  p.health.flap_rate = 0.3;
  p.health.flap_down_mean = 0.5;
  p.health.drift_rate = 0.5;
  return p;
}

ChaosResult RunChaosScenario(const ChaosParams& params, std::uint64_t seed) {
  ChaosResult res;
  try {
    util::Rng rng(seed);
    const sim::ScenarioGenerator gen(params.scenario);
    model::Network net = gen.Generate(rng);  // ground truth
    const std::size_t num_ext = net.NumExtenders();
    const std::size_t num_users = net.NumUsers();
    res.extenders = num_ext;
    res.initial_users = num_users;

    // The client plane: one row per truth-network user. `extender` is where
    // the client actually camps — it only changes when a directive survives
    // the wire and passes the client's own reachability check.
    struct Client {
      std::int64_t id = 0;
      bool alive = true;
      int extender = -1;
    };
    std::vector<Client> clients(num_users);
    std::unordered_map<std::int64_t, std::size_t> client_of_id;
    for (std::size_t i = 0; i < num_users; ++i) {
      clients[i].id = 1000 + static_cast<std::int64_t>(i);
      client_of_id[clients[i].id] = i;
    }

    core::CentralController cc(num_ext, std::make_unique<core::WoltPolicy>(),
                               params.retry);
    // Clean wire during warmup; the fault config is swapped in later.
    FaultPlane plane(FaultPlaneParams{}, rng.Next());
    std::vector<double> baselines(num_ext);
    for (std::size_t j = 0; j < num_ext; ++j) baselines[j] = net.PlcRate(j);
    HealthModel health(baselines, params.health, rng.Next());
    sim::EventQueue queue;
    const model::Evaluator evaluator(params.eval);

    // --- wire plumbing ---------------------------------------------------
    std::function<void(const std::string&)> deliver_to_cc;
    std::function<void(const std::string&)> deliver_to_client;

    auto send_to_cc = [&](MessageClass cls, const std::string& bytes) {
      for (auto& d : plane.Transmit(cls, bytes)) {
        queue.ScheduleAfter(d.delay, [&, payload = std::move(d.bytes)] {
          deliver_to_cc(payload);
        });
      }
    };
    auto send_directives =
        [&](const std::vector<core::AssociationDirective>& ds) {
          for (const auto& d : ds) {
            for (auto& del :
                 plane.Transmit(MessageClass::kDirective, core::Encode(d))) {
              queue.ScheduleAfter(del.delay,
                                  [&, payload = std::move(del.bytes)] {
                                    deliver_to_client(payload);
                                  });
            }
          }
        };

    deliver_to_client = [&](const std::string& bytes) {
      const auto d = core::DecodeAssociationDirective(bytes);
      if (!d) {
        ++res.decode_rejects;
        return;
      }
      const auto it = client_of_id.find(d->user_id);
      if (it == client_of_id.end()) return;  // corrupted id: nobody home
      Client& c = clients[it->second];
      if (!c.alive) return;
      // Client-side sanity: never camp on an extender it cannot hear (a
      // corrupted-but-decodable directive could point anywhere).
      if (d->extender < 0 ||
          static_cast<std::size_t>(d->extender) >= num_ext ||
          net.WifiRate(it->second, static_cast<std::size_t>(d->extender)) <=
              0.0) {
        return;
      }
      c.extender = d->extender;  // idempotent under re-delivery
      send_to_cc(MessageClass::kAck,
                 core::Encode(core::DirectiveAck{c.id, d->extender}));
    };

    deliver_to_cc = [&](const std::string& bytes) {
      cc.AdvanceTime(queue.Now());
      std::istringstream in(bytes);
      std::string type;
      in >> type;
      if (type == "SCAN") {
        const auto m = core::DecodeScanReport(bytes);
        if (!m) {
          ++res.decode_rejects;
          return;
        }
        const core::HandleResult r = cc.KnowsUser(m->user_id)
                                         ? cc.HandleScanUpdate(*m)
                                         : cc.HandleUserArrival(*m);
        if (!r.ok()) ++res.status_rejects;
        send_directives(r.directives);
      } else if (type == "CAPACITY") {
        const auto m = core::DecodeCapacityReport(bytes);
        if (!m) {
          ++res.decode_rejects;
          return;
        }
        if (cc.HandleCapacityReport(*m) != core::HandleStatus::kOk) {
          ++res.status_rejects;
        }
      } else if (type == "ACK") {
        const auto m = core::DecodeDirectiveAck(bytes);
        if (!m) {
          ++res.decode_rejects;
          return;
        }
        if (cc.HandleDirectiveAck(*m) != core::HandleStatus::kOk) {
          ++res.status_rejects;
        }
      } else if (type == "DEPART") {
        const auto m = core::DecodeDepartureNotice(bytes);
        if (!m) {
          ++res.decode_rejects;
          return;
        }
        if (cc.HandleUserDeparture(m->user_id) != core::HandleStatus::kOk) {
          ++res.status_rejects;
        }
      } else {
        ++res.decode_rejects;  // type word itself got mangled
      }
    };

    // --- client scan processes -------------------------------------------
    std::function<void(std::size_t)> scan_loop = [&](std::size_t i) {
      Client& c = clients[i];
      if (!c.alive) return;
      core::ScanReport r;
      r.user_id = c.id;
      r.rates_mbps.resize(num_ext);
      bool rssi_ok = true;
      std::vector<double> rssi(num_ext);
      for (std::size_t j = 0; j < num_ext; ++j) {
        r.rates_mbps[j] = net.WifiRate(i, j);
        rssi[j] = net.Rssi(i, j);
        rssi_ok = rssi_ok && std::isfinite(rssi[j]);
      }
      if (rssi_ok) r.rssi_dbm = std::move(rssi);
      r.associated_extender = c.extender;  // -1 while unassociated
      send_to_cc(MessageClass::kScan, core::Encode(r));
      // Jittered periodic re-scans (clients scan on a timer, not a Poisson
      // process): gaps are bounded, so a live client on a clean wire can
      // never look stale.
      queue.ScheduleAfter(rng.Uniform(0.5 * params.scan_interval_mean,
                                      1.5 * params.scan_interval_mean),
                          [&, i] { scan_loop(i); });
    };
    for (std::size_t i = 0; i < num_users; ++i) {
      queue.ScheduleAfter(rng.Uniform(0.0, params.scan_interval_mean),
                          [&, i] { scan_loop(i); });
    }

    // --- capacity probes ---------------------------------------------------
    auto send_probe = [&](std::size_t j) {
      send_to_cc(MessageClass::kCapacity,
                 core::Encode(core::CapacityReport{static_cast<int>(j),
                                                   net.PlcRate(j)}));
    };
    std::function<void(std::size_t)> probe_loop = [&](std::size_t j) {
      send_probe(j);
      queue.ScheduleAfter(params.probe_interval, [&, j] { probe_loop(j); });
    };
    for (std::size_t j = 0; j < num_ext; ++j) {
      queue.ScheduleAfter(rng.Uniform(0.0, params.probe_interval),
                          [&, j] { probe_loop(j); });
    }

    // --- mid-chaos departures ---------------------------------------------
    const double fault_start = params.warmup_epochs * params.epoch_length;
    const double fault_end =
        fault_start + params.fault_epochs * params.epoch_length;
    for (std::size_t i = 0; i < num_users; ++i) {
      if (params.departure_prob > 0.0 &&
          rng.Bernoulli(params.departure_prob)) {
        queue.ScheduleAt(rng.Uniform(fault_start, fault_end), [&, i] {
          clients[i].alive = false;
          clients[i].extender = -1;
          ++res.departures;
          send_to_cc(MessageClass::kDeparture,
                     core::Encode(core::DepartureNotice{clients[i].id}));
        });
      }
    }

    // --- retry pump --------------------------------------------------------
    std::function<void()> retry_loop = [&] {
      cc.AdvanceTime(queue.Now());
      const auto due = cc.CollectRetries();
      res.retries_sent += due.size();
      send_directives(due);
      queue.ScheduleAfter(params.retry_tick, retry_loop);
    };
    queue.ScheduleAfter(params.retry_tick, retry_loop);

    // --- ground-truth throughput of the client plane ----------------------
    auto truth_aggregate = [&] {
      model::Assignment a(num_users);
      for (std::size_t i = 0; i < num_users; ++i) {
        const Client& c = clients[i];
        if (c.alive && c.extender >= 0 &&
            net.WifiRate(i, static_cast<std::size_t>(c.extender)) > 0.0) {
          a.Assign(i, static_cast<std::size_t>(c.extender));
        }
      }
      return evaluator.AggregateThroughput(net, a);
    };

    // --- the epoch loop ----------------------------------------------------
    const int total_epochs =
        params.warmup_epochs + params.fault_epochs + params.settle_epochs;
    bool margin_ok = true;
    double worst_margin = std::numeric_limits<double>::infinity();
    for (int epoch = 1; epoch <= total_epochs; ++epoch) {
      queue.RunUntil(epoch * params.epoch_length);
      cc.AdvanceTime(queue.Now());
      res.evictions += cc.EvictStale(params.stale_age).size();

      // Evacuation baseline on the controller's view: the pre-reopt
      // assignment with every user on a (believed-)dead backhaul unassigned.
      const model::Assignment before = cc.assignment();
      model::Assignment evac = before;
      for (std::size_t i = 0; i < evac.NumUsers(); ++i) {
        if (evac.IsAssigned(i) &&
            cc.network().PlcRate(
                static_cast<std::size_t>(evac.ExtenderOf(i))) <= 0.0) {
          evac.Unassign(i);
        }
      }
      const double evac_agg =
          evaluator.AggregateThroughput(cc.network(), evac);
      const std::vector<core::AssociationDirective> directives =
          cc.Reoptimize();
      const double reopt_agg =
          evaluator.AggregateThroughput(cc.network(), cc.assignment());
      const double margin = reopt_agg - evac_agg;
      worst_margin = std::min(worst_margin, margin);
      if (margin < -1e-6) margin_ok = false;

      const std::size_t moves =
          model::Assignment::CountReassignments(before, cc.assignment());
      res.total_reassignments += moves;
      res.max_epoch_reassignments =
          std::max(res.max_epoch_reassignments, moves);
      send_directives(directives);
      const auto due = cc.CollectRetries();
      res.retries_sent += due.size();
      send_directives(due);

      if (epoch == params.warmup_epochs) {
        // End of warmup: record the healthy ground truth, then unleash the
        // fault universe.
        res.prefault_aggregate = truth_aggregate();
        plane.SetParams(params.wire);
        if (params.health.any()) {
          health.Schedule(queue, [&](std::size_t j, double mbps) {
            net.SetPlcRate(j, mbps);
            send_probe(j);
          });
        }
      }
      if (epoch == params.warmup_epochs + params.fault_epochs) {
        // Faults clear: clean wire first so the restoration probes and the
        // settle-phase control traffic all get through.
        plane.SetParams(FaultPlaneParams{});
        health.StopAndRestore();
      }
      if (epoch > params.warmup_epochs + params.fault_epochs &&
          res.epochs_to_quiesce < 0 && directives.empty() && due.empty() &&
          cc.PendingDirectives() == 0) {
        res.epochs_to_quiesce =
            epoch - (params.warmup_epochs + params.fault_epochs);
      }
    }

    // Drain in-flight deliveries (clean wire, tiny latencies) and take the
    // final measurements.
    queue.RunUntil(total_epochs * params.epoch_length + 1.0);
    cc.AdvanceTime(queue.Now());

    std::set<std::int64_t> cc_ids;
    for (std::int64_t id : cc.UserIds()) cc_ids.insert(id);
    std::set<std::int64_t> alive_ids;
    for (const Client& c : clients) {
      if (c.alive) alive_ids.insert(c.id);
    }
    res.surviving_users = alive_ids.size();
    res.ids_consistent = cc_ids == alive_ids;

    bool match = true;
    for (const Client& c : clients) {
      if (!c.alive) continue;
      if (c.extender < 0) ++res.unassociated_clients;
      const auto believed = cc.ExtenderOf(c.id);
      if (believed.value_or(-1) != c.extender) match = false;
    }
    res.clients_match_controller = match && res.ids_consistent;
    res.quiesced = cc.PendingDirectives() == 0 && res.epochs_to_quiesce > 0;
    res.final_aggregate = truth_aggregate();
    res.aggregate_ge_evacuation = margin_ok;
    res.worst_margin = std::isfinite(worst_margin) ? worst_margin : 0.0;
    res.wire_stats = plane.stats();
    res.health_stats = health.stats();
    res.directives_given_up = cc.DirectivesGivenUp();
    res.completed = true;
  } catch (const std::exception& e) {
    res.error = e.what();
  } catch (...) {
    res.error = "non-standard exception";
  }
  return res;
}

std::vector<ChaosResult> RunChaosSoak(const ChaosParams& params,
                                      std::uint64_t base_seed, int count) {
  std::vector<ChaosResult> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    out.push_back(RunChaosScenario(params, base_seed + static_cast<std::uint64_t>(k)));
  }
  return out;
}

std::vector<ChaosResult> RunChaosSoakParallel(
    const ChaosParams& params, std::uint64_t base_seed, int count,
    int threads, const std::atomic<bool>* cancel) {
  std::vector<ChaosResult> out(static_cast<std::size_t>(std::max(0, count)));
  util::ThreadPool pool(threads);
  pool.ParallelFor(
      out.size(), /*chunk=*/1,
      [&](std::size_t k) { out[k] = RunChaosScenario(params, base_seed + k); },
      cancel);
  return out;
}

}  // namespace wolt::fault
