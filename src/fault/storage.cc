#include "fault/storage.h"

#include <algorithm>

namespace wolt::fault {

// ---------------------------------------------------------------------------
// MemVfs

int MemVfs::OpenWrite(const std::string& path, OpenMode mode,
                      io::IoStatus* status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (mode == OpenMode::kTruncate) {
    visible_[path].clear();
  } else {
    visible_.try_emplace(path);
  }
  handles_.push_back(Handle{path, /*open=*/true});
  *status = io::IoStatus::Ok();
  return static_cast<int>(handles_.size()) - 1;
}

long MemVfs::Write(int handle, const char* data, std::size_t size,
                   io::IoStatus* status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (handle < 0 || handle >= static_cast<int>(handles_.size()) ||
      !handles_[static_cast<std::size_t>(handle)].open) {
    *status = io::IoStatus::Fail("write", EBADF);
    return -1;
  }
  visible_[handles_[static_cast<std::size_t>(handle)].path].append(data, size);
  *status = io::IoStatus::Ok();
  return static_cast<long>(size);
}

io::IoStatus MemVfs::Fsync(int handle) {
  std::lock_guard<std::mutex> lock(mu_);
  if (handle < 0 || handle >= static_cast<int>(handles_.size()) ||
      !handles_[static_cast<std::size_t>(handle)].open) {
    return io::IoStatus::Fail("fsync", EBADF);
  }
  const std::string& path = handles_[static_cast<std::size_t>(handle)].path;
  durable_[path] = visible_[path];
  return io::IoStatus::Ok();
}

io::IoStatus MemVfs::Close(int handle) {
  std::lock_guard<std::mutex> lock(mu_);
  if (handle < 0 || handle >= static_cast<int>(handles_.size()) ||
      !handles_[static_cast<std::size_t>(handle)].open) {
    return io::IoStatus::Fail("close", EBADF);
  }
  handles_[static_cast<std::size_t>(handle)].open = false;
  return io::IoStatus::Ok();
}

io::IoStatus MemVfs::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = visible_.find(from);
  if (it == visible_.end()) return io::IoStatus::Fail("rename", ENOENT);
  std::string snapshot = it->second;
  visible_.erase(it);
  visible_[to] = snapshot;
  pending_renames_.push_back(PendingRename{from, to, std::move(snapshot)});
  return io::IoStatus::Ok();
}

io::IoStatus MemVfs::Truncate(const std::string& path, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = visible_.find(path);
  if (it == visible_.end()) return io::IoStatus::Fail("truncate", ENOENT);
  it->second.resize(std::min<std::size_t>(it->second.size(),
                                          static_cast<std::size_t>(size)));
  // Simplification: truncation is immediately durable. Resume paths truncate
  // before appending; modelling a volatile truncate would let a crash
  // resurrect a tail the resume already discarded, which no journalled
  // filesystem does after the truncate has been committed by later syncs.
  auto d = durable_.find(path);
  if (d != durable_.end()) {
    d->second.resize(std::min<std::size_t>(d->second.size(),
                                           static_cast<std::size_t>(size)));
  }
  return io::IoStatus::Ok();
}

io::IoStatus MemVfs::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool existed = visible_.erase(path) > 0;
  durable_.erase(path);  // simplification: unlink is immediately durable
  if (!existed) return io::IoStatus::Fail("remove", ENOENT);
  return io::IoStatus::Ok();
}

io::IoStatus MemVfs::SyncDir(const std::string& /*dir*/) {
  std::lock_guard<std::mutex> lock(mu_);
  for (PendingRename& pr : pending_renames_) {
    durable_.erase(pr.from);
    // ext4 data=ordered: the committed rename carries the file contents as
    // of rename time, even if the file itself was never fsynced.
    durable_[pr.to] = std::move(pr.data_at_rename);
  }
  pending_renames_.clear();
  return io::IoStatus::Ok();
}

io::IoStatus MemVfs::ReadFileBytes(const std::string& path, std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = visible_.find(path);
  if (it == visible_.end()) return io::IoStatus::Fail("open", ENOENT);
  *out = it->second;
  return io::IoStatus::Ok();
}

void MemVfs::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  visible_ = durable_;
  pending_renames_.clear();
  for (Handle& h : handles_) h.open = false;
}

void MemVfs::SetFileBytes(const std::string& path, const std::string& bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  visible_[path] = bytes;
  durable_[path] = bytes;
}

std::optional<std::string> MemVfs::GetFileBytes(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = visible_.find(path);
  if (it == visible_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> MemVfs::GetDurableBytes(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = durable_.find(path);
  if (it == durable_.end()) return std::nullopt;
  return it->second;
}

bool MemVfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return visible_.count(path) > 0;
}

bool MemVfs::FlipBit(const std::string& path, std::uint64_t bit_index) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t byte = static_cast<std::size_t>(bit_index / 8);
  const char mask = static_cast<char>(1u << (bit_index % 8));
  auto it = visible_.find(path);
  if (it == visible_.end() || byte >= it->second.size()) return false;
  it->second[byte] ^= mask;
  auto d = durable_.find(path);
  if (d != durable_.end() && byte < d->second.size()) d->second[byte] ^= mask;
  return true;
}

std::vector<std::string> MemVfs::ListFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(visible_.size());
  for (const auto& [path, bytes] : visible_) names.push_back(path);
  return names;
}

// ---------------------------------------------------------------------------
// FaultVfs

const char* ToString(StorageOp op) {
  switch (op) {
    case StorageOp::kOpen: return "open";
    case StorageOp::kWrite: return "write";
    case StorageOp::kFsync: return "fsync";
    case StorageOp::kClose: return "close";
    case StorageOp::kRename: return "rename";
    case StorageOp::kTruncate: return "truncate";
    case StorageOp::kRemove: return "remove";
    case StorageOp::kSyncDir: return "syncdir";
  }
  return "?";
}

StorageFaultParams StorageFaultParams::Uniform(const StorageOpFaults& f) {
  StorageFaultParams p;
  for (int i = 0; i < kNumStorageOps; ++i) p.per_op[i] = f;
  return p;
}

FaultVfs::FaultVfs(io::Vfs& inner, StorageFaultParams params,
                   std::uint64_t seed)
    : inner_(inner), params_(params), rng_(util::Rng::Substream(seed, 0)) {}

std::uint64_t FaultVfs::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_index_;
}

namespace {

// Per-operation fault decision, drawn under one lock so concurrent callers
// consume the RNG stream atomically.
struct Decision {
  bool crashed = false;      // op swallowed by crash_at_op mode
  std::uint64_t index = 0;
  bool at_crash_op = false;  // the op where the power dies (torn write)
  bool fail = false;
  int fail_err = EIO;
  bool eintr = false;
  bool short_write = false;
  bool fsync_lie = false;
  bool torn_rename = false;
  bool bit_flip = false;
  std::uint64_t bit_rand = 0;
};

Decision Decide(StorageOp op, const StorageFaultParams& params,
                util::Rng& rng, StorageFaultStats& stats,
                std::uint64_t& op_index, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  Decision d;
  d.index = op_index++;
  stats.ops++;
  if (d.index >= params.crash_at_op) {
    d.crashed = true;
    d.at_crash_op = (d.index == params.crash_at_op);
    stats.crashed_ops++;
    return d;
  }
  if (d.index == params.fail_at_op) {
    d.fail = true;
    d.fail_err = params.fail_at_op_err;
    stats.injected_fail++;
    return d;
  }
  const StorageOpFaults& f = params.ForOp(op);
  if (f.fail > 0.0 && rng.Bernoulli(f.fail)) {
    d.fail = true;
    d.fail_err = f.fail_err;
    stats.injected_fail++;
  } else if ((op == StorageOp::kWrite || op == StorageOp::kFsync) &&
             f.eintr > 0.0 && rng.Bernoulli(f.eintr)) {
    d.eintr = true;
    stats.injected_eintr++;
  } else if (op == StorageOp::kWrite && f.short_write > 0.0 &&
             rng.Bernoulli(f.short_write)) {
    d.short_write = true;
    stats.injected_short++;
  } else if (op == StorageOp::kFsync && f.fsync_lie > 0.0 &&
             rng.Bernoulli(f.fsync_lie)) {
    d.fsync_lie = true;
    stats.injected_fsync_lie++;
  } else if (op == StorageOp::kRename && f.torn_rename > 0.0 &&
             rng.Bernoulli(f.torn_rename)) {
    d.torn_rename = true;
    stats.injected_torn_rename++;
  }
  // Bit flips compose with a clean or short write (not with a failed one).
  if (op == StorageOp::kWrite && !d.fail && !d.eintr && f.bit_flip > 0.0 &&
      rng.Bernoulli(f.bit_flip)) {
    d.bit_flip = true;
    d.bit_rand = rng.Next();
    stats.injected_bit_flip++;
  }
  return d;
}
}  // namespace

#define WOLT_DECIDE(op) \
  Decide((op), params_, rng_, stats_, op_index_, mu_)

int FaultVfs::OpenWrite(const std::string& path, OpenMode mode,
                        io::IoStatus* status) {
  const Decision d = WOLT_DECIDE(StorageOp::kOpen);
  if (d.crashed) {
    std::lock_guard<std::mutex> lock(mu_);
    *status = io::IoStatus::Ok();
    return next_dead_handle_++;
  }
  if (d.fail) {
    *status = io::IoStatus::Fail("open", d.fail_err);
    return -1;
  }
  return inner_.OpenWrite(path, mode, status);
}

long FaultVfs::Write(int handle, const char* data, std::size_t size,
                     io::IoStatus* status) {
  const Decision d = WOLT_DECIDE(StorageOp::kWrite);
  const bool dead = handle >= kDeadHandleBase;
  if (d.crashed) {
    if (d.at_crash_op && !dead && size > 1) {
      // The power dies mid-write: half the bytes reach the page cache.
      io::IoStatus torn;
      inner_.Write(handle, data, size / 2, &torn);
    }
    *status = io::IoStatus::Ok();
    return static_cast<long>(size);
  }
  if (d.fail) {
    *status = io::IoStatus::Fail("write", d.fail_err);
    return -1;
  }
  if (d.eintr) {
    *status = io::IoStatus::Fail("write", EINTR);
    return -1;
  }
  std::size_t n = size;
  if (d.short_write && size > 1) n = std::max<std::size_t>(1, size / 2);
  if (d.bit_flip && n > 0) {
    std::string corrupted(data, n);
    const std::uint64_t bit = d.bit_rand % (static_cast<std::uint64_t>(n) * 8);
    corrupted[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<char>(1u << (bit % 8));
    const long wrote = inner_.Write(handle, corrupted.data(), n, status);
    // A short inner write of corrupted bytes still reports progress.
    return wrote;
  }
  return inner_.Write(handle, data, n, status);
}

io::IoStatus FaultVfs::Fsync(int handle) {
  const Decision d = WOLT_DECIDE(StorageOp::kFsync);
  if (d.crashed || handle >= kDeadHandleBase) {
    return io::IoStatus::Ok();
  }
  if (d.fail) return io::IoStatus::Fail("fsync", d.fail_err);
  if (d.eintr) return io::IoStatus::Fail("fsync", EINTR);
  if (d.fsync_lie) return io::IoStatus::Ok();  // barrier silently skipped
  return inner_.Fsync(handle);
}

io::IoStatus FaultVfs::Close(int handle) {
  const Decision d = WOLT_DECIDE(StorageOp::kClose);
  if (d.crashed || handle >= kDeadHandleBase) {
    return io::IoStatus::Ok();
  }
  if (d.fail) {
    // close(2) releases the descriptor even when it reports an error.
    inner_.Close(handle);
    return io::IoStatus::Fail("close", d.fail_err);
  }
  return inner_.Close(handle);
}

io::IoStatus FaultVfs::Rename(const std::string& from, const std::string& to) {
  const Decision d = WOLT_DECIDE(StorageOp::kRename);
  if (d.crashed) return io::IoStatus::Ok();
  if (d.fail) return io::IoStatus::Fail("rename", d.fail_err);
  if (d.torn_rename) {
    // NFS-style: the operation lands on disk but the reply is lost, so the
    // caller sees a failure. The destination must still be old-or-new.
    inner_.Rename(from, to);
    return io::IoStatus::Fail("rename", EIO);
  }
  return inner_.Rename(from, to);
}

io::IoStatus FaultVfs::Truncate(const std::string& path, std::uint64_t size) {
  const Decision d = WOLT_DECIDE(StorageOp::kTruncate);
  if (d.crashed) return io::IoStatus::Ok();
  if (d.fail) return io::IoStatus::Fail("truncate", d.fail_err);
  return inner_.Truncate(path, size);
}

io::IoStatus FaultVfs::Remove(const std::string& path) {
  const Decision d = WOLT_DECIDE(StorageOp::kRemove);
  if (d.crashed) return io::IoStatus::Ok();
  if (d.fail) return io::IoStatus::Fail("remove", d.fail_err);
  return inner_.Remove(path);
}

io::IoStatus FaultVfs::SyncDir(const std::string& dir) {
  const Decision d = WOLT_DECIDE(StorageOp::kSyncDir);
  if (d.crashed) return io::IoStatus::Ok();
  if (d.fail) return io::IoStatus::Fail("fsyncdir", d.fail_err);
  return inner_.SyncDir(dir);
}

io::IoStatus FaultVfs::ReadFileBytes(const std::string& path,
                                     std::string* out) {
  return inner_.ReadFileBytes(path, out);
}

#undef WOLT_DECIDE

}  // namespace wolt::fault
