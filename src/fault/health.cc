#include "fault/health.h"

#include <algorithm>
#include <stdexcept>

namespace wolt::fault {

namespace {
constexpr std::size_t kNone = static_cast<std::size_t>(-1);
}

HealthModel::HealthModel(std::vector<double> baseline_mbps,
                         HealthParams params, std::uint64_t seed)
    : baseline_(std::move(baseline_mbps)),
      factor_(baseline_.size(), 1.0),
      up_(baseline_.size(), 1),
      down_seq_(baseline_.size(), 0),
      params_(params),
      rng_(seed) {
  if (baseline_.empty()) throw std::invalid_argument("no extenders");
}

double HealthModel::Capacity(std::size_t j) const {
  return up_[j] ? baseline_[j] * factor_[j] : 0.0;
}

std::size_t HealthModel::NumDown() const {
  std::size_t n = 0;
  for (char u : up_) n += (u == 0);
  return n;
}

void HealthModel::Emit(std::size_t j) {
  if (on_capacity_) on_capacity_(j, Capacity(j));
}

std::size_t HealthModel::PickUp() {
  std::size_t alive = 0;
  for (char u : up_) alive += (u != 0);
  if (alive == 0) return kNone;
  std::size_t pick = static_cast<std::size_t>(
      rng_.UniformInt(0, static_cast<int>(alive) - 1));
  for (std::size_t j = 0; j < up_.size(); ++j) {
    if (!up_[j]) continue;
    if (pick-- == 0) return j;
  }
  return kNone;
}

void HealthModel::TakeDown(std::size_t j, double up_after_delay) {
  up_[j] = 0;
  const std::uint64_t seq = ++down_seq_[j];
  Emit(j);
  queue_->ScheduleAfter(up_after_delay, [this, j, seq] { Restore(j, seq); });
}

void HealthModel::Restore(std::size_t j, std::uint64_t expected_seq) {
  // A newer outage superseded this repair timer (e.g. a flap while the
  // crash repair was pending): let the newer timer own the restore.
  if (down_seq_[j] != expected_seq || up_[j]) return;
  up_[j] = 1;
  ++stats_.repairs;
  Emit(j);
}

void HealthModel::ScheduleCrash() {
  if (params_.crash_rate <= 0.0) return;
  queue_->ScheduleAfter(rng_.Exponential(params_.crash_rate), [this] {
    if (enabled_) {
      const std::size_t j = PickUp();
      if (j != kNone) {
        ++stats_.crashes;
        TakeDown(j, rng_.Exponential(std::max(params_.repair_rate, 1e-9)));
      }
      ScheduleCrash();
    }
  });
}

void HealthModel::ScheduleFlap() {
  if (params_.flap_rate <= 0.0) return;
  queue_->ScheduleAfter(rng_.Exponential(params_.flap_rate), [this] {
    if (enabled_) {
      const std::size_t j = PickUp();
      if (j != kNone) {
        ++stats_.flaps;
        TakeDown(j, rng_.Exponential(
                        1.0 / std::max(params_.flap_down_mean, 1e-9)));
      }
      ScheduleFlap();
    }
  });
}

void HealthModel::ScheduleDrift() {
  if (params_.drift_rate <= 0.0) return;
  queue_->ScheduleAfter(rng_.Exponential(params_.drift_rate), [this] {
    if (enabled_) {
      const std::size_t j = static_cast<std::size_t>(
          rng_.UniformInt(0, static_cast<int>(baseline_.size()) - 1));
      ++stats_.drifts;
      factor_[j] = std::clamp(factor_[j] * rng_.LogNormal(0.0, params_.drift_sigma),
                              params_.drift_min_factor, params_.drift_max_factor);
      if (up_[j]) Emit(j);
      ScheduleDrift();
    }
  });
}

void HealthModel::Schedule(sim::EventQueue& queue,
                           CapacityCallback on_capacity) {
  queue_ = &queue;
  on_capacity_ = std::move(on_capacity);
  enabled_ = true;
  ScheduleCrash();
  ScheduleFlap();
  ScheduleDrift();
}

void HealthModel::StopAndRestore() {
  enabled_ = false;
  for (std::size_t j = 0; j < baseline_.size(); ++j) {
    const bool degraded = !up_[j] || factor_[j] != 1.0;
    ++down_seq_[j];  // invalidate any pending repair timers
    up_[j] = 1;
    factor_[j] = 1.0;
    if (degraded) Emit(j);
  }
}

}  // namespace wolt::fault
