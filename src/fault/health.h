// Extender backhaul health as discrete-event fault processes.
//
// Enterprise PLC deployments lose extenders mid-run: breakers trip, units
// get unplugged, and power-line capacity drifts with the electrical
// environment (cf. the PLC deployment study referenced in PAPERS.md).
// HealthModel owns the ground-truth backhaul state of every extender —
// up/down and an effective capacity relative to a baseline — and drives it
// with three seeded Poisson processes scheduled on the existing
// sim::EventQueue:
//
//   * crash:  a random live extender's backhaul dies hard; an exponential
//             repair timer brings it back later.
//   * flap:   a short transient outage (loose plug, interference burst)
//             that heals on its own after a brief exponential downtime.
//   * drift:  a random extender's capacity takes a multiplicative lognormal
//             step, clamped to a band around its baseline.
//
// Every transition invokes a caller-supplied callback with the extender's
// new effective capacity (0 while down) — the simulator applies it to the
// truth network directly, while the chaos harness turns it into a CAPACITY
// probe message pushed through the lossy wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/des.h"
#include "util/rng.h"

namespace wolt::fault {

struct HealthParams {
  // Fleet-wide rates (events per time unit across all extenders).
  double crash_rate = 0.0;
  double repair_rate = 0.5;       // per-crash; mean downtime = 1/rate
  double flap_rate = 0.0;
  double flap_down_mean = 0.3;    // mean transient downtime (time units)
  double drift_rate = 0.0;
  double drift_sigma = 0.15;      // lognormal sigma of each drift step
  double drift_min_factor = 0.3;  // clamp band around the baseline
  double drift_max_factor = 1.5;

  bool any() const {
    return crash_rate > 0.0 || flap_rate > 0.0 || drift_rate > 0.0;
  }
};

struct HealthStats {
  std::size_t crashes = 0;
  std::size_t repairs = 0;  // crash repairs + flap recoveries
  std::size_t flaps = 0;
  std::size_t drifts = 0;
};

class HealthModel {
 public:
  // extender index, new effective backhaul capacity (0 while down)
  using CapacityCallback = std::function<void(std::size_t, double)>;

  HealthModel(std::vector<double> baseline_mbps, HealthParams params,
              std::uint64_t seed);

  // Install the self-rescheduling fault processes on `queue` and start
  // injecting. `on_capacity` fires on every health transition. The queue
  // and callback must outlive the model (or the queue must be drained).
  void Schedule(sim::EventQueue& queue, CapacityCallback on_capacity);

  // Stop injecting (pending fault events become no-ops) and restore every
  // extender to its baseline capacity, firing the callback for each
  // extender that was degraded. Used for the settle phase of chaos runs.
  void StopAndRestore();

  std::size_t NumExtenders() const { return baseline_.size(); }
  bool IsUp(std::size_t j) const { return up_[j] != 0; }
  // Effective capacity: 0 while down, baseline * drift factor while up.
  double Capacity(std::size_t j) const;
  std::size_t NumDown() const;

  const HealthStats& stats() const { return stats_; }

 private:
  void ScheduleCrash();
  void ScheduleFlap();
  void ScheduleDrift();
  void TakeDown(std::size_t j, double up_after_delay);
  void Restore(std::size_t j, std::uint64_t expected_seq);
  void Emit(std::size_t j);
  // Uniformly random currently-up extender, or npos when all are down.
  std::size_t PickUp();

  std::vector<double> baseline_;
  std::vector<double> factor_;      // drift multiplier, 1.0 initially
  std::vector<char> up_;
  std::vector<std::uint64_t> down_seq_;  // guards stale restore events
  HealthParams params_;
  HealthStats stats_;
  util::Rng rng_;
  sim::EventQueue* queue_ = nullptr;
  CapacityCallback on_capacity_;
  bool enabled_ = false;
};

}  // namespace wolt::fault
