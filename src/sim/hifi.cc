#include "sim/hifi.h"

#include <algorithm>
#include <stdexcept>

#include "plc/timeshare.h"

namespace wolt::sim {

HifiResult SimulateHifi(const model::Network& net,
                        const model::Assignment& assign,
                        const HifiParams& params, util::Rng& rng) {
  if (assign.NumUsers() != net.NumUsers()) {
    throw std::invalid_argument("assignment/network user count mismatch");
  }
  if (params.wifi_mac_efficiency <= 0.0 || params.wifi_mac_efficiency > 1.0) {
    throw std::invalid_argument("bad WiFi MAC efficiency");
  }
  const std::size_t num_ext = net.NumExtenders();

  HifiResult result;
  result.wifi_cell_mbps.assign(num_ext, 0.0);
  result.plc_share_mbps.assign(num_ext, 0.0);
  result.extender_mbps.assign(num_ext, 0.0);
  result.user_throughput_mbps.assign(net.NumUsers(), 0.0);

  // --- Hop 1: slot-level DCF per WiFi cell. ---
  std::vector<std::vector<std::size_t>> cell_users(num_ext);
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    const int e = assign.ExtenderOf(i);
    if (e == model::Assignment::kUnassigned) continue;
    if (e < 0 || static_cast<std::size_t>(e) >= num_ext) {
      throw std::invalid_argument("assignment references unknown extender");
    }
    if (net.WifiRate(i, static_cast<std::size_t>(e)) <= 0.0) {
      throw std::invalid_argument("user assigned to unreachable extender");
    }
    cell_users[static_cast<std::size_t>(e)].push_back(i);
  }

  std::vector<std::vector<double>> cell_user_wifi(num_ext);
  std::vector<std::size_t> active;
  for (std::size_t j = 0; j < num_ext; ++j) {
    if (cell_users[j].empty()) continue;
    active.push_back(j);
    std::vector<double> phy_rates;
    phy_rates.reserve(cell_users[j].size());
    for (std::size_t i : cell_users[j]) {
      phy_rates.push_back(net.WifiRate(i, j) / params.wifi_mac_efficiency);
    }
    const wifi::DcfResult cell = wifi::SimulateDcf(
        phy_rates, params.wifi_duration_s, params.dcf, rng);
    result.wifi_cell_mbps[j] = cell.aggregate_mbps;
    cell_user_wifi[j].reserve(cell.stations.size());
    for (const auto& st : cell.stations) {
      cell_user_wifi[j].push_back(st.throughput_mbps);
    }
  }
  if (active.empty()) return result;

  // --- Hop 2: slot-level 1901 across the active extenders. ---
  // Per-link MAC rates chosen so that a lone extender's simulated isolation
  // throughput reproduces its measured capacity c_j.
  const double unit = plc::IsolationThroughput(1.0, params.csma);
  std::vector<double> mac_rates;
  std::vector<double> sim_isolation(num_ext, 0.0);
  for (std::size_t j : active) {
    const double c = net.PlcRate(j);
    if (c <= 0.0) {
      throw std::invalid_argument("hifi simulation needs live PLC links");
    }
    mac_rates.push_back(c / unit);
  }
  const plc::Csma1901Result backhaul = plc::SimulateCsma1901(
      mac_rates, params.plc_duration_s, params.csma, rng);

  // Contention efficiency observed in the simulation: how much of the
  // ideal 1/k shares the CSMA actually delivered.
  double ideal_total = 0.0;
  for (std::size_t k = 0; k < active.size(); ++k) {
    sim_isolation[active[k]] = mac_rates[k] * unit;
    ideal_total += sim_isolation[active[k]] /
                   static_cast<double>(active.size());
  }
  const double efficiency =
      ideal_total > 0.0 ? backhaul.aggregate_mbps / ideal_total : 1.0;

  // --- Composition: demand-capped max-min over the *simulated* rates. ---
  std::vector<double> plc_rates(num_ext, 0.0);
  std::vector<double> demands(num_ext, 0.0);
  for (std::size_t j : active) {
    plc_rates[j] = sim_isolation[j] * efficiency;
    demands[j] = result.wifi_cell_mbps[j];
  }
  const plc::TimeShareResult shares =
      plc::MaxMinTimeShare(plc_rates, demands);

  for (std::size_t j : active) {
    result.plc_share_mbps[j] = shares.time_share[j] * plc_rates[j];
    result.extender_mbps[j] =
        std::min(result.wifi_cell_mbps[j], result.plc_share_mbps[j]);
    result.aggregate_mbps += result.extender_mbps[j];
    // Users keep their simulated WiFi proportions, scaled down when the
    // backhaul throttles the cell.
    const double scale = result.wifi_cell_mbps[j] > 0.0
                             ? result.extender_mbps[j] /
                                   result.wifi_cell_mbps[j]
                             : 0.0;
    for (std::size_t k = 0; k < cell_users[j].size(); ++k) {
      result.user_throughput_mbps[cell_users[j][k]] =
          cell_user_wifi[j][k] * scale;
    }
  }
  return result;
}

}  // namespace wolt::sim
