#include "sim/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.h"
#include "sim/des.h"
#include "util/fileio.h"

namespace wolt::sim {
namespace {

constexpr int kTraceFormatVersion = 1;

// Substream layout under the trace seed: one stream per independent concern
// so adding draws to one process never perturbs another, plus one stream
// per user (mobility legs, placement, demand jitter, teleports).
constexpr std::uint64_t kChurnStream = 0;
constexpr std::uint64_t kLoadStream = 1;
constexpr std::uint64_t kBackgroundStream = 2;
constexpr std::uint64_t kHotspotStream = 3;
constexpr std::uint64_t kFirstUserStream = 16;

void EmitDouble(std::ostream& out, double v) {
  // %.17g round-trips doubles exactly.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

std::optional<double> ParseDouble(const std::string& s) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(s, &consumed);
    // Non-finite values ("nan", "inf", ...) must die here with a typed
    // error, same contract as the network loader.
    if (consumed != s.size() || !std::isfinite(v)) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::vector<double>> ParseDoubleList(const std::string& csv) {
  std::vector<double> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    const auto v = ParseDouble(item);
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  return out;
}

std::optional<std::unordered_map<std::string, std::string>> ParseKv(
    std::istringstream& in) {
  std::unordered_map<std::string, std::string> kv;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return kv;
}

double Hypot(double dx, double dy) { return std::sqrt(dx * dx + dy * dy); }

constexpr double kTau = 6.283185307179586476925286766559;  // 2*pi

}  // namespace

const char* ToString(MobilityModel m) {
  switch (m) {
    case MobilityModel::kStatic:
      return "static";
    case MobilityModel::kTeleport:
      return "teleport";
    case MobilityModel::kWaypoint:
      return "waypoint";
    case MobilityModel::kHotspot:
      return "hotspot";
  }
  return "?";
}

std::optional<MobilityModel> MobilityModelFromString(const std::string& s) {
  if (s == "static") return MobilityModel::kStatic;
  if (s == "teleport") return MobilityModel::kTeleport;
  if (s == "waypoint") return MobilityModel::kWaypoint;
  if (s == "hotspot") return MobilityModel::kHotspot;
  return std::nullopt;
}

const char* ToString(LoadCurve c) {
  switch (c) {
    case LoadCurve::kConstant:
      return "constant";
    case LoadCurve::kDiurnal:
      return "diurnal";
    case LoadCurve::kBursty:
      return "bursty";
  }
  return "?";
}

std::optional<LoadCurve> LoadCurveFromString(const std::string& s) {
  if (s == "constant") return LoadCurve::kConstant;
  if (s == "diurnal") return LoadCurve::kDiurnal;
  if (s == "bursty") return LoadCurve::kBursty;
  return std::nullopt;
}

const char* ToString(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kArrival:
      return "arrive";
    case TraceEventKind::kDeparture:
      return "depart";
    case TraceEventKind::kMove:
      return "move";
    case TraceEventKind::kLoad:
      return "load";
    case TraceEventKind::kBackground:
      return "bg";
  }
  return "?";
}

// --- Mobility kernel -----------------------------------------------------

MobilityKernel::MobilityKernel(const ScenarioGenerator& generator,
                               MobilityParams params)
    : generator_(&generator), params_(std::move(params)) {
  const bool walks = params_.model == MobilityModel::kWaypoint ||
                     params_.model == MobilityModel::kHotspot;
  if (walks && (params_.speed_min <= 0.0 ||
                params_.speed_max < params_.speed_min)) {
    throw std::invalid_argument("mobility needs 0 < speed_min <= speed_max");
  }
  if (params_.pause < 0.0) throw std::invalid_argument("negative pause");
  if (params_.model == MobilityModel::kHotspot &&
      (params_.num_hotspots == 0 || params_.hotspot_sigma_m < 0.0 ||
       params_.hotspot_bias < 0.0 || params_.hotspot_bias > 1.0)) {
    throw std::invalid_argument("bad hotspot parameters");
  }
}

void MobilityKernel::SampleHotspots(util::Rng& rng) {
  hotspots_.clear();
  if (params_.model != MobilityModel::kHotspot) return;
  hotspots_.reserve(params_.num_hotspots);
  for (std::size_t k = 0; k < params_.num_hotspots; ++k) {
    hotspots_.push_back(generator_->SampleUserPosition(rng));
  }
}

ScenarioGenerator::LinkSample MobilityKernel::LinksAt(
    const model::Network& net, model::Position pos,
    const std::vector<double>& shadow) const {
  const ScenarioParams& sp = generator_->params();
  ScenarioGenerator::LinkSample sample;
  sample.rates_mbps.assign(net.NumExtenders(), 0.0);
  sample.rssi_dbm.assign(net.NumExtenders(), 0.0);
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    const double d = model::Distance(pos, net.ExtenderAt(j).position);
    const double rssi = sp.path_loss.RssiDbm(d, shadow[j]);
    sample.rssi_dbm[j] = rssi;
    sample.rates_mbps[j] = sp.rate_table.RateAtRssi(rssi);
  }
  return sample;
}

MobilityState MobilityKernel::Spawn(const model::Network& net, double now,
                                    util::Rng& rng) const {
  const ScenarioParams& sp = generator_->params();
  MobilityState st;
  st.shadow_db.reserve(net.NumExtenders());
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    st.shadow_db.push_back(rng.Normal(0.0, sp.shadowing_sigma_db));
  }
  // Placement retries against the FROZEN shadowing row (the scenario
  // generator redraws shadowing per attempt; here the row is the user's
  // identity, so only the position is retried).
  st.pos = generator_->SampleUserPosition(rng);
  for (int attempt = 0; attempt < sp.max_placement_retries; ++attempt) {
    const auto links = LinksAt(net, st.pos, st.shadow_db);
    if (std::any_of(links.rates_mbps.begin(), links.rates_mbps.end(),
                    [](double r) { return r > 0.0; })) {
      break;
    }
    st.pos = generator_->SampleUserPosition(rng);
  }
  st.waypoint = st.pos;
  st.pause_until = now;
  if (params_.model == MobilityModel::kWaypoint ||
      params_.model == MobilityModel::kHotspot) {
    BeginLeg(&st, now, rng);
  }
  return st;
}

model::Position MobilityKernel::SampleWaypoint(util::Rng& rng) const {
  const ScenarioParams& sp = generator_->params();
  if (params_.model == MobilityModel::kHotspot && !hotspots_.empty() &&
      rng.NextDouble() < params_.hotspot_bias) {
    const auto& c = hotspots_[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(hotspots_.size()) - 1))];
    model::Position p{c.x + rng.Normal(0.0, params_.hotspot_sigma_m),
                      c.y + rng.Normal(0.0, params_.hotspot_sigma_m)};
    p.x = std::clamp(p.x, 0.0, sp.width_m);
    p.y = std::clamp(p.y, 0.0, sp.height_m);
    return p;
  }
  return generator_->SampleUserPosition(rng);
}

void MobilityKernel::BeginLeg(MobilityState* st, double /*now*/,
                              util::Rng& rng) const {
  st->waypoint = SampleWaypoint(rng);
  st->speed = rng.Uniform(params_.speed_min, params_.speed_max);
}

bool MobilityKernel::Step(MobilityState* st, double now, double dt,
                          util::Rng& rng) const {
  if (params_.model != MobilityModel::kWaypoint &&
      params_.model != MobilityModel::kHotspot) {
    return false;
  }
  bool moved = false;
  double remaining = dt;
  // Bounded iterations: each pass either consumes tick time or draws a new
  // leg; zero-length legs are measure-zero but must not spin forever.
  for (int guard = 0; guard < 64 && remaining > 1e-12; ++guard) {
    const double t = now - remaining;
    if (st->pause_until > t) {
      const double wait = std::min(st->pause_until - t, remaining);
      remaining -= wait;
      continue;
    }
    const double dx = st->waypoint.x - st->pos.x;
    const double dy = st->waypoint.y - st->pos.y;
    const double dist = Hypot(dx, dy);
    if (dist <= 1e-9) {
      st->pause_until = t + params_.pause;
      BeginLeg(st, t, rng);
      if (params_.pause <= 0.0 && guard == 63) break;
      continue;
    }
    const double reach = st->speed * remaining;
    if (reach >= dist) {
      st->pos = st->waypoint;
      remaining -= dist / st->speed;
      st->pause_until = (now - remaining) + params_.pause;
      BeginLeg(st, now - remaining, rng);
      moved = true;
    } else {
      st->pos.x += dx / dist * reach;
      st->pos.y += dy / dist * reach;
      remaining = 0.0;
      moved = true;
    }
  }
  return moved;
}

ScenarioGenerator::LinkSample MobilityKernel::Teleport(
    const ScenarioGenerator& gen, const model::Network& net,
    model::Position* pos, util::Rng& rng) {
  *pos = gen.SampleUserPosition(rng);
  return gen.LinksAt(net, *pos, rng);
}

// --- Trace generation ----------------------------------------------------

WorkloadTrace GenerateTrace(const ScenarioGenerator& generator,
                            const model::Network& base,
                            const WorkloadParams& params, std::uint64_t seed) {
  if (base.NumExtenders() == 0) {
    throw std::invalid_argument("trace needs at least one extender");
  }
  if (base.NumUsers() != 0) {
    throw std::invalid_argument(
        "trace base network must be extenders-only (users come from the "
        "trace)");
  }
  if (params.horizon <= 0.0) throw std::invalid_argument("horizon must be > 0");
  if (params.move_tick <= 0.0) {
    throw std::invalid_argument("move_tick must be > 0");
  }
  if (params.arrival_rate < 0.0 || params.mean_session <= 0.0) {
    throw std::invalid_argument("bad churn parameters");
  }
  if (params.load == LoadCurve::kDiurnal &&
      (params.load_period <= 0.0 || params.load_floor < 0.0 ||
       params.load_floor > 1.0)) {
    throw std::invalid_argument("bad diurnal parameters");
  }
  if (params.load == LoadCurve::kBursty &&
      (params.burst_rate <= 0.0 || params.burst_high < 0.0 ||
       params.burst_low < 0.0)) {
    throw std::invalid_argument("bad burst parameters");
  }
  if (params.load != LoadCurve::kConstant && params.base_demand_mbps <= 0.0) {
    throw std::invalid_argument("load curves need base_demand_mbps > 0");
  }
  if (params.background_share < 0.0 || params.background_share > 1.0 ||
      (params.background_share > 0.0 && params.background_flip_rate <= 0.0)) {
    throw std::invalid_argument("bad background parameters");
  }

  WorkloadTrace trace;
  trace.num_extenders = base.NumExtenders();
  trace.horizon = params.horizon;

  MobilityKernel kernel(generator, params.mobility);
  util::Rng churn_rng = util::Rng::Substream(seed, kChurnStream);
  util::Rng load_rng = util::Rng::Substream(seed, kLoadStream);
  util::Rng bg_rng = util::Rng::Substream(seed, kBackgroundStream);
  util::Rng hotspot_rng = util::Rng::Substream(seed, kHotspotStream);
  kernel.SampleHotspots(hotspot_rng);

  struct UserSession {
    bool active = false;
    double demand_mbps = 0.0;
    MobilityState state;
    util::Rng rng{0};
  };
  std::vector<UserSession> sessions;
  EventQueue q;

  const auto emit = [&](TraceEvent ev) {
    ev.time = q.Now();
    trace.events.push_back(std::move(ev));
  };

  const bool moves = params.mobility.model != MobilityModel::kStatic;
  std::function<void(std::size_t)> move_tick = [&](std::size_t uid) {
    UserSession& s = sessions[uid];
    if (!s.active) return;
    TraceEvent ev;
    ev.kind = TraceEventKind::kMove;
    ev.user = static_cast<std::int64_t>(uid);
    if (params.mobility.model == MobilityModel::kTeleport) {
      const auto links =
          MobilityKernel::Teleport(generator, base, &s.state.pos, s.rng);
      ev.pos = s.state.pos;
      ev.rates_mbps = links.rates_mbps;
      ev.rssi_dbm = links.rssi_dbm;
      emit(std::move(ev));
    } else if (kernel.Step(&s.state, q.Now(), params.move_tick, s.rng)) {
      const auto links = kernel.LinksAt(base, s.state.pos, s.state.shadow_db);
      ev.pos = s.state.pos;
      ev.rates_mbps = links.rates_mbps;
      ev.rssi_dbm = links.rssi_dbm;
      emit(std::move(ev));
    }
    q.ScheduleAfter(params.move_tick, [&move_tick, uid] { move_tick(uid); });
  };

  const auto spawn_user = [&] {
    const std::size_t uid = sessions.size();
    sessions.emplace_back();
    UserSession& s = sessions[uid];
    s.active = true;
    s.rng = util::Rng::Substream(seed, kFirstUserStream + uid);
    s.state = kernel.Spawn(base, q.Now(), s.rng);
    if (params.load != LoadCurve::kConstant) {
      s.demand_mbps = params.base_demand_mbps * s.rng.Uniform(0.5, 1.5);
    }
    const auto links = kernel.LinksAt(base, s.state.pos, s.state.shadow_db);
    TraceEvent ev;
    ev.kind = TraceEventKind::kArrival;
    ev.user = static_cast<std::int64_t>(uid);
    ev.pos = s.state.pos;
    ev.rates_mbps = links.rates_mbps;
    ev.rssi_dbm = links.rssi_dbm;
    ev.demand_mbps = s.demand_mbps;
    emit(std::move(ev));
    const double session = churn_rng.Exponential(1.0 / params.mean_session);
    q.ScheduleAfter(session, [&, uid] {
      sessions[uid].active = false;
      TraceEvent dev;
      dev.kind = TraceEventKind::kDeparture;
      dev.user = static_cast<std::int64_t>(uid);
      emit(std::move(dev));
    });
    if (moves) {
      q.ScheduleAfter(params.move_tick, [&move_tick, uid] { move_tick(uid); });
    }
  };

  // Offered-load curve. Diurnal is sampled on the move-tick cadence (a pure
  // function of time, no draws); bursty is an exponential on/off flip
  // process. Either way the first kLoad lands at t = 0, before the initial
  // arrival batch, so replay always knows the scale. The self-rescheduling
  // std::functions live at function scope: their lambdas capture themselves
  // by reference, so they must outlive RunUntil.
  std::function<void()> load_tick;
  std::function<void()> burst_flip;
  std::function<void()> next_arrival;
  if (params.load == LoadCurve::kDiurnal) {
    load_tick = [&] {
      const double phase = q.Now() / params.load_period;
      const double scale =
          params.load_floor + (1.0 - params.load_floor) * 0.5 *
                                  (1.0 - std::cos(kTau * phase));
      TraceEvent ev;
      ev.kind = TraceEventKind::kLoad;
      ev.value = scale;
      emit(std::move(ev));
      q.ScheduleAfter(params.move_tick, load_tick);
    };
    q.ScheduleAt(0.0, load_tick);
  } else if (params.load == LoadCurve::kBursty) {
    auto high = std::make_shared<bool>(true);
    burst_flip = [&, high] {
      TraceEvent ev;
      ev.kind = TraceEventKind::kLoad;
      ev.value = *high ? params.burst_high : params.burst_low;
      emit(std::move(ev));
      *high = !*high;
      q.ScheduleAfter(load_rng.Exponential(params.burst_rate), burst_flip);
    };
    q.ScheduleAt(0.0, burst_flip);
  }

  // Background traffic: an independent on/off process per PLC contention
  // domain, toggling the domain's busy share between 0 and the peak.
  std::vector<std::function<void()>> bg_flips;
  if (params.background_share > 0.0) {
    std::set<int> domains;
    for (std::size_t j = 0; j < base.NumExtenders(); ++j) {
      domains.insert(base.PlcDomain(j));
    }
    bg_flips.reserve(domains.size());
    // First flip times are drawn up-front in sorted domain order so the
    // per-domain phases never depend on event interleaving.
    for (int domain : domains) {
      const std::size_t slot = bg_flips.size();
      auto busy = std::make_shared<bool>(false);
      bg_flips.push_back([&, domain, busy, slot] {
        *busy = !*busy;
        TraceEvent ev;
        ev.kind = TraceEventKind::kBackground;
        ev.domain = domain;
        ev.value = *busy ? params.background_share : 0.0;
        emit(std::move(ev));
        q.ScheduleAfter(bg_rng.Exponential(params.background_flip_rate),
                        [&bg_flips, slot] { bg_flips[slot](); });
      });
      q.ScheduleAfter(bg_rng.Exponential(params.background_flip_rate),
                      [&bg_flips, slot] { bg_flips[slot](); });
    }
  }

  // Initial batch at t = 0, then Poisson arrivals.
  q.ScheduleAt(0.0, [&] {
    for (std::size_t k = 0; k < params.initial_users; ++k) spawn_user();
  });
  if (params.arrival_rate > 0.0) {
    next_arrival = [&] {
      spawn_user();
      q.ScheduleAfter(churn_rng.Exponential(params.arrival_rate),
                      next_arrival);
    };
    q.ScheduleAfter(churn_rng.Exponential(params.arrival_rate), next_arrival);
  }

  q.RunUntil(params.horizon);

  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->workload.traces.Add(1);
    s->workload.events.Add(trace.events.size());
    for (const TraceEvent& ev : trace.events) {
      switch (ev.kind) {
        case TraceEventKind::kArrival:
          s->workload.arrivals.Add(1);
          break;
        case TraceEventKind::kDeparture:
          s->workload.departures.Add(1);
          break;
        case TraceEventKind::kMove:
          s->workload.moves.Add(1);
          break;
        case TraceEventKind::kLoad:
          s->workload.load_updates.Add(1);
          break;
        case TraceEventKind::kBackground:
          s->workload.background_updates.Add(1);
          break;
      }
    }
  }
  return trace;
}

// --- Serialization -------------------------------------------------------

std::string TraceToString(const WorkloadTrace& trace) {
  std::ostringstream out;
  out << "wolt-trace " << kTraceFormatVersion << "\n";
  out << "extenders " << trace.num_extenders << "\n";
  out << "horizon ";
  EmitDouble(out, trace.horizon);
  out << "\n";
  out << "events " << trace.events.size() << "\n";
  for (const TraceEvent& ev : trace.events) {
    out << ToString(ev.kind) << " t=";
    EmitDouble(out, ev.time);
    switch (ev.kind) {
      case TraceEventKind::kArrival:
      case TraceEventKind::kMove:
        out << " user=" << ev.user << " x=";
        EmitDouble(out, ev.pos.x);
        out << " y=";
        EmitDouble(out, ev.pos.y);
        if (ev.kind == TraceEventKind::kArrival) {
          out << " demand=";
          EmitDouble(out, ev.demand_mbps);
        }
        out << " rates=";
        for (std::size_t j = 0; j < ev.rates_mbps.size(); ++j) {
          if (j) out << ',';
          EmitDouble(out, ev.rates_mbps[j]);
        }
        out << " rssi=";
        for (std::size_t j = 0; j < ev.rssi_dbm.size(); ++j) {
          if (j) out << ',';
          EmitDouble(out, ev.rssi_dbm[j]);
        }
        break;
      case TraceEventKind::kDeparture:
        out << " user=" << ev.user;
        break;
      case TraceEventKind::kLoad:
        out << " scale=";
        EmitDouble(out, ev.value);
        break;
      case TraceEventKind::kBackground:
        out << " domain=" << ev.domain << " share=";
        EmitDouble(out, ev.value);
        break;
    }
    out << "\n";
  }
  return out.str();
}

TraceLoadResult TraceFromStringDetailed(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_number = 0;

  const auto next_line = [&](std::istringstream& parsed) {
    while (std::getline(in, line)) {
      ++line_number;
      const std::size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      parsed = std::istringstream(line);
      return true;
    }
    return false;
  };
  const auto fail = [&](model::IoErrorKind kind, std::string message) {
    TraceLoadResult res;
    res.error = {kind, line_number, std::move(message)};
    return res;
  };

  std::istringstream ls;
  std::string word;
  int version = 0;
  if (!next_line(ls)) {
    return fail(model::IoErrorKind::kTruncated, "empty input");
  }
  if (!(ls >> word >> version) || word != "wolt-trace") {
    return fail(model::IoErrorKind::kBadHeader,
                "expected 'wolt-trace <version>'");
  }
  if (version != kTraceFormatVersion) {
    return fail(model::IoErrorKind::kBadHeader,
                "unsupported format version " + std::to_string(version));
  }

  std::size_t num_extenders = 0;
  if (!next_line(ls)) {
    return fail(model::IoErrorKind::kTruncated, "missing extenders line");
  }
  if (!(ls >> word >> num_extenders) || word != "extenders" ||
      num_extenders == 0) {
    return fail(model::IoErrorKind::kBadCount,
                "expected 'extenders <n>' with n > 0");
  }

  if (!next_line(ls)) {
    return fail(model::IoErrorKind::kTruncated, "missing horizon line");
  }
  std::string horizon_str;
  if (!(ls >> word >> horizon_str) || word != "horizon") {
    return fail(model::IoErrorKind::kBadRecord, "expected 'horizon <t>'");
  }
  const auto horizon = ParseDouble(horizon_str);
  if (!horizon || *horizon <= 0.0) {
    return fail(model::IoErrorKind::kBadNumber, "horizon must be > 0");
  }

  std::size_t num_events = 0;
  if (!next_line(ls)) {
    return fail(model::IoErrorKind::kTruncated, "missing events line");
  }
  // Guard the count parse: `>> std::size_t` on "-1" wraps around instead of
  // failing, and a wrapped count would spin the record loop for eons.
  std::string count_str;
  if (!(ls >> word >> count_str) || word != "events") {
    return fail(model::IoErrorKind::kBadCount, "expected 'events <n>'");
  }
  const auto count_val = ParseDouble(count_str);
  if (!count_val || *count_val < 0.0 ||
      *count_val != std::floor(*count_val) || *count_val > 1e9) {
    return fail(model::IoErrorKind::kBadCount, "bad event count");
  }
  num_events = static_cast<std::size_t>(*count_val);

  WorkloadTrace trace;
  trace.num_extenders = num_extenders;
  trace.horizon = *horizon;
  trace.events.reserve(num_events);

  std::unordered_set<std::int64_t> active;
  std::unordered_set<std::int64_t> ever;
  double prev_time = 0.0;
  for (std::size_t k = 0; k < num_events; ++k) {
    if (!next_line(ls)) {
      return fail(model::IoErrorKind::kTruncated, "missing event record");
    }
    if (!(ls >> word)) {
      return fail(model::IoErrorKind::kBadRecord, "empty event record");
    }
    TraceEvent ev;
    if (word == "arrive") {
      ev.kind = TraceEventKind::kArrival;
    } else if (word == "depart") {
      ev.kind = TraceEventKind::kDeparture;
    } else if (word == "move") {
      ev.kind = TraceEventKind::kMove;
    } else if (word == "load") {
      ev.kind = TraceEventKind::kLoad;
    } else if (word == "bg") {
      ev.kind = TraceEventKind::kBackground;
    } else {
      return fail(model::IoErrorKind::kBadRecord,
                  "unknown event kind '" + word + "'");
    }
    const auto kv = ParseKv(ls);
    if (!kv) {
      return fail(model::IoErrorKind::kBadKeyValue,
                  "malformed key=value token");
    }
    if (!kv->count("t")) {
      return fail(model::IoErrorKind::kBadKeyValue, "event record needs t=");
    }
    const auto t = ParseDouble(kv->at("t"));
    if (!t || *t < 0.0) {
      return fail(model::IoErrorKind::kBadNumber, "event time must be >= 0");
    }
    if (*t < prev_time) {
      return fail(model::IoErrorKind::kBadRecord, "time moves backwards");
    }
    if (*t > trace.horizon) {
      return fail(model::IoErrorKind::kBadRecord, "event past the horizon");
    }
    prev_time = *t;
    ev.time = *t;

    const auto parse_user = [&]() -> std::optional<std::int64_t> {
      if (!kv->count("user")) return std::nullopt;
      const auto u = ParseDouble(kv->at("user"));
      if (!u || *u < 0.0 || *u != std::floor(*u)) return std::nullopt;
      return static_cast<std::int64_t>(*u);
    };

    switch (ev.kind) {
      case TraceEventKind::kArrival:
      case TraceEventKind::kMove: {
        const auto uid = parse_user();
        if (!uid) {
          return fail(model::IoErrorKind::kBadNumber,
                      "user must be an integer >= 0");
        }
        ev.user = *uid;
        if (ev.kind == TraceEventKind::kArrival) {
          if (ever.count(ev.user)) {
            return fail(model::IoErrorKind::kBadRecord,
                        "user arrives twice");
          }
          if (!kv->count("demand")) {
            return fail(model::IoErrorKind::kBadKeyValue,
                        "arrive record needs demand=");
          }
          const auto demand = ParseDouble(kv->at("demand"));
          if (!demand || *demand < 0.0) {
            return fail(model::IoErrorKind::kBadNumber,
                        "demand must be >= 0");
          }
          ev.demand_mbps = *demand;
          ever.insert(ev.user);
          active.insert(ev.user);
        } else if (!active.count(ev.user)) {
          return fail(model::IoErrorKind::kBadRecord,
                      "move of an inactive user");
        }
        if (!kv->count("x") || !kv->count("y") || !kv->count("rates") ||
            !kv->count("rssi")) {
          return fail(model::IoErrorKind::kBadKeyValue,
                      "record needs x=, y=, rates=, rssi=");
        }
        const auto x = ParseDouble(kv->at("x"));
        const auto y = ParseDouble(kv->at("y"));
        if (!x || !y) {
          return fail(model::IoErrorKind::kBadNumber, "unparsable position");
        }
        ev.pos = {*x, *y};
        const auto rates = ParseDoubleList(kv->at("rates"));
        const auto rssi = ParseDoubleList(kv->at("rssi"));
        if (!rates || !rssi) {
          return fail(model::IoErrorKind::kBadNumber,
                      "unparsable rates/rssi row");
        }
        if (rates->size() != num_extenders || rssi->size() != num_extenders) {
          return fail(model::IoErrorKind::kBadDimension,
                      "rates/rssi row length != extender count");
        }
        for (double r : *rates) {
          if (r < 0.0) {
            return fail(model::IoErrorKind::kBadNumber, "negative rate");
          }
        }
        ev.rates_mbps = *rates;
        ev.rssi_dbm = *rssi;
        break;
      }
      case TraceEventKind::kDeparture: {
        const auto uid = parse_user();
        if (!uid) {
          return fail(model::IoErrorKind::kBadNumber,
                      "user must be an integer >= 0");
        }
        ev.user = *uid;
        if (!active.erase(ev.user)) {
          return fail(model::IoErrorKind::kBadRecord,
                      "departure of an inactive user");
        }
        break;
      }
      case TraceEventKind::kLoad: {
        if (!kv->count("scale")) {
          return fail(model::IoErrorKind::kBadKeyValue,
                      "load record needs scale=");
        }
        const auto scale = ParseDouble(kv->at("scale"));
        if (!scale || *scale < 0.0) {
          return fail(model::IoErrorKind::kBadNumber, "scale must be >= 0");
        }
        ev.value = *scale;
        break;
      }
      case TraceEventKind::kBackground: {
        if (!kv->count("domain") || !kv->count("share")) {
          return fail(model::IoErrorKind::kBadKeyValue,
                      "bg record needs domain=, share=");
        }
        const auto dom = ParseDouble(kv->at("domain"));
        if (!dom || *dom < 0.0 || *dom != std::floor(*dom)) {
          return fail(model::IoErrorKind::kBadNumber,
                      "domain must be an integer >= 0");
        }
        const auto share = ParseDouble(kv->at("share"));
        if (!share || *share < 0.0 || *share > 1.0) {
          return fail(model::IoErrorKind::kBadNumber,
                      "share must be in [0, 1]");
        }
        ev.domain = static_cast<int>(*dom);
        ev.value = *share;
        break;
      }
    }
    trace.events.push_back(std::move(ev));
  }

  std::istringstream extra;
  if (next_line(extra)) {
    return fail(model::IoErrorKind::kTrailingInput,
                "unexpected input after the event list");
  }

  TraceLoadResult res;
  res.trace = std::move(trace);
  return res;
}

std::optional<WorkloadTrace> TraceFromString(const std::string& text) {
  return TraceFromStringDetailed(text).trace;
}

bool SaveTraceFile(const WorkloadTrace& trace, const std::string& path) {
  const wolt::io::IoStatus st = util::WriteFileAtomic(path, TraceToString(trace));
  wolt::io::CountWriteError(st, path);
  return st.ok();
}

TraceLoadResult LoadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    TraceLoadResult res;
    res.error = {model::IoErrorKind::kTruncated, 0,
                 "cannot open " + path};
    return res;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return TraceFromStringDetailed(buf.str());
}

}  // namespace wolt::sim
