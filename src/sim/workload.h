// Trace-driven dynamic workload generation (ROADMAP item 4): the traffic
// the anytime Reoptimize ladder and the fleet runtime were built to absorb,
// generated ahead of time as a serializable event trace.
//
// A WorkloadTrace is a time-ordered list of events — user arrivals with
// per-session offered load, Poisson departures, continuous mobility steps
// with the full refreshed link row, offered-load curve updates (diurnal or
// bursty), and background-traffic busy shares injected into PLC contention
// domains. Generation is a pure function of (scenario, params, seed): it
// runs single-threaded on the DES event queue with util::Rng substreams
// (one per concern, one per user), so the same seed yields a byte-identical
// trace no matter who replays it or at what thread count. Replay consumes
// the trace without drawing randomness at all.
//
// Mobility is integrated over the path-loss model: each user's per-extender
// shadowing is drawn ONCE at arrival and frozen, so RSSI along a trajectory
// is a deterministic, Lipschitz-continuous function of position (the
// property test bounds the per-step RSSI delta by the max leg speed). The
// legacy teleport of dynamics.cc is the degenerate infinite-speed case:
// a fresh uniform position with freshly drawn shadowing.
//
// Serialized format (line-oriented, '#' comments allowed, %.17g doubles):
//   wolt-trace 1
//   extenders <n>
//   horizon <t>
//   events <n>
//   arrive t=<t> user=<id> x=<m> y=<m> demand=<mbps> rates=<r0,..> rssi=<s0,..>
//   move t=<t> user=<id> x=<m> y=<m> rates=<r0,..> rssi=<s0,..>
//   depart t=<t> user=<id>
//   load t=<t> scale=<s>
//   bg t=<t> domain=<d> share=<s>
// Malformed inputs map to the typed model::IoErrorKind vocabulary (never an
// exception); the golden test holds the loader to that with byte soup.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/io.h"
#include "model/network.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace wolt::sim {

// --- Mobility kernel -----------------------------------------------------

// kStatic: users never move. kTeleport: the legacy dynamics.cc move event —
// a jump to a fresh uniform position with fresh shadowing (infinite speed,
// discontinuous RSSI). kWaypoint: random waypoint — pick a uniform target,
// walk there at a per-leg speed, pause, repeat. kHotspot: random waypoint
// whose targets are biased toward a few attraction points (meeting rooms).
enum class MobilityModel { kStatic = 0, kTeleport, kWaypoint, kHotspot };
const char* ToString(MobilityModel m);
std::optional<MobilityModel> MobilityModelFromString(const std::string& s);

struct MobilityParams {
  MobilityModel model = MobilityModel::kStatic;
  double speed_min = 0.5;  // per-leg speed range, metres per time unit
  double speed_max = 2.0;
  double pause = 2.0;      // dwell at each reached waypoint, time units
  std::size_t num_hotspots = 3;   // kHotspot attraction points
  double hotspot_sigma_m = 8.0;   // spread of waypoints around a hotspot
  double hotspot_bias = 0.8;      // P(next waypoint is hotspot-drawn)
};

// Per-user continuous mobility state. `shadow_db` is the frozen
// per-extender shadowing drawn at spawn: refreshing links from a new
// position re-applies the same offsets, which is what makes trajectories
// continuous instead of redrawn noise.
struct MobilityState {
  model::Position pos;
  model::Position waypoint;
  double speed = 0.0;        // current leg, metres per time unit
  double pause_until = 0.0;  // paused at pos until this absolute time
  std::vector<double> shadow_db;
};

class MobilityKernel {
 public:
  MobilityKernel(const ScenarioGenerator& generator, MobilityParams params);

  // kHotspot only: draw the attraction points (2 uniforms each). Must run
  // before any Spawn/Step so every user sees the same centres.
  void SampleHotspots(util::Rng& rng);
  const std::vector<model::Position>& hotspots() const { return hotspots_; }

  // Link row at `pos` under a frozen shadowing row — deterministic, no rng.
  ScenarioGenerator::LinkSample LinksAt(const model::Network& net,
                                        model::Position pos,
                                        const std::vector<double>& shadow) const;

  // New user: draw its frozen shadowing row, then retry a uniform position
  // (scenario placement-retry rule) until some extender is reachable under
  // that row, then start the first leg.
  MobilityState Spawn(const model::Network& net, double now,
                      util::Rng& rng) const;

  // Advance one tick ending at absolute time `now`, of length `dt`: walk
  // toward the waypoint at the leg speed, honour pauses, begin new legs.
  // Returns true iff the position changed. kStatic/kTeleport never step.
  bool Step(MobilityState* st, double now, double dt, util::Rng& rng) const;

  // The degenerate infinite-speed case, shared with dynamics.cc's legacy
  // move event: land on a fresh uniform position with freshly drawn
  // shadowing. Draw order (position, then one Normal per extender) is the
  // pre-existing contract and must not change.
  static ScenarioGenerator::LinkSample Teleport(const ScenarioGenerator& gen,
                                                const model::Network& net,
                                                model::Position* pos,
                                                util::Rng& rng);

  const MobilityParams& params() const { return params_; }

 private:
  model::Position SampleWaypoint(util::Rng& rng) const;
  void BeginLeg(MobilityState* st, double now, util::Rng& rng) const;

  const ScenarioGenerator* generator_;
  MobilityParams params_;
  std::vector<model::Position> hotspots_;
};

// --- Offered-load curves -------------------------------------------------

// kConstant: demands stay at their arrival value (0 = saturated, the
// paper's assumption). kDiurnal: a raised-cosine day curve scaling every
// demand between `load_floor` and 1.0 with period `load_period`. kBursty:
// a global on/off process flipping between `burst_high` and `burst_low`
// at exponential times.
enum class LoadCurve { kConstant = 0, kDiurnal, kBursty };
const char* ToString(LoadCurve c);
std::optional<LoadCurve> LoadCurveFromString(const std::string& s);

// --- Trace ---------------------------------------------------------------

enum class TraceEventKind {
  kArrival = 0,   // user enters: position, link row, base offered load
  kDeparture,     // user leaves
  kMove,          // mobility step: new position and refreshed link row
  kLoad,          // global offered-load scale changed
  kBackground,    // one PLC contention domain's background busy share
};
const char* ToString(TraceEventKind k);

struct TraceEvent {
  double time = 0.0;
  TraceEventKind kind = TraceEventKind::kArrival;
  std::int64_t user = -1;          // arrival / departure / move
  model::Position pos;             // arrival / move
  std::vector<double> rates_mbps;  // arrival / move, one per extender
  std::vector<double> rssi_dbm;    // arrival / move, one per extender
  double demand_mbps = 0.0;        // arrival: base offered load (0 = saturated)
  int domain = -1;                 // background: PLC contention domain
  double value = 0.0;              // load: scale; background: busy share [0,1]
};

struct WorkloadTrace {
  std::size_t num_extenders = 0;
  double horizon = 0.0;
  std::vector<TraceEvent> events;  // non-decreasing in time
};

struct WorkloadParams {
  double horizon = 36.0;  // trace length, time units

  // Churn: Poisson arrivals at `arrival_rate`; each session lasts
  // Exponential(mean = mean_session). arrival_rate 0 disables churn.
  // `initial_users` arrive in a batch at t = 0 (their sessions still end).
  double arrival_rate = 3.0;
  double mean_session = 24.0;
  std::size_t initial_users = 0;

  // Mobility: per-user position/link refresh every `move_tick` time units
  // (also the cadence of teleports under kTeleport).
  MobilityParams mobility;
  double move_tick = 1.0;

  // Offered load. Base demand is jittered per user (uniform 0.5x..1.5x)
  // and modulated by the curve; with kConstant the demand stays 0
  // (saturated) and no kLoad events are emitted.
  LoadCurve load = LoadCurve::kConstant;
  double base_demand_mbps = 50.0;
  double load_period = 24.0;  // kDiurnal period
  double load_floor = 0.25;   // kDiurnal trough, fraction of peak
  double burst_rate = 0.5;    // kBursty flips per time unit
  double burst_high = 1.0;
  double burst_low = 0.1;

  // Background traffic injected into PLC contention domains: an on/off
  // process per domain flipping between busy share 0 and
  // `background_share` at rate `background_flip_rate`. share 0 disables.
  // Replay turns a busy share s into capacity reports of (1-s) x baseline
  // for every extender in the domain — the flap-quarantine trigger.
  double background_share = 0.0;  // peak busy share in [0, 1]
  double background_flip_rate = 0.5;
};

// Generates the full event trace for `base` (extenders only; users come
// from the trace). Pure function of its arguments: all randomness is drawn
// from util::Rng substreams of `seed` (stream 0 churn, 1 load, 2
// background, 3 hotspots, 16+k user k), scheduled on the DES event queue.
// Throws std::invalid_argument on nonsensical parameters.
WorkloadTrace GenerateTrace(const ScenarioGenerator& generator,
                            const model::Network& base,
                            const WorkloadParams& params, std::uint64_t seed);

// --- Serialization -------------------------------------------------------

struct TraceLoadResult {
  std::optional<WorkloadTrace> trace;  // engaged iff the parse succeeded
  model::IoError error;                // kind == kNone iff trace is engaged

  bool ok() const { return trace.has_value(); }
};

// Byte-stable round trip: TraceFromStringDetailed(TraceToString(t)) parses
// and re-serializes to identical bytes. The loader is total — any input
// yields either a validated trace (ordered times, live user references,
// in-range values) or a typed error, never an exception.
std::string TraceToString(const WorkloadTrace& trace);
TraceLoadResult TraceFromStringDetailed(const std::string& text);
std::optional<WorkloadTrace> TraceFromString(const std::string& text);
bool SaveTraceFile(const WorkloadTrace& trace, const std::string& path);
TraceLoadResult LoadTraceFile(const std::string& path);

}  // namespace wolt::sim
