#include "sim/des.h"

#include <stdexcept>
#include <utility>

namespace wolt::sim {

void EventQueue::ScheduleAt(double when, Callback fn) {
  if (when < now_) throw std::invalid_argument("scheduling into the past");
  events_.push(Event{when, next_seq_++, std::move(fn)});
}

void EventQueue::ScheduleAfter(double delay, Callback fn) {
  if (delay < 0.0) throw std::invalid_argument("negative delay");
  ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::RunNext() {
  if (events_.empty()) return false;
  // priority_queue::top is const; the event is copied out before pop so the
  // callback may schedule further events safely.
  Event event = events_.top();
  events_.pop();
  now_ = event.when;
  event.fn();
  return true;
}

void EventQueue::RunUntil(double deadline) {
  while (!events_.empty() && events_.top().when <= deadline) {
    RunNext();
  }
  if (now_ < deadline) now_ = deadline;
}

void EventQueue::Clear() {
  while (!events_.empty()) events_.pop();
}

}  // namespace wolt::sim
