#include "sim/dynamics.h"

#include <memory>
#include <stdexcept>

#include "fault/health.h"
#include "obs/trace.h"
#include "sim/des.h"
#include "util/stats.h"

namespace wolt::sim {

std::vector<EpochStats> RunDynamicSimulation(
    const ScenarioGenerator& generator,
    const std::vector<core::AssociationPolicy*>& policies,
    const DynamicsParams& params, util::Rng& rng) {
  if (policies.empty()) throw std::invalid_argument("no policies");
  if (params.arrival_rate <= 0.0 || params.epoch_length <= 0.0 ||
      params.epochs <= 0) {
    throw std::invalid_argument("bad dynamics parameters");
  }

  // Start with extenders only; the arrival process populates users.
  ScenarioParams scenario = generator.params();
  scenario.num_users = 0;
  ScenarioGenerator empty_gen(scenario);
  model::Network net = empty_gen.Generate(rng);

  std::vector<model::Assignment> assignments(
      policies.size(), model::Assignment(net.NumUsers()));
  const model::Evaluator evaluator(params.eval);

  EventQueue queue;
  std::size_t arrivals_this_epoch = 0;
  std::size_t departures_this_epoch = 0;
  std::size_t moves_this_epoch = 0;

  // Self-rescheduling arrival process.
  std::function<void()> arrival = [&] {
    generator.AddRandomUser(net, rng);
    for (auto& a : assignments) a.AppendUser();
    ++arrivals_this_epoch;
    queue.ScheduleAfter(rng.Exponential(params.arrival_rate), arrival);
  };
  queue.ScheduleAfter(rng.Exponential(params.arrival_rate), arrival);

  // Global departure process: each event removes one uniformly random user.
  std::function<void()> departure = [&] {
    if (net.NumUsers() > 0) {
      const std::size_t victim = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(net.NumUsers()) - 1));
      net.RemoveUser(victim);
      for (auto& a : assignments) a.EraseUser(victim);
      ++departures_this_epoch;
    }
    queue.ScheduleAfter(rng.Exponential(params.departure_rate), departure);
  };
  if (params.departure_rate > 0.0) {
    queue.ScheduleAfter(rng.Exponential(params.departure_rate), departure);
  }

  // Mobility: teleport a random user and refresh its links. Assignments
  // that became infeasible are dropped; the policies repair them at the
  // next epoch boundary.
  // Backhaul fault injection: the HealthModel owns the ground-truth backhaul
  // state and applies every transition straight to the shared network, so
  // each policy's epoch re-association sees the same outages and must
  // evacuate dead extenders on its own. Constructed only when enabled to
  // leave the fault-free RNG stream (and all existing results) unchanged.
  std::unique_ptr<fault::HealthModel> health;
  if (params.health.any()) {
    std::vector<double> baselines(net.NumExtenders());
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      baselines[j] = net.PlcRate(j);
    }
    health = std::make_unique<fault::HealthModel>(std::move(baselines),
                                                  params.health, rng.Next());
    health->Schedule(queue, [&net](std::size_t j, double mbps) {
      net.SetPlcRate(j, mbps);
    });
  }

  std::function<void()> move = [&] {
    if (net.NumUsers() > 0) {
      const std::size_t mover = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(net.NumUsers()) - 1));
      const model::Position pos = generator.SampleUserPosition(rng);
      const ScenarioGenerator::LinkSample links =
          generator.LinksAt(net, pos, rng);
      net.SetUserPosition(mover, pos);
      for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
        net.SetWifiRate(mover, j, links.rates_mbps[j]);
        net.SetRssi(mover, j, links.rssi_dbm[j]);
      }
      for (auto& a : assignments) {
        const int e = a.ExtenderOf(mover);
        if (e != model::Assignment::kUnassigned &&
            net.WifiRate(mover, static_cast<std::size_t>(e)) <= 0.0) {
          a.Unassign(mover);
        }
      }
      ++moves_this_epoch;
    }
    queue.ScheduleAfter(rng.Exponential(params.move_rate), move);
  };
  if (params.move_rate > 0.0) {
    queue.ScheduleAfter(rng.Exponential(params.move_rate), move);
  }

  std::vector<EpochStats> history;
  fault::HealthStats last_health;
  for (int epoch = 1; epoch <= params.epochs; ++epoch) {
    // One span per online epoch: drives the fig6b trace recipe
    // (EXPERIMENTS.md). Inert unless a global tracer is installed.
    obs::ScopedTimer epoch_span("dynamics.epoch", "dynamics");
    arrivals_this_epoch = 0;
    departures_this_epoch = 0;
    moves_this_epoch = 0;
    queue.RunUntil(static_cast<double>(epoch) * params.epoch_length);

    EpochStats stats;
    stats.epoch = epoch;
    stats.population = net.NumUsers();
    stats.arrivals = arrivals_this_epoch;
    stats.departures = departures_this_epoch;
    stats.moves = moves_this_epoch;
    if (health) {
      const fault::HealthStats& h = health->stats();
      stats.crashes = h.crashes - last_health.crashes;
      stats.repairs = h.repairs - last_health.repairs;
      stats.flaps = h.flaps - last_health.flaps;
      stats.extenders_down = health->NumDown();
      last_health = h;
    }

    for (std::size_t p = 0; p < policies.size(); ++p) {
      obs::ScopedTimer policy_span("dynamics.reassociate", "dynamics");
      const model::Assignment before = assignments[p];
      assignments[p] = policies[p]->Associate(net, before);
      const model::EvalResult eval = evaluator.Evaluate(net, assignments[p]);

      PolicyEpochStats ps;
      ps.policy = policies[p]->Name();
      ps.aggregate_mbps = eval.aggregate_mbps;
      ps.jain_fairness = util::JainFairnessIndex(eval.user_throughput_mbps);
      ps.reassignments =
          model::Assignment::CountReassignments(before, assignments[p]);
      for (std::size_t i = 0; i < net.NumUsers(); ++i) {
        const int e = assignments[p].ExtenderOf(i);
        if (e != model::Assignment::kUnassigned &&
            net.PlcRate(static_cast<std::size_t>(e)) <= 0.0) {
          ++ps.stranded_users;
        }
      }
      stats.per_policy.push_back(std::move(ps));
    }
    history.push_back(std::move(stats));
  }
  return history;
}

}  // namespace wolt::sim
