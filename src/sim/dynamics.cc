#include "sim/dynamics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "assign/brute_force.h"
#include "core/wolt.h"
#include "fault/health.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sim/des.h"
#include "sim/workload.h"
#include "util/stats.h"

namespace wolt::sim {

std::vector<EpochStats> RunDynamicSimulation(
    const ScenarioGenerator& generator,
    const std::vector<core::AssociationPolicy*>& policies,
    const DynamicsParams& params, util::Rng& rng) {
  if (policies.empty()) throw std::invalid_argument("no policies");
  if (params.arrival_rate <= 0.0 || params.epoch_length <= 0.0 ||
      params.epochs <= 0) {
    throw std::invalid_argument("bad dynamics parameters");
  }

  // Start with extenders only; the arrival process populates users.
  ScenarioParams scenario = generator.params();
  scenario.num_users = 0;
  ScenarioGenerator empty_gen(scenario);
  model::Network net = empty_gen.Generate(rng);

  std::vector<model::Assignment> assignments(
      policies.size(), model::Assignment(net.NumUsers()));
  const model::Evaluator evaluator(params.eval);

  EventQueue queue;
  std::size_t arrivals_this_epoch = 0;
  std::size_t departures_this_epoch = 0;
  std::size_t moves_this_epoch = 0;

  // Self-rescheduling arrival process.
  std::function<void()> arrival = [&] {
    generator.AddRandomUser(net, rng);
    for (auto& a : assignments) a.AppendUser();
    ++arrivals_this_epoch;
    queue.ScheduleAfter(rng.Exponential(params.arrival_rate), arrival);
  };
  queue.ScheduleAfter(rng.Exponential(params.arrival_rate), arrival);

  // Global departure process: each event removes one uniformly random user.
  std::function<void()> departure = [&] {
    if (net.NumUsers() > 0) {
      const std::size_t victim = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(net.NumUsers()) - 1));
      net.RemoveUser(victim);
      for (auto& a : assignments) a.EraseUser(victim);
      ++departures_this_epoch;
    }
    queue.ScheduleAfter(rng.Exponential(params.departure_rate), departure);
  };
  if (params.departure_rate > 0.0) {
    queue.ScheduleAfter(rng.Exponential(params.departure_rate), departure);
  }

  // Mobility: teleport a random user and refresh its links. Assignments
  // that became infeasible are dropped; the policies repair them at the
  // next epoch boundary.
  // Backhaul fault injection: the HealthModel owns the ground-truth backhaul
  // state and applies every transition straight to the shared network, so
  // each policy's epoch re-association sees the same outages and must
  // evacuate dead extenders on its own. Constructed only when enabled to
  // leave the fault-free RNG stream (and all existing results) unchanged.
  std::unique_ptr<fault::HealthModel> health;
  if (params.health.any()) {
    std::vector<double> baselines(net.NumExtenders());
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      baselines[j] = net.PlcRate(j);
    }
    health = std::make_unique<fault::HealthModel>(std::move(baselines),
                                                  params.health, rng.Next());
    health->Schedule(queue, [&net](std::size_t j, double mbps) {
      net.SetPlcRate(j, mbps);
    });
  }

  std::function<void()> move = [&] {
    if (net.NumUsers() > 0) {
      const std::size_t mover = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(net.NumUsers()) - 1));
      // Shared with the workload mobility kernel, where teleport is the
      // degenerate infinite-speed model; the kernel preserves this path's
      // draw order (position, then one shadowing Normal per extender).
      model::Position pos;
      const ScenarioGenerator::LinkSample links =
          MobilityKernel::Teleport(generator, net, &pos, rng);
      net.SetUserPosition(mover, pos);
      for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
        net.SetWifiRate(mover, j, links.rates_mbps[j]);
        net.SetRssi(mover, j, links.rssi_dbm[j]);
      }
      for (auto& a : assignments) {
        const int e = a.ExtenderOf(mover);
        if (e != model::Assignment::kUnassigned &&
            net.WifiRate(mover, static_cast<std::size_t>(e)) <= 0.0) {
          a.Unassign(mover);
        }
      }
      ++moves_this_epoch;
    }
    queue.ScheduleAfter(rng.Exponential(params.move_rate), move);
  };
  if (params.move_rate > 0.0) {
    queue.ScheduleAfter(rng.Exponential(params.move_rate), move);
  }

  std::vector<EpochStats> history;
  fault::HealthStats last_health;
  for (int epoch = 1; epoch <= params.epochs; ++epoch) {
    // One span per online epoch: drives the fig6b trace recipe
    // (EXPERIMENTS.md). Inert unless a global tracer is installed.
    obs::ScopedTimer epoch_span("dynamics.epoch", "dynamics");
    arrivals_this_epoch = 0;
    departures_this_epoch = 0;
    moves_this_epoch = 0;
    queue.RunUntil(static_cast<double>(epoch) * params.epoch_length);

    EpochStats stats;
    stats.epoch = epoch;
    stats.population = net.NumUsers();
    stats.arrivals = arrivals_this_epoch;
    stats.departures = departures_this_epoch;
    stats.moves = moves_this_epoch;
    if (health) {
      const fault::HealthStats& h = health->stats();
      stats.crashes = h.crashes - last_health.crashes;
      stats.repairs = h.repairs - last_health.repairs;
      stats.flaps = h.flaps - last_health.flaps;
      stats.extenders_down = health->NumDown();
      last_health = h;
    }

    for (std::size_t p = 0; p < policies.size(); ++p) {
      obs::ScopedTimer policy_span("dynamics.reassociate", "dynamics");
      const model::Assignment before = assignments[p];
      assignments[p] = policies[p]->Associate(net, before);
      const model::EvalResult eval = evaluator.Evaluate(net, assignments[p]);

      PolicyEpochStats ps;
      ps.policy = policies[p]->Name();
      ps.aggregate_mbps = eval.aggregate_mbps;
      ps.jain_fairness = util::JainFairnessIndex(eval.user_throughput_mbps);
      ps.reassignments =
          model::Assignment::CountReassignments(before, assignments[p]);
      for (std::size_t i = 0; i < net.NumUsers(); ++i) {
        const int e = assignments[p].ExtenderOf(i);
        if (e != model::Assignment::kUnassigned &&
            net.PlcRate(static_cast<std::size_t>(e)) <= 0.0) {
          ++ps.stranded_users;
        }
      }
      stats.per_policy.push_back(std::move(ps));
    }
    history.push_back(std::move(stats));
  }
  return history;
}

namespace {

// Frozen-snapshot optimum for one epoch. Brute force (relaxed problem:
// users may stay unassigned, which makes it a true upper bound on anything
// the controller can commit) when the space fits; otherwise WOLT-S with
// subset search solved from scratch — no stickiness, so it tracks the
// per-epoch optimum instead of the previous plan.
double SolveEpochOracle(const model::Network& snap,
                        const FrontierParams& params,
                        const model::Evaluator& evaluator, bool* exact) {
  *exact = false;
  if (snap.NumUsers() == 0) {
    *exact = true;
    return 0.0;
  }
  if (snap.NumUsers() <= params.oracle_bf_max_users) {
    const std::uint64_t arms =
        static_cast<std::uint64_t>(snap.NumExtenders()) + 1;  // + unassigned
    std::uint64_t space = 1;
    bool fits = true;
    for (std::size_t i = 0; i < snap.NumUsers(); ++i) {
      if (space > params.oracle_max_combinations / arms) {
        fits = false;
        break;
      }
      space *= arms;
    }
    if (fits && space <= params.oracle_max_combinations) {
      assign::BruteForceOptions bf;
      bf.max_combinations = params.oracle_max_combinations;
      bf.allow_unassigned = true;
      bf.eval = params.eval;
      *exact = true;
      return assign::SolveBruteForce(snap, bf).best_aggregate_mbps;
    }
  }
  core::WoltOptions wolt;
  wolt.sticky = false;
  wolt.subset_search = true;
  wolt.eval = params.eval;
  core::WoltPolicy oracle(wolt);
  const model::Assignment fresh(snap.NumUsers());
  return evaluator.AggregateThroughput(snap, oracle.Associate(snap, fresh));
}

}  // namespace

FrontierResult RunTraceFrontier(const model::Network& base,
                                const WorkloadTrace& trace,
                                core::PolicyPtr policy,
                                const FrontierParams& params) {
  if (base.NumUsers() != 0) {
    throw std::invalid_argument("frontier base network must be extenders-only");
  }
  if (base.NumExtenders() != trace.num_extenders) {
    throw std::invalid_argument("trace/network extender count mismatch");
  }
  if (params.epochs <= 0 || params.epoch_length <= 0.0 ||
      !std::isfinite(params.epoch_length)) {
    throw std::invalid_argument("bad frontier parameters");
  }

  core::CentralController ctrl(base.NumExtenders(), std::move(policy),
                               params.retry, params.quarantine);
  // Seed backhaul capacities from the ground-truth topology; baselines are
  // retained so background busy shares scale from the true capacity, not
  // from whatever the previous background level left behind.
  std::vector<double> baselines(base.NumExtenders());
  for (std::size_t j = 0; j < base.NumExtenders(); ++j) {
    baselines[j] = base.PlcRate(j);
    ctrl.HandleCapacityReport(
        {static_cast<int>(j), baselines[j]});
  }

  // The controller's internal network carries no PLC topology (every
  // extender defaults to domain 0), so scoring snapshots get the base
  // network's contention domains patched back in before evaluation.
  const model::Evaluator evaluator(params.eval);
  const auto scoring_snapshot = [&] {
    model::Network snap = ctrl.network();
    for (std::size_t j = 0; j < base.NumExtenders(); ++j) {
      snap.SetPlcDomain(j, base.PlcDomain(j));
    }
    return snap;
  };

  // Replay-side user state: last links plus the unscaled base demand, so
  // load-curve events can re-derive every live user's effective demand.
  struct ReplayUser {
    std::vector<double> rates_mbps;
    std::vector<double> rssi_dbm;
    double base_demand_mbps = 0.0;
  };
  std::map<std::int64_t, ReplayUser> live;  // ordered: deterministic refresh
  double load_scale = 1.0;

  const auto send_scan = [&](std::int64_t uid, const ReplayUser& ru) {
    core::ScanReport scan;
    scan.user_id = uid;
    scan.rates_mbps = ru.rates_mbps;
    scan.rssi_dbm = ru.rssi_dbm;
    scan.demand_mbps = ru.base_demand_mbps > 0.0
                           ? ru.base_demand_mbps * load_scale
                           : 0.0;  // 0 = saturated
    ctrl.IngestScan(scan);
  };

  FrontierResult out;
  std::size_t ev_idx = 0;
  std::size_t arrivals = 0, departures = 0, moves = 0;
  std::size_t prev_trips = 0;
  std::size_t population_epochs = 0;
  double regret_sum = 0.0;
  int regret_epochs = 0;

  for (int epoch = 1; epoch <= params.epochs; ++epoch) {
    const double boundary = static_cast<double>(epoch) * params.epoch_length;
    arrivals = departures = moves = 0;
    for (; ev_idx < trace.events.size() && trace.events[ev_idx].time <= boundary;
         ++ev_idx) {
      const TraceEvent& ev = trace.events[ev_idx];
      ctrl.AdvanceTime(ev.time);
      switch (ev.kind) {
        case TraceEventKind::kArrival: {
          ReplayUser ru{ev.rates_mbps, ev.rssi_dbm, ev.demand_mbps};
          send_scan(ev.user, ru);
          live.emplace(ev.user, std::move(ru));
          ++arrivals;
          break;
        }
        case TraceEventKind::kMove: {
          const auto it = live.find(ev.user);
          if (it == live.end()) break;  // loader guarantees this is dead code
          it->second.rates_mbps = ev.rates_mbps;
          it->second.rssi_dbm = ev.rssi_dbm;
          send_scan(ev.user, it->second);
          ++moves;
          break;
        }
        case TraceEventKind::kDeparture:
          live.erase(ev.user);
          ctrl.HandleUserDeparture(ev.user);
          ++departures;
          break;
        case TraceEventKind::kLoad:
          load_scale = ev.value;
          for (const auto& [uid, ru] : live) {
            if (ru.base_demand_mbps > 0.0) send_scan(uid, ru);
          }
          break;
        case TraceEventKind::kBackground:
          for (std::size_t j = 0; j < base.NumExtenders(); ++j) {
            if (base.PlcDomain(j) != ev.domain) continue;
            ctrl.HandleCapacityReport(
                {static_cast<int>(j), baselines[j] * (1.0 - ev.value)});
          }
          break;
      }
    }
    ctrl.AdvanceTime(boundary);

    // Association before the boundary solve, keyed by stable user id so
    // index churn from departures cannot masquerade as a reassociation.
    std::map<std::int64_t, int> before;
    for (const std::int64_t id : ctrl.UserIds()) {
      if (const std::optional<int> e = ctrl.ExtenderOf(id)) before[id] = *e;
    }

    const core::ReoptReport report = ctrl.ReoptimizeUpToTier(params.tier);

    FrontierEpoch es;
    es.epoch = epoch;
    es.population = ctrl.NumUsers();
    es.arrivals = arrivals;
    es.departures = departures;
    es.moves = moves;
    es.served_tier = report.tier;
    for (const std::int64_t id : ctrl.UserIds()) {
      const std::optional<int> e = ctrl.ExtenderOf(id);
      const auto it = before.find(id);
      if (e && it != before.end() && it->second != *e) ++es.reassociations;
    }
    es.quarantine_trips = ctrl.QuarantineTrips() - prev_trips;
    prev_trips = ctrl.QuarantineTrips();

    const model::Network snap = scoring_snapshot();
    const model::EvalResult eval = evaluator.Evaluate(snap, ctrl.assignment());
    es.aggregate_mbps = eval.aggregate_mbps;
    es.jain_fairness = util::JainFairnessIndex(eval.user_throughput_mbps);

    if (params.compute_oracle) {
      es.oracle_mbps =
          SolveEpochOracle(snap, params, evaluator, &es.oracle_exact);
      if (obs::MetricsScope* s = obs::CurrentScope()) {
        s->workload.oracle_solves.Add(1);
        if (es.oracle_exact) s->workload.oracle_exact.Add(1);
      }
      if (es.oracle_mbps > 0.0) {
        regret_sum +=
            std::max(0.0, (es.oracle_mbps - es.aggregate_mbps) / es.oracle_mbps);
        ++regret_epochs;
      }
    }

    if (obs::MetricsScope* s = obs::CurrentScope()) {
      s->workload.epochs.Add(1);
      s->workload.reassociations.Add(
          static_cast<std::int64_t>(es.reassociations));
    }

    out.mean_aggregate_mbps += es.aggregate_mbps;
    out.mean_oracle_mbps += es.oracle_mbps;
    out.mean_jain += es.jain_fairness;
    out.total_reassociations += es.reassociations;
    population_epochs += es.population;
    if (epoch == params.epochs) {
      out.final_user_throughput_mbps = eval.user_throughput_mbps;
    }
    out.epochs.push_back(std::move(es));
  }

  const double n = static_cast<double>(params.epochs);
  out.mean_aggregate_mbps /= n;
  out.mean_oracle_mbps /= n;
  out.mean_jain /= n;
  out.regret = regret_epochs > 0 ? regret_sum / regret_epochs : 0.0;
  out.reassoc_per_user_epoch =
      population_epochs > 0
          ? static_cast<double>(out.total_reassociations) /
                static_cast<double>(population_epochs)
          : 0.0;
  out.quarantine_trips = ctrl.QuarantineTrips();
  return out;
}

}  // namespace wolt::sim
