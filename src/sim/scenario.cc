#include "sim/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace wolt::sim {

ScenarioGenerator::ScenarioGenerator(ScenarioParams params)
    : params_(std::move(params)) {
  if (params_.num_extenders == 0) throw std::invalid_argument("no extenders");
  if (params_.width_m <= 0.0 || params_.height_m <= 0.0) {
    throw std::invalid_argument("bad floor dimensions");
  }
}

model::Position ScenarioGenerator::SampleUserPosition(util::Rng& rng) const {
  return {rng.Uniform(0.0, params_.width_m),
          rng.Uniform(0.0, params_.height_m)};
}

ScenarioGenerator::LinkSample ScenarioGenerator::LinksAt(
    const model::Network& net, model::Position pos, util::Rng& rng) const {
  LinkSample sample;
  sample.rates_mbps.assign(net.NumExtenders(), 0.0);
  sample.rssi_dbm.assign(net.NumExtenders(), 0.0);
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    const double d = model::Distance(pos, net.ExtenderAt(j).position);
    const double shadow = rng.Normal(0.0, params_.shadowing_sigma_db);
    const double rssi = params_.path_loss.RssiDbm(d, shadow);
    sample.rssi_dbm[j] = rssi;
    sample.rates_mbps[j] = params_.rate_table.RateAtRssi(rssi);
  }
  return sample;
}

std::vector<double> ScenarioGenerator::RatesAt(const model::Network& net,
                                               model::Position pos,
                                               util::Rng& rng) const {
  return LinksAt(net, pos, rng).rates_mbps;
}

model::Network ScenarioGenerator::Generate(util::Rng& rng) const {
  model::Network net(0, params_.num_extenders);

  // Extenders on a jittered grid covering the floor.
  const std::size_t grid_cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(params_.num_extenders))));
  const std::size_t grid_rows =
      (params_.num_extenders + grid_cols - 1) / grid_cols;
  const double cell_w = params_.width_m / static_cast<double>(grid_cols);
  const double cell_h = params_.height_m / static_cast<double>(grid_rows);
  plc::CapacitySampler plc_sampler(params_.plc);
  for (std::size_t j = 0; j < params_.num_extenders; ++j) {
    const std::size_t gx = j % grid_cols;
    const std::size_t gy = j / grid_cols;
    const double jx =
        rng.Uniform(-params_.extender_grid_jitter, params_.extender_grid_jitter);
    const double jy =
        rng.Uniform(-params_.extender_grid_jitter, params_.extender_grid_jitter);
    model::Position p{(static_cast<double>(gx) + 0.5 + jx) * cell_w,
                      (static_cast<double>(gy) + 0.5 + jy) * cell_h};
    p.x = std::clamp(p.x, 0.0, params_.width_m);
    p.y = std::clamp(p.y, 0.0, params_.height_m);
    net.SetExtenderPosition(j, p);
    net.SetPlcRate(j, plc_sampler.Sample(rng));
    net.SetExtenderLabel(j, "ext" + std::to_string(j));
  }

  for (std::size_t i = 0; i < params_.num_users; ++i) {
    AddRandomUser(net, rng);
  }
  return net;
}

std::size_t ScenarioGenerator::AddRandomUser(model::Network& net,
                                             util::Rng& rng) const {
  model::Position pos = SampleUserPosition(rng);
  LinkSample links = LinksAt(net, pos, rng);
  for (int attempt = 0; attempt < params_.max_placement_retries; ++attempt) {
    bool reachable = false;
    for (double r : links.rates_mbps) {
      if (r > 0.0) {
        reachable = true;
        break;
      }
    }
    if (reachable) break;
    pos = SampleUserPosition(rng);
    links = LinksAt(net, pos, rng);
  }
  model::User user;
  user.position = pos;
  user.label = "user" + std::to_string(net.NumUsers());
  const std::size_t idx = net.AddUser(user, links.rates_mbps);
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    net.SetRssi(idx, j, links.rssi_dbm[j]);
  }
  return idx;
}

}  // namespace wolt::sim
