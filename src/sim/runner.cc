#include "sim/runner.h"

#include <algorithm>
#include <stdexcept>

#include "util/stats.h"

namespace wolt::sim {

std::vector<double> PolicyTrials::Aggregates() const {
  std::vector<double> xs;
  xs.reserve(trials.size());
  for (const auto& t : trials) xs.push_back(t.aggregate_mbps);
  return xs;
}

double PolicyTrials::MeanAggregate() const {
  const std::vector<double> xs = Aggregates();
  return util::Mean(xs);
}

double PolicyTrials::MeanJain() const {
  std::vector<double> xs;
  xs.reserve(trials.size());
  for (const auto& t : trials) xs.push_back(t.jain_fairness);
  return util::Mean(xs);
}

TrialRecord EvaluateTrial(const model::Evaluator& evaluator,
                          const model::Network& net,
                          core::AssociationPolicy& policy) {
  const model::Assignment assignment = policy.AssociateFresh(net);
  const model::EvalResult res = evaluator.Evaluate(net, assignment);
  TrialRecord record;
  record.aggregate_mbps = res.aggregate_mbps;
  record.jain_fairness = util::JainFairnessIndex(res.user_throughput_mbps);
  record.user_throughput_mbps = res.user_throughput_mbps;
  return record;
}

std::vector<PolicyTrials> RunNetworkTrials(
    const std::vector<model::Network>& networks,
    const std::vector<core::AssociationPolicy*>& policies,
    model::EvalOptions eval) {
  if (policies.empty()) throw std::invalid_argument("no policies");
  const model::Evaluator evaluator(eval);

  std::vector<PolicyTrials> results(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    results[p].policy = policies[p]->Name();
  }
  for (const model::Network& net : networks) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      results[p].trials.push_back(
          EvaluateTrial(evaluator, net, *policies[p]));
    }
  }
  return results;
}

std::vector<PolicyTrials> RunStaticTrials(
    const ScenarioGenerator& generator,
    const std::vector<core::AssociationPolicy*>& policies,
    int num_trials, util::Rng& rng, model::EvalOptions eval) {
  std::vector<model::Network> networks;
  networks.reserve(static_cast<std::size_t>(num_trials));
  for (int t = 0; t < num_trials; ++t) {
    util::Rng trial_rng = rng.Fork();
    networks.push_back(generator.Generate(trial_rng));
  }
  return RunNetworkTrials(networks, policies, eval);
}

double PolicyResilience::MeanRecoveryRatio() const {
  if (trials.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& t : trials) {
    sum += t.healthy_mbps > 0.0 ? t.recovered_mbps / t.healthy_mbps : 0.0;
  }
  return sum / static_cast<double>(trials.size());
}

std::vector<PolicyResilience> RunFailureTrials(
    const ScenarioGenerator& generator,
    const std::vector<core::AssociationPolicy*>& policies, int num_trials,
    int kill_count, util::Rng& rng, model::EvalOptions eval) {
  if (policies.empty()) throw std::invalid_argument("no policies");
  if (num_trials <= 0 || kill_count <= 0) {
    throw std::invalid_argument("bad failure-trial parameters");
  }
  const model::Evaluator evaluator(eval);

  std::vector<PolicyResilience> results(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    results[p].policy = policies[p]->Name();
  }
  for (int t = 0; t < num_trials; ++t) {
    util::Rng trial_rng = rng.Fork();
    const model::Network healthy_net = generator.Generate(trial_rng);
    for (std::size_t p = 0; p < policies.size(); ++p) {
      ResilienceRecord rec;
      const model::Assignment before =
          policies[p]->AssociateFresh(healthy_net);
      rec.healthy_mbps =
          evaluator.Evaluate(healthy_net, before).aggregate_mbps;

      // Kill the `kill_count` busiest extenders under this assignment.
      model::Network net = healthy_net;
      const std::vector<int> load = before.LoadVector(net.NumExtenders());
      std::vector<std::size_t> order(net.NumExtenders());
      for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (load[a] != load[b]) return load[a] > load[b];
        return a < b;
      });
      const std::size_t kills = std::min(static_cast<std::size_t>(kill_count),
                                         net.NumExtenders());
      for (std::size_t k = 0; k < kills; ++k) {
        net.SetPlcRate(order[k], 0.0);
        rec.stranded_users +=
            static_cast<std::size_t>(load[order[k]]);
      }

      rec.degraded_mbps = evaluator.Evaluate(net, before).aggregate_mbps;
      const model::Assignment after = policies[p]->Associate(net, before);
      rec.recovered_mbps = evaluator.Evaluate(net, after).aggregate_mbps;
      rec.reassignments = model::Assignment::CountReassignments(before, after);
      results[p].trials.push_back(std::move(rec));
    }
  }
  return results;
}

WinLoss CompareUsers(const PolicyTrials& a, const PolicyTrials& b,
                     double tolerance_mbps) {
  if (a.trials.size() != b.trials.size()) {
    throw std::invalid_argument("trial count mismatch");
  }
  std::size_t better = 0, worse = 0, equal = 0;
  for (std::size_t t = 0; t < a.trials.size(); ++t) {
    const auto& ua = a.trials[t].user_throughput_mbps;
    const auto& ub = b.trials[t].user_throughput_mbps;
    if (ua.size() != ub.size()) {
      throw std::invalid_argument("user count mismatch in trial");
    }
    for (std::size_t i = 0; i < ua.size(); ++i) {
      const double diff = ua[i] - ub[i];
      if (diff > tolerance_mbps) {
        ++better;
      } else if (diff < -tolerance_mbps) {
        ++worse;
      } else {
        ++equal;
      }
    }
  }
  const double total = static_cast<double>(better + worse + equal);
  if (total == 0.0) return {};
  return {static_cast<double>(better) / total,
          static_cast<double>(worse) / total,
          static_cast<double>(equal) / total};
}

}  // namespace wolt::sim
