#include "sim/runner.h"

#include <stdexcept>

#include "util/stats.h"

namespace wolt::sim {

std::vector<double> PolicyTrials::Aggregates() const {
  std::vector<double> xs;
  xs.reserve(trials.size());
  for (const auto& t : trials) xs.push_back(t.aggregate_mbps);
  return xs;
}

double PolicyTrials::MeanAggregate() const {
  const std::vector<double> xs = Aggregates();
  return util::Mean(xs);
}

double PolicyTrials::MeanJain() const {
  std::vector<double> xs;
  xs.reserve(trials.size());
  for (const auto& t : trials) xs.push_back(t.jain_fairness);
  return util::Mean(xs);
}

std::vector<PolicyTrials> RunNetworkTrials(
    const std::vector<model::Network>& networks,
    const std::vector<core::AssociationPolicy*>& policies,
    model::EvalOptions eval) {
  if (policies.empty()) throw std::invalid_argument("no policies");
  const model::Evaluator evaluator(eval);

  std::vector<PolicyTrials> results(policies.size());
  for (std::size_t p = 0; p < policies.size(); ++p) {
    results[p].policy = policies[p]->Name();
  }
  for (const model::Network& net : networks) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const model::Assignment assignment =
          policies[p]->AssociateFresh(net);
      const model::EvalResult res = evaluator.Evaluate(net, assignment);
      TrialRecord record;
      record.aggregate_mbps = res.aggregate_mbps;
      record.jain_fairness = util::JainFairnessIndex(res.user_throughput_mbps);
      record.user_throughput_mbps = res.user_throughput_mbps;
      results[p].trials.push_back(std::move(record));
    }
  }
  return results;
}

std::vector<PolicyTrials> RunStaticTrials(
    const ScenarioGenerator& generator,
    const std::vector<core::AssociationPolicy*>& policies,
    int num_trials, util::Rng& rng, model::EvalOptions eval) {
  std::vector<model::Network> networks;
  networks.reserve(static_cast<std::size_t>(num_trials));
  for (int t = 0; t < num_trials; ++t) {
    util::Rng trial_rng = rng.Fork();
    networks.push_back(generator.Generate(trial_rng));
  }
  return RunNetworkTrials(networks, policies, eval);
}

WinLoss CompareUsers(const PolicyTrials& a, const PolicyTrials& b,
                     double tolerance_mbps) {
  if (a.trials.size() != b.trials.size()) {
    throw std::invalid_argument("trial count mismatch");
  }
  std::size_t better = 0, worse = 0, equal = 0;
  for (std::size_t t = 0; t < a.trials.size(); ++t) {
    const auto& ua = a.trials[t].user_throughput_mbps;
    const auto& ub = b.trials[t].user_throughput_mbps;
    if (ua.size() != ub.size()) {
      throw std::invalid_argument("user count mismatch in trial");
    }
    for (std::size_t i = 0; i < ua.size(); ++i) {
      const double diff = ua[i] - ub[i];
      if (diff > tolerance_mbps) {
        ++better;
      } else if (diff < -tolerance_mbps) {
        ++worse;
      } else {
        ++equal;
      }
    }
  }
  const double total = static_cast<double>(better + worse + equal);
  if (total == 0.0) return {};
  return {static_cast<double>(better) / total,
          static_cast<double>(worse) / total,
          static_cast<double>(equal) / total};
}

}  // namespace wolt::sim
