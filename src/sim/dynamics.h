// Dynamic (online) user population for the paper's §V-E experiments:
// users arrive as a Poisson process and depart at random, the association
// policies are invoked at epoch boundaries, and per-epoch aggregate
// throughput / fairness / re-assignment counts are recorded (Figs. 6b, 6c).
//
// Calibration: the paper states Poisson arrivals with "arrival rate of 3 and
// departure rate of 1" and a population trajectory of 36 -> 66 -> 102 users
// over three epochs (net ~ +33 users/epoch). We therefore use arrival rate 3
// per time unit, an epoch of 12 time units (36 expected arrivals/epoch), and
// a global departure process whose default rate of 0.25 per time unit yields
// ~3 departures/epoch — reproducing the reported net growth. All three knobs
// are parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/policy.h"
#include "fault/health.h"
#include "model/evaluator.h"
#include "sim/scenario.h"
#include "sim/workload.h"
#include "util/rng.h"

namespace wolt::sim {

struct DynamicsParams {
  double arrival_rate = 3.0;     // users per time unit
  double departure_rate = 0.25;  // departure events per time unit
  // Mobility: rate of move events per time unit (0 = static users, the
  // paper's setting). Each event teleports one random user to a fresh
  // position and re-samples its WiFi links; a user whose current extender
  // became unreachable is dropped to unassigned and re-handled at the next
  // epoch like an arrival.
  double move_rate = 0.0;
  double epoch_length = 12.0;    // time units per epoch
  int epochs = 3;
  // Backhaul fault injection (fault/health.h): crashes, flaps and capacity
  // drift scheduled on the same event queue as the birth-death process.
  // Defaults to no faults, which leaves the RNG stream — and therefore all
  // fault-free results — untouched.
  fault::HealthParams health;
  model::EvalOptions eval;
};

struct PolicyEpochStats {
  std::string policy;
  double aggregate_mbps = 0.0;
  double jain_fairness = 0.0;
  // Existing users whose extender changed at this epoch's re-association
  // (new arrivals are not counted).
  std::size_t reassignments = 0;
  // Users this policy left associated to a dead backhaul after the epoch's
  // re-association (0 for policies that evacuate, like WOLT).
  std::size_t stranded_users = 0;
};

struct EpochStats {
  int epoch = 0;
  std::size_t population = 0;  // users present at the epoch boundary
  std::size_t arrivals = 0;    // users that arrived during the epoch
  std::size_t departures = 0;  // users that departed during the epoch
  std::size_t moves = 0;       // mobility events during the epoch
  // Fault-injection counters (all 0 when DynamicsParams::health is off).
  std::size_t crashes = 0;         // hard backhaul failures this epoch
  std::size_t repairs = 0;         // recoveries (crash repairs + flap ends)
  std::size_t flaps = 0;           // transient outages this epoch
  std::size_t extenders_down = 0;  // dead backhauls at the epoch boundary
  std::vector<PolicyEpochStats> per_policy;
};

// Runs the birth-death process once on a shared network; every policy sees
// the identical user trace and maintains its own association. Policies are
// re-invoked at each epoch boundary with their previous association (new
// arrivals unassigned), so online baselines place only the new users while
// WOLT re-optimizes globally.
std::vector<EpochStats> RunDynamicSimulation(
    const ScenarioGenerator& generator,
    const std::vector<core::AssociationPolicy*>& policies,
    const DynamicsParams& params, util::Rng& rng);

// --- Trace-driven stickiness-vs-throughput frontier ----------------------
//
// Replays a pre-generated WorkloadTrace (sim/workload.h) into a
// CentralController: scans are ingested without running the policy
// (IngestScan), departures and background capacity changes are applied as
// they occur, and the controller reoptimizes once per epoch boundary at an
// explicit ladder tier. Because the trace is fully precomputed and the
// replay draws no randomness, the outcome is a pure function of
// (base network, trace, policy, params) — byte-identical at any thread
// count, which is what lets the sweep engine parallelize frontier tasks.

struct FrontierParams {
  double epoch_length = 12.0;  // time units between reoptimizations
  int epochs = 3;
  // Top ladder rung the controller may afford each epoch (the sweep's
  // reopt_budget axis maps budget units onto tiers via
  // core::TierForBudgetUnits). The boundary solve is the cumulative
  // ladder (ReoptimizeUpToTier): every rung within this budget competes
  // and the best-scoring candidate is committed, so throughput — and
  // regret against the fixed per-epoch oracle — is monotone in the budget.
  core::ReoptTier tier = core::ReoptTier::kFull;
  // Per-epoch oracle on the frozen snapshot: exact brute force when the
  // population is at most oracle_bf_max_users AND the relaxed search space
  // (|A|+1)^|U| fits oracle_max_combinations; WOLT-S with subset search
  // (solved from scratch, no stickiness) otherwise.
  bool compute_oracle = true;
  std::size_t oracle_bf_max_users = 9;
  std::uint64_t oracle_max_combinations = 20'000'000;
  core::RetryParams retry;
  core::QuarantineParams quarantine;  // flap-quarantine interaction knob
  model::EvalOptions eval;
};

struct FrontierEpoch {
  int epoch = 0;
  std::size_t population = 0;  // users known at the epoch boundary
  std::size_t arrivals = 0;
  std::size_t departures = 0;
  std::size_t moves = 0;
  double aggregate_mbps = 0.0;  // achieved at the boundary solve
  double jain_fairness = 0.0;
  // Frozen-snapshot optimum (0 when compute_oracle is off). oracle_exact
  // marks brute-force epochs; false means the WOLT-S upper-bound proxy.
  double oracle_mbps = 0.0;
  bool oracle_exact = false;
  // Previously-associated users whose extender changed at this boundary
  // (arrivals placed for the first time are not counted).
  std::size_t reassociations = 0;
  core::ReoptTier served_tier = core::ReoptTier::kFull;
  std::size_t quarantine_trips = 0;  // trips during this epoch
};

struct FrontierResult {
  std::vector<FrontierEpoch> epochs;
  double mean_aggregate_mbps = 0.0;
  double mean_oracle_mbps = 0.0;
  double mean_jain = 0.0;
  // Mean over epochs of max(0, (oracle - achieved) / oracle); 0 when the
  // oracle is disabled or the population was empty all run.
  double regret = 0.0;
  // Stickiness: total reassociations / sum over epochs of population.
  double reassoc_per_user_epoch = 0.0;
  std::size_t total_reassociations = 0;
  std::size_t quarantine_trips = 0;
  // Per-user end-to-end throughput at the final epoch boundary.
  std::vector<double> final_user_throughput_mbps;
};

// `base` must be the extenders-only network the trace was generated
// against (NumUsers() == 0, NumExtenders() == trace.num_extenders); it
// supplies PLC capacities and contention domains. Throws
// std::invalid_argument on mismatched inputs or bad params.
FrontierResult RunTraceFrontier(const model::Network& base,
                                const WorkloadTrace& trace,
                                core::PolicyPtr policy,
                                const FrontierParams& params);

}  // namespace wolt::sim
