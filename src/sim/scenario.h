// Enterprise-floor scenario generator (§V-A of the paper): a 100 m x 100 m
// plane with 15 PLC-WiFi extenders; users are placed uniformly at random;
// WiFi rates come from distance -> RSSI -> MCS (wifi/), PLC capacities from
// the calibrated sampler (plc/). Each extender operates on a non-overlapping
// WiFi channel (the paper's assumption, §V-A), so there is no inter-cell
// WiFi interference and r_ij depends only on the user-extender link.
#pragma once

#include <vector>

#include "model/network.h"
#include "plc/capacity.h"
#include "util/rng.h"
#include "wifi/mcs.h"
#include "wifi/pathloss.h"

namespace wolt::sim {

struct ScenarioParams {
  double width_m = 100.0;
  double height_m = 100.0;
  std::size_t num_extenders = 15;
  std::size_t num_users = 36;

  wifi::PathLossModel path_loss;
  wifi::RateTable rate_table = wifi::RateTable::Ieee80211nHt20();
  // Lognormal shadowing on each user-extender link (dB).
  double shadowing_sigma_db = 3.0;

  plc::CapacitySamplerParams plc;

  // Place extenders on a jittered grid (power outlets spread through the
  // building) rather than uniformly, avoiding degenerate clusters.
  double extender_grid_jitter = 0.3;  // fraction of a grid cell

  // Resample a user's position up to this many times if it cannot hear any
  // extender; after that it is kept (and will stay unassociated).
  int max_placement_retries = 20;
};

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(ScenarioParams params = {});

  // Build a complete network: extender placement, PLC capacities, users and
  // their rate rows. Deterministic given the Rng state.
  model::Network Generate(util::Rng& rng) const;

  // Sample a position for a new user (uniform over the floor).
  model::Position SampleUserPosition(util::Rng& rng) const;

  // One sampled WiFi link row: per-extender RSSI (with fresh shadowing
  // draws) and the resulting MCS rate.
  struct LinkSample {
    std::vector<double> rates_mbps;
    std::vector<double> rssi_dbm;
  };
  LinkSample LinksAt(const model::Network& net, model::Position pos,
                     util::Rng& rng) const;

  // WiFi rate row only (convenience over LinksAt).
  std::vector<double> RatesAt(const model::Network& net, model::Position pos,
                              util::Rng& rng) const;

  // Add one user at a (retried) random position to an existing network,
  // returning its index. Used by the dynamic simulator on arrivals.
  std::size_t AddRandomUser(model::Network& net, util::Rng& rng) const;

  const ScenarioParams& params() const { return params_; }

 private:
  ScenarioParams params_;
};

}  // namespace wolt::sim
