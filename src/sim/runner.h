// Static trial runner: replays N independently generated topologies across
// a set of association policies (every policy sees the identical network per
// trial) and records aggregate throughput, per-user throughputs and Jain
// fairness. Drives the Fig. 6a CDF, the fairness comparison of §V-E, and the
// testbed-style multi-topology experiments of Fig. 4.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/policy.h"
#include "model/evaluator.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace wolt::sim {

struct TrialRecord {
  double aggregate_mbps = 0.0;
  double jain_fairness = 0.0;
  std::vector<double> user_throughput_mbps;
};

struct PolicyTrials {
  std::string policy;
  std::vector<TrialRecord> trials;

  std::vector<double> Aggregates() const;
  double MeanAggregate() const;
  double MeanJain() const;
};

// Generate `num_trials` networks with `generator` (forking the rng per
// trial) and associate each with every policy from scratch.
std::vector<PolicyTrials> RunStaticTrials(
    const ScenarioGenerator& generator,
    const std::vector<core::AssociationPolicy*>& policies,
    int num_trials, util::Rng& rng, model::EvalOptions eval = {});

// Same, but over caller-supplied networks (used by the testbed topologies).
std::vector<PolicyTrials> RunNetworkTrials(
    const std::vector<model::Network>& networks,
    const std::vector<core::AssociationPolicy*>& policies,
    model::EvalOptions eval = {});

// Per-user win/loss comparison between two policies across aligned trials
// (Fig. 4b): fraction of users whose throughput is higher / lower / equal
// under `a` than under `b`.
struct WinLoss {
  double better = 0.0;
  double worse = 0.0;
  double equal = 0.0;
};
WinLoss CompareUsers(const PolicyTrials& a, const PolicyTrials& b,
                     double tolerance_mbps = 1e-6);

}  // namespace wolt::sim
