// Static trial runner: replays N independently generated topologies across
// a set of association policies (every policy sees the identical network per
// trial) and records aggregate throughput, per-user throughputs and Jain
// fairness. Drives the Fig. 6a CDF, the fairness comparison of §V-E, and the
// testbed-style multi-topology experiments of Fig. 4.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/policy.h"
#include "model/evaluator.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace wolt::sim {

struct TrialRecord {
  double aggregate_mbps = 0.0;
  double jain_fairness = 0.0;
  std::vector<double> user_throughput_mbps;
};

struct PolicyTrials {
  std::string policy;
  std::vector<TrialRecord> trials;

  std::vector<double> Aggregates() const;
  double MeanAggregate() const;
  double MeanJain() const;
};

// One policy on one network: associate from scratch and evaluate. The
// shared per-trial kernel of RunNetworkTrials and the sweep engine's task
// body (src/sweep/engine.cc) — both produce records through this function
// so sequential and parallel sweeps score trials identically.
TrialRecord EvaluateTrial(const model::Evaluator& evaluator,
                          const model::Network& net,
                          core::AssociationPolicy& policy);

// Generate `num_trials` networks with `generator` (forking the rng per
// trial) and associate each with every policy from scratch.
std::vector<PolicyTrials> RunStaticTrials(
    const ScenarioGenerator& generator,
    const std::vector<core::AssociationPolicy*>& policies,
    int num_trials, util::Rng& rng, model::EvalOptions eval = {});

// Same, but over caller-supplied networks (used by the testbed topologies).
std::vector<PolicyTrials> RunNetworkTrials(
    const std::vector<model::Network>& networks,
    const std::vector<core::AssociationPolicy*>& policies,
    model::EvalOptions eval = {});

// Per-user win/loss comparison between two policies across aligned trials
// (Fig. 4b): fraction of users whose throughput is higher / lower / equal
// under `a` than under `b`.
struct WinLoss {
  double better = 0.0;
  double worse = 0.0;
  double equal = 0.0;
};
WinLoss CompareUsers(const PolicyTrials& a, const PolicyTrials& b,
                     double tolerance_mbps = 1e-6);

// --- Failure / recovery trials -------------------------------------------

// One kill-the-busiest-extenders trial for one policy: associate fresh on a
// healthy network, zero the PLC backhaul of the `kill_count` extenders
// carrying the most users (per this policy's own assignment), then measure
// the stranded assignment and the policy's re-association on the degraded
// network.
struct ResilienceRecord {
  double healthy_mbps = 0.0;    // fresh association, healthy network
  double degraded_mbps = 0.0;   // same assignment after the kills
  double recovered_mbps = 0.0;  // policy re-association on the dead network
  std::size_t stranded_users = 0;  // users whose extender was killed
  std::size_t reassignments = 0;   // moves the recovery performed
};

struct PolicyResilience {
  std::string policy;
  std::vector<ResilienceRecord> trials;

  // Mean of recovered/healthy across trials (1.0 = full recovery).
  double MeanRecoveryRatio() const;
};

// Generate `num_trials` networks (forking the rng per trial) and run the
// kill/recover experiment for every policy. Every policy sees the same
// topologies but kills its own busiest extenders. Online policies that
// never move existing users (Greedy, RSSI) recover nothing — their stranded
// users stay stranded — which is exactly the contrast the chaos bench
// reports.
std::vector<PolicyResilience> RunFailureTrials(
    const ScenarioGenerator& generator,
    const std::vector<core::AssociationPolicy*>& policies, int num_trials,
    int kill_count, util::Rng& rng, model::EvalOptions eval = {});

}  // namespace wolt::sim
