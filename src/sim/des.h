// Minimal discrete-event simulation engine: a time-ordered event queue with
// deterministic FIFO tie-breaking. Drives the dynamic user arrival/departure
// process (sim/dynamics); the slot-level MAC simulators advance time
// directly and do not need a queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace wolt::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedule `fn` at absolute time `when` (must be >= Now()).
  void ScheduleAt(double when, Callback fn);
  // Schedule `fn` `delay` time units from now (delay >= 0).
  void ScheduleAfter(double delay, Callback fn);

  double Now() const { return now_; }
  bool Empty() const { return events_.empty(); }
  std::size_t Pending() const { return events_.size(); }

  // Pop and run the earliest event. Returns false if none remain.
  bool RunNext();

  // Run events until the queue empties or the next event is past `deadline`;
  // clock ends at min(deadline, last event time). Events scheduled by
  // running events are processed too.
  void RunUntil(double deadline);

  // Drop all pending events (the clock is unchanged).
  void Clear();

 private:
  struct Event {
    double when = 0.0;
    std::uint64_t seq = 0;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace wolt::sim
