// High-fidelity end-to-end simulation: compose the slot-level MAC
// simulators into a full two-hop network estimate.
//
// The flow-level Evaluator applies Eq. 1 and the time-fair PLC model
// analytically. This module instead *simulates* both hops: each extender's
// WiFi cell runs the slot-level 802.11 DCF simulator over its associated
// users (PHY rates recovered from the effective rates r_ij), and the PLC
// backhaul runs the slot-level IEEE 1901 CSMA simulator across the active
// extenders. The two hops are composed by a demand fixed point: a cell
// whose backhaul delivers less than its WiFi aggregate is backlogged on the
// PLC side; a cell whose users cannot fill its PLC share leaves airtime to
// others (re-allocated by the demand-capped max-min allocator driven with
// *simulated* rates). This is the reproduction's stand-in for the paper's
// testbed cross-validation (Fig. 4c): the flow model is trusted because it
// tracks this simulation, which shares no code with the formulas.
#pragma once

#include <vector>

#include "model/assignment.h"
#include "model/network.h"
#include "plc/csma1901.h"
#include "util/rng.h"
#include "wifi/dcf_sim.h"

namespace wolt::sim {

struct HifiParams {
  // Simulated wall-clock per MAC run (longer = tighter estimates).
  double wifi_duration_s = 2.0;
  double plc_duration_s = 5.0;
  // r_ij are effective (MAC-efficiency-scaled) rates; dividing by this
  // recovers the PHY rate the DCF simulator needs. Must match the rate
  // table used to build the network (RateTable::mac_efficiency()).
  double wifi_mac_efficiency = 0.65;
  wifi::DcfParams dcf;
  plc::Csma1901Params csma;
};

struct HifiResult {
  // Per-extender aggregates from the simulated WiFi cells (no PLC cap).
  std::vector<double> wifi_cell_mbps;
  // Per-extender PLC capacity share from the simulated 1901 backhaul.
  std::vector<double> plc_share_mbps;
  // Composed end-to-end per extender and per user.
  std::vector<double> extender_mbps;
  std::vector<double> user_throughput_mbps;
  double aggregate_mbps = 0.0;
};

// Simulate the network under `assign`. Users assigned to extenders they
// cannot hear throw std::invalid_argument (same contract as Evaluator).
HifiResult SimulateHifi(const model::Network& net,
                        const model::Assignment& assign,
                        const HifiParams& params, util::Rng& rng);

}  // namespace wolt::sim
