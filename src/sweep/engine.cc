#include "sweep/engine.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>

#include "assign/joint.h"
#include "core/controller.h"
#include "core/wolt.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "recover/journal.h"
#include "sim/dynamics.h"
#include "sim/workload.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace wolt::sweep {
namespace {

recover::TaskRecord ToRecord(const TaskResult& task) {
  recover::TaskRecord rec;
  rec.index = task.spec.index;
  rec.error = task.error;
  rec.aggregate_mbps = task.aggregate_mbps;
  rec.jain_fairness = task.jain_fairness;
  rec.oracle_mbps = task.oracle_mbps;
  rec.regret = task.regret;
  rec.reassoc_per_user_epoch = task.reassoc_per_user_epoch;
  rec.quarantine_trips = task.quarantine_trips;
  rec.elapsed_us = task.elapsed_us;
  rec.user_throughput = task.user_throughput.Samples();
  rec.has_metrics = !task.metrics.Empty();
  if (rec.has_metrics) rec.metrics = task.metrics;
  return rec;
}

// Rebuilds a TaskResult slot from its journaled record. Re-Add'ing the raw
// samples in order reproduces the Accumulator's Welford state bit-exactly,
// so every downstream merge sees the same inputs as the uninterrupted run.
void FromRecord(const recover::TaskRecord& rec, const SweepGrid& grid,
                TaskResult* task) {
  task->spec = grid.TaskAt(static_cast<std::size_t>(rec.index));
  task->error = rec.error;
  task->aggregate_mbps = rec.aggregate_mbps;
  task->jain_fairness = rec.jain_fairness;
  task->oracle_mbps = rec.oracle_mbps;
  task->regret = rec.regret;
  task->reassoc_per_user_epoch = rec.reassoc_per_user_epoch;
  task->quarantine_trips = rec.quarantine_trips;
  task->elapsed_us = rec.elapsed_us;
  for (double x : rec.user_throughput) task->user_throughput.Add(x);
  if (rec.has_metrics) task->metrics = rec.metrics;
  task->completed = true;
}

// A record from a precomputed (assignment, plan) pair, scored with the
// caller's (overlap) evaluator — mirrors sim::EvaluateTrial so joint tasks
// and plan-free tasks populate identical statistics.
sim::TrialRecord RecordFor(const model::Evaluator& evaluator,
                           const model::Network& net,
                           const model::Assignment& assignment) {
  const model::EvalResult res = evaluator.Evaluate(net, assignment);
  sim::TrialRecord record;
  record.aggregate_mbps = res.aggregate_mbps;
  record.jain_fairness = util::JainFairnessIndex(res.user_throughput_mbps);
  record.user_throughput_mbps = res.user_throughput_mbps;
  return record;
}

// One channel-plan task (spec.num_channels > 0): kJointWolt runs the
// alternating joint solver; every other policy associates plan-blind and is
// paired with an unweighted colouring (the orthogonal assumption evaluated
// under overlap). Either way the record is scored under the overlap model.
sim::TrialRecord RunJointTask(const SweepGrid& grid, const TaskSpec& spec,
                              const model::Network& net,
                              const model::EvalOptions& eval) {
  assign::JointOptions jopt;
  jopt.num_channels = spec.num_channels;
  jopt.carrier_sense_range_m = grid.carrier_sense_range_m;
  jopt.eval = eval;
  assign::JointResult jr;
  if (spec.policy == PolicyKind::kJointWolt) {
    jr = assign::SolveJointAlternating(net, core::WoltJointAssociator(),
                                       jopt);
  } else {
    const auto associate = [&spec](const model::Network& n,
                                   const model::EvalOptions& e,
                                   const model::Assignment& previous,
                                   const util::Deadline* deadline) {
      const core::PolicyPtr policy = MakePolicy(spec.policy, e);
      policy->SetDeadline(deadline);
      return policy->Associate(n, previous);
    };
    jr = assign::SolveJointNaive(net, associate, jopt);
  }
  model::EvalOptions overlap = eval;
  overlap.wifi_contention_domain.clear();
  overlap.wifi_channel = std::move(jr.channels);
  overlap.carrier_sense_range_m = grid.carrier_sense_range_m;
  return RecordFor(model::Evaluator(overlap), net, jr.assignment);
}

// One dynamic-workload task: generate the deterministic trace over the
// shared extenders-only topology, replay it through a CentralController at
// the budgeted ladder tier and return the frontier statistics. The trace
// seed folds in only the scenario coordinates plus a domain salt — never
// policy, budget or sharing — so paired policies replay identical traces.
sim::FrontierResult RunFrontierTask(const SweepGrid& grid,
                                    const TaskSpec& spec,
                                    const sim::ScenarioGenerator& generator,
                                    const model::Network& net,
                                    const model::EvalOptions& eval) {
  sim::WorkloadParams wp = grid.workload;
  wp.mobility.model = spec.mobility;
  wp.arrival_rate = spec.churn_rate;
  wp.load = spec.load;
  wp.initial_users = spec.num_users;
  wp.horizon =
      grid.frontier_epoch_length * static_cast<double>(grid.frontier_epochs);

  const std::uint64_t trace_seed = util::HashCombine64(
      util::HashCombine64(grid.master_seed, spec.seed),
      0x544b4c4f57545243ULL + spec.scenario_ordinal);  // trace-domain salt
  const sim::WorkloadTrace trace =
      sim::GenerateTrace(generator, net, wp, trace_seed);

  sim::FrontierParams fp;
  fp.epoch_length = grid.frontier_epoch_length;
  fp.epochs = grid.frontier_epochs;
  fp.tier = core::TierForBudgetUnits(spec.reopt_budget);
  fp.compute_oracle = grid.frontier_oracle;
  fp.oracle_bf_max_users = grid.frontier_oracle_bf_max_users;
  fp.quarantine = grid.frontier_quarantine;
  fp.eval = eval;
  return sim::RunTraceFrontier(net, trace, MakePolicy(spec.policy, eval), fp);
}

}  // namespace

SweepEngine::SweepEngine(SweepOptions options) : options_(std::move(options)) {}

SweepResult SweepEngine::Run(const SweepGrid& grid) {
  if (!grid.Valid()) {
    throw std::invalid_argument("SweepGrid has an empty axis");
  }
  cancel_.store(false, std::memory_order_relaxed);

  const std::size_t num_tasks = grid.NumTasks();
  SweepResult result;
  result.tasks.resize(num_tasks);

  // Checkpoint journal: restore already-completed tasks, then append each
  // task as it finishes. `restored[i]` marks slots whose bodies must not
  // re-run.
  std::unique_ptr<recover::JournalWriter> journal;
  std::vector<char> restored;
  if (!options_.journal_path.empty()) {
    recover::JournalHeader header;
    header.fingerprint = Fingerprint(grid);
    header.num_tasks = num_tasks;
    recover::JournalWriter::Options jopts;
    jopts.compact_every = options_.journal_compact_every;
    jopts.after_append = options_.after_journal_append;
    jopts.vfs = options_.vfs;
    jopts.sync_every_append = options_.journal_sync_every_append;
    bool resumed = false;
    if (options_.resume) {
      recover::JournalReadResult existing =
          recover::ReadJournal(options_.journal_path, options_.vfs);
      if (existing.ok && (existing.header.fingerprint != header.fingerprint ||
                          existing.header.num_tasks != header.num_tasks)) {
        // A *valid* journal from a different grid is caller error, never
        // silently discarded — resuming over it would destroy good data.
        throw std::runtime_error(
            "cannot resume sweep: journal was written by a different grid "
            "(fingerprint or task-count mismatch): " +
            options_.journal_path);
      }
      if (existing.ok) {
        restored.assign(num_tasks, 0);
        for (const recover::TaskRecord& rec : existing.records) {
          const auto index = static_cast<std::size_t>(rec.index);
          if (index >= num_tasks || restored[index]) continue;
          FromRecord(rec, grid, &result.tasks[index]);
          restored[index] = 1;
          ++result.resumed_tasks;
        }
        journal = std::make_unique<recover::JournalWriter>(
            options_.journal_path, existing, std::move(jopts));
        resumed = true;
      } else {
        // Unreadable/headerless journal (e.g. the crash landed before the
        // header was durable): nothing to restore, restart fresh. The sweep
        // must not die because its checkpoint did.
        std::fprintf(stderr,
                     "wolt: sweep journal %s unreadable (%s); restarting "
                     "the sweep fresh\n",
                     options_.journal_path.c_str(), existing.error.c_str());
      }
    }
    if (!resumed) {
      journal = std::make_unique<recover::JournalWriter>(
          options_.journal_path, header, std::move(jopts));
    }
    // A journal that failed to open has already degraded itself (one loud
    // warning + counters); the sweep continues unjournaled.
  }

  obs::ScopedTimer run_span("sweep.run", "sweep");
  const auto wall_start = std::chrono::steady_clock::now();
  util::ThreadPool pool(options_.threads);
  const bool complete = pool.ParallelFor(
      num_tasks, options_.chunk,
      [this, &grid, &result, &journal, &restored](std::size_t index) {
        TaskResult& task = result.tasks[index];
        if (!restored.empty() && restored[index]) return;  // from journal
        task.spec = grid.TaskAt(index);
        if (options_.before_task) options_.before_task(index);

        // Per-task registry: solver/evaluator hooks on this thread feed it
        // while `scoped` is installed; the snapshot is merged in task-index
        // order after the pool drains, so the deterministic section cannot
        // observe thread count. The engine's own timing histograms register
        // through the same registry (timing-flagged -> quarantined).
        std::optional<obs::MetricsRegistry> registry;
        std::optional<obs::ScopedMetrics> scoped;
        obs::Histogram* task_hist = nullptr;
        obs::Histogram* gen_hist = nullptr;
        obs::Histogram* solve_hist = nullptr;
        if (options_.collect_metrics) {
          registry.emplace();
          scoped.emplace(*registry);
          task_hist = &registry->GetHistogram("sweep.task_latency_us",
                                              obs::kLatencyBoundsUs,
                                              /*timing=*/true);
          gen_hist = &registry->GetHistogram("sweep.phase.generate_us",
                                             obs::kLatencyBoundsUs,
                                             /*timing=*/true);
          solve_hist = &registry->GetHistogram("sweep.phase.solve_us",
                                               obs::kLatencyBoundsUs,
                                               /*timing=*/true);
        }

        const auto start = std::chrono::steady_clock::now();
        {
          obs::ScopedTimer task_span("sweep.task", "sweep",
                                     obs::Tracer::Global(), task_hist);
          try {
            const TaskSpec& spec = task.spec;
            // Topology stream: a pure function of (master seed, replicate
            // seed value, scenario coordinates). Policy and sharing axes do
            // not enter, so paired policies see identical networks.
            util::Rng rng = util::Rng::Substream(
                util::HashCombine64(grid.master_seed, spec.seed),
                spec.scenario_ordinal);

            sim::ScenarioParams params = grid.base;
            // Dynamic tasks build the extenders-only topology from the
            // same stream; users come from the trace (the users-axis value
            // becomes the initial arrival batch).
            params.num_users = spec.IsDynamic() ? 0 : spec.num_users;
            params.num_extenders = spec.num_extenders;
            const sim::ScenarioGenerator generator(params);
            std::optional<model::Network> net;
            {
              obs::ScopedTimer span("sweep.generate", "sweep",
                                    obs::Tracer::Global(), gen_hist);
              net.emplace(generator.Generate(rng));
            }

            model::EvalOptions eval = options_.eval;
            eval.plc_sharing = spec.sharing;

            sim::TrialRecord record;
            {
              obs::ScopedTimer span("sweep.solve", "sweep",
                                    obs::Tracer::Global(), solve_hist);
              if (spec.IsDynamic()) {
                if (spec.num_channels > 0) {
                  throw std::invalid_argument(
                      "dynamic-workload axes are incompatible with the "
                      "channels axis");
                }
                const sim::FrontierResult fr =
                    RunFrontierTask(grid, spec, generator, *net, eval);
                record.aggregate_mbps = fr.mean_aggregate_mbps;
                record.jain_fairness = fr.mean_jain;
                record.user_throughput_mbps = fr.final_user_throughput_mbps;
                task.oracle_mbps = fr.mean_oracle_mbps;
                task.regret = fr.regret;
                task.reassoc_per_user_epoch = fr.reassoc_per_user_epoch;
                task.quarantine_trips = fr.quarantine_trips;
              } else if (spec.num_channels > 0) {
                record = RunJointTask(grid, spec, *net, eval);
              } else {
                const model::Evaluator evaluator(eval);
                const core::PolicyPtr policy = MakePolicy(spec.policy, eval);
                record = sim::EvaluateTrial(evaluator, *net, *policy);
              }
            }
            task.aggregate_mbps = record.aggregate_mbps;
            task.jain_fairness = record.jain_fairness;
            for (double x : record.user_throughput_mbps) {
              task.user_throughput.Add(x);
            }
            if (registry) {
              registry->GetCounter("sweep.tasks.completed").Add(1);
            }
          } catch (const std::exception& e) {
            task.error = e.what();
            if (registry) {
              registry->GetCounter("sweep.tasks.failed").Add(1);
            }
          }
        }
        task.elapsed_us =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (registry) {
          scoped.reset();  // uninstall before reading
          task.metrics = registry->Snapshot();
        }
        task.completed = true;
        if (journal) journal->Append(ToRecord(task));
      },
      &cancel_);
  if (journal) {
    journal->Close();  // final flush + fsync, even on cancel
    result.journal_degraded = journal->degraded();
  }
  result.cancelled = !complete;
  result.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();

  // Merge strictly in task-index order: the one place results are combined,
  // and the reason thread count cannot leak into the merged statistics.
  result.groups.resize(grid.NumConfigs());
  for (const TaskResult& task : result.tasks) {
    if (!task.completed || !task.error.empty()) continue;
    GroupStats& group = result.groups[task.spec.config_index];
    if (group.aggregate_mbps.Count() == 0) {
      group.num_users = task.spec.num_users;
      group.num_extenders = task.spec.num_extenders;
      group.sharing = task.spec.sharing;
      group.policy = task.spec.policy;
      group.num_channels = task.spec.num_channels;
      group.mobility = task.spec.mobility;
      group.churn_rate = task.spec.churn_rate;
      group.load = task.spec.load;
      group.reopt_budget = task.spec.reopt_budget;
    }
    group.aggregate_mbps.Add(task.aggregate_mbps);
    group.jain.Add(task.jain_fairness);
    group.user_throughput.Merge(task.user_throughput);
    group.oracle_mbps.Add(task.oracle_mbps);
    group.regret.Add(task.regret);
    group.reassoc.Add(task.reassoc_per_user_epoch);
  }

  if (options_.collect_metrics) {
    // Same rule as the group fold: strictly task-index order. Counter and
    // histogram merges are commutative anyway; the ordered fold keeps the
    // guarantee independent of that property.
    for (const TaskResult& task : result.tasks) {
      if (!task.completed) continue;
      result.metrics.Merge(task.metrics);
    }
    // Engine-level scheduling telemetry: thread-count/wall-clock dependent
    // by nature, so every entry is timing-flagged.
    obs::MetricsRegistry engine_reg;
    engine_reg.GetGauge("sweep.threads", /*timing=*/true)
        .Set(static_cast<double>(pool.size()));
    engine_reg.GetGauge("sweep.steals", /*timing=*/true)
        .Set(static_cast<double>(pool.StealCount()));
    engine_reg.GetGauge("sweep.wall_seconds", /*timing=*/true)
        .Set(result.wall_seconds);
    result.metrics.Merge(engine_reg.Snapshot());
  }
  return result;
}

std::vector<sim::PolicyTrials> ToPolicyTrials(const SweepGrid& grid,
                                              const SweepResult& result) {
  if (grid.users.size() != 1 || grid.extenders.size() != 1 ||
      grid.sharing.size() != 1 || grid.num_channels.size() != 1 ||
      grid.mobility.size() != 1 || grid.churn_rates.size() != 1 ||
      grid.load_curves.size() != 1 || grid.reopt_budgets.size() != 1) {
    throw std::invalid_argument(
        "ToPolicyTrials needs a single-configuration grid (policy axis "
        "excepted)");
  }
  if (result.cancelled) {
    throw std::invalid_argument("ToPolicyTrials on a cancelled sweep");
  }
  std::vector<sim::PolicyTrials> trials(grid.policies.size());
  for (std::size_t p = 0; p < grid.policies.size(); ++p) {
    trials[p].policy = ToString(grid.policies[p]);
    trials[p].trials.reserve(grid.seeds.size());
  }
  // Seed is the innermost axis, so scanning tasks in index order appends
  // each policy's replicates in seed order.
  for (const TaskResult& task : result.tasks) {
    if (!task.error.empty()) {
      throw std::runtime_error("sweep task failed: " + task.error);
    }
    sim::TrialRecord record;
    record.aggregate_mbps = task.aggregate_mbps;
    record.jain_fairness = task.jain_fairness;
    // Accumulator samples preserve insertion order = user index order.
    record.user_throughput_mbps = task.user_throughput.Samples();
    const std::size_t p = task.spec.config_index % grid.policies.size();
    trials[p].trials.push_back(std::move(record));
  }
  return trials;
}

}  // namespace wolt::sweep
