#include "sweep/report.h"

#include <cstdio>
#include <sstream>

#include "util/fileio.h"

namespace wolt::sweep {
namespace {

// %.17g round-trips doubles exactly (same convention as model/io).
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool WriteString(const std::string& text, const std::string& path) {
  const io::IoStatus st = util::WriteFileAtomic(path, text);
  io::CountWriteError(st, path);
  return st.ok();
}

}  // namespace

std::string TaskCsvString(const SweepResult& result, ReportOptions options) {
  std::ostringstream out;
  out << "index,seed,users,extenders,sharing,channels,mobility,churn,load,"
         "budget,policy,completed,aggregate_mbps,jain,oracle_mbps,regret,"
         "reassoc_rate,quarantine_trips";
  if (options.include_timing) out << ",elapsed_us";
  out << "\n";
  for (const TaskResult& task : result.tasks) {
    const TaskSpec& spec = task.spec;
    out << spec.index << ',' << spec.seed << ',' << spec.num_users << ','
        << spec.num_extenders << ',' << model::ToString(spec.sharing) << ','
        << spec.num_channels << ',' << sim::ToString(spec.mobility) << ','
        << Num(spec.churn_rate) << ',' << sim::ToString(spec.load) << ','
        << spec.reopt_budget << ','
        << ToString(spec.policy) << ',' << (task.completed ? 1 : 0) << ','
        << Num(task.aggregate_mbps) << ',' << Num(task.jain_fairness) << ','
        << Num(task.oracle_mbps) << ',' << Num(task.regret) << ','
        << Num(task.reassoc_per_user_epoch) << ',' << task.quarantine_trips;
    if (options.include_timing) out << ',' << Num(task.elapsed_us);
    out << "\n";
  }
  return out.str();
}

std::string GroupCsvString(const SweepResult& result, ReportOptions) {
  std::ostringstream out;
  out << "users,extenders,sharing,channels,mobility,churn,load,budget,"
         "policy,trials,mean_mbps,stddev_mbps,min_mbps,p10_mbps,p50_mbps,"
         "p90_mbps,max_mbps,mean_jain,user_jain,mean_oracle_mbps,"
         "mean_regret,mean_reassoc_rate\n";
  for (const GroupStats& g : result.groups) {
    const util::Accumulator& a = g.aggregate_mbps;
    out << g.num_users << ',' << g.num_extenders << ','
        << model::ToString(g.sharing) << ',' << g.num_channels << ','
        << sim::ToString(g.mobility) << ',' << Num(g.churn_rate) << ','
        << sim::ToString(g.load) << ',' << g.reopt_budget << ','
        << ToString(g.policy) << ','
        << a.Count() << ',' << Num(a.Mean()) << ',' << Num(a.StdDev()) << ','
        << Num(a.Min()) << ',' << Num(a.Percentile(10)) << ','
        << Num(a.Percentile(50)) << ',' << Num(a.Percentile(90)) << ','
        << Num(a.Max()) << ',' << Num(g.jain.Mean()) << ','
        << Num(g.user_throughput.Jain()) << ',' << Num(g.oracle_mbps.Mean())
        << ',' << Num(g.regret.Mean()) << ',' << Num(g.reassoc.Mean())
        << "\n";
  }
  return out.str();
}

std::string JsonString(const SweepResult& result, ReportOptions options) {
  std::ostringstream out;
  out << "{\n  \"cancelled\": " << (result.cancelled ? "true" : "false")
      << ",\n  \"groups\": [";
  for (std::size_t g = 0; g < result.groups.size(); ++g) {
    const GroupStats& group = result.groups[g];
    const util::Accumulator& a = group.aggregate_mbps;
    out << (g ? ",\n    {" : "\n    {") << "\"users\": " << group.num_users
        << ", \"extenders\": " << group.num_extenders << ", \"sharing\": \""
        << model::ToString(group.sharing)
        << "\", \"channels\": " << group.num_channels << ", \"mobility\": \""
        << sim::ToString(group.mobility) << "\", \"churn\": "
        << Num(group.churn_rate) << ", \"load\": \""
        << sim::ToString(group.load) << "\", \"budget\": "
        << group.reopt_budget << ", \"policy\": \""
        << ToString(group.policy) << "\", \"trials\": " << a.Count()
        << ", \"mean_mbps\": " << Num(a.Mean())
        << ", \"stddev_mbps\": " << Num(a.StdDev())
        << ", \"p50_mbps\": " << Num(a.Percentile(50))
        << ", \"mean_jain\": " << Num(group.jain.Mean())
        << ", \"user_jain\": " << Num(group.user_throughput.Jain())
        << ", \"mean_oracle_mbps\": " << Num(group.oracle_mbps.Mean())
        << ", \"mean_regret\": " << Num(group.regret.Mean())
        << ", \"mean_reassoc_rate\": " << Num(group.reassoc.Mean()) << "}";
  }
  out << "\n  ],\n  \"tasks\": [";
  for (std::size_t t = 0; t < result.tasks.size(); ++t) {
    const TaskResult& task = result.tasks[t];
    const TaskSpec& spec = task.spec;
    out << (t ? ",\n    {" : "\n    {") << "\"index\": " << spec.index
        << ", \"seed\": " << spec.seed << ", \"users\": " << spec.num_users
        << ", \"extenders\": " << spec.num_extenders << ", \"sharing\": \""
        << model::ToString(spec.sharing)
        << "\", \"channels\": " << spec.num_channels << ", \"mobility\": \""
        << sim::ToString(spec.mobility) << "\", \"churn\": "
        << Num(spec.churn_rate) << ", \"load\": \""
        << sim::ToString(spec.load) << "\", \"budget\": "
        << spec.reopt_budget << ", \"policy\": \""
        << ToString(spec.policy)
        << "\", \"completed\": " << (task.completed ? "true" : "false")
        << ", \"aggregate_mbps\": " << Num(task.aggregate_mbps)
        << ", \"jain\": " << Num(task.jain_fairness)
        << ", \"oracle_mbps\": " << Num(task.oracle_mbps)
        << ", \"regret\": " << Num(task.regret)
        << ", \"reassoc_rate\": " << Num(task.reassoc_per_user_epoch)
        << ", \"quarantine_trips\": " << task.quarantine_trips;
    if (options.include_timing) {
      out << ", \"elapsed_us\": " << Num(task.elapsed_us);
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

bool WriteTaskCsv(const SweepResult& result, const std::string& path,
                  ReportOptions options) {
  return WriteString(TaskCsvString(result, options), path);
}

bool WriteGroupCsv(const SweepResult& result, const std::string& path,
                   ReportOptions options) {
  return WriteString(GroupCsvString(result, options), path);
}

bool WriteJson(const SweepResult& result, const std::string& path,
               ReportOptions options) {
  return WriteString(JsonString(result, options), path);
}

}  // namespace wolt::sweep
