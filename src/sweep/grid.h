// Declarative experiment grids for the parallel sweep engine: the cartesian
// product of a replicate-seed axis and four scenario/algorithm axes (users,
// extenders, PLC sharing mode, association policy), flattened into a dense
// task index space that the engine's thread pool chunks over.
//
// Axis order (outermost to innermost): users, extenders, sharing, channels,
// mobility, churn, load, budget, policy, seed. The seed axis is innermost
// so each configuration's replicates are contiguous, and a task's
// *scenario* coordinates (users, extenders, seed) — but not its policy,
// sharing mode, channel count or dynamic coordinates —
// determine the topology RNG stream: every algorithm axis value sees the
// identical network for a given replicate, which keeps paired comparisons
// (win counts, per-user deltas) meaningful, exactly as the sequential
// runner's shared-network trials do.
//
// The channels axis (num_channels) selects the channel-plan model per task:
// 0 = the paper's orthogonal assumption (no plan, no overlap — the
// pre-existing behaviour), k > 0 = only k orthogonal channels exist, a plan
// is computed per task and the score is taken under the overlap model
// (EvalOptions::wifi_channel). See src/assign/joint.h.
//
// Dynamic-workload axes (mobility, churn_rates, load_curves, reopt_budgets)
// select the trace-driven frontier path per task: any non-default value
// makes the task generate a WorkloadTrace (sim/workload.h) over the shared
// topology and replay it through a CentralController via
// sim::RunTraceFrontier, scoring mean achieved throughput, per-epoch-oracle
// regret and the reassociation (stickiness) rate. The all-default axes
// ({kStatic}, {0}, {kConstant}, {0}) preserve pre-existing static grids
// bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/controller.h"
#include "core/policy.h"
#include "model/evaluator.h"
#include "sim/scenario.h"
#include "sim/workload.h"

namespace wolt::sweep {

// The association policies a sweep can fan out over (constructed fresh per
// task — policy instances hold scratch state and are not shared across
// threads).
// kJointWolt runs the alternating joint association + channel-assignment
// solver (assign::SolveJointAlternating over the WOLT associator) when the
// task's num_channels > 0; with num_channels == 0 it degenerates to kWolt.
// The other kinds associate plan-blind; under num_channels > 0 their
// assignment is paired with an unweighted greedy colouring and scored under
// overlap (assign::SolveJointNaive — the retired assumption made explicit).
enum class PolicyKind { kWolt, kWoltSubset, kGreedy, kRssi, kJointWolt };

const char* ToString(PolicyKind kind);

// Fresh policy instance. `eval` parameterizes WOLT's internal candidate
// scoring (the subset search evaluates under the same sharing model the
// task is scored with); baselines ignore it.
core::PolicyPtr MakePolicy(PolicyKind kind, const model::EvalOptions& eval);

// One decoded grid point.
struct TaskSpec {
  std::size_t index = 0;         // dense task index in [0, NumTasks())
  std::size_t config_index = 0;  // index ignoring the seed axis
  std::uint64_t seed = 0;        // replicate-seed axis *value*
  std::size_t seed_ordinal = 0;  // position on the seed axis
  std::size_t num_users = 0;
  std::size_t num_extenders = 0;
  model::PlcSharing sharing = model::PlcSharing::kMaxMinActive;
  PolicyKind policy = PolicyKind::kWolt;
  int num_channels = 0;  // 0 = orthogonal assumption (no plan)
  // Dynamic-workload coordinates (defaults = the static path).
  sim::MobilityModel mobility = sim::MobilityModel::kStatic;
  double churn_rate = 0.0;  // trace arrival rate (users per time unit)
  sim::LoadCurve load = sim::LoadCurve::kConstant;
  // Reoptimization budget in ladder units (core::TierForBudgetUnits);
  // 0 = unbudgeted (kFull).
  int reopt_budget = 0;
  // Ordinal over (users, extenders, seed) only — the topology stream index
  // shared by every policy/sharing/channels combination of the same
  // replicate.
  std::size_t scenario_ordinal = 0;

  // True when any dynamic axis left its default: the task runs the
  // trace-driven frontier instead of the one-shot static solve.
  bool IsDynamic() const {
    return mobility != sim::MobilityModel::kStatic || churn_rate > 0.0 ||
           load != sim::LoadCurve::kConstant || reopt_budget != 0;
  }
};

struct SweepGrid {
  // Master seed of the whole sweep; per-task streams are splitmix-jumps of
  // HashCombine64(master_seed, seed-axis value) at the scenario ordinal.
  std::uint64_t master_seed = 1;

  std::vector<std::uint64_t> seeds;            // replicate axis (values
                                               // should be distinct)
  std::vector<std::size_t> users;
  std::vector<std::size_t> extenders;
  std::vector<model::PlcSharing> sharing;
  // Channel-plan axis: 0 keeps the orthogonal assumption, k > 0 restricts
  // the plan to k channels (see the header comment). The default single 0
  // preserves pre-existing grids bit-for-bit.
  std::vector<int> num_channels{0};
  std::vector<PolicyKind> policies;
  // Co-channel contention radius shared by every num_channels > 0 task.
  double carrier_sense_range_m = 60.0;

  // Dynamic-workload axes. The defaults are the identity point: a grid
  // that leaves all four untouched decodes and runs exactly as before.
  std::vector<sim::MobilityModel> mobility{sim::MobilityModel::kStatic};
  std::vector<double> churn_rates{0.0};  // trace arrival rate per time unit
  std::vector<sim::LoadCurve> load_curves{sim::LoadCurve::kConstant};
  std::vector<int> reopt_budgets{0};  // ladder units; 0 = kFull

  // Shared workload knobs for dynamic tasks. Per task, `arrival_rate`,
  // `mobility.model`, `load` and `initial_users` are overridden by the axis
  // values (initial_users from the users axis); `horizon` is derived from
  // the frontier epochs. Everything else (speeds, session length, demand
  // curve shape, background traffic) comes from here.
  sim::WorkloadParams workload;
  double frontier_epoch_length = 12.0;
  int frontier_epochs = 3;
  bool frontier_oracle = true;  // per-epoch oracle + regret columns
  std::size_t frontier_oracle_bf_max_users = 9;
  core::QuarantineParams frontier_quarantine;  // default: quarantine off

  // Geometry / PHY / PLC knobs shared by every grid point; num_users and
  // num_extenders are overridden per task.
  sim::ScenarioParams base;

  // Convenience: seeds = {0, 1, ..., n-1}.
  void SeedRange(std::size_t n);

  bool Valid() const;  // every axis non-empty
  std::size_t NumTasks() const;
  std::size_t NumConfigs() const;  // NumTasks() / seeds.size()
  // Decodes `index`; requires Valid() and index < NumTasks().
  TaskSpec TaskAt(std::size_t index) const;
};

// Order-sensitive hash of everything that determines a sweep's task space
// and per-task results: master seed, every axis (lengths and values), and
// the shared scenario parameters. Stamped into the checkpoint journal
// header so a journal can never be resumed against a different grid.
std::uint64_t Fingerprint(const SweepGrid& grid);

}  // namespace wolt::sweep
