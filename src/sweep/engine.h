// Work-sharded parallel experiment engine: executes every point of a
// SweepGrid on a fixed-size thread pool (chunked work-stealing) and merges
// the results into per-configuration statistics in task-index order, so an
// N-thread run is bit-identical to the 1-thread run.
//
// Determinism contract (tested by tests/sweep_determinism_test.cc):
//  * each task's RNG is a splitmix-jump substream of the grid's master seed
//    keyed by grid coordinates — thread identity and completion order never
//    enter the derivation;
//  * each task writes only its own index-addressed result slot;
//  * group accumulators are folded strictly in task-index order after the
//    pool drains, never concurrently.
// Per-task wall-clock timings are recorded for profiling but excluded from
// reporters by default — they are the only thread-count-dependent output.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "io/vfs.h"
#include "model/evaluator.h"
#include "obs/metrics.h"
#include "sim/runner.h"
#include "sweep/grid.h"
#include "util/stats.h"

namespace wolt::sweep {

struct SweepOptions {
  int threads = 1;
  // Work-stealing chunk size in tasks; 0 = auto (~8 chunks per executor).
  std::size_t chunk = 0;
  // Evaluation options shared by every task; plc_sharing is overridden by
  // the task's sharing-axis value.
  model::EvalOptions eval;
  // Test hook, called on the executing thread immediately before each task
  // body runs. Used by the determinism test to perturb completion order;
  // must not touch engine state.
  std::function<void(std::size_t)> before_task;
  // Collect structured metrics: each task runs under its own
  // obs::MetricsRegistry (solver/evaluator hooks feed it), snapshots land in
  // TaskResult::metrics, and SweepResult::metrics is their fold in
  // task-index order. The deterministic section of the merged snapshot is
  // byte-identical across thread counts (tests/obs_golden_test.cc).
  bool collect_metrics = false;

  // Crash-safe checkpointing (src/recover/): when non-empty, every completed
  // task's result is appended to this write-ahead journal as it finishes.
  // A sweep killed at any instant can then re-Run with resume=true: tasks
  // already journaled are restored verbatim (their bodies never re-run, the
  // before_task hook is not called for them) and the merged output is
  // byte-identical to an uninterrupted run at any thread count.
  std::string journal_path;
  // Resume from an existing journal at journal_path. An unreadable or empty
  // journal restarts the sweep fresh (with a stderr warning) — a half-dead
  // journal must never stop the run itself. Run still throws
  // std::runtime_error when the journal was written by a *different* grid
  // (fingerprint/task-count mismatch): that is caller error, not damage.
  // Torn/rotted tail records are truncated; duplicates dedupe first-wins.
  bool resume = false;
  // Journal compaction cadence (rewrite deduped via temp+fsync+rename every
  // N appends); 0 disables compaction.
  std::size_t journal_compact_every = 64;
  // fsync the journal after every append (see JournalWriter::Options).
  bool journal_sync_every_append = false;
  // Test hook: called after the Nth journal append has been flushed. The
  // crash harness SIGKILLs itself in here to die at an exact journal
  // position.
  std::function<void(std::size_t)> after_journal_append;
  // Storage backend for the journal; nullptr = the real filesystem. The
  // fault-injection harness (src/fault/storage.h) substitutes a FaultVfs.
  io::Vfs* vfs = nullptr;
};

struct TaskResult {
  TaskSpec spec;
  bool completed = false;      // false: cancelled before this task ran
  std::string error;           // non-empty: the task body threw
  double aggregate_mbps = 0.0;
  double jain_fairness = 0.0;
  // Per-user throughput samples accumulated within the task (merged into
  // the group accumulator in task-index order).
  util::Accumulator user_throughput;
  // Frontier columns (dynamic tasks only; all 0 on the static path).
  // aggregate_mbps/jain_fairness hold the per-epoch means for dynamic
  // tasks; user_throughput holds the final epoch's per-user samples.
  double oracle_mbps = 0.0;  // mean per-epoch frozen-snapshot optimum
  double regret = 0.0;       // mean relative regret vs that oracle
  double reassoc_per_user_epoch = 0.0;  // stickiness metric
  std::uint64_t quarantine_trips = 0;
  double elapsed_us = 0.0;     // informational; thread-count dependent
  // Per-task metrics snapshot (empty unless SweepOptions::collect_metrics).
  obs::MetricsSnapshot metrics;
};

// Merged statistics for one configuration (all replicate seeds of one
// (users, extenders, sharing, policy) point, folded in task-index order).
struct GroupStats {
  std::size_t num_users = 0;
  std::size_t num_extenders = 0;
  model::PlcSharing sharing = model::PlcSharing::kMaxMinActive;
  PolicyKind policy = PolicyKind::kWolt;
  int num_channels = 0;  // channel-plan axis value (0 = orthogonal)
  // Dynamic-workload coordinates of the configuration (axis defaults for
  // static grids).
  sim::MobilityModel mobility = sim::MobilityModel::kStatic;
  double churn_rate = 0.0;
  sim::LoadCurve load = sim::LoadCurve::kConstant;
  int reopt_budget = 0;

  util::Accumulator aggregate_mbps;  // one sample per completed replicate
  util::Accumulator jain;
  util::Accumulator user_throughput;  // all users of all replicates
  // Frontier statistics (all-zero samples on static configurations).
  util::Accumulator oracle_mbps;
  util::Accumulator regret;
  util::Accumulator reassoc;  // reassociations per user-epoch
};

struct SweepResult {
  std::vector<TaskResult> tasks;   // indexed by task index
  std::vector<GroupStats> groups;  // indexed by config index
  bool cancelled = false;
  double wall_seconds = 0.0;       // informational
  // Tasks restored from the journal instead of executed (resume runs only).
  std::size_t resumed_tasks = 0;
  // The journal writer hit an I/O failure and disabled itself mid-run; the
  // results are complete but the journal is not resumable past that point.
  bool journal_degraded = false;
  // Fold of every completed task's snapshot in task-index order, plus
  // engine-level scheduling telemetry (timing-flagged). Empty unless
  // SweepOptions::collect_metrics.
  obs::MetricsSnapshot metrics;
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepOptions options = {});

  // Runs every task of `grid`. Throws std::invalid_argument on an empty
  // axis. Reentrant: Run may be called repeatedly; Cancel affects only the
  // run in flight (reset at the start of each run).
  SweepResult Run(const SweepGrid& grid);

  // Signals the in-flight Run to stop claiming work. Already-started tasks
  // finish; the returned SweepResult has cancelled=true and the unrun
  // tasks' completed=false.
  void Cancel() { cancel_.store(true, std::memory_order_relaxed); }

  const SweepOptions& options() const { return options_; }

 private:
  SweepOptions options_;
  std::atomic<bool> cancel_{false};
};

// Regroups a sweep over a single (users, extenders, sharing) point into the
// sequential runner's PolicyTrials shape — one entry per policy-axis value,
// trials ordered by replicate seed — so existing figure drivers (CDFs,
// paired win counts, CompareUsers) port unchanged. Throws if the grid has
// more than one users/extenders/sharing value or the run was cancelled.
std::vector<sim::PolicyTrials> ToPolicyTrials(const SweepGrid& grid,
                                              const SweepResult& result);

}  // namespace wolt::sweep
