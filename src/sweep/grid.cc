#include "sweep/grid.h"

#include <bit>
#include <stdexcept>

#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "util/rng.h"

namespace wolt::sweep {

const char* ToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kWolt:
      return "WOLT";
    case PolicyKind::kWoltSubset:
      return "WOLT-S";
    case PolicyKind::kGreedy:
      return "Greedy";
    case PolicyKind::kRssi:
      return "RSSI";
    case PolicyKind::kJointWolt:
      return "WOLT-J";
  }
  return "?";
}

core::PolicyPtr MakePolicy(PolicyKind kind, const model::EvalOptions& eval) {
  switch (kind) {
    case PolicyKind::kWolt: {
      core::WoltOptions options;
      options.eval = eval;
      return std::make_unique<core::WoltPolicy>(options);
    }
    case PolicyKind::kWoltSubset: {
      core::WoltOptions options;
      options.subset_search = true;
      options.eval = eval;
      return std::make_unique<core::WoltPolicy>(options);
    }
    case PolicyKind::kGreedy:
      return std::make_unique<core::GreedyPolicy>();
    case PolicyKind::kRssi:
      return std::make_unique<core::RssiPolicy>();
    case PolicyKind::kJointWolt: {
      // The plan-free degenerate form (num_channels == 0 tasks): plain
      // WOLT. The engine routes num_channels > 0 tasks through the joint
      // solver instead of this instance.
      core::WoltOptions options;
      options.eval = eval;
      return std::make_unique<core::WoltPolicy>(options);
    }
  }
  throw std::invalid_argument("unknown PolicyKind");
}

void SweepGrid::SeedRange(std::size_t n) {
  seeds.resize(n);
  for (std::size_t k = 0; k < n; ++k) seeds[k] = k;
}

bool SweepGrid::Valid() const {
  return !seeds.empty() && !users.empty() && !extenders.empty() &&
         !sharing.empty() && !num_channels.empty() && !policies.empty() &&
         !mobility.empty() && !churn_rates.empty() && !load_curves.empty() &&
         !reopt_budgets.empty();
}

std::size_t SweepGrid::NumTasks() const {
  return seeds.size() * users.size() * extenders.size() * sharing.size() *
         num_channels.size() * mobility.size() * churn_rates.size() *
         load_curves.size() * reopt_budgets.size() * policies.size();
}

std::size_t SweepGrid::NumConfigs() const {
  return NumTasks() / seeds.size();
}

TaskSpec SweepGrid::TaskAt(std::size_t index) const {
  if (!Valid() || index >= NumTasks()) {
    throw std::out_of_range("SweepGrid::TaskAt: bad grid or index");
  }
  TaskSpec spec;
  spec.index = index;

  // Innermost to outermost: seed, policy, budget, load, churn, mobility,
  // channels, sharing, extenders, users. Policy stays adjacent to seed so
  // config_index % policies.size() still recovers the policy ordinal
  // (ToPolicyTrials relies on this).
  std::size_t rest = index;
  spec.seed_ordinal = rest % seeds.size();
  rest /= seeds.size();
  const std::size_t policy_idx = rest % policies.size();
  rest /= policies.size();
  const std::size_t budget_idx = rest % reopt_budgets.size();
  rest /= reopt_budgets.size();
  const std::size_t load_idx = rest % load_curves.size();
  rest /= load_curves.size();
  const std::size_t churn_idx = rest % churn_rates.size();
  rest /= churn_rates.size();
  const std::size_t mobility_idx = rest % mobility.size();
  rest /= mobility.size();
  const std::size_t chan_idx = rest % num_channels.size();
  rest /= num_channels.size();
  const std::size_t sharing_idx = rest % sharing.size();
  rest /= sharing.size();
  const std::size_t ext_idx = rest % extenders.size();
  rest /= extenders.size();
  const std::size_t users_idx = rest;

  spec.seed = seeds[spec.seed_ordinal];
  spec.policy = policies[policy_idx];
  spec.reopt_budget = reopt_budgets[budget_idx];
  spec.load = load_curves[load_idx];
  spec.churn_rate = churn_rates[churn_idx];
  spec.mobility = mobility[mobility_idx];
  spec.num_channels = num_channels[chan_idx];
  spec.sharing = sharing[sharing_idx];
  spec.num_extenders = extenders[ext_idx];
  spec.num_users = users[users_idx];
  spec.config_index = index / seeds.size();
  spec.scenario_ordinal =
      (users_idx * extenders.size() + ext_idx) * seeds.size() +
      spec.seed_ordinal;
  return spec;
}

std::uint64_t Fingerprint(const SweepGrid& grid) {
  std::uint64_t h = 0x574f4c545357504aULL;  // "WOLTSWPJ"
  const auto mix = [&h](std::uint64_t v) { h = util::HashCombine64(h, v); };
  const auto mix_d = [&mix](double v) {
    mix(std::bit_cast<std::uint64_t>(v));
  };

  mix(grid.master_seed);
  mix(grid.seeds.size());
  for (std::uint64_t s : grid.seeds) mix(s);
  mix(grid.users.size());
  for (std::size_t u : grid.users) mix(u);
  mix(grid.extenders.size());
  for (std::size_t e : grid.extenders) mix(e);
  mix(grid.sharing.size());
  for (model::PlcSharing s : grid.sharing) {
    mix(static_cast<std::uint64_t>(s));
  }
  mix(grid.num_channels.size());
  for (int c : grid.num_channels) mix(static_cast<std::uint64_t>(c));
  mix_d(grid.carrier_sense_range_m);
  mix(grid.policies.size());
  for (PolicyKind p : grid.policies) mix(static_cast<std::uint64_t>(p));

  mix(grid.mobility.size());
  for (sim::MobilityModel m : grid.mobility) {
    mix(static_cast<std::uint64_t>(m));
  }
  mix(grid.churn_rates.size());
  for (double c : grid.churn_rates) mix_d(c);
  mix(grid.load_curves.size());
  for (sim::LoadCurve l : grid.load_curves) {
    mix(static_cast<std::uint64_t>(l));
  }
  mix(grid.reopt_budgets.size());
  for (int u : grid.reopt_budgets) mix(static_cast<std::uint64_t>(u));

  const sim::WorkloadParams& w = grid.workload;
  mix_d(w.horizon);
  mix_d(w.arrival_rate);
  mix_d(w.mean_session);
  mix(w.initial_users);
  mix(static_cast<std::uint64_t>(w.mobility.model));
  mix_d(w.mobility.speed_min);
  mix_d(w.mobility.speed_max);
  mix_d(w.mobility.pause);
  mix(static_cast<std::uint64_t>(w.mobility.num_hotspots));
  mix_d(w.mobility.hotspot_sigma_m);
  mix_d(w.mobility.hotspot_bias);
  mix_d(w.move_tick);
  mix(static_cast<std::uint64_t>(w.load));
  mix_d(w.base_demand_mbps);
  mix_d(w.load_period);
  mix_d(w.load_floor);
  mix_d(w.burst_rate);
  mix_d(w.burst_high);
  mix_d(w.burst_low);
  mix_d(w.background_share);
  mix_d(w.background_flip_rate);
  mix_d(grid.frontier_epoch_length);
  mix(static_cast<std::uint64_t>(grid.frontier_epochs));
  mix(grid.frontier_oracle ? 1u : 0u);
  mix(grid.frontier_oracle_bf_max_users);
  mix(static_cast<std::uint64_t>(grid.frontier_quarantine.flap_threshold));
  mix_d(grid.frontier_quarantine.window);
  mix_d(grid.frontier_quarantine.hold);

  const sim::ScenarioParams& b = grid.base;
  mix_d(b.width_m);
  mix_d(b.height_m);
  mix(b.num_extenders);
  mix(b.num_users);
  mix_d(b.path_loss.pl0_db);
  mix_d(b.path_loss.exponent);
  mix_d(b.path_loss.tx_power_dbm);
  mix_d(b.shadowing_sigma_db);
  mix(static_cast<std::uint64_t>(b.plc.source));
  mix(b.plc.measured_anchors.size());
  for (double a : b.plc.measured_anchors) mix_d(a);
  mix_d(b.plc.anchor_jitter_sigma);
  mix_d(b.plc.min_wire_m);
  mix_d(b.plc.max_wire_m);
  mix(static_cast<std::uint64_t>(b.plc.max_branch_taps));
  mix_d(b.plc.shadowing_sigma_db);
  mix_d(b.plc.min_capacity_mbps);
  mix_d(b.plc.max_capacity_mbps);
  mix_d(b.extender_grid_jitter);
  mix(static_cast<std::uint64_t>(b.max_placement_retries));
  return h;
}

}  // namespace wolt::sweep
