// CSV / JSON reporters for sweep results. All numeric fields are emitted
// with %.17g (exact double round-trip), and per-task wall-clock timings —
// the only thread-count-dependent values a sweep produces — are excluded
// unless explicitly requested, so the reports of a 1-thread and an N-thread
// run of the same grid are byte-identical. The CI determinism smoke diffs
// exactly these bytes.
#pragma once

#include <string>

#include "sweep/engine.h"

namespace wolt::sweep {

struct ReportOptions {
  bool include_timing = false;
};

// Per-task rows: one line per grid point with its raw scores.
std::string TaskCsvString(const SweepResult& result, ReportOptions = {});
// Per-configuration rows: merged statistics over the replicate axis.
std::string GroupCsvString(const SweepResult& result, ReportOptions = {});
// Both views in one JSON document.
std::string JsonString(const SweepResult& result, ReportOptions = {});

// File wrappers; false when the path cannot be written.
bool WriteTaskCsv(const SweepResult& result, const std::string& path,
                  ReportOptions = {});
bool WriteGroupCsv(const SweepResult& result, const std::string& path,
                   ReportOptions = {});
bool WriteJson(const SweepResult& result, const std::string& path,
               ReportOptions = {});

}  // namespace wolt::sweep
