#include "testbed/lab.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace wolt::testbed {

model::Network CaseStudyNetwork() {
  model::Network net(2, 2);
  net.SetExtenderLabel(0, "extender1");
  net.SetExtenderLabel(1, "extender2");
  net.SetUserLabel(0, "user1");
  net.SetUserLabel(1, "user2");
  net.SetPlcRate(0, 60.0);
  net.SetPlcRate(1, 20.0);
  net.SetWifiRate(0, 0, 15.0);
  net.SetWifiRate(0, 1, 10.0);
  net.SetWifiRate(1, 0, 40.0);
  net.SetWifiRate(1, 1, 20.0);
  return net;
}

LabTestbed::LabTestbed(LabParams params) : params_(std::move(params)) {
  if (params_.num_extenders == 0 || params_.num_users == 0) {
    throw std::invalid_argument("empty lab");
  }
  if (params_.outlet_capacities_mbps.empty()) {
    throw std::invalid_argument("no outlet capacities");
  }
}

model::Network LabTestbed::GenerateTopology(util::Rng& rng) const {
  model::Network net(0, params_.num_extenders);

  // Extenders at random outlet positions; capacities drawn from the
  // measured anchors with jitter (randomly picked outlets, §V-D).
  for (std::size_t j = 0; j < params_.num_extenders; ++j) {
    net.SetExtenderPosition(j, {rng.Uniform(0.0, params_.width_m),
                                rng.Uniform(0.0, params_.height_m)});
    const std::size_t k = static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<int>(params_.outlet_capacities_mbps.size()) - 1));
    net.SetPlcRate(j, params_.outlet_capacities_mbps[k] *
                          rng.LogNormal(0.0, params_.capacity_jitter_sigma));
    net.SetExtenderLabel(j, "ext" + std::to_string(j));
  }

  // Pod centres for clustered laptop placement.
  std::vector<model::Position> clusters;
  for (int c = 0; c < params_.user_clusters; ++c) {
    clusters.push_back({rng.Uniform(0.0, params_.width_m),
                        rng.Uniform(0.0, params_.height_m)});
  }
  const auto draw_position = [&]() -> model::Position {
    if (clusters.empty()) {
      return {rng.Uniform(0.0, params_.width_m),
              rng.Uniform(0.0, params_.height_m)};
    }
    const auto& centre = clusters[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(clusters.size()) - 1))];
    return {std::clamp(centre.x + rng.Normal(0.0, params_.cluster_sigma_m),
                       0.0, params_.width_m),
            std::clamp(centre.y + rng.Normal(0.0, params_.cluster_sigma_m),
                       0.0, params_.height_m)};
  };

  for (std::size_t i = 0; i < params_.num_users; ++i) {
    // Laptops placed around pods; retried until they hear some extender.
    std::vector<double> rates(params_.num_extenders, 0.0);
    std::vector<double> rssi(params_.num_extenders, 0.0);
    model::Position pos;
    for (int attempt = 0; attempt < params_.max_placement_retries; ++attempt) {
      pos = draw_position();
      bool reachable = false;
      for (std::size_t j = 0; j < params_.num_extenders; ++j) {
        const double d = model::Distance(pos, net.ExtenderAt(j).position);
        const double shadow = rng.Normal(0.0, params_.shadowing_sigma_db);
        rssi[j] = params_.path_loss.RssiDbm(d, shadow);
        rates[j] = params_.rate_table.RateAtRssi(rssi[j]);
        if (rates[j] > 0.0) reachable = true;
      }
      if (reachable) break;
    }
    model::User user;
    user.position = pos;
    user.label = "laptop" + std::to_string(i);
    const std::size_t idx = net.AddUser(user, rates);
    for (std::size_t j = 0; j < params_.num_extenders; ++j) {
      net.SetRssi(idx, j, rssi[j]);
    }
  }
  return net;
}

std::vector<model::Network> LabTestbed::GenerateTopologies(
    std::size_t count, util::Rng& rng) const {
  std::vector<model::Network> topologies;
  topologies.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    util::Rng topo_rng = rng.Fork();
    topologies.push_back(GenerateTopology(topo_rng));
  }
  return topologies;
}

std::vector<double> LabTestbed::MeasureUserThroughputs(
    const model::Network& net, const model::Assignment& assign,
    util::Rng& rng, double noise_sigma) const {
  const model::EvalResult result = model::Evaluator().Evaluate(net, assign);
  std::vector<double> measured = result.user_throughput_mbps;
  for (double& m : measured) {
    m *= std::max(0.0, 1.0 + rng.Normal(0.0, noise_sigma));
  }
  return measured;
}

}  // namespace wolt::testbed
