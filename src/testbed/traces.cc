#include "testbed/traces.h"

namespace wolt::testbed {

const std::vector<ReferencePoint>& Fig2bPlcIsolationThroughputs() {
  static const std::vector<ReferencePoint> points = {
      {"link1", 60.0},
      {"link2", 90.0},
      {"link3", 120.0},
      {"link4", 160.0},
  };
  return points;
}

const std::vector<ReferencePoint>& Fig2cSharingFractions() {
  static const std::vector<ReferencePoint> points = {
      {"1 active", 1.0},
      {"2 active", 0.5},
      {"3 active", 1.0 / 3.0},
      {"4 active", 0.25},
  };
  return points;
}

const std::vector<ReferencePoint>& Fig3CaseStudyAggregates() {
  static const std::vector<ReferencePoint> points = {
      {"RSSI", 22.0},
      {"Greedy", 30.0},
      {"Optimal", 40.0},
  };
  return points;
}

const std::vector<ReferencePoint>& Fig4aImprovements() {
  static const std::vector<ReferencePoint> points = {
      {"WOLT_vs_Greedy", 0.26},
      {"WOLT_vs_RSSI", 0.70},
  };
  return points;
}

const std::vector<ReferencePoint>& Fig4bUserWinFractions() {
  static const std::vector<ReferencePoint> points = {
      {"better_than_Greedy", 0.35},
      {"better_than_RSSI", 0.55},
  };
  return points;
}

const std::vector<ReferencePoint>& Fig5UserExtremes() {
  static const std::vector<ReferencePoint> points = {
      {"worst3_total_loss_mbps", 6.0},
      {"best3_total_gain_mbps", 38.0},
  };
  return points;
}

const std::vector<ReferencePoint>& Fig6aImprovementRatio() {
  static const std::vector<ReferencePoint> points = {
      {"WOLT_over_Greedy", 2.5},
  };
  return points;
}

const std::vector<ReferencePoint>& JainFairnessReference() {
  static const std::vector<ReferencePoint> points = {
      {"WOLT", 0.66},
      {"Greedy", 0.52},
      {"RSSI", 0.65},
  };
  return points;
}

const std::vector<ReferencePoint>& Fig6bPopulationTrajectory() {
  static const std::vector<ReferencePoint> points = {
      {"epoch1", 36.0},
      {"epoch2", 66.0},
      {"epoch3", 102.0},
  };
  return points;
}

double Fig6cMaxReassignmentsPerArrival() { return 2.0; }

}  // namespace wolt::testbed
