// Emulation of the paper's physical testbed (§V-A/§V-D): three TP-Link
// TL-WPA8630-class extenders, seven heterogeneous laptops, a university lab
// floor, 25 randomly drawn topologies, and iperf3-style saturated downlink
// TCP measurements. We do not have the hardware, so this module synthesises
// the same experimental conditions: PLC capacities drawn from the measured
// outlet anchors, WiFi rates from the indoor path-loss + MCS pipeline, and
// multiplicative measurement noise on emulated throughput readings.
//
// It also provides the exact two-extender/two-user case-study network of
// Fig. 3, whose RSSI/Greedy/Optimal outcomes (22/30/40 Mbit/s) are the
// canonical validation of the whole throughput model.
#pragma once

#include <vector>

#include "model/assignment.h"
#include "model/evaluator.h"
#include "model/network.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace wolt::testbed {

// Fig. 3a: extender PLC rates 60/20 Mbit/s; WiFi rates user1->{15,10},
// user2->{40,20}. RSSI association yields ~22 Mbit/s aggregate, greedy 30,
// optimal 40.
model::Network CaseStudyNetwork();

struct LabParams {
  std::size_t num_extenders = 3;
  std::size_t num_users = 7;
  // The paper's lab: office space with tables, cubicles and equipment. The
  // floor is modelled as a rectangle; topology draws place extenders at
  // random outlet positions and laptops uniformly.
  double width_m = 60.0;
  double height_m = 40.0;
  // Outlets measured in the building (Fig. 2b anchors); each topology picks
  // extender capacities from these with jitter.
  std::vector<double> outlet_capacities_mbps = {60.0, 90.0, 120.0, 160.0};
  double capacity_jitter_sigma = 0.10;
  wifi::PathLossModel path_loss;
  wifi::RateTable rate_table = wifi::RateTable::Ieee80211nHt20();
  double shadowing_sigma_db = 4.0;  // cluttered lab -> more shadowing
  int max_placement_retries = 50;
  // Laptops in the paper's lab sit in office pods (tables, two cubicles),
  // not uniformly over the floor: draw each laptop around one of a few
  // cluster centres. Clustering is what makes strongest-RSSI association
  // pile co-located users onto a single extender (the pathology of §III-B).
  int user_clusters = 2;          // 0 disables clustering (uniform)
  double cluster_sigma_m = 4.0;   // spread of laptops within a pod
};

class LabTestbed {
 public:
  explicit LabTestbed(LabParams params = {});

  // One random lab topology (extender placement, capacities, user rates).
  model::Network GenerateTopology(util::Rng& rng) const;

  // The standard batch of 25 topologies used throughout §V-D.
  std::vector<model::Network> GenerateTopologies(std::size_t count,
                                                 util::Rng& rng) const;

  // Emulated iperf3 measurement of per-user downlink TCP throughput under
  // the given association: the evaluator's model value with multiplicative
  // measurement noise (sigma defaults to the ~5% run-to-run variation of
  // real testbeds).
  std::vector<double> MeasureUserThroughputs(const model::Network& net,
                                             const model::Assignment& assign,
                                             util::Rng& rng,
                                             double noise_sigma = 0.05) const;

  const LabParams& params() const { return params_; }

 private:
  LabParams params_;
};

}  // namespace wolt::testbed
