// Paper-reported reference series. Each bench prints its measured values
// next to these so EXPERIMENTS.md can record paper-vs-measured for every
// figure. Values are read off the paper's text and figures (ICDCS 2020).
#pragma once

#include <string>
#include <vector>

namespace wolt::testbed {

struct ReferencePoint {
  std::string label;
  double value = 0.0;
};

// Fig. 2b: isolation TCP throughput of the four measured PLC links (Mbit/s).
const std::vector<ReferencePoint>& Fig2bPlcIsolationThroughputs();

// Fig. 2c: with k extenders active, each delivers ~1/k of isolation
// throughput (the reported sharing fractions).
const std::vector<ReferencePoint>& Fig2cSharingFractions();

// Fig. 3: aggregate throughput of the case study per association policy.
const std::vector<ReferencePoint>& Fig3CaseStudyAggregates();

// Fig. 4a: reported relative improvements of WOLT on the testbed.
// (WOLT vs Greedy +26%, WOLT vs RSSI +70%.)
const std::vector<ReferencePoint>& Fig4aImprovements();

// Fig. 4b: fraction of users better off under WOLT (vs Greedy 35%, vs RSSI
// 55%).
const std::vector<ReferencePoint>& Fig4bUserWinFractions();

// Fig. 5: worst-3 users lose ~6 Mbit/s total, best-3 gain ~38 Mbit/s total
// (WOLT vs Greedy).
const std::vector<ReferencePoint>& Fig5UserExtremes();

// Fig. 6a: WOLT / Greedy mean aggregate ratio ~2.5x at |U| = 36.
const std::vector<ReferencePoint>& Fig6aImprovementRatio();

// §V-E: Jain fairness — WOLT 0.66, Greedy 0.52, RSSI 0.65.
const std::vector<ReferencePoint>& JainFairnessReference();

// §V-E: population trajectory over epochs (36, 66, 102).
const std::vector<ReferencePoint>& Fig6bPopulationTrajectory();

// Fig. 6c: re-assignments stay below ~2x the epoch's arrivals.
double Fig6cMaxReassignmentsPerArrival();

}  // namespace wolt::testbed
