// Storage seam: every byte this repository persists (journals, atomic
// report writes, CSV dumps, trace files) goes through a wolt::io::Vfs, so
// the storage layer can be swapped wholesale — for the real POSIX
// filesystem in production, for fault::FaultVfs in the storage fault plane,
// or for fault::MemVfs in the crash-consistency harness that simulates a
// power cut at every single I/O operation (tests/storage_crash_test.cc).
//
// Design rules:
//  * RealVfs is a thin shim over the raw syscalls — one virtual call per
//    operation on paths that already pay a syscall, zero cost on paths
//    that do not persist anything (no Vfs object is even touched unless a
//    file is being written).
//  * Vfs::Write may be SHORT (like write(2)) and may fail with EINTR; the
//    shared retry loop lives in WriteAll so every writer in the tree gets
//    identical durability behaviour and the fault plane can exercise the
//    retry path.
//  * Every operation reports a typed, errno-carrying IoStatus instead of a
//    bare bool, so callers can tell ENOSPC (disk full: keep the old file,
//    degrade loudly) from EIO (medium error: same, but worth paging about).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace wolt::io {

// Errno-carrying result of a storage operation. `op` names the failing
// primitive ("open", "write", "fsync", "close", "rename", ...) with static
// storage duration, so IoStatus is cheap to copy and never allocates on the
// success path.
struct IoStatus {
  int err = 0;            // 0 = success, otherwise an errno value
  const char* op = "";    // failing primitive; "" on success

  bool ok() const { return err == 0; }
  explicit operator bool() const { return ok(); }

  // "write failed: No space left on device (errno 28)" — for logs.
  std::string Message() const;

  static IoStatus Ok() { return IoStatus{}; }
  static IoStatus Fail(const char* op, int err);
};

// Abstract storage backend. Write handles are small non-negative integers
// scoped to one Vfs instance (RealVfs hands back raw fds; MemVfs invents
// its own). All implementations must be safe for concurrent use from
// multiple threads on distinct handles; callers serialize per-handle access
// themselves (the journals hold a mutex across append sequences).
class Vfs {
 public:
  enum class OpenMode {
    kTruncate,  // create or truncate-to-empty
    kAppend,    // create if missing, position at end
  };

  virtual ~Vfs() = default;

  // Returns a handle >= 0, or -1 with *status filled in.
  virtual int OpenWrite(const std::string& path, OpenMode mode,
                        IoStatus* status) = 0;
  // Returns bytes written (possibly short, like write(2)) or -1 on error.
  virtual long Write(int handle, const char* data, std::size_t size,
                     IoStatus* status) = 0;
  virtual IoStatus Fsync(int handle) = 0;
  virtual IoStatus Close(int handle) = 0;
  virtual IoStatus Rename(const std::string& from, const std::string& to) = 0;
  virtual IoStatus Truncate(const std::string& path, std::uint64_t size) = 0;
  virtual IoStatus Remove(const std::string& path) = 0;
  // Durability barrier on the directory entry metadata (the rename itself).
  // Best-effort on filesystems that refuse directory fsync; callers treat
  // failure as non-fatal by convention.
  virtual IoStatus SyncDir(const std::string& dir) = 0;
  // Whole-file read (journal replay). `out` is replaced on success.
  virtual IoStatus ReadFileBytes(const std::string& path, std::string* out) = 0;
};

// POSIX-backed implementation. Stateless; one process-wide instance is
// enough (see DefaultVfs).
class RealVfs : public Vfs {
 public:
  int OpenWrite(const std::string& path, OpenMode mode,
                IoStatus* status) override;
  long Write(int handle, const char* data, std::size_t size,
             IoStatus* status) override;
  IoStatus Fsync(int handle) override;
  IoStatus Close(int handle) override;
  IoStatus Rename(const std::string& from, const std::string& to) override;
  IoStatus Truncate(const std::string& path, std::uint64_t size) override;
  IoStatus Remove(const std::string& path) override;
  IoStatus SyncDir(const std::string& dir) override;
  IoStatus ReadFileBytes(const std::string& path, std::string* out) override;
};

// The process-wide RealVfs. Callers that accept an optional `Vfs*` treat
// nullptr as this instance, so production call sites never name a Vfs.
Vfs& DefaultVfs();
inline Vfs& OrDefault(Vfs* vfs) { return vfs != nullptr ? *vfs : DefaultVfs(); }

// Writes all of `data`, retrying short writes and EINTR (both real — a
// signal landing mid-write — and injected by the fault plane). Retries are
// counted on the io.retries.eintr / io.short_writes obs counters when a
// metrics scope is installed. Returns the first hard failure.
IoStatus WriteAll(Vfs& vfs, int handle, std::string_view data);

// Fsync with EINTR retry (fsync, unlike close, is safe to retry).
IoStatus FsyncRetry(Vfs& vfs, int handle);

// Directory of `path` for the post-rename directory sync ("." when the
// path has no slash).
std::string DirOf(const std::string& path);

// Audit hook for emitters: logs the failure to stderr (once per distinct
// call site burst is not attempted — every failure is loud) and bumps
// io.write_errors plus the errno-classified io.write_errors.{enospc,eio,
// other} counters when a metrics scope is installed. `what` names the
// artefact being written (usually the path).
void CountWriteError(const IoStatus& status, const std::string& what);

}  // namespace wolt::io
