#include "io/vfs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/obs.h"

namespace wolt::io {

IoStatus IoStatus::Fail(const char* op, int err) {
  IoStatus st;
  st.op = op;
  st.err = err == 0 ? EIO : err;  // a failure must carry a cause
  return st;
}

std::string IoStatus::Message() const {
  if (ok()) return "ok";
  return std::string(op) + " failed: " + std::strerror(err) + " (errno " +
         std::to_string(err) + ")";
}

// ---------------------------------------------------------------------------
// RealVfs

int RealVfs::OpenWrite(const std::string& path, OpenMode mode,
                       IoStatus* status) {
  const int flags = O_WRONLY | O_CREAT |
                    (mode == OpenMode::kTruncate ? O_TRUNC : O_APPEND);
  int fd;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    *status = IoStatus::Fail("open", errno);
    return -1;
  }
  *status = IoStatus::Ok();
  return fd;
}

long RealVfs::Write(int handle, const char* data, std::size_t size,
                    IoStatus* status) {
  const ssize_t n = ::write(handle, data, size);
  if (n < 0) {
    *status = IoStatus::Fail("write", errno);
    return -1;
  }
  *status = IoStatus::Ok();
  return static_cast<long>(n);
}

IoStatus RealVfs::Fsync(int handle) {
  if (::fsync(handle) != 0) return IoStatus::Fail("fsync", errno);
  return IoStatus::Ok();
}

IoStatus RealVfs::Close(int handle) {
  // close(2) is deliberately NOT retried on EINTR: on Linux the descriptor
  // is released regardless, and a retry could close a recycled fd owned by
  // another thread. A failing close still reports the deferred write error.
  if (::close(handle) != 0) return IoStatus::Fail("close", errno);
  return IoStatus::Ok();
}

IoStatus RealVfs::Rename(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return IoStatus::Fail("rename", errno);
  }
  return IoStatus::Ok();
}

IoStatus RealVfs::Truncate(const std::string& path, std::uint64_t size) {
  int rc;
  do {
    rc = ::truncate(path.c_str(), static_cast<off_t>(size));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return IoStatus::Fail("truncate", errno);
  return IoStatus::Ok();
}

IoStatus RealVfs::Remove(const std::string& path) {
  if (std::remove(path.c_str()) != 0) return IoStatus::Fail("remove", errno);
  return IoStatus::Ok();
}

IoStatus RealVfs::SyncDir(const std::string& dir) {
  int fd;
  do {
    fd = ::open(dir.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return IoStatus::Fail("opendir", errno);
  IoStatus st = IoStatus::Ok();
  if (::fsync(fd) != 0) st = IoStatus::Fail("fsyncdir", errno);
  ::close(fd);
  return st;
}

IoStatus RealVfs::ReadFileBytes(const std::string& path, std::string* out) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return IoStatus::Fail("open", errno);
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return IoStatus::Fail("read", err);
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  *out = std::move(bytes);
  return IoStatus::Ok();
}

Vfs& DefaultVfs() {
  static RealVfs vfs;
  return vfs;
}

// ---------------------------------------------------------------------------
// Shared helpers

IoStatus WriteAll(Vfs& vfs, int handle, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    IoStatus st;
    const long n = vfs.Write(handle, data.data() + off, data.size() - off,
                             &st);
    if (n < 0) {
      if (st.err == EINTR) {
        if (obs::MetricsScope* s = obs::CurrentScope()) {
          s->io.retries_eintr.Add(1);
        }
        continue;
      }
      return st;
    }
    if (static_cast<std::size_t>(n) < data.size() - off) {
      if (obs::MetricsScope* s = obs::CurrentScope()) {
        s->io.short_writes.Add(1);
      }
    }
    off += static_cast<std::size_t>(n);
  }
  return IoStatus::Ok();
}

IoStatus FsyncRetry(Vfs& vfs, int handle) {
  for (;;) {
    const IoStatus st = vfs.Fsync(handle);
    if (st.ok() || st.err != EINTR) return st;
    if (obs::MetricsScope* s = obs::CurrentScope()) {
      s->io.retries_eintr.Add(1);
    }
  }
}

std::string DirOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void CountWriteError(const IoStatus& status, const std::string& what) {
  if (status.ok()) return;
  std::fprintf(stderr, "wolt: io error writing %s: %s\n", what.c_str(),
               status.Message().c_str());
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->io.write_errors.Add(1);
    switch (status.err) {
      case ENOSPC:
#ifdef EDQUOT
      case EDQUOT:
#endif
        s->io.write_errors_enospc.Add(1);
        break;
      case EIO:
        s->io.write_errors_eio.Add(1);
        break;
      default:
        s->io.write_errors_other.Add(1);
        break;
    }
  }
}

}  // namespace wolt::io
