#include "plc/channel.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wolt::plc {

ChannelModel::ChannelModel(ChannelModelParams params) : params_(params) {
  if (params_.num_subcarriers <= 0 || params_.mimo_streams <= 0) {
    throw std::invalid_argument("bad subcarrier/stream counts");
  }
  if (params_.band_high_mhz <= params_.band_low_mhz) {
    throw std::invalid_argument("bad frequency band");
  }
}

double ChannelModel::SnrDb(const PlcPath& path, double freq_mhz) const {
  const double atten_per_m = params_.atten_db_per_m_base +
                             params_.atten_db_per_m_per_mhz * freq_mhz;
  return params_.snr0_db - atten_per_m * std::max(path.wire_length_m, 0.0) -
         params_.branch_loss_db * static_cast<double>(path.branch_taps) +
         path.shadowing_db;
}

int ChannelModel::BitsPerCarrier(double snr_db) const {
  const double effective_db = snr_db - params_.shannon_gap_db;
  const double snr_lin = std::pow(10.0, effective_db / 10.0);
  const int bits = static_cast<int>(std::floor(std::log2(1.0 + snr_lin)));
  return std::clamp(bits, 0, params_.max_bits_per_carrier);
}

double ChannelModel::PhyRateMbps(const PlcPath& path) const {
  const int n = params_.num_subcarriers;
  const double step =
      (params_.band_high_mhz - params_.band_low_mhz) / static_cast<double>(n);
  long total_bits_per_symbol = 0;
  for (int k = 0; k < n; ++k) {
    const double freq = params_.band_low_mhz + (static_cast<double>(k) + 0.5) * step;
    total_bits_per_symbol += BitsPerCarrier(SnrDb(path, freq));
  }
  const double bits_per_second = static_cast<double>(total_bits_per_symbol) *
                                 params_.symbol_rate_ksym_s * 1e3 *
                                 static_cast<double>(params_.mimo_streams);
  return bits_per_second * params_.fec_efficiency / 1e6;
}

double ChannelModel::CapacityMbps(const PlcPath& path) const {
  return PhyRateMbps(path) * params_.mac_tcp_efficiency;
}

}  // namespace wolt::plc
