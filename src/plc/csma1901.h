// Slot-level IEEE 1901 CSMA/CA simulator.
//
// Purpose: independently validate the time-fair PLC sharing assumption the
// evaluator encodes (Fig. 2c of the paper: with k simultaneously active
// extenders, each delivers ~1/k of its isolation throughput). The 1901 MAC
// differs from 802.11 DCF in one essential mechanism (Vlachou et al. [7]):
// each backoff stage has a *deferral counter* — a station that senses the
// medium busy too many times while counting down jumps to the next backoff
// stage without a collision. We implement the standard CA1 priority-class
// schedule (CW 8/16/32/64, deferral counters 0/1/3/15).
//
// Time fairness emerges because 1901 frames occupy a roughly constant
// airtime (long OFDM payload bursts up to the ~2.5 ms frame limit)
// regardless of the link's PHY rate: equal win frequency => equal airtime
// => each link's throughput is its own rate times its airtime share.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace wolt::plc {

struct Csma1901Params {
  double slot_us = 35.84;
  double cifs_us = 100.0;   // contention inter-frame space
  double rifs_us = 140.0;   // response inter-frame space (before SACK)
  double sack_us = 110.0;   // selective-ACK frame
  double prs_us = 71.68;    // two priority-resolution slots
  double frame_us = 2050.0; // payload burst airtime (near the 2.5 ms cap)
  // CA1 backoff schedule: contention windows and deferral counters.
  std::array<int, 4> cw = {7, 15, 31, 63};        // CW - 1 (draw in [0, cw])
  std::array<int, 4> dc = {0, 1, 3, 15};
  double payload_efficiency = 0.88;  // frame airtime carrying payload bits
};

struct PlcStationResult {
  std::int64_t successes = 0;
  std::int64_t collisions = 0;
  std::int64_t deferral_jumps = 0;
  double airtime_share = 0.0;       // fraction of channel-busy time
  double throughput_mbps = 0.0;
};

struct Csma1901Result {
  std::vector<PlcStationResult> stations;
  double aggregate_mbps = 0.0;
  std::int64_t collision_events = 0;
  double sim_time_s = 0.0;
};

// Simulate `duration_s` of saturated transmissions from stations (extenders)
// whose PLC links run at the given PHY-equivalent rates (Mbit/s — use the
// isolation capacity divided by the isolation airtime efficiency; for
// sharing-behaviour studies the absolute scale cancels).
Csma1901Result SimulateCsma1901(std::span<const double> link_rates_mbps,
                                double duration_s,
                                const Csma1901Params& params, util::Rng& rng);

// Priority-class variant: 1901 precedes each contention with two priority
// resolution slots (PRS0/PRS1) in which stations signal their channel-access
// priority (CA0..CA3); only the highest signalled class contends. Strict
// preemption: saturated higher-priority stations starve lower classes.
// `priorities[i]` in [0, 3], one per station.
Csma1901Result SimulateCsma1901(std::span<const double> link_rates_mbps,
                                std::span<const int> priorities,
                                double duration_s,
                                const Csma1901Params& params, util::Rng& rng);

// Isolation throughput of a single station: rate scaled by the fraction of
// the success cycle the payload burst occupies.
double IsolationThroughput(double link_rate_mbps,
                           const Csma1901Params& params);

}  // namespace wolt::plc
