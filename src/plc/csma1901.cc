#include "plc/csma1901.h"

#include <algorithm>
#include <stdexcept>

namespace wolt::plc {
namespace {

double SuccessCycleUs(const Csma1901Params& p) {
  return p.prs_us + p.cifs_us + p.frame_us + p.rifs_us + p.sack_us;
}

}  // namespace

double IsolationThroughput(double link_rate_mbps,
                           const Csma1901Params& params) {
  if (link_rate_mbps <= 0.0) throw std::invalid_argument("non-positive rate");
  const double avg_backoff_us =
      static_cast<double>(params.cw[0]) / 2.0 * params.slot_us;
  const double cycle = SuccessCycleUs(params) + avg_backoff_us;
  const double payload_us = params.frame_us * params.payload_efficiency;
  return link_rate_mbps * payload_us / cycle;
}

Csma1901Result SimulateCsma1901(std::span<const double> link_rates_mbps,
                                double duration_s,
                                const Csma1901Params& params,
                                util::Rng& rng) {
  const std::vector<int> equal(link_rates_mbps.size(), 1);
  return SimulateCsma1901(link_rates_mbps, equal, duration_s, params, rng);
}

Csma1901Result SimulateCsma1901(std::span<const double> link_rates_mbps,
                                std::span<const int> priorities,
                                double duration_s,
                                const Csma1901Params& params,
                                util::Rng& rng) {
  const std::size_t n = link_rates_mbps.size();
  if (n == 0) throw std::invalid_argument("no stations");
  if (priorities.size() != n) {
    throw std::invalid_argument("priorities size mismatch");
  }
  for (double r : link_rates_mbps) {
    if (r <= 0.0) throw std::invalid_argument("non-positive link rate");
  }
  for (int p : priorities) {
    if (p < 0 || p > 3) throw std::invalid_argument("priority outside CA0-3");
  }

  // Priority resolution (PRS0/PRS1) precedes every frame and every
  // backlogged station signals its class, so with saturated stations only
  // the highest class present ever contends — strict preemption starves
  // the lower classes completely. Restrict the contention set up front.
  int top_priority = 0;
  for (int p : priorities) top_priority = std::max(top_priority, p);
  std::vector<std::size_t> contender_ids;
  std::vector<double> contender_rates;
  for (std::size_t i = 0; i < n; ++i) {
    if (priorities[i] == top_priority) {
      contender_ids.push_back(i);
      contender_rates.push_back(link_rates_mbps[i]);
    }
  }
  if (contender_ids.size() < n) {
    Csma1901Result inner = SimulateCsma1901(
        contender_rates, duration_s, params, rng);
    Csma1901Result result;
    result.stations.resize(n);
    result.aggregate_mbps = inner.aggregate_mbps;
    result.collision_events = inner.collision_events;
    result.sim_time_s = inner.sim_time_s;
    for (std::size_t k = 0; k < contender_ids.size(); ++k) {
      result.stations[contender_ids[k]] = inner.stations[k];
    }
    return result;
  }

  struct Station {
    int stage = 0;
    int backoff = 0;
    int deferral = 0;
  };
  const int num_stages = static_cast<int>(params.cw.size());
  std::vector<Station> stations(n);
  auto enter_stage = [&](Station& st, int stage) {
    st.stage = std::min(stage, num_stages - 1);
    st.backoff =
        rng.UniformInt(0, params.cw[static_cast<std::size_t>(st.stage)]);
    st.deferral = params.dc[static_cast<std::size_t>(st.stage)];
  };
  for (auto& st : stations) enter_stage(st, 0);

  Csma1901Result result;
  result.stations.resize(n);
  std::vector<double> busy_us(n, 0.0);

  const double duration_us = duration_s * 1e6;
  double now_us = 0.0;
  std::vector<std::size_t> ready;
  while (now_us < duration_us) {
    ready.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (stations[i].backoff == 0) ready.push_back(i);
    }
    if (ready.empty()) {
      for (auto& st : stations) --st.backoff;
      now_us += params.slot_us;
      continue;
    }

    const double busy_duration = SuccessCycleUs(params);
    now_us += busy_duration;

    if (ready.size() == 1) {
      const std::size_t tx = ready.front();
      busy_us[tx] += busy_duration;
      ++result.stations[tx].successes;
      enter_stage(stations[tx], 0);
    } else {
      ++result.collision_events;
      for (std::size_t i : ready) {
        ++result.stations[i].collisions;
        enter_stage(stations[i], stations[i].stage + 1);
      }
    }

    // All stations that sensed the busy medium decrement their deferral
    // counter; exhausting it jumps them to the next stage — the 1901
    // mechanism that curbs collisions without an actual collision.
    for (std::size_t i = 0; i < n; ++i) {
      Station& st = stations[i];
      if (st.backoff == 0) continue;  // was a transmitter this round
      if (st.deferral == 0) {
        ++result.stations[i].deferral_jumps;
        enter_stage(st, st.stage + 1);
      } else {
        --st.deferral;
        --st.backoff;
      }
    }
  }

  result.sim_time_s = now_us / 1e6;
  double total_busy_us = 0.0;
  for (double b : busy_us) total_busy_us += b;
  const double payload_fraction =
      params.frame_us * params.payload_efficiency / SuccessCycleUs(params);
  for (std::size_t i = 0; i < n; ++i) {
    PlcStationResult& st = result.stations[i];
    // Bits delivered = airtime spent in this station's successful cycles,
    // times the payload fraction of a cycle, times the link's own rate.
    st.throughput_mbps = busy_us[i] * payload_fraction * link_rates_mbps[i] /
                         now_us;
    st.airtime_share = total_busy_us > 0.0 ? busy_us[i] / total_busy_us : 0.0;
    result.aggregate_mbps += st.throughput_mbps;
  }
  return result;
}

}  // namespace wolt::plc
