// Time-fair sharing of the single PLC contention domain (§III-A).
//
// The measurement study shows the 1901 MAC shares the power-line medium in a
// time-fair way: with k active extenders each gets ~1/k of airtime (Fig. 2c),
// and airtime left unused by an extender whose WiFi side demands less than
// its share is re-allocated to the still-backlogged extenders (the Fig. 3c
// greedy case: extender 1 uses only half its share, the leftover quarter of
// total time flows to extender 2). That behaviour is exactly max-min fair
// airtime allocation with demand caps, computed here by progressive filling.
#pragma once

#include <span>
#include <vector>

namespace wolt::plc {

struct TimeShareResult {
  // Airtime fraction t_j given to each extender (sums to <= 1; equals 1
  // unless every extender's demand is satisfied early).
  std::vector<double> time_share;
  // Delivered PLC throughput min(d_j, t_j * c_j) per extender (Mbit/s).
  std::vector<double> throughput;
};

// Max-min fair airtime allocation over one shared medium.
//   rates_mbps[j]   = c_j, PLC PHY/isolation rate of extender j's link.
//   demands_mbps[j] = d_j, offered load (the extender's aggregate WiFi
//                     throughput); an extender demanding 0 gets no airtime.
// Progressive filling: start from equal shares of the remaining time among
// backlogged extenders; extenders whose demand fits within their share are
// capped at exactly d_j/c_j airtime and the surplus is re-split among the
// rest, until shares stabilise.
TimeShareResult MaxMinTimeShare(std::span<const double> rates_mbps,
                                std::span<const double> demands_mbps);

// The planning model used inside Problem 1 / Phase I (Eq. 2): every active
// extender gets exactly 1/k of airtime, no leftover redistribution.
// Extenders with zero demand are idle and excluded from k.
TimeShareResult EqualTimeShare(std::span<const double> rates_mbps,
                               std::span<const double> demands_mbps);

}  // namespace wolt::plc
