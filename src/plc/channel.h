// Physical PLC channel model (HomePlug-AV2 style) producing per-link
// isolation capacities.
//
// The paper measures its PLC capacities on TP-Link TL-WPA8630 ("AV1200")
// hardware and observes isolation TCP throughputs of 60-160 Mbit/s across
// building outlets (Fig. 2b). We do not have that hardware, so this module
// synthesises capacities from first principles: OFDM subcarriers spanning
// 1.8-86.13 MHz, per-subcarrier SNR that decays with wire length (stronger
// at higher frequencies, the dominant effect on power-line channels) and
// with the number of branch taps, bit loading via a Shannon-gap rule capped
// at 4096-QAM, two MIMO streams, FEC and MAC/TCP overhead factors. Constants
// are calibrated (tests/plc_channel_test.cc) so that typical office wire
// runs of 5-80 m with 0-4 branch taps reproduce the measured 60-160 Mbit/s
// band.
#pragma once

#include "util/rng.h"

namespace wolt::plc {

struct ChannelModelParams {
  int num_subcarriers = 917;        // spaced over the band below
  double band_low_mhz = 1.8;
  double band_high_mhz = 86.13;     // AV2 extended band
  int mimo_streams = 2;             // AV2 MIMO over L/N/PE pairs
  double symbol_rate_ksym_s = 24.4; // OFDM symbols per second (thousands)
  int max_bits_per_carrier = 12;    // 4096-QAM
  double snr0_db = 38.0;            // injected SNR at zero length, low freq
  double atten_db_per_m_base = 0.08;        // frequency-independent part
  double atten_db_per_m_per_mhz = 0.010;    // frequency-dependent slope
  double branch_loss_db = 3.0;      // per branch tap on the path
  double shannon_gap_db = 6.0;      // coding gap for practical QAM
  double fec_efficiency = 0.8;
  double mac_tcp_efficiency = 0.5;  // PHY -> saturated TCP goodput
};

// A power-line path between the master router's central unit and one
// extender outlet.
struct PlcPath {
  double wire_length_m = 20.0;
  int branch_taps = 1;
  // Lognormal shadowing term (dB) capturing appliance noise and wiring
  // idiosyncrasies; sampled by the caller (0 = nominal).
  double shadowing_db = 0.0;
};

class ChannelModel {
 public:
  explicit ChannelModel(ChannelModelParams params = {});

  // PHY bit rate (Mbit/s) after bit loading and FEC, before MAC overhead.
  double PhyRateMbps(const PlcPath& path) const;

  // Saturated TCP goodput (Mbit/s) of the link in isolation — the quantity
  // the paper calls the PLC link's capacity c_j.
  double CapacityMbps(const PlcPath& path) const;

  // Per-subcarrier SNR in dB at the given subcarrier frequency.
  double SnrDb(const PlcPath& path, double freq_mhz) const;

  // Bits loaded on one subcarrier at the given SNR.
  int BitsPerCarrier(double snr_db) const;

  const ChannelModelParams& params() const { return params_; }

 private:
  ChannelModelParams params_;
};

}  // namespace wolt::plc
