#include "plc/timeshare.h"

#include <algorithm>
#include <stdexcept>

namespace wolt::plc {
namespace {

void CheckInputs(std::span<const double> rates,
                 std::span<const double> demands) {
  if (rates.size() != demands.size()) {
    throw std::invalid_argument("rates/demands size mismatch");
  }
  for (std::size_t j = 0; j < rates.size(); ++j) {
    if (rates[j] < 0.0 || demands[j] < 0.0) {
      throw std::invalid_argument("negative rate or demand");
    }
    if (demands[j] > 0.0 && rates[j] <= 0.0) {
      throw std::invalid_argument("positive demand on zero-rate PLC link");
    }
  }
}

}  // namespace

TimeShareResult MaxMinTimeShare(std::span<const double> rates_mbps,
                                std::span<const double> demands_mbps) {
  CheckInputs(rates_mbps, demands_mbps);
  const std::size_t n = rates_mbps.size();
  TimeShareResult result;
  result.time_share.assign(n, 0.0);
  result.throughput.assign(n, 0.0);

  std::vector<std::size_t> backlogged;
  for (std::size_t j = 0; j < n; ++j) {
    if (demands_mbps[j] > 0.0) backlogged.push_back(j);
  }

  double remaining_time = 1.0;
  // Each round either sates at least one extender or terminates, so this
  // loop runs at most n times.
  while (!backlogged.empty() && remaining_time > 0.0) {
    const double share = remaining_time / static_cast<double>(backlogged.size());
    std::vector<std::size_t> still_backlogged;
    bool any_sated = false;
    for (std::size_t j : backlogged) {
      const double needed_time = demands_mbps[j] / rates_mbps[j];
      if (needed_time <= share) {
        // Demand fits: cap airtime at exactly what is needed.
        result.time_share[j] += needed_time;
        any_sated = true;
      } else {
        still_backlogged.push_back(j);
      }
    }
    if (!any_sated) {
      // No one sated: split the remaining time equally and stop.
      for (std::size_t j : still_backlogged) result.time_share[j] += share;
      remaining_time = 0.0;
      break;
    }
    // Recompute the time left after the newly sated extenders took their cut.
    double used = 0.0;
    for (std::size_t j = 0; j < n; ++j) used += result.time_share[j];
    remaining_time = std::max(0.0, 1.0 - used);
    backlogged = std::move(still_backlogged);
  }

  for (std::size_t j = 0; j < n; ++j) {
    result.throughput[j] =
        std::min(demands_mbps[j], result.time_share[j] * rates_mbps[j]);
  }
  return result;
}

TimeShareResult EqualTimeShare(std::span<const double> rates_mbps,
                               std::span<const double> demands_mbps) {
  CheckInputs(rates_mbps, demands_mbps);
  const std::size_t n = rates_mbps.size();
  TimeShareResult result;
  result.time_share.assign(n, 0.0);
  result.throughput.assign(n, 0.0);

  std::size_t active = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (demands_mbps[j] > 0.0) ++active;
  }
  if (active == 0) return result;

  const double share = 1.0 / static_cast<double>(active);
  for (std::size_t j = 0; j < n; ++j) {
    if (demands_mbps[j] <= 0.0) continue;
    result.time_share[j] = share;
    result.throughput[j] =
        std::min(demands_mbps[j], share * rates_mbps[j]);
  }
  return result;
}

}  // namespace wolt::plc
