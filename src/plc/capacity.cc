#include "plc/capacity.h"

#include <algorithm>
#include <stdexcept>

namespace wolt::plc {

CapacitySampler::CapacitySampler(CapacitySamplerParams params)
    : params_(std::move(params)) {
  if (params_.source == CapacitySource::kMeasuredAnchors &&
      params_.measured_anchors.empty()) {
    throw std::invalid_argument("no measured anchors");
  }
  if (params_.min_capacity_mbps <= 0.0 ||
      params_.max_capacity_mbps < params_.min_capacity_mbps) {
    throw std::invalid_argument("bad capacity clamp range");
  }
}

double CapacitySampler::Sample(util::Rng& rng) const {
  double capacity = 0.0;
  switch (params_.source) {
    case CapacitySource::kMeasuredAnchors: {
      const std::size_t k = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<int>(params_.measured_anchors.size()) - 1));
      capacity = params_.measured_anchors[k] *
                 rng.LogNormal(0.0, params_.anchor_jitter_sigma);
      break;
    }
    case CapacitySource::kChannelModel: {
      PlcPath path;
      path.wire_length_m = rng.Uniform(params_.min_wire_m, params_.max_wire_m);
      path.branch_taps = rng.UniformInt(0, params_.max_branch_taps);
      path.shadowing_db = rng.Normal(0.0, params_.shadowing_sigma_db);
      capacity = channel_.CapacityMbps(path);
      break;
    }
  }
  return std::clamp(capacity, params_.min_capacity_mbps,
                    params_.max_capacity_mbps);
}

std::vector<double> CapacitySampler::SampleMany(std::size_t n,
                                                util::Rng& rng) const {
  std::vector<double> capacities(n);
  for (double& c : capacities) c = Sample(rng);
  return capacities;
}

CapacityEstimator::CapacityEstimator(CapacityEstimatorParams params)
    : params_(params) {
  if (params_.num_probes <= 0) {
    throw std::invalid_argument("need at least one probe");
  }
}

double CapacityEstimator::Estimate(double true_capacity_mbps,
                                   util::Rng& rng) const {
  if (true_capacity_mbps <= 0.0) {
    throw std::invalid_argument("non-positive capacity");
  }
  double sum = 0.0;
  for (int p = 0; p < params_.num_probes; ++p) {
    const double factor =
        std::max(0.01, 1.0 + rng.Normal(0.0, params_.probe_noise_sigma));
    sum += true_capacity_mbps * factor;
  }
  return sum / static_cast<double>(params_.num_probes);
}

std::vector<double> CapacityEstimator::EstimateMany(
    const std::vector<double>& truths, util::Rng& rng) const {
  std::vector<double> estimates;
  estimates.reserve(truths.size());
  for (double t : truths) estimates.push_back(Estimate(t, rng));
  return estimates;
}

}  // namespace wolt::plc
