#include "plc/tdma.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace wolt::plc {
namespace {

// Largest-remainder apportionment of `slots` among members of `who`
// proportional to `weights`. Returns per-member slot counts.
std::vector<int> Apportion(int slots, const std::vector<std::size_t>& who,
                           std::span<const double> weights) {
  std::vector<int> out(who.size(), 0);
  double total_weight = 0.0;
  for (std::size_t k = 0; k < who.size(); ++k) total_weight += weights[who[k]];
  if (total_weight <= 0.0 || slots <= 0) return out;

  std::vector<double> remainder(who.size(), 0.0);
  int assigned = 0;
  for (std::size_t k = 0; k < who.size(); ++k) {
    const double quota =
        static_cast<double>(slots) * weights[who[k]] / total_weight;
    out[k] = static_cast<int>(std::floor(quota));
    remainder[k] = quota - std::floor(quota);
    assigned += out[k];
  }
  // Hand the leftover slots to the largest remainders (stable tie-break by
  // index).
  std::vector<std::size_t> order(who.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (remainder[a] != remainder[b]) return remainder[a] > remainder[b];
    return a < b;
  });
  for (std::size_t k = 0; assigned < slots && k < order.size(); ++k) {
    ++out[order[k]];
    ++assigned;
  }
  return out;
}

}  // namespace

TdmaSchedule ScheduleTdma(std::span<const double> rates_mbps,
                          std::span<const double> demands_mbps,
                          std::span<const double> weights,
                          const TdmaParams& params) {
  const std::size_t n = rates_mbps.size();
  if (demands_mbps.size() != n || weights.size() != n) {
    throw std::invalid_argument("input size mismatch");
  }
  if (params.slots_per_beacon <= 0) {
    throw std::invalid_argument("need at least one slot per beacon");
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (rates_mbps[j] < 0.0 || demands_mbps[j] < 0.0 || weights[j] < 0.0) {
      throw std::invalid_argument("negative input");
    }
    if (demands_mbps[j] > 0.0 &&
        (rates_mbps[j] <= 0.0 || weights[j] <= 0.0)) {
      throw std::invalid_argument(
          "backlogged extender needs positive rate and weight");
    }
  }

  TdmaSchedule schedule;
  schedule.slots.assign(n, 0);
  schedule.time_share.assign(n, 0.0);
  schedule.throughput.assign(n, 0.0);

  const int total_slots = params.slots_per_beacon;
  // Slots an extender needs to carry its full demand, clamped to the beacon
  // (a saturated demand would otherwise overflow the integer conversion).
  const auto needed_slots = [&](std::size_t j) {
    const double raw = std::ceil(demands_mbps[j] *
                                 static_cast<double>(total_slots) /
                                 rates_mbps[j]);
    return static_cast<int>(
        std::min(raw, static_cast<double>(total_slots)));
  };

  std::vector<std::size_t> backlogged;
  for (std::size_t j = 0; j < n; ++j) {
    if (demands_mbps[j] > 0.0) backlogged.push_back(j);
  }

  int remaining = total_slots;
  // Each round sates at least one extender or terminates: O(n) rounds.
  while (!backlogged.empty() && remaining > 0) {
    const std::vector<int> share = Apportion(remaining, backlogged, weights);
    std::vector<std::size_t> still;
    bool any_sated = false;
    for (std::size_t k = 0; k < backlogged.size(); ++k) {
      const std::size_t j = backlogged[k];
      const int need = needed_slots(j) - schedule.slots[j];
      if (need <= share[k]) {
        schedule.slots[j] += std::max(need, 0);
        any_sated = true;
      } else {
        still.push_back(j);
      }
    }
    int used = 0;
    for (std::size_t j = 0; j < n; ++j) used += schedule.slots[j];
    remaining = total_slots - used;
    if (!any_sated) {
      // Final round: hand out the remainder proportionally and stop.
      const std::vector<int> final_share =
          Apportion(remaining, still, weights);
      for (std::size_t k = 0; k < still.size(); ++k) {
        schedule.slots[still[k]] += final_share[k];
      }
      remaining = 0;
      break;
    }
    backlogged = std::move(still);
  }
  schedule.unused_slots = remaining;

  for (std::size_t j = 0; j < n; ++j) {
    schedule.time_share[j] = static_cast<double>(schedule.slots[j]) /
                             static_cast<double>(total_slots);
    schedule.throughput[j] =
        std::min(demands_mbps[j], schedule.time_share[j] * rates_mbps[j]);
  }
  return schedule;
}

TdmaSchedule ScheduleTdmaEqual(std::span<const double> rates_mbps,
                               std::span<const double> demands_mbps,
                               const TdmaParams& params) {
  const std::vector<double> weights(rates_mbps.size(), 1.0);
  return ScheduleTdma(rates_mbps, demands_mbps, weights, params);
}

}  // namespace wolt::plc
