// PLC link capacity sources and the offline capacity estimator.
//
// Two ways to obtain the per-extender c_j that WOLT needs:
//  * CapacitySampler — draws capacities matching the paper's calibration
//    data: either from the measured anchors of Fig. 2b (60/90/120/160 Mbit/s
//    with lognormal spread, "calibrated with PLC link capacities measured
//    from different outlets in a university building", §V-A) or from the
//    physical ChannelModel with randomly drawn wire runs.
//  * CapacityEstimator — emulates the paper's offline estimation procedure
//    (§V-A): saturate the link iperf3-style k times and use the mean probe
//    throughput; models the measurement noise a real deployment would see.
#pragma once

#include <vector>

#include "plc/channel.h"
#include "util/rng.h"

namespace wolt::plc {

enum class CapacitySource {
  kMeasuredAnchors,  // resample the Fig. 2b anchor set with jitter
  kChannelModel,     // draw wire length/branch taps, run ChannelModel
};

struct CapacitySamplerParams {
  CapacitySource source = CapacitySource::kMeasuredAnchors;
  // Fig. 2b: isolation throughputs of the four measured outlets (Mbit/s).
  std::vector<double> measured_anchors = {60.0, 90.0, 120.0, 160.0};
  // Lognormal jitter applied to an anchor (sigma of log-scale).
  double anchor_jitter_sigma = 0.12;
  // ChannelModel draw ranges.
  double min_wire_m = 5.0;
  double max_wire_m = 60.0;
  int max_branch_taps = 3;
  double shadowing_sigma_db = 2.0;
  // Clamp for sampled capacities (keeps the simulator inside the regime the
  // paper measured).
  double min_capacity_mbps = 20.0;
  double max_capacity_mbps = 200.0;
};

class CapacitySampler {
 public:
  explicit CapacitySampler(CapacitySamplerParams params = {});

  // One PLC link capacity c_j in Mbit/s.
  double Sample(util::Rng& rng) const;

  // Capacities for a whole building (n extenders).
  std::vector<double> SampleMany(std::size_t n, util::Rng& rng) const;

  const CapacitySamplerParams& params() const { return params_; }

 private:
  CapacitySamplerParams params_;
  ChannelModel channel_;
};

struct CapacityEstimatorParams {
  int num_probes = 5;
  // Multiplicative noise per probe: probe = truth * (1 + Normal(0, sigma)).
  double probe_noise_sigma = 0.05;
};

class CapacityEstimator {
 public:
  explicit CapacityEstimator(CapacityEstimatorParams params = {});

  // Estimate a link's capacity from noisy saturation probes of the true
  // value. Always positive.
  double Estimate(double true_capacity_mbps, util::Rng& rng) const;

  std::vector<double> EstimateMany(const std::vector<double>& truths,
                                   util::Rng& rng) const;

 private:
  CapacityEstimatorParams params_;
};

}  // namespace wolt::plc
