// IEEE 1901 TDMA mode.
//
// Besides CSMA/CA, the 1901 standard provides a TDMA-based, QoS-capable
// access mode in which a schedule of fixed slots per beacon period is
// allocated to stations (§II of the paper). This module implements a
// weighted slot scheduler: each extender receives slots proportional to its
// weight via largest-remainder apportionment, demand-capped slots are
// re-apportioned to backlogged extenders, and the resulting quantized
// airtime shares converge to the fluid max-min allocation as the number of
// slots per beacon grows. It provides the substrate for QoS-weighted
// backhaul sharing — a knob CSMA's time fairness does not offer.
#pragma once

#include <span>
#include <vector>

namespace wolt::plc {

struct TdmaParams {
  // Slots per beacon period (HomePlug AV beacon = 33.33 ms; ~50 usable
  // allocation slots is a realistic granularity).
  int slots_per_beacon = 50;
};

struct TdmaSchedule {
  std::vector<int> slots;          // per extender, sums to <= slots_per_beacon
  std::vector<double> time_share;  // slots / slots_per_beacon
  std::vector<double> throughput;  // min(demand, share * rate) per extender
  int unused_slots = 0;            // slots no backlogged extender could use
};

// Build a schedule for extenders with PLC link rates `rates_mbps`, offered
// loads `demands_mbps` and QoS weights `weights` (all same length; weights
// must be positive where demand is positive). Zero-demand extenders get no
// slots. Deterministic.
TdmaSchedule ScheduleTdma(std::span<const double> rates_mbps,
                          std::span<const double> demands_mbps,
                          std::span<const double> weights,
                          const TdmaParams& params = {});

// Convenience: equal weights (pure time fairness, the CSMA-like default).
TdmaSchedule ScheduleTdmaEqual(std::span<const double> rates_mbps,
                               std::span<const double> demands_mbps,
                               const TdmaParams& params = {});

}  // namespace wolt::plc
