#include "assign/brute_force.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace wolt::assign {
namespace {

std::uint64_t CheckedPow(std::uint64_t base, std::uint64_t exp,
                         std::uint64_t limit) {
  std::uint64_t result = 1;
  for (std::uint64_t k = 0; k < exp; ++k) {
    if (result > limit / base) return limit + 1;
    result *= base;
  }
  return result;
}

}  // namespace

BruteForceResult SolveBruteForceObjective(
    const model::Network& net, const model::Assignment& pinned,
    const std::function<double(const model::Assignment&)>& objective,
    const BruteForceOptions& options) {
  const std::size_t num_users = net.NumUsers();
  const std::size_t num_ext = net.NumExtenders();
  if (num_ext == 0) throw std::invalid_argument("no extenders");
  if (pinned.NumUsers() != num_users) {
    throw std::invalid_argument("pinned assignment size mismatch");
  }

  std::vector<std::size_t> free_users;
  for (std::size_t i = 0; i < num_users; ++i) {
    if (!pinned.IsAssigned(i)) free_users.push_back(i);
  }

  const std::uint64_t choices =
      static_cast<std::uint64_t>(num_ext) + (options.allow_unassigned ? 1 : 0);
  if (CheckedPow(choices, free_users.size(), options.max_combinations) >
      options.max_combinations) {
    throw std::invalid_argument("brute-force search space too large");
  }

  BruteForceResult result;
  result.best = pinned;
  result.best_aggregate_mbps = 0.0;
  bool found = false;

  model::Assignment current = pinned;
  // Odometer over the free users' choices. Choice num_ext = unassigned.
  std::vector<std::size_t> digit(free_users.size(), 0);
  const std::size_t radix = static_cast<std::size_t>(choices);

  const auto evaluate_current = [&] {
    if (!current.IsValidFor(net)) return;
    if (!options.allow_unassigned && !current.IsCompleteFor(net)) return;
    const double value = objective(current);
    ++result.evaluated;
    if (!found || value > result.best_aggregate_mbps) {
      found = true;
      result.best_aggregate_mbps = value;
      result.best = current;
    }
  };

  while (true) {
    for (std::size_t k = 0; k < free_users.size(); ++k) {
      if (digit[k] < num_ext) {
        current.Assign(free_users[k], digit[k]);
      } else {
        current.Unassign(free_users[k]);
      }
    }
    evaluate_current();
    // Increment odometer.
    std::size_t k = 0;
    while (k < digit.size()) {
      if (++digit[k] < radix) break;
      digit[k] = 0;
      ++k;
    }
    if (k == digit.size()) break;
    if (digit.empty()) break;
  }
  // Degenerate case: no free users — evaluate the pinned assignment once.
  if (free_users.empty() && result.evaluated == 0) evaluate_current();

  if (!found) {
    throw std::runtime_error("no feasible assignment found");
  }
  return result;
}

BruteForceResult SolveBruteForce(const model::Network& net,
                                 const BruteForceOptions& options) {
  const model::Evaluator evaluator(options.eval);
  const model::Assignment none(net.NumUsers());
  return SolveBruteForceObjective(
      net, none,
      [&](const model::Assignment& a) {
        return evaluator.AggregateThroughput(net, a);
      },
      options);
}

}  // namespace wolt::assign
