// Joint user-association + WiFi-channel assignment.
//
// The paper assumes every extender owns a non-overlapping channel, so
// association can ignore the air entirely (§V-A). With more extenders than
// orthogonal channels that assumption breaks: co-channel cells within
// carrier-sense range time-share airtime (EvalOptions::wifi_channel), and
// the association and the channel plan must be optimized *jointly* (Bosio &
// Yuan, PAPERS.md). This module provides:
//
//  * SolveJointNaive — the retired assumption made explicit: associate as if
//    channels were free (plan-blind), colour the interference graph
//    unweighted, then score the pair under overlap. The floor every joint
//    method must beat.
//  * SolveJointAlternating — associate → recolour (association-weighted
//    greedy colouring, wifi::AssignChannelsWeighted) → reassociate, keeping
//    only strict improvements, until a fixed point, a round cap, or
//    deadline-token expiry. Seeded from the naive pair, so its result
//    dominates naive by construction; on expiry the incumbent is always a
//    valid (assignment, plan) pair.
//  * SolveJointBruteForce — exhaustive reference for small instances:
//    enumerates every channel plan jointly with every assignment
//    (num_channels^|A| x (|A|[+1])^|U|). The differential harness pins
//    joint-BF >= alternating >= naive (tests/joint_differential_test.cc).
//
// Association is delegated through a JointAssociator callback so this layer
// stays below core/ (core::WoltJointAssociator adapts the full WOLT policy;
// tests can plug in greedy or exact oracles).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "model/assignment.h"
#include "model/evaluator.h"
#include "model/network.h"
#include "util/deadline.h"

namespace wolt::assign {

// Association oracle: produce an assignment for `net` under `eval` (which
// carries the candidate channel plan in eval.wifi_channel; empty = the
// orthogonal assumption). `previous` is the incumbent assignment (all
// kUnassigned on the first call); `deadline` may be null. Implementations
// must return a valid assignment even on deadline expiry (best-so-far).
using JointAssociator = std::function<model::Assignment(
    const model::Network& net, const model::EvalOptions& eval,
    const model::Assignment& previous, const util::Deadline* deadline)>;

struct JointOptions {
  // Orthogonal channels available to the plan.
  int num_channels = 3;
  // Co-channel extenders within this range contend (both for colouring the
  // interference graph and for the evaluator's derived domains).
  double carrier_sense_range_m = 60.0;
  // Scoring model (plc_sharing etc.). Any wifi_channel /
  // wifi_contention_domain already present is ignored: the solver installs
  // its own candidate plans.
  model::EvalOptions eval;
  // Alternating-solver round cap (each round = recolour + reassociate).
  int max_rounds = 8;
  // Optional cooperative budget; null = unlimited.
  const util::Deadline* deadline = nullptr;
  // Brute force only: abort if plans x assignments exceeds this.
  std::uint64_t max_combinations = 50'000'000;
  // Brute force only: search the relaxed problem (users may stay
  // unassigned).
  bool allow_unassigned = false;
};

struct JointResult {
  model::Assignment assignment;
  std::vector<int> channels;  // one channel per extender
  double aggregate_mbps = 0.0;
  int rounds = 0;          // alternating rounds executed
  bool converged = false;  // stopped at a fixed point (not cap/deadline)
  bool deadline_hit = false;
  std::uint64_t evaluated = 0;  // brute force: assignments evaluated
};

// Scores an (assignment, plan) pair under the overlap model: options.eval
// with the plan installed as wifi_channel. The yardstick every solver here
// and the differential tests share.
double EvaluateUnderOverlap(const model::Network& net,
                            const model::Assignment& assignment,
                            const std::vector<int>& channels,
                            const JointOptions& options);

JointResult SolveJointNaive(const model::Network& net,
                            const JointAssociator& associate,
                            const JointOptions& options = {});

JointResult SolveJointAlternating(const model::Network& net,
                                  const JointAssociator& associate,
                                  const JointOptions& options = {});

JointResult SolveJointBruteForce(const model::Network& net,
                                 const JointOptions& options = {});

}  // namespace wolt::assign
