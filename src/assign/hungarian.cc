#include "assign/hungarian.h"

#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

namespace wolt::assign {
namespace {

// Large finite stand-in for infinite cost; anything at or above half of it
// in the final matching means the instance was infeasible.
constexpr double kBigCost = 1e15;

constexpr double kMax = std::numeric_limits<double>::max();

// Shortest-augmenting-path Hungarian on an n x m cost matrix (n <= m),
// data-oriented formulation:
//
//  * Contiguous column-id layout. All per-column state (v/minv/way) stays
//    in column-id order, so every scan reads the cost row and the dual
//    arrays with unit stride — no permutation gather in the hot loop. A
//    used column is retired in place: its `used_mask` entry flips from 0.0
//    to +inf (which forces its relaxation candidate to +inf, freezing
//    `way`) and its `minv` is parked at kMax so it decays out of every
//    later argmin instead of being re-selected.
//
//  * Fused passes. The classic e-maxx inner loop makes one branchy scan
//    over all m columns plus a second full-width delta-application pass.
//    Here the previous step's minv subtraction and the relaxation through
//    the new tree column run in one branchless elementwise pass (the shape
//    the auto-vectorizer wants), followed by a min-reduction and a
//    first-index match — ties break towards the smallest column id, which
//    is what the classic ascending scan does. The dual updates for the
//    used columns are replayed from the recorded per-step deltas once at
//    the end of the row (a used column's duals are never read until its
//    row is rescanned, which can only happen after it joined the tree).
//
//  * Arena scratch. All working arrays come from a SolverArena; a caller
//    that reuses one arena keeps repeated solves allocation-free.
//
// The restructuring is value-exact: every observable minv entry, delta,
// dual and tie-break reproduces the classic formulation bit for bit (the
// +0.0 mask add can at most flip the sign of a zero, which no comparison
// or dual sum can distinguish), so results are byte-identical to the
// pre-optimization solver.
HungarianResult SolveMinImpl(const double* costs, std::size_t n,
                             std::size_t m, const util::Deadline* deadline,
                             util::SolverArena& arena) {
  double* u = arena.AllocFill<double>(n, 0.0);      // row potentials
  double* v = arena.AllocFill<double>(m, 0.0);      // column potentials
  double* minv = arena.Alloc<double>(m);            // tentative path costs
  double* used_mask = arena.Alloc<double>(m);       // 0.0 live, +inf used
  int* way = arena.Alloc<int>(m);                   // predecessor column
  int* used_cols = arena.Alloc<int>(m);             // tree columns, in order
  int* use_step = arena.Alloc<int>(m);              // step column was used at
  double* delta_hist = arena.Alloc<double>(m + 1);  // per-step deltas
  int* p_col = arena.AllocFill<int>(m, -1);         // column -> matched row
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::uint64_t augment_steps = 0;
  bool deadline_hit = false;
  for (std::size_t i = 0; i < n; ++i) {
    // One row augmentation is the solver's bounded unit of work. Stopping
    // before row i leaves rows < i matched to distinct columns — a valid
    // best-so-far partial assignment.
    if (util::DeadlineExpired(deadline)) {
      deadline_hit = true;
      break;
    }
    for (std::size_t k = 0; k < m; ++k) minv[k] = kMax;
    for (std::size_t k = 0; k < m; ++k) used_mask[k] = 0.0;
    double delta_prev = 0.0;  // last step's delta, applied lazily in-pass
    std::size_t steps = 0;    // completed tree-growing steps this row
    std::size_t t = 0;        // used-column count
    int j0c = -1;             // current column id (-1 = virtual root)
    std::size_t i0 = i;       // row matched to j0c (virtual -> this row)
    int free_col = -1;
    for (;;) {
      ++augment_steps;
      const double* row = costs + i0 * m;
      const double u0 = u[i0];
      // Fused elementwise pass: apply the previous step's delta and relax
      // through j0c. Used columns see cur == +inf (mask add), so their
      // `way` is frozen and their parked-kMax minv only decays — far above
      // any live candidate (deltas are bounded by kBigCost per step).
      for (std::size_t k = 0; k < m; ++k) {
        double mk = minv[k] - delta_prev;
        const double cur = (row[k] - u0 - v[k]) + used_mask[k];
        const bool better = cur < mk;
        mk = better ? cur : mk;
        way[k] = better ? j0c : way[k];
        minv[k] = mk;
      }
      // Min-reduction + first-index match: the first minimum in ascending
      // column order is exactly the classic scan's tie-break (a -0.0/+0.0
      // pair compares equal both ways, so the match finds the same index
      // the fused scalar scan would have kept). The reduction runs on 8
      // independent lane accumulators so it vectorizes despite strict FP
      // semantics — min is exactly associative, so the lane split cannot
      // change the reduced value (beyond a zero's sign, which the !=
      // index match cannot see).
      double lane_min[8];
      for (std::size_t l = 0; l < 8; ++l) lane_min[l] = kMax;
      const std::size_t m8 = m - m % 8;
      for (std::size_t k = 0; k < m8; k += 8) {
        for (std::size_t l = 0; l < 8; ++l) {
          const double x = minv[k + l];
          lane_min[l] = x < lane_min[l] ? x : lane_min[l];
        }
      }
      double best = lane_min[0];
      for (std::size_t l = 1; l < 8; ++l) {
        best = lane_min[l] < best ? lane_min[l] : best;
      }
      for (std::size_t k = m8; k < m; ++k) {
        best = minv[k] < best ? minv[k] : best;
      }
      std::size_t j1 = 0;
      while (minv[j1] != best) ++j1;
      delta_hist[steps++] = best;
      delta_prev = best;
      const int jc = static_cast<int>(j1);
      if (p_col[jc] < 0) {
        free_col = jc;  // unmatched column reached: augment
        break;
      }
      // Retire j1 in place; record the step so the row-end dual replay
      // applies exactly the deltas that accrued from this step on.
      used_mask[j1] = kInf;
      minv[j1] = kMax;
      used_cols[t] = jc;
      use_step[t] = static_cast<int>(steps);  // first delta it receives
      j0c = jc;
      i0 = static_cast<std::size_t>(p_col[jc]);
      ++t;
    }
    // Deferred dual replay (before the matching is rewritten, so
    // u[p_col[...]] still addresses the pre-augmentation rows). Summing
    // the per-step deltas in step order reproduces the classic stepwise
    // updates bit for bit.
    for (std::size_t k = 0; k < t; ++k) {
      const int jc = used_cols[k];
      const std::size_t row_k = static_cast<std::size_t>(p_col[jc]);
      for (std::size_t q = static_cast<std::size_t>(use_step[k]); q < steps;
           ++q) {
        u[row_k] += delta_hist[q];
        v[jc] -= delta_hist[q];
      }
    }
    for (std::size_t q = 0; q < steps; ++q) {
      u[i] += delta_hist[q];  // the virtual root is used from step one
    }
    // Augment along the recorded predecessor chain.
    int jc = free_col;
    while (jc >= 0) {
      const int prev = way[jc];
      p_col[jc] = prev >= 0 ? p_col[prev] : static_cast<int>(i);
      jc = prev;
    }
  }

  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->solver.hungarian_solves.Add(1);
    s->solver.hungarian_augment_steps.Add(augment_steps);
  }

  HungarianResult result;
  result.deadline_hit = deadline_hit;
  result.col_of_row.assign(n, -1);
  for (std::size_t j = 0; j < m; ++j) {
    if (p_col[j] < 0) continue;
    result.col_of_row[static_cast<std::size_t>(p_col[j])] =
        static_cast<int>(j);
    const double c = costs[static_cast<std::size_t>(p_col[j]) * m + j];
    result.total_utility += c;
    if (c >= kBigCost / 2.0) result.feasible = false;
  }
  return result;
}

void CheckShape(const Matrix& matrix) {
  if (matrix.empty()) {
    throw std::invalid_argument("empty matrix");
  }
  if (matrix.rows() > matrix.cols()) {
    throw std::invalid_argument("Hungarian requires rows <= cols");
  }
}

}  // namespace

HungarianResult SolveAssignmentMin(const Matrix& costs,
                                   const util::Deadline* deadline,
                                   util::SolverArena* arena) {
  CheckShape(costs);
  util::SolverArena local;
  util::SolverArena& a = arena ? *arena : local;
  // Bounded copy in arena storage (no per-call heap traffic with a shared
  // arena): clamp infinities so dual arithmetic stays finite.
  double* bounded = a.Alloc<double>(costs.size());
  const double* data = costs.data();
  for (std::size_t k = 0; k < costs.size(); ++k) {
    const double c = data[k];
    bounded[k] = (std::isinf(c) || c > kBigCost) ? kBigCost : c;
  }
  return SolveMinImpl(bounded, costs.rows(), costs.cols(), deadline, a);
}

HungarianResult SolveAssignmentMax(const Matrix& utilities,
                                   const util::Deadline* deadline,
                                   util::SolverArena* arena) {
  CheckShape(utilities);
  util::SolverArena local;
  util::SolverArena& a = arena ? *arena : local;
  // Negate (and clamp forbidden entries) to reuse the min solver.
  double* costs = a.Alloc<double>(utilities.size());
  const double* data = utilities.data();
  for (std::size_t k = 0; k < utilities.size(); ++k) {
    const double util = data[k];
    costs[k] = (util == kForbidden || std::isinf(util)) ? kBigCost : -util;
  }
  HungarianResult result =
      SolveMinImpl(costs, utilities.rows(), utilities.cols(), deadline, a);
  // Recompute total in utility space (excluding infeasible picks; rows left
  // unmatched by a deadline-truncated solve carry col_of_row == -1).
  result.total_utility = 0.0;
  for (std::size_t r = 0; r < utilities.rows(); ++r) {
    if (result.col_of_row[r] < 0) continue;
    const double util =
        utilities(r, static_cast<std::size_t>(result.col_of_row[r]));
    if (util != kForbidden) result.total_utility += util;
  }
  return result;
}

}  // namespace wolt::assign
