#include "assign/hungarian.h"

#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

namespace wolt::assign {
namespace {

// Large finite stand-in for infinite cost; anything at or above half of it
// in the final matching means the instance was infeasible.
constexpr double kBigCost = 1e15;

// Shortest-augmenting-path Hungarian on an n x m cost matrix (n <= m),
// 1-indexed internally. Returns row assigned to each column in p.
HungarianResult SolveMinImpl(const Matrix& costs,
                             const util::Deadline* deadline) {
  const std::size_t n = costs.rows();
  const std::size_t m = costs.cols();

  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(m + 1, 0.0);
  std::vector<std::size_t> p(m + 1, 0);  // p[j] = row matched to column j
  std::vector<std::size_t> way(m + 1, 0);
  std::vector<double> minv(m + 1);
  std::vector<bool> used(m + 1);

  std::uint64_t augment_steps = 0;
  bool deadline_hit = false;
  for (std::size_t i = 1; i <= n; ++i) {
    // One row augmentation is the solver's bounded unit of work. Stopping
    // before row i leaves rows < i matched to distinct columns — a valid
    // best-so-far partial assignment.
    if (util::DeadlineExpired(deadline)) {
      deadline_hit = true;
      break;
    }
    p[0] = i;
    std::size_t j0 = 0;
    minv.assign(m + 1, std::numeric_limits<double>::max());
    used.assign(m + 1, false);
    do {
      ++augment_steps;
      used[j0] = true;
      const std::size_t i0 = p[j0];
      const double* row = costs.Row(i0 - 1);
      double delta = std::numeric_limits<double>::max();
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = row[j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->solver.hungarian_solves.Add(1);
    s->solver.hungarian_augment_steps.Add(augment_steps);
  }

  HungarianResult result;
  result.deadline_hit = deadline_hit;
  result.col_of_row.assign(n, -1);
  for (std::size_t j = 1; j <= m; ++j) {
    if (p[j] == 0) continue;
    result.col_of_row[p[j] - 1] = static_cast<int>(j - 1);
    const double c = costs(p[j] - 1, j - 1);
    result.total_utility += c;
    if (c >= kBigCost / 2.0) result.feasible = false;
  }
  return result;
}

void CheckShape(const Matrix& matrix) {
  if (matrix.empty()) {
    throw std::invalid_argument("empty matrix");
  }
  if (matrix.rows() > matrix.cols()) {
    throw std::invalid_argument("Hungarian requires rows <= cols");
  }
}

}  // namespace

HungarianResult SolveAssignmentMin(const Matrix& costs,
                                   const util::Deadline* deadline) {
  CheckShape(costs);
  Matrix bounded = costs;
  double* data = bounded.data();
  for (std::size_t k = 0; k < bounded.size(); ++k) {
    if (std::isinf(data[k]) || data[k] > kBigCost) data[k] = kBigCost;
  }
  return SolveMinImpl(bounded, deadline);
}

HungarianResult SolveAssignmentMax(const Matrix& utilities,
                                   const util::Deadline* deadline) {
  CheckShape(utilities);
  // Negate (and clamp forbidden entries) to reuse the min solver.
  Matrix costs(utilities.rows(), utilities.cols(), 0.0);
  for (std::size_t k = 0; k < utilities.size(); ++k) {
    const double util = utilities.data()[k];
    costs.data()[k] =
        (util == kForbidden || std::isinf(util)) ? kBigCost : -util;
  }
  HungarianResult result = SolveMinImpl(costs, deadline);
  // Recompute total in utility space (excluding infeasible picks; rows left
  // unmatched by a deadline-truncated solve carry col_of_row == -1).
  result.total_utility = 0.0;
  for (std::size_t r = 0; r < utilities.rows(); ++r) {
    if (result.col_of_row[r] < 0) continue;
    const double util =
        utilities(r, static_cast<std::size_t>(result.col_of_row[r]));
    if (util != kForbidden) result.total_utility += util;
  }
  return result;
}

}  // namespace wolt::assign
