// Hungarian (Kuhn-Munkres) algorithm, O(n^2 * m) shortest-augmenting-path
// formulation with potentials — the polynomial-time assignment solver Phase I
// of WOLT relies on (Alg. 1 line 4, "ASSIGNMENT SOLVER"; complexity analysis
// §IV-B).
//
// Solves the rectangular maximization problem: given utilities(r, c) for
// rows r (tasks, e.g. extenders) and columns c (agents, e.g. users) with
// rows <= cols, choose a distinct column for every row maximizing total
// utility. Forbidden pairings are expressed with kForbidden.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/arena.h"
#include "util/deadline.h"

namespace wolt::assign {

// Dense row-major matrix. Replaces the old vector<vector<double>>: one
// contiguous allocation, cache-friendly row scans in the solver's inner
// loop, and no per-row indirection.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double value = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}
  Matrix(std::initializer_list<std::initializer_list<double>> init)
      : rows_(init.size()), cols_(init.size() ? init.begin()->size() : 0) {
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      if (row.size() != cols_) throw std::invalid_argument("ragged matrix");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  // Pointer to the start of row r (cols() contiguous values).
  const double* Row(std::size_t r) const { return data_.data() + r * cols_; }
  double* Row(std::size_t r) { return data_.data() + r * cols_; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::size_t size() const { return data_.size(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

struct HungarianResult {
  // col_of_row[r] = column assigned to row r, or -1 when row r is
  // unmatched (only possible after a deadline-truncated solve).
  std::vector<int> col_of_row;
  double total_utility = 0.0;
  // False iff some row could only be matched through a forbidden pairing
  // (its col_of_row entry is then not meaningful for that row).
  bool feasible = true;
  // True iff the solve stopped early on deadline expiry. The rows matched
  // before the stop form a valid partial assignment (distinct columns);
  // every later row has col_of_row == -1.
  bool deadline_hit = false;
};

inline constexpr double kForbidden =
    -std::numeric_limits<double>::infinity();

// Maximize total utility. Requires a non-empty rectangular matrix with
// rows <= cols; throws std::invalid_argument otherwise. `deadline` (may be
// null = unlimited) is polled once per row augmentation: the rows matched
// so far are kept and the rest left unmatched, so the result is always a
// consistent best-so-far partial matching.
//
// `arena` (may be null) provides the solver scratch: a caller that reuses
// one arena across solves (resetting it between them) makes every solve
// after the first allocation-free. With no arena a call-local one is used,
// which preserves the old per-call allocation behaviour.
HungarianResult SolveAssignmentMax(const Matrix& utilities,
                                   const util::Deadline* deadline = nullptr,
                                   util::SolverArena* arena = nullptr);

// Minimization twin (used by tests to cross-check against known instances).
// Forbidden pairs are +infinity costs.
HungarianResult SolveAssignmentMin(const Matrix& costs,
                                   const util::Deadline* deadline = nullptr,
                                   util::SolverArena* arena = nullptr);

}  // namespace wolt::assign
