// Hungarian (Kuhn-Munkres) algorithm, O(n^2 * m) shortest-augmenting-path
// formulation with potentials — the polynomial-time assignment solver Phase I
// of WOLT relies on (Alg. 1 line 4, "ASSIGNMENT SOLVER"; complexity analysis
// §IV-B).
//
// Solves the rectangular maximization problem: given utilities[r][c] for
// rows r (tasks, e.g. extenders) and columns c (agents, e.g. users) with
// rows <= cols, choose a distinct column for every row maximizing total
// utility. Forbidden pairings are expressed with kForbidden.
#pragma once

#include <limits>
#include <vector>

namespace wolt::assign {

using Matrix = std::vector<std::vector<double>>;

struct HungarianResult {
  // col_of_row[r] = column assigned to row r (always a valid index).
  std::vector<int> col_of_row;
  double total_utility = 0.0;
  // False iff some row could only be matched through a forbidden pairing
  // (its col_of_row entry is then not meaningful for that row).
  bool feasible = true;
};

inline constexpr double kForbidden =
    -std::numeric_limits<double>::infinity();

// Maximize total utility. Requires a non-empty rectangular matrix with
// rows <= cols; throws std::invalid_argument otherwise.
HungarianResult SolveAssignmentMax(const Matrix& utilities);

// Minimization twin (used by tests to cross-check against known instances).
// Forbidden pairs are +infinity costs.
HungarianResult SolveAssignmentMin(const Matrix& costs);

}  // namespace wolt::assign
