#include "assign/local_search.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wolt::assign {
namespace {

// Incremental WiFi-side state: per-extender user count and harmonic sum,
// from which T_WiFi_j = n_j / inv_j. Keeping this explicit makes single-user
// moves O(1) for the kWifiSum objective.
struct WifiState {
  std::vector<int> load;
  std::vector<double> inv_sum;

  WifiState(const model::Network& net, const model::Assignment& assign)
      : load(net.NumExtenders(), 0), inv_sum(net.NumExtenders(), 0.0) {
    for (std::size_t i = 0; i < net.NumUsers(); ++i) {
      const int e = assign.ExtenderOf(i);
      if (e == model::Assignment::kUnassigned) continue;
      Add(net, i, static_cast<std::size_t>(e));
    }
  }

  void Add(const model::Network& net, std::size_t user, std::size_t ext) {
    const double r = net.WifiRate(user, ext);
    if (r <= 0.0) throw std::invalid_argument("insert at unreachable extender");
    ++load[ext];
    inv_sum[ext] += 1.0 / r;
  }

  void Remove(const model::Network& net, std::size_t user, std::size_t ext) {
    const double r = net.WifiRate(user, ext);
    --load[ext];
    inv_sum[ext] -= 1.0 / r;
    if (load[ext] == 0) inv_sum[ext] = 0.0;  // kill accumulated error
  }

  double CellThroughput(std::size_t ext) const {
    return load[ext] > 0 ? static_cast<double>(load[ext]) / inv_sum[ext] : 0.0;
  }

  double WifiSum() const {
    double total = 0.0;
    for (std::size_t j = 0; j < load.size(); ++j) total += CellThroughput(j);
    return total;
  }

  // Change in the WiFi-sum objective if `user` joined extender `ext`.
  double InsertDelta(const model::Network& net, std::size_t user,
                     std::size_t ext) const {
    const double r = net.WifiRate(user, ext);
    if (r <= 0.0) return -1.0;  // infeasible marker (deltas can be < 0 too,
                                // callers must check reachability first)
    const double before = CellThroughput(ext);
    const double after = static_cast<double>(load[ext] + 1) /
                         (inv_sum[ext] + 1.0 / r);
    return after - before;
  }
};

bool HasRoom(const model::Network& net, const WifiState& state,
             std::size_t ext) {
  const int cap = net.MaxUsers(ext);
  return cap == 0 || state.load[ext] < cap;
}

// A placement target must be reachable over WiFi AND have a live power-line
// backhaul — a dead PLC link delivers nothing end-to-end even though the
// WiFi-sum objective cannot see that.
bool UsableTarget(const model::Network& net, std::size_t user,
                  std::size_t ext) {
  return net.WifiRate(user, ext) > 0.0 && net.PlcRate(ext) > 0.0;
}

}  // namespace

namespace {

// Sum of log per-user throughputs over assigned users; a tiny floor keeps
// starved users from collapsing the objective to -inf (they still dominate
// the gradient, which is the point of proportional fairness).
double ProportionalFairValue(const model::Evaluator& evaluator,
                             const model::Network& net,
                             const model::Assignment& assign) {
  constexpr double kFloorMbps = 1e-3;
  const model::EvalResult result = evaluator.Evaluate(net, assign);
  double total = 0.0;
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    if (!assign.IsAssigned(i)) continue;
    total += std::log(std::max(result.user_throughput_mbps[i], kFloorMbps));
  }
  return total;
}

}  // namespace

double Phase2Value(const model::Network& net, const model::Assignment& assign,
                   Phase2Objective objective, const model::EvalOptions& eval) {
  switch (objective) {
    case Phase2Objective::kWifiSum:
      return WifiState(net, assign).WifiSum();
    case Phase2Objective::kEndToEnd:
      return model::Evaluator(eval).AggregateThroughput(net, assign);
    case Phase2Objective::kProportionalFair:
      return ProportionalFairValue(model::Evaluator(eval), net, assign);
  }
  return 0.0;
}

void GreedyInsert(const model::Network& net, model::Assignment& assign,
                  const std::vector<std::size_t>& users,
                  const LocalSearchOptions& options) {
  WifiState state(net, assign);

  for (std::size_t user : users) {
    if (assign.IsAssigned(user)) continue;
    int best_ext = -1;
    double best_value = 0.0;
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      if (!UsableTarget(net, user, j) || !HasRoom(net, state, j)) continue;
      double value;
      if (options.objective == Phase2Objective::kWifiSum) {
        value = state.InsertDelta(net, user, j);
      } else {
        assign.Assign(user, j);
        value = Phase2Value(net, assign, options.objective, options.eval);
        assign.Unassign(user);
      }
      if (best_ext < 0 || value > best_value) {
        best_value = value;
        best_ext = static_cast<int>(j);
      }
    }
    if (best_ext < 0) continue;  // unreachable user stays unassigned
    assign.Assign(user, static_cast<std::size_t>(best_ext));
    state.Add(net, user, static_cast<std::size_t>(best_ext));
  }
}

LocalSearchStats RelocateLocalSearch(const model::Network& net,
                                     model::Assignment& assign,
                                     const std::vector<std::size_t>& movable,
                                     const LocalSearchOptions& options) {
  WifiState state(net, assign);

  const auto current_value = [&] {
    return options.objective == Phase2Objective::kWifiSum
               ? state.WifiSum()
               : Phase2Value(net, assign, options.objective, options.eval);
  };

  LocalSearchStats stats;
  stats.initial_value = current_value();
  double value = stats.initial_value;

  for (stats.passes = 0; stats.passes < options.max_passes; ++stats.passes) {
    double pass_gain = 0.0;
    for (std::size_t user : movable) {
      const int from = assign.ExtenderOf(user);
      if (from == model::Assignment::kUnassigned) continue;
      const std::size_t from_ext = static_cast<std::size_t>(from);

      // Try every alternative extender; apply the single best move.
      int best_ext = -1;
      double best_value = value;
      for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
        if (j == from_ext || !UsableTarget(net, user, j) ||
            !HasRoom(net, state, j)) {
          continue;
        }
        state.Remove(net, user, from_ext);
        state.Add(net, user, j);
        assign.Assign(user, j);
        const double candidate = current_value();
        state.Remove(net, user, j);
        state.Add(net, user, from_ext);
        assign.Assign(user, from_ext);
        if (candidate > best_value + options.improvement_tolerance) {
          best_value = candidate;
          best_ext = static_cast<int>(j);
        }
      }
      if (best_ext >= 0) {
        state.Remove(net, user, from_ext);
        state.Add(net, user, static_cast<std::size_t>(best_ext));
        assign.Assign(user, static_cast<std::size_t>(best_ext));
        pass_gain += best_value - value;
        value = best_value;
        ++stats.moves;
      }
    }

    if (options.swap_moves) {
      // Pairwise exchange: two users on different extenders trade places
      // (loads are unchanged, so B_j caps stay satisfied).
      for (std::size_t a = 0; a < movable.size(); ++a) {
        const std::size_t u1 = movable[a];
        const int e1 = assign.ExtenderOf(u1);
        if (e1 == model::Assignment::kUnassigned) continue;
        for (std::size_t b = a + 1; b < movable.size(); ++b) {
          const std::size_t u2 = movable[b];
          const int e2 = assign.ExtenderOf(u2);
          if (e2 == model::Assignment::kUnassigned || e1 == e2) continue;
          const std::size_t x1 = static_cast<std::size_t>(
              assign.ExtenderOf(u1));  // may have changed since e1 was read
          const std::size_t x2 = static_cast<std::size_t>(e2);
          if (x1 == x2) continue;
          if (!UsableTarget(net, u1, x2) || !UsableTarget(net, u2, x1)) {
            continue;
          }
          state.Remove(net, u1, x1);
          state.Remove(net, u2, x2);
          state.Add(net, u1, x2);
          state.Add(net, u2, x1);
          assign.Assign(u1, x2);
          assign.Assign(u2, x1);
          const double candidate = current_value();
          if (candidate > value + options.improvement_tolerance) {
            pass_gain += candidate - value;
            value = candidate;
            ++stats.moves;
          } else {
            state.Remove(net, u1, x2);
            state.Remove(net, u2, x1);
            state.Add(net, u1, x1);
            state.Add(net, u2, x2);
            assign.Assign(u1, x1);
            assign.Assign(u2, x2);
          }
        }
      }
    }
    if (pass_gain <= options.improvement_tolerance) break;
  }

  stats.final_value = value;
  return stats;
}

double SolvePhase2MultiStart(const model::Network& net,
                             model::Assignment& assign,
                             const std::vector<std::size_t>& movable,
                             const LocalSearchOptions& options) {
  // Candidate insertion orders: as given, best-rate descending (strong
  // users claim their extenders first), best-rate ascending (weak users get
  // first pick of uncontended cells).
  const auto best_rate = [&](std::size_t user) {
    double best = 0.0;
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      best = std::max(best, net.WifiRate(user, j));
    }
    return best;
  };
  std::vector<std::vector<std::size_t>> orders;
  orders.push_back(movable);
  std::vector<std::size_t> desc = movable;
  std::sort(desc.begin(), desc.end(), [&](std::size_t a, std::size_t b) {
    return best_rate(a) > best_rate(b);
  });
  orders.push_back(desc);
  std::vector<std::size_t> asc(desc.rbegin(), desc.rend());
  orders.push_back(std::move(asc));

  const model::Assignment base = assign;
  model::Assignment best_assignment = assign;
  double best_value = -1.0;
  for (const auto& order : orders) {
    model::Assignment candidate = base;
    GreedyInsert(net, candidate, order, options);
    RelocateLocalSearch(net, candidate, movable, options);
    const double value =
        Phase2Value(net, candidate, options.objective, options.eval);
    if (value > best_value) {
      best_value = value;
      best_assignment = std::move(candidate);
    }
  }
  assign = std::move(best_assignment);
  return best_value;
}

}  // namespace wolt::assign
