#include "assign/local_search.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "model/incremental.h"
#include "obs/obs.h"
#include "util/thread_pool.h"

namespace wolt::assign {
namespace {

// Candidate accounting, accumulated on the stack and flushed into the
// active MetricsScope once per search. Site contract: every candidate
// bumps `generated` together with exactly one of `pruned` (skipped without
// computing its delta) or `evaluated` — that is what makes the
// pruned + evaluated == generated invariant exact by construction, whatever
// the rescan/resume semantics of the surrounding loop. With WOLT_OBS=OFF
// the flush is compile-time dead and the increments fold away with it.
struct MoveTally {
  std::uint64_t generated = 0;
  std::uint64_t pruned = 0;
  std::uint64_t evaluated = 0;
  std::uint64_t accepted = 0;

  void Prune(std::uint64_t n = 1) {
    generated += n;
    pruned += n;
  }
  void Evaluate(std::uint64_t n = 1) {
    generated += n;
    evaluated += n;
  }
};

// Static per-(user, extender) placement data, hoisted out of the move loops
// so the hot paths never call back into Network. Built once per search (the
// multi-start solve shares one read-only instance across all of its starts,
// including concurrent ones). When the caller supplies a matching
// NetworkSoA view, the reciprocal-rate matrix is borrowed from it and only
// the E-sized target mask is computed here — no O(U x E) work per call.
struct SearchContext {
  std::size_t num_users = 0;
  std::size_t num_extenders = 0;
  // 1 / r_ij, row-major; 0 when user i cannot reach extender j. Borrowed
  // from the SoA view when possible, otherwise points at `inv_storage`.
  const double* inv_rate = nullptr;
  const int* cap = nullptr;  // B_j, 0 = unconstrained
  // Placement target allowed: enabled by the activation mask AND live
  // power-line backhaul. A dead PLC link delivers nothing end-to-end even
  // though the WiFi-sum objective cannot see that. Per-user reachability is
  // tested against inv_rate at scan time (inv > 0), so no U x E mask exists.
  std::vector<std::uint8_t> target_ok;

  std::vector<double> inv_storage;
  std::vector<int> cap_storage;
  // Column-major copy of inv_rate (inv_t[e * U + u]): the pairwise swap
  // stage reads two full extender columns per candidate cell, and the
  // transposed layout turns those scattered row gathers into reads from
  // two cache-hot vectors. Rates never change during a search, so this is
  // built once and shared read-only across all starts.
  std::vector<double> inv_t;

  SearchContext(const model::Network& net, const LocalSearchOptions& options)
      : num_users(net.NumUsers()),
        num_extenders(net.NumExtenders()),
        target_ok(num_extenders, 0) {
    for (std::size_t j = 0; j < num_extenders; ++j) {
      const bool allowed =
          options.extender_mask.empty() || options.extender_mask[j] != 0;
      target_ok[j] = allowed && net.PlcRate(j) > 0.0;
    }
    if (options.soa != nullptr && options.soa->Matches(net)) {
      inv_rate = options.soa->inv_rate.data();
      cap = options.soa->cap.data();
      BuildTranspose();
      return;
    }
    inv_storage.assign(num_users * num_extenders, 0.0);
    cap_storage.assign(num_extenders, 0);
    for (std::size_t j = 0; j < num_extenders; ++j) {
      cap_storage[j] = net.MaxUsers(j);
    }
    for (std::size_t i = 0; i < num_users; ++i) {
      const double* row = net.WifiRateRow(i);
      double* inv = &inv_storage[i * num_extenders];
      for (std::size_t j = 0; j < num_extenders; ++j) {
        if (row[j] > 0.0) inv[j] = 1.0 / row[j];
      }
    }
    inv_rate = inv_storage.data();
    cap = cap_storage.data();
    BuildTranspose();
  }

  void BuildTranspose() {
    inv_t.assign(num_users * num_extenders, 0.0);
    for (std::size_t i = 0; i < num_users; ++i) {
      const double* row = inv_rate + i * num_extenders;
      for (std::size_t j = 0; j < num_extenders; ++j) {
        inv_t[j * num_users + i] = row[j];
      }
    }
  }

  const double* InvRow(std::size_t user) const {
    return inv_rate + user * num_extenders;
  }
  const double* InvCol(std::size_t ext) const {
    return inv_t.data() + ext * num_users;
  }
  bool Usable(std::size_t user, std::size_t ext) const {
    return inv_rate[user * num_extenders + ext] > 0.0 && target_ok[ext] != 0;
  }
  bool HasRoom(std::size_t ext, int load) const {
    return cap[ext] == 0 || load < cap[ext];
  }
};

// Incremental WiFi-side state: per-extender user count, harmonic sum, and
// cached cell throughput T_WiFi_j = n_j / inv_j. Single-user moves are O(1).
// `mutations` counts cell changes; the relocation stage uses it to prove a
// user's failed target scan needs no repeat (the deltas only read cell
// state, so an unchanged counter means an unchanged scan outcome).
struct WifiState {
  int* load = nullptr;
  double* inv_sum = nullptr;
  double* thr = nullptr;
  std::size_t num_ext = 0;
  std::uint64_t mutations = 0;

  WifiState(const SearchContext& ctx, const model::Assignment& assign,
            util::SolverArena& arena)
      : load(arena.AllocFill<int>(ctx.num_extenders, 0)),
        inv_sum(arena.AllocFill<double>(ctx.num_extenders, 0.0)),
        thr(arena.AllocFill<double>(ctx.num_extenders, 0.0)),
        num_ext(ctx.num_extenders) {
    for (std::size_t i = 0; i < assign.NumUsers(); ++i) {
      const int e = assign.ExtenderOf(i);
      if (e == model::Assignment::kUnassigned) continue;
      Add(ctx, i, static_cast<std::size_t>(e));
    }
  }

  void Add(const SearchContext& ctx, std::size_t user, std::size_t ext) {
    const double inv = ctx.InvRow(user)[ext];
    if (inv <= 0.0) {
      throw std::invalid_argument("insert at unreachable extender");
    }
    ++load[ext];
    inv_sum[ext] += inv;
    Refresh(ext);
  }

  void Remove(const SearchContext& ctx, std::size_t user, std::size_t ext) {
    --load[ext];
    inv_sum[ext] -= ctx.InvRow(user)[ext];
    if (load[ext] == 0) inv_sum[ext] = 0.0;  // kill accumulated error
    Refresh(ext);
  }

  void Refresh(std::size_t ext) {
    thr[ext] =
        load[ext] > 0 ? static_cast<double>(load[ext]) / inv_sum[ext] : 0.0;
    ++mutations;
  }

  double WifiSum() const {
    double total = 0.0;
    for (std::size_t j = 0; j < num_ext; ++j) total += thr[j];
    return total;
  }
};

void GreedyInsertWifi(const SearchContext& ctx, model::Assignment& assign,
                      const std::vector<std::size_t>& users,
                      const util::Deadline* deadline,
                      util::SolverArena& arena) {
  WifiState ws(ctx, assign, arena);
  const std::size_t num_ext = ctx.num_extenders;
  double* after = arena.Alloc<double>(num_ext);
  const std::uint8_t* ok = ctx.target_ok.data();
  std::uint64_t inserts = 0;
  for (std::size_t user : users) {
    // On expiry the remaining users simply stay unassigned — the partial
    // assignment built so far is valid as-is.
    if (util::DeadlineExpired(deadline)) break;
    if (assign.IsAssigned(user)) continue;
    const double* inv = ctx.InvRow(user);
    // Pass 1, branchless over the contiguous reciprocal-rate row: the cell
    // throughput each extender would have after adopting this user.
    // Ineligible targets produce junk values pass 2 never reads.
    for (std::size_t j = 0; j < num_ext; ++j) {
      after[j] =
          static_cast<double>(ws.load[j] + 1) / (ws.inv_sum[j] + inv[j]);
    }
    // Pass 2: the selection scan, division-free. Same branch structure and
    // comparisons as the single-pass original, so the same extender wins.
    int best_ext = -1;
    double best_value = 0.0;
    for (std::size_t j = 0; j < num_ext; ++j) {
      if (inv[j] == 0.0 || !ok[j] || !ctx.HasRoom(j, ws.load[j])) continue;
      const double candidate = after[j] - ws.thr[j];
      if (best_ext < 0 || candidate > best_value) {
        best_value = candidate;
        best_ext = static_cast<int>(j);
      }
    }
    if (best_ext < 0) continue;  // unreachable user stays unassigned
    assign.Assign(user, static_cast<std::size_t>(best_ext));
    ws.Add(ctx, user, static_cast<std::size_t>(best_ext));
    ++inserts;
  }
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->solver.ls_inserts.Add(inserts);
  }
}

// Division-free screens, multiply form: for x, y > 0,
//   a/x + b/y > T  <=>  a*y + b*x > T*x*y,
// so a necessary condition for a move can be checked with three
// multiplies instead of two divisions per target. Two safety margins —
// the threshold side is lowered by kAbsMargin times the magnitude of its
// inputs (with the per-target throughput term shrunk by kThrShrink), and
// the product side by kRelMargin — exceed the worst-case rounding of
// either comparison chain by a factor of ~2^20 while admitting at most a
// ~2^-30-relative band of extra survivors. Survivors then face the exact
// division test, so screens only ever add work, never change an outcome.
constexpr double kRelMargin = 1.0 - 0x1p-30;
constexpr double kThrShrink = 1.0 - 0x1p-30;
constexpr double kAbsMargin = 0x1p-30;
constexpr double kInf = std::numeric_limits<double>::infinity();

// Swap-stage cell screen (see the refresh_u1 lambda in RelocateWifi for
// the derivation and the meaning of the operands). Writes s_diff[c] < 0
// for every ruled-out cell: screened by the multiply-form bound, unusable
// for the scanning user, empty, or clean under a restricted rescan. A
// non-positive denominator voids the multiply form, so the cell is
// force-kept (the exact tests still decide); NaN likewise compares
// not-less-than-zero downstream and survives conservatively. Kept out of
// line because GCC declines to if-convert — and therefore vectorize — the
// select chain once it is inlined into the capturing lambda.
// Only partners strictly after `pos` in the movable order survive the mask.
inline std::uint64_t ResumeMask(std::size_t pos) {
  return (pos % 64 == 63) ? 0 : ~std::uint64_t{0} << (pos % 64 + 1);
}

constexpr std::size_t kLanes = 8;
constexpr double kInelig = -std::numeric_limits<double>::infinity();

__attribute__((noinline)) void SwapCellScreen(
    double* s_diff, const double* min_at_x1, const double* cell_slack,
    const double* cell_loadd, const double* thr, const double* inv1,
    const double* okd, const double* cell_movabled,
    const double* cell_stampd, double base1, double load1, double h3,
    double seend, std::size_t num_ext) {
  for (std::size_t c = 0; c < num_ext; ++c) {
    const double da = base1 + min_at_x1[c];
    const double dc = cell_slack[c] + inv1[c];
    const double diff = (load1 * dc + cell_loadd[c] * da) -
                        (((h3 + thr[c] * kThrShrink) * da) * dc) * kRelMargin;
    const bool keep = (inv1[c] != 0.0) & (okd[c] != 0.0) &
                      (cell_movabled[c] != 0.0) & (cell_stampd[c] > seend);
    const bool valid = (da > 0.0) & (dc > 0.0);
    // Two flat selects (a nested conditional defeats if-conversion).
    double v = valid ? diff : 1.0;
    v = keep ? v : -1.0;
    s_diff[c] = v;
  }
}

// Phase A of the swap pair walk (see RelocateWifi): exact deltas for every
// member of the surviving cells strictly after `start`, batched kLanes at
// a time so the two divisions per pair vectorize. Partner rates come from
// the two relevant columns of the transposed rate matrix — two cache-hot
// vectors — instead of gathering one full row per partner. Returns the
// running max delta plus visited/ineligible totals, so the caller can
// bypass the consume walk outright when nothing can pass the accept test.
// A standalone function for the same reason as SwapCellScreen: routing
// these accumulators through by-reference lambda captures measurably
// spills the surrounding scan loops.
struct SwapDeltaResult {
  double best;
  std::uint64_t total;
  std::uint64_t inelig;
};
__attribute__((noinline)) SwapDeltaResult SwapDeltaPass(
    const int* cells_s, int n_cells, const int* load, const double* inv_sum,
    const double* thr, const double* inv1, const double* inv_t,
    std::size_t num_users, const std::uint64_t* cell_mask, std::size_t words,
    const std::size_t* movable, const double* col_x1, bool ok1, double base1,
    double load1, double thr1, std::size_t start, double* d_all) {
  SwapDeltaResult r{kInelig, 0, 0};
  std::size_t lidx[kLanes];
  double lp[kLanes];
  double lq[kLanes];
  std::size_t cnt = 0;
  const auto flush = [&](double l2, double s2, double i1c, double before) {
    if (cnt == 0) return;
    for (std::size_t t = cnt; t < kLanes; ++t) {  // benign pads
      lp[t] = 1.0;
      lq[t] = 0.0;
    }
    double d[kLanes];
    // Vector pass: expression-identical to the scalar exact test.
    for (std::size_t t = 0; t < kLanes; ++t) {
      const double after_x1 = load1 / (base1 + lp[t]);
      const double after_x2 = l2 / ((s2 - lq[t]) + i1c);
      d[t] = (after_x1 + after_x2) - before;
    }
    for (std::size_t t = 0; t < cnt; ++t) d_all[lidx[t]] = d[t];
    for (std::size_t t = 0; t < cnt; ++t) {
      r.best = d[t] > r.best ? d[t] : r.best;
    }
    cnt = 0;
  };
  for (int ci = 0; ci < n_cells; ++ci) {
    const std::size_t c = static_cast<std::size_t>(cells_s[ci]);
    const double l2 = static_cast<double>(load[c]);
    const double s2 = inv_sum[c];
    const double i1c = inv1[c];
    const double before = thr1 + thr[c];
    const double* col_c = inv_t + c * num_users;
    const std::uint64_t* mask = cell_mask + c * words;
    std::size_t w2 = start / 64;
    std::uint64_t bits = mask[w2] & ResumeMask(start);
    for (;;) {
      while (bits == 0) {
        if (++w2 >= words) break;
        bits = mask[w2];
      }
      if (w2 >= words) break;
      const std::size_t idx =
          w2 * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const std::size_t u2 = movable[idx];
      const double p = col_x1[u2];
      ++r.total;
      if (!ok1 || p <= 0.0) {  // partner can't take u1's slot
        d_all[idx] = kInelig;
        ++r.inelig;
        continue;
      }
      lidx[cnt] = idx;
      lp[cnt] = p;
      lq[cnt] = col_c[u2];
      if (++cnt == kLanes) flush(l2, s2, i1c, before);
    }
    flush(l2, s2, i1c, before);
  }
  return r;
}

LocalSearchStats RelocateWifi(const SearchContext& ctx,
                              model::Assignment& assign,
                              const std::vector<std::size_t>& movable,
                              const LocalSearchOptions& options,
                              util::SolverArena& arena) {
  WifiState ws(ctx, assign, arena);
  const std::size_t num_ext = ctx.num_extenders;
  const std::uint8_t* ok = ctx.target_ok.data();

  LocalSearchStats stats;
  stats.initial_value = ws.WifiSum();
  double value = stats.initial_value;
  const double tol = options.improvement_tolerance;

  MoveTally rel, swp;
  std::uint64_t memo_skips = 0;
  std::uint64_t passes_run = 0;

  // Local mirror of the association (bypasses bounds-checked accessors in
  // the O(|movable|^2) swap loop).
  int* ext_of = arena.Alloc<int>(ctx.num_users);
  for (std::size_t i = 0; i < ctx.num_users; ++i) {
    ext_of[i] = assign.ExtenderOf(i);
  }

  const std::size_t m = movable.size();
  constexpr std::uint64_t kNever = ~std::uint64_t{0};
  // Relocation-scan memo: a user whose scan found no improving target needs
  // no rescan until some cell changes. `swap_scanned` is the same memo for
  // the pairwise stage. Both accept tests below compare a move's *delta*
  // against the tolerance, and a delta reads nothing beyond the two touched
  // cells' state (plus static rates), so a recorded fruitless scan stays
  // valid for exactly the targets whose cell is unchanged since — which is
  // what the per-cell stamps refine below.
  std::uint64_t* scanned = arena.AllocFill<std::uint64_t>(m, kNever);
  std::uint64_t* swap_scanned = arena.AllocFill<std::uint64_t>(m, kNever);
  // cell_stampd[c]: ws.mutations value when cell c last changed (stored as
  // a double — mutation counts stay far below 2^53, so the cast is exact —
  // which lets the screen passes below fold the stamp comparison into
  // their all-double vector form). Together with the memos this restricts
  // a rescan to the cells dirtied since the user's last fruitless scan;
  // clean cells are provably still fruitless.
  double* cell_stampd = arena.AllocFill<double>(num_ext, 0.0);
  // Static per-cell eligibility, folded to doubles for the same reason:
  // elig_cap[j] is the load bound below which cell j can take one more
  // user (+inf when B_j = 0 means uncapped, -1 when the policy target
  // check fails so no load qualifies); okd[j] mirrors target_ok.
  double* elig_cap = arena.Alloc<double>(num_ext);
  double* okd = arena.Alloc<double>(num_ext);
  for (std::size_t j = 0; j < num_ext; ++j) {
    okd[j] = ok[j] ? 1.0 : 0.0;
    elig_cap[j] = !ok[j] ? -1.0
                  : ctx.cap[j] == 0
                      ? std::numeric_limits<double>::infinity()
                      : static_cast<double>(ctx.cap[j]);
  }

  // Pruning aggregates over the *movable* users of each cell:
  // cell_min_inv[e * E + c] = min over movable users on cell c of 1/r at
  // extender e (the best imaginable member leaving c for e; extender-major
  // so the swap stage reads its x1 row with unit stride), and
  // cell_max_own[c] = max over movable users on cell c of 1/r at c itself
  // (the member whose exit frees the most airtime). From these, an upper
  // bound on the gain of ANY swap across cells x1 and c follows without
  // touching the members. Every bound input majorizes the exact test's
  // input through weakly monotone FP operations, so — with the margins
  // below covering rounding — a screened-out cell can never hide a pair
  // the exact test would have accepted.
  double* cell_min_inv = arena.AllocFill<double>(num_ext * num_ext, 0.0);
  double* cell_max_own = arena.AllocFill<double>(num_ext, 0.0);
  int* cell_movable = arena.AllocFill<int>(num_ext, 0);
  // Snapshots refreshed with the aggregates (cells only change at accepts,
  // which recompute them): inv_sum minus the slowest member's share, and
  // the load as a double — both so the swap screen's vector pass reads
  // ready-made operands.
  double* cell_slack = arena.AllocFill<double>(num_ext, 0.0);
  double* cell_loadd = arena.AllocFill<double>(num_ext, 0.0);
  double* cell_movabled = arena.AllocFill<double>(num_ext, 0.0);
  double* min_tmp = arena.Alloc<double>(num_ext);
  // Per-cell bitmask of movable-list indices currently on the cell; the
  // pair loop walks the OR of the surviving cells' masks in ascending
  // index order. Maintained incrementally at every accepted move.
  const std::size_t words = (m + 63) / 64;
  std::uint64_t* cell_mask =
      arena.AllocFill<std::uint64_t>(num_ext * words, 0);
  std::uint64_t* partner_mask = arena.AllocFill<std::uint64_t>(words, 0);
  // Rebuild one cell's aggregates from its membership mask.
  const auto recompute_cell = [&](std::size_t c) {
    for (std::size_t e = 0; e < num_ext; ++e) {
      min_tmp[e] = std::numeric_limits<double>::infinity();
    }
    cell_max_own[c] = 0.0;
    cell_movable[c] = 0;
    const std::uint64_t* mask = cell_mask + c * words;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = mask[w];
      while (bits != 0) {
        const std::size_t idx =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t u = movable[idx];
        ++cell_movable[c];
        const double* inv = ctx.InvRow(u);
        for (std::size_t e = 0; e < num_ext; ++e) {
          min_tmp[e] = std::min(min_tmp[e], inv[e]);
        }
        cell_max_own[c] = std::max(cell_max_own[c], inv[c]);
      }
    }
    for (std::size_t e = 0; e < num_ext; ++e) {
      cell_min_inv[e * num_ext + c] = min_tmp[e];
    }
    cell_slack[c] = ws.inv_sum[c] - cell_max_own[c];
    cell_loadd[c] = static_cast<double>(ws.load[c]);
    cell_movabled[c] = static_cast<double>(cell_movable[c]);
  };
  for (std::size_t idx = 0; idx < m; ++idx) {
    const int e = ext_of[movable[idx]];
    if (e == model::Assignment::kUnassigned) continue;
    cell_mask[static_cast<std::size_t>(e) * words + idx / 64] |=
        std::uint64_t{1} << (idx % 64);
  }
  for (std::size_t c = 0; c < num_ext; ++c) recompute_cell(c);
  // Movable users currently on any cell (moves preserve it). Feeds the
  // O(1) pruning tallies below.
  int total_movable = 0;
  for (std::size_t c = 0; c < num_ext; ++c) total_movable += cell_movable[c];

  // Scratch for the division-free screens and the two-phase pair walk.
  double* scr = arena.Alloc<double>(num_ext);
  double* s_diff = arena.Alloc<double>(num_ext);
  int* cells_s = arena.Alloc<int>(num_ext);
  double* d_all = arena.Alloc<double>(m);

  for (stats.passes = 0; stats.passes < options.max_passes; ++stats.passes) {
    ++passes_run;
    double pass_gain = 0.0;
    std::uint64_t pass_reloc_accepts = 0;
    for (std::size_t a = 0; a < m; ++a) {
      // One user's target scan is the bounded unit of work; committed moves
      // are already in `assign`, so stopping here is always valid.
      if (util::DeadlineExpired(options.deadline)) {
        stats.deadline_hit = true;
        break;
      }
      const std::size_t user = movable[a];
      const int from = ext_of[user];
      if (from == model::Assignment::kUnassigned) continue;
      if (scanned[a] == ws.mutations) {
        ++memo_skips;
        continue;
      }
      const std::uint64_t seen = scanned[a];
      const std::size_t from_ext = static_cast<std::size_t>(from);
      // Restricted rescan: if this user's own cell is unchanged since its
      // last fruitless scan, targets on equally-unchanged cells would
      // reproduce the exact same rejected deltas — only cells dirtied
      // since need another look.
      const bool restricted =
          seen != kNever &&
          cell_stampd[from_ext] <= static_cast<double>(seen);
      // Stamp threshold for the vector pass: a restricted rescan keeps only
      // cells dirtied after `seen`; -1 admits every cell otherwise.
      const double seend = restricted ? static_cast<double>(seen) : -1.0;
      const double* inv = ctx.InvRow(user);
      const double thr_from = ws.thr[from_ext];
      const int load_from = ws.load[from_ext];
      const double after_from =
          load_from > 1 ? static_cast<double>(load_from - 1) /
                              (ws.inv_sum[from_ext] - inv[from_ext])
                        : 0.0;
      // Screen pass, branchless over the contiguous reciprocal-rate row:
      // target j can only improve if its post-adoption throughput exceeds
      // tol - after_from + thr_from + thr_j, i.e. load_j + 1 >= scr[j] in
      // multiply form. Eligibility (usable rate, target policy, capacity
      // room) and the restricted-rescan stamp check fold into the same
      // all-double pass as blends to +inf — which the screen test below
      // then rejects — so the loop auto-vectorizes and the selection scan
      // is left with a single predictable branch.
      const double h2 =
          ((tol - after_from) + thr_from) -
          kAbsMargin * (after_from + thr_from + std::abs(tol) + 1.0);
      for (std::size_t j = 0; j < num_ext; ++j) {
        const double thresh =
            ((h2 + ws.thr[j] * kThrShrink) * (ws.inv_sum[j] + inv[j])) *
            kRelMargin;
        const bool elig = (inv[j] != 0.0) & (cell_loadd[j] < elig_cap[j]) &
                          (cell_stampd[j] > seend);
        scr[j] = elig ? thresh : kInf;
      }
      // Selection scan: try every alternative extender; apply the single
      // best move. Divisions run only for screen survivors.
      int best_ext = -1;
      double best_delta = tol;
      std::uint64_t evals = 0;
      for (std::size_t j = 0; j < num_ext; ++j) {
        if (j == from_ext) continue;  // self-move, not a candidate
        if (static_cast<double>(ws.load[j] + 1) < scr[j]) continue;
        ++evals;
        const double after_j =
            static_cast<double>(ws.load[j] + 1) / (ws.inv_sum[j] + inv[j]);
        const double delta = (after_from + after_j) - (thr_from + ws.thr[j]);
        if (delta > best_delta) {
          best_delta = delta;
          best_ext = static_cast<int>(j);
        }
      }
      // Bulk tallies (pruned for any reason — stamp, screen, eligibility —
      // counts the same): every non-self target was either screened out or
      // exactly evaluated.
      rel.Evaluate(evals);
      rel.Prune(static_cast<std::uint64_t>(num_ext - 1) - evals);
      if (best_ext >= 0) {
        const std::size_t to = static_cast<std::size_t>(best_ext);
        ws.Remove(ctx, user, from_ext);
        ws.Add(ctx, user, to);
        assign.Assign(user, to);
        ext_of[user] = best_ext;
        pass_gain += best_delta;
        value += best_delta;
        ++stats.moves;
        ++rel.accepted;
        ++pass_reloc_accepts;
        const std::uint64_t bit = std::uint64_t{1} << (a % 64);
        cell_mask[from_ext * words + a / 64] &= ~bit;
        cell_mask[to * words + a / 64] |= bit;
        recompute_cell(from_ext);
        recompute_cell(to);
        cell_stampd[from_ext] = static_cast<double>(ws.mutations);
        cell_stampd[to] = static_cast<double>(ws.mutations);
      } else {
        scanned[a] = ws.mutations;
      }
    }

    // Pairwise exchanges run only once the relocation neighborhood has
    // quiesced (variable-neighborhood-descent ordering): a pass that still
    // commits single-user moves would invalidate most pair scans right
    // away, so sweeping the O(|movable|^2) neighborhood then is pure
    // waste. Convergence is unchanged — the loop only exits after a pass
    // in which BOTH neighborhoods came up empty.
    if (options.swap_moves && !stats.deadline_hit && pass_reloc_accepts == 0) {
      // Pairwise exchange: two users on different extenders trade places
      // (loads are unchanged, so B_j caps stay satisfied). Cell aggregates
      // and stamps are maintained at every accept, so no resync is needed
      // here.
      for (std::size_t a = 0; a < m; ++a) {
        if (util::DeadlineExpired(options.deadline)) {
          stats.deadline_hit = true;
          break;
        }
        const std::size_t u1 = movable[a];
        const int e1 = ext_of[u1];
        if (e1 == model::Assignment::kUnassigned) continue;
        if (swap_scanned[a] == ws.mutations) {
          ++memo_skips;
          continue;
        }
        const std::uint64_t seen = swap_scanned[a];
        const std::uint64_t mut0 = ws.mutations;
        const double* inv1 = ctx.InvRow(u1);
        std::size_t x1 = static_cast<std::size_t>(e1);
        double base1 = 0.0, thr1 = 0.0, load1 = 0.0;
        int n_cells = 0;
        // Candidate-cell screen: cell c survives only if its best
        // imaginable trade with u1 — fastest-at-x1 member in, slowest-at-c
        // member out, possibly different users, hence an upper bound —
        // could beat the tolerance; multiply form, division-free. Cells
        // clean since this user's last fruitless scan are dropped first
        // (their members' deltas are provably unchanged). Everything here
        // goes stale only when a swap commits, so it is refreshed there
        // and nowhere else.
        const auto refresh_u1 = [&] {
          base1 = ws.inv_sum[x1] - inv1[x1];
          thr1 = ws.thr[x1];
          load1 = static_cast<double>(ws.load[x1]);
          const bool restricted =
              seen != kNever && cell_stampd[x1] <= static_cast<double>(seen);
          const double seend = restricted ? static_cast<double>(seen) : -1.0;
          const double h3 =
              (tol + thr1) - kAbsMargin * (thr1 + std::abs(tol) + 1.0);
          // All-double vector pass: s_diff[c] < 0 means cell c is ruled
          // out — screened, unusable for u1, empty, or clean under a
          // restricted rescan.
          SwapCellScreen(s_diff, cell_min_inv + x1 * num_ext, cell_slack,
                         cell_loadd, ws.thr, inv1, okd, cell_movabled,
                         cell_stampd, base1, load1, h3, seend, num_ext);
          s_diff[x1] = -1.0;                              // own cell
          s_diff[static_cast<std::size_t>(e1)] = -1.0;    // original cell
          std::fill(partner_mask, partner_mask + words, 0);
          int surviving = 0;
          n_cells = 0;
          for (std::size_t c = 0; c < num_ext; ++c) {
            if (s_diff[c] < 0.0) continue;
            cells_s[n_cells++] = static_cast<int>(c);
            surviving += cell_movable[c];
            const std::uint64_t* mask = cell_mask + c * words;
            for (std::size_t w2 = 0; w2 < words; ++w2) {
              partner_mask[w2] |= mask[w2];
            }
          }
          // Pruning tally: every movable user on a ruled-out cell counts as
          // one generated-and-pruned swap candidate for this scan (whether
          // the cell fell to the stamp check, the screen, unusability, or
          // being u1's own cell — mirroring the relocate stage, which
          // tallies unusable targets as pruned too). The count is an upper
          // bound on the pairs a full scan would actually have visited (the
          // b > a resume position is ignored); Prune() bumps generated and
          // pruned together, so pruned + evaluated == generated stays
          // exact.
          const int own = cell_movable[x1] +
                          (static_cast<std::size_t>(e1) != x1
                               ? cell_movable[static_cast<std::size_t>(e1)]
                               : 0);
          swp.Prune(
              static_cast<std::uint64_t>(total_movable - own - surviving));
        };
        // Phase A of the pair walk (SwapDeltaPass above): exact deltas for
        // every surviving member after `start`, plus the running max and
        // the visit totals. Sound because the search state only changes on
        // an accept, and an accept recomputes everything the consume walk
        // still reads.
        SwapDeltaResult pa{kInelig, 0, 0};
        const auto recompute_deltas = [&](std::size_t start) {
          pa = SwapDeltaResult{kInelig, 0, 0};
          if (n_cells == 0) return;
          pa = SwapDeltaPass(cells_s, n_cells, ws.load, ws.inv_sum, ws.thr,
                             inv1, ctx.inv_t.data(), ctx.num_users, cell_mask,
                             words, movable.data(), ctx.InvCol(x1),
                             ok[x1] != 0, base1, load1, thr1, start, d_all);
        };
        refresh_u1();
        recompute_deltas(a);
        if (pa.best <= tol) {
          // No partner can pass phase B's accept test, so its walk would
          // only re-derive these totals and the memo write; short-circuit
          // both (mutations are untouched since mut0 by construction).
          swp.Prune(pa.inelig);
          swp.Evaluate(pa.total - pa.inelig);
          swap_scanned[a] = mut0;
          continue;
        }
        // Phase B consumes the precomputed deltas in ascending movable-
        // index order with the same tallies, comparisons and state updates
        // as a one-at-a-time loop; an accept rebuilds the partner set and
        // resumes right after the accepted partner.
        std::size_t w = a / 64;
        std::uint64_t bits = partner_mask[w] & ResumeMask(a);
        std::uint64_t ph_vis = 0;  // partners visited (generated)
        std::uint64_t ph_elig = 0;  // of those, exactly tested (evaluated)
        bool exhausted = false;
        for (;;) {
          while (bits == 0) {
            if (++w >= words) {
              exhausted = true;
              break;
            }
            bits = partner_mask[w];
          }
          if (exhausted) break;
          const std::size_t b =
              w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          const double d = d_all[b];
          ++ph_vis;
          ph_elig += static_cast<std::uint64_t>(d != kInelig);
          if (d > tol) {
            const std::size_t u2 = movable[b];
            const std::size_t x2 = static_cast<std::size_t>(ext_of[u2]);
            ws.Remove(ctx, u1, x1);
            ws.Remove(ctx, u2, x2);
            ws.Add(ctx, u1, x2);
            ws.Add(ctx, u2, x1);
            assign.Assign(u1, x2);
            assign.Assign(u2, x1);
            ext_of[u1] = static_cast<int>(x2);
            ext_of[u2] = static_cast<int>(x1);
            pass_gain += d;
            value += d;
            ++stats.moves;
            ++swp.accepted;
            const std::uint64_t bit1 = std::uint64_t{1} << (a % 64);
            cell_mask[x1 * words + a / 64] &= ~bit1;
            cell_mask[x2 * words + a / 64] |= bit1;
            const std::uint64_t bit2 = std::uint64_t{1} << (b % 64);
            cell_mask[x2 * words + b / 64] &= ~bit2;
            cell_mask[x1 * words + b / 64] |= bit2;
            recompute_cell(x1);
            recompute_cell(x2);
            cell_stampd[x1] = static_cast<double>(ws.mutations);
            cell_stampd[x2] = static_cast<double>(ws.mutations);
            x1 = static_cast<std::size_t>(ext_of[u1]);
            refresh_u1();
            recompute_deltas(b);
            w = b / 64;
            bits = partner_mask[w] & ResumeMask(b);
          }
        }
        // Bulk flush of the walk's tallies (same totals as per-partner
        // increments; pruned = partners whose delta carried the ineligible
        // sentinel).
        swp.Prune(ph_vis - ph_elig);
        swp.Evaluate(ph_elig);
        if (ws.mutations == mut0) swap_scanned[a] = mut0;
      }
    }
    if (stats.deadline_hit) break;
    if (pass_gain <= tol) break;
  }

  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->solver.relocate_generated.Add(rel.generated);
    s->solver.relocate_pruned.Add(rel.pruned);
    s->solver.relocate_evaluated.Add(rel.evaluated);
    s->solver.relocate_accepted.Add(rel.accepted);
    s->solver.swap_generated.Add(swp.generated);
    s->solver.swap_pruned.Add(swp.pruned);
    s->solver.swap_evaluated.Add(swp.evaluated);
    s->solver.swap_accepted.Add(swp.accepted);
    s->solver.ls_passes.Add(passes_run);
    s->solver.ls_memo_skips.Add(memo_skips);
  }

  stats.final_value = value;
  return stats;
}

// ---------------------------------------------------------------------------
// Evaluator-backed objectives (kEndToEnd / kProportionalFair): every
// candidate move delegates to model::IncrementalEvaluator (O(|PLC domain|)
// per move, allocation-free). No full Evaluator run happens per move.

double ValueOf(const model::IncrementalValues& v, Phase2Objective objective) {
  return objective == Phase2Objective::kEndToEnd ? v.aggregate_mbps
                                                 : v.log_utility;
}

double IncValue(const model::IncrementalEvaluator& inc,
                Phase2Objective objective) {
  return objective == Phase2Objective::kEndToEnd ? inc.aggregate_mbps()
                                                 : inc.log_utility();
}

void GreedyInsertInc(const SearchContext& ctx, const model::Network& net,
                     model::Assignment& assign,
                     const std::vector<std::size_t>& users,
                     const LocalSearchOptions& options) {
  model::IncrementalEvaluator inc(
      net, assign, options.eval, model::IncrementalEvaluator::kDefaultLogFloorMbps,
      /*track_log_utility=*/options.objective == Phase2Objective::kProportionalFair);
  std::uint64_t inserts = 0;
  for (std::size_t user : users) {
    if (util::DeadlineExpired(options.deadline)) break;
    if (assign.IsAssigned(user)) continue;
    int best_ext = -1;
    double best_value = 0.0;
    for (std::size_t j = 0; j < ctx.num_extenders; ++j) {
      if (!ctx.Usable(user, j) || !ctx.HasRoom(j, inc.Load(j))) continue;
      const double candidate =
          ValueOf(inc.PeekMove(user, static_cast<int>(j)), options.objective);
      if (best_ext < 0 || candidate > best_value) {
        best_value = candidate;
        best_ext = static_cast<int>(j);
      }
    }
    if (best_ext < 0) continue;  // unreachable user stays unassigned
    assign.Assign(user, static_cast<std::size_t>(best_ext));
    inc.ApplyMove(user, best_ext);
    ++inserts;
  }
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->solver.ls_inserts.Add(inserts);
  }
}

LocalSearchStats RelocateInc(const SearchContext& ctx,
                             const model::Network& net,
                             model::Assignment& assign,
                             const std::vector<std::size_t>& movable,
                             const LocalSearchOptions& options) {
  model::IncrementalEvaluator inc(
      net, assign, options.eval, model::IncrementalEvaluator::kDefaultLogFloorMbps,
      /*track_log_utility=*/options.objective == Phase2Objective::kProportionalFair);

  LocalSearchStats stats;
  stats.initial_value = IncValue(inc, options.objective);
  double value = stats.initial_value;

  MoveTally rel, swp;
  std::uint64_t passes_run = 0;

  for (stats.passes = 0; stats.passes < options.max_passes; ++stats.passes) {
    ++passes_run;
    double pass_gain = 0.0;
    for (std::size_t user : movable) {
      if (util::DeadlineExpired(options.deadline)) {
        stats.deadline_hit = true;
        break;
      }
      const int from = assign.ExtenderOf(user);
      if (from == model::Assignment::kUnassigned) continue;
      const std::size_t from_ext = static_cast<std::size_t>(from);

      int best_ext = -1;
      double best_value = value;
      for (std::size_t j = 0; j < ctx.num_extenders; ++j) {
        if (j == from_ext) continue;  // self-move, not a candidate
        if (!ctx.Usable(user, j) || !ctx.HasRoom(j, inc.Load(j))) {
          rel.Prune();
          continue;
        }
        rel.Evaluate();
        const double candidate =
            ValueOf(inc.PeekMove(user, static_cast<int>(j)),
                    options.objective);
        if (candidate > best_value + options.improvement_tolerance) {
          best_value = candidate;
          best_ext = static_cast<int>(j);
        }
      }
      if (best_ext >= 0) {
        inc.ApplyMove(user, best_ext);
        assign.Assign(user, static_cast<std::size_t>(best_ext));
        pass_gain += best_value - value;
        value = best_value;
        ++stats.moves;
        ++rel.accepted;
      }
    }

    if (options.swap_moves && !stats.deadline_hit) {
      for (std::size_t a = 0; a < movable.size(); ++a) {
        if (util::DeadlineExpired(options.deadline)) {
          stats.deadline_hit = true;
          break;
        }
        const std::size_t u1 = movable[a];
        const int e1 = assign.ExtenderOf(u1);
        if (e1 == model::Assignment::kUnassigned) continue;
        for (std::size_t b = a + 1; b < movable.size(); ++b) {
          const std::size_t u2 = movable[b];
          const int e2 = assign.ExtenderOf(u2);
          if (e2 == model::Assignment::kUnassigned || e1 == e2) continue;
          const std::size_t x1 = static_cast<std::size_t>(
              assign.ExtenderOf(u1));  // may have changed since e1 was read
          const std::size_t x2 = static_cast<std::size_t>(e2);
          if (x1 == x2) continue;
          if (!ctx.Usable(u1, x2) || !ctx.Usable(u2, x1)) {
            swp.Prune();
            continue;
          }
          swp.Evaluate();
          const double candidate =
              ValueOf(inc.PeekSwap(u1, u2), options.objective);
          if (candidate > value + options.improvement_tolerance) {
            inc.ApplyMove(u1, static_cast<int>(x2));
            inc.ApplyMove(u2, static_cast<int>(x1));
            assign.Assign(u1, x2);
            assign.Assign(u2, x1);
            pass_gain += candidate - value;
            value = candidate;
            ++stats.moves;
            ++swp.accepted;
          }
        }
      }
    }
    if (stats.deadline_hit) break;
    if (pass_gain <= options.improvement_tolerance) break;
  }

  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->solver.relocate_generated.Add(rel.generated);
    s->solver.relocate_pruned.Add(rel.pruned);
    s->solver.relocate_evaluated.Add(rel.evaluated);
    s->solver.relocate_accepted.Add(rel.accepted);
    s->solver.swap_generated.Add(swp.generated);
    s->solver.swap_pruned.Add(swp.pruned);
    s->solver.swap_evaluated.Add(swp.evaluated);
    s->solver.swap_accepted.Add(swp.accepted);
    s->solver.ls_passes.Add(passes_run);
  }

  stats.final_value = value;
  return stats;
}

}  // namespace

double Phase2Value(const model::Network& net, const model::Assignment& assign,
                   Phase2Objective objective, const model::EvalOptions& eval) {
  switch (objective) {
    case Phase2Objective::kWifiSum: {
      const std::size_t num_ext = net.NumExtenders();
      std::vector<int> load(num_ext, 0);
      std::vector<double> inv_sum(num_ext, 0.0);
      for (std::size_t i = 0; i < net.NumUsers(); ++i) {
        const int e = assign.ExtenderOf(i);
        if (e == model::Assignment::kUnassigned) continue;
        const double r = net.WifiRate(i, static_cast<std::size_t>(e));
        if (r <= 0.0) {
          throw std::invalid_argument("insert at unreachable extender");
        }
        ++load[static_cast<std::size_t>(e)];
        inv_sum[static_cast<std::size_t>(e)] += 1.0 / r;
      }
      double total = 0.0;
      for (std::size_t j = 0; j < num_ext; ++j) {
        if (load[j] > 0) total += static_cast<double>(load[j]) / inv_sum[j];
      }
      return total;
    }
    case Phase2Objective::kEndToEnd:
      return model::IncrementalEvaluator(net, assign, eval).aggregate_mbps();
    case Phase2Objective::kProportionalFair:
      return model::IncrementalEvaluator(net, assign, eval).log_utility();
  }
  return 0.0;
}

void GreedyInsert(const model::Network& net, model::Assignment& assign,
                  const std::vector<std::size_t>& users,
                  const LocalSearchOptions& options) {
  const SearchContext ctx(net, options);
  util::SolverArena local;
  util::SolverArena& arena = options.arena ? *options.arena : local;
  if (options.objective == Phase2Objective::kWifiSum) {
    GreedyInsertWifi(ctx, assign, users, options.deadline, arena);
  } else {
    GreedyInsertInc(ctx, net, assign, users, options);
  }
}

LocalSearchStats RelocateLocalSearch(const model::Network& net,
                                     model::Assignment& assign,
                                     const std::vector<std::size_t>& movable,
                                     const LocalSearchOptions& options) {
  const SearchContext ctx(net, options);
  util::SolverArena local;
  util::SolverArena& arena = options.arena ? *options.arena : local;
  if (options.objective == Phase2Objective::kWifiSum) {
    return RelocateWifi(ctx, assign, movable, options, arena);
  }
  return RelocateInc(ctx, net, assign, movable, options);
}

double SolvePhase2MultiStart(const model::Network& net,
                             model::Assignment& assign,
                             const std::vector<std::size_t>& movable,
                             const LocalSearchOptions& options) {
  const SearchContext ctx(net, options);
  util::SolverArena local;
  util::SolverArena& arena = options.arena ? *options.arena : local;

  // Candidate insertion orders: as given, best-rate descending (strong
  // users claim their extenders first), best-rate ascending (weak users get
  // first pick of uncontended cells). The per-user key is hoisted out of
  // the comparator (same max-over-extenders values, computed once per user
  // instead of O(E) per comparison, so the sort is unchanged).
  const auto best_rate = [&](std::size_t user) {
    double best = 0.0;
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      if (!options.extender_mask.empty() && !options.extender_mask[j]) {
        continue;
      }
      best = std::max(best, net.WifiRate(user, j));
    }
    return best;
  };
  std::vector<double> rate_key(net.NumUsers(), 0.0);
  for (std::size_t u : movable) rate_key[u] = best_rate(u);
  std::vector<std::vector<std::size_t>> orders;
  orders.push_back(movable);
  std::vector<std::size_t> desc = movable;
  std::sort(desc.begin(), desc.end(), [&](std::size_t a, std::size_t b) {
    return rate_key[a] > rate_key[b];
  });
  orders.push_back(desc);
  std::vector<std::size_t> asc(desc.rbegin(), desc.rend());
  orders.push_back(std::move(asc));

  const bool wifi = options.objective == Phase2Objective::kWifiSum;
  const model::Assignment base = assign;

  const bool parallel = options.pool != nullptr && options.pool->size() > 1;

  if (!parallel) {
    model::Assignment best_assignment = assign;
    double best_value = -1.0;
    bool first = true;
    std::uint64_t searched = 0;
    // Different insertion orders frequently greedy-insert into the same
    // assignment; the local search is deterministic, so a duplicate start
    // can only reproduce an earlier run's result and is skipped outright.
    std::vector<std::vector<int>> seen_starts;
    for (const auto& order : orders) {
      // Keep the first start even under an expired deadline (its insert and
      // search truncate internally, still yielding a complete, valid
      // assignment); skip the extra starts once a result exists.
      if (!first && util::DeadlineExpired(options.deadline)) break;
      model::Assignment candidate = base;
      if (wifi) {
        GreedyInsertWifi(ctx, candidate, order, options.deadline, arena);
      } else {
        GreedyInsertInc(ctx, net, candidate, order, options);
      }
      std::vector<int> snap(ctx.num_users);
      for (std::size_t i = 0; i < ctx.num_users; ++i) {
        snap[i] = candidate.ExtenderOf(i);
      }
      bool duplicate = false;
      for (const auto& prior : seen_starts) {
        if (prior == snap) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      seen_starts.push_back(std::move(snap));
      const LocalSearchStats stats =
          wifi ? RelocateWifi(ctx, candidate, movable, options, arena)
               : RelocateInc(ctx, net, candidate, movable, options);
      ++searched;
      if (first || stats.final_value > best_value) {
        first = false;
        best_value = stats.final_value;
        best_assignment = std::move(candidate);
      }
    }
    assign = std::move(best_assignment);
    if (obs::MetricsScope* s = obs::CurrentScope()) {
      s->solver.ls_starts.Add(searched);
    }
    return best_value;
  }

  // In-solve parallel path. The greedy inserts stay serial (they are cheap
  // next to the searches, and the dedup must observe starts in the serial
  // order); the local searches then run concurrently, one start per task,
  // and the merge walks results in ascending start index with the same
  // strict-improvement rule as the serial loop — so with an unexpired
  // deadline the outcome is byte-identical at any thread count.
  std::vector<model::Assignment> starts;
  std::vector<std::vector<int>> seen_starts;
  for (const auto& order : orders) {
    if (!starts.empty() && util::DeadlineExpired(options.deadline)) break;
    model::Assignment candidate = base;
    if (wifi) {
      GreedyInsertWifi(ctx, candidate, order, options.deadline, arena);
    } else {
      GreedyInsertInc(ctx, net, candidate, order, options);
    }
    std::vector<int> snap(ctx.num_users);
    for (std::size_t i = 0; i < ctx.num_users; ++i) {
      snap[i] = candidate.ExtenderOf(i);
    }
    bool duplicate = false;
    for (const auto& prior : seen_starts) {
      if (prior == snap) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen_starts.push_back(std::move(snap));
    starts.push_back(std::move(candidate));
  }

  const std::size_t n = starts.size();
  std::deque<util::SolverArena> local_arenas;
  std::deque<util::SolverArena>& arenas =
      options.start_arenas ? *options.start_arenas : local_arenas;
  while (arenas.size() < n) arenas.emplace_back();

  std::vector<double> values(n, 0.0);
  obs::MetricsRegistry* const registry = obs::CurrentRegistry();
  options.pool->ParallelFor(n, 1, [&](std::size_t k) {
    // Carry the caller's metrics registry onto the worker: the counters are
    // commutative relaxed adds, so the totals stay thread-count-independent.
    std::optional<obs::ScopedMetrics> scoped;
    if (registry != nullptr && obs::CurrentScope() == nullptr) {
      scoped.emplace(*registry);
    }
    util::SolverArena& start_arena = arenas[k];
    start_arena.Reset();
    const LocalSearchStats stats =
        wifi ? RelocateWifi(ctx, starts[k], movable, options, start_arena)
             : RelocateInc(ctx, net, starts[k], movable, options);
    values[k] = stats.final_value;
  });

  double best_value = -1.0;
  std::size_t best_k = 0;
  bool first = true;
  for (std::size_t k = 0; k < n; ++k) {
    if (first || values[k] > best_value) {
      first = false;
      best_value = values[k];
      best_k = k;
    }
  }
  if (!first) assign = std::move(starts[best_k]);
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->solver.ls_starts.Add(n);
    s->solver.ls_parallel_starts.Add(n);
  }
  return best_value;
}

}  // namespace wolt::assign
