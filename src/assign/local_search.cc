#include "assign/local_search.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "model/incremental.h"
#include "obs/obs.h"

namespace wolt::assign {
namespace {

// Candidate accounting, accumulated on the stack and flushed into the
// active MetricsScope once per search. Site contract: every candidate
// bumps `generated` together with exactly one of `pruned` (skipped without
// computing its delta) or `evaluated` — that is what makes the
// pruned + evaluated == generated invariant exact by construction, whatever
// the rescan/resume semantics of the surrounding loop. With WOLT_OBS=OFF
// the flush is compile-time dead and the increments fold away with it.
struct MoveTally {
  std::uint64_t generated = 0;
  std::uint64_t pruned = 0;
  std::uint64_t evaluated = 0;
  std::uint64_t accepted = 0;

  void Prune(std::uint64_t n = 1) {
    generated += n;
    pruned += n;
  }
  void Evaluate() {
    ++generated;
    ++evaluated;
  }
};

// Static per-(user, extender) placement data, hoisted out of the move loops
// so the hot paths never call back into Network. Built once per search (the
// multi-start solve shares one instance across all of its starts).
struct SearchContext {
  std::size_t num_users = 0;
  std::size_t num_extenders = 0;
  // 1 / r_ij, row-major; 0 when user i cannot reach extender j.
  std::vector<double> inv_rate;
  // Placement allowed: reachable over WiFi AND live power-line backhaul AND
  // enabled by the activation mask. A dead PLC link delivers nothing
  // end-to-end even though the WiFi-sum objective cannot see that.
  std::vector<std::uint8_t> usable;
  std::vector<int> cap;  // B_j, 0 = unconstrained

  SearchContext(const model::Network& net, const LocalSearchOptions& options)
      : num_users(net.NumUsers()),
        num_extenders(net.NumExtenders()),
        inv_rate(num_users * num_extenders, 0.0),
        usable(num_users * num_extenders, 0),
        cap(num_extenders, 0) {
    std::vector<std::uint8_t> target_ok(num_extenders, 0);
    for (std::size_t j = 0; j < num_extenders; ++j) {
      cap[j] = net.MaxUsers(j);
      const bool allowed =
          options.extender_mask.empty() || options.extender_mask[j] != 0;
      target_ok[j] = allowed && net.PlcRate(j) > 0.0;
    }
    for (std::size_t i = 0; i < num_users; ++i) {
      double* inv = &inv_rate[i * num_extenders];
      std::uint8_t* use = &usable[i * num_extenders];
      for (std::size_t j = 0; j < num_extenders; ++j) {
        const double r = net.WifiRate(i, j);
        if (r > 0.0) {
          inv[j] = 1.0 / r;
          use[j] = target_ok[j];
        }
      }
    }
  }

  const double* InvRow(std::size_t user) const {
    return &inv_rate[user * num_extenders];
  }
  const std::uint8_t* UsableRow(std::size_t user) const {
    return &usable[user * num_extenders];
  }
  bool Usable(std::size_t user, std::size_t ext) const {
    return usable[user * num_extenders + ext] != 0;
  }
  bool HasRoom(std::size_t ext, int load) const {
    return cap[ext] == 0 || load < cap[ext];
  }
};

// Incremental WiFi-side state: per-extender user count, harmonic sum, and
// cached cell throughput T_WiFi_j = n_j / inv_j. Single-user moves are O(1).
// `mutations` counts cell changes; the relocation stage uses it to prove a
// user's failed target scan needs no repeat (the deltas only read cell
// state, so an unchanged counter means an unchanged scan outcome).
struct WifiState {
  std::vector<int> load;
  std::vector<double> inv_sum;
  std::vector<double> thr;
  std::uint64_t mutations = 0;

  WifiState(const SearchContext& ctx, const model::Assignment& assign)
      : load(ctx.num_extenders, 0),
        inv_sum(ctx.num_extenders, 0.0),
        thr(ctx.num_extenders, 0.0) {
    for (std::size_t i = 0; i < assign.NumUsers(); ++i) {
      const int e = assign.ExtenderOf(i);
      if (e == model::Assignment::kUnassigned) continue;
      Add(ctx, i, static_cast<std::size_t>(e));
    }
  }

  void Add(const SearchContext& ctx, std::size_t user, std::size_t ext) {
    const double inv = ctx.InvRow(user)[ext];
    if (inv <= 0.0) {
      throw std::invalid_argument("insert at unreachable extender");
    }
    ++load[ext];
    inv_sum[ext] += inv;
    Refresh(ext);
  }

  void Remove(const SearchContext& ctx, std::size_t user, std::size_t ext) {
    --load[ext];
    inv_sum[ext] -= ctx.InvRow(user)[ext];
    if (load[ext] == 0) inv_sum[ext] = 0.0;  // kill accumulated error
    Refresh(ext);
  }

  void Refresh(std::size_t ext) {
    thr[ext] =
        load[ext] > 0 ? static_cast<double>(load[ext]) / inv_sum[ext] : 0.0;
    ++mutations;
  }

  double WifiSum() const {
    double total = 0.0;
    for (double t : thr) total += t;
    return total;
  }
};

void GreedyInsertWifi(const SearchContext& ctx, model::Assignment& assign,
                      const std::vector<std::size_t>& users,
                      const util::Deadline* deadline) {
  WifiState ws(ctx, assign);
  std::uint64_t inserts = 0;
  for (std::size_t user : users) {
    // On expiry the remaining users simply stay unassigned — the partial
    // assignment built so far is valid as-is.
    if (util::DeadlineExpired(deadline)) break;
    if (assign.IsAssigned(user)) continue;
    const double* inv = ctx.InvRow(user);
    const std::uint8_t* use = ctx.UsableRow(user);
    int best_ext = -1;
    double best_value = 0.0;
    for (std::size_t j = 0; j < ctx.num_extenders; ++j) {
      if (!use[j] || !ctx.HasRoom(j, ws.load[j])) continue;
      const double after =
          static_cast<double>(ws.load[j] + 1) / (ws.inv_sum[j] + inv[j]);
      const double candidate = after - ws.thr[j];
      if (best_ext < 0 || candidate > best_value) {
        best_value = candidate;
        best_ext = static_cast<int>(j);
      }
    }
    if (best_ext < 0) continue;  // unreachable user stays unassigned
    assign.Assign(user, static_cast<std::size_t>(best_ext));
    ws.Add(ctx, user, static_cast<std::size_t>(best_ext));
    ++inserts;
  }
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->solver.ls_inserts.Add(inserts);
  }
}

LocalSearchStats RelocateWifi(const SearchContext& ctx,
                              model::Assignment& assign,
                              const std::vector<std::size_t>& movable,
                              const LocalSearchOptions& options) {
  WifiState ws(ctx, assign);
  const std::size_t num_ext = ctx.num_extenders;

  LocalSearchStats stats;
  stats.initial_value = ws.WifiSum();
  double value = stats.initial_value;

  MoveTally rel, swp;
  std::uint64_t memo_skips = 0;
  std::uint64_t passes_run = 0;

  // Local mirror of the association (bypasses bounds-checked accessors in
  // the O(|movable|^2) swap loop).
  std::vector<int> ext_of(ctx.num_users);
  for (std::size_t i = 0; i < ctx.num_users; ++i) {
    ext_of[i] = assign.ExtenderOf(i);
  }

  const std::size_t m = movable.size();
  // Relocation-scan memo: a user whose scan found no improving target needs
  // no rescan until some cell changes (the deltas only read cell state).
  // `swap_scanned` is the same memo for the pairwise stage: a u1 whose
  // partner scan committed nothing stays fruitless while no cell changes.
  std::vector<std::uint64_t> scanned(m, ~std::uint64_t{0});
  std::vector<std::uint64_t> swap_scanned(m, ~std::uint64_t{0});

  // Swap-stage pruning aggregates over the *movable* users of each cell:
  // cell_min_inv[c * E + e] = min over users on cell c of 1/r at extender e
  // (the best imaginable partner leaving c for e), and cell_max_own[c] =
  // max over users on cell c of 1/r at c itself (the partner whose exit
  // frees the most airtime). From these, an upper bound on the swap delta
  // against ANY partner on cell c follows without touching the partners.
  // Every quantity is compared through the same monotone FP expressions the
  // exact test uses, so the skip can never drop a pair the exact test would
  // have accepted.
  std::vector<double> cell_min_inv(num_ext * num_ext, 0.0);
  std::vector<double> cell_max_own(num_ext, 0.0);
  std::vector<int> cell_movable(num_ext, 0);
  // Per-cell bitmask of movable-list indices currently on the cell; the
  // pair loop walks the OR of the non-hopeless cells' masks in ascending
  // index order, i.e. visits exactly the surviving pairs in the same order
  // a full scan would.
  const std::size_t words = (m + 63) / 64;
  std::vector<std::uint64_t> cell_mask(num_ext * words, 0);
  std::vector<std::uint64_t> partner_mask(words, 0);
  const auto rebuild_cell = [&](std::size_t c) {
    double* row = &cell_min_inv[c * num_ext];
    for (std::size_t e = 0; e < num_ext; ++e) {
      row[e] = std::numeric_limits<double>::infinity();
    }
    cell_max_own[c] = 0.0;
    cell_movable[c] = 0;
    std::uint64_t* mask = &cell_mask[c * words];
    std::fill(mask, mask + words, 0);
    for (std::size_t idx = 0; idx < m; ++idx) {
      const std::size_t u = movable[idx];
      if (ext_of[u] != static_cast<int>(c)) continue;
      ++cell_movable[c];
      mask[idx / 64] |= std::uint64_t{1} << (idx % 64);
      const double* inv = ctx.InvRow(u);
      for (std::size_t e = 0; e < num_ext; ++e) {
        row[e] = std::min(row[e], inv[e]);
      }
      cell_max_own[c] = std::max(cell_max_own[c], inv[c]);
    }
  };
  std::vector<std::uint8_t> hopeless(num_ext, 0);
  // Mutation stamp of the last full cell-aggregate rebuild; swap commits
  // rebuild their two cells in place, so the aggregates stay current and
  // the next pass can skip the full rebuild unless the relocate stage moved
  // someone.
  std::uint64_t cells_mut = ~std::uint64_t{0};
  // Movable users currently on any cell (swap commits preserve it; the
  // rebuild block above recomputes it). Feeds the O(1) pruning tally in
  // refresh_u1.
  int total_movable = 0;

  for (stats.passes = 0; stats.passes < options.max_passes; ++stats.passes) {
    ++passes_run;
    double pass_gain = 0.0;
    for (std::size_t a = 0; a < m; ++a) {
      // One user's target scan is the bounded unit of work; committed moves
      // are already in `assign`, so stopping here is always valid.
      if (util::DeadlineExpired(options.deadline)) {
        stats.deadline_hit = true;
        break;
      }
      const std::size_t user = movable[a];
      const int from = ext_of[user];
      if (from == model::Assignment::kUnassigned) continue;
      if (scanned[a] == ws.mutations) {
        ++memo_skips;
        continue;
      }
      const std::size_t from_ext = static_cast<std::size_t>(from);
      const double* inv = ctx.InvRow(user);
      const std::uint8_t* use = ctx.UsableRow(user);
      const double thr_from = ws.thr[from_ext];
      const int load_from = ws.load[from_ext];
      const double after_from =
          load_from > 1 ? static_cast<double>(load_from - 1) /
                              (ws.inv_sum[from_ext] - inv[from_ext])
                        : 0.0;

      // Try every alternative extender; apply the single best move.
      int best_ext = -1;
      double best_value = value;
      for (std::size_t j = 0; j < num_ext; ++j) {
        if (j == from_ext) continue;  // self-move, not a candidate
        if (!use[j] || !ctx.HasRoom(j, ws.load[j])) {
          rel.Prune();
          continue;
        }
        rel.Evaluate();
        const double after_to =
            static_cast<double>(ws.load[j] + 1) / (ws.inv_sum[j] + inv[j]);
        const double before = thr_from + ws.thr[j];
        const double candidate = value + (after_from + after_to - before);
        if (candidate > best_value + options.improvement_tolerance) {
          best_value = candidate;
          best_ext = static_cast<int>(j);
        }
      }
      if (best_ext >= 0) {
        const std::size_t to = static_cast<std::size_t>(best_ext);
        ws.Remove(ctx, user, from_ext);
        ws.Add(ctx, user, to);
        assign.Assign(user, to);
        ext_of[user] = best_ext;
        pass_gain += best_value - value;
        value = best_value;
        ++stats.moves;
        ++rel.accepted;
      } else {
        scanned[a] = ws.mutations;
      }
    }

    if (options.swap_moves && !stats.deadline_hit) {
      // Pairwise exchange: two users on different extenders trade places
      // (loads are unchanged, so B_j caps stay satisfied).
      if (cells_mut != ws.mutations) {
        for (std::size_t c = 0; c < num_ext; ++c) rebuild_cell(c);
        cells_mut = ws.mutations;
        total_movable = 0;
        for (std::size_t c = 0; c < num_ext; ++c) {
          total_movable += cell_movable[c];
        }
      }
      for (std::size_t a = 0; a < m; ++a) {
        if (util::DeadlineExpired(options.deadline)) {
          stats.deadline_hit = true;
          break;
        }
        const std::size_t u1 = movable[a];
        const int e1 = ext_of[u1];
        if (e1 == model::Assignment::kUnassigned) continue;
        if (swap_scanned[a] == ws.mutations) {
          ++memo_skips;
          continue;
        }
        const std::uint64_t mut0 = ws.mutations;
        const double* inv1 = ctx.InvRow(u1);
        const std::uint8_t* use1 = ctx.UsableRow(u1);
        // Snapshot of u1's cell plus the per-cell delta upper bounds; both
        // go stale only when a swap commits (it relocates u1 and changes
        // two cells), so they are refreshed there and nowhere else.
        std::size_t x1 = static_cast<std::size_t>(e1);
        double base1 = 0.0, thr1 = 0.0, load1 = 0.0;
        const auto refresh_u1 = [&] {
          base1 = ws.inv_sum[x1] - inv1[x1];
          thr1 = ws.thr[x1];
          load1 = static_cast<double>(ws.load[x1]);
          for (std::size_t c = 0; c < num_ext; ++c) {
            if (c == x1 || c == static_cast<std::size_t>(e1) || !use1[c] ||
                cell_movable[c] == 0) {
              hopeless[c] = 1;
              continue;
            }
            // Best imaginable partner from cell c: fastest member at x1
            // (smallest added 1/r) and slowest member at c (largest removed
            // 1/r) — possibly different users, hence an upper bound.
            const double best_after_x1 =
                load1 / (base1 + cell_min_inv[c * num_ext + x1]);
            const double best_after_c =
                static_cast<double>(ws.load[c]) /
                (ws.inv_sum[c] - cell_max_own[c] + inv1[c]);
            const double before = thr1 + ws.thr[c];
            const double bound =
                value + (best_after_x1 + best_after_c - before);
            hopeless[c] = !(bound > value + options.improvement_tolerance);
          }
          std::fill(partner_mask.begin(), partner_mask.end(), 0);
          int surviving = 0;
          for (std::size_t c = 0; c < num_ext; ++c) {
            if (hopeless[c]) continue;
            surviving += cell_movable[c];
            const std::uint64_t* mask = &cell_mask[c * words];
            for (std::size_t w = 0; w < words; ++w) partner_mask[w] |= mask[w];
          }
          // Pruning tally: every movable user on a ruled-out cell counts as
          // one generated-and-pruned swap candidate for this scan (whether
          // the cell fell to the delta bound, unusability, or being u1's own
          // cell — mirroring the relocate stage, which tallies unusable
          // targets as pruned too). The count is an upper bound on the pairs
          // a full scan would actually have visited (the b > a resume
          // position is ignored), computed as one subtraction so the bound
          // loop above stays tally-free; Prune() bumps generated and pruned
          // together, so pruned + evaluated == generated stays exact.
          const int own = cell_movable[x1] +
                          (static_cast<std::size_t>(e1) != x1
                               ? cell_movable[static_cast<std::size_t>(e1)]
                               : 0);
          swp.Prune(static_cast<std::uint64_t>(total_movable - own -
                                               surviving));
        };
        refresh_u1();
        for (std::size_t w = a / 64; w < words; ++w) {
          std::uint64_t bits = partner_mask[w];
          if (w == a / 64) {
            // only partners after u1 in the movable order
            bits &= (a % 64 == 63) ? 0 : ~std::uint64_t{0} << (a % 64 + 1);
          }
          while (bits) {
            const std::size_t b =
                w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
            bits &= bits - 1;
            const std::size_t u2 = movable[b];
            const std::size_t x2 = static_cast<std::size_t>(ext_of[u2]);
            if (!ctx.Usable(u2, x1)) {
              swp.Prune();
              continue;
            }
            swp.Evaluate();
            const double* inv2 = ctx.InvRow(u2);
            const double after_x1 = load1 / (base1 + inv2[x1]);
            const double after_x2 =
                static_cast<double>(ws.load[x2]) /
                (ws.inv_sum[x2] - inv2[x2] + inv1[x2]);
            const double before = thr1 + ws.thr[x2];
            const double candidate = value + (after_x1 + after_x2 - before);
            if (candidate > value + options.improvement_tolerance) {
              ws.Remove(ctx, u1, x1);
              ws.Remove(ctx, u2, x2);
              ws.Add(ctx, u1, x2);
              ws.Add(ctx, u2, x1);
              assign.Assign(u1, x2);
              assign.Assign(u2, x1);
              ext_of[u1] = static_cast<int>(x2);
              ext_of[u2] = static_cast<int>(x1);
              pass_gain += candidate - value;
              value = candidate;
              ++stats.moves;
              ++swp.accepted;
              rebuild_cell(x1);
              rebuild_cell(x2);
              cells_mut = ws.mutations;
              x1 = static_cast<std::size_t>(ext_of[u1]);
              refresh_u1();
              // the partner set changed under us; resume after b
              bits = partner_mask[w];
              bits &= (b % 64 == 63) ? 0 : ~std::uint64_t{0} << (b % 64 + 1);
            }
          }
        }
        if (ws.mutations == mut0) swap_scanned[a] = mut0;
      }
    }
    if (stats.deadline_hit) break;
    if (pass_gain <= options.improvement_tolerance) break;
  }

  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->solver.relocate_generated.Add(rel.generated);
    s->solver.relocate_pruned.Add(rel.pruned);
    s->solver.relocate_evaluated.Add(rel.evaluated);
    s->solver.relocate_accepted.Add(rel.accepted);
    s->solver.swap_generated.Add(swp.generated);
    s->solver.swap_pruned.Add(swp.pruned);
    s->solver.swap_evaluated.Add(swp.evaluated);
    s->solver.swap_accepted.Add(swp.accepted);
    s->solver.ls_passes.Add(passes_run);
    s->solver.ls_memo_skips.Add(memo_skips);
  }

  stats.final_value = value;
  return stats;
}

// ---------------------------------------------------------------------------
// Evaluator-backed objectives (kEndToEnd / kProportionalFair): every
// candidate move delegates to model::IncrementalEvaluator (O(|PLC domain|)
// per move, allocation-free). No full Evaluator run happens per move.

double ValueOf(const model::IncrementalValues& v, Phase2Objective objective) {
  return objective == Phase2Objective::kEndToEnd ? v.aggregate_mbps
                                                 : v.log_utility;
}

double IncValue(const model::IncrementalEvaluator& inc,
                Phase2Objective objective) {
  return objective == Phase2Objective::kEndToEnd ? inc.aggregate_mbps()
                                                 : inc.log_utility();
}

void GreedyInsertInc(const SearchContext& ctx, const model::Network& net,
                     model::Assignment& assign,
                     const std::vector<std::size_t>& users,
                     const LocalSearchOptions& options) {
  model::IncrementalEvaluator inc(
      net, assign, options.eval, model::IncrementalEvaluator::kDefaultLogFloorMbps,
      /*track_log_utility=*/options.objective == Phase2Objective::kProportionalFair);
  std::uint64_t inserts = 0;
  for (std::size_t user : users) {
    if (util::DeadlineExpired(options.deadline)) break;
    if (assign.IsAssigned(user)) continue;
    int best_ext = -1;
    double best_value = 0.0;
    for (std::size_t j = 0; j < ctx.num_extenders; ++j) {
      if (!ctx.Usable(user, j) || !ctx.HasRoom(j, inc.Load(j))) continue;
      const double candidate =
          ValueOf(inc.PeekMove(user, static_cast<int>(j)), options.objective);
      if (best_ext < 0 || candidate > best_value) {
        best_value = candidate;
        best_ext = static_cast<int>(j);
      }
    }
    if (best_ext < 0) continue;  // unreachable user stays unassigned
    assign.Assign(user, static_cast<std::size_t>(best_ext));
    inc.ApplyMove(user, best_ext);
    ++inserts;
  }
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->solver.ls_inserts.Add(inserts);
  }
}

LocalSearchStats RelocateInc(const SearchContext& ctx,
                             const model::Network& net,
                             model::Assignment& assign,
                             const std::vector<std::size_t>& movable,
                             const LocalSearchOptions& options) {
  model::IncrementalEvaluator inc(
      net, assign, options.eval, model::IncrementalEvaluator::kDefaultLogFloorMbps,
      /*track_log_utility=*/options.objective == Phase2Objective::kProportionalFair);

  LocalSearchStats stats;
  stats.initial_value = IncValue(inc, options.objective);
  double value = stats.initial_value;

  MoveTally rel, swp;
  std::uint64_t passes_run = 0;

  for (stats.passes = 0; stats.passes < options.max_passes; ++stats.passes) {
    ++passes_run;
    double pass_gain = 0.0;
    for (std::size_t user : movable) {
      if (util::DeadlineExpired(options.deadline)) {
        stats.deadline_hit = true;
        break;
      }
      const int from = assign.ExtenderOf(user);
      if (from == model::Assignment::kUnassigned) continue;
      const std::size_t from_ext = static_cast<std::size_t>(from);

      int best_ext = -1;
      double best_value = value;
      for (std::size_t j = 0; j < ctx.num_extenders; ++j) {
        if (j == from_ext) continue;  // self-move, not a candidate
        if (!ctx.Usable(user, j) || !ctx.HasRoom(j, inc.Load(j))) {
          rel.Prune();
          continue;
        }
        rel.Evaluate();
        const double candidate =
            ValueOf(inc.PeekMove(user, static_cast<int>(j)),
                    options.objective);
        if (candidate > best_value + options.improvement_tolerance) {
          best_value = candidate;
          best_ext = static_cast<int>(j);
        }
      }
      if (best_ext >= 0) {
        inc.ApplyMove(user, best_ext);
        assign.Assign(user, static_cast<std::size_t>(best_ext));
        pass_gain += best_value - value;
        value = best_value;
        ++stats.moves;
        ++rel.accepted;
      }
    }

    if (options.swap_moves && !stats.deadline_hit) {
      for (std::size_t a = 0; a < movable.size(); ++a) {
        if (util::DeadlineExpired(options.deadline)) {
          stats.deadline_hit = true;
          break;
        }
        const std::size_t u1 = movable[a];
        const int e1 = assign.ExtenderOf(u1);
        if (e1 == model::Assignment::kUnassigned) continue;
        for (std::size_t b = a + 1; b < movable.size(); ++b) {
          const std::size_t u2 = movable[b];
          const int e2 = assign.ExtenderOf(u2);
          if (e2 == model::Assignment::kUnassigned || e1 == e2) continue;
          const std::size_t x1 = static_cast<std::size_t>(
              assign.ExtenderOf(u1));  // may have changed since e1 was read
          const std::size_t x2 = static_cast<std::size_t>(e2);
          if (x1 == x2) continue;
          if (!ctx.Usable(u1, x2) || !ctx.Usable(u2, x1)) {
            swp.Prune();
            continue;
          }
          swp.Evaluate();
          const double candidate =
              ValueOf(inc.PeekSwap(u1, u2), options.objective);
          if (candidate > value + options.improvement_tolerance) {
            inc.ApplyMove(u1, static_cast<int>(x2));
            inc.ApplyMove(u2, static_cast<int>(x1));
            assign.Assign(u1, x2);
            assign.Assign(u2, x1);
            pass_gain += candidate - value;
            value = candidate;
            ++stats.moves;
            ++swp.accepted;
          }
        }
      }
    }
    if (stats.deadline_hit) break;
    if (pass_gain <= options.improvement_tolerance) break;
  }

  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->solver.relocate_generated.Add(rel.generated);
    s->solver.relocate_pruned.Add(rel.pruned);
    s->solver.relocate_evaluated.Add(rel.evaluated);
    s->solver.relocate_accepted.Add(rel.accepted);
    s->solver.swap_generated.Add(swp.generated);
    s->solver.swap_pruned.Add(swp.pruned);
    s->solver.swap_evaluated.Add(swp.evaluated);
    s->solver.swap_accepted.Add(swp.accepted);
    s->solver.ls_passes.Add(passes_run);
  }

  stats.final_value = value;
  return stats;
}

}  // namespace

double Phase2Value(const model::Network& net, const model::Assignment& assign,
                   Phase2Objective objective, const model::EvalOptions& eval) {
  switch (objective) {
    case Phase2Objective::kWifiSum: {
      const std::size_t num_ext = net.NumExtenders();
      std::vector<int> load(num_ext, 0);
      std::vector<double> inv_sum(num_ext, 0.0);
      for (std::size_t i = 0; i < net.NumUsers(); ++i) {
        const int e = assign.ExtenderOf(i);
        if (e == model::Assignment::kUnassigned) continue;
        const double r = net.WifiRate(i, static_cast<std::size_t>(e));
        if (r <= 0.0) {
          throw std::invalid_argument("insert at unreachable extender");
        }
        ++load[static_cast<std::size_t>(e)];
        inv_sum[static_cast<std::size_t>(e)] += 1.0 / r;
      }
      double total = 0.0;
      for (std::size_t j = 0; j < num_ext; ++j) {
        if (load[j] > 0) total += static_cast<double>(load[j]) / inv_sum[j];
      }
      return total;
    }
    case Phase2Objective::kEndToEnd:
      return model::IncrementalEvaluator(net, assign, eval).aggregate_mbps();
    case Phase2Objective::kProportionalFair:
      return model::IncrementalEvaluator(net, assign, eval).log_utility();
  }
  return 0.0;
}

void GreedyInsert(const model::Network& net, model::Assignment& assign,
                  const std::vector<std::size_t>& users,
                  const LocalSearchOptions& options) {
  const SearchContext ctx(net, options);
  if (options.objective == Phase2Objective::kWifiSum) {
    GreedyInsertWifi(ctx, assign, users, options.deadline);
  } else {
    GreedyInsertInc(ctx, net, assign, users, options);
  }
}

LocalSearchStats RelocateLocalSearch(const model::Network& net,
                                     model::Assignment& assign,
                                     const std::vector<std::size_t>& movable,
                                     const LocalSearchOptions& options) {
  const SearchContext ctx(net, options);
  if (options.objective == Phase2Objective::kWifiSum) {
    return RelocateWifi(ctx, assign, movable, options);
  }
  return RelocateInc(ctx, net, assign, movable, options);
}

double SolvePhase2MultiStart(const model::Network& net,
                             model::Assignment& assign,
                             const std::vector<std::size_t>& movable,
                             const LocalSearchOptions& options) {
  const SearchContext ctx(net, options);

  // Candidate insertion orders: as given, best-rate descending (strong
  // users claim their extenders first), best-rate ascending (weak users get
  // first pick of uncontended cells).
  const auto best_rate = [&](std::size_t user) {
    double best = 0.0;
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      if (!options.extender_mask.empty() && !options.extender_mask[j]) {
        continue;
      }
      best = std::max(best, net.WifiRate(user, j));
    }
    return best;
  };
  std::vector<std::vector<std::size_t>> orders;
  orders.push_back(movable);
  std::vector<std::size_t> desc = movable;
  std::sort(desc.begin(), desc.end(), [&](std::size_t a, std::size_t b) {
    return best_rate(a) > best_rate(b);
  });
  orders.push_back(desc);
  std::vector<std::size_t> asc(desc.rbegin(), desc.rend());
  orders.push_back(std::move(asc));

  const bool wifi = options.objective == Phase2Objective::kWifiSum;
  const model::Assignment base = assign;
  model::Assignment best_assignment = assign;
  double best_value = -1.0;
  bool first = true;
  // Different insertion orders frequently greedy-insert into the same
  // assignment; the local search is deterministic, so a duplicate start can
  // only reproduce an earlier run's result and is skipped outright.
  std::vector<std::vector<int>> seen_starts;
  for (const auto& order : orders) {
    // Keep the first start even under an expired deadline (its insert and
    // search truncate internally, still yielding a complete, valid
    // assignment); skip the extra starts once a result exists.
    if (!first && util::DeadlineExpired(options.deadline)) break;
    model::Assignment candidate = base;
    if (wifi) {
      GreedyInsertWifi(ctx, candidate, order, options.deadline);
    } else {
      GreedyInsertInc(ctx, net, candidate, order, options);
    }
    std::vector<int> snap(ctx.num_users);
    for (std::size_t i = 0; i < ctx.num_users; ++i) {
      snap[i] = candidate.ExtenderOf(i);
    }
    bool duplicate = false;
    for (const auto& prior : seen_starts) {
      if (prior == snap) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen_starts.push_back(std::move(snap));
    const LocalSearchStats stats =
        wifi ? RelocateWifi(ctx, candidate, movable, options)
             : RelocateInc(ctx, net, candidate, movable, options);
    if (first || stats.final_value > best_value) {
      first = false;
      best_value = stats.final_value;
      best_assignment = std::move(candidate);
    }
  }
  assign = std::move(best_assignment);
  return best_value;
}

}  // namespace wolt::assign
