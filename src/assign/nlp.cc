#include "assign/nlp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

namespace wolt::assign {
namespace {

constexpr double kEps = 1e-12;

struct Problem {
  const model::Network* net = nullptr;
  std::vector<std::size_t> movable;
  std::vector<double> fixed_count;   // per extender
  std::vector<double> fixed_invsum;  // per extender

  double Objective(const std::vector<std::vector<double>>& x) const {
    const std::size_t num_ext = net->NumExtenders();
    double total = 0.0;
    for (std::size_t j = 0; j < num_ext; ++j) {
      double n = fixed_count[j];
      double s = fixed_invsum[j];
      for (std::size_t k = 0; k < movable.size(); ++k) {
        const double r = net->WifiRate(movable[k], j);
        if (r <= 0.0) continue;
        n += x[k][j];
        s += x[k][j] / r;
      }
      if (n > kEps) total += n / (s + kEps);
    }
    return total;
  }

  // dF/dx_kj = (s_j - n_j / r_kj) / s_j^2.
  void Gradient(const std::vector<std::vector<double>>& x,
                std::vector<std::vector<double>>& grad) const {
    const std::size_t num_ext = net->NumExtenders();
    std::vector<double> n(num_ext), s(num_ext);
    for (std::size_t j = 0; j < num_ext; ++j) {
      n[j] = fixed_count[j];
      s[j] = fixed_invsum[j];
      for (std::size_t k = 0; k < movable.size(); ++k) {
        const double r = net->WifiRate(movable[k], j);
        if (r <= 0.0) continue;
        n[j] += x[k][j];
        s[j] += x[k][j] / r;
      }
    }
    for (std::size_t k = 0; k < movable.size(); ++k) {
      for (std::size_t j = 0; j < num_ext; ++j) {
        const double r = net->WifiRate(movable[k], j);
        if (r <= 0.0) {
          grad[k][j] = 0.0;
          continue;
        }
        const double denom = (s[j] + kEps) * (s[j] + kEps);
        grad[k][j] = (s[j] - n[j] / r) / denom;
      }
    }
  }
};

}  // namespace

std::vector<double> ProjectToSimplex(const std::vector<double>& v,
                                     const std::vector<bool>& allowed) {
  if (v.size() != allowed.size()) {
    throw std::invalid_argument("size mismatch");
  }
  std::vector<double> values;
  for (std::size_t j = 0; j < v.size(); ++j) {
    if (allowed[j]) values.push_back(v[j]);
  }
  if (values.empty()) {
    throw std::invalid_argument("no allowed entries to project onto");
  }
  // Standard O(n log n) simplex projection (Duchi et al.): find threshold
  // tau so that sum max(v - tau, 0) = 1 over the allowed entries.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double cumulative = 0.0;
  double tau = 0.0;
  std::size_t rho = 0;
  for (std::size_t k = 0; k < sorted.size(); ++k) {
    cumulative += sorted[k];
    const double candidate =
        (cumulative - 1.0) / static_cast<double>(k + 1);
    if (sorted[k] - candidate > 0.0) {
      tau = candidate;
      rho = k + 1;
    }
  }
  (void)rho;
  std::vector<double> out(v.size(), 0.0);
  for (std::size_t j = 0; j < v.size(); ++j) {
    if (allowed[j]) out[j] = std::max(v[j] - tau, 0.0);
  }
  return out;
}

NlpResult SolvePhase2Nlp(const model::Network& net,
                         const model::Assignment& fixed,
                         const std::vector<std::size_t>& movable,
                         const NlpOptions& options) {
  const std::size_t num_ext = net.NumExtenders();
  if (num_ext == 0) throw std::invalid_argument("no extenders");

  Problem prob;
  prob.net = &net;
  prob.movable = movable;
  prob.fixed_count.assign(num_ext, 0.0);
  prob.fixed_invsum.assign(num_ext, 0.0);
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    const int e = fixed.ExtenderOf(i);
    if (e == model::Assignment::kUnassigned) continue;
    const double r = net.WifiRate(i, static_cast<std::size_t>(e));
    if (r <= 0.0) throw std::invalid_argument("fixed user unreachable");
    prob.fixed_count[static_cast<std::size_t>(e)] += 1.0;
    prob.fixed_invsum[static_cast<std::size_t>(e)] += 1.0 / r;
  }
  for (std::size_t user : movable) {
    if (fixed.IsAssigned(user)) {
      throw std::invalid_argument("movable user already fixed");
    }
  }

  // Initialize each movable user uniformly over its reachable extenders.
  std::vector<std::vector<bool>> allowed(movable.size(),
                                         std::vector<bool>(num_ext, false));
  std::vector<std::vector<double>> x(movable.size(),
                                     std::vector<double>(num_ext, 0.0));
  for (std::size_t k = 0; k < movable.size(); ++k) {
    std::size_t reachable = 0;
    for (std::size_t j = 0; j < num_ext; ++j) {
      if (net.WifiRate(movable[k], j) > 0.0 && net.PlcRate(j) > 0.0) {
        allowed[k][j] = true;
        ++reachable;
      }
    }
    if (reachable == 0) {
      throw std::invalid_argument("movable user reaches no extender");
    }
    for (std::size_t j = 0; j < num_ext; ++j) {
      if (allowed[k][j]) x[k][j] = 1.0 / static_cast<double>(reachable);
    }
  }

  NlpResult result;
  double value = prob.Objective(x);
  double step = options.initial_step;
  std::vector<std::vector<double>> grad(movable.size(),
                                        std::vector<double>(num_ext, 0.0));

  std::uint64_t backtracks = 0;
  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    // One gradient step (with its backtracking line search) is the bounded
    // unit of work; the iterate is always a feasible point, so stopping
    // here still rounds to a valid assignment below.
    if (util::DeadlineExpired(options.deadline)) {
      result.deadline_hit = true;
      break;
    }
    prob.Gradient(x, grad);

    bool accepted = false;
    double trial_step = step;
    std::vector<std::vector<double>> trial = x;
    for (std::size_t bt = 0; bt < options.max_backtracks; ++bt) {
      for (std::size_t k = 0; k < movable.size(); ++k) {
        std::vector<double> moved(num_ext);
        for (std::size_t j = 0; j < num_ext; ++j) {
          moved[j] = x[k][j] + trial_step * grad[k][j];
        }
        trial[k] = ProjectToSimplex(moved, allowed[k]);
      }
      const double trial_value = prob.Objective(trial);
      if (trial_value > value) {
        const double gain = trial_value - value;
        x = trial;
        value = trial_value;
        step = trial_step * 1.5;  // mild step growth after success
        accepted = true;
        if (gain < options.improvement_tolerance) {
          result.converged = true;
        }
        break;
      }
      ++backtracks;
      trial_step *= options.backtrack_factor;
    }
    if (!accepted) {
      result.converged = true;  // no ascent direction at any step size
      break;
    }
    if (result.converged) break;
  }
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->solver.nlp_solves.Add(1);
    s->solver.nlp_iterations.Add(
        static_cast<std::uint64_t>(result.iterations));
    s->solver.nlp_backtracks.Add(backtracks);
  }

  // Vertex polish (the Theorem-3 exchange argument made algorithmic):
  // projected gradient can stall at fractional stationary points, but for
  // any user the objective restricted to that user's simplex is maximized
  // at a vertex, so coordinate-wise vertex moves only improve F and drive
  // the point integral. Iterate to a fixed point.
  for (std::size_t pass = 0; pass < 100; ++pass) {
    if (util::DeadlineExpired(options.deadline)) {
      result.deadline_hit = true;
      break;
    }
    bool changed = false;
    for (std::size_t k = 0; k < movable.size(); ++k) {
      std::size_t best_j = 0;
      double best_value = -1.0;
      std::vector<double> saved = x[k];
      for (std::size_t j = 0; j < num_ext; ++j) {
        if (!allowed[k][j]) continue;
        std::fill(x[k].begin(), x[k].end(), 0.0);
        x[k][j] = 1.0;
        const double v = prob.Objective(x);
        if (v > best_value) {
          best_value = v;
          best_j = j;
        }
      }
      std::fill(x[k].begin(), x[k].end(), 0.0);
      x[k][best_j] = 1.0;
      if (best_value > value + options.improvement_tolerance ||
          saved[best_j] < 1.0 - 1e-9) {
        changed = true;
      }
      value = best_value;
    }
    if (!changed) break;
  }

  result.objective_continuous = value;
  result.fractional = x;

  // Round by row-argmax and merge over the fixed users.
  result.rounded = fixed;
  double max_frac = 0.0;
  for (std::size_t k = 0; k < movable.size(); ++k) {
    std::size_t best = 0;
    double best_mass = -1.0;
    for (std::size_t j = 0; j < num_ext; ++j) {
      if (x[k][j] > best_mass) {
        best_mass = x[k][j];
        best = j;
      }
    }
    max_frac = std::max(max_frac, 1.0 - best_mass);
    result.rounded.Assign(movable[k], best);
  }
  result.max_fractionality = max_frac;

  // WiFi-sum of the rounded point (comparable to the continuous objective).
  std::vector<double> n(num_ext, 0.0), s(num_ext, 0.0);
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    const int e = result.rounded.ExtenderOf(i);
    if (e == model::Assignment::kUnassigned) continue;
    n[static_cast<std::size_t>(e)] += 1.0;
    s[static_cast<std::size_t>(e)] +=
        1.0 / net.WifiRate(i, static_cast<std::size_t>(e));
  }
  for (std::size_t j = 0; j < num_ext; ++j) {
    if (n[j] > 0.0) result.objective_rounded += n[j] / s[j];
  }
  return result;
}

}  // namespace wolt::assign
