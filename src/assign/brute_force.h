// Exhaustive search for the optimal user association. Exponential
// (|A|^|U| complete assignments), so only usable at case-study scale — the
// paper itself uses brute force to establish the optimum of the Fig. 3
// scenario. Tests use it as ground truth against WOLT and as evidence of
// the NP-hard problem's cost curve.
#pragma once

#include <cstdint>
#include <functional>

#include "model/assignment.h"
#include "model/evaluator.h"
#include "model/network.h"

namespace wolt::assign {

struct BruteForceOptions {
  // Abort (throw std::invalid_argument) if the search space exceeds this.
  std::uint64_t max_combinations = 50'000'000;
  // If true, users may also be left unassigned (searches the relaxed
  // Problem 1 without constraint (7); space becomes (|A|+1)^|U|).
  bool allow_unassigned = false;
  model::EvalOptions eval;
};

struct BruteForceResult {
  model::Assignment best;
  double best_aggregate_mbps = 0.0;
  std::uint64_t evaluated = 0;  // feasible assignments evaluated
};

// Maximize aggregate end-to-end throughput over all feasible assignments
// (reachability r_ij > 0 and per-extender caps B_j respected).
BruteForceResult SolveBruteForce(const model::Network& net,
                                 const BruteForceOptions& options = {});

// General-objective variant (used by tests to brute-force Problem 2's
// WiFi-only objective with some users pinned). `pinned` entries with a
// valid extender are kept fixed; kUnassigned entries are enumerated.
BruteForceResult SolveBruteForceObjective(
    const model::Network& net, const model::Assignment& pinned,
    const std::function<double(const model::Assignment&)>& objective,
    const BruteForceOptions& options = {});

}  // namespace wolt::assign
