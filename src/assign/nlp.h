// Continuous solver for Problem 2, mirroring the paper's numerical approach.
//
// The paper relaxes x_ij to [0, 1] (Eq. 16) and solves the resulting
// nonlinear program with an interior-point solver, stopping when the
// improvement drops below 1e-5; Theorem 3 shows an integral optimum always
// exists (and is found in practice). We implement projected-gradient ascent:
// each movable user's assignment row lives on the probability simplex over
// its reachable extenders; the smooth objective is
//   F(x) = sum_j n_j(x) / s_j(x),   n_j = fixed_count_j + sum_i x_ij,
//                                   s_j = fixed_invsum_j + sum_i x_ij / r_ij,
// which agrees with Problem 2's objective at integral points. Steps use
// backtracking; iterates are projected onto each user's simplex. The result
// reports how fractional the converged point is so tests can confirm
// Theorem 3 empirically before rounding by row-argmax.
#pragma once

#include <cstddef>
#include <vector>

#include "model/assignment.h"
#include "model/network.h"
#include "util/deadline.h"

namespace wolt::assign {

struct NlpOptions {
  std::size_t max_iterations = 5000;
  double initial_step = 1.0;
  // Stop when an accepted step improves the objective by less than this
  // (the paper's 1e-5 criterion).
  double improvement_tolerance = 1e-5;
  // Backtracking: shrink the step by this factor while it fails to improve.
  double backtrack_factor = 0.5;
  std::size_t max_backtracks = 30;
  // Optional cooperative wall-clock budget (null = unlimited), polled once
  // per ascent iteration and per vertex-polish pass. On expiry the solve
  // stops and rounds its best-so-far point — the result is always a
  // complete, valid assignment.
  const util::Deadline* deadline = nullptr;
};

struct NlpResult {
  // Row-argmax rounding of the converged point, merged over the fixed
  // assignment (fixed users keep their extenders).
  model::Assignment rounded;
  double objective_continuous = 0.0;  // F at the converged point
  double objective_rounded = 0.0;     // WiFi-sum of the rounded assignment
  // max_i (1 - max_j x_ij): 0 for a perfectly integral solution.
  double max_fractionality = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
  // True iff the solve stopped early because options.deadline expired.
  bool deadline_hit = false;
  // The raw converged point: row per movable user, column per extender.
  std::vector<std::vector<double>> fractional;
};

// Solve Problem 2: maximize sum_j T_WiFi_j over assignments of `movable`
// users, with all users already assigned in `fixed` held in place. Movable
// users must be unassigned in `fixed` and reachable (some r_ij > 0).
NlpResult SolvePhase2Nlp(const model::Network& net,
                         const model::Assignment& fixed,
                         const std::vector<std::size_t>& movable,
                         const NlpOptions& options = {});

// Euclidean projection of `v` onto the probability simplex
// {x >= 0, sum x = 1}; entries where `allowed` is false are forced to 0.
// Exposed for unit testing. Requires at least one allowed entry.
std::vector<double> ProjectToSimplex(const std::vector<double>& v,
                                     const std::vector<bool>& allowed);

}  // namespace wolt::assign
