// Discrete Phase-II solvers for Problem 2 (WiFi User Assignment Only).
//
// Phase II of WOLT assigns the remaining users U2 = U \ U1 so that the
// aggregate throughput degradation is minimized with the Phase-I users
// fixed. The paper solves a continuous relaxation numerically and proves
// (Theorem 3) the optimum is integral; the proof's exchange argument —
// shifting a user's fractional mass to the extender minimizing
// sum_{i' in N_j} 1/r_i'j + 1/r_ij (Eq. 18) — directly yields the discrete
// method here: marginal-gain greedy insertion followed by single-user
// relocation local search with the paper's 1e-5 improvement stopping rule.
//
// All three objectives are evaluated incrementally per candidate move: the
// WiFi-sum objective via O(1) harmonic-sum deltas, the end-to-end and
// proportional-fair objectives via model::IncrementalEvaluator (O(|PLC
// domain|) per move, no allocations). No full evaluator run happens inside
// the relocate/swap inner loops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "model/assignment.h"
#include "model/evaluator.h"
#include "model/network.h"
#include "util/deadline.h"

namespace wolt::assign {

// Which objective the insertion/relocation maximizes.
enum class Phase2Objective {
  // Problem 2's objective: sum of per-extender WiFi throughputs (Eq. 14).
  kWifiSum,
  // Extension: full end-to-end aggregate min(T_WiFi, T_PLC) — more
  // expensive per move but aware of PLC bottlenecks (ablation Abl-2).
  kEndToEnd,
  // Extension: proportional fairness — sum of log per-user end-to-end
  // throughputs over assigned users. Trades a little aggregate for much
  // better Jain fairness (the fairness direction §V-D leaves open).
  kProportionalFair,
};

struct LocalSearchOptions {
  Phase2Objective objective = Phase2Objective::kWifiSum;
  // Stop when a full relocation pass improves the objective by less than
  // this (the paper's interior-point stopping criterion, §IV-B).
  double improvement_tolerance = 1e-5;
  std::size_t max_passes = 100;
  // Also try exchanging the extenders of pairs of movable users. Escapes
  // the local optima single-user relocation cannot (two users parked on
  // each other's best extender).
  bool swap_moves = true;
  model::EvalOptions eval;  // used only for kEndToEnd / kProportionalFair
  // Optional per-extender availability mask (the subset search's activation
  // restriction): empty means every extender is allowed; otherwise size
  // NumExtenders(), and only extenders with a non-zero entry are placement
  // targets. The span must stay valid for the duration of the call.
  std::span<const std::uint8_t> extender_mask;
  // Optional cooperative wall-clock budget (null = unlimited), polled once
  // per user scan / insertion. On expiry the search stops and returns its
  // best-so-far assignment — always valid, possibly not locally optimal.
  // An unexpired deadline never alters the result.
  const util::Deadline* deadline = nullptr;
};

// Objective value of a (possibly partial) assignment under the selected
// Phase-II objective.
double Phase2Value(const model::Network& net, const model::Assignment& assign,
                   Phase2Objective objective, const model::EvalOptions& eval);

// Insert each user of `users` (in the given order) at the extender that
// maximizes the objective increase, respecting reachability and B_j.
// Modifies `assign` in place. Users already assigned are skipped.
void GreedyInsert(const model::Network& net, model::Assignment& assign,
                  const std::vector<std::size_t>& users,
                  const LocalSearchOptions& options = {});

struct LocalSearchStats {
  std::size_t passes = 0;
  std::size_t moves = 0;
  double initial_value = 0.0;
  double final_value = 0.0;
  // True iff the search stopped early because options.deadline expired.
  bool deadline_hit = false;
};

// Repeatedly relocate single users from `movable` to better extenders until
// no move improves the objective by more than the tolerance.
LocalSearchStats RelocateLocalSearch(const model::Network& net,
                                     model::Assignment& assign,
                                     const std::vector<std::size_t>& movable,
                                     const LocalSearchOptions& options = {});

// Full Phase-II solve with multi-start: greedy insertion of `movable` under
// several orderings (given order, best-rate-descending, best-rate-ascending),
// each followed by relocation/swap local search; the best result is written
// back into `assign`. Users already assigned in `assign` are held fixed.
// Returns the best objective value found.
double SolvePhase2MultiStart(const model::Network& net,
                             model::Assignment& assign,
                             const std::vector<std::size_t>& movable,
                             const LocalSearchOptions& options = {});

}  // namespace wolt::assign
