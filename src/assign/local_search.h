// Discrete Phase-II solvers for Problem 2 (WiFi User Assignment Only).
//
// Phase II of WOLT assigns the remaining users U2 = U \ U1 so that the
// aggregate throughput degradation is minimized with the Phase-I users
// fixed. The paper solves a continuous relaxation numerically and proves
// (Theorem 3) the optimum is integral; the proof's exchange argument —
// shifting a user's fractional mass to the extender minimizing
// sum_{i' in N_j} 1/r_i'j + 1/r_ij (Eq. 18) — directly yields the discrete
// method here: marginal-gain greedy insertion followed by single-user
// relocation local search with the paper's 1e-5 improvement stopping rule.
//
// All three objectives are evaluated incrementally per candidate move: the
// WiFi-sum objective via O(1) harmonic-sum deltas, the end-to-end and
// proportional-fair objectives via model::IncrementalEvaluator (O(|PLC
// domain|) per move, no allocations). No full evaluator run happens inside
// the relocate/swap inner loops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "model/assignment.h"
#include "model/evaluator.h"
#include "model/network.h"
#include "model/soa.h"
#include "util/arena.h"
#include "util/deadline.h"

namespace wolt::util {
class ThreadPool;
}  // namespace wolt::util

namespace wolt::assign {

// Which objective the insertion/relocation maximizes.
enum class Phase2Objective {
  // Problem 2's objective: sum of per-extender WiFi throughputs (Eq. 14).
  kWifiSum,
  // Extension: full end-to-end aggregate min(T_WiFi, T_PLC) — more
  // expensive per move but aware of PLC bottlenecks (ablation Abl-2).
  kEndToEnd,
  // Extension: proportional fairness — sum of log per-user end-to-end
  // throughputs over assigned users. Trades a little aggregate for much
  // better Jain fairness (the fairness direction §V-D leaves open).
  kProportionalFair,
};

struct LocalSearchOptions {
  Phase2Objective objective = Phase2Objective::kWifiSum;
  // Stop when a full relocation pass improves the objective by less than
  // this (the paper's interior-point stopping criterion, §IV-B).
  double improvement_tolerance = 1e-5;
  std::size_t max_passes = 100;
  // Also try exchanging the extenders of pairs of movable users. Escapes
  // the local optima single-user relocation cannot (two users parked on
  // each other's best extender).
  bool swap_moves = true;
  model::EvalOptions eval;  // used only for kEndToEnd / kProportionalFair
  // Optional per-extender availability mask (the subset search's activation
  // restriction): empty means every extender is allowed; otherwise size
  // NumExtenders(), and only extenders with a non-zero entry are placement
  // targets. The span must stay valid for the duration of the call.
  std::span<const std::uint8_t> extender_mask;
  // Optional cooperative wall-clock budget (null = unlimited), polled once
  // per user scan / insertion. On expiry the search stops and returns its
  // best-so-far assignment — always valid, possibly not locally optimal.
  // An unexpired deadline never alters the result.
  const util::Deadline* deadline = nullptr;
  // Optional prebuilt SoA view of the network. When it matches the network's
  // current version, the search borrows its reciprocal-rate matrix instead
  // of rebuilding the O(U x E) placement tables per call. Stale or null
  // views are ignored (the tables are built locally).
  const model::NetworkSoA* soa = nullptr;
  // Optional scratch arena for the search state (per-extender accumulators,
  // memos, swap aggregates). The search only allocates, never resets: a
  // caller that resets the arena between solves runs them allocation-free
  // in steady state. Null = a call-local arena.
  util::SolverArena* arena = nullptr;
  // In-solve parallelism: when non-null, SolvePhase2MultiStart runs its
  // unique starts concurrently on this pool and merges deterministically by
  // start index — byte-identical to the serial path at any thread count
  // (provided the deadline does not expire mid-solve; expiry degrades to
  // valid best-so-far results whose identity depends on timing, exactly as
  // it does serially). The pool outlives the call; a size-1 pool runs
  // entirely on the caller.
  util::ThreadPool* pool = nullptr;
  // Per-start scratch arenas for the parallel path (each concurrent start
  // needs its own). Grown to the start count on demand and reset per start;
  // a caller that keeps the deque alive across solves makes the parallel
  // starts allocation-free in steady state. Null = call-local arenas.
  std::deque<util::SolverArena>* start_arenas = nullptr;
};

// Objective value of a (possibly partial) assignment under the selected
// Phase-II objective.
double Phase2Value(const model::Network& net, const model::Assignment& assign,
                   Phase2Objective objective, const model::EvalOptions& eval);

// Insert each user of `users` (in the given order) at the extender that
// maximizes the objective increase, respecting reachability and B_j.
// Modifies `assign` in place. Users already assigned are skipped.
void GreedyInsert(const model::Network& net, model::Assignment& assign,
                  const std::vector<std::size_t>& users,
                  const LocalSearchOptions& options = {});

struct LocalSearchStats {
  std::size_t passes = 0;
  std::size_t moves = 0;
  double initial_value = 0.0;
  double final_value = 0.0;
  // True iff the search stopped early because options.deadline expired.
  bool deadline_hit = false;
};

// Repeatedly relocate single users from `movable` to better extenders until
// no move improves the objective by more than the tolerance.
LocalSearchStats RelocateLocalSearch(const model::Network& net,
                                     model::Assignment& assign,
                                     const std::vector<std::size_t>& movable,
                                     const LocalSearchOptions& options = {});

// Full Phase-II solve with multi-start: greedy insertion of `movable` under
// several orderings (given order, best-rate-descending, best-rate-ascending),
// each followed by relocation/swap local search; the best result is written
// back into `assign`. Users already assigned in `assign` are held fixed.
// Returns the best objective value found.
double SolvePhase2MultiStart(const model::Network& net,
                             model::Assignment& assign,
                             const std::vector<std::size_t>& movable,
                             const LocalSearchOptions& options = {});

}  // namespace wolt::assign
