#include "assign/joint.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "assign/brute_force.h"
#include "obs/obs.h"
#include "wifi/channels.h"

namespace wolt::assign {
namespace {

std::uint64_t CheckedPow(std::uint64_t base, std::uint64_t exp,
                         std::uint64_t limit) {
  std::uint64_t result = 1;
  for (std::uint64_t k = 0; k < exp; ++k) {
    if (result > limit / base) return limit + 1;
    result *= base;
  }
  return result;
}

wifi::ChannelPlanParams PlanParams(const JointOptions& options) {
  if (options.num_channels <= 0) {
    throw std::invalid_argument("need at least one channel");
  }
  wifi::ChannelPlanParams p;
  p.num_channels = options.num_channels;
  p.interference_range_m = options.carrier_sense_range_m;
  return p;
}

// The scoring options for a candidate plan: caller's model with the plan
// installed (and any explicit contention domains cleared — the plan is the
// single source of co-channel truth inside this solver).
model::EvalOptions OverlapOptions(const JointOptions& options,
                                  std::vector<int> channels) {
  model::EvalOptions eval = options.eval;
  eval.wifi_contention_domain.clear();
  eval.wifi_channel = std::move(channels);
  eval.carrier_sense_range_m = options.carrier_sense_range_m;
  return eval;
}

}  // namespace

double EvaluateUnderOverlap(const model::Network& net,
                            const model::Assignment& assignment,
                            const std::vector<int>& channels,
                            const JointOptions& options) {
  const model::Evaluator evaluator(OverlapOptions(options, channels));
  return evaluator.AggregateThroughput(net, assignment);
}

JointResult SolveJointNaive(const model::Network& net,
                            const JointAssociator& associate,
                            const JointOptions& options) {
  const wifi::ChannelPlanParams params = PlanParams(options);
  // Associate exactly as the paper would: plan-blind, every extender
  // presumed isolated.
  model::EvalOptions blind = options.eval;
  blind.wifi_contention_domain.clear();
  blind.wifi_channel.clear();
  const model::Assignment none(net.NumUsers());

  JointResult r;
  r.assignment = associate(net, blind, none, options.deadline);
  // Then colour the interference graph without looking at the association.
  r.channels = wifi::AssignChannels(net, params);
  // ... and score the pair under the model where overlap actually costs.
  r.aggregate_mbps = EvaluateUnderOverlap(net, r.assignment, r.channels,
                                          options);
  r.deadline_hit = util::DeadlineExpired(options.deadline);
  return r;
}

JointResult SolveJointAlternating(const model::Network& net,
                                  const JointAssociator& associate,
                                  const JointOptions& options) {
  const wifi::ChannelPlanParams params = PlanParams(options);
  if (obs::MetricsScope* s = obs::CurrentScope()) s->joint.solves.Add(1);

  // Seed from the naive pair: every later step keeps only strict
  // improvements, so alternating >= naive is structural, and an expired
  // deadline at any point still leaves a valid incumbent.
  JointResult best = SolveJointNaive(net, associate, options);
  best.rounds = 0;
  best.converged = false;

  std::vector<double> weights(net.NumExtenders(), 0.0);
  for (int round = 1; round <= options.max_rounds; ++round) {
    if (util::DeadlineExpired(options.deadline)) break;

    // Recolour with association-weighted interference degrees: an
    // extender's weight is its current user load, so heavily loaded
    // neighbourhoods get first pick of clean channels and lightly loaded
    // cells absorb the collisions.
    std::fill(weights.begin(), weights.end(), 0.0);
    for (std::size_t i = 0; i < net.NumUsers(); ++i) {
      const int e = best.assignment.ExtenderOf(i);
      if (e >= 0) weights[static_cast<std::size_t>(e)] += 1.0;
    }
    std::vector<int> plan =
        wifi::AssignChannelsWeighted(net, weights, params);
    if (obs::MetricsScope* s = obs::CurrentScope()) s->joint.recolours.Add(1);

    if (util::DeadlineExpired(options.deadline)) break;

    // Reassociate under the candidate plan (the associator sees the derived
    // co-channel contention through eval.wifi_channel).
    model::Assignment cand = associate(net, OverlapOptions(options, plan),
                                       best.assignment, options.deadline);
    const double value = EvaluateUnderOverlap(net, cand, plan, options);

    best.rounds = round;
    if (obs::MetricsScope* s = obs::CurrentScope()) s->joint.rounds.Add(1);
    if (value > best.aggregate_mbps) {
      best.assignment = std::move(cand);
      best.channels = std::move(plan);
      best.aggregate_mbps = value;
      if (obs::MetricsScope* s = obs::CurrentScope()) {
        s->joint.improvements.Add(1);
      }
    } else {
      // No strict improvement: the association/recolour pair reached a
      // fixed point (re-running would regenerate the same candidate).
      best.converged = true;
      break;
    }
  }

  best.deadline_hit = util::DeadlineExpired(options.deadline);
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    if (best.converged) s->joint.converged.Add(1);
    if (best.deadline_hit) s->joint.deadline_hits.Add(1);
  }
  return best;
}

JointResult SolveJointBruteForce(const model::Network& net,
                                 const JointOptions& options) {
  PlanParams(options);  // validates num_channels
  const std::size_t num_ext = net.NumExtenders();
  if (num_ext == 0) throw std::invalid_argument("no extenders");

  const std::uint64_t base =
      static_cast<std::uint64_t>(options.num_channels);
  const std::uint64_t plans =
      CheckedPow(base, num_ext, options.max_combinations);
  const std::uint64_t choices = static_cast<std::uint64_t>(num_ext) +
                                (options.allow_unassigned ? 1 : 0);
  const std::uint64_t per_plan =
      CheckedPow(choices, net.NumUsers(), options.max_combinations);
  if (plans > options.max_combinations ||
      per_plan > options.max_combinations / plans) {
    throw std::invalid_argument("joint brute-force search space too large");
  }

  JointResult best;
  bool found = false;
  std::vector<int> plan(num_ext, 0);
  while (true) {
    if (obs::MetricsScope* s = obs::CurrentScope()) s->joint.bf_plans.Add(1);
    BruteForceOptions bo;
    bo.max_combinations = options.max_combinations;
    bo.allow_unassigned = options.allow_unassigned;
    bo.eval = OverlapOptions(options, plan);
    const BruteForceResult r = SolveBruteForce(net, bo);
    best.evaluated += r.evaluated;
    // Strict > keeps the first (lowest-odometer) plan on ties, so the
    // reference is a pure function of the instance.
    if (!found || r.best_aggregate_mbps > best.aggregate_mbps) {
      found = true;
      best.aggregate_mbps = r.best_aggregate_mbps;
      best.assignment = r.best;
      best.channels = plan;
    }
    std::size_t k = 0;
    while (k < num_ext) {
      if (static_cast<std::uint64_t>(++plan[k]) < base) break;
      plan[k] = 0;
      ++k;
    }
    if (k == num_ext) break;
  }
  return best;
}

}  // namespace wolt::assign
