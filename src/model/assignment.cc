#include "model/assignment.h"

#include <stdexcept>

namespace wolt::model {

std::size_t Assignment::AssignedCount() const {
  std::size_t count = 0;
  for (int e : extender_of_) {
    if (e != kUnassigned) ++count;
  }
  return count;
}

std::vector<std::size_t> Assignment::UsersOf(std::size_t extender) const {
  std::vector<std::size_t> users;
  for (std::size_t i = 0; i < extender_of_.size(); ++i) {
    if (extender_of_[i] == static_cast<int>(extender)) users.push_back(i);
  }
  return users;
}

std::vector<int> Assignment::LoadVector(std::size_t num_extenders) const {
  std::vector<int> load(num_extenders, 0);
  for (int e : extender_of_) {
    if (e == kUnassigned) continue;
    if (e < 0 || static_cast<std::size_t>(e) >= num_extenders) {
      throw std::out_of_range("assignment references unknown extender");
    }
    ++load[static_cast<std::size_t>(e)];
  }
  return load;
}

std::vector<std::size_t> Assignment::ActiveExtenders(
    std::size_t num_extenders) const {
  const std::vector<int> load = LoadVector(num_extenders);
  std::vector<std::size_t> active;
  for (std::size_t j = 0; j < num_extenders; ++j) {
    if (load[j] > 0) active.push_back(j);
  }
  return active;
}

bool Assignment::IsCompleteFor(const Network& net) const {
  if (NumUsers() != net.NumUsers()) return false;
  for (std::size_t i = 0; i < NumUsers(); ++i) {
    if (!IsAssigned(i)) return false;
  }
  return IsValidFor(net);
}

bool Assignment::IsValidFor(const Network& net) const {
  if (NumUsers() != net.NumUsers()) return false;
  std::vector<int> load(net.NumExtenders(), 0);
  for (std::size_t i = 0; i < NumUsers(); ++i) {
    const int e = extender_of_[i];
    if (e == kUnassigned) continue;
    if (e < 0 || static_cast<std::size_t>(e) >= net.NumExtenders()) {
      return false;
    }
    if (net.WifiRate(i, static_cast<std::size_t>(e)) <= 0.0) return false;
    ++load[static_cast<std::size_t>(e)];
  }
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    const int cap = net.MaxUsers(j);
    if (cap > 0 && load[j] > cap) return false;
  }
  return true;
}

std::size_t Assignment::CountReassignments(const Assignment& before,
                                           const Assignment& after) {
  if (before.NumUsers() != after.NumUsers()) {
    throw std::invalid_argument(
        "reassignment count requires aligned user sets");
  }
  std::size_t count = 0;
  for (std::size_t i = 0; i < before.NumUsers(); ++i) {
    if (before.IsAssigned(i) && before.ExtenderOf(i) != after.ExtenderOf(i)) {
      ++count;
    }
  }
  return count;
}

std::string Assignment::ToString() const {
  std::string out = "[";
  for (std::size_t i = 0; i < extender_of_.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(i) + "->";
    out += extender_of_[i] == kUnassigned ? "?"
                                          : std::to_string(extender_of_[i]);
  }
  out += "]";
  return out;
}

}  // namespace wolt::model
