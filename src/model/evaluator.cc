#include "model/evaluator.h"

#include <cmath>
#include <stdexcept>

#include "plc/timeshare.h"

namespace wolt::model {
namespace {

constexpr double kBalanceTolerance = 1e-9;

}  // namespace

const char* ToString(PlcSharing s) {
  switch (s) {
    case PlcSharing::kMaxMinActive:
      return "maxmin-active";
    case PlcSharing::kEqualActive:
      return "equal-active";
    case PlcSharing::kEqualAll:
      return "equal-all";
  }
  return "?";
}

const char* ToString(Bottleneck b) {
  switch (b) {
    case Bottleneck::kIdle:
      return "idle";
    case Bottleneck::kWifi:
      return "wifi";
    case Bottleneck::kPlc:
      return "plc";
    case Bottleneck::kBalanced:
      return "balanced";
  }
  return "?";
}

double WifiCellThroughput(const std::vector<double>& user_rates) {
  if (user_rates.empty()) return 0.0;
  double inv_sum = 0.0;
  for (double r : user_rates) {
    if (r <= 0.0) throw std::invalid_argument("non-positive WiFi rate");
    inv_sum += 1.0 / r;
  }
  return static_cast<double>(user_rates.size()) / inv_sum;
}

CellAllocation WifiCellAllocation(const std::vector<double>& user_rates,
                                  const std::vector<double>& demands_mbps,
                                  double airtime) {
  if (user_rates.size() != demands_mbps.size()) {
    throw std::invalid_argument("rates/demands size mismatch");
  }
  if (airtime < 0.0 || airtime > 1.0) {
    throw std::invalid_argument("airtime must be in [0, 1]");
  }
  const std::size_t n = user_rates.size();
  CellAllocation alloc;
  alloc.user_throughput_mbps.assign(n, 0.0);
  if (n == 0) return alloc;

  for (std::size_t i = 0; i < n; ++i) {
    if (user_rates[i] <= 0.0) {
      throw std::invalid_argument("non-positive WiFi rate");
    }
    if (demands_mbps[i] < 0.0) {
      throw std::invalid_argument("negative demand");
    }
  }

  // Raise a common throughput level over the backlogged users; users whose
  // demand lies below the level freeze at their demand and return their
  // airtime. Each round freezes at least one user, so O(n) rounds.
  std::vector<std::size_t> backlogged(n);
  for (std::size_t i = 0; i < n; ++i) backlogged[i] = i;
  while (!backlogged.empty() && airtime > 1e-15) {
    double inv_sum = 0.0;
    for (std::size_t i : backlogged) inv_sum += 1.0 / user_rates[i];
    const double level = airtime / inv_sum;
    std::vector<std::size_t> still;
    bool any_frozen = false;
    for (std::size_t i : backlogged) {
      const double d = demands_mbps[i];
      if (d > 0.0 && d <= level) {
        alloc.user_throughput_mbps[i] = d;
        airtime -= d / user_rates[i];
        any_frozen = true;
      } else {
        still.push_back(i);
      }
    }
    if (!any_frozen) {
      for (std::size_t i : still) alloc.user_throughput_mbps[i] = level;
      break;
    }
    backlogged = std::move(still);
  }
  for (double x : alloc.user_throughput_mbps) alloc.total_mbps += x;
  return alloc;
}

std::vector<double> MaxMinWithCaps(const std::vector<double>& caps,
                                   double total) {
  const std::size_t n = caps.size();
  std::vector<double> out(n, 0.0);
  if (n == 0 || total <= 0.0) return out;
  for (double c : caps) {
    if (c < 0.0) throw std::invalid_argument("negative cap");
  }
  std::vector<std::size_t> open;
  for (std::size_t i = 0; i < n; ++i) {
    if (caps[i] > 0.0) open.push_back(i);
  }
  double remaining = total;
  while (!open.empty() && remaining > 1e-15) {
    const double share = remaining / static_cast<double>(open.size());
    std::vector<std::size_t> still;
    bool any_capped = false;
    for (std::size_t i : open) {
      if (caps[i] <= share) {
        out[i] = caps[i];
        remaining -= caps[i];
        any_capped = true;
      } else {
        still.push_back(i);
      }
    }
    if (!any_capped) {
      for (std::size_t i : still) out[i] = share;
      remaining = 0.0;
      break;
    }
    open = std::move(still);
  }
  return out;
}

EvalResult Evaluator::Evaluate(const Network& net,
                               const Assignment& assign) const {
  if (assign.NumUsers() != net.NumUsers()) {
    throw std::invalid_argument("assignment/network user count mismatch");
  }
  const std::size_t num_ext = net.NumExtenders();

  EvalResult result;
  result.extenders.resize(num_ext);
  result.user_throughput_mbps.assign(net.NumUsers(), 0.0);

  // WiFi side: per-extender harmonic sums over associated users.
  std::vector<double> inv_rate_sum(num_ext, 0.0);
  std::vector<int> load(num_ext, 0);
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    const int e = assign.ExtenderOf(i);
    if (e == Assignment::kUnassigned) continue;
    if (e < 0 || static_cast<std::size_t>(e) >= num_ext) {
      throw std::invalid_argument("assignment references unknown extender");
    }
    const double r = net.WifiRate(i, static_cast<std::size_t>(e));
    if (r <= 0.0) {
      throw std::invalid_argument("user assigned to unreachable extender");
    }
    inv_rate_sum[static_cast<std::size_t>(e)] += 1.0 / r;
    ++load[static_cast<std::size_t>(e)];
  }

  // Does any user carry a finite offered load? (0 = saturated, the paper's
  // assumption; the common case takes the cheap harmonic-sum path.)
  bool any_demand = false;
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    if (assign.IsAssigned(i) && net.UserDemand(i) > 0.0) {
      any_demand = true;
      break;
    }
  }

  // Co-channel contention: active cells in one domain time-share the air.
  // peers[j] = number of active cells contending with extender j (1 when
  // every extender has its own channel).
  std::vector<double> peers(num_ext, 1.0);
  if (!options_.wifi_contention_domain.empty()) {
    if (options_.wifi_contention_domain.size() != num_ext) {
      throw std::invalid_argument("contention domain size mismatch");
    }
    std::vector<int> active_in_domain;
    for (std::size_t j = 0; j < num_ext; ++j) {
      const int d = options_.wifi_contention_domain[j];
      if (d < 0) throw std::invalid_argument("negative domain id");
      if (static_cast<std::size_t>(d) >= active_in_domain.size()) {
        active_in_domain.resize(static_cast<std::size_t>(d) + 1, 0);
      }
      if (load[j] > 0) ++active_in_domain[static_cast<std::size_t>(d)];
    }
    for (std::size_t j = 0; j < num_ext; ++j) {
      if (load[j] == 0) continue;
      peers[j] = static_cast<double>(active_in_domain[static_cast<std::size_t>(
          options_.wifi_contention_domain[j])]);
    }
  }

  std::vector<double> wifi_demand(num_ext, 0.0);
  std::vector<double> plc_rates(num_ext, 0.0);
  // Per-extender per-user WiFi allocations (demand path only): the caps the
  // TCP re-sharing respects when PLC throttles the cell.
  std::vector<std::vector<std::size_t>> cell_users(any_demand ? num_ext : 0);
  std::vector<std::vector<double>> cell_caps(any_demand ? num_ext : 0);
  if (any_demand) {
    for (std::size_t i = 0; i < net.NumUsers(); ++i) {
      const int e = assign.ExtenderOf(i);
      if (e == Assignment::kUnassigned) continue;
      cell_users[static_cast<std::size_t>(e)].push_back(i);
    }
  }
  // Users camped on an extender whose power-line link is dead (c_j = 0,
  // e.g. a failure injected mid-run) get zero end-to-end throughput; the
  // extender consumes no PLC airtime.
  std::vector<bool> dead_backhaul(num_ext, false);
  for (std::size_t j = 0; j < num_ext; ++j) {
    plc_rates[j] = net.PlcRate(j);
    if (load[j] == 0) continue;
    ++result.active_extenders;
    if (plc_rates[j] <= 0.0) {
      dead_backhaul[j] = true;
      continue;  // leave wifi_demand at 0 so the airtime allocator skips it
    }
    if (any_demand) {
      std::vector<double> rates, demands;
      rates.reserve(cell_users[j].size());
      demands.reserve(cell_users[j].size());
      for (std::size_t i : cell_users[j]) {
        rates.push_back(net.WifiRate(i, j));
        demands.push_back(net.UserDemand(i));
      }
      const CellAllocation alloc =
          WifiCellAllocation(rates, demands, 1.0 / peers[j]);
      wifi_demand[j] = alloc.total_mbps;
      cell_caps[j] = alloc.user_throughput_mbps;
    } else {
      wifi_demand[j] =
          static_cast<double>(load[j]) / inv_rate_sum[j] / peers[j];
    }
  }

  // PLC side: airtime allocation, independently per contention domain
  // (extenders on separate power-line segments do not share airtime; with
  // the default single domain this is the paper's model verbatim).
  plc::TimeShareResult shares;
  shares.time_share.assign(num_ext, 0.0);
  shares.throughput.assign(num_ext, 0.0);
  std::vector<std::vector<std::size_t>> domain_members;
  for (std::size_t j = 0; j < num_ext; ++j) {
    const std::size_t d = static_cast<std::size_t>(net.PlcDomain(j));
    if (d >= domain_members.size()) domain_members.resize(d + 1);
    domain_members[d].push_back(j);
  }
  for (const auto& members : domain_members) {
    if (members.empty()) continue;
    std::vector<double> d_rates, d_demand;
    d_rates.reserve(members.size());
    d_demand.reserve(members.size());
    for (std::size_t j : members) {
      d_rates.push_back(plc_rates[j]);
      d_demand.push_back(wifi_demand[j]);
    }
    plc::TimeShareResult d_shares;
    switch (options_.plc_sharing) {
      case PlcSharing::kMaxMinActive:
        d_shares = plc::MaxMinTimeShare(d_rates, d_demand);
        break;
      case PlcSharing::kEqualActive:
        d_shares = plc::EqualTimeShare(d_rates, d_demand);
        break;
      case PlcSharing::kEqualAll: {
        // Every extender of the domain owns 1/|A_d| of its airtime,
        // whether or not it uses it.
        d_shares.time_share.assign(members.size(), 0.0);
        d_shares.throughput.assign(members.size(), 0.0);
        const double share = 1.0 / static_cast<double>(members.size());
        for (std::size_t k = 0; k < members.size(); ++k) {
          if (d_demand[k] <= 0.0) continue;
          d_shares.time_share[k] = share;
          d_shares.throughput[k] =
              std::min(d_demand[k], share * d_rates[k]);
        }
        break;
      }
    }
    for (std::size_t k = 0; k < members.size(); ++k) {
      shares.time_share[members[k]] = d_shares.time_share[k];
      shares.throughput[members[k]] = d_shares.throughput[k];
    }
  }

  // Per-domain population counts for bottleneck attribution.
  std::vector<int> domain_size(domain_members.size(), 0);
  std::vector<int> domain_active(domain_members.size(), 0);
  for (std::size_t j = 0; j < num_ext; ++j) {
    const std::size_t d = static_cast<std::size_t>(net.PlcDomain(j));
    ++domain_size[d];
    if (load[j] > 0) ++domain_active[d];
  }

  for (std::size_t j = 0; j < num_ext; ++j) {
    ExtenderReport& rep = result.extenders[j];
    rep.num_users = load[j];
    rep.wifi_throughput_mbps = wifi_demand[j];
    rep.plc_time_share = shares.time_share[j];
    rep.plc_throughput_mbps = shares.time_share[j] * plc_rates[j];
    if (load[j] == 0) {
      rep.bottleneck = Bottleneck::kIdle;
      continue;
    }
    if (dead_backhaul[j]) {
      rep.bottleneck = Bottleneck::kPlc;  // the backhaul delivers nothing
      continue;
    }
    rep.end_to_end_mbps =
        std::min(rep.wifi_throughput_mbps, rep.plc_throughput_mbps);
    // Demand fully met -> the WiFi side limits (under max-min allocation a
    // sated extender's airtime is capped at exactly its demand, so comparing
    // wifi vs allocated-plc throughput would misread it as balanced). An
    // extender is "balanced" only when its demand coincides with the equal
    // airtime share it is entitled to within its contention domain.
    const std::size_t d = static_cast<std::size_t>(net.PlcDomain(j));
    const double share_denominator =
        options_.plc_sharing == PlcSharing::kEqualAll
            ? static_cast<double>(domain_size[d])
            : static_cast<double>(domain_active[d]);
    const double equal_share_capacity = plc_rates[j] / share_denominator;
    const bool demand_met = rep.end_to_end_mbps >=
                            rep.wifi_throughput_mbps - kBalanceTolerance;
    if (std::abs(rep.wifi_throughput_mbps - equal_share_capacity) <=
        kBalanceTolerance) {
      rep.bottleneck = Bottleneck::kBalanced;
    } else {
      rep.bottleneck = demand_met ? Bottleneck::kWifi : Bottleneck::kPlc;
    }
    result.aggregate_mbps += rep.end_to_end_mbps;
  }

  // TCP shares the extender's bottleneck throughput fairly among its users
  // (§IV-A): equal split when everyone is saturated, max-min with each
  // user's WiFi allocation as the cap otherwise.
  if (any_demand) {
    for (std::size_t j = 0; j < num_ext; ++j) {
      if (load[j] == 0 || dead_backhaul[j]) continue;
      const std::vector<double> split = MaxMinWithCaps(
          cell_caps[j], result.extenders[j].end_to_end_mbps);
      for (std::size_t k = 0; k < cell_users[j].size(); ++k) {
        result.user_throughput_mbps[cell_users[j][k]] = split[k];
      }
    }
  } else {
    for (std::size_t i = 0; i < net.NumUsers(); ++i) {
      const int e = assign.ExtenderOf(i);
      if (e == Assignment::kUnassigned) continue;
      const ExtenderReport& rep =
          result.extenders[static_cast<std::size_t>(e)];
      result.user_throughput_mbps[i] =
          rep.end_to_end_mbps / static_cast<double>(rep.num_users);
    }
  }
  return result;
}

double Evaluator::AggregateThroughput(const Network& net,
                                      const Assignment& assign) const {
  return Evaluate(net, assign).aggregate_mbps;
}

}  // namespace wolt::model
