#include "model/evaluator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"

namespace wolt::model {
namespace {

constexpr double kBalanceTolerance = 1e-9;

}  // namespace

namespace detail {

void MaxMinSharesInPlace(const int* members, std::size_t count,
                         const double* rates, const double* demands,
                         double* time_share, std::size_t* idx) {
  std::size_t m = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t j = static_cast<std::size_t>(members[k]);
    time_share[j] = 0.0;
    if (demands[j] > 0.0) idx[m++] = j;
  }
  double remaining = 1.0;
  std::uint64_t rounds = 0;
  // Each round either sates at least one extender or terminates, so this
  // loop runs at most `count` times.
  while (m > 0 && remaining > 0.0) {
    ++rounds;
    const double share = remaining / static_cast<double>(m);
    std::size_t w = 0;
    bool any_sated = false;
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t j = idx[k];
      const double needed = demands[j] / rates[j];
      if (needed <= share) {
        time_share[j] += needed;
        any_sated = true;
      } else {
        idx[w++] = j;
      }
    }
    if (!any_sated) {
      for (std::size_t k = 0; k < w; ++k) time_share[idx[k]] += share;
      break;
    }
    double used = 0.0;
    for (std::size_t k = 0; k < count; ++k) {
      used += time_share[static_cast<std::size_t>(members[k])];
    }
    remaining = std::max(0.0, 1.0 - used);
    m = w;
  }
  if (rounds > 0) {
    if (obs::MetricsScope* s = obs::CurrentScope()) {
      s->eval.maxmin_rounds.Add(rounds);
    }
  }
}

void EqualSharesInPlace(const int* members, std::size_t count,
                        const double* demands, double* time_share,
                        bool denominator_all) {
  std::size_t active = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t j = static_cast<std::size_t>(members[k]);
    time_share[j] = 0.0;
    if (demands[j] > 0.0) ++active;
  }
  if (active == 0) return;
  const double share =
      1.0 / static_cast<double>(denominator_all ? count : active);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t j = static_cast<std::size_t>(members[k]);
    if (demands[j] > 0.0) time_share[j] = share;
  }
}

}  // namespace detail

const char* ToString(PlcSharing s) {
  switch (s) {
    case PlcSharing::kMaxMinActive:
      return "maxmin-active";
    case PlcSharing::kEqualActive:
      return "equal-active";
    case PlcSharing::kEqualAll:
      return "equal-all";
  }
  return "?";
}

const char* ToString(Bottleneck b) {
  switch (b) {
    case Bottleneck::kIdle:
      return "idle";
    case Bottleneck::kWifi:
      return "wifi";
    case Bottleneck::kPlc:
      return "plc";
    case Bottleneck::kBalanced:
      return "balanced";
  }
  return "?";
}

double WifiCellThroughput(const std::vector<double>& user_rates) {
  if (user_rates.empty()) return 0.0;
  double inv_sum = 0.0;
  for (double r : user_rates) {
    if (r <= 0.0) throw std::invalid_argument("non-positive WiFi rate");
    inv_sum += 1.0 / r;
  }
  return static_cast<double>(user_rates.size()) / inv_sum;
}

CellAllocation WifiCellAllocation(const std::vector<double>& user_rates,
                                  const std::vector<double>& demands_mbps,
                                  double airtime) {
  if (user_rates.size() != demands_mbps.size()) {
    throw std::invalid_argument("rates/demands size mismatch");
  }
  if (airtime < 0.0 || airtime > 1.0) {
    throw std::invalid_argument("airtime must be in [0, 1]");
  }
  const std::size_t n = user_rates.size();
  CellAllocation alloc;
  alloc.user_throughput_mbps.assign(n, 0.0);
  if (n == 0) return alloc;

  for (std::size_t i = 0; i < n; ++i) {
    if (user_rates[i] <= 0.0) {
      throw std::invalid_argument("non-positive WiFi rate");
    }
    if (demands_mbps[i] < 0.0) {
      throw std::invalid_argument("negative demand");
    }
  }

  // Raise a common throughput level over the backlogged users; users whose
  // demand lies below the level freeze at their demand and return their
  // airtime. Each round freezes at least one user, so O(n) rounds. One
  // index buffer, compacted in place (no per-round reallocation).
  std::vector<std::size_t> backlogged(n);
  for (std::size_t i = 0; i < n; ++i) backlogged[i] = i;
  std::size_t m = n;
  while (m > 0 && airtime > 1e-15) {
    double inv_sum = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      inv_sum += 1.0 / user_rates[backlogged[k]];
    }
    const double level = airtime / inv_sum;
    std::size_t w = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t i = backlogged[k];
      const double d = demands_mbps[i];
      if (d > 0.0 && d <= level) {
        alloc.user_throughput_mbps[i] = d;
        airtime -= d / user_rates[i];
      } else {
        backlogged[w++] = i;
      }
    }
    if (w == m) {
      for (std::size_t k = 0; k < m; ++k) {
        alloc.user_throughput_mbps[backlogged[k]] = level;
      }
      break;
    }
    m = w;
  }
  for (double x : alloc.user_throughput_mbps) alloc.total_mbps += x;
  return alloc;
}

std::vector<double> MaxMinWithCaps(const std::vector<double>& caps,
                                   double total) {
  const std::size_t n = caps.size();
  std::vector<double> out(n, 0.0);
  if (n == 0 || total <= 0.0) return out;
  for (double c : caps) {
    if (c < 0.0) throw std::invalid_argument("negative cap");
  }
  // One index buffer over the uncapped users, compacted in place.
  std::vector<std::size_t> open;
  open.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (caps[i] > 0.0) open.push_back(i);
  }
  std::size_t m = open.size();
  double remaining = total;
  while (m > 0 && remaining > 1e-15) {
    const double share = remaining / static_cast<double>(m);
    std::size_t w = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t i = open[k];
      if (caps[i] <= share) {
        out[i] = caps[i];
        remaining -= caps[i];
      } else {
        open[w++] = i;
      }
    }
    if (w == m) {
      for (std::size_t k = 0; k < m; ++k) out[open[k]] = share;
      break;
    }
    m = w;
  }
  return out;
}

EvalResult Evaluator::Evaluate(const Network& net,
                               const Assignment& assign) const {
  EvalScratch scratch;
  Evaluate(net, assign, scratch);
  return std::move(scratch.result);
}

const std::vector<int>* Evaluator::ResolveWifiDomains(
    const Network& net, EvalScratch& scratch) const {
  const std::size_t num_ext = net.NumExtenders();
  if (!options_.wifi_contention_domain.empty()) {
    if (!options_.wifi_channel.empty()) {
      throw std::invalid_argument(
          "wifi_contention_domain and wifi_channel are mutually exclusive");
    }
    if (options_.wifi_contention_domain.size() != num_ext) {
      throw std::invalid_argument("contention domain size mismatch");
    }
    for (int d : options_.wifi_contention_domain) {
      if (d < 0) throw std::invalid_argument("negative domain id");
    }
    return &options_.wifi_contention_domain;
  }
  if (options_.wifi_channel.empty()) return nullptr;
  if (options_.wifi_channel.size() != num_ext) {
    throw std::invalid_argument("channel plan size mismatch");
  }
  for (int c : options_.wifi_channel) {
    if (c < 0) throw std::invalid_argument("negative channel index");
  }
  if (options_.carrier_sense_range_m < 0.0) {
    throw std::invalid_argument("negative carrier-sense range");
  }
  if (scratch.chan_cache_valid && scratch.chan_cache_version == net.Version() &&
      scratch.chan_cache_range == options_.carrier_sense_range_m &&
      scratch.chan_cache_plan == options_.wifi_channel) {
    return &scratch.channel_domains;
  }

  // Union-find (union by min id, path halving) over co-channel extender
  // pairs within carrier-sense range. Co-channel cells that can hear each
  // other defer to each other's transmissions, so a whole connected
  // component shares one airtime budget.
  std::vector<int>& parent = scratch.channel_parent;
  parent.resize(num_ext);
  for (std::size_t j = 0; j < num_ext; ++j) parent[j] = static_cast<int>(j);
  const auto find = [&parent](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (std::size_t a = 0; a < num_ext; ++a) {
    for (std::size_t b = a + 1; b < num_ext; ++b) {
      if (options_.wifi_channel[a] != options_.wifi_channel[b]) continue;
      if (Distance(net.ExtenderAt(a).position, net.ExtenderAt(b).position) >
          options_.carrier_sense_range_m) {
        continue;
      }
      const int ra = find(static_cast<int>(a));
      const int rb = find(static_cast<int>(b));
      if (ra == rb) continue;
      // Attach the larger root under the smaller so every component's root
      // is its minimum extender id.
      parent[static_cast<std::size_t>(std::max(ra, rb))] = std::min(ra, rb);
    }
  }
  // Full compression, then label components by first occurrence. With
  // min-id roots the root IS the first occurrence, so labels are
  // deterministic and dense.
  for (std::size_t j = 0; j < num_ext; ++j) {
    parent[j] = find(static_cast<int>(j));
  }
  scratch.channel_domains.assign(num_ext, -1);
  int next_label = 0;
  for (std::size_t j = 0; j < num_ext; ++j) {
    if (parent[j] == static_cast<int>(j)) {
      scratch.channel_domains[j] = next_label++;
    }
  }
  for (std::size_t j = 0; j < num_ext; ++j) {
    scratch.channel_domains[j] =
        scratch.channel_domains[static_cast<std::size_t>(parent[j])];
  }

  scratch.chan_cache_plan = options_.wifi_channel;
  scratch.chan_cache_range = options_.carrier_sense_range_m;
  scratch.chan_cache_version = net.Version();
  scratch.chan_cache_valid = true;
  return &scratch.channel_domains;
}

const EvalResult& Evaluator::EvaluateReference(const Network& net,
                                               const Assignment& assign,
                                               EvalScratch& scratch) const {
  if (assign.NumUsers() != net.NumUsers()) {
    throw std::invalid_argument("assignment/network user count mismatch");
  }
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->eval.evaluations.Add(1);
  }
  const std::size_t num_ext = net.NumExtenders();
  const std::size_t num_users = net.NumUsers();

  EvalResult& result = scratch.result;
  result.extenders.assign(num_ext, ExtenderReport{});
  result.user_throughput_mbps.assign(num_users, 0.0);
  result.aggregate_mbps = 0.0;
  result.active_extenders = 0;

  // WiFi side: per-extender harmonic sums over associated users.
  scratch.inv_rate_sum.assign(num_ext, 0.0);
  scratch.load.assign(num_ext, 0);
  for (std::size_t i = 0; i < num_users; ++i) {
    const int e = assign.ExtenderOf(i);
    if (e == Assignment::kUnassigned) continue;
    if (e < 0 || static_cast<std::size_t>(e) >= num_ext) {
      throw std::invalid_argument("assignment references unknown extender");
    }
    const double r = net.WifiRate(i, static_cast<std::size_t>(e));
    if (r <= 0.0) {
      throw std::invalid_argument("user assigned to unreachable extender");
    }
    scratch.inv_rate_sum[static_cast<std::size_t>(e)] += 1.0 / r;
    ++scratch.load[static_cast<std::size_t>(e)];
  }

  // Does any user carry a finite offered load? (0 = saturated, the paper's
  // assumption; the common case takes the cheap harmonic-sum path.)
  bool any_demand = false;
  for (std::size_t i = 0; i < num_users; ++i) {
    if (assign.IsAssigned(i) && net.UserDemand(i) > 0.0) {
      any_demand = true;
      break;
    }
  }

  // Co-channel contention: active cells in one domain time-share the air.
  // peers[j] = number of active cells contending with extender j (1 when
  // every extender has its own channel). Domains come either verbatim from
  // wifi_contention_domain or derived from a wifi_channel plan + geometry.
  scratch.peers.assign(num_ext, 1.0);
  if (const std::vector<int>* wifi_domain = ResolveWifiDomains(net, scratch)) {
    scratch.active_in_wifi_domain.clear();
    for (std::size_t j = 0; j < num_ext; ++j) {
      const int d = (*wifi_domain)[j];
      if (static_cast<std::size_t>(d) >= scratch.active_in_wifi_domain.size()) {
        scratch.active_in_wifi_domain.resize(static_cast<std::size_t>(d) + 1,
                                             0);
      }
      if (scratch.load[j] > 0) {
        ++scratch.active_in_wifi_domain[static_cast<std::size_t>(d)];
      }
    }
    for (std::size_t j = 0; j < num_ext; ++j) {
      if (scratch.load[j] == 0) continue;
      scratch.peers[j] = static_cast<double>(
          scratch.active_in_wifi_domain[static_cast<std::size_t>(
              (*wifi_domain)[j])]);
    }
  }

  scratch.wifi_demand.assign(num_ext, 0.0);
  scratch.plc_rates.assign(num_ext, 0.0);
  // Per-extender per-user WiFi allocations (demand path only): the caps the
  // TCP re-sharing respects when PLC throttles the cell.
  if (any_demand) {
    scratch.cell_users.resize(num_ext);
    scratch.cell_caps.resize(num_ext);
    for (std::size_t j = 0; j < num_ext; ++j) {
      scratch.cell_users[j].clear();
      scratch.cell_caps[j].clear();
    }
    for (std::size_t i = 0; i < num_users; ++i) {
      const int e = assign.ExtenderOf(i);
      if (e == Assignment::kUnassigned) continue;
      scratch.cell_users[static_cast<std::size_t>(e)].push_back(i);
    }
  }
  // Users camped on an extender whose power-line link is dead (c_j = 0,
  // e.g. a failure injected mid-run) get zero end-to-end throughput; the
  // extender consumes no PLC airtime.
  scratch.dead_backhaul.assign(num_ext, 0);
  for (std::size_t j = 0; j < num_ext; ++j) {
    scratch.plc_rates[j] = net.PlcRate(j);
    if (scratch.load[j] == 0) continue;
    ++result.active_extenders;
    if (scratch.plc_rates[j] <= 0.0) {
      scratch.dead_backhaul[j] = 1;
      continue;  // leave wifi_demand at 0 so the airtime allocator skips it
    }
    if (any_demand) {
      scratch.tmp_rates.clear();
      scratch.tmp_demands.clear();
      for (std::size_t i : scratch.cell_users[j]) {
        scratch.tmp_rates.push_back(net.WifiRate(i, j));
        scratch.tmp_demands.push_back(net.UserDemand(i));
      }
      const CellAllocation alloc = WifiCellAllocation(
          scratch.tmp_rates, scratch.tmp_demands, 1.0 / scratch.peers[j]);
      scratch.wifi_demand[j] = alloc.total_mbps;
      scratch.cell_caps[j] = alloc.user_throughput_mbps;
    } else {
      scratch.wifi_demand[j] = static_cast<double>(scratch.load[j]) /
                               scratch.inv_rate_sum[j] / scratch.peers[j];
    }
  }

  // PLC side: airtime allocation, independently per contention domain
  // (extenders on separate power-line segments do not share airtime; with
  // the default single domain this is the paper's model verbatim). Domains
  // are grouped CSR-style: counting sort into domain_items, no per-domain
  // vectors.
  std::size_t num_domains = 0;
  for (std::size_t j = 0; j < num_ext; ++j) {
    const std::size_t d = static_cast<std::size_t>(net.PlcDomain(j));
    num_domains = std::max(num_domains, d + 1);
  }
  scratch.domain_start.assign(num_domains + 1, 0);
  scratch.domain_size.assign(num_domains, 0);
  scratch.domain_active.assign(num_domains, 0);
  for (std::size_t j = 0; j < num_ext; ++j) {
    const std::size_t d = static_cast<std::size_t>(net.PlcDomain(j));
    ++scratch.domain_start[d + 1];
    ++scratch.domain_size[d];
    if (scratch.load[j] > 0) ++scratch.domain_active[d];
  }
  for (std::size_t d = 0; d < num_domains; ++d) {
    scratch.domain_start[d + 1] += scratch.domain_start[d];
  }
  scratch.domain_items.assign(num_ext, 0);
  {
    // Fill positions; reuse mm_idx as the per-domain write cursor.
    scratch.mm_idx.assign(num_domains, 0);
    for (std::size_t j = 0; j < num_ext; ++j) {
      const std::size_t d = static_cast<std::size_t>(net.PlcDomain(j));
      scratch.domain_items[static_cast<std::size_t>(
          scratch.domain_start[d]) +
                           scratch.mm_idx[d]++] = static_cast<int>(j);
    }
  }

  scratch.time_share.assign(num_ext, 0.0);
  scratch.mm_idx.assign(num_ext, 0);
  for (std::size_t d = 0; d < num_domains; ++d) {
    const std::size_t begin = static_cast<std::size_t>(scratch.domain_start[d]);
    const std::size_t count =
        static_cast<std::size_t>(scratch.domain_start[d + 1]) - begin;
    if (count == 0) continue;
    const int* members = scratch.domain_items.data() + begin;
    switch (options_.plc_sharing) {
      case PlcSharing::kMaxMinActive:
        detail::MaxMinSharesInPlace(members, count, scratch.plc_rates.data(),
                            scratch.wifi_demand.data(),
                            scratch.time_share.data(), scratch.mm_idx.data());
        break;
      case PlcSharing::kEqualActive:
        detail::EqualSharesInPlace(members, count, scratch.wifi_demand.data(),
                           scratch.time_share.data(),
                           /*denominator_all=*/false);
        break;
      case PlcSharing::kEqualAll:
        // Every extender of the domain owns 1/|A_d| of its airtime,
        // whether or not it uses it.
        detail::EqualSharesInPlace(members, count, scratch.wifi_demand.data(),
                           scratch.time_share.data(),
                           /*denominator_all=*/true);
        break;
    }
  }

  for (std::size_t j = 0; j < num_ext; ++j) {
    ExtenderReport& rep = result.extenders[j];
    rep.num_users = scratch.load[j];
    rep.wifi_throughput_mbps = scratch.wifi_demand[j];
    rep.plc_time_share = scratch.time_share[j];
    rep.plc_throughput_mbps = scratch.time_share[j] * scratch.plc_rates[j];
    if (scratch.load[j] == 0) {
      rep.bottleneck = Bottleneck::kIdle;
      continue;
    }
    if (scratch.dead_backhaul[j]) {
      rep.bottleneck = Bottleneck::kPlc;  // the backhaul delivers nothing
      continue;
    }
    rep.end_to_end_mbps =
        std::min(rep.wifi_throughput_mbps, rep.plc_throughput_mbps);
    // Demand fully met -> the WiFi side limits (under max-min allocation a
    // sated extender's airtime is capped at exactly its demand, so comparing
    // wifi vs allocated-plc throughput would misread it as balanced). An
    // extender is "balanced" only when its demand coincides with the equal
    // airtime share it is entitled to within its contention domain.
    const std::size_t d = static_cast<std::size_t>(net.PlcDomain(j));
    const double share_denominator =
        options_.plc_sharing == PlcSharing::kEqualAll
            ? static_cast<double>(scratch.domain_size[d])
            : static_cast<double>(scratch.domain_active[d]);
    const double equal_share_capacity =
        scratch.plc_rates[j] / share_denominator;
    const bool demand_met = rep.end_to_end_mbps >=
                            rep.wifi_throughput_mbps - kBalanceTolerance;
    if (std::abs(rep.wifi_throughput_mbps - equal_share_capacity) <=
        kBalanceTolerance) {
      rep.bottleneck = Bottleneck::kBalanced;
    } else {
      rep.bottleneck = demand_met ? Bottleneck::kWifi : Bottleneck::kPlc;
    }
    result.aggregate_mbps += rep.end_to_end_mbps;
  }

  if (obs::MetricsScope* s = obs::CurrentScope()) {
    std::uint64_t wifi = 0, plc = 0, balanced = 0, idle = 0, dead = 0;
    for (std::size_t j = 0; j < num_ext; ++j) {
      switch (result.extenders[j].bottleneck) {
        case Bottleneck::kWifi:
          ++wifi;
          break;
        case Bottleneck::kPlc:
          ++plc;
          break;
        case Bottleneck::kBalanced:
          ++balanced;
          break;
        case Bottleneck::kIdle:
          ++idle;
          break;
      }
      if (scratch.dead_backhaul[j]) ++dead;
    }
    if (wifi) s->eval.bottleneck_wifi.Add(wifi);
    if (plc) s->eval.bottleneck_plc.Add(plc);
    if (balanced) s->eval.bottleneck_balanced.Add(balanced);
    if (idle) s->eval.bottleneck_idle.Add(idle);
    if (dead) s->eval.dead_backhaul.Add(dead);
  }

  // TCP shares the extender's bottleneck throughput fairly among its users
  // (§IV-A): equal split when everyone is saturated, max-min with each
  // user's WiFi allocation as the cap otherwise.
  if (any_demand) {
    for (std::size_t j = 0; j < num_ext; ++j) {
      if (scratch.load[j] == 0 || scratch.dead_backhaul[j]) continue;
      const std::vector<double> split = MaxMinWithCaps(
          scratch.cell_caps[j], result.extenders[j].end_to_end_mbps);
      for (std::size_t k = 0; k < scratch.cell_users[j].size(); ++k) {
        result.user_throughput_mbps[scratch.cell_users[j][k]] = split[k];
      }
    }
  } else {
    for (std::size_t i = 0; i < num_users; ++i) {
      const int e = assign.ExtenderOf(i);
      if (e == Assignment::kUnassigned) continue;
      const ExtenderReport& rep =
          result.extenders[static_cast<std::size_t>(e)];
      result.user_throughput_mbps[i] =
          rep.end_to_end_mbps / static_cast<double>(rep.num_users);
    }
  }
  return result;
}

const EvalResult& Evaluator::Evaluate(const Network& net,
                                      const Assignment& assign,
                                      EvalScratch& scratch) const {
  if (assign.NumUsers() != net.NumUsers()) {
    throw std::invalid_argument("assignment/network user count mismatch");
  }
  scratch.soa.Refresh(net);
  const NetworkSoA& soa = scratch.soa;
  const std::size_t num_users = soa.num_users;
  const std::size_t num_ext = soa.num_extenders;
  const int* ext_of = assign.Data();

  // Demand-carrying evaluations take the reference path: cell-level demand
  // allocations couple users within a cell and are not expressible as the
  // per-extender reductions below. (A network with demands configured but
  // none of them on an assigned user still qualifies for the fast path.)
  if (soa.any_finite_demand) {
    for (std::size_t i = 0; i < num_users; ++i) {
      if (ext_of[i] != Assignment::kUnassigned && soa.demand[i] > 0.0) {
        return EvaluateReference(net, assign, scratch);
      }
    }
  }

  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->eval.evaluations.Add(1);
  }

  EvalResult& result = scratch.result;
  result.extenders.assign(num_ext, ExtenderReport{});
  result.user_throughput_mbps.assign(num_users, 0.0);
  result.aggregate_mbps = 0.0;
  result.active_extenders = 0;

  // WiFi side: per-extender harmonic sums, gathered from the contiguous
  // reciprocal-rate rows (1/r precomputed once per network version, so the
  // accumulation is an add per assigned user with no division and no
  // bounds-checked accessor).
  scratch.inv_rate_sum.assign(num_ext, 0.0);
  scratch.load.assign(num_ext, 0);
  double* sums = scratch.inv_rate_sum.data();
  int* load = scratch.load.data();
  const double* inv_rate = soa.inv_rate.data();
  for (std::size_t i = 0; i < num_users; ++i) {
    const int e = ext_of[i];
    if (e == Assignment::kUnassigned) continue;
    if (e < 0 || static_cast<std::size_t>(e) >= num_ext) {
      throw std::invalid_argument("assignment references unknown extender");
    }
    const double inv = inv_rate[i * num_ext + static_cast<std::size_t>(e)];
    if (inv == 0.0) {
      throw std::invalid_argument("user assigned to unreachable extender");
    }
    sums[static_cast<std::size_t>(e)] += inv;
    ++load[static_cast<std::size_t>(e)];
  }

  // Co-channel contention (same logic as the reference; rarely configured).
  scratch.peers.assign(num_ext, 1.0);
  if (const std::vector<int>* wifi_domain = ResolveWifiDomains(net, scratch)) {
    scratch.active_in_wifi_domain.clear();
    for (std::size_t j = 0; j < num_ext; ++j) {
      const int d = (*wifi_domain)[j];
      if (static_cast<std::size_t>(d) >= scratch.active_in_wifi_domain.size()) {
        scratch.active_in_wifi_domain.resize(static_cast<std::size_t>(d) + 1,
                                             0);
      }
      if (load[j] > 0) {
        ++scratch.active_in_wifi_domain[static_cast<std::size_t>(d)];
      }
    }
    for (std::size_t j = 0; j < num_ext; ++j) {
      if (load[j] == 0) continue;
      scratch.peers[j] = static_cast<double>(
          scratch.active_in_wifi_domain[static_cast<std::size_t>(
              (*wifi_domain)[j])]);
    }
  }

  // Per-extender WiFi demand (Eq. 1 aggregate) and dead-backhaul flags.
  scratch.wifi_demand.assign(num_ext, 0.0);
  scratch.dead_backhaul.assign(num_ext, 0);
  const double* plc = soa.plc_rate.data();
  const double* peers = scratch.peers.data();
  double* wifi_demand = scratch.wifi_demand.data();
  unsigned char* dead = scratch.dead_backhaul.data();
  for (std::size_t j = 0; j < num_ext; ++j) {
    if (load[j] == 0) continue;
    ++result.active_extenders;
    if (plc[j] <= 0.0) {
      dead[j] = 1;
      continue;  // leave wifi_demand at 0 so the airtime allocator skips it
    }
    wifi_demand[j] = static_cast<double>(load[j]) / sums[j] / peers[j];
  }

  // PLC side: airtime allocation per contention domain, reading the CSR
  // cached in the SoA view (the reference rebuilds it every call).
  scratch.domain_active.assign(soa.num_domains, 0);
  for (std::size_t j = 0; j < num_ext; ++j) {
    if (load[j] > 0) {
      ++scratch.domain_active[static_cast<std::size_t>(soa.plc_domain[j])];
    }
  }
  scratch.time_share.assign(num_ext, 0.0);
  scratch.mm_idx.assign(num_ext, 0);
  for (std::size_t d = 0; d < soa.num_domains; ++d) {
    const std::size_t begin = static_cast<std::size_t>(soa.domain_start[d]);
    const std::size_t count =
        static_cast<std::size_t>(soa.domain_start[d + 1]) - begin;
    if (count == 0) continue;
    const int* members = soa.domain_items.data() + begin;
    switch (options_.plc_sharing) {
      case PlcSharing::kMaxMinActive:
        detail::MaxMinSharesInPlace(members, count, plc, wifi_demand,
                                    scratch.time_share.data(),
                                    scratch.mm_idx.data());
        break;
      case PlcSharing::kEqualActive:
        detail::EqualSharesInPlace(members, count, wifi_demand,
                                   scratch.time_share.data(),
                                   /*denominator_all=*/false);
        break;
      case PlcSharing::kEqualAll:
        detail::EqualSharesInPlace(members, count, wifi_demand,
                                   scratch.time_share.data(),
                                   /*denominator_all=*/true);
        break;
    }
  }

  // Reports and bottleneck attribution — expression-for-expression the
  // reference arithmetic, reading SoA arrays instead of Network accessors.
  for (std::size_t j = 0; j < num_ext; ++j) {
    ExtenderReport& rep = result.extenders[j];
    rep.num_users = load[j];
    rep.wifi_throughput_mbps = wifi_demand[j];
    rep.plc_time_share = scratch.time_share[j];
    rep.plc_throughput_mbps = scratch.time_share[j] * plc[j];
    if (load[j] == 0) {
      rep.bottleneck = Bottleneck::kIdle;
      continue;
    }
    if (dead[j]) {
      rep.bottleneck = Bottleneck::kPlc;  // the backhaul delivers nothing
      continue;
    }
    rep.end_to_end_mbps =
        std::min(rep.wifi_throughput_mbps, rep.plc_throughput_mbps);
    const std::size_t d = static_cast<std::size_t>(soa.plc_domain[j]);
    const double share_denominator =
        options_.plc_sharing == PlcSharing::kEqualAll
            ? static_cast<double>(soa.domain_size[d])
            : static_cast<double>(scratch.domain_active[d]);
    const double equal_share_capacity = plc[j] / share_denominator;
    const bool demand_met = rep.end_to_end_mbps >=
                            rep.wifi_throughput_mbps - kBalanceTolerance;
    if (std::abs(rep.wifi_throughput_mbps - equal_share_capacity) <=
        kBalanceTolerance) {
      rep.bottleneck = Bottleneck::kBalanced;
    } else {
      rep.bottleneck = demand_met ? Bottleneck::kWifi : Bottleneck::kPlc;
    }
    result.aggregate_mbps += rep.end_to_end_mbps;
  }

  if (obs::MetricsScope* s = obs::CurrentScope()) {
    std::uint64_t wifi = 0, plcn = 0, balanced = 0, idle = 0, dead_n = 0;
    for (std::size_t j = 0; j < num_ext; ++j) {
      switch (result.extenders[j].bottleneck) {
        case Bottleneck::kWifi:
          ++wifi;
          break;
        case Bottleneck::kPlc:
          ++plcn;
          break;
        case Bottleneck::kBalanced:
          ++balanced;
          break;
        case Bottleneck::kIdle:
          ++idle;
          break;
      }
      if (dead[j]) ++dead_n;
    }
    if (wifi) s->eval.bottleneck_wifi.Add(wifi);
    if (plcn) s->eval.bottleneck_plc.Add(plcn);
    if (balanced) s->eval.bottleneck_balanced.Add(balanced);
    if (idle) s->eval.bottleneck_idle.Add(idle);
    if (dead_n) s->eval.dead_backhaul.Add(dead_n);
  }

  // Saturated TCP fair split: equal share of the cell's bottleneck rate.
  for (std::size_t i = 0; i < num_users; ++i) {
    const int e = ext_of[i];
    if (e == Assignment::kUnassigned) continue;
    const ExtenderReport& rep = result.extenders[static_cast<std::size_t>(e)];
    result.user_throughput_mbps[i] =
        rep.end_to_end_mbps / static_cast<double>(rep.num_users);
  }
  return result;
}

double Evaluator::AggregateThroughput(const Network& net,
                                      const Assignment& assign) const {
  EvalScratch scratch;
  return Evaluate(net, assign, scratch).aggregate_mbps;
}

}  // namespace wolt::model
