// Structure-of-arrays view of a Network, shared by the evaluation and
// search hot paths.
//
// The solvers' inner loops used to call back into Network accessors
// (bounds-checked, AoS) and rebuild derived tables — the reciprocal rate
// matrix, the PLC-domain CSR — once per evaluator construction or search.
// NetworkSoA hoists all of it into contiguous arrays built once per network
// mutation: Refresh() is a no-op while Network::Version() is unchanged, so
// a solver that evaluates thousands of candidate assignments against one
// network pays for the O(U x E) build exactly once.
//
// Invalidation contract: the view is keyed on (source pointer, version).
// Any Network mutator bumps the version; Refresh() then rebuilds. A caller
// holding raw pointers into the arrays (e.g. InvRow) must not mutate the
// network while using them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/network.h"

namespace wolt::model {

struct NetworkSoA {
  std::size_t num_users = 0;
  std::size_t num_extenders = 0;
  std::size_t num_domains = 0;

  // 1 / r_ij, row-major [user][extender]; 0 when user i cannot reach
  // extender j (r_ij has no other way to produce 0 — rates are finite and
  // non-negative), so the sentinel doubles as the reachability test.
  std::vector<double> inv_rate;
  std::vector<double> plc_rate;   // c_j
  std::vector<double> demand;     // per-user offered load, 0 = saturated
  std::vector<int> cap;           // B_j, 0 = unconstrained
  std::vector<int> plc_domain;    // domain id per extender
  // CSR grouping of extenders by PLC domain, ascending extender id within a
  // domain — the member order every airtime allocator in model/ uses, so
  // arithmetic stays bit-identical across engines.
  std::vector<int> domain_start;  // size num_domains + 1
  std::vector<int> domain_items;  // size num_extenders
  std::vector<int> domain_size;   // size num_domains
  // True iff some user carries a finite demand (whether assigned or not).
  // When false, evaluators can take the saturated fast path without a
  // per-assignment demand scan.
  bool any_finite_demand = false;

  // Rebuild from `net` unless the cached (source, version) already matches.
  // Returns true when a rebuild happened.
  bool Refresh(const Network& net);

  // True while the view matches `net` in its current version.
  bool Matches(const Network& net) const {
    return source_ == &net && version_ == net.Version();
  }

  const double* InvRow(std::size_t user) const {
    return inv_rate.data() + user * num_extenders;
  }

 private:
  const Network* source_ = nullptr;
  std::uint64_t version_ = 0;
  bool built_ = false;
};

}  // namespace wolt::model
