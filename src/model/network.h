// The static network model of the paper (§IV-A, Table I): a set of users U,
// a set of PLC-WiFi extenders A, a WiFi PHY-rate matrix r_ij (Mbit/s, 0 when
// user i cannot reach extender j), per-extender PLC backhaul rates c_j
// (Mbit/s, the isolation capacity of the power-line link to the master
// router), and optional per-extender user limits B_j.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace wolt::model {

// 2D position on the enterprise floor plan (metres). Only used by the
// scenario generators; the association algorithms consume rates, not
// geometry.
struct Position {
  double x = 0.0;
  double y = 0.0;
};

double Distance(const Position& a, const Position& b);

// One PLC-WiFi extender (the paper's TP-Link TL-WPA8630 class device).
struct Extender {
  Position position;
  // PLC backhaul rate c_j: throughput this extender's power-line link
  // achieves in isolation (Mbit/s).
  double plc_rate_mbps = 0.0;
  // Max users B_j; 0 means unconstrained (constraint (8) relaxed).
  int max_users = 0;
  // PLC contention domain. The paper models one shared power-line medium
  // (§IV-A); real buildings often have several electrically separated
  // segments (phases, breaker panels) whose extenders do not contend with
  // each other. Extenders time-share only within their domain.
  int plc_domain = 0;
  // WiFi channel index; -1 means unplanned (the paper's non-overlapping-
  // channels assumption: every extender is treated as if isolated). A pinned
  // plan lets scenario files and the joint solver make co-channel airtime
  // sharing solver-visible (see EvalOptions::wifi_channel).
  int wifi_channel = -1;
  std::string label;
};

// Largest representable channel index + 1. Generous for 2.4/5 GHz plans;
// exists so serialized plans stay bounded and typed errors can reject junk.
inline constexpr int kMaxWifiChannels = 32;

// One client device.
struct User {
  Position position;
  std::string label;
  // Offered load in Mbit/s; 0 means saturated (the paper's assumption,
  // §IV-A). Finite demands cap the user's share of both link segments.
  double demand_mbps = 0.0;
};

// Immutable-after-construction network instance. Row-major rate matrix,
// rates_[i * num_extenders + j] = r_ij.
class Network {
 public:
  Network() = default;
  Network(std::size_t num_users, std::size_t num_extenders);

  // Builder-style mutators (used by scenario/testbed generators).
  void SetWifiRate(std::size_t user, std::size_t extender, double mbps);
  // Optional: record the measured RSSI behind r_ij. The RSSI baseline uses
  // this (continuous signal strength) to rank extenders; when it was never
  // set the rate itself is the ranking proxy.
  void SetRssi(std::size_t user, std::size_t extender, double dbm);
  void SetPlcRate(std::size_t extender, double mbps);
  void SetMaxUsers(std::size_t extender, int max_users);
  // PLC contention domain id (>= 0); all extenders default to domain 0,
  // the paper's single-medium assumption.
  void SetPlcDomain(std::size_t extender, int domain);
  int PlcDomain(std::size_t extender) const;
  // WiFi channel index: -1 (unplanned, the default) or [0, kMaxWifiChannels).
  void SetWifiChannel(std::size_t extender, int channel);
  int WifiChannel(std::size_t extender) const;
  void SetUserPosition(std::size_t user, Position p);
  // Offered load; 0 = saturated. Negative values are rejected.
  void SetUserDemand(std::size_t user, double mbps);
  double UserDemand(std::size_t user) const;
  void SetExtenderPosition(std::size_t extender, Position p);
  void SetUserLabel(std::size_t user, std::string label);
  void SetExtenderLabel(std::size_t extender, std::string label);

  std::size_t NumUsers() const { return users_.size(); }
  std::size_t NumExtenders() const { return extenders_.size(); }

  // Mutation stamp: refreshed by every mutator that can change what the
  // solvers see (rates, capacities, domains, demands, membership). Stamps
  // are drawn from a process-wide counter, never reused, so no two distinct
  // mutation states ever share an (object address, Version()) pair — even
  // when a destroyed network's address is recycled for a new one. Derived
  // caches (model::NetworkSoA) key their validity on exactly that pair.
  // Copies share the stamp of the state they were copied from, which is
  // sound: an equal stamp implies equal solver-visible content.
  std::uint64_t Version() const { return version_; }

  // r_ij in Mbit/s; 0 means unreachable.
  double WifiRate(std::size_t user, std::size_t extender) const;
  // Contiguous rate row of one user (NumExtenders() values).
  const double* WifiRateRow(std::size_t user) const {
    return rates_.data() + user * NumExtenders();
  }
  // c_j in Mbit/s.
  double PlcRate(std::size_t extender) const;
  int MaxUsers(std::size_t extender) const;

  // True once any RSSI value was recorded.
  bool HasRssi() const { return has_rssi_; }
  // Recorded RSSI in dBm; -infinity when never set.
  double Rssi(std::size_t user, std::size_t extender) const;

  const User& UserAt(std::size_t i) const { return users_[i]; }
  const Extender& ExtenderAt(std::size_t j) const { return extenders_[j]; }
  // Mutable access conservatively bumps Version(): the caller may change
  // solver-visible fields (demand, PLC rate, domain) through the reference.
  User& MutableUser(std::size_t i) {
    version_ = NextVersionStamp();
    return users_[i];
  }
  Extender& MutableExtender(std::size_t j) {
    version_ = NextVersionStamp();
    return extenders_[j];
  }

  // True iff user i has at least one extender with r_ij > 0.
  bool UserReachable(std::size_t user) const;

  // Index of the extender with the highest WiFi rate for this user
  // (proxy for strongest RSSI under a monotone rate-vs-RSSI mapping), or
  // nullopt if the user is unreachable.
  std::optional<std::size_t> BestRateExtender(std::size_t user) const;

  // Index of the reachable extender with the strongest recorded RSSI; falls
  // back to BestRateExtender when no RSSI was recorded. Only extenders with
  // r_ij > 0 qualify.
  std::optional<std::size_t> BestRssiExtender(std::size_t user) const;

  // Append a new user with the given rate row (size must be NumExtenders()).
  // Returns the new user's index. Used by the dynamic simulator on arrivals.
  std::size_t AddUser(const User& user, const std::vector<double>& rates);

  // Remove user by index; subsequent user indices shift down by one.
  void RemoveUser(std::size_t user);

 private:
  // Next value of the process-wide stamp counter (see Version()).
  static std::uint64_t NextVersionStamp();

  std::vector<User> users_;
  std::vector<Extender> extenders_;
  std::vector<double> rates_;  // row-major [user][extender]
  std::vector<double> rssi_;   // row-major, -inf when unset
  bool has_rssi_ = false;
  std::uint64_t version_ = NextVersionStamp();
};

}  // namespace wolt::model
