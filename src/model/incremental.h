// Incremental delta-evaluation engine for the Phase-II search.
//
// The Phase-II local search (relocate / swap / greedy-insert moves) needs
// the objective value of thousands of candidate assignments that each
// differ from the current one by a single user. Re-running the full
// Evaluator per candidate costs O(U + E) with ~10 heap allocations; this
// engine instead maintains the evaluation state as mutable per-extender /
// per-PLC-domain aggregates:
//
//   * per extender: user count n_j and WiFi harmonic sum (so T_WiFi_j =
//     n_j / sum 1/r_ij is O(1) to update on a single-user move),
//   * per PLC contention domain: the max-min (or equal-share) airtime
//     allocation over its members, recomputed only for the <= 2 domains a
//     move touches,
//   * running objective totals: aggregate end-to-end throughput and the
//     proportional-fairness log-utility, both expressible as sums of
//     per-extender contributions in the saturated model (every user of
//     extender j gets end_to_end_j / n_j).
//
// A single-user move therefore costs O(|domain|) with zero allocations
// instead of O(U x E) with fresh vectors.
//
// Exact-fallback: when per-user demand caps or co-channel WiFi contention
// are in play, a move's effect is not separable per extender (a cell going
// active/idle changes OTHER cells' airtime in its WiFi contention domain,
// and demand-capped allocations couple users within a cell). In those
// configurations the engine transparently falls back to a full — but
// allocation-free, via a reused EvalScratch — re-evaluation per move, so
// callers get identical semantics either way. `incremental()` reports
// which regime is active.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/assignment.h"
#include "model/evaluator.h"
#include "model/network.h"

namespace wolt::model {

// Objective values maintained by the engine. `log_utility` is the
// proportional-fairness objective: sum over assigned users of
// log(max(throughput, floor)).
struct IncrementalValues {
  double aggregate_mbps = 0.0;
  double log_utility = 0.0;
};

class IncrementalEvaluator {
 public:
  // Matches the floor used by the Phase-II proportional-fair objective.
  static constexpr double kDefaultLogFloorMbps = 1e-3;

  // Builds the engine state from `assign` (validated like
  // Evaluator::Evaluate: assigned users must have positive WiFi rate to a
  // known extender). `net` must outlive the engine. Passing
  // `track_log_utility = false` skips the per-extender log bookkeeping
  // (one transcendental per domain member per move) for searches that only
  // consume the aggregate; log_utility() then throws.
  IncrementalEvaluator(const Network& net, const Assignment& assign,
                       EvalOptions options = {},
                       double log_floor_mbps = kDefaultLogFloorMbps,
                       bool track_log_utility = true);

  // True when moves are applied via O(|domain|) delta updates; false when
  // the exact-fallback (full re-evaluation per move) is active.
  bool incremental() const { return incremental_; }

  double aggregate_mbps() const { return values_.aggregate_mbps; }
  double log_utility() const;
  IncrementalValues values() const { return values_; }

  // Number of state-changing ApplyMove calls so far. A user's failed target
  // scan needs no repeat while this is unchanged (peeks do not mutate).
  std::uint64_t mutations() const { return mutations_; }

  int ExtenderOf(std::size_t user) const { return ext_of_[user]; }
  int Load(std::size_t ext) const { return load_[ext]; }

  // End-to-end throughput of `user` under the current assignment (0 when
  // unassigned or behind a dead backhaul). Non-const: the fallback path may
  // need to refresh its cached evaluation.
  double UserThroughput(std::size_t user);

  // Move `user` to extender `to`, or detach it with
  // Assignment::kUnassigned. Throws std::invalid_argument for an unknown
  // extender or one the user cannot reach. No-op if `to` is the user's
  // current extender.
  void ApplyMove(std::size_t user, int to);

  // Objective values the assignment would have after moving `user` to
  // `to`, without changing the engine state.
  IncrementalValues PeekMove(std::size_t user, int to);

  // Objective values the assignment would have after users u1 and u2
  // (both assigned, on different extenders) traded extenders, without
  // changing the engine state. One recompute per affected PLC domain —
  // cheaper than four ApplyMove calls.
  IncrementalValues PeekSwap(std::size_t u1, std::size_t u2);

  // Convenience: change in aggregate / log-utility caused by the
  // hypothetical move (PeekMove minus current values).
  IncrementalValues MoveDelta(std::size_t user, int to);

 private:
  void RecomputeDomain(std::size_t domain);
  void ContributionOf(std::size_t ext, const double* time_share, double* agg,
                      double* log) const;
  void RefreshWifiDemand(std::size_t ext);
  void RecomputeFallback();
  // Objective values with up to two cells temporarily holding the given
  // (load, wifi_demand); affected domains are recomputed into scratch
  // buffers, committed state is untouched. Cells are processed in order.
  IncrementalValues PeekCells(const std::size_t* cells,
                              const int* peek_load,
                              const double* peek_demand, std::size_t count);

  const Network* net_;
  EvalOptions options_;
  double log_floor_;
  double log_of_floor_;
  bool incremental_ = true;
  bool track_log_ = true;
  std::uint64_t mutations_ = 0;
  IncrementalValues values_;

  std::vector<int> ext_of_;

  // --- Incremental-mode state -------------------------------------------
  std::vector<int> load_;
  std::vector<double> inv_sum_;
  std::vector<double> wifi_demand_;
  std::vector<double> plc_rate_;
  std::vector<double> time_share_;
  std::vector<double> contrib_agg_;
  std::vector<double> contrib_log_;
  // 1 / r_ij, row-major; 0 when user i cannot reach extender j.
  std::vector<double> inv_rate_;
  // CSR grouping of extenders by PLC domain.
  std::vector<int> domain_of_;
  std::vector<int> domain_start_;
  std::vector<int> domain_items_;
  std::vector<std::size_t> mm_idx_;  // max-min scratch
  std::vector<double> peek_ts_;      // time-share scratch for peeks

  // --- Fallback-mode state ----------------------------------------------
  Evaluator evaluator_;
  Assignment mirror_;
  EvalScratch scratch_;
  bool result_stale_ = false;
};

}  // namespace wolt::model
