// Flow-level throughput engine: given a Network and an Assignment, compute
// what every user and extender actually achieves end-to-end.
//
// Model (§III-A / §IV-A of the paper):
//  * WiFi cell of extender j is throughput-fair (802.11 performance-anomaly
//    behaviour, Eq. 1): every associated user gets the same WiFi throughput,
//    so the cell's aggregate is T_WiFi_j = |N_j| / sum_{i in N_j} 1/r_ij.
//  * The PLC backhaul is one time-fair contention domain shared by the
//    *active* extenders. Under the real (evaluation) model, airtime unused
//    by an extender whose WiFi demand is below its share is re-allocated
//    max-min fairly (Fig. 3c); under the planning model used inside the
//    optimization (Eq. 2), each active extender gets exactly 1/k of airtime.
//  * Extender j's end-to-end throughput is min(T_WiFi_j, t_j * c_j), split
//    equally among its users (saturated TCP fair sharing).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/assignment.h"
#include "model/network.h"
#include "model/soa.h"

namespace wolt::model {

enum class Bottleneck {
  kIdle,      // no users associated
  kWifi,      // WiFi cell throughput below the PLC share
  kPlc,       // PLC share below the WiFi cell throughput
  kBalanced,  // equal within tolerance
};

const char* ToString(Bottleneck b);

// How the single PLC contention domain divides airtime between extenders.
enum class PlcSharing {
  // Max-min fair airtime over the *active* extenders with demand caps —
  // what the measurement study's hardware actually does (Fig. 2c time
  // fairness + the Fig. 3c leftover re-allocation). The physical default.
  kMaxMinActive,
  // Strict 1/k shares over the active extenders, no leftover
  // redistribution (ablation Abl-1).
  kEqualActive,
  // The paper's Problem-1 planning model taken literally: T_PLC_j =
  // c_j / |A| with |A| = ALL extenders, idle or not (constraint (4)).
  // Under this model activating every extender is always worthwhile, which
  // is the regime in which the paper's simulation results (Fig. 6) arise.
  kEqualAll,
};

const char* ToString(PlcSharing s);

struct EvalOptions {
  PlcSharing plc_sharing = PlcSharing::kMaxMinActive;
  // Optional co-channel WiFi contention. Empty (default) models the paper's
  // assumption that every extender has its own channel. When set (one
  // domain id per extender, e.g. from wifi::ContentionDomains), active
  // cells sharing a domain time-share the air: each cell's WiFi throughput
  // is divided by the number of active cells in its domain.
  std::vector<int> wifi_contention_domain;
  // Channel-plan mode: one channel index per extender (>= 0). Contention
  // domains are *derived* — connected components of the "same channel AND
  // within carrier_sense_range_m" graph over extender positions — then fed
  // through the same co-channel airtime machinery as
  // wifi_contention_domain. A plan in which no two co-channel extenders are
  // in carrier-sense range (in particular, any all-distinct plan) yields
  // singleton domains and is bit-identical to the legacy evaluator.
  // Mutually exclusive with wifi_contention_domain.
  std::vector<int> wifi_channel;
  // Carrier-sense range for deriving co-channel contention from geometry.
  double carrier_sense_range_m = 60.0;
};

struct ExtenderReport {
  int num_users = 0;
  double wifi_throughput_mbps = 0.0;  // T_WiFi_j
  double plc_time_share = 0.0;        // t_j
  double plc_throughput_mbps = 0.0;   // t_j * c_j (capacity made available)
  double end_to_end_mbps = 0.0;       // min(T_WiFi_j, t_j * c_j)
  Bottleneck bottleneck = Bottleneck::kIdle;
};

struct EvalResult {
  std::vector<ExtenderReport> extenders;
  std::vector<double> user_throughput_mbps;  // 0 for unassigned users
  double aggregate_mbps = 0.0;               // objective (3) of Problem 1
  int active_extenders = 0;
};

// Reusable workspace for Evaluator::Evaluate. Holding one of these across
// calls makes the saturated (no per-user demands) path allocation-free in
// steady state: every buffer, including the result, keeps its capacity
// between evaluations. The contents are owned by the evaluator between
// calls; only `result` is meaningful to callers.
struct EvalScratch {
  EvalResult result;

  // Cached SoA view of the last evaluated network; rebuilt only when the
  // network's Version() changed (the saturated fast path reads rates,
  // domains and the PLC-domain CSR from here instead of the Network).
  NetworkSoA soa;

  // Per-extender accumulators.
  std::vector<double> inv_rate_sum;
  std::vector<int> load;
  std::vector<double> peers;
  std::vector<double> wifi_demand;
  std::vector<double> plc_rates;
  std::vector<double> time_share;
  std::vector<unsigned char> dead_backhaul;

  // Per-domain bookkeeping (CSR grouping of extenders by PLC domain).
  std::vector<int> domain_start;  // size = num_domains + 1
  std::vector<int> domain_items;  // size = num_extenders
  std::vector<int> domain_size;
  std::vector<int> domain_active;
  std::vector<int> active_in_wifi_domain;

  // Channel-plan mode: derived co-channel contention domains (one id per
  // extender) plus the cache key they were computed under. Deriving runs a
  // union-find over extender pairs, so it is cached on (network Version,
  // plan, carrier-sense range) and reused while none of those change.
  std::vector<int> channel_domains;
  std::vector<int> channel_parent;      // union-find scratch
  std::vector<int> chan_cache_plan;
  double chan_cache_range = 0.0;
  std::uint64_t chan_cache_version = 0;
  bool chan_cache_valid = false;

  // Max-min progressive-filling index buffer (two-pointer compaction).
  std::vector<std::size_t> mm_idx;

  // Demand-path buffers (allocate only when finite demands are present).
  std::vector<std::vector<std::size_t>> cell_users;
  std::vector<std::vector<double>> cell_caps;
  std::vector<double> tmp_rates;
  std::vector<double> tmp_demands;
};

class Evaluator {
 public:
  explicit Evaluator(EvalOptions options = {}) : options_(options) {}

  // Full per-user / per-extender report. Throws std::invalid_argument if an
  // assigned user has zero WiFi rate to its extender or the assignment
  // references an unknown extender.
  EvalResult Evaluate(const Network& net, const Assignment& assign) const;

  // Hot-path variant: evaluates into `scratch` and returns scratch.result.
  // No heap allocation on the saturated path once the scratch has warmed up.
  // Uses the structure-of-arrays kernel on the saturated path (contiguous
  // reciprocal-rate rows, cached PLC-domain CSR); results are bit-identical
  // to EvaluateReference in every field.
  const EvalResult& Evaluate(const Network& net, const Assignment& assign,
                             EvalScratch& scratch) const;

  // The straight-line reference implementation (per-user Network accessor
  // walks, CSR rebuilt per call). Kept as the differential baseline for the
  // SoA kernel (tests/evaluator_soa_test.cc) and as the path for
  // demand-carrying evaluations. Same results, same exceptions.
  const EvalResult& EvaluateReference(const Network& net,
                                      const Assignment& assign,
                                      EvalScratch& scratch) const;

  // Aggregate end-to-end throughput only (same computation, convenience).
  double AggregateThroughput(const Network& net,
                             const Assignment& assign) const;

  const EvalOptions& options() const { return options_; }

 private:
  // Resolves the per-extender co-channel WiFi contention domains for this
  // evaluation, or nullptr when neither wifi_contention_domain nor
  // wifi_channel is set (the paper's orthogonal assumption). Explicit
  // domains are returned as-is; a channel plan is turned into domains by
  // union-find over co-channel extender pairs within carrier-sense range,
  // cached in `scratch` keyed on (Version, plan, range). Throws
  // std::invalid_argument on malformed options (both modes set, wrong
  // sizes, negative ids).
  const std::vector<int>* ResolveWifiDomains(const Network& net,
                                             EvalScratch& scratch) const;

  EvalOptions options_;
};

namespace detail {

// Max-min fair airtime over the extenders listed in `members` (progressive
// filling with demand caps, §III-A / Fig. 3c). Same arithmetic as
// plc::MaxMinTimeShare but operating in place on per-extender arrays with a
// caller-provided index buffer (size >= count), so hot paths never
// allocate. Shared by Evaluator and IncrementalEvaluator so both engines
// produce bit-identical airtime shares.
void MaxMinSharesInPlace(const int* members, std::size_t count,
                         const double* rates, const double* demands,
                         double* time_share, std::size_t* idx);

// Strict 1/k shares over the domain's extenders. `denominator_all` selects
// the kEqualAll planning model (count idle extenders in the denominator).
void EqualSharesInPlace(const int* members, std::size_t count,
                        const double* demands, double* time_share,
                        bool denominator_all);

}  // namespace detail

// The aggregate WiFi cell throughput T_WiFi_j for one extender given the
// WiFi rates of its associated users (Eq. 1). Exposed for the Phase-II
// solver which works purely on the WiFi side. Rates must all be positive.
double WifiCellThroughput(const std::vector<double>& user_rates);

// Demand-aware generalisation of Eq. 1: 802.11's long-term behaviour is an
// equal-throughput level x across backlogged users, constrained by the
// cell's unit airtime (sum x/r_i <= 1); users whose offered load d_i is
// below the level are capped at d_i and release their airtime. demand 0
// means saturated. Reduces exactly to Eq. 1 when everyone is saturated.
struct CellAllocation {
  std::vector<double> user_throughput_mbps;
  double total_mbps = 0.0;
};
// `airtime` (fraction of the second the cell owns, 1.0 unless co-channel
// contention shrinks it) scales the airtime budget.
CellAllocation WifiCellAllocation(const std::vector<double>& user_rates,
                                  const std::vector<double>& demands_mbps,
                                  double airtime = 1.0);

// Max-min fair division of `total` among users with finite caps: the TCP
// re-sharing step when the PLC segment throttles a cell below its WiFi
// throughput. The result sums to min(total, sum of caps).
std::vector<double> MaxMinWithCaps(const std::vector<double>& caps,
                                   double total);

}  // namespace wolt::model
