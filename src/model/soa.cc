#include "model/soa.h"

#include <algorithm>

namespace wolt::model {

bool NetworkSoA::Refresh(const Network& net) {
  if (built_ && Matches(net)) return false;
  source_ = &net;
  version_ = net.Version();
  built_ = true;

  num_users = net.NumUsers();
  num_extenders = net.NumExtenders();

  inv_rate.assign(num_users * num_extenders, 0.0);
  for (std::size_t i = 0; i < num_users; ++i) {
    const double* row = net.WifiRateRow(i);
    double* inv = inv_rate.data() + i * num_extenders;
    for (std::size_t j = 0; j < num_extenders; ++j) {
      if (row[j] > 0.0) inv[j] = 1.0 / row[j];
    }
  }

  plc_rate.resize(num_extenders);
  cap.resize(num_extenders);
  plc_domain.resize(num_extenders);
  num_domains = 0;
  for (std::size_t j = 0; j < num_extenders; ++j) {
    plc_rate[j] = net.PlcRate(j);
    cap[j] = net.MaxUsers(j);
    const int d = net.PlcDomain(j);
    plc_domain[j] = d;
    num_domains = std::max(num_domains, static_cast<std::size_t>(d) + 1);
  }

  demand.resize(num_users);
  any_finite_demand = false;
  for (std::size_t i = 0; i < num_users; ++i) {
    demand[i] = net.UserDemand(i);
    if (demand[i] > 0.0) any_finite_demand = true;
  }

  // Counting sort into the CSR (ascending extender id within each domain).
  domain_start.assign(num_domains + 1, 0);
  domain_size.assign(num_domains, 0);
  for (std::size_t j = 0; j < num_extenders; ++j) {
    const std::size_t d = static_cast<std::size_t>(plc_domain[j]);
    ++domain_start[d + 1];
    ++domain_size[d];
  }
  for (std::size_t d = 0; d < num_domains; ++d) {
    domain_start[d + 1] += domain_start[d];
  }
  domain_items.assign(num_extenders, 0);
  std::vector<int> cursor(num_domains, 0);
  for (std::size_t j = 0; j < num_extenders; ++j) {
    const std::size_t d = static_cast<std::size_t>(plc_domain[j]);
    domain_items[static_cast<std::size_t>(domain_start[d] + cursor[d]++)] =
        static_cast<int>(j);
  }
  return true;
}

}  // namespace wolt::model
