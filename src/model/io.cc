#include "model/io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/fileio.h"

namespace wolt::model {
namespace {

constexpr int kFormatVersion = 1;

void EmitDouble(std::ostream& out, double v) {
  // %.17g round-trips doubles exactly.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

std::optional<double> ParseDouble(const std::string& s) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(s, &consumed);
    // Reject every non-finite value ("nan", "inf", "infinity", ...): a
    // single infinite rate or load silently poisons the Evaluator's
    // aggregates, so malformed input must die here with a typed IoError.
    if (consumed != s.size() || !std::isfinite(v)) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::vector<double>> ParseDoubleList(const std::string& csv) {
  std::vector<double> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    const auto v = ParseDouble(item);
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  return out;
}

// Parses "key=value" tokens from the remainder of a line.
std::optional<std::unordered_map<std::string, std::string>> ParseKv(
    std::istringstream& in) {
  std::unordered_map<std::string, std::string> kv;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return kv;
}

}  // namespace

void SaveNetwork(const Network& net, std::ostream& out) {
  out << "wolt-network " << kFormatVersion << "\n";
  out << "extenders " << net.NumExtenders() << "\n";
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    const Extender& e = net.ExtenderAt(j);
    out << "extender " << j << " plc=";
    EmitDouble(out, e.plc_rate_mbps);
    out << " x=";
    EmitDouble(out, e.position.x);
    out << " y=";
    EmitDouble(out, e.position.y);
    out << " max_users=" << e.max_users;
    if (e.plc_domain != 0) out << " domain=" << e.plc_domain;
    if (e.wifi_channel >= 0) out << " channel=" << e.wifi_channel;
    if (!e.label.empty()) out << " label=" << e.label;
    out << "\n";
  }
  out << "users " << net.NumUsers() << "\n";
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    const User& u = net.UserAt(i);
    out << "user " << i << " x=";
    EmitDouble(out, u.position.x);
    out << " y=";
    EmitDouble(out, u.position.y);
    out << " demand=";
    EmitDouble(out, u.demand_mbps);
    if (!u.label.empty()) out << " label=" << u.label;
    out << "\n";
  }
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    out << "rates " << i << " ";
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      if (j) out << ',';
      EmitDouble(out, net.WifiRate(i, j));
    }
    out << "\n";
  }
  if (net.HasRssi()) {
    for (std::size_t i = 0; i < net.NumUsers(); ++i) {
      out << "rssi " << i << " ";
      for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
        if (j) out << ',';
        EmitDouble(out, net.Rssi(i, j));
      }
      out << "\n";
    }
  }
}

const char* ToString(IoErrorKind kind) {
  switch (kind) {
    case IoErrorKind::kNone:
      return "none";
    case IoErrorKind::kTruncated:
      return "truncated";
    case IoErrorKind::kBadHeader:
      return "bad-header";
    case IoErrorKind::kBadCount:
      return "bad-count";
    case IoErrorKind::kBadRecord:
      return "bad-record";
    case IoErrorKind::kBadKeyValue:
      return "bad-key-value";
    case IoErrorKind::kBadNumber:
      return "bad-number";
    case IoErrorKind::kBadDimension:
      return "bad-dimension";
    case IoErrorKind::kTrailingInput:
      return "trailing-input";
    case IoErrorKind::kBadChannel:
      return "bad-channel";
  }
  return "?";
}

LoadResult LoadNetworkDetailed(std::istream& in) {
  std::string line;
  int line_number = 0;

  // Advances to the next non-blank, non-comment line. Returns false at EOF.
  const auto next_line = [&](std::istringstream& parsed) {
    while (std::getline(in, line)) {
      ++line_number;
      const std::size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      parsed = std::istringstream(line);
      return true;
    }
    return false;
  };
  const auto fail = [&](IoErrorKind kind, std::string message) {
    LoadResult res;
    res.error = {kind, line_number, std::move(message)};
    return res;
  };

  std::istringstream ls;
  std::string word;
  int version = 0;
  if (!next_line(ls)) return fail(IoErrorKind::kTruncated, "empty input");
  if (!(ls >> word >> version) || word != "wolt-network") {
    return fail(IoErrorKind::kBadHeader, "expected 'wolt-network <version>'");
  }
  if (version != kFormatVersion) {
    return fail(IoErrorKind::kBadHeader,
                "unsupported format version " + std::to_string(version));
  }

  std::size_t num_extenders = 0;
  if (!next_line(ls)) {
    return fail(IoErrorKind::kTruncated, "missing extenders section");
  }
  if (!(ls >> word >> num_extenders) || word != "extenders" ||
      num_extenders == 0) {
    return fail(IoErrorKind::kBadCount, "expected 'extenders <n>' with n > 0");
  }

  Network net(0, num_extenders);
  for (std::size_t j = 0; j < num_extenders; ++j) {
    std::size_t index = 0;
    if (!next_line(ls)) {
      return fail(IoErrorKind::kTruncated, "missing extender record");
    }
    if (!(ls >> word >> index) || word != "extender" || index != j) {
      return fail(IoErrorKind::kBadRecord,
                  "expected 'extender " + std::to_string(j) + " ...'");
    }
    const auto kv = ParseKv(ls);
    if (!kv) {
      return fail(IoErrorKind::kBadKeyValue, "malformed key=value token");
    }
    if (!kv->count("plc") || !kv->count("x") || !kv->count("y")) {
      return fail(IoErrorKind::kBadKeyValue,
                  "extender record needs plc=, x=, y=");
    }
    const auto plc = ParseDouble(kv->at("plc"));
    const auto x = ParseDouble(kv->at("x"));
    const auto y = ParseDouble(kv->at("y"));
    if (!plc || *plc < 0.0 || !x || !y) {
      return fail(IoErrorKind::kBadNumber,
                  "extender plc/x/y must be numbers with plc >= 0");
    }
    net.SetPlcRate(j, *plc);
    net.SetExtenderPosition(j, {*x, *y});
    if (kv->count("max_users")) {
      const auto mu = ParseDouble(kv->at("max_users"));
      if (!mu || *mu < 0.0) {
        return fail(IoErrorKind::kBadNumber, "max_users must be >= 0");
      }
      net.SetMaxUsers(j, static_cast<int>(*mu));
    }
    if (kv->count("domain")) {
      const auto dom = ParseDouble(kv->at("domain"));
      if (!dom || *dom < 0.0) {
        return fail(IoErrorKind::kBadNumber, "domain must be >= 0");
      }
      net.SetPlcDomain(j, static_cast<int>(*dom));
    }
    if (kv->count("channel")) {
      // A pinned channel must be a whole number inside the plan range; -1
      // (unplanned) is deliberately not serialized, so it is rejected too.
      const auto ch = ParseDouble(kv->at("channel"));
      if (!ch || *ch != std::floor(*ch) || *ch < 0.0 ||
          *ch >= static_cast<double>(kMaxWifiChannels)) {
        return fail(IoErrorKind::kBadChannel,
                    "channel must be an integer in [0, " +
                        std::to_string(kMaxWifiChannels) + ")");
      }
      net.SetWifiChannel(j, static_cast<int>(*ch));
    }
    if (kv->count("label")) net.SetExtenderLabel(j, kv->at("label"));
  }

  std::size_t num_users = 0;
  if (!next_line(ls)) {
    return fail(IoErrorKind::kTruncated, "missing users section");
  }
  if (!(ls >> word >> num_users) || word != "users") {
    return fail(IoErrorKind::kBadCount, "expected 'users <n>'");
  }

  std::vector<User> users(num_users);
  for (std::size_t i = 0; i < num_users; ++i) {
    std::size_t index = 0;
    if (!next_line(ls)) {
      return fail(IoErrorKind::kTruncated, "missing user record");
    }
    if (!(ls >> word >> index) || word != "user" || index != i) {
      return fail(IoErrorKind::kBadRecord,
                  "expected 'user " + std::to_string(i) + " ...'");
    }
    const auto kv = ParseKv(ls);
    if (!kv) {
      return fail(IoErrorKind::kBadKeyValue, "malformed key=value token");
    }
    if (!kv->count("x") || !kv->count("y") || !kv->count("demand")) {
      return fail(IoErrorKind::kBadKeyValue,
                  "user record needs x=, y=, demand=");
    }
    const auto x = ParseDouble(kv->at("x"));
    const auto y = ParseDouble(kv->at("y"));
    const auto demand = ParseDouble(kv->at("demand"));
    if (!x || !y || !demand || *demand < 0.0) {
      return fail(IoErrorKind::kBadNumber,
                  "user x/y/demand must be numbers with demand >= 0");
    }
    users[i].position = {*x, *y};
    users[i].demand_mbps = *demand;
    if (kv->count("label")) users[i].label = kv->at("label");
  }

  for (std::size_t i = 0; i < num_users; ++i) {
    std::size_t index = 0;
    std::string csv;
    if (!next_line(ls)) {
      return fail(IoErrorKind::kTruncated, "missing rates row");
    }
    if (!(ls >> word >> index >> csv) || word != "rates" || index != i) {
      return fail(IoErrorKind::kBadRecord,
                  "expected 'rates " + std::to_string(i) + " <row>'");
    }
    const auto rates = ParseDoubleList(csv);
    if (!rates) return fail(IoErrorKind::kBadNumber, "unparsable rate");
    if (rates->size() != num_extenders) {
      return fail(IoErrorKind::kBadDimension,
                  "rates row has " + std::to_string(rates->size()) +
                      " entries, expected " + std::to_string(num_extenders));
    }
    for (double r : *rates) {
      if (r < 0.0) return fail(IoErrorKind::kBadNumber, "negative rate");
    }
    net.AddUser(users[i], *rates);
  }

  // Optional RSSI block.
  bool saw_rssi = false;
  for (std::size_t i = 0; i < num_users; ++i) {
    std::size_t index = 0;
    std::string csv;
    if (!next_line(ls)) {
      if (i == 0) break;  // no RSSI block at all
      return fail(IoErrorKind::kTruncated, "partial rssi block");
    }
    if (!(ls >> word >> index >> csv) || word != "rssi" || index != i) {
      if (i == 0 && word != "rssi") {
        return fail(IoErrorKind::kTrailingInput,
                    "unexpected input after rates rows");
      }
      return fail(IoErrorKind::kBadRecord,
                  "expected 'rssi " + std::to_string(i) + " <row>'");
    }
    saw_rssi = true;
    const auto rssi = ParseDoubleList(csv);
    if (!rssi) return fail(IoErrorKind::kBadNumber, "unparsable rssi");
    if (rssi->size() != num_extenders) {
      return fail(IoErrorKind::kBadDimension,
                  "rssi row has " + std::to_string(rssi->size()) +
                      " entries, expected " + std::to_string(num_extenders));
    }
    for (std::size_t j = 0; j < num_extenders; ++j) {
      net.SetRssi(i, j, (*rssi)[j]);
    }
  }
  // When the rssi loop consumed the stream to EOF itself (no-rssi files with
  // users), there is nothing left to check; otherwise reject trailing input.
  if (saw_rssi || num_users == 0) {
    std::istringstream extra;
    if (next_line(extra)) {
      return fail(IoErrorKind::kTrailingInput,
                  "unexpected input after the network definition");
    }
  }

  LoadResult res;
  res.network = std::move(net);
  return res;
}

std::optional<Network> LoadNetwork(std::istream& in) {
  return LoadNetworkDetailed(in).network;
}

bool SaveNetworkFile(const Network& net, const std::string& path) {
  const wolt::io::IoStatus st = util::WriteFileAtomic(path, NetworkToString(net));
  wolt::io::CountWriteError(st, path);
  return st.ok();
}

std::optional<Network> LoadNetworkFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return LoadNetwork(in);
}

std::string NetworkToString(const Network& net) {
  std::ostringstream out;
  SaveNetwork(net, out);
  return out.str();
}

std::optional<Network> NetworkFromString(const std::string& text) {
  std::istringstream in(text);
  return LoadNetwork(in);
}

LoadResult NetworkFromStringDetailed(const std::string& text) {
  std::istringstream in(text);
  return LoadNetworkDetailed(in);
}

}  // namespace wolt::model
