#include "model/io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace wolt::model {
namespace {

constexpr int kFormatVersion = 1;

void EmitDouble(std::ostream& out, double v) {
  // %.17g round-trips doubles exactly.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

std::optional<double> ParseDouble(const std::string& s) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(s, &consumed);
    if (consumed != s.size() || std::isnan(v)) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::vector<double>> ParseDoubleList(const std::string& csv) {
  std::vector<double> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    const auto v = ParseDouble(item);
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  return out;
}

// Parses "key=value" tokens from the remainder of a line.
std::optional<std::unordered_map<std::string, std::string>> ParseKv(
    std::istringstream& in) {
  std::unordered_map<std::string, std::string> kv;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return kv;
}

}  // namespace

void SaveNetwork(const Network& net, std::ostream& out) {
  out << "wolt-network " << kFormatVersion << "\n";
  out << "extenders " << net.NumExtenders() << "\n";
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    const Extender& e = net.ExtenderAt(j);
    out << "extender " << j << " plc=";
    EmitDouble(out, e.plc_rate_mbps);
    out << " x=";
    EmitDouble(out, e.position.x);
    out << " y=";
    EmitDouble(out, e.position.y);
    out << " max_users=" << e.max_users;
    if (e.plc_domain != 0) out << " domain=" << e.plc_domain;
    if (!e.label.empty()) out << " label=" << e.label;
    out << "\n";
  }
  out << "users " << net.NumUsers() << "\n";
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    const User& u = net.UserAt(i);
    out << "user " << i << " x=";
    EmitDouble(out, u.position.x);
    out << " y=";
    EmitDouble(out, u.position.y);
    out << " demand=";
    EmitDouble(out, u.demand_mbps);
    if (!u.label.empty()) out << " label=" << u.label;
    out << "\n";
  }
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    out << "rates " << i << " ";
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      if (j) out << ',';
      EmitDouble(out, net.WifiRate(i, j));
    }
    out << "\n";
  }
  if (net.HasRssi()) {
    for (std::size_t i = 0; i < net.NumUsers(); ++i) {
      out << "rssi " << i << " ";
      for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
        if (j) out << ',';
        EmitDouble(out, net.Rssi(i, j));
      }
      out << "\n";
    }
  }
}

std::optional<Network> LoadNetwork(std::istream& in) {
  std::string line;

  const auto next_line = [&](std::istringstream& parsed) {
    while (std::getline(in, line)) {
      const std::size_t first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      parsed = std::istringstream(line);
      return true;
    }
    return false;
  };

  std::istringstream ls;
  std::string word;
  int version = 0;
  if (!next_line(ls) || !(ls >> word >> version) || word != "wolt-network" ||
      version != kFormatVersion) {
    return std::nullopt;
  }

  std::size_t num_extenders = 0;
  if (!next_line(ls) || !(ls >> word >> num_extenders) ||
      word != "extenders" || num_extenders == 0) {
    return std::nullopt;
  }

  Network net(0, num_extenders);
  for (std::size_t j = 0; j < num_extenders; ++j) {
    std::size_t index = 0;
    if (!next_line(ls) || !(ls >> word >> index) || word != "extender" ||
        index != j) {
      return std::nullopt;
    }
    const auto kv = ParseKv(ls);
    if (!kv || !kv->count("plc") || !kv->count("x") || !kv->count("y")) {
      return std::nullopt;
    }
    const auto plc = ParseDouble(kv->at("plc"));
    const auto x = ParseDouble(kv->at("x"));
    const auto y = ParseDouble(kv->at("y"));
    if (!plc || *plc < 0.0 || !x || !y) return std::nullopt;
    net.SetPlcRate(j, *plc);
    net.SetExtenderPosition(j, {*x, *y});
    if (kv->count("max_users")) {
      const auto mu = ParseDouble(kv->at("max_users"));
      if (!mu || *mu < 0.0) return std::nullopt;
      net.SetMaxUsers(j, static_cast<int>(*mu));
    }
    if (kv->count("domain")) {
      const auto dom = ParseDouble(kv->at("domain"));
      if (!dom || *dom < 0.0) return std::nullopt;
      net.SetPlcDomain(j, static_cast<int>(*dom));
    }
    if (kv->count("label")) net.SetExtenderLabel(j, kv->at("label"));
  }

  std::size_t num_users = 0;
  if (!next_line(ls) || !(ls >> word >> num_users) || word != "users") {
    return std::nullopt;
  }

  std::vector<User> users(num_users);
  for (std::size_t i = 0; i < num_users; ++i) {
    std::size_t index = 0;
    if (!next_line(ls) || !(ls >> word >> index) || word != "user" ||
        index != i) {
      return std::nullopt;
    }
    const auto kv = ParseKv(ls);
    if (!kv || !kv->count("x") || !kv->count("y") || !kv->count("demand")) {
      return std::nullopt;
    }
    const auto x = ParseDouble(kv->at("x"));
    const auto y = ParseDouble(kv->at("y"));
    const auto demand = ParseDouble(kv->at("demand"));
    if (!x || !y || !demand || *demand < 0.0) return std::nullopt;
    users[i].position = {*x, *y};
    users[i].demand_mbps = *demand;
    if (kv->count("label")) users[i].label = kv->at("label");
  }

  for (std::size_t i = 0; i < num_users; ++i) {
    std::size_t index = 0;
    std::string csv;
    if (!next_line(ls) || !(ls >> word >> index >> csv) || word != "rates" ||
        index != i) {
      return std::nullopt;
    }
    const auto rates = ParseDoubleList(csv);
    if (!rates || rates->size() != num_extenders) return std::nullopt;
    for (double r : *rates) {
      if (r < 0.0) return std::nullopt;
    }
    net.AddUser(users[i], *rates);
  }

  // Optional RSSI block.
  for (std::size_t i = 0; i < num_users; ++i) {
    std::size_t index = 0;
    std::string csv;
    if (!next_line(ls)) {
      if (i == 0) break;  // no RSSI block at all
      return std::nullopt;  // partial block
    }
    if (!(ls >> word >> index >> csv) || word != "rssi" || index != i) {
      return std::nullopt;
    }
    const auto rssi = ParseDoubleList(csv);
    if (!rssi || rssi->size() != num_extenders) return std::nullopt;
    for (std::size_t j = 0; j < num_extenders; ++j) {
      net.SetRssi(i, j, (*rssi)[j]);
    }
  }
  return net;
}

bool SaveNetworkFile(const Network& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  SaveNetwork(net, out);
  return static_cast<bool>(out);
}

std::optional<Network> LoadNetworkFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return LoadNetwork(in);
}

std::string NetworkToString(const Network& net) {
  std::ostringstream out;
  SaveNetwork(net, out);
  return out.str();
}

std::optional<Network> NetworkFromString(const std::string& text) {
  std::istringstream in(text);
  return LoadNetwork(in);
}

}  // namespace wolt::model
