#include "model/incremental.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wolt::model {

IncrementalEvaluator::IncrementalEvaluator(const Network& net,
                                           const Assignment& assign,
                                           EvalOptions options,
                                           double log_floor_mbps,
                                           bool track_log_utility)
    : net_(&net),
      options_(std::move(options)),
      log_floor_(log_floor_mbps),
      log_of_floor_(std::log(log_floor_mbps)),
      track_log_(track_log_utility),
      evaluator_(options_) {
  if (assign.NumUsers() != net.NumUsers()) {
    throw std::invalid_argument("assignment/network user count mismatch");
  }
  const std::size_t num_users = net.NumUsers();
  const std::size_t num_ext = net.NumExtenders();

  // Deltas are separable only in the saturated, contention-free model; any
  // finite demand (even on a currently unassigned user — it could be moved
  // in later) or co-channel WiFi coupling forces the exact fallback.
  incremental_ =
      options_.wifi_contention_domain.empty() && options_.wifi_channel.empty();
  if (incremental_) {
    for (std::size_t i = 0; i < num_users; ++i) {
      if (net.UserDemand(i) > 0.0) {
        incremental_ = false;
        break;
      }
    }
  }

  ext_of_.assign(num_users, Assignment::kUnassigned);
  for (std::size_t i = 0; i < num_users; ++i) {
    ext_of_[i] = assign.ExtenderOf(i);
  }
  load_.assign(num_ext, 0);

  if (!incremental_) {
    mirror_ = assign;
    for (std::size_t i = 0; i < num_users; ++i) {
      const int e = ext_of_[i];
      if (e >= 0) ++load_[static_cast<std::size_t>(e)];
    }
    RecomputeFallback();
    return;
  }

  inv_rate_.assign(num_users * num_ext, 0.0);
  for (std::size_t i = 0; i < num_users; ++i) {
    double* inv = &inv_rate_[i * num_ext];
    for (std::size_t j = 0; j < num_ext; ++j) {
      const double r = net.WifiRate(i, j);
      if (r > 0.0) inv[j] = 1.0 / r;
    }
  }

  inv_sum_.assign(num_ext, 0.0);
  for (std::size_t i = 0; i < num_users; ++i) {
    const int e = ext_of_[i];
    if (e == Assignment::kUnassigned) continue;
    if (e < 0 || static_cast<std::size_t>(e) >= num_ext) {
      throw std::invalid_argument("assignment references unknown extender");
    }
    const double inv = inv_rate_[i * num_ext + static_cast<std::size_t>(e)];
    if (inv <= 0.0) {
      throw std::invalid_argument("user assigned to unreachable extender");
    }
    ++load_[static_cast<std::size_t>(e)];
    inv_sum_[static_cast<std::size_t>(e)] += inv;
  }

  plc_rate_.assign(num_ext, 0.0);
  wifi_demand_.assign(num_ext, 0.0);
  for (std::size_t j = 0; j < num_ext; ++j) {
    plc_rate_[j] = net.PlcRate(j);
    RefreshWifiDemand(j);
  }

  // CSR grouping of extenders by PLC domain (counting sort, ascending
  // extender order within a domain — the same member order the full
  // evaluator uses, so airtime arithmetic matches bit for bit).
  std::size_t num_domains = 0;
  domain_of_.assign(num_ext, 0);
  for (std::size_t j = 0; j < num_ext; ++j) {
    const int d = net.PlcDomain(j);
    domain_of_[j] = d;
    num_domains = std::max(num_domains, static_cast<std::size_t>(d) + 1);
  }
  domain_start_.assign(num_domains + 1, 0);
  for (std::size_t j = 0; j < num_ext; ++j) {
    ++domain_start_[static_cast<std::size_t>(domain_of_[j]) + 1];
  }
  for (std::size_t d = 0; d < num_domains; ++d) {
    domain_start_[d + 1] += domain_start_[d];
  }
  domain_items_.assign(num_ext, 0);
  std::vector<int> cursor(num_domains, 0);
  for (std::size_t j = 0; j < num_ext; ++j) {
    const std::size_t d = static_cast<std::size_t>(domain_of_[j]);
    domain_items_[static_cast<std::size_t>(domain_start_[d] + cursor[d]++)] =
        static_cast<int>(j);
  }

  time_share_.assign(num_ext, 0.0);
  contrib_agg_.assign(num_ext, 0.0);
  contrib_log_.assign(num_ext, 0.0);
  mm_idx_.assign(num_ext, 0);
  peek_ts_.assign(num_ext, 0.0);
  values_ = IncrementalValues{};
  for (std::size_t d = 0; d < num_domains; ++d) RecomputeDomain(d);
}

double IncrementalEvaluator::log_utility() const {
  if (!track_log_) {
    throw std::logic_error(
        "log_utility() on an engine built with track_log_utility = false");
  }
  return values_.log_utility;
}

void IncrementalEvaluator::RefreshWifiDemand(std::size_t ext) {
  wifi_demand_[ext] = (load_[ext] > 0 && plc_rate_[ext] > 0.0)
                          ? static_cast<double>(load_[ext]) / inv_sum_[ext]
                          : 0.0;
}

void IncrementalEvaluator::ContributionOf(std::size_t ext,
                                          const double* time_share,
                                          double* agg, double* log) const {
  *agg = 0.0;
  *log = 0.0;
  const int n = load_[ext];
  if (n == 0) return;
  if (plc_rate_[ext] <= 0.0) {
    // Dead backhaul: users are stuck at zero end-to-end throughput; the
    // proportional-fair objective floors them.
    if (track_log_) *log = static_cast<double>(n) * log_of_floor_;
    return;
  }
  const double end_to_end =
      std::min(wifi_demand_[ext], time_share[ext] * plc_rate_[ext]);
  *agg = end_to_end;
  if (track_log_) {
    const double per_user = end_to_end / static_cast<double>(n);
    *log = static_cast<double>(n) * std::log(std::max(per_user, log_floor_));
  }
}

void IncrementalEvaluator::RecomputeDomain(std::size_t domain) {
  const std::size_t begin = static_cast<std::size_t>(domain_start_[domain]);
  const std::size_t count =
      static_cast<std::size_t>(domain_start_[domain + 1]) - begin;
  if (count == 0) return;
  const int* members = domain_items_.data() + begin;

  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t j = static_cast<std::size_t>(members[k]);
    values_.aggregate_mbps -= contrib_agg_[j];
    values_.log_utility -= contrib_log_[j];
  }

  switch (options_.plc_sharing) {
    case PlcSharing::kMaxMinActive:
      detail::MaxMinSharesInPlace(members, count, plc_rate_.data(),
                                  wifi_demand_.data(), time_share_.data(),
                                  mm_idx_.data());
      break;
    case PlcSharing::kEqualActive:
      detail::EqualSharesInPlace(members, count, wifi_demand_.data(),
                                 time_share_.data(),
                                 /*denominator_all=*/false);
      break;
    case PlcSharing::kEqualAll:
      detail::EqualSharesInPlace(members, count, wifi_demand_.data(),
                                 time_share_.data(),
                                 /*denominator_all=*/true);
      break;
  }

  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t j = static_cast<std::size_t>(members[k]);
    ContributionOf(j, time_share_.data(), &contrib_agg_[j], &contrib_log_[j]);
    values_.aggregate_mbps += contrib_agg_[j];
    values_.log_utility += contrib_log_[j];
  }
}

IncrementalValues IncrementalEvaluator::PeekCells(const std::size_t* cells,
                                                  const int* peek_load,
                                                  const double* peek_demand,
                                                  std::size_t count) {
  // Temporarily install the hypothetical (load, wifi_demand) of the touched
  // cells; everything below reads only those two arrays plus plc_rate_.
  int saved_load[2];
  double saved_demand[2];
  for (std::size_t k = 0; k < count; ++k) {
    saved_load[k] = load_[cells[k]];
    saved_demand[k] = wifi_demand_[cells[k]];
    load_[cells[k]] = peek_load[k];
    wifi_demand_[cells[k]] = peek_demand[k];
  }

  IncrementalValues peeked = values_;
  const int d0 = domain_of_[cells[0]];
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t d = static_cast<std::size_t>(domain_of_[cells[k]]);
    if (k > 0 && static_cast<int>(d) == d0) continue;  // already recomputed
    const std::size_t begin = static_cast<std::size_t>(domain_start_[d]);
    const std::size_t n =
        static_cast<std::size_t>(domain_start_[d + 1]) - begin;
    const int* members = domain_items_.data() + begin;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = static_cast<std::size_t>(members[i]);
      peeked.aggregate_mbps -= contrib_agg_[j];
      peeked.log_utility -= contrib_log_[j];
    }
    switch (options_.plc_sharing) {
      case PlcSharing::kMaxMinActive:
        detail::MaxMinSharesInPlace(members, n, plc_rate_.data(),
                                    wifi_demand_.data(), peek_ts_.data(),
                                    mm_idx_.data());
        break;
      case PlcSharing::kEqualActive:
        detail::EqualSharesInPlace(members, n, wifi_demand_.data(),
                                   peek_ts_.data(),
                                   /*denominator_all=*/false);
        break;
      case PlcSharing::kEqualAll:
        detail::EqualSharesInPlace(members, n, wifi_demand_.data(),
                                   peek_ts_.data(),
                                   /*denominator_all=*/true);
        break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = static_cast<std::size_t>(members[i]);
      double agg = 0.0, lg = 0.0;
      ContributionOf(j, peek_ts_.data(), &agg, &lg);
      peeked.aggregate_mbps += agg;
      peeked.log_utility += lg;
    }
  }

  for (std::size_t k = 0; k < count; ++k) {
    load_[cells[k]] = saved_load[k];
    wifi_demand_[cells[k]] = saved_demand[k];
  }
  return peeked;
}

void IncrementalEvaluator::RecomputeFallback() {
  const EvalResult& result = evaluator_.Evaluate(*net_, mirror_, scratch_);
  values_.aggregate_mbps = result.aggregate_mbps;
  double logsum = 0.0;
  for (std::size_t i = 0; i < mirror_.NumUsers(); ++i) {
    if (!mirror_.IsAssigned(i)) continue;
    logsum +=
        std::log(std::max(result.user_throughput_mbps[i], log_floor_));
  }
  values_.log_utility = logsum;
  result_stale_ = false;
}

double IncrementalEvaluator::UserThroughput(std::size_t user) {
  const int e = ext_of_[user];
  if (e == Assignment::kUnassigned) return 0.0;
  if (!incremental_) {
    if (result_stale_) RecomputeFallback();
    return scratch_.result.user_throughput_mbps[user];
  }
  const std::size_t j = static_cast<std::size_t>(e);
  if (plc_rate_[j] <= 0.0) return 0.0;
  const double end_to_end =
      std::min(wifi_demand_[j], time_share_[j] * plc_rate_[j]);
  return end_to_end / static_cast<double>(load_[j]);
}

void IncrementalEvaluator::ApplyMove(std::size_t user, int to) {
  if (user >= ext_of_.size()) {
    throw std::invalid_argument("unknown user");
  }
  const int from = ext_of_[user];
  if (to == from) return;
  if (to != Assignment::kUnassigned) {
    if (to < 0 || static_cast<std::size_t>(to) >= load_.size()) {
      throw std::invalid_argument("move references unknown extender");
    }
    const double r_to =
        incremental_
            ? inv_rate_[user * load_.size() + static_cast<std::size_t>(to)]
            : net_->WifiRate(user, static_cast<std::size_t>(to));
    if (r_to <= 0.0) {
      throw std::invalid_argument("move to unreachable extender");
    }
  }
  ++mutations_;

  if (!incremental_) {
    if (to == Assignment::kUnassigned) {
      mirror_.Unassign(user);
      --load_[static_cast<std::size_t>(from)];
    } else {
      if (from != Assignment::kUnassigned) {
        --load_[static_cast<std::size_t>(from)];
      }
      mirror_.Assign(user, static_cast<std::size_t>(to));
      ++load_[static_cast<std::size_t>(to)];
    }
    ext_of_[user] = to;
    RecomputeFallback();
    return;
  }

  const double* inv = &inv_rate_[user * load_.size()];
  if (from != Assignment::kUnassigned) {
    const std::size_t f = static_cast<std::size_t>(from);
    --load_[f];
    inv_sum_[f] -= inv[f];
    if (load_[f] == 0) inv_sum_[f] = 0.0;  // kill accumulated error
    RefreshWifiDemand(f);
  }
  if (to != Assignment::kUnassigned) {
    const std::size_t t = static_cast<std::size_t>(to);
    ++load_[t];
    inv_sum_[t] += inv[t];
    RefreshWifiDemand(t);
  }
  ext_of_[user] = to;

  const int d_from =
      from != Assignment::kUnassigned
          ? domain_of_[static_cast<std::size_t>(from)]
          : -1;
  const int d_to = to != Assignment::kUnassigned
                       ? domain_of_[static_cast<std::size_t>(to)]
                       : -1;
  if (d_from >= 0) RecomputeDomain(static_cast<std::size_t>(d_from));
  if (d_to >= 0 && d_to != d_from) {
    RecomputeDomain(static_cast<std::size_t>(d_to));
  }
}

IncrementalValues IncrementalEvaluator::PeekMove(std::size_t user, int to) {
  const int from = ext_of_[user];
  if (to == from) return values_;

  if (!incremental_) {
    // Evaluate the hypothetical assignment, then restore the mirror and the
    // cached values without a second evaluation; the cached EvalResult is
    // refreshed lazily if per-user throughputs are queried before the next
    // ApplyMove.
    const IncrementalValues saved = values_;
    if (to == Assignment::kUnassigned) {
      mirror_.Unassign(user);
    } else {
      if (static_cast<std::size_t>(to) >= load_.size() ||
          net_->WifiRate(user, static_cast<std::size_t>(to)) <= 0.0) {
        throw std::invalid_argument("move to unreachable extender");
      }
      mirror_.Assign(user, static_cast<std::size_t>(to));
    }
    RecomputeFallback();
    const IncrementalValues peeked = values_;
    if (from == Assignment::kUnassigned) {
      mirror_.Unassign(user);
    } else {
      mirror_.Assign(user, static_cast<std::size_t>(from));
    }
    values_ = saved;
    result_stale_ = true;
    return peeked;
  }

  const std::size_t num_ext = load_.size();
  const double* inv = &inv_rate_[user * num_ext];
  std::size_t cells[2];
  int peek_load[2];
  double peek_demand[2];
  std::size_t count = 0;
  if (from != Assignment::kUnassigned) {
    const std::size_t f = static_cast<std::size_t>(from);
    const int n = load_[f] - 1;
    double s = inv_sum_[f] - inv[f];
    if (n == 0) s = 0.0;  // kill accumulated error, as ApplyMove does
    cells[count] = f;
    peek_load[count] = n;
    peek_demand[count] =
        (n > 0 && plc_rate_[f] > 0.0) ? static_cast<double>(n) / s : 0.0;
    ++count;
  }
  if (to != Assignment::kUnassigned) {
    const std::size_t t = static_cast<std::size_t>(to);
    if (t >= num_ext || inv[t] <= 0.0) {
      throw std::invalid_argument("move to unreachable extender");
    }
    const int n = load_[t] + 1;
    cells[count] = t;
    peek_load[count] = n;
    peek_demand[count] = plc_rate_[t] > 0.0
                             ? static_cast<double>(n) / (inv_sum_[t] + inv[t])
                             : 0.0;
    ++count;
  }
  if (count == 0) return values_;
  return PeekCells(cells, peek_load, peek_demand, count);
}

IncrementalValues IncrementalEvaluator::PeekSwap(std::size_t u1,
                                                 std::size_t u2) {
  if (u1 >= ext_of_.size() || u2 >= ext_of_.size()) {
    throw std::invalid_argument("unknown user");
  }
  const int e1 = ext_of_[u1];
  const int e2 = ext_of_[u2];
  if (e1 == Assignment::kUnassigned || e2 == Assignment::kUnassigned) {
    throw std::invalid_argument("swap requires two assigned users");
  }
  if (e1 == e2) return values_;
  const std::size_t x1 = static_cast<std::size_t>(e1);
  const std::size_t x2 = static_cast<std::size_t>(e2);

  if (!incremental_) {
    const IncrementalValues saved = values_;
    if (net_->WifiRate(u1, x2) <= 0.0 || net_->WifiRate(u2, x1) <= 0.0) {
      throw std::invalid_argument("swap to unreachable extender");
    }
    mirror_.Assign(u1, x2);
    mirror_.Assign(u2, x1);
    RecomputeFallback();
    const IncrementalValues peeked = values_;
    mirror_.Assign(u1, x1);
    mirror_.Assign(u2, x2);
    values_ = saved;
    result_stale_ = true;
    return peeked;
  }

  const std::size_t num_ext = load_.size();
  const double* inv1 = &inv_rate_[u1 * num_ext];
  const double* inv2 = &inv_rate_[u2 * num_ext];
  if (inv1[x2] <= 0.0 || inv2[x1] <= 0.0) {
    throw std::invalid_argument("swap to unreachable extender");
  }
  // Loads are unchanged by an exchange; only the harmonic sums move.
  const std::size_t cells[2] = {x1, x2};
  const int peek_load[2] = {load_[x1], load_[x2]};
  double peek_demand[2];
  const double s1 = inv_sum_[x1] - inv1[x1] + inv2[x1];
  const double s2 = inv_sum_[x2] - inv2[x2] + inv1[x2];
  peek_demand[0] = plc_rate_[x1] > 0.0
                       ? static_cast<double>(load_[x1]) / s1
                       : 0.0;
  peek_demand[1] = plc_rate_[x2] > 0.0
                       ? static_cast<double>(load_[x2]) / s2
                       : 0.0;
  return PeekCells(cells, peek_load, peek_demand, 2);
}

IncrementalValues IncrementalEvaluator::MoveDelta(std::size_t user, int to) {
  const IncrementalValues before = values_;
  const IncrementalValues after = PeekMove(user, to);
  return {after.aggregate_mbps - before.aggregate_mbps,
          after.log_utility - before.log_utility};
}

}  // namespace wolt::model
