#include "model/network.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wolt::model {

std::uint64_t Network::NextVersionStamp() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

double Distance(const Position& a, const Position& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

namespace {
constexpr double kNoRssi = -std::numeric_limits<double>::infinity();
}  // namespace

Network::Network(std::size_t num_users, std::size_t num_extenders)
    : users_(num_users),
      extenders_(num_extenders),
      rates_(num_users * num_extenders, 0.0),
      rssi_(num_users * num_extenders, kNoRssi) {}

void Network::SetWifiRate(std::size_t user, std::size_t extender, double mbps) {
  if (mbps < 0.0) throw std::invalid_argument("negative WiFi rate");
  rates_.at(user * NumExtenders() + extender) = mbps;
  version_ = NextVersionStamp();
}

void Network::SetRssi(std::size_t user, std::size_t extender, double dbm) {
  rssi_.at(user * NumExtenders() + extender) = dbm;
  has_rssi_ = true;
}

double Network::Rssi(std::size_t user, std::size_t extender) const {
  return rssi_.at(user * NumExtenders() + extender);
}

void Network::SetPlcRate(std::size_t extender, double mbps) {
  if (mbps < 0.0) throw std::invalid_argument("negative PLC rate");
  extenders_.at(extender).plc_rate_mbps = mbps;
  version_ = NextVersionStamp();
}

void Network::SetMaxUsers(std::size_t extender, int max_users) {
  extenders_.at(extender).max_users = max_users;
  version_ = NextVersionStamp();
}

void Network::SetPlcDomain(std::size_t extender, int domain) {
  if (domain < 0) throw std::invalid_argument("negative PLC domain");
  extenders_.at(extender).plc_domain = domain;
  version_ = NextVersionStamp();
}

int Network::PlcDomain(std::size_t extender) const {
  return extenders_.at(extender).plc_domain;
}

void Network::SetWifiChannel(std::size_t extender, int channel) {
  if (channel < -1 || channel >= kMaxWifiChannels) {
    throw std::invalid_argument("WiFi channel out of range");
  }
  extenders_.at(extender).wifi_channel = channel;
  version_ = NextVersionStamp();
}

int Network::WifiChannel(std::size_t extender) const {
  return extenders_.at(extender).wifi_channel;
}

void Network::SetUserPosition(std::size_t user, Position p) {
  users_.at(user).position = p;
}

void Network::SetUserDemand(std::size_t user, double mbps) {
  if (mbps < 0.0) throw std::invalid_argument("negative demand");
  users_.at(user).demand_mbps = mbps;
  version_ = NextVersionStamp();
}

double Network::UserDemand(std::size_t user) const {
  return users_.at(user).demand_mbps;
}

void Network::SetExtenderPosition(std::size_t extender, Position p) {
  extenders_.at(extender).position = p;
  // Geometry is solver-visible once a channel plan is in play: carrier-sense
  // contention domains are derived from extender distances, and the channel-
  // aware evaluator caches that derivation keyed on Version().
  version_ = NextVersionStamp();
}

void Network::SetUserLabel(std::size_t user, std::string label) {
  users_.at(user).label = std::move(label);
}

void Network::SetExtenderLabel(std::size_t extender, std::string label) {
  extenders_.at(extender).label = std::move(label);
}

double Network::WifiRate(std::size_t user, std::size_t extender) const {
  return rates_.at(user * NumExtenders() + extender);
}

double Network::PlcRate(std::size_t extender) const {
  return extenders_.at(extender).plc_rate_mbps;
}

int Network::MaxUsers(std::size_t extender) const {
  return extenders_.at(extender).max_users;
}

bool Network::UserReachable(std::size_t user) const {
  for (std::size_t j = 0; j < NumExtenders(); ++j) {
    if (WifiRate(user, j) > 0.0) return true;
  }
  return false;
}

std::optional<std::size_t> Network::BestRateExtender(std::size_t user) const {
  std::optional<std::size_t> best;
  double best_rate = 0.0;
  for (std::size_t j = 0; j < NumExtenders(); ++j) {
    const double r = WifiRate(user, j);
    if (r > best_rate) {
      best_rate = r;
      best = j;
    }
  }
  return best;
}

std::optional<std::size_t> Network::BestRssiExtender(std::size_t user) const {
  if (!has_rssi_) return BestRateExtender(user);
  std::optional<std::size_t> best;
  double best_rssi = kNoRssi;
  for (std::size_t j = 0; j < NumExtenders(); ++j) {
    if (WifiRate(user, j) <= 0.0) continue;
    const double r = Rssi(user, j);
    if (!best || r > best_rssi) {
      best_rssi = r;
      best = j;
    }
  }
  return best;
}

std::size_t Network::AddUser(const User& user,
                             const std::vector<double>& rates) {
  if (rates.size() != NumExtenders()) {
    throw std::invalid_argument("rate row size != number of extenders");
  }
  users_.push_back(user);
  rates_.insert(rates_.end(), rates.begin(), rates.end());
  rssi_.insert(rssi_.end(), NumExtenders(), kNoRssi);
  version_ = NextVersionStamp();
  return users_.size() - 1;
}

void Network::RemoveUser(std::size_t user) {
  if (user >= NumUsers()) throw std::out_of_range("user index");
  const auto row = rates_.begin() +
                   static_cast<std::ptrdiff_t>(user * NumExtenders());
  rates_.erase(row, row + static_cast<std::ptrdiff_t>(NumExtenders()));
  const auto rssi_row = rssi_.begin() +
                        static_cast<std::ptrdiff_t>(user * NumExtenders());
  rssi_.erase(rssi_row, rssi_row + static_cast<std::ptrdiff_t>(NumExtenders()));
  users_.erase(users_.begin() + static_cast<std::ptrdiff_t>(user));
  version_ = NextVersionStamp();
}

}  // namespace wolt::model
