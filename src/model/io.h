// Plain-text serialization of Network instances, so measured deployments
// and generated scenarios can be stored, diffed, and replayed byte-for-byte
// (the scenario files under a real CC's /etc would use exactly this).
//
// Format (line-oriented, '#' comments allowed):
//   wolt-network 1
//   extenders <n>
//   extender <j> plc=<mbps> x=<m> y=<m> max_users=<k> [channel=<c>]
//       [label=<str>]
//   users <n>
//   user <i> x=<m> y=<m> demand=<mbps> [label=<str>]
//   rates <i> <r0>,<r1>,...        # one row per user
//   rssi <i> <v0>,<v1>,...         # optional rows
// Labels must not contain whitespace.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "model/network.h"

namespace wolt::model {

// What kind of defect stopped the parser. Every malformed input maps to one
// of these (never an exception or a crash — the golden-file test feeds the
// parser byte soup to hold it to that).
enum class IoErrorKind {
  kNone,           // parse succeeded
  kTruncated,      // stream ended where a record was required
  kBadHeader,      // missing/foreign magic line or unsupported version
  kBadCount,       // unparsable or zero section count
  kBadRecord,      // wrong keyword or out-of-sequence index
  kBadKeyValue,    // malformed key=value token or missing required key
  kBadNumber,      // unparsable or out-of-domain numeric value
  kBadDimension,   // rate/RSSI row length != extender count
  kTrailingInput,  // well-formed network followed by garbage
  kBadChannel,     // channel= not an integer in [0, kMaxWifiChannels)
};

const char* ToString(IoErrorKind kind);

struct IoError {
  IoErrorKind kind = IoErrorKind::kNone;
  int line = 0;  // 1-based input line of the defect; 0 when not applicable
  std::string message;
};

struct LoadResult {
  std::optional<Network> network;  // engaged iff the parse succeeded
  IoError error;                   // kind == kNone iff network is engaged

  bool ok() const { return network.has_value(); }
};

// Serialize to a stream / parse back. Load returns nullopt on any syntax
// or consistency error (wrong counts, bad numbers, out-of-range indices);
// LoadNetworkDetailed additionally reports what went wrong and where.
void SaveNetwork(const Network& net, std::ostream& out);
std::optional<Network> LoadNetwork(std::istream& in);
LoadResult LoadNetworkDetailed(std::istream& in);

// File convenience wrappers. SaveNetworkFile returns false if the file
// cannot be written.
bool SaveNetworkFile(const Network& net, const std::string& path);
std::optional<Network> LoadNetworkFile(const std::string& path);

// Round-trip helper used by tests: serialize to a string.
std::string NetworkToString(const Network& net);
std::optional<Network> NetworkFromString(const std::string& text);
LoadResult NetworkFromStringDetailed(const std::string& text);

}  // namespace wolt::model
