// Plain-text serialization of Network instances, so measured deployments
// and generated scenarios can be stored, diffed, and replayed byte-for-byte
// (the scenario files under a real CC's /etc would use exactly this).
//
// Format (line-oriented, '#' comments allowed):
//   wolt-network 1
//   extenders <n>
//   extender <j> plc=<mbps> x=<m> y=<m> max_users=<k> [label=<str>]
//   users <n>
//   user <i> x=<m> y=<m> demand=<mbps> [label=<str>]
//   rates <i> <r0>,<r1>,...        # one row per user
//   rssi <i> <v0>,<v1>,...         # optional rows
// Labels must not contain whitespace.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "model/network.h"

namespace wolt::model {

// Serialize to a stream / parse back. Load returns nullopt on any syntax
// or consistency error (wrong counts, bad numbers, out-of-range indices).
void SaveNetwork(const Network& net, std::ostream& out);
std::optional<Network> LoadNetwork(std::istream& in);

// File convenience wrappers. SaveNetworkFile returns false if the file
// cannot be written.
bool SaveNetworkFile(const Network& net, const std::string& path);
std::optional<Network> LoadNetworkFile(const std::string& path);

// Round-trip helper used by tests: serialize to a string.
std::string NetworkToString(const Network& net);
std::optional<Network> NetworkFromString(const std::string& text);

}  // namespace wolt::model
