// A user->extender association (the decision variables x_ij of Problem 1 in
// one-hot form). kUnassigned marks users not yet associated — the relaxed
// Phase-I state and newly arrived users in the dynamic simulator.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/network.h"

namespace wolt::model {

class Assignment {
 public:
  static constexpr int kUnassigned = -1;

  Assignment() = default;
  explicit Assignment(std::size_t num_users)
      : extender_of_(num_users, kUnassigned) {}

  std::size_t NumUsers() const { return extender_of_.size(); }

  int ExtenderOf(std::size_t user) const { return extender_of_.at(user); }
  // Contiguous per-user extender ids (NumUsers() entries, kUnassigned for
  // unassigned users). For hot kernels that have validated sizes already.
  const int* Data() const { return extender_of_.data(); }
  bool IsAssigned(std::size_t user) const {
    return extender_of_.at(user) != kUnassigned;
  }

  void Assign(std::size_t user, std::size_t extender) {
    extender_of_.at(user) = static_cast<int>(extender);
  }
  void Unassign(std::size_t user) { extender_of_.at(user) = kUnassigned; }

  // Keep the vector aligned with Network::AddUser / Network::RemoveUser.
  void AppendUser() { extender_of_.push_back(kUnassigned); }
  void EraseUser(std::size_t user) {
    extender_of_.erase(extender_of_.begin() +
                       static_cast<std::ptrdiff_t>(user));
  }

  std::size_t AssignedCount() const;

  // Users currently associated with extender j (the set N_j).
  std::vector<std::size_t> UsersOf(std::size_t extender) const;

  // Per-extender association counts, size = num_extenders.
  std::vector<int> LoadVector(std::size_t num_extenders) const;

  // Extenders with at least one associated user (the active set).
  std::vector<std::size_t> ActiveExtenders(std::size_t num_extenders) const;

  // All users assigned, every assigned rate > 0, and every B_j respected.
  bool IsCompleteFor(const Network& net) const;
  // Partial validity: every *assigned* user has positive rate and B_j holds.
  bool IsValidFor(const Network& net) const;

  // Number of users whose extender differs between the two assignments
  // (both must cover the same users). Users unassigned in `before` (new
  // arrivals) are not counted as re-assignments.
  static std::size_t CountReassignments(const Assignment& before,
                                        const Assignment& after);

  // Debug rendering, e.g. "[0->2, 1->0, 2->?]".
  std::string ToString() const;

  bool operator==(const Assignment&) const = default;

 private:
  std::vector<int> extender_of_;
};

}  // namespace wolt::model
