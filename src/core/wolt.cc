#include "core/wolt.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "assign/hungarian.h"
#include "assign/nlp.h"

namespace wolt::core {
namespace {

bool MaskAllows(std::span<const std::uint8_t> mask, std::size_t ext) {
  return mask.empty() || mask[ext] != 0;
}

// Extenders eligible for Phase I: enabled by the mask, live PLC link, and
// at least one user that can hear them.
std::vector<std::size_t> ServiceableExtenders(
    const model::Network& net, std::span<const std::uint8_t> mask) {
  std::vector<std::size_t> extenders;
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    if (!MaskAllows(mask, j)) continue;
    if (net.PlcRate(j) <= 0.0) continue;
    bool reachable = false;
    for (std::size_t i = 0; i < net.NumUsers(); ++i) {
      if (net.WifiRate(i, j) > 0.0) {
        reachable = true;
        break;
      }
    }
    if (reachable) extenders.push_back(j);
  }
  return extenders;
}

// A user counts as reachable when some enabled extender hears it.
bool ReachableUnderMask(const model::Network& net, std::size_t user,
                        std::span<const std::uint8_t> mask) {
  if (mask.empty()) return net.UserReachable(user);
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    if (mask[j] && net.WifiRate(user, j) > 0.0) return true;
  }
  return false;
}

}  // namespace

Phase1Result WoltPolicy::ComputePhase1(const model::Network& net) const {
  return ComputePhase1(net, {});
}

Phase1Result WoltPolicy::ComputePhase1(
    const model::Network& net, std::span<const std::uint8_t> mask) const {
  // Phase I opens a solve: rewind the solve arena so this solve's scratch
  // (Hungarian workspace, then the Phase-II search state stacked on top)
  // reuses the blocks warmed by earlier solves.
  arena_.Reset();

  Phase1Result result;
  result.user_of_extender.assign(net.NumExtenders(), -1);

  const std::vector<std::size_t> extenders = ServiceableExtenders(net, mask);
  const std::size_t num_users = net.NumUsers();
  if (extenders.empty() || num_users == 0) return result;

  // Alg. 1 lines 1-3: task utilities. |A| is the number of extenders that
  // participate in the assignment within the extender's own PLC contention
  // domain (all of them are active in the modified problem by
  // construction; with the paper's single domain this is just the total).
  std::vector<double> domain_count;
  for (std::size_t j : extenders) {
    const std::size_t d = static_cast<std::size_t>(net.PlcDomain(j));
    if (d >= domain_count.size()) domain_count.resize(d + 1, 0.0);
    domain_count[d] += 1.0;
  }
  const auto utility = [&](std::size_t user, std::size_t ext) {
    const double r = net.WifiRate(user, ext);
    if (r <= 0.0) return assign::kForbidden;
    if (options_.phase1_utility == Phase1Utility::kWifiOnly) return r;
    const double peers =
        domain_count[static_cast<std::size_t>(net.PlcDomain(ext))];
    return std::min(net.PlcRate(ext) / peers, r);
  };

  // Per-extender PLC share, hoisted out of the O(rows x cols) matrix fill
  // (the division and domain lookup are invariant per extender). +inf makes
  // the min() below collapse to the raw WiFi rate, reproducing kWifiOnly
  // without a branch in the inner loop.
  std::vector<double> share(extenders.size());
  for (std::size_t k = 0; k < extenders.size(); ++k) {
    const std::size_t ext = extenders[k];
    share[k] =
        options_.phase1_utility == Phase1Utility::kWifiOnly
            ? std::numeric_limits<double>::infinity()
            : net.PlcRate(ext) /
                  domain_count[static_cast<std::size_t>(net.PlcDomain(ext))];
  }

  // Hungarian needs rows <= cols; transpose when users are the scarce side.
  // Either way the fill walks each user's contiguous rate row exactly once.
  const bool extenders_are_rows = extenders.size() <= num_users;
  const std::size_t rows =
      extenders_are_rows ? extenders.size() : num_users;
  const std::size_t cols =
      extenders_are_rows ? num_users : extenders.size();
  assign::Matrix utilities(rows, cols, 0.0);
  if (extenders_are_rows) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double* rates = net.WifiRateRow(c);
      for (std::size_t r = 0; r < rows; ++r) {
        const double rate = rates[extenders[r]];
        utilities(r, c) =
            rate <= 0.0 ? assign::kForbidden : std::min(share[r], rate);
      }
    }
  } else {
    for (std::size_t r = 0; r < rows; ++r) {
      const double* rates = net.WifiRateRow(r);
      double* out = utilities.Row(r);
      for (std::size_t c = 0; c < cols; ++c) {
        const double rate = rates[extenders[c]];
        out[c] = rate <= 0.0 ? assign::kForbidden : std::min(share[c], rate);
      }
    }
  }

  const assign::HungarianResult hungarian =
      assign::SolveAssignmentMax(utilities, deadline_, &arena_);
  result.deadline_hit = hungarian.deadline_hit;
  result.total_utility = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    if (hungarian.col_of_row[r] < 0) continue;  // deadline-truncated row
    const std::size_t c = static_cast<std::size_t>(hungarian.col_of_row[r]);
    const std::size_t user = extenders_are_rows ? c : r;
    const std::size_t ext = extenders_are_rows ? extenders[r] : extenders[c];
    if (net.WifiRate(user, ext) <= 0.0) continue;  // forbidden fallback pick
    result.user_of_extender[ext] = static_cast<int>(user);
    result.u1_users.push_back(user);
    result.total_utility += utility(user, ext);
  }
  std::sort(result.u1_users.begin(), result.u1_users.end());
  return result;
}

model::Assignment WoltPolicy::Associate(const model::Network& net,
                                        const model::Assignment& previous) {
  if (previous.NumUsers() != net.NumUsers()) {
    throw std::invalid_argument("previous assignment size mismatch");
  }
  if (options_.subset_search) return AssociateSubsetSearch(net, previous);
  return AssociateOnce(net, previous, {});
}

model::Assignment WoltPolicy::AssociateSubsetSearch(
    const model::Network& net, const model::Assignment& previous) {
  // Rank extenders by PLC rate; candidate k keeps the k strongest links
  // enabled via an activation mask so neither phase can use the rest (no
  // per-candidate Network copy). The candidate with the best true aggregate
  // wins; leftover users (only reachable via excluded extenders) are
  // re-inserted on the full network afterwards so constraint (7) still
  // holds.
  std::vector<std::size_t> order;
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    if (net.PlcRate(j) > 0.0) order.push_back(j);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return net.PlcRate(a) > net.PlcRate(b);
  });

  const model::Evaluator evaluator(options_.eval);
  model::EvalScratch scratch;
  model::Assignment best(net.NumUsers());
  double best_aggregate = -1.0;
  std::vector<std::uint8_t> mask(net.NumExtenders(), 0);
  for (std::size_t k = 1; k <= order.size(); ++k) {
    // Always evaluate the first candidate (every inner solver truncates
    // internally on expiry, so a result always exists); skip the rest of
    // the activation ladder once the budget is gone.
    if (k > 1 && util::DeadlineExpired(deadline_)) break;
    mask[order[k - 1]] = 1;  // masks are nested: candidate k adds one link
    model::Assignment candidate = AssociateOnce(net, previous, mask);
    const double aggregate =
        evaluator.Evaluate(net, candidate, scratch).aggregate_mbps;
    if (aggregate > best_aggregate) {
      best_aggregate = aggregate;
      best = std::move(candidate);
    }
  }

  // Connect users the winning candidate had to leave out, then polish the
  // whole assignment against the true end-to-end aggregate (the subset
  // prefixes are ranked by PLC rate only; geography can make a non-prefix
  // activation set better, which single-user moves recover).
  assign::LocalSearchOptions polish;
  polish.objective = assign::Phase2Objective::kEndToEnd;
  polish.eval = options_.eval;
  polish.deadline = deadline_;
  soa_.Refresh(net);
  polish.soa = &soa_;
  polish.arena = &arena_;
  std::vector<std::size_t> leftover;
  std::vector<std::size_t> everyone;
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    if (!net.UserReachable(i)) continue;
    everyone.push_back(i);
    if (!best.IsAssigned(i)) leftover.push_back(i);
  }
  if (!leftover.empty()) {
    GreedyInsert(net, best, leftover, polish);
  }
  assign::RelocateLocalSearch(net, best, everyone, polish);
  return best;
}

model::Assignment WoltPolicy::AssociateOnce(
    const model::Network& net, const model::Assignment& previous,
    std::span<const std::uint8_t> mask) {
  // Phase I: seed each extender with its Hungarian-selected user.
  const Phase1Result phase1 = ComputePhase1(net, mask);
  model::Assignment assign(net.NumUsers());
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    const int user = phase1.user_of_extender[j];
    if (user >= 0) assign.Assign(static_cast<std::size_t>(user), j);
  }

  // Phase II: place U2 = everyone not chosen in Phase I.
  std::vector<std::size_t> u2;
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    if (!assign.IsAssigned(i) && ReachableUnderMask(net, i, mask)) {
      u2.push_back(i);
    }
  }

  if (options_.use_nlp_phase2) {
    assign::NlpOptions nlp_options;
    nlp_options.deadline = deadline_;
    if (mask.empty()) {
      const assign::NlpResult nlp =
          assign::SolvePhase2Nlp(net, assign, u2, nlp_options);
      return nlp.rounded;
    }
    // The projected-gradient solver has no activation-mask concept; blank
    // the masked-out extenders from a network copy (rare path: NLP inside
    // the subset search).
    model::Network masked = net;
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      if (mask[j]) continue;
      for (std::size_t i = 0; i < net.NumUsers(); ++i) {
        masked.SetWifiRate(i, j, 0.0);
      }
    }
    const assign::NlpResult nlp =
        assign::SolvePhase2Nlp(masked, assign, u2, nlp_options);
    return nlp.rounded;
  }

  assign::LocalSearchOptions ls;
  ls.objective = options_.phase2_objective;
  ls.eval = options_.eval;
  ls.extender_mask = mask;
  ls.deadline = deadline_;
  // Data-oriented hot path: the search borrows the cached SoA view (rebuilt
  // only when the network changed) and stacks its scratch on the solve
  // arena Phase I already opened. Steady-state solves touch no heap.
  soa_.Refresh(net);
  ls.soa = &soa_;
  ls.arena = &arena_;
  ls.pool = options_.phase2_pool;
  ls.start_arenas = &start_arenas_;

  bool seeded = false;
  if (options_.sticky) {
    // Persisting users keep their extender as the Phase-II starting point;
    // local search then only moves them for material gain. This is what
    // bounds per-epoch churn (Fig. 6c).
    std::vector<int> load = assign.LoadVector(net.NumExtenders());
    for (std::size_t user : u2) {
      const int prev = previous.ExtenderOf(user);
      if (prev == model::Assignment::kUnassigned) continue;
      const std::size_t ext = static_cast<std::size_t>(prev);
      // A previous extender that became unreachable, masked out of the
      // candidate activation set, or whose power-line link died is not a
      // valid seed — the user re-enters as an arrival.
      if (!MaskAllows(mask, ext)) continue;
      if (net.WifiRate(user, ext) <= 0.0 || net.PlcRate(ext) <= 0.0) continue;
      const int cap = net.MaxUsers(ext);
      if (cap > 0 && load[ext] >= cap) continue;
      assign.Assign(user, ext);
      ++load[ext];
      seeded = true;
    }
  }

  if (seeded) {
    // Sticky path: single start from the carried-over configuration.
    GreedyInsert(net, assign, u2, ls);
    if (options_.local_search) {
      assign::RelocateLocalSearch(net, assign, u2, ls);
    }
  } else if (options_.local_search) {
    assign::SolvePhase2MultiStart(net, assign, u2, ls);
  } else {
    GreedyInsert(net, assign, u2, ls);
  }
  return assign;
}

assign::JointAssociator WoltJointAssociator(WoltOptions base) {
  base.phase2_objective = assign::Phase2Objective::kEndToEnd;
  return [base](const model::Network& net, const model::EvalOptions& eval,
                const model::Assignment& previous,
                const util::Deadline* deadline) {
    WoltOptions o = base;
    o.eval = eval;
    WoltPolicy policy(o);
    policy.SetDeadline(deadline);
    return policy.Associate(net, previous);
  };
}

}  // namespace wolt::core
