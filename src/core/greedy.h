// The paper's centralized online greedy baseline (§V-B): each newly arriving
// user is assigned to the extender that maximizes the aggregate end-to-end
// throughput given all existing associations (which are never revisited).
// If no extender improves the aggregate, the user goes where it degrades the
// aggregate least — both cases are the same argmax over the post-assignment
// aggregate, which is how the paper's CC implements it.
#pragma once

#include "core/policy.h"
#include "model/evaluator.h"

namespace wolt::core {

class GreedyPolicy : public AssociationPolicy {
 public:
  explicit GreedyPolicy(model::EvalOptions eval = {}) : evaluator_(eval) {}

  std::string Name() const override { return "Greedy"; }

  // Users unassigned in `previous` are placed one at a time in index order
  // (index order is arrival order in the dynamic simulator). Existing users
  // are never re-assigned. Honors the inherited deadline: placement stops
  // between users on expiry, leaving later arrivals unassigned.
  model::Assignment Associate(const model::Network& net,
                              const model::Assignment& previous) override;

 private:
  model::Evaluator evaluator_;
};

}  // namespace wolt::core
