// The Central Controller (CC) runtime of §V-A.
//
// In the paper's deployment, WOLT runs as a user-space utility: a client
// that wants to associate scans the reachable extenders, estimates each
// link's rate from the NIC's MCS report, and sends the measurements to the
// CC; the CC knows every PLC link's (offline-estimated) capacity and every
// existing association, computes the assignment, and answers with
// association directives (the client initially camps on the best-RSSI
// extender and switches if directed). This module implements that control
// plane: stable external user ids over a mutating Network, message types
// with a line-based wire encoding, and directive diffing so clients are
// only told to move when their extender actually changed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/policy.h"
#include "model/evaluator.h"
#include "model/network.h"

namespace wolt::core {

// --- Wire messages -------------------------------------------------------

// Client -> CC: measurement report of a (new or existing) user.
struct ScanReport {
  std::int64_t user_id = 0;
  std::vector<double> rates_mbps;  // per extender; 0 = unreachable
  std::vector<double> rssi_dbm;    // optional; empty or per extender
};

// CC -> client: associate with this extender.
struct AssociationDirective {
  std::int64_t user_id = 0;
  int extender = 0;
};

// Probe -> CC: offline PLC capacity estimate for one extender (§V-A).
struct CapacityReport {
  int extender = 0;
  double capacity_mbps = 0.0;
};

// Line-based wire format, e.g.
//   SCAN user=7 rates=10.5,0,32.5 rssi=-70.1,-90.0,-60.2
//   DIRECTIVE user=7 extender=2
//   CAPACITY extender=1 mbps=120.5
std::string Encode(const ScanReport& msg);
std::string Encode(const AssociationDirective& msg);
std::string Encode(const CapacityReport& msg);
std::optional<ScanReport> DecodeScanReport(const std::string& line);
std::optional<AssociationDirective> DecodeAssociationDirective(
    const std::string& line);
std::optional<CapacityReport> DecodeCapacityReport(const std::string& line);

// --- Controller ----------------------------------------------------------

class CentralController {
 public:
  // Takes ownership of the association policy (WOLT in the paper; any
  // AssociationPolicy works).
  CentralController(std::size_t num_extenders, PolicyPtr policy);

  // Record an offline capacity estimate for one extender.
  void HandleCapacityReport(const CapacityReport& report);

  // A new user reports its scan. Runs the policy and returns directives
  // for every user whose extender changed (including the new user).
  // Throws std::invalid_argument on duplicate ids or malformed reports.
  std::vector<AssociationDirective> HandleUserArrival(
      const ScanReport& report);

  // An existing user refreshes its measurements (mobility). The policy is
  // re-run; returns directives for every moved user.
  std::vector<AssociationDirective> HandleScanUpdate(
      const ScanReport& report);

  // A user disconnected. No directives result (remaining users keep their
  // extenders until the next arrival/update/reoptimize).
  void HandleUserDeparture(std::int64_t user_id);

  // Re-run the policy over the current state (the epoch-boundary action of
  // the dynamic experiments).
  std::vector<AssociationDirective> Reoptimize();

  // Current association of a user, if known and associated.
  std::optional<int> ExtenderOf(std::int64_t user_id) const;

  std::size_t NumUsers() const { return net_.NumUsers(); }
  const model::Network& network() const { return net_; }

  // Aggregate throughput of the current association under the physical
  // evaluation model.
  double CurrentAggregate() const;

 private:
  std::size_t IndexOf(std::int64_t user_id) const;
  void ApplyReport(std::size_t index, const ScanReport& report);
  std::vector<AssociationDirective> RunPolicy();

  model::Network net_;
  model::Assignment assignment_;
  PolicyPtr policy_;
  std::vector<std::int64_t> id_of_index_;
  std::unordered_map<std::int64_t, std::size_t> index_of_id_;
};

}  // namespace wolt::core
