// The Central Controller (CC) runtime of §V-A.
//
// In the paper's deployment, WOLT runs as a user-space utility: a client
// that wants to associate scans the reachable extenders, estimates each
// link's rate from the NIC's MCS report, and sends the measurements to the
// CC; the CC knows every PLC link's (offline-estimated) capacity and every
// existing association, computes the assignment, and answers with
// association directives (the client initially camps on the best-RSSI
// extender and switches if directed). This module implements that control
// plane: stable external user ids over a mutating Network, message types
// with a line-based wire encoding, and directive diffing so clients are
// only told to move when their extender actually changed.
//
// The control plane is hardened for a lossy wire (see fault/plane.h and
// DESIGN.md "Failure semantics and the fault plane"):
//   * Decoders never throw; malformed bytes — NaN/Inf/negative rates,
//     overflowing ids, trailing garbage, duplicate keys — yield nullopt.
//   * Handlers never throw on bad *messages*; they return a typed
//     HandleStatus instead (constructor misuse still throws: that is a
//     programming error, not a wire fault).
//   * Directives are retried with capped exponential backoff until acked;
//     re-delivery is idempotent on both ends.
//   * Measurements are timestamped; a user whose scans stop arriving keeps
//     its last-known-good rates (and its association) until the staleness
//     eviction threshold, so a lost scan never drops a live user.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/policy.h"
#include "model/evaluator.h"
#include "model/network.h"

namespace wolt::util {
class ByteCursor;
class Deadline;
}  // namespace wolt::util

namespace wolt::core {

// --- Wire messages -------------------------------------------------------

// Client -> CC: measurement report of a (new or existing) user.
struct ScanReport {
  std::int64_t user_id = 0;
  std::vector<double> rates_mbps;  // per extender; 0 = unreachable
  std::vector<double> rssi_dbm;    // optional; empty or per extender
  // Optional: the extender the client is actually camped on (-1 = none).
  // Lets the CC reconcile its believed association against reality after
  // directives were lost on the wire.
  std::optional<int> associated_extender;
  // Optional: the client's current offered load in Mbit/s (0 = saturated).
  // Carried by dynamic workload traces so diurnal/bursty demand curves reach
  // the evaluator; absent = leave the user's stored demand untouched.
  std::optional<double> demand_mbps;
};

// CC -> client: associate with this extender.
struct AssociationDirective {
  std::int64_t user_id = 0;
  int extender = 0;
};

// Client -> CC: directive received and applied.
struct DirectiveAck {
  std::int64_t user_id = 0;
  int extender = 0;
};

// Client -> CC: clean goodbye. (May be lost; staleness eviction is the
// backstop that reaps ghost users.)
struct DepartureNotice {
  std::int64_t user_id = 0;
};

// Probe -> CC: offline PLC capacity estimate for one extender (§V-A).
struct CapacityReport {
  int extender = 0;
  double capacity_mbps = 0.0;
};

// Line-based wire format, e.g.
//   SCAN user=7 rates=10.5,0,32.5 rssi=-70.1,-90.0,-60.2 assoc=2
//   DIRECTIVE user=7 extender=2
//   ACK user=7 extender=2
//   DEPART user=7
//   CAPACITY extender=1 mbps=120.5
// Decoders are total: any input — including corrupted bytes — yields either
// a fully validated message (finite values, non-negative rates/capacities,
// in-range ids) or nullopt. They never throw.
std::string Encode(const ScanReport& msg);
std::string Encode(const AssociationDirective& msg);
std::string Encode(const DirectiveAck& msg);
std::string Encode(const DepartureNotice& msg);
std::string Encode(const CapacityReport& msg);
std::optional<ScanReport> DecodeScanReport(const std::string& line);
std::optional<AssociationDirective> DecodeAssociationDirective(
    const std::string& line);
std::optional<DirectiveAck> DecodeDirectiveAck(const std::string& line);
std::optional<DepartureNotice> DecodeDepartureNotice(const std::string& line);
std::optional<CapacityReport> DecodeCapacityReport(const std::string& line);

// --- Controller ----------------------------------------------------------

// Typed rejection of a control message. Handlers return these instead of
// throwing: a malformed or duplicated message from the wire must never be
// able to take the controller down.
enum class HandleStatus {
  kOk = 0,
  kMalformed,        // non-finite/negative fields, wrong extender count
  kDuplicateUser,    // arrival for an id that is already registered
  kUnknownUser,      // update/departure/ack for an id never seen (or evicted)
  kUnknownExtender,  // capacity report for an out-of-range extender
  kIgnoredStale,     // ack for a superseded directive; pending one kept
};
const char* ToString(HandleStatus s);

// Machine-readable fault category behind a HandleStatus — what a fleet
// supervisor keys restart-vs-circuit-break decisions on. The distinction
// matters operationally: wire faults and state conflicts are expected under
// loss/corruption/replay and must never count against a shard's health,
// while a programming error (an exception escaping the controller) is
// evidence the shard's state machine is wedged and a restart is warranted.
enum class ErrorCategory {
  kNone = 0,          // kOk: nothing went wrong
  kWireFault,         // bytes arrived mangled (malformed fields)
  kStateConflict,     // valid message, stale world-view: duplicate arrivals,
                      // unknown ids (evicted/never seen), superseded acks —
                      // the expected residue of a lossy, reordering wire
  kProgrammingError,  // an invariant break, not a wire artefact
};
const char* ToString(ErrorCategory c);
ErrorCategory CategoryOf(HandleStatus s);

struct HandleResult {
  HandleStatus status = HandleStatus::kOk;
  std::vector<AssociationDirective> directives;
  bool ok() const { return status == HandleStatus::kOk; }
  ErrorCategory category() const { return CategoryOf(status); }
};

// Retransmission schedule for unacknowledged directives: exponential
// backoff starting at `initial_backoff`, multiplied per attempt and capped
// at `max_backoff`; after `max_attempts` total sends the directive is
// abandoned (the scan-report reconciliation path re-issues it if the client
// is still live and mismatched).
struct RetryParams {
  double initial_backoff = 1.0;
  double multiplier = 2.0;
  double max_backoff = 8.0;
  int max_attempts = 5;
};

// Which rung of the anytime degradation ladder served a budgeted
// reoptimization epoch (Reoptimize(budget_seconds)). Ordered cheapest-last:
// the controller runs the ladder bottom-up and keeps the best tier that
// completed within the wall-clock budget.
// New tiers append at the end: the value is journal-encoded by the fleet
// runtime, so reordering would corrupt old journals.
enum class ReoptTier {
  kFull = 0,        // the configured policy, full solve
  kHungarianOnly,   // WOLT Phase I only (no local search), sticky Phase II
  kGreedy,          // greedy re-insertion of evacuated users only
  kHoldLastGood,    // previous assignment, dead-backhaul users evacuated
  kJoint,           // joint association + channel recolouring (SetJointMode)
};
const char* ToString(ReoptTier t);

// Virtual-unit cost of one reoptimization at each ladder rung — the
// deterministic budget currency shared by the fleet scheduler and the
// workload frontier sweeps (wall-clock budgets are not reproducible across
// hosts, so budgeted-but-deterministic paths price tiers in these units).
std::size_t TierCost(ReoptTier tier);

// The best rung affordable with `units` budget units: the most expensive
// tier whose TierCost fits. units <= 0 means unbudgeted — the full solve
// (kJoint when joint mode is on). kJoint is only returned with
// joint_enabled, since the tier is inert without a channel plan.
ReoptTier TierForBudgetUnits(int units, bool joint_enabled = false);

// Outcome of one budgeted reoptimization epoch.
struct ReoptReport {
  ReoptTier tier = ReoptTier::kFull;  // the rung that served this epoch
  // True when the budget expired before the full policy finished — i.e. a
  // degraded tier (or hold-last-good) served the epoch.
  bool budget_limited = false;
  std::vector<AssociationDirective> directives;
};

// Flap quarantine (hysteresis on backhaul capacity oscillation). A PLC link
// whose capacity reports cross the up/down boundary `flap_threshold` or
// more times within `window` time units is quarantined: the controller
// plans as if the link were down (PLC rate forced to 0) until the link has
// been flap-free for `hold` time units, then the last reported capacity is
// restored. flap_threshold = 0 (the default) disables quarantine entirely,
// preserving pre-existing behavior.
struct QuarantineParams {
  int flap_threshold = 0;  // up<->down transitions that trip; 0 = off
  double window = 10.0;    // sliding window the transitions are counted in
  double hold = 30.0;      // flap-free time required before release
};

// Joint association + channel assignment mode (ReoptTier::kJoint). With
// num_channels > 0 the controller maintains a committed per-extender channel
// plan: every quality comparison (do-no-harm guard, CurrentAggregate) scores
// under the overlap model of that plan, and the kJoint ladder rung — the new
// top of the budgeted ladder — runs assign::SolveJointAlternating to propose
// a (re-association, recolouring) pair that is committed atomically on
// adoption. num_channels = 0 (the default) disables the tier and preserves
// pre-existing behavior bit-for-bit.
struct JointModeParams {
  int num_channels = 0;  // orthogonal channels available; 0 = joint mode off
  double carrier_sense_range_m = 60.0;  // co-channel contention radius
  int max_rounds = 4;  // alternating rounds per solve (recolour+reassociate)
};

class CentralController {
 public:
  // Takes ownership of the association policy (WOLT in the paper; any
  // AssociationPolicy works). Throws std::invalid_argument on zero
  // extenders or a null policy (construction bugs, not wire input).
  CentralController(std::size_t num_extenders, PolicyPtr policy,
                    RetryParams retry = {}, QuarantineParams quarantine = {});

  // Advance the controller's monotonic clock (time units are the caller's;
  // the dynamic simulator uses DES time). Staleness ages and retry backoff
  // are measured against this clock. Never moves backwards.
  void AdvanceTime(double now);
  double Now() const { return now_; }

  // Record an offline capacity estimate for one extender.
  HandleStatus HandleCapacityReport(const CapacityReport& report);

  // A new user reports its scan. Runs the policy; the result carries
  // directives for every user whose extender changed (including the new
  // user). Duplicate ids and malformed reports are rejected via status,
  // leaving the controller state untouched.
  HandleResult HandleUserArrival(const ScanReport& report);

  // An existing user refreshes its measurements (mobility). The policy is
  // re-run; the result carries directives for every moved user. If the
  // report names the client's actual extender and it disagrees with the
  // controller's believed association, the believed directive is re-issued
  // (reconciliation after lost directives).
  HandleResult HandleScanUpdate(const ScanReport& report);

  // Trace-replay ingestion: apply a scan (arrival or refresh) WITHOUT
  // running the association policy. New users are registered unassigned and
  // existing users get their measurements refreshed (same unreachable-
  // extender unassignment rule as HandleScanUpdate, but no reconciliation
  // and no directives) — the epoch boundary's Reoptimize*() call places
  // everyone in one solve instead of one policy run per trace event.
  // Validation and statuses match the per-event handlers.
  HandleStatus IngestScan(const ScanReport& report);

  // A user disconnected. No directives result (remaining users keep their
  // extenders until the next arrival/update/reoptimize).
  HandleStatus HandleUserDeparture(std::int64_t user_id);

  // A client confirmed a directive. Duplicate acks are idempotent (kOk);
  // acks for a superseded directive are ignored (kIgnoredStale).
  HandleStatus HandleDirectiveAck(const DirectiveAck& ack);

  // Re-run the policy over the current state (the epoch-boundary action of
  // the dynamic experiments).
  std::vector<AssociationDirective> Reoptimize();

  // Deadline-bounded epoch reoptimization: spend at most `budget_seconds`
  // of wall clock and always return a valid assignment. The degradation
  // ladder runs cheapest-first — hold-last-good (with dead-backhaul users
  // evacuated), greedy re-insertion, WOLT Phase I + sticky Phase II, then
  // the full configured policy — and each rung only starts while budget
  // remains and only serves if it finished within budget. Inside a rung the
  // deadline token is threaded into the solvers, which poll it per bounded
  // unit of work, so overrun past the budget is at most one such unit. The
  // do-no-harm guard of Reoptimize() applies to the final selection. A
  // non-positive budget degenerates to hold-last-good. A generous budget
  // (one the full policy fits in) produces exactly Reoptimize()'s result.
  ReoptReport Reoptimize(double budget_seconds);

  // Clock-free epoch reoptimization at one explicit ladder rung. This is the
  // deterministic sibling of Reoptimize(budget_seconds): the fleet runtime's
  // virtual-budget scheduler picks the tier, so the outcome is a pure
  // function of controller state (no wall clock involved), which is what
  // makes fleet runs byte-identical across thread counts and across
  // crash/resume. The do-no-harm guard still applies, so the report's tier
  // can demote to kHoldLastGood on quality grounds; budget_limited is true
  // iff a tier below kFull was requested or the guard demoted.
  ReoptReport ReoptimizeAtTier(ReoptTier tier);

  // Clock-free cumulative ladder: solve every rung whose TierCost fits
  // within `top`'s cost and commit the best-scoring candidate (ties go to
  // the cheaper rung, which holds more users in place). Because the
  // candidate set at a larger budget is a superset of the set at any
  // smaller one, the committed aggregate — and therefore regret against a
  // fixed per-epoch oracle — is monotone in the budget, which is the
  // contract the trace-frontier sweep measures. ReoptimizeAtTier() by
  // contrast runs exactly one solver and only guards against the
  // hold-last-good baseline.
  ReoptReport ReoptimizeUpToTier(ReoptTier top);

  // Directives due for retransmission at Now(), in user-id order. Each
  // returned directive has its attempt count bumped and its backoff
  // doubled (capped); exhausted directives are abandoned instead and
  // counted in DirectivesGivenUp().
  std::vector<AssociationDirective> CollectRetries();

  // Remove every user whose last accepted scan is older than `max_age`
  // (ghost users whose departure notice was lost). Returns evicted ids.
  std::vector<std::int64_t> EvictStale(double max_age);

  // Current association of a user, if known and associated.
  std::optional<int> ExtenderOf(std::int64_t user_id) const;
  bool KnowsUser(std::int64_t user_id) const;
  std::vector<std::int64_t> UserIds() const;

  // Age of a user's last accepted scan / an extender's last accepted
  // capacity report; +infinity when never seen.
  double ScanAge(std::int64_t user_id) const;
  double CapacityAge(int extender) const;

  std::size_t PendingDirectives() const { return pending_.size(); }
  std::size_t DirectivesGivenUp() const { return given_up_; }

  // Flap-quarantine introspection. IsQuarantined is false for out-of-range
  // extenders and always false when quarantine is disabled.
  bool IsQuarantined(int extender) const;
  std::size_t QuarantineTrips() const { return quarantine_trips_; }
  std::size_t QuarantineReleases() const { return quarantine_releases_; }

  std::size_t NumUsers() const { return net_.NumUsers(); }
  const model::Network& network() const { return net_; }
  const model::Assignment& assignment() const { return assignment_; }

  // Enable (num_channels > 0) or disable (0) joint channel-assignment mode.
  // Throws std::invalid_argument on negative num_channels/max_rounds or a
  // non-positive carrier-sense range. Disabling clears the committed plan.
  void SetJointMode(JointModeParams params);
  const JointModeParams& joint_mode() const { return joint_; }
  // The committed per-extender channel plan; empty until a kJoint epoch has
  // been adopted (or after RestoreState of a controller that had one).
  const std::vector<int>& ChannelPlan() const { return channel_plan_; }

  // Aggregate throughput of the current association under the physical
  // evaluation model.
  double CurrentAggregate() const;

  // Crash-safe state snapshot: appends every field that affects future
  // behaviour (network rates, association, ids, staleness clocks, pending
  // directives, quarantine bookkeeping) to `out`, encoded via util/codec.h
  // with bit-exact doubles. The policy and the construction parameters are
  // deliberately NOT captured: restore into a controller constructed with
  // the same (num_extenders, policy, retry, quarantine).
  void SaveState(std::string* out) const;
  // Replaces this controller's state wholesale from a SaveState cursor
  // position. Returns false — leaving the controller untouched — on a
  // malformed blob or an extender-count mismatch. A restored controller is
  // bit-identical in behaviour to the one that saved (the fleet resume
  // contract).
  bool RestoreState(util::ByteCursor* cur);

 private:
  struct PendingDirective {
    int extender = 0;
    int attempts = 0;       // sends so far (including the first)
    double next_retry = 0;  // absolute controller time
  };

  // Per-extender flap-quarantine bookkeeping (see QuarantineParams).
  struct FlapState {
    int last_up = -1;               // -1 unknown, 0 down, 1 up
    std::vector<double> flips;      // transition times within the window
    bool quarantined = false;
    double release_at = 0.0;        // earliest release time (controller time)
    double held_capacity = 0.0;     // last reported capacity, restored on release
  };

  HandleStatus ValidateScan(const ScanReport& report) const;
  void ApplyReport(std::size_t index, const ScanReport& report);
  // One rung of the degradation ladder: propose an assignment at `tier`,
  // threading `deadline` (nullable) into the solvers. Shared by the budgeted
  // ladder walk and the clock-free ReoptimizeAtTier.
  model::Assignment SolveTier(ReoptTier tier, const util::Deadline* deadline,
                              const model::Assignment& before,
                              const model::Assignment& evacuate);
  // Scoring options under a channel plan: default EvalOptions with `plan`
  // installed as wifi_channel (empty plan = the plan-free physical model).
  model::EvalOptions PlanEval(const std::vector<int>& plan) const;
  // guard=true (epoch reoptimization) arms the do-no-harm fallback check.
  std::vector<AssociationDirective> RunPolicy(bool guard = false);
  void RegisterDirective(const AssociationDirective& d);
  void RemoveUserAt(std::size_t index);
  // The hold-last-good baseline: the current assignment with every user on
  // a dead (or quarantined) backhaul unassigned.
  model::Assignment EvacuationFallback() const;
  // Adopt `proposed` and emit+register a directive for every user whose
  // extender changed relative to `before`.
  std::vector<AssociationDirective> DiffAndRegister(
      const model::Assignment& before, model::Assignment proposed);

  model::Network net_;
  model::Assignment assignment_;
  PolicyPtr policy_;
  RetryParams retry_;
  QuarantineParams quarantine_;
  double now_ = 0.0;
  std::size_t given_up_ = 0;
  std::size_t quarantine_trips_ = 0;
  std::size_t quarantine_releases_ = 0;
  std::vector<std::int64_t> id_of_index_;
  std::vector<double> last_scan_;      // by index, controller time
  std::vector<double> last_capacity_;  // by extender, -inf = never
  std::vector<FlapState> flap_;        // by extender
  std::unordered_map<std::int64_t, std::size_t> index_of_id_;
  std::unordered_map<std::int64_t, PendingDirective> pending_;
  JointModeParams joint_;
  std::vector<int> channel_plan_;   // committed plan; empty = none
  std::vector<int> proposed_plan_;  // SolveTier(kJoint) scratch output
};

}  // namespace wolt::core
