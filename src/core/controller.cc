#include "core/controller.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <initializer_list>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "assign/joint.h"
#include "core/greedy.h"
#include "core/wolt.h"
#include "obs/obs.h"
#include "util/codec.h"
#include "util/deadline.h"

namespace wolt::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string JoinDoubles(const std::vector<double>& xs) {
  std::string out;
  char buf[64];
  for (std::size_t k = 0; k < xs.size(); ++k) {
    if (k) out += ',';
    std::snprintf(buf, sizeof(buf), "%g", xs[k]);
    out += buf;
  }
  return out;
}

// Strict numeric parsers: the whole token must be consumed and the value
// must be finite. std::stod/stoll accept trailing garbage ("12abc" -> 12)
// and throw on overflow; both are wire faults here, so wrap and check.
std::optional<double> ParseDouble(const std::string& s) {
  // Whitelist plain decimal syntax first: stod also accepts hex floats
  // ("0x10"), leading whitespace and nan/inf spellings, none of which are
  // legal on this wire.
  if (s.empty() ||
      s.find_first_not_of("0123456789.+-eE") != std::string::npos) {
    return std::nullopt;
  }
  try {
    std::size_t consumed = 0;
    const double value = std::stod(s, &consumed);
    if (consumed != s.size() || !std::isfinite(value)) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::int64_t> ParseInt64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const long long value = std::stoll(s, &consumed);
    if (consumed != s.size()) return std::nullopt;
    return static_cast<std::int64_t>(value);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<int> ParseInt(const std::string& s) {
  const auto wide = ParseInt64(s);
  if (!wide || *wide < std::numeric_limits<int>::min() ||
      *wide > std::numeric_limits<int>::max()) {
    return std::nullopt;
  }
  return static_cast<int>(*wide);
}

std::optional<std::vector<double>> ParseDoubles(const std::string& csv) {
  if (!csv.empty() && csv.back() == ',') return std::nullopt;
  std::vector<double> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    const auto value = ParseDouble(item);
    if (!value) return std::nullopt;
    out.push_back(*value);
  }
  if (out.empty()) return std::nullopt;  // "rates=" carries no measurement
  return out;
}

// Splits "key=value" tokens of a message line after the type word.
// Duplicate keys are a wire fault (a spliced/corrupted line), not a
// last-writer-wins merge.
std::optional<std::unordered_map<std::string, std::string>> ParseFields(
    const std::string& line, const std::string& expected_type) {
  std::istringstream in(line);
  std::string type;
  if (!(in >> type) || type != expected_type) return std::nullopt;
  std::unordered_map<std::string, std::string> fields;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    if (!fields.emplace(token.substr(0, eq), token.substr(eq + 1)).second) {
      return std::nullopt;
    }
  }
  return fields;
}

// Unknown keys are trailing garbage in disguise (a corrupted or spliced
// line), not forward-compatible extensions.
bool OnlyKeys(const std::unordered_map<std::string, std::string>& fields,
              std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : fields) {
    (void)value;
    bool known = false;
    for (const char* a : allowed) known = known || key == a;
    if (!known) return false;
  }
  return true;
}

bool AllNonNegative(const std::vector<double>& xs) {
  return std::all_of(xs.begin(), xs.end(), [](double x) { return x >= 0.0; });
}

}  // namespace

const char* ToString(HandleStatus s) {
  switch (s) {
    case HandleStatus::kOk: return "ok";
    case HandleStatus::kMalformed: return "malformed";
    case HandleStatus::kDuplicateUser: return "duplicate-user";
    case HandleStatus::kUnknownUser: return "unknown-user";
    case HandleStatus::kUnknownExtender: return "unknown-extender";
    case HandleStatus::kIgnoredStale: return "ignored-stale";
  }
  return "?";
}

const char* ToString(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kNone: return "none";
    case ErrorCategory::kWireFault: return "wire-fault";
    case ErrorCategory::kStateConflict: return "state-conflict";
    case ErrorCategory::kProgrammingError: return "programming-error";
  }
  return "?";
}

ErrorCategory CategoryOf(HandleStatus s) {
  switch (s) {
    case HandleStatus::kOk:
      return ErrorCategory::kNone;
    case HandleStatus::kMalformed:
      return ErrorCategory::kWireFault;
    case HandleStatus::kDuplicateUser:
    case HandleStatus::kUnknownUser:
    case HandleStatus::kUnknownExtender:
    case HandleStatus::kIgnoredStale:
      return ErrorCategory::kStateConflict;
  }
  return ErrorCategory::kProgrammingError;
}

const char* ToString(ReoptTier t) {
  switch (t) {
    case ReoptTier::kFull: return "full";
    case ReoptTier::kHungarianOnly: return "hungarian-only";
    case ReoptTier::kGreedy: return "greedy";
    case ReoptTier::kHoldLastGood: return "hold-last-good";
    case ReoptTier::kJoint: return "joint";
  }
  return "?";
}

std::size_t TierCost(ReoptTier tier) {
  switch (tier) {
    case ReoptTier::kJoint:
      return 5;
    case ReoptTier::kFull:
      return 4;
    case ReoptTier::kHungarianOnly:
      return 3;
    case ReoptTier::kGreedy:
      return 2;
    case ReoptTier::kHoldLastGood:
      return 1;
  }
  return 1;
}

ReoptTier TierForBudgetUnits(int units, bool joint_enabled) {
  if (units <= 0) {
    return joint_enabled ? ReoptTier::kJoint : ReoptTier::kFull;
  }
  const auto u = static_cast<std::size_t>(units);
  if (joint_enabled && u >= TierCost(ReoptTier::kJoint)) {
    return ReoptTier::kJoint;
  }
  if (u >= TierCost(ReoptTier::kFull)) return ReoptTier::kFull;
  if (u >= TierCost(ReoptTier::kHungarianOnly)) {
    return ReoptTier::kHungarianOnly;
  }
  if (u >= TierCost(ReoptTier::kGreedy)) return ReoptTier::kGreedy;
  return ReoptTier::kHoldLastGood;
}

std::string Encode(const ScanReport& msg) {
  std::string out = "SCAN user=" + std::to_string(msg.user_id) +
                    " rates=" + JoinDoubles(msg.rates_mbps);
  if (!msg.rssi_dbm.empty()) out += " rssi=" + JoinDoubles(msg.rssi_dbm);
  if (msg.associated_extender) {
    out += " assoc=" + std::to_string(*msg.associated_extender);
  }
  if (msg.demand_mbps) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%g", *msg.demand_mbps);
    out += " demand=";
    out += buf;
  }
  return out;
}

std::string Encode(const AssociationDirective& msg) {
  return "DIRECTIVE user=" + std::to_string(msg.user_id) +
         " extender=" + std::to_string(msg.extender);
}

std::string Encode(const DirectiveAck& msg) {
  return "ACK user=" + std::to_string(msg.user_id) +
         " extender=" + std::to_string(msg.extender);
}

std::string Encode(const DepartureNotice& msg) {
  return "DEPART user=" + std::to_string(msg.user_id);
}

std::string Encode(const CapacityReport& msg) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", msg.capacity_mbps);
  return "CAPACITY extender=" + std::to_string(msg.extender) + " mbps=" + buf;
}

std::optional<ScanReport> DecodeScanReport(const std::string& line) {
  const auto fields = ParseFields(line, "SCAN");
  if (!fields || !fields->count("user") || !fields->count("rates") ||
      !OnlyKeys(*fields, {"user", "rates", "rssi", "assoc", "demand"})) {
    return std::nullopt;
  }
  ScanReport msg;
  const auto user = ParseInt64(fields->at("user"));
  if (!user) return std::nullopt;
  msg.user_id = *user;
  const auto rates = ParseDoubles(fields->at("rates"));
  if (!rates || !AllNonNegative(*rates)) return std::nullopt;
  msg.rates_mbps = *rates;
  if (fields->count("rssi")) {
    const auto rssi = ParseDoubles(fields->at("rssi"));
    if (!rssi || rssi->size() != msg.rates_mbps.size()) return std::nullopt;
    msg.rssi_dbm = *rssi;
  }
  if (fields->count("assoc")) {
    const auto assoc = ParseInt(fields->at("assoc"));
    if (!assoc || *assoc < -1) return std::nullopt;
    msg.associated_extender = *assoc;
  }
  if (fields->count("demand")) {
    const auto demand = ParseDouble(fields->at("demand"));
    if (!demand || *demand < 0.0) return std::nullopt;
    msg.demand_mbps = *demand;
  }
  return msg;
}

std::optional<AssociationDirective> DecodeAssociationDirective(
    const std::string& line) {
  const auto fields = ParseFields(line, "DIRECTIVE");
  if (!fields || !fields->count("user") || !fields->count("extender") ||
      !OnlyKeys(*fields, {"user", "extender"})) {
    return std::nullopt;
  }
  const auto user = ParseInt64(fields->at("user"));
  const auto extender = ParseInt(fields->at("extender"));
  if (!user || !extender || *extender < 0) return std::nullopt;
  return AssociationDirective{*user, *extender};
}

std::optional<DirectiveAck> DecodeDirectiveAck(const std::string& line) {
  const auto fields = ParseFields(line, "ACK");
  if (!fields || !fields->count("user") || !fields->count("extender") ||
      !OnlyKeys(*fields, {"user", "extender"})) {
    return std::nullopt;
  }
  const auto user = ParseInt64(fields->at("user"));
  const auto extender = ParseInt(fields->at("extender"));
  if (!user || !extender || *extender < 0) return std::nullopt;
  return DirectiveAck{*user, *extender};
}

std::optional<DepartureNotice> DecodeDepartureNotice(const std::string& line) {
  const auto fields = ParseFields(line, "DEPART");
  if (!fields || !fields->count("user") || !OnlyKeys(*fields, {"user"})) {
    return std::nullopt;
  }
  const auto user = ParseInt64(fields->at("user"));
  if (!user) return std::nullopt;
  return DepartureNotice{*user};
}

std::optional<CapacityReport> DecodeCapacityReport(const std::string& line) {
  const auto fields = ParseFields(line, "CAPACITY");
  if (!fields || !fields->count("extender") || !fields->count("mbps") ||
      !OnlyKeys(*fields, {"extender", "mbps"})) {
    return std::nullopt;
  }
  const auto extender = ParseInt(fields->at("extender"));
  const auto mbps = ParseDouble(fields->at("mbps"));
  if (!extender || *extender < 0 || !mbps || *mbps < 0.0) return std::nullopt;
  return CapacityReport{*extender, *mbps};
}

CentralController::CentralController(std::size_t num_extenders,
                                     PolicyPtr policy, RetryParams retry,
                                     QuarantineParams quarantine)
    : net_(0, num_extenders),
      policy_(std::move(policy)),
      retry_(retry),
      quarantine_(quarantine),
      last_capacity_(num_extenders, -kInf),
      flap_(num_extenders) {
  if (num_extenders == 0) throw std::invalid_argument("no extenders");
  if (!policy_) throw std::invalid_argument("null policy");
}

void CentralController::AdvanceTime(double now) {
  if (std::isfinite(now)) now_ = std::max(now_, now);
  // Release quarantined backhauls that have been flap-free long enough;
  // their last reported capacity (tracked while quarantined) comes back.
  for (std::size_t j = 0; j < flap_.size(); ++j) {
    FlapState& f = flap_[j];
    if (!f.quarantined || now_ < f.release_at) continue;
    f.quarantined = false;
    f.flips.clear();
    net_.SetPlcRate(j, f.held_capacity);
    ++quarantine_releases_;
    if (obs::MetricsScope* s = obs::CurrentScope()) {
      s->ctrl.quarantine_releases.Add(1);
    }
  }
}

bool CentralController::IsQuarantined(int extender) const {
  if (extender < 0 ||
      static_cast<std::size_t>(extender) >= flap_.size()) {
    return false;
  }
  return flap_[static_cast<std::size_t>(extender)].quarantined;
}

HandleStatus CentralController::HandleCapacityReport(
    const CapacityReport& report) {
  if (report.extender < 0 ||
      static_cast<std::size_t>(report.extender) >= net_.NumExtenders()) {
    return HandleStatus::kUnknownExtender;
  }
  if (!std::isfinite(report.capacity_mbps) || report.capacity_mbps < 0.0) {
    return HandleStatus::kMalformed;
  }
  const std::size_t ext = static_cast<std::size_t>(report.extender);
  last_capacity_[ext] = now_;

  if (quarantine_.flap_threshold > 0) {
    FlapState& f = flap_[ext];
    const int up = report.capacity_mbps > 0.0 ? 1 : 0;
    if (f.last_up >= 0 && up != f.last_up) {
      f.flips.push_back(now_);
      // Drop transitions that fell out of the sliding window.
      const double cutoff = now_ - quarantine_.window;
      f.flips.erase(std::remove_if(f.flips.begin(), f.flips.end(),
                                   [&](double t) { return t < cutoff; }),
                    f.flips.end());
      if (f.quarantined) {
        // Hysteresis: flapping while quarantined restarts the hold clock.
        f.release_at = now_ + quarantine_.hold;
      } else if (static_cast<int>(f.flips.size()) >=
                 quarantine_.flap_threshold) {
        f.quarantined = true;
        f.release_at = now_ + quarantine_.hold;
        ++quarantine_trips_;
        if (obs::MetricsScope* s = obs::CurrentScope()) {
          s->ctrl.quarantine_trips.Add(1);
        }
      }
    }
    f.last_up = up;
    if (f.quarantined) {
      // Planning sees a dead link; remember what was reported so release
      // restores the freshest estimate.
      f.held_capacity = report.capacity_mbps;
      net_.SetPlcRate(ext, 0.0);
      return HandleStatus::kOk;
    }
  }

  net_.SetPlcRate(ext, report.capacity_mbps);
  return HandleStatus::kOk;
}

HandleStatus CentralController::ValidateScan(const ScanReport& report) const {
  if (report.rates_mbps.size() != net_.NumExtenders()) {
    return HandleStatus::kMalformed;
  }
  for (double r : report.rates_mbps) {
    if (!std::isfinite(r) || r < 0.0) return HandleStatus::kMalformed;
  }
  if (!report.rssi_dbm.empty()) {
    if (report.rssi_dbm.size() != net_.NumExtenders()) {
      return HandleStatus::kMalformed;
    }
    for (double s : report.rssi_dbm) {
      if (!std::isfinite(s)) return HandleStatus::kMalformed;
    }
  }
  if (report.associated_extender && *report.associated_extender < -1) {
    return HandleStatus::kMalformed;
  }
  if (report.demand_mbps &&
      (!std::isfinite(*report.demand_mbps) || *report.demand_mbps < 0.0)) {
    return HandleStatus::kMalformed;
  }
  return HandleStatus::kOk;
}

void CentralController::ApplyReport(std::size_t index,
                                    const ScanReport& report) {
  for (std::size_t j = 0; j < net_.NumExtenders(); ++j) {
    net_.SetWifiRate(index, j, report.rates_mbps[j]);
    if (!report.rssi_dbm.empty()) {
      net_.SetRssi(index, j, report.rssi_dbm[j]);
    }
  }
  if (report.demand_mbps) net_.SetUserDemand(index, *report.demand_mbps);
  last_scan_[index] = now_;
}

void CentralController::RegisterDirective(const AssociationDirective& d) {
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->ctrl.directives_sent.Add(1);
  }
  pending_[d.user_id] =
      PendingDirective{d.extender, 1, now_ + retry_.initial_backoff};
}

model::Assignment CentralController::EvacuationFallback() const {
  // Keep everyone in place, but unassign users whose extender backhaul is
  // dead (reported zero or quarantined — quarantine forces the rate to 0).
  model::Assignment fallback = assignment_;
  for (std::size_t i = 0; i < net_.NumUsers(); ++i) {
    const int j = fallback.ExtenderOf(i);
    if (j != model::Assignment::kUnassigned &&
        net_.PlcRate(static_cast<std::size_t>(j)) <= 0.0) {
      fallback.Unassign(i);
    }
  }
  return fallback;
}

std::vector<AssociationDirective> CentralController::DiffAndRegister(
    const model::Assignment& before, model::Assignment proposed) {
  assignment_ = std::move(proposed);
  std::vector<AssociationDirective> directives;
  for (std::size_t i = 0; i < net_.NumUsers(); ++i) {
    if (assignment_.IsAssigned(i) &&
        assignment_.ExtenderOf(i) != before.ExtenderOf(i)) {
      directives.push_back({id_of_index_[i], assignment_.ExtenderOf(i)});
    }
  }
  for (const auto& d : directives) RegisterDirective(d);
  return directives;
}

std::vector<AssociationDirective> CentralController::RunPolicy(bool guard) {
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->ctrl.policy_runs.Add(1);
  }
  const model::Assignment before = assignment_;
  model::Assignment proposed = policy_->Associate(net_, before);
  // Do-no-harm guard (epoch reoptimization only): policies plan under their
  // own sharing model, which can diverge from the physical evaluator. Never
  // deploy a reoptimization that scores below the trivial fallback of
  // keeping everyone in place and evacuating users whose extender backhaul
  // reports zero capacity. Arrival/scan-triggered runs stay unguarded:
  // admitting a weak user legitimately lowers a max-min aggregate, and
  // vetoing that would strand the user forever.
  if (guard) {
    model::Assignment fallback = EvacuationFallback();
    // Both sides score under the committed channel plan (plan-free until a
    // kJoint epoch has been adopted).
    const model::Evaluator eval(PlanEval(channel_plan_));
    if (eval.AggregateThroughput(net_, proposed) + 1e-9 <
        eval.AggregateThroughput(net_, fallback)) {
      proposed = std::move(fallback);
      if (obs::MetricsScope* s = obs::CurrentScope()) {
        s->ctrl.reopt_guard_trips.Add(1);
      }
    }
  }
  return DiffAndRegister(before, std::move(proposed));
}

HandleResult CentralController::HandleUserArrival(const ScanReport& report) {
  if (const HandleStatus v = ValidateScan(report); v != HandleStatus::kOk) {
    return {v, {}};
  }
  if (index_of_id_.count(report.user_id)) {
    return {HandleStatus::kDuplicateUser, {}};
  }
  const std::size_t index = net_.AddUser(model::User{}, report.rates_mbps);
  assignment_.AppendUser();
  id_of_index_.push_back(report.user_id);
  last_scan_.push_back(now_);
  index_of_id_[report.user_id] = index;
  ApplyReport(index, report);
  return {HandleStatus::kOk, RunPolicy()};
}

HandleResult CentralController::HandleScanUpdate(const ScanReport& report) {
  if (const HandleStatus v = ValidateScan(report); v != HandleStatus::kOk) {
    return {v, {}};
  }
  const auto it = index_of_id_.find(report.user_id);
  if (it == index_of_id_.end()) return {HandleStatus::kUnknownUser, {}};
  const std::size_t index = it->second;
  ApplyReport(index, report);
  // The refreshed rates may invalidate the current association.
  const int current = assignment_.ExtenderOf(index);
  if (current != model::Assignment::kUnassigned &&
      net_.WifiRate(index, static_cast<std::size_t>(current)) <= 0.0) {
    assignment_.Unassign(index);
  }
  HandleResult result{HandleStatus::kOk, RunPolicy()};
  // Reconciliation: the client told us where it actually is. If that
  // disagrees with the believed association and nothing is in flight,
  // re-issue the believed directive (the original was lost / abandoned).
  if (report.associated_extender && assignment_.IsAssigned(index) &&
      *report.associated_extender != assignment_.ExtenderOf(index) &&
      !pending_.count(report.user_id)) {
    const AssociationDirective fix{report.user_id,
                                   assignment_.ExtenderOf(index)};
    const bool already =
        std::any_of(result.directives.begin(), result.directives.end(),
                    [&](const AssociationDirective& d) {
                      return d.user_id == fix.user_id;
                    });
    if (!already) {
      RegisterDirective(fix);
      result.directives.push_back(fix);
    }
  }
  return result;
}

HandleStatus CentralController::IngestScan(const ScanReport& report) {
  if (const HandleStatus v = ValidateScan(report); v != HandleStatus::kOk) {
    return v;
  }
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->workload.replay_events.Add(1);
  }
  const auto it = index_of_id_.find(report.user_id);
  if (it == index_of_id_.end()) {
    // New user, registered unassigned; the next Reoptimize*() places it.
    const std::size_t index = net_.AddUser(model::User{}, report.rates_mbps);
    assignment_.AppendUser();
    id_of_index_.push_back(report.user_id);
    last_scan_.push_back(now_);
    index_of_id_[report.user_id] = index;
    ApplyReport(index, report);
    return HandleStatus::kOk;
  }
  const std::size_t index = it->second;
  ApplyReport(index, report);
  const int current = assignment_.ExtenderOf(index);
  if (current != model::Assignment::kUnassigned &&
      net_.WifiRate(index, static_cast<std::size_t>(current)) <= 0.0) {
    assignment_.Unassign(index);
  }
  return HandleStatus::kOk;
}

void CentralController::RemoveUserAt(std::size_t index) {
  pending_.erase(id_of_index_[index]);
  net_.RemoveUser(index);
  assignment_.EraseUser(index);
  id_of_index_.erase(id_of_index_.begin() +
                     static_cast<std::ptrdiff_t>(index));
  last_scan_.erase(last_scan_.begin() + static_cast<std::ptrdiff_t>(index));
  index_of_id_.clear();
  for (std::size_t i = 0; i < id_of_index_.size(); ++i) {
    index_of_id_[id_of_index_[i]] = i;
  }
}

HandleStatus CentralController::HandleUserDeparture(std::int64_t user_id) {
  const auto it = index_of_id_.find(user_id);
  if (it == index_of_id_.end()) return HandleStatus::kUnknownUser;
  RemoveUserAt(it->second);
  return HandleStatus::kOk;
}

HandleStatus CentralController::HandleDirectiveAck(const DirectiveAck& ack) {
  obs::MetricsScope* s = obs::CurrentScope();
  if (!index_of_id_.count(ack.user_id)) return HandleStatus::kUnknownUser;
  const auto it = pending_.find(ack.user_id);
  if (it == pending_.end()) {
    if (s) s->ctrl.acks.Add(1);
    return HandleStatus::kOk;  // duplicate ack
  }
  if (it->second.extender != ack.extender) {
    if (s) s->ctrl.acks_stale.Add(1);
    return HandleStatus::kIgnoredStale;  // ack for a superseded directive
  }
  pending_.erase(it);
  if (s) s->ctrl.acks.Add(1);
  return HandleStatus::kOk;
}

std::vector<AssociationDirective> CentralController::Reoptimize() {
  return RunPolicy(/*guard=*/true);
}

model::Assignment CentralController::SolveTier(
    ReoptTier tier, const util::Deadline* deadline,
    const model::Assignment& before, const model::Assignment& evacuate) {
  switch (tier) {
    case ReoptTier::kHoldLastGood:
      return evacuate;
    case ReoptTier::kGreedy: {
      // Greedy: re-place only the evacuated users, everyone else holds.
      GreedyPolicy greedy;
      greedy.SetDeadline(deadline);
      return greedy.Associate(net_, evacuate);
    }
    case ReoptTier::kHungarianOnly: {
      // WOLT Phase I + sticky greedy Phase II without the local-search
      // polish — the polynomial core of the paper's algorithm.
      WoltOptions wopt;
      wopt.local_search = false;
      wopt.sticky = true;
      WoltPolicy hungarian_only(wopt);
      hungarian_only.SetDeadline(deadline);
      return hungarian_only.Associate(net_, before);
    }
    case ReoptTier::kFull: {
      // The configured policy, exactly what Reoptimize() would run.
      policy_->SetDeadline(deadline);
      model::Assignment proposed = policy_->Associate(net_, before);
      policy_->SetDeadline(nullptr);  // the token dies with this frame
      return proposed;
    }
    case ReoptTier::kJoint: {
      // Joint re-association + channel recolouring (assign/joint). The
      // proposed plan rides in proposed_plan_; the caller commits it to
      // channel_plan_ only if this rung is adopted. With joint mode off the
      // plan axis does not exist, so the rung degenerates to kFull.
      if (joint_.num_channels <= 0) {
        return SolveTier(ReoptTier::kFull, deadline, before, evacuate);
      }
      assign::JointOptions jopt;
      jopt.num_channels = joint_.num_channels;
      jopt.carrier_sense_range_m = joint_.carrier_sense_range_m;
      jopt.max_rounds = joint_.max_rounds;
      jopt.deadline = deadline;
      assign::JointResult result =
          assign::SolveJointAlternating(net_, WoltJointAssociator(), jopt);
      proposed_plan_ = std::move(result.channels);
      return std::move(result.assignment);
    }
  }
  return evacuate;
}

model::EvalOptions CentralController::PlanEval(
    const std::vector<int>& plan) const {
  model::EvalOptions eval;
  if (!plan.empty()) {
    eval.wifi_channel = plan;
    eval.carrier_sense_range_m = joint_.carrier_sense_range_m;
  }
  return eval;
}

void CentralController::SetJointMode(JointModeParams params) {
  if (params.num_channels < 0 || params.max_rounds < 0 ||
      !(params.carrier_sense_range_m > 0.0)) {
    throw std::invalid_argument("bad joint-mode parameters");
  }
  joint_ = params;
  if (joint_.num_channels <= 0) channel_plan_.clear();
}

ReoptReport CentralController::Reoptimize(double budget_seconds) {
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->ctrl.policy_runs.Add(1);
  }
  ReoptReport report;
  const util::Deadline deadline = util::Deadline::After(budget_seconds);
  const model::Assignment before = assignment_;
  const model::Assignment evacuate = EvacuationFallback();

  // Degradation ladder, cheapest rung first so that something deployable
  // exists the moment the budget dies. Each rung starts only while budget
  // remains and serves only if it finished within budget; inside a rung the
  // solvers poll the deadline per bounded unit of work, so the overrun past
  // `budget_seconds` is at most one such unit. With joint mode enabled the
  // ladder tops out at kJoint (re-association + channel recolouring).
  const bool joint_enabled = joint_.num_channels > 0;
  const ReoptTier top = joint_enabled ? ReoptTier::kJoint : ReoptTier::kFull;
  model::Assignment chosen = evacuate;
  std::vector<int> chosen_plan = channel_plan_;
  report.tier = ReoptTier::kHoldLastGood;
  for (ReoptTier tier : {ReoptTier::kGreedy, ReoptTier::kHungarianOnly,
                         ReoptTier::kFull, ReoptTier::kJoint}) {
    if (tier == ReoptTier::kJoint && !joint_enabled) break;
    if (deadline.Expired()) break;
    model::Assignment proposed = SolveTier(tier, &deadline, before, evacuate);
    if (!deadline.Expired()) {
      chosen = std::move(proposed);
      chosen_plan =
          tier == ReoptTier::kJoint ? proposed_plan_ : channel_plan_;
      report.tier = tier;
    }
  }

  // budget_limited reflects the ladder outcome; the guard below can still
  // demote the serving tier on quality grounds, which is not a budget event.
  report.budget_limited = report.tier != top;
  const bool no_tier_fit = report.tier == ReoptTier::kHoldLastGood;

  // Same do-no-harm contract as Reoptimize(): never deploy below the
  // hold-last-good baseline. The candidate scores under the plan it would
  // commit, the baseline under the plan already committed (plan-free when
  // joint mode never adopted — identical to the pre-joint behaviour).
  const model::Evaluator chosen_eval(PlanEval(chosen_plan));
  const model::Evaluator base_eval(PlanEval(channel_plan_));
  if (chosen_eval.AggregateThroughput(net_, chosen) + 1e-9 <
      base_eval.AggregateThroughput(net_, evacuate)) {
    chosen = evacuate;
    chosen_plan = channel_plan_;
    report.tier = ReoptTier::kHoldLastGood;
    if (obs::MetricsScope* s = obs::CurrentScope()) {
      s->ctrl.reopt_guard_trips.Add(1);
    }
  }

  if (obs::MetricsScope* s = obs::CurrentScope()) {
    switch (report.tier) {
      case ReoptTier::kFull: s->ctrl.reopt_tier_full.Add(1); break;
      case ReoptTier::kHungarianOnly:
        s->ctrl.reopt_tier_hungarian.Add(1);
        break;
      case ReoptTier::kGreedy: s->ctrl.reopt_tier_greedy.Add(1); break;
      case ReoptTier::kHoldLastGood: s->ctrl.reopt_tier_hold.Add(1); break;
      case ReoptTier::kJoint: s->ctrl.reopt_tier_joint.Add(1); break;
    }
    if (no_tier_fit) s->ctrl.reopt_budget_overruns.Add(1);
  }

  channel_plan_ = std::move(chosen_plan);
  report.directives = DiffAndRegister(before, std::move(chosen));
  return report;
}

ReoptReport CentralController::ReoptimizeUpToTier(ReoptTier top) {
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->ctrl.policy_runs.Add(1);
  }
  ReoptReport report;
  const model::Assignment before = assignment_;
  const model::Assignment evacuate = EvacuationFallback();
  const bool joint_enabled = joint_.num_channels > 0;

  // Hold-last-good is the zero-cost floor of the candidate set; every
  // affordable rung competes against it and against each other on scored
  // throughput. Iterating cheapest-first with a strict improvement
  // threshold makes ties stick with the cheaper (less disruptive) rung.
  model::Assignment chosen = evacuate;
  std::vector<int> chosen_plan = channel_plan_;
  report.tier = ReoptTier::kHoldLastGood;
  const model::Evaluator base_eval(PlanEval(channel_plan_));
  double best = base_eval.AggregateThroughput(net_, evacuate);
  for (ReoptTier tier : {ReoptTier::kGreedy, ReoptTier::kHungarianOnly,
                         ReoptTier::kFull, ReoptTier::kJoint}) {
    if (TierCost(tier) > TierCost(top)) break;
    if (tier == ReoptTier::kJoint && !joint_enabled) break;
    model::Assignment proposed = SolveTier(tier, nullptr, before, evacuate);
    std::vector<int> plan =
        tier == ReoptTier::kJoint ? proposed_plan_ : channel_plan_;
    const model::Evaluator eval(PlanEval(plan));
    const double score = eval.AggregateThroughput(net_, proposed);
    if (score > best + 1e-9) {
      best = score;
      chosen = std::move(proposed);
      chosen_plan = std::move(plan);
      report.tier = tier;
    }
  }
  report.budget_limited =
      TierCost(top) <
      TierCost(joint_enabled ? ReoptTier::kJoint : ReoptTier::kFull);

  if (obs::MetricsScope* s = obs::CurrentScope()) {
    switch (report.tier) {
      case ReoptTier::kFull: s->ctrl.reopt_tier_full.Add(1); break;
      case ReoptTier::kHungarianOnly:
        s->ctrl.reopt_tier_hungarian.Add(1);
        break;
      case ReoptTier::kGreedy: s->ctrl.reopt_tier_greedy.Add(1); break;
      case ReoptTier::kHoldLastGood: s->ctrl.reopt_tier_hold.Add(1); break;
      case ReoptTier::kJoint: s->ctrl.reopt_tier_joint.Add(1); break;
    }
  }

  channel_plan_ = std::move(chosen_plan);
  report.directives = DiffAndRegister(before, std::move(chosen));
  return report;
}

ReoptReport CentralController::ReoptimizeAtTier(ReoptTier tier) {
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->ctrl.policy_runs.Add(1);
  }
  ReoptReport report;
  report.tier = tier;
  const model::Assignment before = assignment_;
  const model::Assignment evacuate = EvacuationFallback();
  model::Assignment chosen = SolveTier(tier, nullptr, before, evacuate);
  std::vector<int> chosen_plan =
      (tier == ReoptTier::kJoint && joint_.num_channels > 0) ? proposed_plan_
                                                             : channel_plan_;

  // Same do-no-harm contract as the budgeted ladder.
  const model::Evaluator chosen_eval(PlanEval(chosen_plan));
  const model::Evaluator base_eval(PlanEval(channel_plan_));
  if (chosen_eval.AggregateThroughput(net_, chosen) + 1e-9 <
      base_eval.AggregateThroughput(net_, evacuate)) {
    chosen = evacuate;
    chosen_plan = channel_plan_;
    report.tier = ReoptTier::kHoldLastGood;
    if (obs::MetricsScope* s = obs::CurrentScope()) {
      s->ctrl.reopt_guard_trips.Add(1);
    }
  }
  report.budget_limited = report.tier != ReoptTier::kFull &&
                          report.tier != ReoptTier::kJoint;

  if (obs::MetricsScope* s = obs::CurrentScope()) {
    switch (report.tier) {
      case ReoptTier::kFull: s->ctrl.reopt_tier_full.Add(1); break;
      case ReoptTier::kHungarianOnly:
        s->ctrl.reopt_tier_hungarian.Add(1);
        break;
      case ReoptTier::kGreedy: s->ctrl.reopt_tier_greedy.Add(1); break;
      case ReoptTier::kHoldLastGood: s->ctrl.reopt_tier_hold.Add(1); break;
      case ReoptTier::kJoint: s->ctrl.reopt_tier_joint.Add(1); break;
    }
  }

  channel_plan_ = std::move(chosen_plan);
  report.directives = DiffAndRegister(before, std::move(chosen));
  return report;
}

std::vector<AssociationDirective> CentralController::CollectRetries() {
  std::vector<AssociationDirective> due;
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingDirective& p = it->second;
    if (p.next_retry > now_) {
      ++it;
      continue;
    }
    if (p.attempts >= retry_.max_attempts) {
      ++given_up_;
      if (obs::MetricsScope* s = obs::CurrentScope()) {
        s->ctrl.directives_given_up.Add(1);
      }
      it = pending_.erase(it);
      continue;
    }
    due.push_back({it->first, p.extender});
    if (obs::MetricsScope* s = obs::CurrentScope()) {
      s->ctrl.directives_retried.Add(1);
    }
    double backoff = retry_.initial_backoff;
    for (int a = 1; a < p.attempts; ++a) backoff *= retry_.multiplier;
    backoff = std::min(backoff * retry_.multiplier, retry_.max_backoff);
    ++p.attempts;
    p.next_retry = now_ + backoff;
    ++it;
  }
  std::sort(due.begin(), due.end(),
            [](const AssociationDirective& a, const AssociationDirective& b) {
              return a.user_id < b.user_id;
            });
  return due;
}

std::vector<std::int64_t> CentralController::EvictStale(double max_age) {
  std::vector<std::int64_t> evicted;
  for (std::size_t i = 0; i < id_of_index_.size(); ++i) {
    if (now_ - last_scan_[i] > max_age) evicted.push_back(id_of_index_[i]);
  }
  for (std::int64_t id : evicted) HandleUserDeparture(id);
  if (!evicted.empty()) {
    if (obs::MetricsScope* s = obs::CurrentScope()) {
      s->ctrl.evictions.Add(evicted.size());
    }
  }
  return evicted;
}

std::optional<int> CentralController::ExtenderOf(std::int64_t user_id) const {
  const auto it = index_of_id_.find(user_id);
  if (it == index_of_id_.end()) return std::nullopt;
  if (!assignment_.IsAssigned(it->second)) return std::nullopt;
  return assignment_.ExtenderOf(it->second);
}

bool CentralController::KnowsUser(std::int64_t user_id) const {
  return index_of_id_.count(user_id) > 0;
}

std::vector<std::int64_t> CentralController::UserIds() const {
  return id_of_index_;
}

double CentralController::ScanAge(std::int64_t user_id) const {
  const auto it = index_of_id_.find(user_id);
  if (it == index_of_id_.end()) return kInf;
  return now_ - last_scan_[it->second];
}

double CentralController::CapacityAge(int extender) const {
  if (extender < 0 ||
      static_cast<std::size_t>(extender) >= last_capacity_.size()) {
    return kInf;
  }
  return now_ - last_capacity_[static_cast<std::size_t>(extender)];
}

double CentralController::CurrentAggregate() const {
  // Under joint mode the committed channel plan is part of the physical
  // model: co-channel cells in range share airtime.
  return model::Evaluator(PlanEval(channel_plan_))
      .AggregateThroughput(net_, assignment_);
}

void CentralController::SaveState(std::string* out) const {
  const std::size_t num_ext = net_.NumExtenders();
  const std::size_t num_users = net_.NumUsers();
  util::PutU64(out, num_ext);
  util::PutDouble(out, now_);
  util::PutU64(out, given_up_);
  util::PutU64(out, quarantine_trips_);
  util::PutU64(out, quarantine_releases_);
  util::PutU8(out, net_.HasRssi() ? 1 : 0);
  util::PutU64(out, num_users);
  for (std::size_t i = 0; i < num_users; ++i) {
    util::PutI64(out, id_of_index_[i]);
    util::PutDouble(out, last_scan_[i]);
    util::PutDouble(out, net_.UserAt(i).demand_mbps);
    util::PutU64(out, num_ext);
    for (std::size_t j = 0; j < num_ext; ++j) {
      util::PutDouble(out, net_.WifiRate(i, j));
    }
    if (net_.HasRssi()) {
      util::PutU64(out, num_ext);
      for (std::size_t j = 0; j < num_ext; ++j) {
        util::PutDouble(out, net_.Rssi(i, j));
      }
    }
    util::PutI32(out, assignment_.ExtenderOf(i));
  }
  for (std::size_t j = 0; j < num_ext; ++j) {
    util::PutDouble(out, net_.PlcRate(j));
    util::PutDouble(out, last_capacity_[j]);
    const FlapState& f = flap_[j];
    util::PutI32(out, f.last_up);
    util::PutDoubleVec(out, f.flips);
    util::PutU8(out, f.quarantined ? 1 : 0);
    util::PutDouble(out, f.release_at);
    util::PutDouble(out, f.held_capacity);
  }
  // Pending directives in user-id order: unordered_map iteration order is
  // not deterministic, and the snapshot bytes must be.
  std::vector<std::int64_t> pending_ids;
  pending_ids.reserve(pending_.size());
  for (const auto& [id, p] : pending_) pending_ids.push_back(id);
  std::sort(pending_ids.begin(), pending_ids.end());
  util::PutU64(out, pending_ids.size());
  for (std::int64_t id : pending_ids) {
    const PendingDirective& p = pending_.at(id);
    util::PutI64(out, id);
    util::PutI32(out, p.extender);
    util::PutI32(out, p.attempts);
    util::PutDouble(out, p.next_retry);
  }
  // Committed channel plan (appended last; empty when joint mode has never
  // adopted a kJoint epoch).
  util::PutU64(out, channel_plan_.size());
  for (int c : channel_plan_) util::PutI32(out, c);
}

bool CentralController::RestoreState(util::ByteCursor* cur) {
  const std::uint64_t num_ext = cur->U64();
  if (!cur->ok() || num_ext != net_.NumExtenders()) return false;
  const double now = cur->Double();
  const std::uint64_t given_up = cur->U64();
  const std::uint64_t q_trips = cur->U64();
  const std::uint64_t q_releases = cur->U64();
  const bool has_rssi = cur->U8() != 0;
  const std::uint64_t num_users = cur->U64();
  if (!cur->ok() || num_users > (std::uint64_t{1} << 24)) return false;

  model::Network net(0, num_ext);
  model::Assignment assignment;
  std::vector<std::int64_t> ids;
  std::vector<double> last_scan;
  std::unordered_map<std::int64_t, std::size_t> index_of_id;
  ids.reserve(num_users);
  last_scan.reserve(num_users);
  std::vector<double> rates, rssi;
  for (std::uint64_t i = 0; i < num_users; ++i) {
    const std::int64_t id = cur->I64();
    const double scan_at = cur->Double();
    const double demand = cur->Double();
    if (!cur->ok() || !std::isfinite(demand) || demand < 0.0) return false;
    if (!cur->DoubleVec(&rates) || rates.size() != num_ext) return false;
    for (double r : rates) {
      if (!std::isfinite(r) || r < 0.0) return false;
    }
    if (has_rssi && (!cur->DoubleVec(&rssi) || rssi.size() != num_ext)) {
      return false;
    }
    const int extender = cur->I32();
    if (!cur->ok() || extender < model::Assignment::kUnassigned ||
        extender >= static_cast<int>(num_ext)) {
      return false;
    }
    if (index_of_id.count(id)) return false;
    const std::size_t index = net.AddUser(model::User{}, rates);
    net.SetUserDemand(index, demand);
    assignment.AppendUser();
    if (extender != model::Assignment::kUnassigned) {
      assignment.Assign(index, static_cast<std::size_t>(extender));
    }
    if (has_rssi) {
      // Exact matrix round trip: -inf marks never-set cells and SetRssi
      // stores it verbatim, so the restored Rssi() view is bit-identical.
      for (std::size_t j = 0; j < num_ext; ++j) {
        net.SetRssi(index, j, rssi[j]);
      }
    }
    ids.push_back(id);
    last_scan.push_back(scan_at);
    index_of_id[id] = index;
  }

  std::vector<double> last_capacity(num_ext, -kInf);
  std::vector<FlapState> flap(num_ext);
  for (std::uint64_t j = 0; j < num_ext; ++j) {
    const double plc = cur->Double();
    last_capacity[j] = cur->Double();
    FlapState& f = flap[j];
    f.last_up = cur->I32();
    if (!cur->DoubleVec(&f.flips)) return false;
    f.quarantined = cur->U8() != 0;
    f.release_at = cur->Double();
    f.held_capacity = cur->Double();
    if (!cur->ok() || !std::isfinite(plc) || plc < 0.0) return false;
    net.SetPlcRate(j, plc);
  }

  const std::uint64_t num_pending = cur->U64();
  if (!cur->ok() || num_pending > num_users) return false;
  std::unordered_map<std::int64_t, PendingDirective> pending;
  for (std::uint64_t k = 0; k < num_pending; ++k) {
    const std::int64_t id = cur->I64();
    PendingDirective p;
    p.extender = cur->I32();
    p.attempts = cur->I32();
    p.next_retry = cur->Double();
    if (!cur->ok() || !index_of_id.count(id)) return false;
    pending[id] = p;
  }

  const std::uint64_t plan_size = cur->U64();
  if (!cur->ok() || (plan_size != 0 && plan_size != num_ext)) return false;
  std::vector<int> channel_plan;
  channel_plan.reserve(plan_size);
  for (std::uint64_t j = 0; j < plan_size; ++j) {
    const int c = cur->I32();
    if (!cur->ok() || c < 0 || c >= model::kMaxWifiChannels) return false;
    channel_plan.push_back(c);
  }
  if (!cur->ok()) return false;

  net_ = std::move(net);
  assignment_ = std::move(assignment);
  now_ = now;
  given_up_ = given_up;
  quarantine_trips_ = q_trips;
  quarantine_releases_ = q_releases;
  id_of_index_ = std::move(ids);
  last_scan_ = std::move(last_scan);
  last_capacity_ = std::move(last_capacity);
  flap_ = std::move(flap);
  index_of_id_ = std::move(index_of_id);
  pending_ = std::move(pending);
  channel_plan_ = std::move(channel_plan);
  return true;
}

}  // namespace wolt::core
