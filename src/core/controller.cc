#include "core/controller.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace wolt::core {
namespace {

std::string JoinDoubles(const std::vector<double>& xs) {
  std::string out;
  char buf[64];
  for (std::size_t k = 0; k < xs.size(); ++k) {
    if (k) out += ',';
    std::snprintf(buf, sizeof(buf), "%g", xs[k]);
    out += buf;
  }
  return out;
}

std::optional<std::vector<double>> ParseDoubles(const std::string& csv) {
  std::vector<double> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    try {
      std::size_t consumed = 0;
      const double value = std::stod(item, &consumed);
      if (consumed != item.size()) return std::nullopt;
      out.push_back(value);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return out;
}

// Splits "key=value" tokens of a message line after the type word.
std::optional<std::unordered_map<std::string, std::string>> ParseFields(
    const std::string& line, const std::string& expected_type) {
  std::istringstream in(line);
  std::string type;
  if (!(in >> type) || type != expected_type) return std::nullopt;
  std::unordered_map<std::string, std::string> fields;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return std::nullopt;
    fields[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return fields;
}

}  // namespace

std::string Encode(const ScanReport& msg) {
  std::string out = "SCAN user=" + std::to_string(msg.user_id) +
                    " rates=" + JoinDoubles(msg.rates_mbps);
  if (!msg.rssi_dbm.empty()) out += " rssi=" + JoinDoubles(msg.rssi_dbm);
  return out;
}

std::string Encode(const AssociationDirective& msg) {
  return "DIRECTIVE user=" + std::to_string(msg.user_id) +
         " extender=" + std::to_string(msg.extender);
}

std::string Encode(const CapacityReport& msg) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", msg.capacity_mbps);
  return "CAPACITY extender=" + std::to_string(msg.extender) + " mbps=" + buf;
}

std::optional<ScanReport> DecodeScanReport(const std::string& line) {
  const auto fields = ParseFields(line, "SCAN");
  if (!fields || !fields->count("user") || !fields->count("rates")) {
    return std::nullopt;
  }
  ScanReport msg;
  try {
    msg.user_id = std::stoll(fields->at("user"));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const auto rates = ParseDoubles(fields->at("rates"));
  if (!rates) return std::nullopt;
  msg.rates_mbps = *rates;
  if (fields->count("rssi")) {
    const auto rssi = ParseDoubles(fields->at("rssi"));
    if (!rssi || rssi->size() != msg.rates_mbps.size()) return std::nullopt;
    msg.rssi_dbm = *rssi;
  }
  return msg;
}

std::optional<AssociationDirective> DecodeAssociationDirective(
    const std::string& line) {
  const auto fields = ParseFields(line, "DIRECTIVE");
  if (!fields || !fields->count("user") || !fields->count("extender")) {
    return std::nullopt;
  }
  AssociationDirective msg;
  try {
    msg.user_id = std::stoll(fields->at("user"));
    msg.extender = std::stoi(fields->at("extender"));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return msg;
}

std::optional<CapacityReport> DecodeCapacityReport(const std::string& line) {
  const auto fields = ParseFields(line, "CAPACITY");
  if (!fields || !fields->count("extender") || !fields->count("mbps")) {
    return std::nullopt;
  }
  CapacityReport msg;
  try {
    msg.extender = std::stoi(fields->at("extender"));
    msg.capacity_mbps = std::stod(fields->at("mbps"));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (msg.capacity_mbps < 0.0) return std::nullopt;
  return msg;
}

CentralController::CentralController(std::size_t num_extenders,
                                     PolicyPtr policy)
    : net_(0, num_extenders), policy_(std::move(policy)) {
  if (num_extenders == 0) throw std::invalid_argument("no extenders");
  if (!policy_) throw std::invalid_argument("null policy");
}

void CentralController::HandleCapacityReport(const CapacityReport& report) {
  if (report.extender < 0 ||
      static_cast<std::size_t>(report.extender) >= net_.NumExtenders()) {
    throw std::invalid_argument("unknown extender in capacity report");
  }
  net_.SetPlcRate(static_cast<std::size_t>(report.extender),
                  report.capacity_mbps);
}

std::size_t CentralController::IndexOf(std::int64_t user_id) const {
  const auto it = index_of_id_.find(user_id);
  if (it == index_of_id_.end()) {
    throw std::invalid_argument("unknown user id");
  }
  return it->second;
}

void CentralController::ApplyReport(std::size_t index,
                                    const ScanReport& report) {
  for (std::size_t j = 0; j < net_.NumExtenders(); ++j) {
    net_.SetWifiRate(index, j, report.rates_mbps[j]);
    if (!report.rssi_dbm.empty()) {
      net_.SetRssi(index, j, report.rssi_dbm[j]);
    }
  }
}

std::vector<AssociationDirective> CentralController::RunPolicy() {
  const model::Assignment before = assignment_;
  assignment_ = policy_->Associate(net_, before);
  std::vector<AssociationDirective> directives;
  for (std::size_t i = 0; i < net_.NumUsers(); ++i) {
    if (assignment_.IsAssigned(i) &&
        assignment_.ExtenderOf(i) != before.ExtenderOf(i)) {
      directives.push_back({id_of_index_[i], assignment_.ExtenderOf(i)});
    }
  }
  return directives;
}

std::vector<AssociationDirective> CentralController::HandleUserArrival(
    const ScanReport& report) {
  if (report.rates_mbps.size() != net_.NumExtenders()) {
    throw std::invalid_argument("scan report has wrong extender count");
  }
  if (index_of_id_.count(report.user_id)) {
    throw std::invalid_argument("duplicate user id");
  }
  const std::size_t index = net_.AddUser(model::User{}, report.rates_mbps);
  assignment_.AppendUser();
  id_of_index_.push_back(report.user_id);
  index_of_id_[report.user_id] = index;
  ApplyReport(index, report);
  return RunPolicy();
}

std::vector<AssociationDirective> CentralController::HandleScanUpdate(
    const ScanReport& report) {
  if (report.rates_mbps.size() != net_.NumExtenders()) {
    throw std::invalid_argument("scan report has wrong extender count");
  }
  const std::size_t index = IndexOf(report.user_id);
  ApplyReport(index, report);
  // The refreshed rates may invalidate the current association.
  const int current = assignment_.ExtenderOf(index);
  if (current != model::Assignment::kUnassigned &&
      net_.WifiRate(index, static_cast<std::size_t>(current)) <= 0.0) {
    assignment_.Unassign(index);
  }
  return RunPolicy();
}

void CentralController::HandleUserDeparture(std::int64_t user_id) {
  const std::size_t index = IndexOf(user_id);
  net_.RemoveUser(index);
  assignment_.EraseUser(index);
  id_of_index_.erase(id_of_index_.begin() +
                     static_cast<std::ptrdiff_t>(index));
  index_of_id_.clear();
  for (std::size_t i = 0; i < id_of_index_.size(); ++i) {
    index_of_id_[id_of_index_[i]] = i;
  }
}

std::vector<AssociationDirective> CentralController::Reoptimize() {
  return RunPolicy();
}

std::optional<int> CentralController::ExtenderOf(std::int64_t user_id) const {
  const auto it = index_of_id_.find(user_id);
  if (it == index_of_id_.end()) return std::nullopt;
  if (!assignment_.IsAssigned(it->second)) return std::nullopt;
  return assignment_.ExtenderOf(it->second);
}

double CentralController::CurrentAggregate() const {
  return model::Evaluator().AggregateThroughput(net_, assignment_);
}

}  // namespace wolt::core
