// Optimal association by exhaustive search — the "optimal user association"
// of the paper's Fig. 3d case study. Exponential; intended for case-study
// and test-oracle use only (the NP-hardness of Problem 1, Theorem 1, is why
// WOLT exists).
#pragma once

#include "assign/brute_force.h"
#include "core/policy.h"

namespace wolt::core {

class OptimalPolicy : public AssociationPolicy {
 public:
  explicit OptimalPolicy(assign::BruteForceOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "Optimal"; }

  // Ignores `previous` (re-optimizes globally). Throws if the search space
  // exceeds options.max_combinations.
  model::Assignment Associate(const model::Network& net,
                              const model::Assignment& previous) override;

 private:
  assign::BruteForceOptions options_;
};

}  // namespace wolt::core
