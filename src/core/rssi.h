// Strongest-RSSI association — the default behaviour of commodity PLC-WiFi
// extenders and the paper's first baseline (§V-C): every user attaches to
// the extender with the best received signal, ignoring both the extender's
// PLC link quality and the WiFi contention in its cell. Under any monotone
// RSSI->rate mapping this is the extender with the highest r_ij, which is
// how we implement it (the scenario generators build r_ij from RSSI).
#pragma once

#include "core/policy.h"

namespace wolt::core {

class RssiPolicy : public AssociationPolicy {
 public:
  std::string Name() const override { return "RSSI"; }

  // Assigns only previously unassigned users; existing associations are
  // untouched (RSSI users never receive re-association directives). If the
  // best-RSSI extender is at its B_j cap, the next-strongest one is used.
  model::Assignment Associate(const model::Network& net,
                              const model::Assignment& previous) override;
};

}  // namespace wolt::core
