#include "core/greedy.h"

#include <stdexcept>
#include <vector>

namespace wolt::core {

model::Assignment GreedyPolicy::Associate(const model::Network& net,
                                          const model::Assignment& previous) {
  if (previous.NumUsers() != net.NumUsers()) {
    throw std::invalid_argument("previous assignment size mismatch");
  }
  model::Assignment assign = previous;
  std::vector<int> load = assign.LoadVector(net.NumExtenders());

  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    // Anytime contract: each placed user leaves a valid partial assignment,
    // so stopping between users on deadline expiry is always safe.
    if (util::DeadlineExpired(deadline_)) break;
    if (assign.IsAssigned(i)) continue;
    int best = -1;
    double best_aggregate = -1.0;
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      if (net.WifiRate(i, j) <= 0.0) continue;
      const int cap = net.MaxUsers(j);
      if (cap > 0 && load[j] >= cap) continue;
      assign.Assign(i, j);
      const double aggregate = evaluator_.AggregateThroughput(net, assign);
      assign.Unassign(i);
      if (aggregate > best_aggregate) {
        best_aggregate = aggregate;
        best = static_cast<int>(j);
      }
    }
    if (best >= 0) {
      assign.Assign(i, static_cast<std::size_t>(best));
      ++load[static_cast<std::size_t>(best)];
    }
  }
  return assign;
}

}  // namespace wolt::core
