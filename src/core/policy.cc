#include "core/policy.h"

namespace wolt::core {

model::Assignment AssociationPolicy::AssociateFresh(
    const model::Network& net) {
  return Associate(net, model::Assignment(net.NumUsers()));
}

}  // namespace wolt::core
