// WOLT — the paper's primary contribution (Alg. 1).
//
// Phase I solves the modified Problem 1 (constraint (7) relaxed; every
// extender serves >= 1 user): by Lemma 2 exactly one user per extender is
// optimal, and by Theorem 2 the problem becomes a standard assignment
// problem with task utilities u_ij = min(c_j/|A|, r_ij) — solved here with
// the Hungarian algorithm in O(|A|^3). Phase II assigns the remaining users
// U2 to maximize the aggregate WiFi throughput with the Phase-I users fixed
// (Problem 2); per Theorem 3 the continuous optimum is integral, and we
// solve it with marginal-gain greedy insertion + relocation local search
// (the projected-gradient NLP solver is available as an alternative).
//
// For dynamic scenarios WOLT recomputes at every invocation; the `sticky`
// option seeds Phase II with each persisting user's current extender and
// only moves users for material gain, which is what keeps the re-assignment
// load near one swap per arrival (Fig. 6c).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "assign/joint.h"
#include "assign/local_search.h"
#include "core/policy.h"
#include "model/evaluator.h"
#include "model/soa.h"
#include "util/arena.h"

namespace wolt::core {

// Phase-I utility definition (ablation Abl-3 compares these).
enum class Phase1Utility {
  // The paper's Theorem-2 utility: min(c_j / |A|, r_ij).
  kMinPlcShareWifi,
  // Naive: WiFi rate only (ignores the PLC backhaul).
  kWifiOnly,
};

struct WoltOptions {
  Phase1Utility phase1_utility = Phase1Utility::kMinPlcShareWifi;
  assign::Phase2Objective phase2_objective =
      assign::Phase2Objective::kWifiSum;
  // Solve Phase II with the projected-gradient NLP instead of greedy
  // insertion + local search.
  bool use_nlp_phase2 = false;
  // Run relocation local search after greedy insertion (ignored under NLP).
  bool local_search = true;
  // Seed Phase II from `previous` for persisting users, bounding churn.
  bool sticky = true;
  // Extension (not in the paper): instead of force-activating every
  // extender (modification (b) of Problem 1), also try restricting the
  // network to the top-k extenders by PLC rate for each k and keep the
  // assignment with the best true aggregate. Under physical (active-only)
  // PLC sharing, activating a weak power-line link steals airtime from
  // strong ones, so the unrestricted WOLT over-activates at enterprise
  // scale; the subset search repairs that. Disables stickiness benefits
  // (each candidate is solved fresh).
  bool subset_search = false;
  model::EvalOptions eval;  // used by the kEndToEnd Phase-II objective and
                            // by the subset search's candidate scoring
  // In-solve parallelism: when non-null, the fresh (non-sticky) Phase-II
  // multi-start runs its starts concurrently on this pool with a
  // deterministic merge — same result as serial at any thread count (see
  // LocalSearchOptions::pool). The pool must outlive the policy's solves;
  // null keeps every solve single-threaded.
  util::ThreadPool* phase2_pool = nullptr;
};

// Phase-I outcome, exposed for tests and the ablation benches.
struct Phase1Result {
  // Per extender: the user selected for it, or -1 when the extender cannot
  // be seeded (no reachable user, or fewer users than extenders — or the
  // Hungarian solve was truncated by a deadline before reaching it).
  std::vector<int> user_of_extender;
  std::vector<std::size_t> u1_users;  // the set U1
  double total_utility = 0.0;
  // True iff the Hungarian solve stopped early on deadline expiry.
  bool deadline_hit = false;
};

class WoltPolicy : public AssociationPolicy {
 public:
  explicit WoltPolicy(WoltOptions options = {}) : options_(options) {}

  std::string Name() const override {
    return options_.subset_search ? "WOLT-S" : "WOLT";
  }

  model::Assignment Associate(const model::Network& net,
                              const model::Assignment& previous) override;

  // Run Phase I alone (Alg. 1 lines 1-4).
  Phase1Result ComputePhase1(const model::Network& net) const;
  // Phase I restricted to an extender activation mask (empty = all
  // enabled). Used by the subset search, which no longer copies the
  // Network per candidate activation set.
  Phase1Result ComputePhase1(const model::Network& net,
                             std::span<const std::uint8_t> mask) const;

  const WoltOptions& options() const { return options_; }

 private:
  // One full Phase I + Phase II solve restricted to the extenders enabled
  // in `mask` (empty = all).
  model::Assignment AssociateOnce(const model::Network& net,
                                  const model::Assignment& previous,
                                  std::span<const std::uint8_t> mask);
  // Extension: best-of-k activation search (see WoltOptions::subset_search).
  model::Assignment AssociateSubsetSearch(const model::Network& net,
                                          const model::Assignment& previous);

  WoltOptions options_;

  // Solve-lifetime scratch, retained across Associate calls so repeated
  // solves run allocation-free in steady state. `arena_` is reset at the
  // start of every Phase I (the solve boundary); everything below it on the
  // stack of one solve — Hungarian scratch, then Phase-II search state —
  // only allocates. `start_arenas_` holds one arena per concurrent
  // multi-start; `soa_` caches the network's structure-of-arrays view
  // keyed on Network::Version().
  mutable util::SolverArena arena_;
  std::deque<util::SolverArena> start_arenas_;
  model::NetworkSoA soa_;
};

// Adapts the full WOLT policy into the joint solver's association oracle
// (assign::SolveJointAlternating): each call solves with `base`'s options
// under the eval model the joint solver passes in (which carries the
// candidate channel plan), threading the deadline token through. The base's
// phase2_objective is forced to kEndToEnd so the association actually sees
// co-channel airtime costs — the kWifiSum proxy is blind to them.
assign::JointAssociator WoltJointAssociator(WoltOptions base = {});

}  // namespace wolt::core
