#include "core/rssi.h"

#include <stdexcept>
#include <vector>

namespace wolt::core {

model::Assignment RssiPolicy::Associate(const model::Network& net,
                                        const model::Assignment& previous) {
  if (previous.NumUsers() != net.NumUsers()) {
    throw std::invalid_argument("previous assignment size mismatch");
  }
  model::Assignment assign = previous;
  std::vector<int> load = assign.LoadVector(net.NumExtenders());

  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    if (assign.IsAssigned(i)) continue;
    // Strongest signal first; fall back down the ranking when full. Rank by
    // recorded RSSI when the network carries it (continuous, no ties),
    // otherwise by rate (the monotone proxy).
    int best = -1;
    double best_metric = 0.0;
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      const double r = net.WifiRate(i, j);
      if (r <= 0.0) continue;
      const int cap = net.MaxUsers(j);
      if (cap > 0 && load[j] >= cap) continue;
      const double metric = net.HasRssi() ? net.Rssi(i, j) : r;
      if (best < 0 || metric > best_metric) {
        best_metric = metric;
        best = static_cast<int>(j);
      }
    }
    if (best >= 0) {
      assign.Assign(i, static_cast<std::size_t>(best));
      ++load[static_cast<std::size_t>(best)];
    }
  }
  return assign;
}

}  // namespace wolt::core
