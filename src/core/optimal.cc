#include "core/optimal.h"

namespace wolt::core {

model::Assignment OptimalPolicy::Associate(const model::Network& net,
                                           const model::Assignment& previous) {
  (void)previous;
  return assign::SolveBruteForce(net, options_).best;
}

}  // namespace wolt::core
