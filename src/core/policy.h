// The user-association policy interface shared by WOLT and the paper's
// baselines. A policy maps a Network (rates r_ij, capacities c_j) plus the
// current association state to a new association. Online baselines (Greedy,
// RSSI) only place users that are unassigned in `previous` and never touch
// existing ones; WOLT recomputes globally (with stickiness to bound churn);
// Optimal recomputes globally by exhaustive search.
#pragma once

#include <memory>
#include <string>

#include "model/assignment.h"
#include "model/network.h"
#include "util/deadline.h"

namespace wolt::core {

class AssociationPolicy {
 public:
  virtual ~AssociationPolicy() = default;

  virtual std::string Name() const = 0;

  // Produce an association for `net`. `previous` must have the same user
  // count as `net`; users with kUnassigned entries are new arrivals.
  virtual model::Assignment Associate(const model::Network& net,
                                      const model::Assignment& previous) = 0;

  // Convenience: associate from scratch (everyone is a new arrival).
  model::Assignment AssociateFresh(const model::Network& net);

  // Anytime control plane (the controller's per-epoch budget): while a
  // deadline is set, deadline-aware policies (WOLT) poll it inside their
  // solvers and return a best-so-far valid assignment on expiry; policies
  // that are intrinsically fast (Greedy, RSSI) may ignore it. Null (the
  // default) or an unexpired token leave behavior bit-identical to the
  // unbudgeted path. The pointer must stay valid across Associate calls.
  void SetDeadline(const util::Deadline* deadline) { deadline_ = deadline; }
  const util::Deadline* deadline() const { return deadline_; }

 protected:
  const util::Deadline* deadline_ = nullptr;
};

using PolicyPtr = std::unique_ptr<AssociationPolicy>;

}  // namespace wolt::core
