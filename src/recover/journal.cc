#include "recover/journal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/obs.h"
#include "util/codec.h"
#include "util/fileio.h"

namespace wolt::recover {
namespace {

// Binary payload encoding lives in util/codec.h (shared with the fleet
// journal and the controller state snapshots): native-order fixed-width
// integers, raw 8-byte doubles, bounds-checked ByteCursor reads.
using util::PutDouble;
using util::PutString;
using util::PutU32;
using util::PutU64;
using util::PutU8;
using Cursor = util::ByteCursor;

void PutSnapshot(std::string* out, const obs::MetricsSnapshot& m) {
  PutU64(out, m.counters.size());
  for (const obs::CounterSample& c : m.counters) {
    PutString(out, c.name);
    PutU8(out, c.timing ? 1 : 0);
    PutU64(out, c.value);
  }
  PutU64(out, m.gauges.size());
  for (const obs::GaugeSample& g : m.gauges) {
    PutString(out, g.name);
    PutU8(out, g.timing ? 1 : 0);
    PutDouble(out, g.value);
  }
  PutU64(out, m.histograms.size());
  for (const obs::HistogramSample& h : m.histograms) {
    PutString(out, h.name);
    PutU8(out, h.timing ? 1 : 0);
    PutU64(out, h.bounds.size());
    for (double b : h.bounds) PutDouble(out, b);
    PutU64(out, h.counts.size());
    for (std::uint64_t c : h.counts) PutU64(out, c);
    PutU64(out, h.underflow);
    PutU64(out, h.overflow);
    PutU64(out, h.rejected);
  }
}

bool ReadSnapshot(Cursor* cur, obs::MetricsSnapshot* out) {
  const std::uint64_t nc = cur->U64();
  if (!cur->ok() || nc > (1u << 20)) return false;
  out->counters.resize(static_cast<std::size_t>(nc));
  for (obs::CounterSample& c : out->counters) {
    c.name = cur->String();
    c.timing = cur->U8() != 0;
    c.value = cur->U64();
  }
  const std::uint64_t ng = cur->U64();
  if (!cur->ok() || ng > (1u << 20)) return false;
  out->gauges.resize(static_cast<std::size_t>(ng));
  for (obs::GaugeSample& g : out->gauges) {
    g.name = cur->String();
    g.timing = cur->U8() != 0;
    g.value = cur->Double();
  }
  const std::uint64_t nh = cur->U64();
  if (!cur->ok() || nh > (1u << 20)) return false;
  out->histograms.resize(static_cast<std::size_t>(nh));
  for (obs::HistogramSample& h : out->histograms) {
    h.name = cur->String();
    h.timing = cur->U8() != 0;
    if (!cur->DoubleVec(&h.bounds)) return false;
    if (!cur->U64Vec(&h.counts)) return false;
    h.underflow = cur->U64();
    h.overflow = cur->U64();
    h.rejected = cur->U64();
  }
  return cur->ok();
}

// Record kinds inside a frame payload (first byte).
constexpr std::uint8_t kKindHeader = 1;
constexpr std::uint8_t kKindTask = 2;

}  // namespace

std::uint64_t Fnv1a64(const char* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string EncodeHeaderPayload(const JournalHeader& header) {
  std::string out;
  PutU8(&out, kKindHeader);
  PutU32(&out, kJournalVersion);
  PutU64(&out, header.fingerprint);
  PutU64(&out, header.num_tasks);
  return out;
}

bool DecodeHeaderPayload(const std::string& payload, JournalHeader* out) {
  Cursor cur(payload.data(), payload.size());
  if (cur.U8() != kKindHeader) return false;
  if (cur.U32() != kJournalVersion) return false;
  out->fingerprint = cur.U64();
  out->num_tasks = cur.U64();
  return cur.AtEnd();
}

std::string EncodeTaskPayload(const TaskRecord& record) {
  std::string out;
  PutU8(&out, kKindTask);
  PutU64(&out, record.index);
  PutString(&out, record.error);
  PutDouble(&out, record.aggregate_mbps);
  PutDouble(&out, record.jain_fairness);
  PutDouble(&out, record.oracle_mbps);
  PutDouble(&out, record.regret);
  PutDouble(&out, record.reassoc_per_user_epoch);
  PutU64(&out, record.quarantine_trips);
  PutDouble(&out, record.elapsed_us);
  PutU64(&out, record.user_throughput.size());
  for (double v : record.user_throughput) PutDouble(&out, v);
  PutU8(&out, record.has_metrics ? 1 : 0);
  if (record.has_metrics) PutSnapshot(&out, record.metrics);
  return out;
}

bool DecodeTaskPayload(const std::string& payload, TaskRecord* out) {
  Cursor cur(payload.data(), payload.size());
  if (cur.U8() != kKindTask) return false;
  out->index = cur.U64();
  out->error = cur.String();
  out->aggregate_mbps = cur.Double();
  out->jain_fairness = cur.Double();
  out->oracle_mbps = cur.Double();
  out->regret = cur.Double();
  out->reassoc_per_user_epoch = cur.Double();
  out->quarantine_trips = cur.U64();
  out->elapsed_us = cur.Double();
  if (!cur.DoubleVec(&out->user_throughput)) return false;
  out->has_metrics = cur.U8() != 0;
  if (out->has_metrics && !ReadSnapshot(&cur, &out->metrics)) return false;
  return cur.AtEnd();
}

std::string FramePayload(const std::string& payload) {
  std::string out;
  PutU32(&out, kJournalMagic);
  PutU32(&out, static_cast<std::uint32_t>(payload.size()));
  PutU64(&out, Fnv1a64(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

namespace {

// Classifies the invalid tail starting at `pos` and bumps the matching obs
// counters. A tail shorter than a frame header, or one whose declared
// payload runs past end-of-file, is a torn final append (expected after a
// crash). A complete-looking frame with a bad magic, bad checksum, or
// undecodable payload is bit-rot on the medium.
void ClassifyTail(const std::string& bytes, std::size_t pos, bool decode_failed,
                  bool* torn, bool* rot) {
  constexpr std::size_t kFrameHeader =
      sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t);
  *torn = false;
  *rot = false;
  const std::size_t tail = bytes.size() - pos;
  if (tail == 0) return;
  if (decode_failed) {
    *rot = true;  // checksum passed but the payload is garbage
  } else if (tail < kFrameHeader) {
    *torn = true;
  } else {
    Cursor frame(bytes.data() + pos, kFrameHeader);
    const std::uint32_t magic = frame.U32();
    const std::uint32_t len = frame.U32();
    if (magic != kJournalMagic) {
      *rot = true;
    } else if (len > tail - kFrameHeader) {
      *torn = true;  // payload cut off by the crash
    } else {
      *rot = true;  // checksum mismatch
    }
  }
}

}  // namespace

JournalReadResult ReadJournal(const std::string& path, io::Vfs* vfs_in) {
  io::Vfs& vfs = io::OrDefault(vfs_in);
  JournalReadResult out;

  std::string bytes;
  if (!vfs.ReadFileBytes(path, &bytes).ok()) {
    out.error = "cannot open journal: " + path;
    return out;
  }

  constexpr std::size_t kFrameHeader =
      sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t);
  std::size_t pos = 0;
  bool saw_header = false;
  bool decode_failed = false;
  std::vector<std::uint64_t> seen;

  while (true) {
    if (bytes.size() - pos < kFrameHeader) break;
    Cursor frame(bytes.data() + pos, kFrameHeader);
    const std::uint32_t magic = frame.U32();
    const std::uint32_t len = frame.U32();
    const std::uint64_t checksum = frame.U64();
    if (magic != kJournalMagic) break;
    if (len > bytes.size() - pos - kFrameHeader) break;  // truncated payload
    const char* payload_data = bytes.data() + pos + kFrameHeader;
    if (Fnv1a64(payload_data, len) != checksum) break;
    const std::string payload(payload_data, len);

    if (!saw_header) {
      // The first record must be the header; anything else means this is
      // not a journal (or its head is corrupt) and nothing can be salvaged.
      if (!DecodeHeaderPayload(payload, &out.header)) {
        out.error = "journal header record is missing or corrupt: " + path;
        out.torn_bytes = bytes.size();
        return out;
      }
      saw_header = true;
    } else {
      TaskRecord rec;
      if (!DecodeTaskPayload(payload, &rec)) {  // corrupt tail
        decode_failed = true;
        break;
      }
      if (std::find(seen.begin(), seen.end(), rec.index) != seen.end()) {
        ++out.duplicates;
      } else {
        seen.push_back(rec.index);
        out.records.push_back(std::move(rec));
      }
    }
    pos += kFrameHeader + len;
  }

  if (!saw_header) {
    out.error = "journal has no valid header record: " + path;
    out.torn_bytes = bytes.size();
    return out;
  }
  out.ok = true;
  out.valid_bytes = pos;
  out.torn_bytes = bytes.size() - pos;
  ClassifyTail(bytes, pos, decode_failed, &out.tail_torn, &out.tail_rot);
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    if (out.tail_torn) s->recover.journal_torn_tail.Add(1);
    if (out.tail_rot) s->recover.journal_rot_truncated.Add(1);
  }
  return out;
}

// ---------------------------------------------------------------------------
// JournalWriter

JournalWriter::JournalWriter(const std::string& path,
                             const JournalHeader& header, Options options)
    : path_(path),
      header_(header),
      options_(std::move(options)),
      vfs_(&io::OrDefault(options_.vfs)) {
  io::IoStatus st;
  fd_ = vfs_->OpenWrite(path_, io::Vfs::OpenMode::kTruncate, &st);
  if (fd_ < 0) {
    Degrade(st, "cannot open sweep journal");
    return;
  }
  ok_ = true;
  WriteFrame(EncodeHeaderPayload(header_));  // degrades on failure
}

JournalWriter::JournalWriter(const std::string& path,
                             const JournalReadResult& existing,
                             Options options)
    : path_(path),
      header_(existing.header),
      options_(std::move(options)),
      vfs_(&io::OrDefault(options_.vfs)) {
  if (!existing.ok) return;  // caller decides; typically restart fresh
  // Discard the torn tail so appended records land right after the valid
  // prefix, then keep writing the same file.
  io::IoStatus st = vfs_->Truncate(path_, existing.valid_bytes);
  if (!st.ok()) {
    Degrade(st, "cannot truncate torn journal tail");
    return;
  }
  fd_ = vfs_->OpenWrite(path_, io::Vfs::OpenMode::kAppend, &st);
  if (fd_ < 0) {
    Degrade(st, "cannot reopen sweep journal");
    return;
  }
  payloads_.reserve(existing.records.size());
  seen_indices_.reserve(existing.records.size());
  for (const TaskRecord& rec : existing.records) {
    payloads_.push_back(EncodeTaskPayload(rec));
    seen_indices_.push_back(rec.index);
  }
  ok_ = true;
}

JournalWriter::~JournalWriter() { Close(); }

void JournalWriter::Append(const TaskRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!ok_ || fd_ < 0) return;
  if (std::find(seen_indices_.begin(), seen_indices_.end(), record.index) !=
      seen_indices_.end()) {
    return;  // already journaled (restored on resume); keep one copy
  }
  const std::string payload = EncodeTaskPayload(record);
  WriteFrame(payload);
  if (!ok_) return;
  payloads_.push_back(payload);
  seen_indices_.push_back(record.index);
  ++appends_;
  if (options_.compact_every > 0 && appends_ % options_.compact_every == 0) {
    Compact();
  }
  if (options_.after_append) options_.after_append(appends_);
}

void JournalWriter::WriteFrame(const std::string& payload) {
  io::IoStatus st = io::WriteAll(*vfs_, fd_, FramePayload(payload));
  if (st.ok() && options_.sync_every_append) {
    st = io::FsyncRetry(*vfs_, fd_);
  }
  if (!st.ok()) Degrade(st, "journal append failed");
}

void JournalWriter::Compact() {
  // Rewrite the whole journal (header + deduped records) via the atomic
  // temp+fsync+rename helper, then reopen for appending. A crash anywhere
  // in here leaves either the old journal (still valid, maybe with
  // duplicates) or the compacted one — never a torn file at path_. The same
  // holds for an I/O *failure* (ENOSPC mid-rewrite): WriteFileAtomic leaves
  // the destination untouched, so the old journal stays valid and appends
  // simply continue after it.
  std::string contents = FramePayload(EncodeHeaderPayload(header_));
  for (const std::string& payload : payloads_) {
    contents.append(FramePayload(payload));
  }
  vfs_->Close(fd_);
  fd_ = -1;
  const io::IoStatus write_st = util::WriteFileAtomic(path_, contents, vfs_);
  if (!write_st.ok()) {
    std::fprintf(stderr,
                 "wolt: journal %s: compaction failed (%s); keeping the "
                 "uncompacted journal\n",
                 path_.c_str(), write_st.Message().c_str());
    if (obs::MetricsScope* s = obs::CurrentScope()) {
      s->recover.journal_compact_failed.Add(1);
    }
  }
  io::IoStatus open_st;
  fd_ = vfs_->OpenWrite(path_, io::Vfs::OpenMode::kAppend, &open_st);
  if (fd_ < 0) Degrade(open_st, "cannot reopen journal after compaction");
}

void JournalWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  io::IoStatus st = io::FsyncRetry(*vfs_, fd_);
  const io::IoStatus close_st = vfs_->Close(fd_);
  if (st.ok()) st = close_st;
  fd_ = -1;
  if (!st.ok()) Degrade(st, "journal close failed");
}

void JournalWriter::Degrade(const io::IoStatus& status, const char* what) {
  if (fd_ >= 0) {
    vfs_->Close(fd_);
    fd_ = -1;
  }
  ok_ = false;
  if (degraded_) return;
  degraded_ = true;
  std::fprintf(stderr,
               "wolt: journal %s: %s (%s) — journaling disabled, the run "
               "continues best-effort (no crash resume past this point)\n",
               path_.c_str(), what, status.Message().c_str());
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->recover.journal_io_error.Add(1);
    s->recover.journal_degraded.Add(1);
  }
}

}  // namespace wolt::recover
