// Write-ahead journal of the fleet runtime (src/fleet/runtime.h) — the
// durability layer behind the fleet's crash-safe resume contract: a fleet
// run SIGKILLed at any instant resumes from its last snapshot and produces a
// byte-identical report to an uninterrupted run.
//
// Same framing as the sweep journal (recover/journal.h) under a distinct
// magic so the two artefacts can never be resumed against each other:
//
//   [u32 "WFL1"][u32 payload_len][u64 fnv1a(payload)][payload bytes]
//
// Record stream per completed round: one ShardRoundRecord per shard, one
// FleetRoundRecord, and — every `snapshot_every` rounds and after the final
// round — a snapshot record carrying the serialized fleet state (queue,
// supervisor, every shard). The snapshot is the resume point: the reader
// reports the last valid snapshot as a checkpoint, and valid records
// *after* it are discarded (the resumed run re-executes those rounds
// deterministically, regenerating them bit-for-bit).
//
// The header binds the journal to one configuration via the fleet
// fingerprint (fleet::Fingerprint over params + seed); resuming against a
// journal with a different fingerprint is refused by the runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "io/vfs.h"

namespace wolt::recover {

inline constexpr std::uint32_t kFleetJournalMagic = 0x57464C31;  // "WFL1"
inline constexpr std::uint32_t kFleetJournalVersion = 1;

struct FleetJournalHeader {
  std::uint64_t fingerprint = 0;  // fleet::Fingerprint(params, seed)
  std::uint64_t num_shards = 0;
  std::uint64_t rounds = 0;
};

// Per-shard, per-round observable outcome. The concatenation of these (plus
// the FleetRoundRecords) is what the fleet report is folded from, so resume
// correctness is exactly "these records match the uninterrupted run's".
struct ShardRoundRecord {
  std::uint64_t round = 0;
  std::uint32_t shard = 0;
  std::uint8_t state = 0;          // fleet::ShardState after the round
  std::int8_t tier = -1;           // served ReoptTier; -1 = not scheduled
  double truth_aggregate = 0.0;    // ground-truth throughput (do-no-harm)
  std::uint64_t processed = 0;
  std::uint64_t decode_rejects = 0;
  std::uint64_t wire_faults = 0;
  std::uint64_t state_conflicts = 0;
  std::uint64_t directives = 0;
  std::uint64_t outbound = 0;
  std::uint64_t failures = 0;
  std::uint64_t dropped = 0;       // queue messages discarded (unavailable)
  std::uint8_t restarted = 0;
  std::uint8_t broke = 0;          // circuit break tripped this round
  std::uint8_t probed = 0;
  std::uint8_t held_violation = 0; // degraded shard moved off held state
  std::uint8_t isolation_violation = 0;  // foreign user id seen in the shard
};

// Fleet-wide per-round aggregates (queue accounting + reopt scheduling).
struct FleetRoundRecord {
  std::uint64_t round = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t delivered = 0;
  std::uint64_t shed = 0;
  std::uint64_t discarded = 0;
  std::uint64_t backlog = 0;         // queue depth at end of round
  std::uint64_t reopt_scheduled = 0;
  std::uint64_t reopt_units = 0;     // virtual budget units spent
};

struct FleetJournalReadResult {
  bool ok = false;
  std::string error;
  FleetJournalHeader header;
  // Records up to (and including) the last valid snapshot, deduplicated
  // first-wins, in order of first appearance.
  std::vector<ShardRoundRecord> shard_records;
  std::vector<FleetRoundRecord> fleet_records;
  // Last valid snapshot (the resume point). Without one, resume restarts
  // the run from round 0 (only the header survives).
  bool has_checkpoint = false;
  std::uint64_t checkpoint_round = 0;  // round the snapshot was taken after
  std::string checkpoint_blob;         // fleet::FleetRuntime state
  std::uint64_t checkpoint_bytes = 0;  // file prefix ending after it
  std::uint64_t header_bytes = 0;      // file prefix ending after the header
  std::uint64_t valid_bytes = 0;       // full validated prefix
  std::uint64_t torn_bytes = 0;        // discarded tail past the prefix
  std::size_t duplicates = 0;          // duplicate records dropped
  std::size_t discarded_records = 0;   // valid records past the checkpoint
  // Tail classification (see JournalReadResult): torn = incomplete final
  // frame, rot = complete-looking frame with bad magic/checksum/payload.
  // Counted on recover.fleet.{torn_tail,rot_truncated}.
  bool tail_torn = false;
  bool tail_rot = false;
};

// Validates `path` front to back. Never throws; failures land in `error`.
// Damage never aborts replay: the corrupt tail is classified (torn vs rot)
// and truncated back to the last good checksum frame.
FleetJournalReadResult ReadFleetJournal(const std::string& path,
                                        io::Vfs* vfs = nullptr);

class FleetJournalWriter {
 public:
  struct Options {
    // Test hook, called after each append has been flushed with the count
    // of appends made through this writer. The crash harness raises SIGKILL
    // in here to die at an exact journal position.
    std::function<void(std::size_t)> after_append;
    // Storage backend; nullptr = the real filesystem.
    io::Vfs* vfs = nullptr;
    // fsync after every append (see JournalWriter::Options).
    bool sync_every_append = false;
  };

  // Fresh journal: truncates `path` and writes the header record.
  FleetJournalWriter(const std::string& path, const FleetJournalHeader& header,
                     Options options);

  // Resume: truncates the file back to the last checkpoint (or to the bare
  // header when there is none), discarding the torn tail and any records
  // past the snapshot — the resumed run regenerates those.
  FleetJournalWriter(const std::string& path,
                     const FleetJournalReadResult& existing, Options options);

  ~FleetJournalWriter();

  FleetJournalWriter(const FleetJournalWriter&) = delete;
  FleetJournalWriter& operator=(const FleetJournalWriter&) = delete;

  // Journaling is active. When false every append is a no-op; the fleet run
  // keeps going (best-effort mode, no crash resume past that point).
  bool ok() const { return ok_; }
  // The writer gave up after an I/O failure; one loud stderr warning was
  // emitted and recover.fleet.{io_error,degraded} were bumped.
  bool degraded() const { return degraded_; }

  void AppendShardRound(const ShardRoundRecord& record);
  void AppendFleetRound(const FleetRoundRecord& record);
  void AppendSnapshot(std::uint64_t round, const std::string& blob);

  // fsync + close. Called by the destructor if not called explicitly.
  void Close();

 private:
  void WriteFrame(const std::string& payload);
  void Degrade(const io::IoStatus& status, const char* what);

  std::string path_;
  Options options_;
  io::Vfs* vfs_ = nullptr;
  int fd_ = -1;
  bool ok_ = false;
  bool degraded_ = false;
  std::size_t appends_ = 0;
};

// Payload codecs, exposed for the torn-tail/corruption unit tests.
std::string EncodeFleetHeaderPayload(const FleetJournalHeader& header);
std::string EncodeShardRoundPayload(const ShardRoundRecord& record);
std::string EncodeFleetRoundPayload(const FleetRoundRecord& record);
std::string EncodeSnapshotPayload(std::uint64_t round,
                                  const std::string& blob);
bool DecodeFleetHeaderPayload(const std::string& payload,
                              FleetJournalHeader* out);
// Frames a payload as it appears on disk (magic + length + checksum).
std::string FrameFleetPayload(const std::string& payload);

}  // namespace wolt::recover
