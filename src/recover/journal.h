// Write-ahead journal of completed sweep tasks — the durability layer that
// lets a sweep killed at any instant (including kill -9 mid-record) resume
// and produce byte-identical output to an uninterrupted run.
//
// File layout: a header record followed by one record per completed task,
// all framed identically:
//
//   [u32 magic][u32 payload_len][u64 fnv1a(payload)][payload bytes]
//
// Doubles are serialized as their raw 8 bytes (bit-exact round trip — the
// resume path must reproduce the uninterrupted run's merge inputs exactly).
// The header payload carries a format version, the grid fingerprint
// (sweep::Fingerprint) and the task count, so a journal can never be
// resumed against a different sweep.
//
// Crash semantics:
//  * Appends are fflush'd per record: a process kill (the page cache
//    survives) loses at most the record being written. Power loss can lose
//    more; compaction and Close() fsync.
//  * The reader validates records front to back; the first bad frame (bad
//    magic, truncated length, checksum mismatch, unparsable payload) ends
//    the valid prefix, and everything after it is reported as torn bytes.
//    Resume truncates the file back to the valid prefix before appending.
//  * Duplicate task indices (possible when a crash lands between "task
//    re-run" and "journal truncated") dedupe first-record-wins.
//  * Every `compact_every` appends the journal is rewritten without
//    duplicates via temp file + fsync + rename, bounding file growth across
//    repeated crash/resume cycles.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/vfs.h"
#include "obs/metrics.h"

namespace wolt::recover {

inline constexpr std::uint32_t kJournalMagic = 0x574A4C31;  // "WJL1"
// Version 2 added the dynamic-workload frontier columns (oracle, regret,
// reassociation rate, quarantine trips) to TaskRecord.
inline constexpr std::uint32_t kJournalVersion = 2;

// FNV-1a 64-bit over a byte string (the per-record checksum).
std::uint64_t Fnv1a64(const char* data, std::size_t size);

struct JournalHeader {
  std::uint64_t fingerprint = 0;  // sweep::Fingerprint of the grid
  std::uint64_t num_tasks = 0;
};

// One completed task's result, exactly the data the sweep merge consumes.
struct TaskRecord {
  std::uint64_t index = 0;
  std::string error;              // non-empty: the task body threw
  double aggregate_mbps = 0.0;
  double jain_fairness = 0.0;
  // Frontier columns (0 for static tasks); see sweep::TaskResult.
  double oracle_mbps = 0.0;
  double regret = 0.0;
  double reassoc_per_user_epoch = 0.0;
  std::uint64_t quarantine_trips = 0;
  double elapsed_us = 0.0;        // timing-quarantined, journaled for
                                  // include_timing reports
  std::vector<double> user_throughput;  // raw samples in insertion order
  bool has_metrics = false;
  obs::MetricsSnapshot metrics;
};

struct JournalReadResult {
  bool ok = false;      // file opened and the header record validated
  std::string error;    // why ok is false
  JournalHeader header;
  // Deduplicated task records (first record for an index wins), in file
  // order of first appearance.
  std::vector<TaskRecord> records;
  std::uint64_t valid_bytes = 0;  // length of the validated prefix
  std::uint64_t torn_bytes = 0;   // bytes past the prefix (discarded)
  std::size_t duplicates = 0;     // duplicate task records dropped
  // Why the valid prefix ended (both false when the file parsed cleanly):
  // a torn tail is an incomplete final frame (crash mid-append, expected);
  // a rotted tail is a complete-looking frame whose magic/checksum/payload
  // is wrong (medium corruption). Counted on recover.journal.torn_tail /
  // recover.journal.rot_truncated when a metrics scope is installed.
  bool tail_torn = false;
  bool tail_rot = false;
};

// Validates `path` front to back. Never throws; failures land in `error`.
// Replay never aborts on damage: a corrupt tail is classified (torn vs rot)
// and truncated back to the last good checksum frame.
JournalReadResult ReadJournal(const std::string& path, io::Vfs* vfs = nullptr);

class JournalWriter {
 public:
  struct Options {
    // Rewrite the journal (dedup + fsync + rename) every this many appends;
    // 0 disables compaction.
    std::size_t compact_every = 64;
    // Test hook, called after each append has been flushed, with the count
    // of appends made through this writer. The crash harness raises
    // SIGKILL in here to die at an exact journal position.
    std::function<void(std::size_t)> after_append;
    // Storage backend; nullptr = the real filesystem.
    io::Vfs* vfs = nullptr;
    // fsync after every append. Default off: per-record fflush-to-kernel
    // survives a process kill, and compaction/Close() fsync. The crash
    // harness turns this on so every append is a distinct durable point.
    bool sync_every_append = false;
  };

  // Fresh journal: truncates `path` and writes the header record.
  JournalWriter(const std::string& path, const JournalHeader& header,
                Options options);

  // Resume: truncates the file to `existing.valid_bytes` (discarding the
  // torn tail ReadJournal found) and appends after the surviving records.
  JournalWriter(const std::string& path, const JournalReadResult& existing,
                Options options);

  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Journaling is active. When false the writer is a no-op; the run itself
  // keeps going (best-effort mode) — losing the journal must never take the
  // sweep down with it.
  bool ok() const { return ok_; }

  // The writer gave up on journaling after an I/O failure (open, append,
  // truncate or reopen-after-compaction). Flipping to degraded emits one
  // loud stderr warning and bumps recover.journal.{io_error,degraded}.
  bool degraded() const { return degraded_; }

  // Thread-safe: serialize, frame, write. Safe to call from the sweep
  // engine's worker threads. An I/O failure degrades the writer instead of
  // corrupting the journal: the file keeps its valid prefix.
  void Append(const TaskRecord& record);

  // fsync + close. Called by the destructor if not called explicitly.
  void Close();

 private:
  void WriteFrame(const std::string& payload);
  void Compact();
  void Degrade(const io::IoStatus& status, const char* what);

  std::string path_;
  JournalHeader header_;
  Options options_;
  io::Vfs* vfs_ = nullptr;
  std::mutex mu_;
  int fd_ = -1;
  bool ok_ = false;
  bool degraded_ = false;
  std::size_t appends_ = 0;
  // Every unique record payload written (or restored), for compaction.
  std::vector<std::string> payloads_;
  std::vector<std::uint64_t> seen_indices_;
};

// Payload codecs, exposed for the torn-tail/corruption unit tests.
std::string EncodeHeaderPayload(const JournalHeader& header);
std::string EncodeTaskPayload(const TaskRecord& record);
bool DecodeHeaderPayload(const std::string& payload, JournalHeader* out);
bool DecodeTaskPayload(const std::string& payload, TaskRecord* out);
// Frames a payload as it appears on disk (magic + length + checksum).
std::string FramePayload(const std::string& payload);

}  // namespace wolt::recover
