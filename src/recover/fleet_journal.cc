#include "recover/fleet_journal.h"

#include <cstdio>
#include <unordered_set>
#include <utility>

#include "obs/obs.h"
#include "recover/journal.h"  // Fnv1a64
#include "util/codec.h"

namespace wolt::recover {
namespace {

using util::PutString;
using util::PutU32;
using util::PutU64;
using util::PutU8;
using Cursor = util::ByteCursor;

// Record kinds inside a frame payload (first byte).
constexpr std::uint8_t kKindHeader = 1;
constexpr std::uint8_t kKindShardRound = 2;
constexpr std::uint8_t kKindFleetRound = 3;
constexpr std::uint8_t kKindSnapshot = 4;

bool DecodeShardRoundPayload(const std::string& payload,
                             ShardRoundRecord* out) {
  Cursor cur(payload);
  if (cur.U8() != kKindShardRound) return false;
  out->round = cur.U64();
  out->shard = cur.U32();
  out->state = cur.U8();
  out->tier = static_cast<std::int8_t>(cur.U8());
  out->truth_aggregate = cur.Double();
  out->processed = cur.U64();
  out->decode_rejects = cur.U64();
  out->wire_faults = cur.U64();
  out->state_conflicts = cur.U64();
  out->directives = cur.U64();
  out->outbound = cur.U64();
  out->failures = cur.U64();
  out->dropped = cur.U64();
  out->restarted = cur.U8();
  out->broke = cur.U8();
  out->probed = cur.U8();
  out->held_violation = cur.U8();
  out->isolation_violation = cur.U8();
  return cur.AtEnd();
}

bool DecodeFleetRoundPayload(const std::string& payload,
                             FleetRoundRecord* out) {
  Cursor cur(payload);
  if (cur.U8() != kKindFleetRound) return false;
  out->round = cur.U64();
  out->enqueued = cur.U64();
  out->delivered = cur.U64();
  out->shed = cur.U64();
  out->discarded = cur.U64();
  out->backlog = cur.U64();
  out->reopt_scheduled = cur.U64();
  out->reopt_units = cur.U64();
  return cur.AtEnd();
}

bool DecodeSnapshotPayload(const std::string& payload, std::uint64_t* round,
                           std::string* blob) {
  Cursor cur(payload);
  if (cur.U8() != kKindSnapshot) return false;
  *round = cur.U64();
  *blob = cur.String();
  return cur.AtEnd();
}

}  // namespace

std::string EncodeFleetHeaderPayload(const FleetJournalHeader& header) {
  std::string out;
  PutU8(&out, kKindHeader);
  PutU32(&out, kFleetJournalVersion);
  PutU64(&out, header.fingerprint);
  PutU64(&out, header.num_shards);
  PutU64(&out, header.rounds);
  return out;
}

bool DecodeFleetHeaderPayload(const std::string& payload,
                              FleetJournalHeader* out) {
  Cursor cur(payload);
  if (cur.U8() != kKindHeader) return false;
  if (cur.U32() != kFleetJournalVersion) return false;
  out->fingerprint = cur.U64();
  out->num_shards = cur.U64();
  out->rounds = cur.U64();
  return cur.AtEnd();
}

std::string EncodeShardRoundPayload(const ShardRoundRecord& record) {
  std::string out;
  PutU8(&out, kKindShardRound);
  PutU64(&out, record.round);
  PutU32(&out, record.shard);
  PutU8(&out, record.state);
  PutU8(&out, static_cast<std::uint8_t>(record.tier));
  util::PutDouble(&out, record.truth_aggregate);
  PutU64(&out, record.processed);
  PutU64(&out, record.decode_rejects);
  PutU64(&out, record.wire_faults);
  PutU64(&out, record.state_conflicts);
  PutU64(&out, record.directives);
  PutU64(&out, record.outbound);
  PutU64(&out, record.failures);
  PutU64(&out, record.dropped);
  PutU8(&out, record.restarted);
  PutU8(&out, record.broke);
  PutU8(&out, record.probed);
  PutU8(&out, record.held_violation);
  PutU8(&out, record.isolation_violation);
  return out;
}

std::string EncodeFleetRoundPayload(const FleetRoundRecord& record) {
  std::string out;
  PutU8(&out, kKindFleetRound);
  PutU64(&out, record.round);
  PutU64(&out, record.enqueued);
  PutU64(&out, record.delivered);
  PutU64(&out, record.shed);
  PutU64(&out, record.discarded);
  PutU64(&out, record.backlog);
  PutU64(&out, record.reopt_scheduled);
  PutU64(&out, record.reopt_units);
  return out;
}

std::string EncodeSnapshotPayload(std::uint64_t round,
                                  const std::string& blob) {
  std::string out;
  PutU8(&out, kKindSnapshot);
  PutU64(&out, round);
  PutString(&out, blob);
  return out;
}

std::string FrameFleetPayload(const std::string& payload) {
  std::string out;
  PutU32(&out, kFleetJournalMagic);
  PutU32(&out, static_cast<std::uint32_t>(payload.size()));
  PutU64(&out, Fnv1a64(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

FleetJournalReadResult ReadFleetJournal(const std::string& path,
                                        io::Vfs* vfs_in) {
  io::Vfs& vfs = io::OrDefault(vfs_in);
  FleetJournalReadResult out;

  std::string bytes;
  if (!vfs.ReadFileBytes(path, &bytes).ok()) {
    out.error = "cannot open fleet journal: " + path;
    return out;
  }

  constexpr std::size_t kFrameHeader =
      sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t);
  std::size_t pos = 0;
  bool saw_header = false;
  bool decode_failed = false;
  std::unordered_set<std::uint64_t> seen_shard;  // round*num_shards + shard
  std::unordered_set<std::uint64_t> seen_fleet;  // round
  // Record counts at the last snapshot seen; records past it are discarded
  // after the scan (the resumed run regenerates them).
  std::size_t cp_shard_count = 0;
  std::size_t cp_fleet_count = 0;

  while (true) {
    if (bytes.size() - pos < kFrameHeader) break;
    Cursor frame(bytes.data() + pos, kFrameHeader);
    const std::uint32_t magic = frame.U32();
    const std::uint32_t len = frame.U32();
    const std::uint64_t checksum = frame.U64();
    if (magic != kFleetJournalMagic) break;
    if (len > bytes.size() - pos - kFrameHeader) break;  // truncated payload
    const char* payload_data = bytes.data() + pos + kFrameHeader;
    if (Fnv1a64(payload_data, len) != checksum) break;
    const std::string payload(payload_data, len);
    const std::size_t frame_end = pos + kFrameHeader + len;

    if (!saw_header) {
      if (!DecodeFleetHeaderPayload(payload, &out.header)) {
        out.error = "fleet journal header record is missing or corrupt: " +
                    path;
        out.torn_bytes = bytes.size();
        return out;
      }
      saw_header = true;
      out.header_bytes = frame_end;
    } else if (payload.empty()) {
      decode_failed = true;
      break;
    } else if (static_cast<std::uint8_t>(payload[0]) == kKindShardRound) {
      ShardRoundRecord rec;
      if (!DecodeShardRoundPayload(payload, &rec)) {
        decode_failed = true;
        break;
      }
      const std::uint64_t key =
          rec.round * out.header.num_shards + rec.shard;
      if (!seen_shard.insert(key).second) {
        ++out.duplicates;
      } else {
        out.shard_records.push_back(rec);
      }
    } else if (static_cast<std::uint8_t>(payload[0]) == kKindFleetRound) {
      FleetRoundRecord rec;
      if (!DecodeFleetRoundPayload(payload, &rec)) {
        decode_failed = true;
        break;
      }
      if (!seen_fleet.insert(rec.round).second) {
        ++out.duplicates;
      } else {
        out.fleet_records.push_back(rec);
      }
    } else if (static_cast<std::uint8_t>(payload[0]) == kKindSnapshot) {
      std::uint64_t round = 0;
      std::string blob;
      if (!DecodeSnapshotPayload(payload, &round, &blob)) {
        decode_failed = true;
        break;
      }
      out.has_checkpoint = true;
      out.checkpoint_round = round;
      out.checkpoint_blob = std::move(blob);
      out.checkpoint_bytes = frame_end;
      cp_shard_count = out.shard_records.size();
      cp_fleet_count = out.fleet_records.size();
    } else {
      // Unknown record kind under a valid checksum: medium corruption.
      decode_failed = true;
      break;
    }
    pos = frame_end;
  }

  if (!saw_header) {
    out.error = "fleet journal has no valid header record: " + path;
    out.torn_bytes = bytes.size();
    return out;
  }
  out.valid_bytes = pos;
  out.torn_bytes = bytes.size() - pos;
  // Classify why the valid prefix ended: an incomplete final frame is a torn
  // append (expected after a crash); a complete-looking frame with a bad
  // magic/checksum/payload is bit-rot. Either way replay truncates to the
  // last good checksum frame instead of aborting.
  if (out.torn_bytes > 0) {
    const std::size_t tail = bytes.size() - pos;
    if (decode_failed) {
      out.tail_rot = true;
    } else if (tail < kFrameHeader) {
      out.tail_torn = true;
    } else {
      Cursor frame(bytes.data() + pos, kFrameHeader);
      const std::uint32_t magic = frame.U32();
      const std::uint32_t len = frame.U32();
      if (magic != kFleetJournalMagic) {
        out.tail_rot = true;
      } else if (len > tail - kFrameHeader) {
        out.tail_torn = true;
      } else {
        out.tail_rot = true;  // checksum mismatch
      }
    }
    if (obs::MetricsScope* s = obs::CurrentScope()) {
      if (out.tail_torn) s->recover.fleet_torn_tail.Add(1);
      if (out.tail_rot) s->recover.fleet_rot_truncated.Add(1);
    }
  }
  // Keep only records covered by the checkpoint: resume truncates to the
  // checkpoint and re-executes everything after it.
  if (!out.has_checkpoint) {
    out.discarded_records = out.shard_records.size() +
                            out.fleet_records.size();
    out.shard_records.clear();
    out.fleet_records.clear();
  } else {
    out.discarded_records = (out.shard_records.size() - cp_shard_count) +
                            (out.fleet_records.size() - cp_fleet_count);
    out.shard_records.resize(cp_shard_count);
    out.fleet_records.resize(cp_fleet_count);
  }
  out.ok = true;
  return out;
}

// ---------------------------------------------------------------------------
// FleetJournalWriter

FleetJournalWriter::FleetJournalWriter(const std::string& path,
                                       const FleetJournalHeader& header,
                                       Options options)
    : path_(path),
      options_(std::move(options)),
      vfs_(&io::OrDefault(options_.vfs)) {
  io::IoStatus st;
  fd_ = vfs_->OpenWrite(path_, io::Vfs::OpenMode::kTruncate, &st);
  if (fd_ < 0) {
    Degrade(st, "cannot open fleet journal");
    return;
  }
  ok_ = true;
  WriteFrame(EncodeFleetHeaderPayload(header));  // degrades on failure
}

FleetJournalWriter::FleetJournalWriter(const std::string& path,
                                       const FleetJournalReadResult& existing,
                                       Options options)
    : path_(path),
      options_(std::move(options)),
      vfs_(&io::OrDefault(options_.vfs)) {
  if (!existing.ok) return;  // caller decides; typically restart fresh
  const std::uint64_t keep = existing.has_checkpoint
                                 ? existing.checkpoint_bytes
                                 : existing.header_bytes;
  io::IoStatus st = vfs_->Truncate(path_, keep);
  if (!st.ok()) {
    Degrade(st, "cannot truncate fleet journal to checkpoint");
    return;
  }
  fd_ = vfs_->OpenWrite(path_, io::Vfs::OpenMode::kAppend, &st);
  if (fd_ < 0) {
    Degrade(st, "cannot reopen fleet journal");
    return;
  }
  ok_ = true;
}

FleetJournalWriter::~FleetJournalWriter() { Close(); }

void FleetJournalWriter::WriteFrame(const std::string& payload) {
  if (!ok_ || fd_ < 0) return;
  io::IoStatus st = io::WriteAll(*vfs_, fd_, FrameFleetPayload(payload));
  if (st.ok() && options_.sync_every_append) {
    st = io::FsyncRetry(*vfs_, fd_);
  }
  if (!st.ok()) {
    Degrade(st, "fleet journal append failed");
    return;
  }
  ++appends_;
  if (options_.after_append) options_.after_append(appends_);
}

void FleetJournalWriter::AppendShardRound(const ShardRoundRecord& record) {
  WriteFrame(EncodeShardRoundPayload(record));
}

void FleetJournalWriter::AppendFleetRound(const FleetRoundRecord& record) {
  WriteFrame(EncodeFleetRoundPayload(record));
}

void FleetJournalWriter::AppendSnapshot(std::uint64_t round,
                                        const std::string& blob) {
  WriteFrame(EncodeSnapshotPayload(round, blob));
}

void FleetJournalWriter::Close() {
  if (fd_ < 0) return;
  io::IoStatus st = io::FsyncRetry(*vfs_, fd_);
  const io::IoStatus close_st = vfs_->Close(fd_);
  if (st.ok()) st = close_st;
  fd_ = -1;
  if (!st.ok()) Degrade(st, "fleet journal close failed");
}

void FleetJournalWriter::Degrade(const io::IoStatus& status, const char* what) {
  if (fd_ >= 0) {
    vfs_->Close(fd_);
    fd_ = -1;
  }
  ok_ = false;
  if (degraded_) return;
  degraded_ = true;
  std::fprintf(stderr,
               "wolt: fleet journal %s: %s (%s) — journaling disabled, the "
               "run continues best-effort (no crash resume past this point)\n",
               path_.c_str(), what, status.Message().c_str());
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->recover.fleet_io_error.Add(1);
    s->recover.fleet_degraded.Add(1);
  }
}

}  // namespace wolt::recover
