#include "fleet/supervisor.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "util/codec.h"

namespace wolt::fleet {

const char* ToString(ShardState s) {
  switch (s) {
    case ShardState::kHealthy:
      return "healthy";
    case ShardState::kBackoff:
      return "backoff";
    case ShardState::kDegraded:
      return "degraded";
    case ShardState::kProbation:
      return "probation";
  }
  return "?";
}

const char* ToString(FailureKind k) {
  switch (k) {
    case FailureKind::kDecodeStorm:
      return "decode-storm";
    case FailureKind::kException:
      return "exception";
    case FailureKind::kInvariant:
      return "invariant";
    case FailureKind::kReoptOverrun:
      return "reopt-overrun";
  }
  return "?";
}

Supervisor::Supervisor(SupervisorParams params, std::size_t num_shards)
    : params_(params), cells_(num_shards) {
  for (Cell& cell : cells_) cell.backoff = params_.backoff_initial;
}

SupervisorAction Supervisor::BeginRound(std::size_t shard,
                                        std::uint64_t round) {
  Cell& cell = cells_[shard];
  switch (cell.state) {
    case ShardState::kBackoff:
      if (round >= cell.restart_at) {
        cell.restart_rounds.push_back(round);
        ++cell.restarts;
        cell.state = ShardState::kHealthy;
        if (obs::MetricsScope* s = obs::CurrentScope()) {
          s->fleet.restarts.Add(1);
        }
        return SupervisorAction::kRestart;
      }
      return SupervisorAction::kNone;
    case ShardState::kDegraded:
      if (round - cell.degraded_since >= params_.probe_after) {
        cell.state = ShardState::kProbation;
        ++cell.probes;
        if (obs::MetricsScope* s = obs::CurrentScope()) {
          s->fleet.probes.Add(1);
        }
        return SupervisorAction::kProbe;
      }
      return SupervisorAction::kNone;
    case ShardState::kHealthy:
    case ShardState::kProbation:
      return SupervisorAction::kNone;
  }
  return SupervisorAction::kNone;
}

void Supervisor::Park(Cell& cell, std::uint64_t round) {
  cell.state = ShardState::kDegraded;
  cell.degraded_since = round;
  cell.consecutive_storms = 0;
  cell.consecutive_overruns = 0;
  ++cell.breaks;
  if (obs::MetricsScope* s = obs::CurrentScope()) {
    s->fleet.circuit_breaks.Add(1);
  }
}

SupervisorAction Supervisor::ObserveFailures(
    std::size_t shard, std::uint64_t round,
    const std::vector<FailureEvent>& failures) {
  Cell& cell = cells_[shard];
  if (cell.state == ShardState::kBackoff ||
      cell.state == ShardState::kDegraded) {
    return SupervisorAction::kNone;  // shard did not run this round
  }

  bool fatal = false;
  bool storm = false;
  bool overrun = false;
  for (const FailureEvent& f : failures) {
    if (f.category == core::ErrorCategory::kProgrammingError) fatal = true;
    if (f.kind == FailureKind::kDecodeStorm) storm = true;
    if (f.kind == FailureKind::kReoptOverrun) overrun = true;
  }

  if (cell.state == ShardState::kProbation) {
    // Half-open: one strike re-parks, a clean round fully recovers.
    if (!failures.empty()) {
      Park(cell, round);
      return SupervisorAction::kCircuitBreak;
    }
    cell.state = ShardState::kHealthy;
    cell.consecutive_storms = 0;
    cell.consecutive_overruns = 0;
    cell.backoff = params_.backoff_initial;
    cell.restart_rounds.clear();
    return SupervisorAction::kRecover;
  }

  // Healthy. Sustained-pressure counters only advance while healthy; any
  // clean round resets them.
  cell.consecutive_storms = storm ? cell.consecutive_storms + 1 : 0;
  cell.consecutive_overruns = overrun ? cell.consecutive_overruns + 1 : 0;

  const bool want_restart =
      fatal || cell.consecutive_storms > params_.storm_tolerance ||
      cell.consecutive_overruns > params_.overrun_tolerance;
  if (!want_restart) return SupervisorAction::kNone;

  cell.consecutive_storms = 0;
  cell.consecutive_overruns = 0;

  // Crash-loop breaker: count executed restarts inside the sliding window;
  // if ordering one more would cross the threshold, park instead.
  const std::uint64_t window_start =
      round >= params_.crash_loop_window ? round - params_.crash_loop_window
                                         : 0;
  cell.restart_rounds.erase(
      std::remove_if(cell.restart_rounds.begin(), cell.restart_rounds.end(),
                     [&](std::uint64_t r) { return r < window_start; }),
      cell.restart_rounds.end());
  if (static_cast<int>(cell.restart_rounds.size()) + 1 >=
      params_.crash_loop_threshold) {
    Park(cell, round);
    return SupervisorAction::kCircuitBreak;
  }

  cell.state = ShardState::kBackoff;
  cell.restart_at = round + cell.backoff;
  const double next = static_cast<double>(cell.backoff) *
                      std::max(1.0, params_.backoff_multiplier);
  cell.backoff = std::min<std::uint64_t>(
      params_.backoff_max,
      static_cast<std::uint64_t>(std::llround(next)));
  return SupervisorAction::kNone;
}

std::uint64_t Supervisor::TotalRestarts() const {
  std::uint64_t n = 0;
  for (const Cell& c : cells_) n += c.restarts;
  return n;
}

std::uint64_t Supervisor::TotalCircuitBreaks() const {
  std::uint64_t n = 0;
  for (const Cell& c : cells_) n += c.breaks;
  return n;
}

std::uint64_t Supervisor::TotalProbes() const {
  std::uint64_t n = 0;
  for (const Cell& c : cells_) n += c.probes;
  return n;
}

void Supervisor::SaveState(std::string* out) const {
  util::PutU64(out, cells_.size());
  for (const Cell& c : cells_) {
    util::PutU8(out, static_cast<std::uint8_t>(c.state));
    util::PutI32(out, c.consecutive_storms);
    util::PutI32(out, c.consecutive_overruns);
    util::PutU64(out, c.backoff);
    util::PutU64(out, c.restart_at);
    util::PutU64(out, c.degraded_since);
    util::PutU64Vec(out, c.restart_rounds);
    util::PutU64(out, c.restarts);
    util::PutU64(out, c.breaks);
    util::PutU64(out, c.probes);
  }
}

bool Supervisor::RestoreState(util::ByteCursor* cur) {
  const std::uint64_t n = cur->U64();
  if (!cur->ok() || n != cells_.size()) return false;
  std::vector<Cell> cells(cells_.size());
  for (Cell& c : cells) {
    const std::uint8_t state = cur->U8();
    c.consecutive_storms = cur->I32();
    c.consecutive_overruns = cur->I32();
    c.backoff = cur->U64();
    c.restart_at = cur->U64();
    c.degraded_since = cur->U64();
    if (!cur->U64Vec(&c.restart_rounds)) return false;
    c.restarts = cur->U64();
    c.breaks = cur->U64();
    c.probes = cur->U64();
    if (!cur->ok() || state > static_cast<std::uint8_t>(ShardState::kProbation))
      return false;
    c.state = static_cast<ShardState>(state);
  }
  cells_ = std::move(cells);
  return true;
}

}  // namespace wolt::fleet
