#include "fleet/runtime.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/obs.h"
#include "util/codec.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace wolt::fleet {
namespace {

std::uint64_t HashU64(std::uint64_t h, std::uint64_t v) {
  return util::HashCombine64(h, v);
}

std::uint64_t HashDouble(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return util::HashCombine64(h, bits);
}

// Virtual cost of one reoptimization at each ladder rung: the shared
// core::TierCost currency (also used by the workload frontier sweeps).
using core::TierCost;

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<std::size_t>(n, sizeof buf - 1));
}

}  // namespace

std::uint64_t Fingerprint(const FleetParams& p, std::uint64_t seed) {
  std::uint64_t h = 0x574F4C54464C4554ULL;  // "WOLTFLET"
  h = HashU64(h, 1);  // fingerprint format version
  h = HashU64(h, p.num_shards);
  h = HashU64(h, p.rounds);
  h = HashU64(h, p.queue_capacity);
  h = HashU64(h, p.batch_per_shard);

  const ShardParams& s = p.shard;
  h = HashU64(h, s.num_extenders);
  h = HashU64(h, s.num_users);
  h = HashDouble(h, s.floor_m);
  h = HashDouble(h, s.retry.initial_backoff);
  h = HashDouble(h, s.retry.multiplier);
  h = HashDouble(h, s.retry.max_backoff);
  h = HashU64(h, static_cast<std::uint64_t>(s.retry.max_attempts));
  h = HashU64(h, static_cast<std::uint64_t>(s.quarantine.flap_threshold));
  h = HashDouble(h, s.quarantine.window);
  h = HashDouble(h, s.quarantine.hold);
  h = HashDouble(h, s.round_dt);
  h = HashDouble(h, s.stale_age);
  h = HashU64(h, s.rejoin_after);
  h = HashU64(h, s.decode_storm_threshold);
  for (int c = 0; c < fault::kNumMessageClasses; ++c) {
    const fault::WireFaults& w = s.wire.per_class[c];
    h = HashDouble(h, w.loss);
    h = HashDouble(h, w.duplicate);
    h = HashDouble(h, w.corrupt);
    h = HashDouble(h, w.delay_prob);
    h = HashDouble(h, w.delay_mean);
    h = HashDouble(h, w.base_latency);
  }
  h = HashDouble(h, s.plc_crash_prob);
  h = HashU64(h, s.plc_down_rounds);
  h = HashDouble(h, s.departure_prob);

  const SupervisorParams& sup = p.supervisor;
  h = HashU64(h, static_cast<std::uint64_t>(sup.storm_tolerance));
  h = HashU64(h, static_cast<std::uint64_t>(sup.overrun_tolerance));
  h = HashU64(h, sup.backoff_initial);
  h = HashDouble(h, sup.backoff_multiplier);
  h = HashU64(h, sup.backoff_max);
  h = HashU64(h, static_cast<std::uint64_t>(sup.crash_loop_threshold));
  h = HashU64(h, sup.crash_loop_window);
  h = HashU64(h, sup.probe_after);

  h = HashU64(h, p.chaos_from);
  h = HashU64(h, p.chaos_to);
  h = HashU64(h, p.poison_shards.size());
  for (std::uint32_t ps : p.poison_shards) h = HashU64(h, ps);
  h = HashU64(h, p.poison_from);
  h = HashU64(h, p.poison_to);
  h = HashU64(h, p.reopt_units_per_round);
  h = HashU64(h, p.snapshot_every);
  h = HashU64(h, seed);
  return h;
}

// ---------------------------------------------------------------------------
// FleetResult

std::string FleetResult::Report() const {
  std::string out;
  out += "WOLT fleet report\n";
  AppendF(&out, "rows shard=%zu fleet=%zu\n", shard_records.size(),
          fleet_records.size());
  AppendF(&out,
          "queue enqueued=%llu delivered=%llu shed=%llu discarded=%llu "
          "peak=%llu\n",
          static_cast<unsigned long long>(queue.enqueued),
          static_cast<unsigned long long>(queue.delivered),
          static_cast<unsigned long long>(queue.shed),
          static_cast<unsigned long long>(queue.discarded),
          static_cast<unsigned long long>(queue.peak_depth));
  AppendF(&out, "shed_by_class scan=%llu directive=%llu capacity=%llu "
                "ack=%llu departure=%llu\n",
          static_cast<unsigned long long>(
              queue.shed_by_class[static_cast<int>(
                  fault::MessageClass::kScan)]),
          static_cast<unsigned long long>(
              queue.shed_by_class[static_cast<int>(
                  fault::MessageClass::kDirective)]),
          static_cast<unsigned long long>(
              queue.shed_by_class[static_cast<int>(
                  fault::MessageClass::kCapacity)]),
          static_cast<unsigned long long>(
              queue.shed_by_class[static_cast<int>(
                  fault::MessageClass::kAck)]),
          static_cast<unsigned long long>(
              queue.shed_by_class[static_cast<int>(
                  fault::MessageClass::kDeparture)]));
  AppendF(&out, "supervisor restarts=%llu circuit_breaks=%llu probes=%llu\n",
          static_cast<unsigned long long>(restarts),
          static_cast<unsigned long long>(circuit_breaks),
          static_cast<unsigned long long>(probes));
  AppendF(&out, "invariants isolation=%s accounting=%s degraded_hold=%s\n",
          isolation_ok ? "OK" : "VIOLATED",
          accounting_ok ? "OK" : "VIOLATED",
          degraded_held_ok ? "OK" : "VIOLATED");
  for (const recover::FleetRoundRecord& r : fleet_records) {
    AppendF(&out,
            "round %llu enq=%llu del=%llu shed=%llu disc=%llu backlog=%llu "
            "reopt=%llu units=%llu\n",
            static_cast<unsigned long long>(r.round),
            static_cast<unsigned long long>(r.enqueued),
            static_cast<unsigned long long>(r.delivered),
            static_cast<unsigned long long>(r.shed),
            static_cast<unsigned long long>(r.discarded),
            static_cast<unsigned long long>(r.backlog),
            static_cast<unsigned long long>(r.reopt_scheduled),
            static_cast<unsigned long long>(r.reopt_units));
  }
  for (const recover::ShardRoundRecord& r : shard_records) {
    AppendF(&out,
            "r=%llu s=%lu state=%s tier=%s truth=%.17g proc=%llu rej=%llu "
            "wf=%llu sc=%llu dir=%llu out=%llu fail=%llu drop=%llu "
            "flags=%c%c%c%c%c\n",
            static_cast<unsigned long long>(r.round),
            static_cast<unsigned long>(r.shard),
            ToString(static_cast<ShardState>(r.state)),
            r.tier < 0 ? "-"
                       : core::ToString(static_cast<core::ReoptTier>(r.tier)),
            r.truth_aggregate,
            static_cast<unsigned long long>(r.processed),
            static_cast<unsigned long long>(r.decode_rejects),
            static_cast<unsigned long long>(r.wire_faults),
            static_cast<unsigned long long>(r.state_conflicts),
            static_cast<unsigned long long>(r.directives),
            static_cast<unsigned long long>(r.outbound),
            static_cast<unsigned long long>(r.failures),
            static_cast<unsigned long long>(r.dropped),
            r.restarted ? 'R' : '-', r.broke ? 'B' : '-',
            r.probed ? 'P' : '-', r.held_violation ? 'H' : '-',
            r.isolation_violation ? 'I' : '-');
  }
  return out;
}

// ---------------------------------------------------------------------------
// FleetRuntime

struct FleetRuntime::PerShardScratch {
  std::vector<FleetMessage> batch;
  RoundOutcome out;
  ReoptOutcome reopt;
  bool live = false;
  bool scheduled = false;
  core::ReoptTier tier = core::ReoptTier::kFull;
  bool restarted = false;
  bool probed = false;
  bool broke = false;
  bool held_violation = false;
  std::size_t dropped = 0;
};

FleetRuntime::FleetRuntime(FleetParams params, std::uint64_t seed)
    : params_(std::move(params)),
      seed_(seed),
      fingerprint_(Fingerprint(params_, seed)) {
  shards_.reserve(params_.num_shards);
  for (std::size_t s = 0; s < params_.num_shards; ++s) {
    shards_.push_back(std::make_unique<ShardRuntime>(
        static_cast<std::uint32_t>(s), seed_,
        ShardParamsFor(static_cast<std::uint32_t>(s))));
  }
  supervisor_ =
      std::make_unique<Supervisor>(params_.supervisor, params_.num_shards);
  queue_ = std::make_unique<BoundedFleetQueue>(params_.queue_capacity,
                                               params_.num_shards);
  held_extenders_.resize(params_.num_shards);
  last_reopt_round_.assign(params_.num_shards, 0);
}

FleetRuntime::~FleetRuntime() = default;

ShardParams FleetRuntime::ShardParamsFor(std::uint32_t shard) const {
  ShardParams sp = params_.shard;
  if (std::find(params_.poison_shards.begin(), params_.poison_shards.end(),
                shard) != params_.poison_shards.end()) {
    sp.poison_from = params_.poison_from;
    sp.poison_to = params_.poison_to;
  }
  return sp;
}

FleetResult FleetRuntime::Run() {
  FleetResult result;
  if (params_.reopt_wall_budget_seconds > 0.0 &&
      !params_.journal_path.empty()) {
    result.error =
        "wall-clock reopt budgets are non-deterministic and cannot be "
        "journaled";
    return result;
  }

  std::uint64_t start_round = 0;
  std::unique_ptr<recover::FleetJournalWriter> journal;
  if (!params_.journal_path.empty()) {
    recover::FleetJournalWriter::Options jopts;
    jopts.after_append = params_.after_journal_append;
    jopts.vfs = params_.vfs;
    jopts.sync_every_append = params_.journal_sync_every_append;
    bool resumed = false;
    if (params_.resume) {
      recover::FleetJournalReadResult existing =
          recover::ReadFleetJournal(params_.journal_path, params_.vfs);
      if (existing.ok && (existing.header.fingerprint != fingerprint_ ||
                          existing.header.num_shards != params_.num_shards ||
                          existing.header.rounds != params_.rounds)) {
        // A *valid* journal from another configuration is caller error —
        // resuming over it would destroy good data.
        result.error =
            "fleet journal was written under a different configuration "
            "(fingerprint mismatch): " +
            params_.journal_path;
        return result;
      }
      if (existing.ok) {
        if (existing.has_checkpoint) {
          util::ByteCursor cur(existing.checkpoint_blob);
          if (!RestoreState(&cur) || !cur.AtEnd()) {
            result.error =
                "fleet journal snapshot is corrupt: " + params_.journal_path;
            return result;
          }
          start_round = existing.checkpoint_round + 1;
          result.resumed_rounds = start_round;
          result.shard_records = std::move(existing.shard_records);
          result.fleet_records = std::move(existing.fleet_records);
        }
        journal = std::make_unique<recover::FleetJournalWriter>(
            params_.journal_path, existing, jopts);
        resumed = true;
      } else {
        // Unreadable/headerless journal (e.g. the crash landed before the
        // header was durable): nothing to restore, restart fresh. The run
        // must not die because its checkpoint did.
        std::fprintf(stderr,
                     "wolt: fleet journal %s unreadable (%s); restarting "
                     "the run fresh\n",
                     params_.journal_path.c_str(), existing.error.c_str());
      }
    }
    if (!resumed) {
      recover::FleetJournalHeader header;
      header.fingerprint = fingerprint_;
      header.num_shards = params_.num_shards;
      header.rounds = params_.rounds;
      journal = std::make_unique<recover::FleetJournalWriter>(
          params_.journal_path, header, jopts);
    }
    // A journal that failed to open has already degraded itself (one loud
    // warning + counters); the run continues unjournaled.
  }

  {
    util::ThreadPool pool(params_.threads);
    for (std::uint64_t round = start_round; round < params_.rounds; ++round) {
      if (params_.cancel != nullptr &&
          params_.cancel->load(std::memory_order_relaxed)) {
        result.cancelled = true;
        break;  // round boundary: the journal is snapshot-aligned
      }
      RunRound(round, pool, journal.get(), &result);
    }
  }
  if (journal) {
    journal->Close();
    result.journal_degraded = journal->degraded();
  }

  result.queue = queue_->stats();
  result.restarts = supervisor_->TotalRestarts();
  result.circuit_breaks = supervisor_->TotalCircuitBreaks();
  result.probes = supervisor_->TotalProbes();
  // Fold the invariants from the records so a resumed run judges the
  // pre-crash rounds too (their records came from the journal).
  for (const recover::ShardRoundRecord& r : result.shard_records) {
    if (r.isolation_violation) result.isolation_ok = false;
    if (r.held_violation) result.degraded_held_ok = false;
  }
  const QueueStats& q = result.queue;
  result.accounting_ok =
      q.enqueued == q.delivered + q.shed + q.discarded + queue_->Depth();
  result.completed = true;
  return result;
}

void FleetRuntime::RunRound(std::uint64_t round, util::ThreadPool& pool,
                            recover::FleetJournalWriter* journal,
                            FleetResult* result) {
  const std::size_t n = params_.num_shards;
  const bool chaos = round >= params_.chaos_from && round < params_.chaos_to;
  const bool wall_mode = params_.reopt_wall_budget_seconds > 0.0;
  std::vector<PerShardScratch> scratch(n);

  // (a) Supervisor round-driven transitions: due restarts and probes.
  for (std::size_t s = 0; s < n; ++s) {
    switch (supervisor_->BeginRound(s, round)) {
      case SupervisorAction::kRestart:
        shards_[s]->Restart(round);
        scratch[s].restarted = true;
        break;
      case SupervisorAction::kProbe:
        scratch[s].probed = true;
        break;
      default:
        break;
    }
  }

  // (b) Traffic generation into the bounded queue, shard order. The
  // buildings keep living (and scanning) regardless of controller health.
  {
    std::vector<FleetMessage> msgs;
    for (std::size_t s = 0; s < n; ++s) {
      msgs.clear();
      shards_[s]->GenerateTraffic(round, chaos, &msgs);
      for (FleetMessage& m : msgs) queue_->Push(std::move(m));
    }
  }

  // (c) Drain live shards; discard the lanes of parked ones.
  for (std::size_t s = 0; s < n; ++s) {
    const ShardState st = supervisor_->state(s);
    scratch[s].live =
        st == ShardState::kHealthy || st == ShardState::kProbation;
    if (scratch[s].live) {
      scratch[s].batch = queue_->Drain(static_cast<std::uint32_t>(s),
                                       params_.batch_per_shard);
    } else {
      scratch[s].dropped = queue_->Discard(static_cast<std::uint32_t>(s));
    }
  }

  // (d) Virtual-budget reopt scheduling: staleness-priority walk spending
  // units down the degradation ladder. Wall mode schedules every live shard
  // (the shard spends the wall budget itself).
  std::uint64_t reopt_scheduled = 0;
  std::uint64_t reopt_units = 0;
  {
    std::vector<std::size_t> candidates;
    for (std::size_t s = 0; s < n; ++s) {
      if (scratch[s].live) candidates.push_back(s);
    }
    if (wall_mode || params_.reopt_units_per_round == 0) {
      for (std::size_t s : candidates) {
        scratch[s].scheduled = true;
        scratch[s].tier = core::ReoptTier::kFull;
        last_reopt_round_[s] = round;
        ++reopt_scheduled;
        reopt_units += TierCost(core::ReoptTier::kFull);
      }
    } else {
      std::sort(candidates.begin(), candidates.end(),
                [&](std::size_t a, std::size_t b) {
                  const std::uint64_t stale_a = round - last_reopt_round_[a];
                  const std::uint64_t stale_b = round - last_reopt_round_[b];
                  if (stale_a != stale_b) return stale_a > stale_b;
                  const std::size_t back_a =
                      queue_->DepthOf(static_cast<std::uint32_t>(a));
                  const std::size_t back_b =
                      queue_->DepthOf(static_cast<std::uint32_t>(b));
                  if (back_a != back_b) return back_a > back_b;
                  return a < b;
                });
      std::size_t units = params_.reopt_units_per_round;
      for (std::size_t s : candidates) {
        core::ReoptTier tier;
        if (units >= 4) {
          tier = core::ReoptTier::kFull;
        } else if (units >= 3) {
          tier = core::ReoptTier::kHungarianOnly;
        } else if (units >= 2) {
          tier = core::ReoptTier::kGreedy;
        } else if (units >= 1) {
          tier = core::ReoptTier::kHoldLastGood;
        } else {
          break;  // budget exhausted: remaining shards wait, growing staler
        }
        units -= TierCost(tier);
        scratch[s].scheduled = true;
        scratch[s].tier = tier;
        last_reopt_round_[s] = round;
        ++reopt_scheduled;
        reopt_units += TierCost(tier);
      }
    }
  }
  if (obs::MetricsScope* ms = obs::CurrentScope()) {
    ms->fleet.reopt_scheduled.Add(reopt_scheduled);
  }

  // (e) The parallel phase: batch processing plus the scheduled
  // reoptimization, strictly per-shard state, index-addressed results.
  {
    obs::MetricsRegistry* reg = obs::CurrentRegistry();
    pool.ParallelFor(n, 0, [&](std::size_t s) {
      if (!scratch[s].live) return;
      std::optional<obs::ScopedMetrics> sm;
      if (reg != nullptr) sm.emplace(*reg);
      scratch[s].out = shards_[s]->ProcessBatch(round, chaos, scratch[s].batch);
      if (scratch[s].scheduled) {
        scratch[s].reopt =
            wall_mode ? shards_[s]->ReoptimizeBudget(
                            round, params_.reopt_wall_budget_seconds)
                      : shards_[s]->Reoptimize(round, chaos, scratch[s].tier);
      }
    });
  }

  // (f) Supervision: feed the failure evidence in shard order.
  for (std::size_t s = 0; s < n; ++s) {
    if (!scratch[s].live) continue;
    std::vector<FailureEvent> failures = scratch[s].out.failures;
    failures.insert(failures.end(), scratch[s].reopt.failures.begin(),
                    scratch[s].reopt.failures.end());
    if (obs::MetricsScope* ms = obs::CurrentScope()) {
      for (const FailureEvent& f : failures) {
        if (f.kind == FailureKind::kReoptOverrun) {
          ms->fleet.reopt_overruns.Add(1);
        }
      }
    }
    switch (supervisor_->ObserveFailures(s, round, failures)) {
      case SupervisorAction::kCircuitBreak:
        scratch[s].broke = true;
        held_extenders_[s] = shards_[s]->ClientExtenders();
        break;
      case SupervisorAction::kRecover:
        held_extenders_[s].clear();
        break;
      default:
        break;
    }
  }

  // (g) Degraded-hold invariant: a parked shard's clients may only keep the
  // captured directive or drop to unassociated (departure/rejoin churn) —
  // never move to a different extender, because nothing can direct them.
  for (std::size_t s = 0; s < n; ++s) {
    if (supervisor_->state(s) != ShardState::kDegraded) continue;
    if (held_extenders_[s].empty()) continue;
    const std::vector<int> current = shards_[s]->ClientExtenders();
    for (std::size_t i = 0;
         i < current.size() && i < held_extenders_[s].size(); ++i) {
      if (current[i] != held_extenders_[s][i] && current[i] != -1) {
        scratch[s].held_violation = true;
        break;
      }
    }
  }

  // (h) Re-enqueue client acks for next round, shard order.
  for (std::size_t s = 0; s < n; ++s) {
    for (FleetMessage& m : scratch[s].out.outbound) {
      queue_->Push(std::move(m));
    }
    for (FleetMessage& m : scratch[s].reopt.outbound) {
      queue_->Push(std::move(m));
    }
  }

  // (i) Records: one row per shard plus the fleet-wide aggregates.
  for (std::size_t s = 0; s < n; ++s) {
    const PerShardScratch& sc = scratch[s];
    recover::ShardRoundRecord rec;
    rec.round = round;
    rec.shard = static_cast<std::uint32_t>(s);
    rec.state = static_cast<std::uint8_t>(supervisor_->state(s));
    rec.tier = sc.scheduled && sc.reopt.ran
                   ? static_cast<std::int8_t>(sc.reopt.tier)
                   : std::int8_t{-1};
    rec.truth_aggregate = shards_[s]->TruthAggregate();
    rec.processed = sc.out.processed;
    rec.decode_rejects = sc.out.decode_rejects;
    rec.wire_faults = sc.out.wire_faults;
    rec.state_conflicts = sc.out.state_conflicts;
    rec.directives = sc.out.directives + sc.reopt.directives;
    rec.outbound = sc.out.outbound.size() + sc.reopt.outbound.size();
    rec.failures = sc.out.failures.size() + sc.reopt.failures.size();
    rec.dropped = sc.dropped;
    rec.restarted = sc.restarted ? 1 : 0;
    rec.broke = sc.broke ? 1 : 0;
    rec.probed = sc.probed ? 1 : 0;
    rec.held_violation = sc.held_violation ? 1 : 0;
    bool isolation = false;
    for (const FailureEvent& f : sc.out.failures) {
      if (f.kind == FailureKind::kInvariant) isolation = true;
    }
    rec.isolation_violation = isolation ? 1 : 0;
    if (journal != nullptr) journal->AppendShardRound(rec);
    result->shard_records.push_back(rec);
  }
  {
    const QueueStats& q = queue_->stats();
    recover::FleetRoundRecord rec;
    rec.round = round;
    rec.enqueued = q.enqueued - prev_stats_.enqueued;
    rec.delivered = q.delivered - prev_stats_.delivered;
    rec.shed = q.shed - prev_stats_.shed;
    rec.discarded = q.discarded - prev_stats_.discarded;
    rec.backlog = queue_->Depth();
    rec.reopt_scheduled = reopt_scheduled;
    rec.reopt_units = reopt_units;
    if (obs::MetricsScope* ms = obs::CurrentScope()) {
      ms->fleet.enqueued.Add(rec.enqueued);
      ms->fleet.delivered.Add(rec.delivered);
      ms->fleet.shed_total.Add(rec.shed);
      ms->fleet.dropped_unavailable.Add(rec.discarded);
      ms->fleet.shed_scan.Add(
          q.shed_by_class[static_cast<int>(fault::MessageClass::kScan)] -
          prev_stats_
              .shed_by_class[static_cast<int>(fault::MessageClass::kScan)]);
      ms->fleet.shed_directive.Add(
          q.shed_by_class[static_cast<int>(fault::MessageClass::kDirective)] -
          prev_stats_.shed_by_class[static_cast<int>(
              fault::MessageClass::kDirective)]);
      ms->fleet.shed_capacity.Add(
          q.shed_by_class[static_cast<int>(fault::MessageClass::kCapacity)] -
          prev_stats_.shed_by_class[static_cast<int>(
              fault::MessageClass::kCapacity)]);
      ms->fleet.shed_ack.Add(
          q.shed_by_class[static_cast<int>(fault::MessageClass::kAck)] -
          prev_stats_
              .shed_by_class[static_cast<int>(fault::MessageClass::kAck)]);
      ms->fleet.shed_departure.Add(
          q.shed_by_class[static_cast<int>(fault::MessageClass::kDeparture)] -
          prev_stats_.shed_by_class[static_cast<int>(
              fault::MessageClass::kDeparture)]);
    }
    prev_stats_ = q;
    if (journal != nullptr) journal->AppendFleetRound(rec);
    result->fleet_records.push_back(rec);
  }

  // (j) Snapshot the whole fleet every snapshot_every rounds and after the
  // final round — the resume points.
  if (journal != nullptr) {
    const bool last = round + 1 == params_.rounds;
    const bool due = params_.snapshot_every != 0 &&
                     (round + 1) % params_.snapshot_every == 0;
    if (last || due) {
      std::string blob;
      SaveState(&blob);
      journal->AppendSnapshot(round, blob);
    }
  }
}

void FleetRuntime::SaveState(std::string* out) const {
  std::string queue_blob;
  queue_->SaveState(&queue_blob);
  util::PutString(out, queue_blob);
  std::string sup_blob;
  supervisor_->SaveState(&sup_blob);
  util::PutString(out, sup_blob);
  util::PutU64(out, shards_.size());
  for (const std::unique_ptr<ShardRuntime>& shard : shards_) {
    std::string blob;
    shard->SaveState(&blob);
    util::PutString(out, blob);
  }
  util::PutU64(out, held_extenders_.size());
  for (const std::vector<int>& held : held_extenders_) {
    util::PutI32Vec(out, held);
  }
  util::PutU64Vec(out, last_reopt_round_);
}

bool FleetRuntime::RestoreState(util::ByteCursor* cur) {
  const std::string queue_blob = cur->String();
  const std::string sup_blob = cur->String();
  if (!cur->ok()) return false;
  util::ByteCursor queue_cur(queue_blob);
  if (!queue_->RestoreState(&queue_cur) || !queue_cur.AtEnd()) return false;
  util::ByteCursor sup_cur(sup_blob);
  if (!supervisor_->RestoreState(&sup_cur) || !sup_cur.AtEnd()) return false;
  const std::uint64_t num_shards = cur->U64();
  if (!cur->ok() || num_shards != shards_.size()) return false;
  for (std::unique_ptr<ShardRuntime>& shard : shards_) {
    const std::string blob = cur->String();
    if (!cur->ok()) return false;
    util::ByteCursor shard_cur(blob);
    if (!shard->RestoreState(&shard_cur) || !shard_cur.AtEnd()) return false;
  }
  const std::uint64_t num_held = cur->U64();
  if (!cur->ok() || num_held != held_extenders_.size()) return false;
  for (std::vector<int>& held : held_extenders_) {
    if (!cur->I32Vec(&held)) return false;
  }
  if (!cur->U64Vec(&last_reopt_round_)) return false;
  if (last_reopt_round_.size() != shards_.size()) return false;
  prev_stats_ = queue_->stats();
  return true;
}

}  // namespace wolt::fleet
