// Per-shard failure supervision: restart with capped exponential backoff,
// a crash-loop circuit breaker, and half-open probes of parked shards.
//
// The supervisor never touches a shard itself — it is a deterministic state
// machine over (round number, failure evidence) that tells the runtime what
// to do. Time is measured in fleet rounds, not wall clock, so every
// supervision decision replays identically across thread counts and across
// crash/resume.
//
// The restart-vs-circuit-break decision keys on core::ErrorCategory (the
// machine-readable half of HandleStatus): wire faults are only evidence of a
// bad *wire* and must be sustained (a decode storm, several rounds running)
// before they justify a restart, while a programming error — an exception
// escaping the shard boundary, a broken invariant — indicts the shard state
// itself and triggers the restart path immediately. Repeated restarts inside
// the crash-loop window trip the breaker: the shard is parked in Degraded
// (clients hold their last-good directives; its messages are discarded)
// instead of burning the fleet's budget on a hopeless restart loop. After
// `probe_after` parked rounds the shard gets one half-open probation round;
// a clean round recovers it, any failure re-parks it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.h"

namespace wolt::util {
class ByteCursor;
}  // namespace wolt::util

namespace wolt::fleet {

// Externally visible health of one shard.
enum class ShardState {
  kHealthy = 0,
  kBackoff,    // restart ordered, waiting out the backoff; controller down
  kDegraded,   // circuit broken: parked, holding last-good directives
  kProbation,  // half-open: one trial round after a degraded hold
};
const char* ToString(ShardState s);

// Why a shard failure event fired.
enum class FailureKind {
  kDecodeStorm = 0,  // undecodable-message count crossed the storm threshold
  kException,        // an exception crossed the shard's total boundary
  kInvariant,        // cross-shard/state invariant violated
  kReoptOverrun,     // reoptimization blew its wall-clock budget
};
const char* ToString(FailureKind k);

struct FailureEvent {
  FailureKind kind = FailureKind::kException;
  core::ErrorCategory category = core::ErrorCategory::kProgrammingError;
  std::string detail;
};

struct SupervisorParams {
  // Consecutive decode-storm rounds tolerated before a restart is ordered.
  int storm_tolerance = 1;
  // Consecutive reopt-overrun rounds tolerated before a restart is ordered.
  int overrun_tolerance = 2;
  // Restart backoff in rounds: first restart waits `backoff_initial`,
  // doubling (by `backoff_multiplier`) per subsequent restart, capped at
  // `backoff_max`. A recovery (clean probation round) resets it.
  std::uint64_t backoff_initial = 1;
  double backoff_multiplier = 2.0;
  std::uint64_t backoff_max = 8;
  // Circuit breaker: this many executed restarts within `crash_loop_window`
  // rounds parks the shard in Degraded.
  int crash_loop_threshold = 3;
  std::uint64_t crash_loop_window = 12;
  // Degraded rounds before a half-open probation round is granted.
  std::uint64_t probe_after = 6;
};

// What the runtime must do with a shard right now.
enum class SupervisorAction {
  kNone = 0,
  kRestart,       // BeginRound: backoff elapsed — restart the controller now
  kProbe,         // BeginRound: degraded hold elapsed — run one trial round
  kCircuitBreak,  // ObserveFailures: park the shard, capture held directives
  kRecover,       // ObserveFailures: probation round was clean — back in rotation
};

class Supervisor {
 public:
  Supervisor(SupervisorParams params, std::size_t num_shards);

  std::size_t num_shards() const { return cells_.size(); }
  ShardState state(std::size_t shard) const { return cells_[shard].state; }

  // Phase 1 of a round, before dispatch: executes round-driven transitions.
  // Returns kRestart (backoff elapsed; the runtime must restart the shard's
  // controller before dispatching to it), kProbe (degraded hold elapsed;
  // the shard runs this round on probation), or kNone.
  SupervisorAction BeginRound(std::size_t shard, std::uint64_t round);

  // Phase 2, after the shard's processing and reoptimization: feed the
  // round's failure evidence. Returns kCircuitBreak when the shard just
  // tripped the breaker (the runtime captures the held directives), kRecover
  // when a probation round came back clean, else kNone.
  SupervisorAction ObserveFailures(std::size_t shard, std::uint64_t round,
                                   const std::vector<FailureEvent>& failures);

  std::uint64_t Restarts(std::size_t shard) const {
    return cells_[shard].restarts;
  }
  std::uint64_t CircuitBreaks(std::size_t shard) const {
    return cells_[shard].breaks;
  }
  std::uint64_t Probes(std::size_t shard) const { return cells_[shard].probes; }
  std::uint64_t TotalRestarts() const;
  std::uint64_t TotalCircuitBreaks() const;
  std::uint64_t TotalProbes() const;

  void SaveState(std::string* out) const;
  bool RestoreState(util::ByteCursor* cur);

 private:
  struct Cell {
    ShardState state = ShardState::kHealthy;
    int consecutive_storms = 0;
    int consecutive_overruns = 0;
    std::uint64_t backoff = 0;      // current backoff length (rounds)
    std::uint64_t restart_at = 0;   // kBackoff: round the restart executes
    std::uint64_t degraded_since = 0;
    std::vector<std::uint64_t> restart_rounds;  // executed, within window
    std::uint64_t restarts = 0;
    std::uint64_t breaks = 0;
    std::uint64_t probes = 0;
  };

  void Park(Cell& cell, std::uint64_t round);

  SupervisorParams params_;
  std::vector<Cell> cells_;
};

}  // namespace wolt::fleet
