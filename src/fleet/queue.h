// Bounded, seeded-deterministic ingestion queue of the fleet runtime: every
// inbound control-plane message (scan, capacity probe, ack, departure) from
// every building lands here before being batched to its shard's controller.
//
// Backpressure contract:
//  * The queue has an explicit capacity. While the total depth exceeds it,
//    messages are shed per-shard oldest-first from the most backlogged shard
//    (ties broken toward the lowest shard id) — the shard least able to keep
//    up pays, and it pays its stalest data first, never its freshest.
//  * Shedding is accounted exactly: enqueued == delivered + shed + discarded
//    + depth holds at every instant (fleet.shed.* obs counters mirror this).
//  * Do-no-harm: the queue holds only encoded wire bytes. A shard's
//    last-known-good association state lives in the shard (client-side
//    applied directives and the controller's assignment) and is structurally
//    unreachable from here, so overload can delay or drop *messages* but can
//    never evict committed association state.
//
// Determinism: no clocks, no randomness — arrival order (the seq stamp) is
// assigned by the single-threaded ingest phase of the runtime's round loop,
// so queue contents are a pure function of the fleet seed and round.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "fault/plane.h"

namespace wolt::util {
class ByteCursor;
}  // namespace wolt::util

namespace wolt::fleet {

// One control-plane message addressed to a shard's controller.
struct FleetMessage {
  std::uint32_t shard = 0;
  fault::MessageClass cls = fault::MessageClass::kScan;
  std::string bytes;     // encoded wire line (possibly corrupted in flight)
  std::uint64_t seq = 0; // global arrival order, stamped by the queue
};

struct QueueStats {
  std::uint64_t enqueued = 0;   // messages accepted
  std::uint64_t delivered = 0;  // messages drained into shard batches
  std::uint64_t shed = 0;       // dropped by the overload policy
  std::uint64_t discarded = 0;  // dropped because the shard was unavailable
  std::uint64_t shed_by_class[fault::kNumMessageClasses] = {};
  std::uint64_t peak_depth = 0;
};

class BoundedFleetQueue {
 public:
  // `capacity` bounds the total queued message count across all shards;
  // 0 = unbounded (no shedding).
  BoundedFleetQueue(std::size_t capacity, std::size_t num_shards);

  // Stamp, append to the shard's lane, then shed while over capacity.
  void Push(FleetMessage msg);

  // Up to `max_batch` oldest messages of `shard`, in arrival order
  // (0 = everything queued). Counted as delivered.
  std::vector<FleetMessage> Drain(std::uint32_t shard, std::size_t max_batch);

  // Drop everything queued for an unavailable (restarting/degraded) shard.
  // Returns the count; accounted as discarded, not shed.
  std::size_t Discard(std::uint32_t shard);

  std::size_t Depth() const { return depth_; }
  std::size_t DepthOf(std::uint32_t shard) const;
  std::size_t capacity() const { return capacity_; }
  std::size_t num_shards() const { return lanes_.size(); }
  const QueueStats& stats() const { return stats_; }

  // Crash-safe snapshot of queued messages, the seq counter and the stats
  // (bit-exact; part of the fleet journal's state record).
  void SaveState(std::string* out) const;
  bool RestoreState(util::ByteCursor* cur);

 private:
  void ShedWhileOverCapacity();

  std::size_t capacity_;
  std::vector<std::deque<FleetMessage>> lanes_;  // per shard, seq-ordered
  std::size_t depth_ = 0;
  std::uint64_t next_seq_ = 0;
  QueueStats stats_;
};

}  // namespace wolt::fleet
