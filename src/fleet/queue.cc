#include "fleet/queue.h"

#include <algorithm>

#include "util/codec.h"

namespace wolt::fleet {

BoundedFleetQueue::BoundedFleetQueue(std::size_t capacity,
                                     std::size_t num_shards)
    : capacity_(capacity), lanes_(num_shards) {}

void BoundedFleetQueue::Push(FleetMessage msg) {
  if (msg.shard >= lanes_.size()) return;  // misaddressed: drop silently
  msg.seq = next_seq_++;
  lanes_[msg.shard].push_back(std::move(msg));
  ++depth_;
  ++stats_.enqueued;
  stats_.peak_depth = std::max<std::uint64_t>(stats_.peak_depth, depth_);
  ShedWhileOverCapacity();
}

void BoundedFleetQueue::ShedWhileOverCapacity() {
  if (capacity_ == 0) return;
  while (depth_ > capacity_) {
    // Victim: the most backlogged shard, lowest id on ties; its oldest
    // message goes first. Deterministic — no clocks, no randomness.
    std::size_t victim = 0;
    std::size_t victim_depth = 0;
    for (std::size_t s = 0; s < lanes_.size(); ++s) {
      if (lanes_[s].size() > victim_depth) {
        victim = s;
        victim_depth = lanes_[s].size();
      }
    }
    if (victim_depth == 0) return;  // unreachable: depth_ > 0 implies a lane
    const FleetMessage& oldest = lanes_[victim].front();
    ++stats_.shed;
    ++stats_.shed_by_class[static_cast<int>(oldest.cls)];
    lanes_[victim].pop_front();
    --depth_;
  }
}

std::vector<FleetMessage> BoundedFleetQueue::Drain(std::uint32_t shard,
                                                   std::size_t max_batch) {
  std::vector<FleetMessage> out;
  if (shard >= lanes_.size()) return out;
  std::deque<FleetMessage>& lane = lanes_[shard];
  const std::size_t take =
      max_batch == 0 ? lane.size() : std::min(max_batch, lane.size());
  out.reserve(take);
  for (std::size_t k = 0; k < take; ++k) {
    out.push_back(std::move(lane.front()));
    lane.pop_front();
  }
  depth_ -= take;
  stats_.delivered += take;
  return out;
}

std::size_t BoundedFleetQueue::Discard(std::uint32_t shard) {
  if (shard >= lanes_.size()) return 0;
  const std::size_t n = lanes_[shard].size();
  lanes_[shard].clear();
  depth_ -= n;
  stats_.discarded += n;
  return n;
}

std::size_t BoundedFleetQueue::DepthOf(std::uint32_t shard) const {
  return shard < lanes_.size() ? lanes_[shard].size() : 0;
}

void BoundedFleetQueue::SaveState(std::string* out) const {
  util::PutU64(out, lanes_.size());
  util::PutU64(out, next_seq_);
  util::PutU64(out, stats_.enqueued);
  util::PutU64(out, stats_.delivered);
  util::PutU64(out, stats_.shed);
  util::PutU64(out, stats_.discarded);
  for (std::uint64_t c : stats_.shed_by_class) util::PutU64(out, c);
  util::PutU64(out, stats_.peak_depth);
  util::PutU64(out, depth_);
  for (const std::deque<FleetMessage>& lane : lanes_) {
    util::PutU64(out, lane.size());
    for (const FleetMessage& m : lane) {
      util::PutU32(out, m.shard);
      util::PutU8(out, static_cast<std::uint8_t>(m.cls));
      util::PutU64(out, m.seq);
      util::PutString(out, m.bytes);
    }
  }
}

bool BoundedFleetQueue::RestoreState(util::ByteCursor* cur) {
  const std::uint64_t num_lanes = cur->U64();
  if (!cur->ok() || num_lanes != lanes_.size()) return false;
  QueueStats stats;
  const std::uint64_t next_seq = cur->U64();
  stats.enqueued = cur->U64();
  stats.delivered = cur->U64();
  stats.shed = cur->U64();
  stats.discarded = cur->U64();
  for (std::uint64_t& c : stats.shed_by_class) c = cur->U64();
  stats.peak_depth = cur->U64();
  const std::uint64_t depth = cur->U64();
  if (!cur->ok()) return false;

  std::vector<std::deque<FleetMessage>> lanes(lanes_.size());
  std::uint64_t total = 0;
  for (std::deque<FleetMessage>& lane : lanes) {
    const std::uint64_t n = cur->U64();
    if (!cur->ok() || n > depth) return false;
    for (std::uint64_t k = 0; k < n; ++k) {
      FleetMessage m;
      m.shard = cur->U32();
      const std::uint8_t cls = cur->U8();
      m.seq = cur->U64();
      m.bytes = cur->String();
      if (!cur->ok() || cls >= fault::kNumMessageClasses) return false;
      m.cls = static_cast<fault::MessageClass>(cls);
      lane.push_back(std::move(m));
    }
    total += n;
  }
  if (total != depth) return false;

  lanes_ = std::move(lanes);
  depth_ = static_cast<std::size_t>(depth);
  next_seq_ = next_seq;
  stats_ = stats;
  return true;
}

}  // namespace wolt::fleet
