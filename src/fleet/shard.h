// One shard of the fleet: a single building's CentralController plus the
// deterministic world around it — the ground-truth network the building's
// clients live in, the traffic those clients emit every round, the lossy
// wire between them and the controller, and the total (non-throwing)
// boundary the fleet runtime calls through.
//
// Fault isolation contract: nothing a shard does can escape it. Every
// controller interaction is wrapped in a catch-all; an escaped exception
// becomes a FailureEvent (category kProgrammingError) for the supervisor
// instead of taking the process — or a sibling shard — down. The shard also
// self-checks its isolation invariant each round: every user id its
// controller knows must lie inside the shard's own id block.
//
// Determinism: all randomness is drawn from stateless substreams of
// (fleet_seed, shard_id, round, salt) — no RNG objects persist across
// rounds — so a shard's behaviour is a pure function of its inputs, replays
// byte-identically at any thread count, and needs no RNG state in the
// crash-safe snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "fault/plane.h"
#include "fleet/queue.h"
#include "fleet/supervisor.h"
#include "model/network.h"

namespace wolt::util {
class ByteCursor;
}  // namespace wolt::util

namespace wolt::fleet {

// User-id block per shard: shard s owns ids [s*kIdStride, s*kIdStride + n).
inline constexpr std::int64_t kIdStride = 1'000'000;

// Substream salts per (shard, round). Keep in sync with the runtime: every
// random decision anywhere in the fleet draws from one of these.
inline constexpr std::uint64_t kSalts = 4;
inline constexpr std::uint64_t kSaltTraffic = 0;   // traffic generation
inline constexpr std::uint64_t kSaltBatch = 1;     // batch-directive delivery
inline constexpr std::uint64_t kSaltReopt = 2;     // reopt-directive delivery
inline constexpr std::uint64_t kSaltWire = 3;      // fault-plane seed

struct ShardParams {
  // Building size. Small on purpose: fleet tests run hundreds of shards.
  std::size_t num_extenders = 3;
  std::size_t num_users = 5;
  double floor_m = 50.0;  // square floor side

  core::RetryParams retry;
  core::QuarantineParams quarantine;

  double round_dt = 1.0;    // controller-clock seconds per fleet round
  double stale_age = 6.0;   // EvictStale threshold (controller time)
  // Rounds a departed client stays away before re-arriving.
  std::uint64_t rejoin_after = 2;

  // Decode failures within one batch at or above this count raise a
  // kDecodeStorm failure event.
  std::size_t decode_storm_threshold = 4;

  // Chaos knobs, active only on rounds the runtime flags as chaos rounds.
  fault::FaultPlaneParams wire;   // wire faults on chaos rounds
  double plc_crash_prob = 0.0;    // per extender per chaos round
  std::uint64_t plc_down_rounds = 3;
  double departure_prob = 0.0;    // per alive client per chaos round

  // Poison window [poison_from, poison_to): ProcessBatch throws on every
  // round inside it, simulating a wedged shard. Defaults to never.
  std::uint64_t poison_from = ~std::uint64_t{0};
  std::uint64_t poison_to = 0;
};

// What one round of batch processing did, plus the failure evidence the
// supervisor consumes. `outbound` carries the client acks the runtime
// re-enqueues next round.
struct RoundOutcome {
  std::size_t processed = 0;       // messages decoded and handled
  std::size_t decode_rejects = 0;  // undecodable bytes
  std::size_t wire_faults = 0;     // handled but kWireFault-categorized
  std::size_t state_conflicts = 0; // handled but kStateConflict-categorized
  std::size_t directives = 0;      // directives transmitted to clients
  std::vector<FleetMessage> outbound;
  std::vector<FailureEvent> failures;
};

// Outcome of one scheduled per-shard reoptimization.
struct ReoptOutcome {
  bool ran = false;
  core::ReoptTier tier = core::ReoptTier::kHoldLastGood;  // served rung
  std::size_t directives = 0;
  std::vector<FleetMessage> outbound;
  std::vector<FailureEvent> failures;
};

class ShardRuntime {
 public:
  ShardRuntime(std::uint32_t shard_id, std::uint64_t fleet_seed,
               ShardParams params);

  std::uint32_t shard_id() const { return shard_id_; }
  std::int64_t IdBase() const { return kIdStride * shard_id_; }
  const ShardParams& params() const { return params_; }

  // Phase (b) of a round: emit this round's control-plane traffic (capacity
  // probes, client scans, departures) into `out`, routed through the lossy
  // wire on chaos rounds. Also advances the ground truth (PLC crashes and
  // recoveries, client churn). Never touches the controller.
  void GenerateTraffic(std::uint64_t round, bool chaos,
                       std::vector<FleetMessage>* out);

  // Phase (d): feed a drained batch through the controller behind the total
  // boundary. Exceptions become kException failures; a decode storm raises
  // kDecodeStorm; the id-block isolation invariant is checked afterwards.
  RoundOutcome ProcessBatch(std::uint64_t round, bool chaos,
                            const std::vector<FleetMessage>& batch);

  // Phase (e): clock-free reoptimization at the scheduler-chosen tier,
  // behind the same boundary. Directive delivery uses kSaltReopt.
  ReoptOutcome Reoptimize(std::uint64_t round, bool chaos,
                          core::ReoptTier tier);

  // Bench-only sibling: wall-clock budgeted reoptimization (the PR 5
  // ladder). Non-deterministic by nature — excluded from byte-compares.
  ReoptOutcome ReoptimizeBudget(std::uint64_t round, double budget_seconds);

  // Supervisor-ordered restart: discard the (presumed wedged) controller and
  // start a fresh one at the current controller time. Clients keep their
  // last applied directives — restart loses controller state, not the
  // building's associations.
  void Restart(std::uint64_t round);

  // Ground-truth aggregate throughput of what the clients are actually
  // doing (alive clients on their applied extenders, dead links excluded).
  // This is the do-no-harm observable: it is well-defined even while the
  // controller is down or degraded.
  double TruthAggregate() const;

  // Applied extender per client slot (-1 = none/departed). The runtime
  // captures this at circuit-break time and asserts degraded shards hold it.
  std::vector<int> ClientExtenders() const;

  const core::CentralController& controller() const { return *cc_; }

  void SaveState(std::string* out) const;
  bool RestoreState(util::ByteCursor* cur);

 private:
  struct Client {
    bool alive = true;
    int extender = -1;               // last applied directive
    std::uint64_t rejoin_round = 0;  // when !alive: round it re-arrives
  };

  bool Poisoned(std::uint64_t round) const {
    return round >= params_.poison_from && round < params_.poison_to;
  }
  // Ingress admission gate: a decoded message whose user id falls outside
  // this shard's id block is a wire artefact (bit-flipped id) or a routing
  // bug — either way it must never reach the controller, or corruption on
  // one building's wire could plant foreign state in another's controller.
  bool OwnsId(std::int64_t id) const {
    return id >= IdBase() &&
           id < IdBase() + static_cast<std::int64_t>(clients_.size());
  }
  std::unique_ptr<core::CentralController> MakeController() const;
  // Transmit one encoded message through the (chaos-only) wire into `out`.
  void SendToShard(fault::FaultPlane* wire, fault::MessageClass cls,
                   const std::string& bytes, std::vector<FleetMessage>* out);
  // Deliver controller directives to clients through the wire; applied
  // directives generate acks into `outbound`.
  void DeliverDirectives(
      const std::vector<core::AssociationDirective>& directives,
      fault::FaultPlane* wire, std::size_t* sent,
      std::vector<FleetMessage>* outbound);
  void HandleInbound(const FleetMessage& msg, fault::FaultPlane* wire,
                     RoundOutcome* rc);
  void Categorize(core::ErrorCategory category, RoundOutcome* rc);

  std::uint32_t shard_id_;
  std::uint64_t shard_key_;  // HashCombine64(fleet_seed, shard_id)
  ShardParams params_;
  model::Network truth_;
  std::vector<double> base_plc_;        // per extender, pre-chaos capacity
  std::vector<std::uint64_t> down_until_;  // per extender; 0 = up
  std::vector<Client> clients_;
  std::unique_ptr<core::CentralController> cc_;
};

}  // namespace wolt::fleet
