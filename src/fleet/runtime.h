// The fleet runtime: hundreds-to-thousands of per-building controllers
// (shards) driven through a shared round loop on a util::ThreadPool, with
// bounded ingestion (fleet/queue.h), per-shard supervision
// (fleet/supervisor.h) and crash-safe journaling (recover/fleet_journal.h).
//
// Round structure — the alternation that makes the fleet deterministic at
// any thread count:
//
//   serial   (a) supervisor BeginRound: execute due restarts and probes
//   serial   (b) every shard emits its round traffic into the bounded queue
//   serial   (c) drain a batch per live shard; discard lanes of parked ones
//   serial   (d) virtual-budget reopt scheduling (staleness-priority ladder)
//   parallel (e) per-shard ProcessBatch + scheduled ReoptimizeAtTier, each
//                writing into its own index-addressed slot
//   serial   (f) supervisor ObserveFailures; circuit breaks capture the
//                shard's held directives, recoveries release them
//   serial   (g) invariants, ack re-enqueue, journal append, snapshot
//
// Every cross-shard decision (queue order, shedding, scheduling,
// supervision, journaling) happens in the serial phases in shard-id order;
// the parallel phase touches only per-shard state. All randomness is drawn
// from stateless (seed, shard, round, salt) substreams. Consequence: the
// journal byte stream and the fleet report are identical at 1/2/4/8 threads,
// and identical across SIGKILL + resume — the property the crash soak and
// the ci.sh kill-and-resume smoke assert.
//
// The reoptimize scheduler spends a *virtual* unit budget (not wall clock)
// across shards by staleness priority, mapping leftover budget onto the
// PR 5 degradation ladder: kFull costs 4 units, kHungarianOnly 3, kGreedy 2,
// kHoldLastGood 1. Wall-clock budgets (ShardRuntime::ReoptimizeBudget) are
// reserved for the latency bench, which is exempt from byte-compares.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fleet/queue.h"
#include "fleet/shard.h"
#include "fleet/supervisor.h"
#include "recover/fleet_journal.h"

namespace wolt::util {
class ByteCursor;
class ThreadPool;
}  // namespace wolt::util

namespace wolt::fleet {

struct FleetParams {
  std::size_t num_shards = 4;
  std::uint64_t rounds = 10;
  // Executor count for the parallel phase (1 = fully serial). Not part of
  // the fingerprint: results are thread-count-independent by construction.
  int threads = 1;

  // Bounded-queue capacity across all shards; 0 = unbounded (no shedding).
  std::size_t queue_capacity = 0;
  // Max messages drained per shard per round; 0 = everything queued.
  std::size_t batch_per_shard = 0;

  ShardParams shard;          // template applied to every shard
  SupervisorParams supervisor;

  // Chaos window [chaos_from, chaos_to): wire faults, PLC crashes and
  // client churn are active on these rounds only.
  std::uint64_t chaos_from = 0;
  std::uint64_t chaos_to = 0;

  // Shards whose ShardParams get the poison window installed (forced
  // ProcessBatch throws — the crash-loop fodder of the soak).
  std::vector<std::uint32_t> poison_shards;
  std::uint64_t poison_from = ~std::uint64_t{0};
  std::uint64_t poison_to = 0;

  // Virtual reopt budget per round (see file comment); 0 = every live shard
  // reoptimizes at kFull every round.
  std::size_t reopt_units_per_round = 0;
  // Bench-only: >0 switches to wall-clock budgeted reoptimization per shard
  // (PR 5 ladder). Non-deterministic; incompatible with journaling.
  double reopt_wall_budget_seconds = 0.0;

  // Crash-safe journal; empty = no journal. `resume` replays the journal's
  // last snapshot and continues; an unreadable journal restarts the run
  // fresh (with a stderr warning) rather than failing it — only a *valid*
  // journal from a different configuration is refused. `snapshot_every` is
  // in rounds (the final round always snapshots).
  std::string journal_path;
  bool resume = false;
  std::uint64_t snapshot_every = 1;
  // Forwarded to the journal writer (crash-harness hook).
  std::function<void(std::size_t)> after_journal_append;
  // Storage backend for the journal; nullptr = the real filesystem. Not
  // part of the fingerprint (plumbing, not configuration).
  io::Vfs* vfs = nullptr;
  // fsync the journal after every append (see JournalWriter::Options).
  bool journal_sync_every_append = false;

  // Cooperative cancellation: polled between rounds (never mid-round, so
  // the journal stays round-aligned). A set token stops the loop after the
  // current round; the journal is snapshotted, flushed and closed, and the
  // result has cancelled=true — resumable like any crash. Not part of the
  // fingerprint. The soak bench flips this from its SIGINT handler.
  std::atomic<bool>* cancel = nullptr;
};

// Configuration identity: resuming a journal written under any other
// (params, seed) is refused. Thread count and journal plumbing excluded.
std::uint64_t Fingerprint(const FleetParams& params, std::uint64_t seed);

struct FleetResult {
  bool completed = false;
  std::string error;
  // FleetParams::cancel was observed set; the run stopped early at a round
  // boundary with the journal flushed (resume picks up from there).
  bool cancelled = false;
  // The journal writer hit an I/O failure and disabled itself mid-run; the
  // results are complete but the journal is not resumable past that point.
  bool journal_degraded = false;

  std::vector<recover::ShardRoundRecord> shard_records;
  std::vector<recover::FleetRoundRecord> fleet_records;
  std::uint64_t resumed_rounds = 0;  // rounds restored from the journal

  QueueStats queue;
  std::uint64_t restarts = 0;
  std::uint64_t circuit_breaks = 0;
  std::uint64_t probes = 0;

  // Soak invariants, folded over the whole run:
  bool isolation_ok = true;      // no shard ever held a foreign user id
  bool accounting_ok = true;     // enqueued == delivered+shed+discarded+depth
  bool degraded_held_ok = true;  // parked shards only held or shed clients

  // Deterministic text rendering of the records and invariants — the byte-
  // compare artefact of the resume tests and the ci.sh smoke. Identical
  // across thread counts and across SIGKILL + resume.
  std::string Report() const;
};

class FleetRuntime {
 public:
  FleetRuntime(FleetParams params, std::uint64_t seed);
  ~FleetRuntime();

  // Execute the configured run (or its resumed tail) to completion.
  FleetResult Run();

  const Supervisor& supervisor() const { return *supervisor_; }
  const BoundedFleetQueue& queue() const { return *queue_; }
  const ShardRuntime& shard(std::size_t s) const { return *shards_[s]; }

  // Whole-fleet state snapshot (queue, supervisor, every shard, scheduler
  // bookkeeping) — the payload of the journal's snapshot records.
  void SaveState(std::string* out) const;
  bool RestoreState(util::ByteCursor* cur);

 private:
  struct PerShardScratch;

  ShardParams ShardParamsFor(std::uint32_t shard) const;
  void RunRound(std::uint64_t round, util::ThreadPool& pool,
                recover::FleetJournalWriter* journal, FleetResult* result);

  FleetParams params_;
  std::uint64_t seed_;
  std::uint64_t fingerprint_;
  std::vector<std::unique_ptr<ShardRuntime>> shards_;
  std::unique_ptr<Supervisor> supervisor_;
  std::unique_ptr<BoundedFleetQueue> queue_;
  // Captured ClientExtenders of circuit-broken shards (empty = not held).
  std::vector<std::vector<int>> held_extenders_;
  std::vector<std::uint64_t> last_reopt_round_;
  QueueStats prev_stats_;  // for per-round deltas in FleetRoundRecords
};

}  // namespace wolt::fleet
