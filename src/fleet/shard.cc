#include "fleet/shard.h"

#include <stdexcept>
#include <utility>

#include "core/wolt.h"
#include "model/assignment.h"
#include "model/evaluator.h"
#include "sim/scenario.h"
#include "util/codec.h"
#include "util/rng.h"

namespace wolt::fleet {
namespace {

// Substream index for one (round, salt) pair.
std::uint64_t RoundStream(std::uint64_t round, std::uint64_t salt) {
  return round * kSalts + salt;
}

// Substream index of the construction-time scenario draw (distinct from
// every round stream).
constexpr std::uint64_t kSetupStream = ~std::uint64_t{0};

}  // namespace

ShardRuntime::ShardRuntime(std::uint32_t shard_id, std::uint64_t fleet_seed,
                           ShardParams params)
    : shard_id_(shard_id),
      shard_key_(util::HashCombine64(fleet_seed, shard_id)),
      params_(std::move(params)) {
  sim::ScenarioParams sp;
  sp.width_m = params_.floor_m;
  sp.height_m = params_.floor_m;
  sp.num_extenders = params_.num_extenders;
  sp.num_users = params_.num_users;
  util::Rng gen = util::Rng::Substream(shard_key_, kSetupStream);
  truth_ = sim::ScenarioGenerator(sp).Generate(gen);

  base_plc_.resize(truth_.NumExtenders());
  for (std::size_t j = 0; j < truth_.NumExtenders(); ++j) {
    base_plc_[j] = truth_.PlcRate(j);
  }
  down_until_.assign(truth_.NumExtenders(), 0);

  clients_.resize(truth_.NumUsers());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    // Clients camp on their best link until directed (§V-A behaviour).
    std::optional<std::size_t> best = truth_.BestRateExtender(i);
    clients_[i].extender = best ? static_cast<int>(*best) : -1;
  }

  cc_ = MakeController();
}

std::unique_ptr<core::CentralController> ShardRuntime::MakeController()
    const {
  return std::make_unique<core::CentralController>(
      params_.num_extenders, std::make_unique<core::WoltPolicy>(),
      params_.retry, params_.quarantine);
}

void ShardRuntime::SendToShard(fault::FaultPlane* wire,
                               fault::MessageClass cls,
                               const std::string& bytes,
                               std::vector<FleetMessage>* out) {
  if (wire == nullptr) {
    out->push_back(FleetMessage{shard_id_, cls, bytes, 0});
    return;
  }
  for (fault::FaultPlane::Delivery& d : wire->Transmit(cls, bytes)) {
    // Delays are collapsed: the fleet round is the delivery quantum.
    out->push_back(FleetMessage{shard_id_, cls, std::move(d.bytes), 0});
  }
}

void ShardRuntime::GenerateTraffic(std::uint64_t round, bool chaos,
                                   std::vector<FleetMessage>* out) {
  util::Rng rng =
      util::Rng::Substream(shard_key_, RoundStream(round, kSaltTraffic));
  fault::FaultPlane plane(
      params_.wire,
      util::HashCombine64(shard_key_, RoundStream(round, kSaltWire)));
  fault::FaultPlane* wire = chaos ? &plane : nullptr;

  // Ground-truth PLC churn: recoveries first, then fresh chaos crashes.
  for (std::size_t j = 0; j < truth_.NumExtenders(); ++j) {
    if (down_until_[j] != 0 && round >= down_until_[j]) {
      truth_.SetPlcRate(j, base_plc_[j]);
      down_until_[j] = 0;
    }
  }
  if (chaos && params_.plc_crash_prob > 0.0) {
    for (std::size_t j = 0; j < truth_.NumExtenders(); ++j) {
      if (rng.Bernoulli(params_.plc_crash_prob)) {
        truth_.SetPlcRate(j, 0.0);
        down_until_[j] = round + params_.plc_down_rounds;
      }
    }
  }

  for (std::size_t j = 0; j < truth_.NumExtenders(); ++j) {
    core::CapacityReport cap;
    cap.extender = static_cast<int>(j);
    cap.capacity_mbps = truth_.PlcRate(j);
    SendToShard(wire, fault::MessageClass::kCapacity, core::Encode(cap), out);
  }

  for (std::size_t i = 0; i < clients_.size(); ++i) {
    Client& client = clients_[i];
    const std::int64_t id = IdBase() + static_cast<std::int64_t>(i);
    if (!client.alive) {
      if (round >= client.rejoin_round) {
        client.alive = true;
        client.extender = -1;  // re-arrives uncamped, waits for a directive
      } else {
        continue;
      }
    }
    if (chaos && params_.departure_prob > 0.0 &&
        rng.Bernoulli(params_.departure_prob)) {
      client.alive = false;
      client.extender = -1;
      client.rejoin_round = round + params_.rejoin_after;
      core::DepartureNotice bye;
      bye.user_id = id;
      SendToShard(wire, fault::MessageClass::kDeparture, core::Encode(bye),
                  out);
      continue;
    }
    core::ScanReport scan;
    scan.user_id = id;
    const double* row = truth_.WifiRateRow(i);
    scan.rates_mbps.assign(row, row + truth_.NumExtenders());
    if (client.extender >= 0) scan.associated_extender = client.extender;
    SendToShard(wire, fault::MessageClass::kScan, core::Encode(scan), out);
  }
}

void ShardRuntime::Categorize(core::ErrorCategory category,
                              RoundOutcome* rc) {
  switch (category) {
    case core::ErrorCategory::kNone:
      break;
    case core::ErrorCategory::kWireFault:
      ++rc->wire_faults;
      break;
    case core::ErrorCategory::kStateConflict:
      ++rc->state_conflicts;
      break;
    case core::ErrorCategory::kProgrammingError:
      rc->failures.push_back(
          FailureEvent{FailureKind::kInvariant,
                       core::ErrorCategory::kProgrammingError,
                       "handler returned a programming-error status"});
      break;
  }
}

void ShardRuntime::DeliverDirectives(
    const std::vector<core::AssociationDirective>& directives,
    fault::FaultPlane* wire, std::size_t* sent,
    std::vector<FleetMessage>* outbound) {
  for (const core::AssociationDirective& d : directives) {
    ++*sent;
    const std::string encoded = core::Encode(d);
    std::vector<fault::FaultPlane::Delivery> deliveries;
    if (wire == nullptr) {
      deliveries.push_back(fault::FaultPlane::Delivery{0.0, encoded});
    } else {
      deliveries = wire->Transmit(fault::MessageClass::kDirective, encoded);
    }
    for (const fault::FaultPlane::Delivery& del : deliveries) {
      std::optional<core::AssociationDirective> applied =
          core::DecodeAssociationDirective(del.bytes);
      if (!applied) continue;  // mangled in flight; the retry path covers it
      const std::int64_t idx = applied->user_id - IdBase();
      if (idx < 0 || idx >= static_cast<std::int64_t>(clients_.size())) {
        continue;
      }
      Client& client = clients_[static_cast<std::size_t>(idx)];
      if (!client.alive) continue;
      client.extender = applied->extender;
      core::DirectiveAck ack;
      ack.user_id = applied->user_id;
      ack.extender = applied->extender;
      outbound->push_back(FleetMessage{
          shard_id_, fault::MessageClass::kAck, core::Encode(ack), 0});
    }
  }
}

void ShardRuntime::HandleInbound(const FleetMessage& msg,
                                 fault::FaultPlane* wire, RoundOutcome* rc) {
  switch (msg.cls) {
    case fault::MessageClass::kScan: {
      std::optional<core::ScanReport> scan = core::DecodeScanReport(msg.bytes);
      // A corrupted id can decode "validly" into another shard's block; the
      // admission gate keeps such bytes out of the controller entirely.
      if (!scan || !OwnsId(scan->user_id)) {
        ++rc->decode_rejects;
        return;
      }
      ++rc->processed;
      core::HandleResult res = cc_->KnowsUser(scan->user_id)
                                   ? cc_->HandleScanUpdate(*scan)
                                   : cc_->HandleUserArrival(*scan);
      Categorize(res.category(), rc);
      DeliverDirectives(res.directives, wire, &rc->directives, &rc->outbound);
      return;
    }
    case fault::MessageClass::kCapacity: {
      std::optional<core::CapacityReport> cap =
          core::DecodeCapacityReport(msg.bytes);
      if (!cap) {
        ++rc->decode_rejects;
        return;
      }
      ++rc->processed;
      Categorize(core::CategoryOf(cc_->HandleCapacityReport(*cap)), rc);
      return;
    }
    case fault::MessageClass::kAck: {
      std::optional<core::DirectiveAck> ack =
          core::DecodeDirectiveAck(msg.bytes);
      if (!ack || !OwnsId(ack->user_id)) {
        ++rc->decode_rejects;
        return;
      }
      ++rc->processed;
      Categorize(core::CategoryOf(cc_->HandleDirectiveAck(*ack)), rc);
      return;
    }
    case fault::MessageClass::kDeparture: {
      std::optional<core::DepartureNotice> bye =
          core::DecodeDepartureNotice(msg.bytes);
      if (!bye || !OwnsId(bye->user_id)) {
        ++rc->decode_rejects;
        return;
      }
      ++rc->processed;
      Categorize(core::CategoryOf(cc_->HandleUserDeparture(bye->user_id)),
                 rc);
      return;
    }
    case fault::MessageClass::kDirective:
      // Directives are CC->client and never legitimately inbound.
      ++rc->decode_rejects;
      return;
  }
  ++rc->decode_rejects;  // unknown class byte
}

RoundOutcome ShardRuntime::ProcessBatch(std::uint64_t round, bool chaos,
                                        const std::vector<FleetMessage>& batch) {
  RoundOutcome rc;
  fault::FaultPlane plane(
      params_.wire,
      util::HashCombine64(shard_key_, RoundStream(round, kSaltBatch)));
  fault::FaultPlane* wire = chaos ? &plane : nullptr;
  try {
    if (Poisoned(round)) {
      throw std::logic_error("shard poisoned (injected wedge)");
    }
    cc_->AdvanceTime(static_cast<double>(round) * params_.round_dt);
    for (const FleetMessage& msg : batch) HandleInbound(msg, wire, &rc);
    DeliverDirectives(cc_->CollectRetries(), wire, &rc.directives,
                      &rc.outbound);
    cc_->EvictStale(params_.stale_age);
    // Isolation invariant: the controller must only ever know ids from this
    // shard's block. Anything else means cross-shard state leaked.
    const std::int64_t lo = IdBase();
    const std::int64_t hi =
        lo + static_cast<std::int64_t>(clients_.size());
    for (std::int64_t id : cc_->UserIds()) {
      if (id < lo || id >= hi) {
        rc.failures.push_back(
            FailureEvent{FailureKind::kInvariant,
                         core::ErrorCategory::kProgrammingError,
                         "controller holds a foreign user id"});
        break;
      }
    }
  } catch (const std::exception& e) {
    rc.failures.push_back(FailureEvent{
        FailureKind::kException, core::ErrorCategory::kProgrammingError,
        e.what()});
  }
  if (rc.decode_rejects >= params_.decode_storm_threshold) {
    rc.failures.push_back(FailureEvent{FailureKind::kDecodeStorm,
                                       core::ErrorCategory::kWireFault,
                                       "decode-reject storm"});
  }
  return rc;
}

ReoptOutcome ShardRuntime::Reoptimize(std::uint64_t round, bool chaos,
                                      core::ReoptTier tier) {
  ReoptOutcome ro;
  fault::FaultPlane plane(
      params_.wire,
      util::HashCombine64(shard_key_, RoundStream(round, kSaltReopt)));
  fault::FaultPlane* wire = chaos ? &plane : nullptr;
  try {
    cc_->AdvanceTime(static_cast<double>(round) * params_.round_dt);
    core::ReoptReport report = cc_->ReoptimizeAtTier(tier);
    ro.ran = true;
    ro.tier = report.tier;
    DeliverDirectives(report.directives, wire, &ro.directives, &ro.outbound);
  } catch (const std::exception& e) {
    ro.failures.push_back(FailureEvent{
        FailureKind::kException, core::ErrorCategory::kProgrammingError,
        e.what()});
  }
  return ro;
}

ReoptOutcome ShardRuntime::ReoptimizeBudget(std::uint64_t round,
                                            double budget_seconds) {
  ReoptOutcome ro;
  try {
    cc_->AdvanceTime(static_cast<double>(round) * params_.round_dt);
    core::ReoptReport report = cc_->Reoptimize(budget_seconds);
    ro.ran = true;
    ro.tier = report.tier;
    if (report.budget_limited) {
      ro.failures.push_back(FailureEvent{FailureKind::kReoptOverrun,
                                         core::ErrorCategory::kNone,
                                         "reopt budget overrun"});
    }
    DeliverDirectives(report.directives, /*wire=*/nullptr, &ro.directives,
                      &ro.outbound);
  } catch (const std::exception& e) {
    ro.failures.push_back(FailureEvent{
        FailureKind::kException, core::ErrorCategory::kProgrammingError,
        e.what()});
  }
  return ro;
}

void ShardRuntime::Restart(std::uint64_t round) {
  cc_ = MakeController();
  cc_->AdvanceTime(static_cast<double>(round) * params_.round_dt);
}

double ShardRuntime::TruthAggregate() const {
  model::Assignment assign(truth_.NumUsers());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    const Client& client = clients_[i];
    if (!client.alive || client.extender < 0 ||
        client.extender >= static_cast<int>(truth_.NumExtenders())) {
      continue;
    }
    if (truth_.WifiRate(i, static_cast<std::size_t>(client.extender)) <= 0.0) {
      continue;  // client applied a directive to a link it cannot hear
    }
    assign.Assign(i, static_cast<std::size_t>(client.extender));
  }
  return model::Evaluator().AggregateThroughput(truth_, assign);
}

std::vector<int> ShardRuntime::ClientExtenders() const {
  std::vector<int> out(clients_.size(), -1);
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (clients_[i].alive) out[i] = clients_[i].extender;
  }
  return out;
}

void ShardRuntime::SaveState(std::string* out) const {
  util::PutU64(out, clients_.size());
  for (const Client& client : clients_) {
    util::PutU8(out, client.alive ? 1 : 0);
    util::PutI32(out, client.extender);
    util::PutU64(out, client.rejoin_round);
  }
  util::PutU64Vec(out, down_until_);
  std::string blob;
  cc_->SaveState(&blob);
  util::PutString(out, blob);
}

bool ShardRuntime::RestoreState(util::ByteCursor* cur) {
  const std::uint64_t n = cur->U64();
  if (!cur->ok() || n != clients_.size()) return false;
  std::vector<Client> clients(clients_.size());
  for (Client& client : clients) {
    client.alive = cur->U8() != 0;
    client.extender = cur->I32();
    client.rejoin_round = cur->U64();
    if (!cur->ok() || client.extender < -1 ||
        client.extender >= static_cast<int>(truth_.NumExtenders())) {
      return false;
    }
  }
  std::vector<std::uint64_t> down;
  if (!cur->U64Vec(&down)) return false;
  const std::string blob = cur->String();
  if (!cur->ok() || down.size() != down_until_.size()) return false;

  std::unique_ptr<core::CentralController> cc = MakeController();
  util::ByteCursor blob_cur(blob);
  if (!cc->RestoreState(&blob_cur)) return false;

  clients_ = std::move(clients);
  down_until_ = std::move(down);
  for (std::size_t j = 0; j < truth_.NumExtenders(); ++j) {
    truth_.SetPlcRate(j, down_until_[j] != 0 ? 0.0 : base_plc_[j]);
  }
  cc_ = std::move(cc);
  return true;
}

}  // namespace wolt::fleet
