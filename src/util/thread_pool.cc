#include "util/thread_pool.h"

#include <algorithm>

namespace wolt::util {

ThreadPool::ThreadPool(int num_threads) {
  const int executors = std::max(1, num_threads);
  shards_.resize(static_cast<std::size_t>(executors));
  workers_.reserve(static_cast<std::size_t>(executors - 1));
  for (int w = 1; w < executors; ++w) {
    workers_.emplace_back(
        [this, w] { WorkerLoop(static_cast<std::size_t>(w)); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  // Taking run_mu_ first means an in-flight ParallelFor (which holds it for
  // its whole duration) completes every claimed task before the workers are
  // told to exit; a ParallelFor that loses the race for run_mu_ observes
  // shutdown_ and rejects. Either way no job is ever torn down mid-run.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

bool ThreadPool::ParallelFor(std::size_t num_tasks, std::size_t chunk,
                             const std::function<void(std::size_t)>& fn,
                             const std::atomic<bool>* cancel) {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;  // rejected: nothing runs after Shutdown()
  }
  if (num_tasks == 0) return true;

  const std::size_t executors = shards_.size();
  if (chunk == 0) {
    chunk = std::max<std::size_t>(1, num_tasks / (executors * 8));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    cancel_ = cancel;
    chunk_ = chunk;
    // Even contiguous shards; the first (num_tasks % executors) shards get
    // one extra index.
    const std::size_t base = num_tasks / executors;
    const std::size_t extra = num_tasks % executors;
    std::size_t begin = 0;
    for (std::size_t s = 0; s < executors; ++s) {
      const std::size_t len = base + (s < extra ? 1 : 0);
      shards_[s].next.store(begin, std::memory_order_relaxed);
      shards_[s].end = begin + len;
      begin += len;
    }
    workers_running_ = static_cast<int>(workers_.size());
    ++job_epoch_;
  }
  job_cv_.notify_all();

  RunShards(0);

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return workers_running_ == 0; });
    fn_ = nullptr;
    cancel_ = nullptr;
  }

  bool complete = true;
  for (const Shard& s : shards_) {
    if (s.next.load(std::memory_order_relaxed) < s.end) complete = false;
  }
  return complete;
}

void ThreadPool::WorkerLoop(std::size_t home) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [this, seen_epoch] {
        return shutdown_ || job_epoch_ != seen_epoch;
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
    }
    RunShards(home);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --workers_running_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::RunShards(std::size_t home) {
  const std::size_t n = shards_.size();
  for (std::size_t k = 0; k < n; ++k) {
    Shard& shard = shards_[(home + k) % n];
    for (;;) {
      if (cancel_ && cancel_->load(std::memory_order_relaxed)) return;
      const std::size_t begin =
          shard.next.fetch_add(chunk_, std::memory_order_relaxed);
      if (begin >= shard.end) break;
      if (k > 0) steals_.fetch_add(1, std::memory_order_relaxed);
      const std::size_t end = std::min(begin + chunk_, shard.end);
      for (std::size_t i = begin; i < end; ++i) (*fn_)(i);
    }
  }
}

}  // namespace wolt::util
