// Aligned ASCII table rendering for the benchmark harness. Every figure/table
// reproduction prints its rows through this so that `bench_*` output is
// directly comparable to the paper's reported series.
#pragma once

#include <string>
#include <vector>

namespace wolt::util {

// Builds a fixed-column text table. Numeric cells are formatted by the
// caller (use Fmt below) so the table itself only aligns strings.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Render with column padding and a header separator, e.g.
  //   policy   aggregate_mbps   gain
  //   ------   --------------   ----
  //   WOLT     412.3            2.5x
  std::string Render() const;

  // Render and write to stdout.
  void Print() const;

  std::size_t RowCount() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Format a double with `digits` decimal places.
std::string Fmt(double value, int digits = 2);

// Format as percentage with sign, e.g. "+26.1%".
std::string FmtPct(double fraction, int digits = 1);

}  // namespace wolt::util
