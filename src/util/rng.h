// Deterministic, seedable random number generation for simulations.
//
// All stochastic components in this repository draw from wolt::util::Rng so
// that every experiment is reproducible from a single 64-bit seed. The
// generator is xoshiro256** seeded via splitmix64, which has far better
// statistical behaviour than std::minstd and, unlike std::mt19937, a small
// state that is cheap to fork per-trial.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace wolt::util {

// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t SplitMix64(std::uint64_t& state);

// Order-sensitive 64-bit hash combiner built on the splitmix64 mixer.
// Used to fold axis values (e.g. a sweep replicate seed) into a master seed
// without correlating the derived streams.
std::uint64_t HashCombine64(std::uint64_t a, std::uint64_t b);

// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator, so it can
// also be plugged into <random> distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

  std::uint64_t Next();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int UniformInt(int lo, int hi);

  // Standard normal via Box-Muller (no cached spare; simple and stateless).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Lognormal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  // Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double Exponential(double rate);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64 to stay O(1)).
  int Poisson(double mean);

  // Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      int j = UniformInt(0, i);
      std::swap(v[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(j)]);
    }
  }

  // Derive an independent child generator (e.g. one per trial) without
  // correlating streams.
  Rng Fork();

  // Deterministic parallel substream: the generator whose state words are
  // the splitmix64 outputs at positions [4*stream_index, 4*stream_index + 4)
  // of the stream seeded by `master_seed`. Because splitmix64's state
  // advances by a fixed increment per draw, the jump to any stream index is
  // O(1). Substream(m, 0) is exactly Rng(m), and distinct indices yield
  // disjoint seed material, so a sweep can hand task k its own stream purely
  // from (master_seed, k) — never from thread identity — and an N-thread run
  // draws bit-identical randomness to a 1-thread run.
  static Rng Substream(std::uint64_t master_seed, std::uint64_t stream_index);

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace wolt::util
