// Crash-atomic file emission, shared by every reporter and bench that
// writes an artefact (sweep CSV/JSON, metrics snapshots, traces, saved
// networks). The contract: readers of `path` observe either the previous
// complete file or the new complete file, never a torn intermediate —
// achieved by writing a sibling temp file, fsync'ing it, and rename(2)'ing
// it over the destination (atomic within a filesystem), then fsync'ing the
// directory so the rename itself survives a crash.
//
// All I/O routes through an io::Vfs (nullptr = the real filesystem), so the
// storage fault plane (fault/storage.h) can inject short writes, ENOSPC,
// fsync lies and torn renames underneath these writers; the old-or-new
// property is proven against every such schedule by
// tests/storage_fault_test.cc.
#pragma once

#include <ostream>
#include <streambuf>
#include <string>

#include "io/vfs.h"

namespace wolt::util {

// Writes `contents` to `path` atomically (temp sibling + fsync + rename +
// directory fsync), retrying EINTR and short writes. On failure any existing
// file is left untouched, the temp file is cleaned up, and the returned
// status carries the errno of the first failing primitive (so callers can
// tell ENOSPC from EIO).
io::IoStatus WriteFileAtomic(const std::string& path,
                             const std::string& contents,
                             io::Vfs* vfs = nullptr);

// Streaming variant for writers that build output incrementally (CsvWriter).
// All bytes go to `<path>.tmp`; nothing is visible at `path` until Commit()
// (called explicitly or by the destructor) renames the finished temp file
// into place. A crash mid-write leaves only the temp file behind — the
// destination is never torn.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path, io::Vfs* vfs = nullptr);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // Whether the temp file opened and no write/commit error has occurred.
  bool ok() const { return status_.ok() && !stream_.fail(); }

  // First error encountered (open, write, fsync, close, rename), with its
  // errno. Remains Ok() while the writer is healthy.
  const io::IoStatus& status() const { return status_; }

  std::ostream& stream() { return stream_; }

  // Flush + fsync the temp file, rename it over the destination, fsync the
  // directory. Idempotent; on failure removes the temp file, leaves the
  // destination untouched, and returns the first failing primitive's status.
  // Called by the destructor if not called explicitly.
  io::IoStatus Commit();

  // Drop the temp file without touching the destination.
  void Abandon();

 private:
  // std::streambuf that drains into the Vfs file via io::WriteAll, so
  // stream() callers keep ostream formatting while every byte still crosses
  // the fault-injectable seam.
  class Buf : public std::streambuf {
   public:
    void Reset(io::Vfs* vfs, int fd, io::IoStatus* status);

   protected:
    int overflow(int ch) override;
    int sync() override;

   private:
    bool FlushBuffer();
    io::Vfs* vfs_ = nullptr;
    int fd_ = -1;
    io::IoStatus* status_ = nullptr;
    char data_[4096];
  };

  std::string path_;
  std::string tmp_path_;
  io::Vfs* vfs_;
  int fd_ = -1;
  io::IoStatus status_;
  Buf buf_;
  std::ostream stream_;
  bool done_ = false;
};

}  // namespace wolt::util
