// Crash-atomic file emission, shared by every reporter and bench that
// writes an artefact (sweep CSV/JSON, metrics snapshots, traces, saved
// networks). The contract: readers of `path` observe either the previous
// complete file or the new complete file, never a torn intermediate —
// achieved by writing a sibling temp file, fsync'ing it, and rename(2)'ing
// it over the destination (atomic within a filesystem), then fsync'ing the
// directory so the rename itself survives a crash.
#pragma once

#include <fstream>
#include <string>

namespace wolt::util {

// Writes `contents` to `path` atomically (temp sibling + fsync + rename +
// directory fsync). Returns false and leaves any existing file untouched on
// failure; the temp file is cleaned up.
bool WriteFileAtomic(const std::string& path, const std::string& contents);

// Streaming variant for writers that build output incrementally (CsvWriter).
// All bytes go to `<path>.tmp`; nothing is visible at `path` until Commit()
// (called explicitly or by the destructor) renames the finished temp file
// into place. A crash mid-write leaves only the temp file behind — the
// destination is never torn.
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path);
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  // Whether the temp file opened and no write/commit error has occurred.
  bool ok() const { return ok_ && static_cast<bool>(out_); }

  std::ostream& stream() { return out_; }

  // Flush + fsync the temp file, rename it over the destination, fsync the
  // directory. Idempotent; returns false (and removes the temp file) on any
  // failure. Called by the destructor if not called explicitly.
  bool Commit();

  // Drop the temp file without touching the destination.
  void Abandon();

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  bool ok_ = false;
  bool done_ = false;
};

}  // namespace wolt::util
