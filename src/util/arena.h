// Bump allocator for the solver hot paths (assign/ and core/).
//
// A SolverArena owns a chain of geometrically growing blocks; Alloc<T>(n)
// bumps a cursor, Reset() rewinds it to the first block without releasing
// anything. A solver that allocates its scratch from an arena and resets it
// per solve reaches a steady state after the first call: every later solve
// reuses the warmed blocks and performs zero heap allocations. Block growth
// is observable (`arena.grows` / `arena.block_bytes` solver counters), which
// is how tests assert the steady state instead of trusting it.
//
// Lifetime rules:
//  * Alloc'd memory is valid until the next Reset() (or destruction). The
//    arena never runs destructors — only trivially destructible element
//    types are accepted.
//  * Reset() does not shrink: capacity is retained for the next solve.
//  * One arena serves one solve at a time. Concurrent solves (the in-solve
//    parallel multi-start) each take their own arena.
//
// Under AddressSanitizer every Reset() poisons the retained blocks and each
// Alloc unpoisons exactly the returned range, so touching memory from a
// previous solve (use-after-reset) faults like a heap use-after-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "obs/obs.h"

#if defined(__SANITIZE_ADDRESS__)
#define WOLT_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define WOLT_ARENA_ASAN 1
#endif
#endif
#ifndef WOLT_ARENA_ASAN
#define WOLT_ARENA_ASAN 0
#endif

#if WOLT_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace wolt::util {

class SolverArena {
 public:
  // `first_block_bytes` sizes the initial block lazily allocated on first
  // use; later blocks double. 64 KiB comfortably holds the Hungarian
  // scratch of a 1000-user instance in one block.
  explicit SolverArena(std::size_t first_block_bytes = 64 * 1024)
      : first_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

  SolverArena(const SolverArena&) = delete;
  SolverArena& operator=(const SolverArena&) = delete;

  // Uninitialized storage for n values of T, aligned for T. n == 0 returns
  // a non-null aligned pointer that must not be dereferenced.
  template <typename T>
  T* Alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    return static_cast<T*>(AllocBytes(n * sizeof(T), alignof(T)));
  }

  // Storage for n values of T, each initialized to `fill`.
  template <typename T>
  T* AllocFill(std::size_t n, T fill) {
    T* p = Alloc<T>(n);
    for (std::size_t k = 0; k < n; ++k) p[k] = fill;
    return p;
  }

  // Rewind to empty, keeping every block for reuse. Under ASan the retained
  // blocks are poisoned so stale pointers from before the reset fault.
  void Reset() {
    block_ = 0;
    offset_ = 0;
#if WOLT_ARENA_ASAN
    for (const Block& b : blocks_) {
      __asan_poison_memory_region(b.data.get(), b.cap);
    }
#endif
  }

  // Fresh block allocations since construction. Flat across a window of
  // Reset()+solve cycles == those solves did not touch the heap through
  // this arena (the steady-state assertion used by tests).
  std::uint64_t grows() const { return grows_; }

  // Total bytes owned across all blocks.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.cap;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t cap = 0;
  };

  void* AllocBytes(std::size_t bytes, std::size_t align) {
    while (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const std::size_t base =
          reinterpret_cast<std::size_t>(b.data.get()) + offset_;
      const std::size_t pad = (align - base % align) % align;
      if (offset_ + pad + bytes <= b.cap) {
        unsigned char* p = b.data.get() + offset_ + pad;
        offset_ += pad + bytes;
#if WOLT_ARENA_ASAN
        __asan_unpoison_memory_region(p, bytes);
#endif
        return p;
      }
      ++block_;  // spill into the next retained block
      offset_ = 0;
    }
    return Grow(bytes, align);
  }

  void* Grow(std::size_t bytes, std::size_t align) {
    std::size_t cap =
        blocks_.empty() ? first_block_bytes_ : blocks_.back().cap * 2;
    // New blocks come from operator new[], which aligns for max_align_t;
    // oversize requests get their own exactly-fitting block.
    if (cap < bytes + align) cap = bytes + align;
    Block b;
    b.data = std::make_unique<unsigned char[]>(cap);
    b.cap = cap;
    blocks_.push_back(std::move(b));
    ++grows_;
    if (obs::MetricsScope* s = obs::CurrentScope()) {
      s->solver.arena_grows.Add(1);
      s->solver.arena_block_bytes.Add(cap);
    }
    block_ = blocks_.size() - 1;
    const std::size_t base =
        reinterpret_cast<std::size_t>(blocks_.back().data.get());
    const std::size_t pad = (align - base % align) % align;
    unsigned char* p = blocks_.back().data.get() + pad;
    offset_ = pad + bytes;
#if WOLT_ARENA_ASAN
    __asan_poison_memory_region(blocks_.back().data.get(), cap);
    __asan_unpoison_memory_region(p, bytes);
#endif
    return p;
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   // index of the block the cursor is in
  std::size_t offset_ = 0;  // bytes consumed in that block
  std::size_t first_block_bytes_;
  std::uint64_t grows_ = 0;
};

}  // namespace wolt::util
