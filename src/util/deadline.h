// Cooperative wall-clock budget token for the anytime control plane.
//
// A Deadline is threaded by pointer through the assign/ solvers (Hungarian,
// Phase-II local search, NLP); each solver polls Expired() at the boundary
// of one bounded unit of work (one Hungarian row augmentation, one user
// relocation scan, one NLP ascent iteration) and, on expiry, stops early
// returning its best-so-far *valid* state. A null pointer means no budget,
// and an unexpired deadline never changes a solver's behaviour — so the
// budgeted path with a generous budget is bit-identical to the unbudgeted
// one (tested by tests/deadline_test.cc).
//
// Expiry is sticky: once Expired() has observed the clock past the
// deadline, every later call returns true without consulting the clock
// again, so a solve that starts truncating keeps truncating even if the
// clock were to misbehave. The flag is mutable so solvers can hold the
// token as `const Deadline*`.
#pragma once

#include <chrono>

namespace wolt::util {

class Deadline {
 public:
  // Default: unlimited — Expired() is always false.
  Deadline() = default;

  // Budget of `seconds` starting now. Non-positive budgets are born
  // expired (deterministic, clock-free — what the adversarial tests use).
  static Deadline After(double seconds) {
    Deadline d;
    d.unlimited_ = false;
    if (seconds <= 0.0) {
      d.expired_ = true;
    } else {
      d.deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds));
    }
    return d;
  }

  bool unlimited() const { return unlimited_; }

  // True once the budget is exhausted; sticky thereafter.
  bool Expired() const {
    if (unlimited_) return false;
    if (!expired_ && std::chrono::steady_clock::now() >= deadline_) {
      expired_ = true;
    }
    return expired_;
  }

 private:
  std::chrono::steady_clock::time_point deadline_{};
  bool unlimited_ = true;
  mutable bool expired_ = false;
};

// Poll helper for optional deadlines: null = no budget.
inline bool DeadlineExpired(const Deadline* d) {
  return d != nullptr && d->Expired();
}

}  // namespace wolt::util
