#include "util/csv.h"

namespace wolt::util {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string escaped = "\"";
  for (char ch : field) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header,
                     io::Vfs* vfs)
    : out_(path, vfs), columns_(header.size()) {
  if (out_.ok()) AddRow(header);
}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  if (!out_.ok()) return;
  for (std::size_t c = 0; c < columns_; ++c) {
    if (c) out_.stream() << ',';
    if (c < cells.size()) out_.stream() << CsvEscape(cells[c]);
  }
  out_.stream() << '\n';
}

}  // namespace wolt::util
