// Binary payload codec shared by every crash-recovery artefact (the sweep
// journal in recover/journal.cc, the fleet journal in recover/fleet_journal.cc
// and the controller/fleet state snapshots). Fixed-width integers stored in
// native byte order and raw 8-byte doubles: these are same-machine recovery
// formats, not interchange formats, so native order is fine and gives exact
// double round trips for free — which the byte-identical-resume contract
// requires.
//
// Writing appends to a std::string; reading goes through ByteCursor, a
// bounds-checked sequential reader that poisons itself on any overrun (all
// further reads yield zeros and ok() turns false), so a truncated or corrupt
// payload can never run past its buffer or trigger a huge allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace wolt::util {

inline void PutU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, std::uint32_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out->append(buf, sizeof v);
}

inline void PutU64(std::string* out, std::uint64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out->append(buf, sizeof v);
}

inline void PutI64(std::string* out, std::int64_t v) {
  PutU64(out, static_cast<std::uint64_t>(v));
}

inline void PutI32(std::string* out, std::int32_t v) {
  PutU32(out, static_cast<std::uint32_t>(v));
}

inline void PutDouble(std::string* out, double v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out->append(buf, sizeof v);
}

inline void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

// Bounds-checked sequential reader over a payload; any overrun poisons it.
class ByteCursor {
 public:
  ByteCursor(const char* data, std::size_t size) : p_(data), left_(size) {}
  explicit ByteCursor(const std::string& s) : ByteCursor(s.data(), s.size()) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && left_ == 0; }

  std::uint8_t U8() {
    std::uint8_t v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  std::uint32_t U32() {
    std::uint32_t v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  double Double() {
    double v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  std::string String() {
    const std::uint64_t n = U64();
    if (!ok_ || n > left_) {
      ok_ = false;
      return {};
    }
    std::string s(p_, static_cast<std::size_t>(n));
    p_ += n;
    left_ -= static_cast<std::size_t>(n);
    return s;
  }

  // Length-prefixed vectors. The element count is validated against the
  // bytes remaining before allocating, so a corrupt length cannot trigger a
  // huge allocation.
  bool DoubleVec(std::vector<double>* out) {
    const std::uint64_t n = U64();
    if (!ok_ || n > left_ / sizeof(double)) {
      ok_ = false;
      return false;
    }
    out->resize(static_cast<std::size_t>(n));
    for (double& v : *out) v = Double();
    return ok_;
  }
  bool U64Vec(std::vector<std::uint64_t>* out) {
    const std::uint64_t n = U64();
    if (!ok_ || n > left_ / sizeof(std::uint64_t)) {
      ok_ = false;
      return false;
    }
    out->resize(static_cast<std::size_t>(n));
    for (std::uint64_t& v : *out) v = U64();
    return ok_;
  }
  bool I64Vec(std::vector<std::int64_t>* out) {
    const std::uint64_t n = U64();
    if (!ok_ || n > left_ / sizeof(std::int64_t)) {
      ok_ = false;
      return false;
    }
    out->resize(static_cast<std::size_t>(n));
    for (std::int64_t& v : *out) v = I64();
    return ok_;
  }
  bool I32Vec(std::vector<int>* out) {
    const std::uint64_t n = U64();
    if (!ok_ || n > left_ / sizeof(std::int32_t)) {
      ok_ = false;
      return false;
    }
    out->resize(static_cast<std::size_t>(n));
    for (int& v : *out) v = I32();
    return ok_;
  }

 private:
  void Raw(void* dst, std::size_t n) {
    if (!ok_ || n > left_) {
      ok_ = false;
      std::memset(dst, 0, n);
      return;
    }
    std::memcpy(dst, p_, n);
    p_ += n;
    left_ -= n;
  }

  const char* p_;
  std::size_t left_;
  bool ok_ = true;
};

inline void PutI64Vec(std::string* out, const std::vector<std::int64_t>& v) {
  PutU64(out, v.size());
  for (std::int64_t x : v) PutI64(out, x);
}

inline void PutI32Vec(std::string* out, const std::vector<int>& v) {
  PutU64(out, v.size());
  for (int x : v) PutI32(out, x);
}

inline void PutU64Vec(std::string* out, const std::vector<std::uint64_t>& v) {
  PutU64(out, v.size());
  for (std::uint64_t x : v) PutU64(out, x);
}

inline void PutDoubleVec(std::string* out, const std::vector<double>& v) {
  PutU64(out, v.size());
  for (double x : v) PutDouble(out, x);
}

}  // namespace wolt::util
