// Fixed-size thread pool executing indexed task spaces with chunked
// work-stealing — the concurrency substrate of the sweep engine.
//
// ParallelFor(num_tasks, ...) splits [0, num_tasks) into one contiguous
// shard per executor; each executor drains its own shard in chunks via an
// atomic cursor, then steals chunks from the other shards. Every index runs
// exactly once, on some executor, in some order — so anything an fn() writes
// must land in an index-addressed slot, and any cross-task reduction must
// happen after ParallelFor returns, in task-index order, if the caller wants
// thread-count-independent results (see SweepEngine).
//
// The calling thread is executor 0: ThreadPool(1) spawns no threads at all
// and degenerates to a sequential loop, which is what makes "1-thread run"
// a meaningful determinism baseline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wolt::util {

class ThreadPool {
 public:
  // `num_threads` is the total executor count including the caller; values
  // < 1 are clamped to 1. ThreadPool(n) spawns n-1 worker threads.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(shards_.size()); }

  // Deterministic teardown, callable before destruction (the destructor
  // calls it too). Blocks until any in-flight ParallelFor has fully
  // completed (every claimed task ran), then joins the workers. After
  // Shutdown returns, every subsequent ParallelFor is rejected: it runs
  // nothing and returns false. So work racing a shutdown has exactly two
  // deterministic outcomes — it ran to completion (call won the race) or
  // nothing at all ran (call lost it) — never a partial job. Must not be
  // called from inside a ParallelFor task (it would self-deadlock on the
  // in-flight job). Idempotent.
  void Shutdown();

  // Runs fn(i) for every i in [0, num_tasks), blocking until all claimed
  // tasks finish. `chunk` is the steal granularity (0 = auto: shards split
  // ~8 chunks per executor). If `cancel` is non-null and becomes true,
  // executors stop claiming new chunks (already-claimed tasks still run to
  // completion); returns false iff cancelled before all tasks ran. fn must
  // not throw. Calls from multiple threads serialize. Once Shutdown() has
  // run (or begun and won the serialization race), calls are rejected:
  // nothing runs and the call returns false.
  bool ParallelFor(std::size_t num_tasks, std::size_t chunk,
                   const std::function<void(std::size_t)>& fn,
                   const std::atomic<bool>* cancel = nullptr);

  // Chunks claimed from a foreign shard since construction (scheduling
  // telemetry; inherently thread-count- and timing-dependent).
  std::uint64_t StealCount() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  // One contiguous shard of the index space; `next` is bumped by the owner
  // and by thieves alike, so a task index is claimed exactly once.
  struct alignas(64) Shard {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;

    Shard() = default;
    // Copyable so std::vector can size the shard array (only ever done
    // before a job is published, never while executors run).
    Shard(const Shard& other)
        : next(other.next.load(std::memory_order_relaxed)), end(other.end) {}
  };

  void WorkerLoop(std::size_t home);
  // Drains shards starting from `home`, then steals round-robin.
  void RunShards(std::size_t home);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_cv_;   // workers wait here for a job / shutdown
  std::condition_variable done_cv_;  // ParallelFor waits here for completion
  bool shutdown_ = false;
  std::uint64_t job_epoch_ = 0;  // bumped per ParallelFor, under mu_
  int workers_running_ = 0;      // workers still inside the current job

  // Current job (valid while workers_running_ > 0 or the caller is in
  // RunShards). Written under mu_ before the epoch bump publishes it.
  const std::function<void(std::size_t)>* fn_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;
  std::size_t chunk_ = 1;
  std::vector<Shard> shards_;
  std::atomic<bool> incomplete_{false};  // a chunk was left unclaimed
  std::atomic<std::uint64_t> steals_{0};

  std::mutex run_mu_;  // serializes concurrent ParallelFor calls
};

}  // namespace wolt::util
