#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace wolt::util {
namespace {

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t HashCombine64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a;
  const std::uint64_t ha = SplitMix64(state);
  state ^= b;
  return ha ^ SplitMix64(state);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

Rng Rng::Substream(std::uint64_t master_seed, std::uint64_t stream_index) {
  // splitmix64 state after k draws is seed + k * gamma, so jumping the
  // master stream to the 4-word block of `stream_index` is one multiply.
  Rng rng(master_seed + 4 * stream_index * 0x9E3779B97F4A7C15ULL);
  return rng;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int Rng::UniformInt(int lo, int hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(Next() % span);
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * mag;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Exponential(double rate) {
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -std::log(u) / rate;
}

int Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; exact Knuth sampling
    // would need exp(-mean) which underflows for large means.
    const int k = static_cast<int>(std::lround(Normal(mean, std::sqrt(mean))));
    return k < 0 ? 0 : k;
  }
  const double limit = std::exp(-mean);
  double prod = NextDouble();
  int count = 0;
  while (prod > limit) {
    ++count;
    prod *= NextDouble();
  }
  return count;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace wolt::util
