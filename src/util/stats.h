// Descriptive statistics used across the benchmark harness and tests:
// means, deviations, percentiles, empirical CDFs, and Jain's fairness index
// (the fairness metric reported in the paper's §V-E).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace wolt::util {

double Mean(std::span<const double> xs);
double Variance(std::span<const double> xs);  // population variance
double StdDev(std::span<const double> xs);
double Min(std::span<const double> xs);
double Max(std::span<const double> xs);
double Sum(std::span<const double> xs);
double Median(std::span<const double> xs);

// Linear-interpolation percentile, p in [0, 100]. Empty input -> 0.
double Percentile(std::span<const double> xs, double p);

// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1.0 when all equal,
// -> 1/n when one value dominates. Empty or all-zero input -> 1.0 (vacuously
// fair), matching the usual convention.
double JainFairnessIndex(std::span<const double> xs);

// A point on an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double cumulative_probability = 0.0;
};

// Empirical CDF of the sample: sorted values with cumulative probability
// i/n at the i-th sorted value (i = 1..n).
std::vector<CdfPoint> EmpiricalCdf(std::span<const double> xs);

// Evaluate the empirical CDF of `xs` at `value` (fraction of samples <= value).
double CdfAt(std::span<const double> xs, double value);

// Mergeable statistics accumulator for the parallel sweep engine: Welford
// mean/variance (merged with Chan's parallel formula), min/max/sum/sum-of-
// squares (for Jain's index), and the raw samples for exact percentiles.
//
// Merging is associative in value but NOT bit-associative: floating-point
// merge results depend on operand order. Callers that need bit-identical
// results across thread counts must merge partial accumulators in a fixed
// order (the sweep engine merges in task-index order) — then the result is
// a pure function of the inputs, independent of which thread produced each
// partial.
class Accumulator {
 public:
  void Add(double x);
  // Folds `other` into this accumulator (Chan's parallel Welford update;
  // samples are appended in order).
  void Merge(const Accumulator& other);

  std::size_t Count() const { return n_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  double Variance() const;  // population variance
  double StdDev() const;
  double Min() const { return n_ ? min_ : 0.0; }
  double Max() const { return n_ ? max_ : 0.0; }
  double Sum() const { return sum_; }
  double SumSquares() const { return sum_sq_; }
  // Jain's fairness index over everything added, same convention as
  // JainFairnessIndex (empty / all-zero -> 1.0).
  double Jain() const;
  // Exact linear-interpolation percentile over the retained samples.
  double Percentile(double p) const;
  const std::vector<double>& Samples() const { return samples_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  std::vector<double> samples_;
};

// Online accumulator for streaming mean/variance (Welford).
class RunningStats {
 public:
  void Add(double x);
  std::size_t Count() const { return n_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  double Variance() const;  // population variance
  double StdDev() const;
  double Min() const { return n_ ? min_ : 0.0; }
  double Max() const { return n_ ? max_ : 0.0; }
  double Sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace wolt::util
