#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace wolt::util {

double Sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double Mean(std::span<const double> xs) {
  return xs.empty() ? 0.0 : Sum(xs) / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Min(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double Median(std::span<const double> xs) { return Percentile(xs, 50.0); }

double Percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double JainFairnessIndex(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

std::vector<CdfPoint> EmpiricalCdf(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

double CdfAt(std::span<const double> xs, double value) {
  if (xs.empty()) return 0.0;
  std::size_t count = 0;
  for (double x : xs) {
    if (x <= value) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

}  // namespace wolt::util
