#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace wolt::util {

double Sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double Mean(std::span<const double> xs) {
  return xs.empty() ? 0.0 : Sum(xs) / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Min(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double Median(std::span<const double> xs) { return Percentile(xs, 50.0); }

double Percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double JainFairnessIndex(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

std::vector<CdfPoint> EmpiricalCdf(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

double CdfAt(std::span<const double> xs, double value) {
  if (xs.empty()) return 0.0;
  std::size_t count = 0;
  for (double x : xs) {
    if (x <= value) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(xs.size());
}

void Accumulator::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  samples_.push_back(x);
}

void Accumulator::Merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  // Chan et al.'s pairwise update; deterministic for a fixed operand order.
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  mean_ += delta * nb / (na + nb);
  n_ += other.n_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

double Accumulator::Variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double Accumulator::StdDev() const { return std::sqrt(Variance()); }

double Accumulator::Jain() const {
  if (n_ == 0 || sum_sq_ == 0.0) return 1.0;
  return sum_ * sum_ / (static_cast<double>(n_) * sum_sq_);
}

double Accumulator::Percentile(double p) const {
  return util::Percentile(samples_, p);
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

}  // namespace wolt::util
