#include "util/fileio.h"

#include <cerrno>

namespace wolt::util {

io::IoStatus WriteFileAtomic(const std::string& path,
                             const std::string& contents, io::Vfs* vfs_in) {
  io::Vfs& vfs = io::OrDefault(vfs_in);
  const std::string tmp = path + ".tmp";
  io::IoStatus st;
  const int fd = vfs.OpenWrite(tmp, io::Vfs::OpenMode::kTruncate, &st);
  if (fd < 0) return st;
  st = io::WriteAll(vfs, fd, contents);
  if (st.ok()) st = io::FsyncRetry(vfs, fd);
  const io::IoStatus close_st = vfs.Close(fd);
  if (st.ok()) st = close_st;
  if (!st.ok()) {
    vfs.Remove(tmp);
    return st;
  }
  st = vfs.Rename(tmp, path);
  if (!st.ok()) {
    vfs.Remove(tmp);
    return st;
  }
  // Best-effort: some filesystems refuse O_RDONLY directory syncs, and the
  // rename itself is already atomic for readers.
  vfs.SyncDir(io::DirOf(path));
  return io::IoStatus::Ok();
}

// --- AtomicFileWriter::Buf --------------------------------------------------

void AtomicFileWriter::Buf::Reset(io::Vfs* vfs, int fd, io::IoStatus* status) {
  vfs_ = vfs;
  fd_ = fd;
  status_ = status;
  setp(data_, data_ + sizeof(data_));
}

bool AtomicFileWriter::Buf::FlushBuffer() {
  if (fd_ < 0) return false;
  const std::size_t n = static_cast<std::size_t>(pptr() - pbase());
  if (n > 0) {
    const io::IoStatus st = io::WriteAll(*vfs_, fd_, {pbase(), n});
    if (!st.ok()) {
      if (status_->ok()) *status_ = st;  // first error wins
      return false;
    }
  }
  setp(data_, data_ + sizeof(data_));
  return true;
}

int AtomicFileWriter::Buf::overflow(int ch) {
  if (!FlushBuffer()) return traits_type::eof();
  if (ch != traits_type::eof()) sputc(static_cast<char>(ch));
  return ch == traits_type::eof() ? 0 : ch;
}

int AtomicFileWriter::Buf::sync() { return FlushBuffer() ? 0 : -1; }

// --- AtomicFileWriter -------------------------------------------------------

AtomicFileWriter::AtomicFileWriter(std::string path, io::Vfs* vfs)
    : path_(std::move(path)),
      tmp_path_(path_ + ".tmp"),
      vfs_(&io::OrDefault(vfs)),
      stream_(&buf_) {
  fd_ = vfs_->OpenWrite(tmp_path_, io::Vfs::OpenMode::kTruncate, &status_);
  if (fd_ < 0) {
    done_ = true;  // nothing to commit or clean up
    stream_.setstate(std::ios::badbit);
    return;
  }
  buf_.Reset(vfs_, fd_, &status_);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!done_) Commit();
}

io::IoStatus AtomicFileWriter::Commit() {
  if (done_) return status_;
  done_ = true;
  stream_.flush();  // drains Buf through the Vfs
  if (status_.ok()) status_ = io::FsyncRetry(*vfs_, fd_);
  const io::IoStatus close_st = vfs_->Close(fd_);
  if (status_.ok()) status_ = close_st;
  fd_ = -1;
  if (!status_.ok()) {
    vfs_->Remove(tmp_path_);
    return status_;
  }
  status_ = vfs_->Rename(tmp_path_, path_);
  if (!status_.ok()) {
    vfs_->Remove(tmp_path_);
    return status_;
  }
  vfs_->SyncDir(io::DirOf(path_));  // best-effort, see WriteFileAtomic
  return status_;
}

void AtomicFileWriter::Abandon() {
  if (done_) return;
  done_ = true;
  status_ = io::IoStatus::Fail("abandon", ECANCELED);
  vfs_->Close(fd_);
  fd_ = -1;
  vfs_->Remove(tmp_path_);
}

}  // namespace wolt::util
