#include "util/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace wolt::util {
namespace {

// fsync by path; returns false when the file cannot be opened or synced.
bool SyncPath(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

std::string DirOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

// fsync file contents, rename over the destination, fsync the directory so
// the rename is durable too. The directory fsync is best-effort: some
// filesystems refuse O_RDONLY directory syncs, and the rename itself is
// already atomic for readers.
bool CommitTemp(const std::string& tmp, const std::string& path) {
  if (!SyncPath(tmp, O_WRONLY)) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  SyncPath(DirOf(path), O_RDONLY);
  return true;
}

}  // namespace

bool WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << contents;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  return CommitTemp(tmp, path);
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp") {
  out_.open(tmp_path_, std::ios::binary | std::ios::trunc);
  ok_ = static_cast<bool>(out_);
  if (!ok_) done_ = true;  // nothing to commit or clean up
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!done_) Commit();
}

bool AtomicFileWriter::Commit() {
  if (done_) return ok_;
  done_ = true;
  out_.flush();
  if (!out_) {
    ok_ = false;
    out_.close();
    std::remove(tmp_path_.c_str());
    return false;
  }
  out_.close();
  ok_ = CommitTemp(tmp_path_, path_);
  return ok_;
}

void AtomicFileWriter::Abandon() {
  if (done_) return;
  done_ = true;
  ok_ = false;
  out_.close();
  std::remove(tmp_path_.c_str());
}

}  // namespace wolt::util
