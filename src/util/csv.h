// Minimal CSV writer used by benches to dump raw series (e.g. CDF points)
// alongside the human-readable tables, so results can be re-plotted.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace wolt::util {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. `ok()` reports
  // whether the stream is usable; benches treat an unwritable path as
  // non-fatal (they still print tables to stdout).
  CsvWriter(const std::string& path, std::vector<std::string> header);

  bool ok() const { return static_cast<bool>(out_); }

  void AddRow(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
  std::size_t columns_ = 0;
};

// RFC-4180-style escaping: quote fields containing comma/quote/newline.
std::string CsvEscape(const std::string& field);

}  // namespace wolt::util
