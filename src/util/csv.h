// Minimal CSV writer used by benches to dump raw series (e.g. CDF points)
// alongside the human-readable tables, so results can be re-plotted.
#pragma once

#include <string>
#include <vector>

#include "util/fileio.h"

namespace wolt::util {

class CsvWriter {
 public:
  // Stages the file at `<path>.tmp` and emits the header row; the finished
  // file appears at `path` atomically when the writer is destroyed (or
  // Commit() is called) — a crash mid-dump never leaves a torn CSV behind.
  // `ok()` reports whether the staging stream is usable; benches treat an
  // unwritable path as non-fatal (they still print tables to stdout).
  // `vfs` = nullptr writes to the real filesystem.
  CsvWriter(const std::string& path, std::vector<std::string> header,
            io::Vfs* vfs = nullptr);

  bool ok() const { return out_.ok(); }

  // First I/O error encountered, with its errno (Ok() while healthy).
  const io::IoStatus& status() const { return out_.status(); }

  void AddRow(const std::vector<std::string>& cells);

  // Finalize: fsync + rename into place. Idempotent; the destructor calls
  // it if the bench does not.
  io::IoStatus Commit() { return out_.Commit(); }

 private:
  AtomicFileWriter out_;
  std::size_t columns_ = 0;
};

// RFC-4180-style escaping: quote fields containing comma/quote/newline.
std::string CsvEscape(const std::string& field);

}  // namespace wolt::util
