#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace wolt::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 3, ' ');
      }
    }
    out << '\n';
  };

  emit_row(header_);
  std::vector<std::string> sep;
  sep.reserve(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    sep.emplace_back(widths[c], '-');
  }
  emit_row(sep);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print() const { std::fputs(Render().c_str(), stdout); }

std::string Fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FmtPct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace wolt::util
