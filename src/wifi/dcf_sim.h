// Slot-level 802.11 DCF simulator.
//
// Purpose: independently validate the throughput-fair WiFi sharing formula
// (Eq. 1) that the flow-level evaluator uses, including the 802.11
// performance anomaly (Heusse et al. [15], reproduced by the paper's Fig. 2a
// measurement): saturated stations win the channel equally often, so a
// slow station drags every station's throughput down to the slow station's
// frame pace.
//
// The simulator implements CSMA/CA with binary exponential backoff: each
// saturated station draws a backoff from [0, CW]; idle slots decrement all
// counters; a sole station at zero transmits successfully (frame airtime
// depends on its own PHY rate, which is what creates the anomaly); multiple
// stations at zero collide and double their CWs. Management frames, capture
// effects and rate adaptation are out of scope — the quantity under test is
// the MAC sharing behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace wolt::wifi {

struct DcfParams {
  double slot_us = 9.0;
  double difs_us = 34.0;
  double sifs_us = 16.0;
  double preamble_us = 20.0;   // PHY preamble + PLCP header
  double ack_us = 44.0;        // ACK frame at base rate incl. preamble
  int payload_bytes = 1500;
  int cw_min = 15;
  int cw_max = 1023;
};

struct DcfStationResult {
  std::int64_t successes = 0;
  std::int64_t collisions = 0;
  double throughput_mbps = 0.0;
  double airtime_share = 0.0;  // fraction of busy time spent on this station
};

struct DcfResult {
  std::vector<DcfStationResult> stations;
  double aggregate_mbps = 0.0;
  std::int64_t collision_events = 0;
  double sim_time_s = 0.0;
};

// Simulate `duration_s` of saturated traffic from stations with the given
// PHY rates (Mbit/s, all > 0). Deterministic given the Rng state.
DcfResult SimulateDcf(std::span<const double> phy_rates_mbps,
                      double duration_s, const DcfParams& params,
                      util::Rng& rng);

// Saturation throughput of a single station at this PHY rate (payload bits
// over the full DIFS + backoff-average + frame + SIFS + ACK cycle). This is
// the "effective rate" to plug into Eq. 1 when comparing the analytic
// formula against the simulator.
double EffectiveRate(double phy_rate_mbps, const DcfParams& params);

// Eq. 1 prediction of the cell aggregate using effective rates:
// n / sum_i 1/r_eff_i.
double AnalyticCellThroughput(std::span<const double> phy_rates_mbps,
                              const DcfParams& params);

}  // namespace wolt::wifi
