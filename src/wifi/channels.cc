#include "wifi/channels.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <stdexcept>

namespace wolt::wifi {

std::vector<std::pair<std::size_t, std::size_t>> InterferenceEdges(
    const model::Network& net, double interference_range_m) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t a = 0; a < net.NumExtenders(); ++a) {
    for (std::size_t b = a + 1; b < net.NumExtenders(); ++b) {
      const double d = model::Distance(net.ExtenderAt(a).position,
                                       net.ExtenderAt(b).position);
      if (d <= interference_range_m) edges.emplace_back(a, b);
    }
  }
  return edges;
}

std::vector<int> AssignChannels(const model::Network& net,
                                const ChannelPlanParams& params) {
  if (params.num_channels <= 0) {
    throw std::invalid_argument("need at least one channel");
  }
  const std::size_t n = net.NumExtenders();
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& [a, b] :
       InterferenceEdges(net, params.interference_range_m)) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }

  // Highest-degree-first order (Welsh-Powell). Ties break on extender id so
  // the plan is a pure function of the instance (std::sort is unstable;
  // without the tie-break equal-degree vertices could colour in any order).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (adj[a].size() != adj[b].size()) return adj[a].size() > adj[b].size();
    return a < b;
  });

  std::vector<int> channel(n, -1);
  for (std::size_t v : order) {
    std::vector<int> used_count(static_cast<std::size_t>(params.num_channels),
                                0);
    for (std::size_t u : adj[v]) {
      if (channel[u] >= 0) ++used_count[static_cast<std::size_t>(channel[u])];
    }
    // First free channel; otherwise the channel least used by neighbours.
    int best = 0;
    for (int c = 0; c < params.num_channels; ++c) {
      if (used_count[static_cast<std::size_t>(c)] <
          used_count[static_cast<std::size_t>(best)]) {
        best = c;
      }
      if (used_count[static_cast<std::size_t>(c)] == 0) {
        best = c;
        break;
      }
    }
    channel[v] = best;
  }
  return channel;
}

std::vector<int> AssignChannelsWeighted(const model::Network& net,
                                        const std::vector<double>& weights,
                                        const ChannelPlanParams& params) {
  if (params.num_channels <= 0) {
    throw std::invalid_argument("need at least one channel");
  }
  const std::size_t n = net.NumExtenders();
  if (weights.size() != n) {
    throw std::invalid_argument("weight vector size mismatch");
  }
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("negative extender weight");
  }
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& [a, b] :
       InterferenceEdges(net, params.interference_range_m)) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }

  // Weighted interference degree: how much neighbour traffic a vertex would
  // contend with if it collided with everyone. Heaviest-conflict vertices
  // colour first, so they get first pick of clean channels.
  std::vector<double> wdeg(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t u : adj[v]) wdeg[v] += weights[u];
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (wdeg[a] != wdeg[b]) return wdeg[a] > wdeg[b];
    return a < b;
  });

  std::vector<int> channel(n, -1);
  std::vector<double> used_weight(static_cast<std::size_t>(params.num_channels),
                                  0.0);
  for (std::size_t v : order) {
    std::fill(used_weight.begin(), used_weight.end(), 0.0);
    for (std::size_t u : adj[v]) {
      if (channel[u] >= 0) {
        used_weight[static_cast<std::size_t>(channel[u])] += weights[u];
      }
    }
    // Channel with the least already-committed neighbour weight; strict <
    // keeps the lowest index on ties (deterministic).
    int best = 0;
    for (int c = 1; c < params.num_channels; ++c) {
      if (used_weight[static_cast<std::size_t>(c)] <
          used_weight[static_cast<std::size_t>(best)]) {
        best = c;
      }
    }
    channel[v] = best;
  }
  return channel;
}

std::vector<int> SameChannelPlan(const model::Network& net) {
  return std::vector<int>(net.NumExtenders(), 0);
}

std::vector<int> ContentionDomains(const model::Network& net,
                                   const std::vector<int>& channels,
                                   double interference_range_m) {
  if (channels.size() != net.NumExtenders()) {
    throw std::invalid_argument("channel vector size mismatch");
  }
  const std::size_t n = net.NumExtenders();
  // Union-find over same-channel interference edges.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& [a, b] : InterferenceEdges(net, interference_range_m)) {
    if (channels[a] == channels[b]) parent[find(a)] = find(b);
  }
  std::vector<int> domain(n, -1);
  int next_id = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t root = find(v);
    if (domain[root] < 0) domain[root] = next_id++;
    domain[v] = domain[root];
  }
  return domain;
}

std::size_t CountConflicts(const model::Network& net,
                           const std::vector<int>& channels,
                           double interference_range_m) {
  if (channels.size() != net.NumExtenders()) {
    throw std::invalid_argument("channel vector size mismatch");
  }
  std::size_t conflicts = 0;
  for (const auto& [a, b] : InterferenceEdges(net, interference_range_m)) {
    if (channels[a] == channels[b]) ++conflicts;
  }
  return conflicts;
}

}  // namespace wolt::wifi
