#include "wifi/mcs.h"

#include <stdexcept>

namespace wolt::wifi {

RateTable::RateTable(std::vector<McsEntry> entries, double mac_efficiency)
    : entries_(std::move(entries)), mac_efficiency_(mac_efficiency) {
  if (entries_.empty()) throw std::invalid_argument("empty MCS table");
  if (mac_efficiency_ <= 0.0 || mac_efficiency_ > 1.0) {
    throw std::invalid_argument("MAC efficiency must be in (0, 1]");
  }
  for (std::size_t k = 1; k < entries_.size(); ++k) {
    if (entries_[k].phy_rate_mbps < entries_[k - 1].phy_rate_mbps ||
        entries_[k].min_rssi_dbm < entries_[k - 1].min_rssi_dbm) {
      throw std::invalid_argument("MCS table must be sorted ascending");
    }
  }
}

const McsEntry* RateTable::McsAtRssi(double rssi_dbm) const {
  const McsEntry* best = nullptr;
  for (const McsEntry& e : entries_) {
    if (rssi_dbm >= e.min_rssi_dbm) best = &e;
  }
  return best;
}

double RateTable::RateAtRssi(double rssi_dbm) const {
  const McsEntry* mcs = McsAtRssi(rssi_dbm);
  return mcs ? mcs->phy_rate_mbps * mac_efficiency_ : 0.0;
}

double RateTable::MaxRate() const {
  return entries_.back().phy_rate_mbps * mac_efficiency_;
}

double RateTable::MinSensitivityDbm() const {
  return entries_.front().min_rssi_dbm;
}

RateTable RateTable::Ieee80211nHt20(double mac_efficiency) {
  // Sensitivity thresholds follow typical 802.11n receiver specs.
  return RateTable(
      {
          {0, -82.0, 6.5, "BPSK 1/2"},
          {1, -79.0, 13.0, "QPSK 1/2"},
          {2, -77.0, 19.5, "QPSK 3/4"},
          {3, -74.0, 26.0, "16-QAM 1/2"},
          {4, -70.0, 39.0, "16-QAM 3/4"},
          {5, -66.0, 52.0, "64-QAM 2/3"},
          {6, -65.0, 58.5, "64-QAM 3/4"},
          {7, -64.0, 65.0, "64-QAM 5/6"},
      },
      mac_efficiency);
}

RateTable RateTable::CiscoAironet80211g(double mac_efficiency) {
  return RateTable(
      {
          {0, -94.0, 6.0, "BPSK 1/2"},
          {1, -91.0, 9.0, "BPSK 3/4"},
          {2, -91.0, 12.0, "QPSK 1/2"},
          {3, -90.0, 18.0, "QPSK 3/4"},
          {4, -86.0, 24.0, "16-QAM 1/2"},
          {5, -84.0, 36.0, "16-QAM 3/4"},
          {6, -79.0, 48.0, "64-QAM 2/3"},
          {7, -77.0, 54.0, "64-QAM 3/4"},
      },
      mac_efficiency);
}

}  // namespace wolt::wifi
