// Indoor radio propagation for the enterprise-floor simulator (§V-A): the
// paper "uses a simple model to simulate the WiFi channel qualities where the
// channel quality is a function of the distance between the extender and the
// user", citing the Cisco Aironet rate-vs-distance datasheet [28]. We provide
// the standard log-distance path-loss model with optional lognormal
// shadowing; wifi/mcs.h maps the resulting RSSI to a PHY rate.
#pragma once

namespace wolt::wifi {

struct PathLossModel {
  // Reference path loss at d0 = 1 m (dB). ~40 dB at 2.4 GHz free space.
  double pl0_db = 40.0;
  // Path-loss exponent; 3.5 reflects an office floor with interior walls
  // and furniture (free space is 2, heavy clutter approaches 4). Chosen so
  // the MCS ladder actually spans the enterprise floor: top rates within
  // ~12 m of an extender, MCS0 around 40 m, unreachable beyond ~45 m.
  double exponent = 3.5;
  // Transmit power (dBm); modest indoor AP setting.
  double tx_power_dbm = 16.0;

  // Path loss at distance d metres (d clamped to >= 0.1 m so co-located
  // nodes do not produce -inf).
  double PathLossDb(double distance_m) const;

  // Received signal strength (dBm) at distance d, without shadowing.
  double RssiDbm(double distance_m) const;

  // RSSI with an externally sampled shadowing term (dB, add to the mean).
  double RssiDbm(double distance_m, double shadowing_db) const;
};

}  // namespace wolt::wifi
