#include "wifi/dcf_sim.h"

#include <algorithm>
#include <stdexcept>

namespace wolt::wifi {
namespace {

double FrameAirtimeUs(double phy_rate_mbps, const DcfParams& p) {
  // payload_bytes * 8 bits at phy_rate Mbit/s -> microseconds.
  return p.preamble_us +
         static_cast<double>(p.payload_bytes) * 8.0 / phy_rate_mbps;
}

double SuccessCycleUs(double phy_rate_mbps, const DcfParams& p) {
  return p.difs_us + FrameAirtimeUs(phy_rate_mbps, p) + p.sifs_us + p.ack_us;
}

}  // namespace

double EffectiveRate(double phy_rate_mbps, const DcfParams& params) {
  if (phy_rate_mbps <= 0.0) throw std::invalid_argument("non-positive rate");
  const double avg_backoff_us =
      static_cast<double>(params.cw_min) / 2.0 * params.slot_us;
  const double cycle_us = SuccessCycleUs(phy_rate_mbps, params) + avg_backoff_us;
  return static_cast<double>(params.payload_bytes) * 8.0 / cycle_us;
}

double AnalyticCellThroughput(std::span<const double> phy_rates_mbps,
                              const DcfParams& params) {
  if (phy_rates_mbps.empty()) return 0.0;
  double inv_sum = 0.0;
  for (double r : phy_rates_mbps) inv_sum += 1.0 / EffectiveRate(r, params);
  return static_cast<double>(phy_rates_mbps.size()) / inv_sum;
}

DcfResult SimulateDcf(std::span<const double> phy_rates_mbps,
                      double duration_s, const DcfParams& params,
                      util::Rng& rng) {
  const std::size_t n = phy_rates_mbps.size();
  if (n == 0) throw std::invalid_argument("no stations");
  for (double r : phy_rates_mbps) {
    if (r <= 0.0) throw std::invalid_argument("non-positive PHY rate");
  }

  struct Station {
    int backoff = 0;
    int cw = 0;
  };
  std::vector<Station> stations(n);
  for (auto& st : stations) {
    st.cw = params.cw_min;
    st.backoff = rng.UniformInt(0, st.cw);
  }

  DcfResult result;
  result.stations.resize(n);
  std::vector<double> busy_us(n, 0.0);

  const double duration_us = duration_s * 1e6;
  double now_us = 0.0;
  std::vector<std::size_t> ready;
  while (now_us < duration_us) {
    ready.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (stations[i].backoff == 0) ready.push_back(i);
    }
    if (ready.empty()) {
      // Idle slot: everyone decrements.
      for (auto& st : stations) --st.backoff;
      now_us += params.slot_us;
      continue;
    }
    if (ready.size() == 1) {
      const std::size_t tx = ready.front();
      const double airtime = SuccessCycleUs(phy_rates_mbps[tx], params);
      now_us += airtime;
      busy_us[tx] += airtime;
      ++result.stations[tx].successes;
      stations[tx].cw = params.cw_min;
      stations[tx].backoff = rng.UniformInt(0, stations[tx].cw);
    } else {
      // Collision: the channel is busy for the longest colliding frame;
      // colliders double CW and redraw.
      double longest_us = 0.0;
      for (std::size_t i : ready) {
        longest_us = std::max(
            longest_us, params.difs_us + FrameAirtimeUs(phy_rates_mbps[i],
                                                        params));
      }
      // EIFS-like penalty: colliders wait for the ACK timeout.
      now_us += longest_us + params.sifs_us + params.ack_us;
      ++result.collision_events;
      for (std::size_t i : ready) {
        ++result.stations[i].collisions;
        stations[i].cw = std::min(2 * (stations[i].cw + 1) - 1, params.cw_max);
        stations[i].backoff = rng.UniformInt(0, stations[i].cw);
      }
    }
  }

  result.sim_time_s = now_us / 1e6;
  double total_busy_us = 0.0;
  for (double b : busy_us) total_busy_us += b;
  for (std::size_t i = 0; i < n; ++i) {
    result.stations[i].throughput_mbps =
        static_cast<double>(result.stations[i].successes) *
        static_cast<double>(params.payload_bytes) * 8.0 / now_us;
    result.stations[i].airtime_share =
        total_busy_us > 0.0 ? busy_us[i] / total_busy_us : 0.0;
    result.aggregate_mbps += result.stations[i].throughput_mbps;
  }
  return result;
}

}  // namespace wolt::wifi
