// WiFi channel assignment for co-located extenders.
//
// The paper assumes each extender operates on a non-overlapping channel and
// therefore interference-free (§V-A, citing [2]). That holds for a handful
// of extenders but not for 15 on one floor with three usable 2.4 GHz
// channels. This module provides the substrate to (a) assign channels so
// that nearby extenders avoid each other (greedy graph colouring on the
// interference graph) and (b) compute the resulting co-channel contention
// domains, which the evaluator can use to scale WiFi cell throughput
// (co-channel cells within carrier-sense range time-share the air).
#pragma once

#include <cstddef>
#include <vector>

#include "model/network.h"

namespace wolt::wifi {

struct ChannelPlanParams {
  // Orthogonal channels available (2.4 GHz: 1/6/11 -> 3; add 5 GHz for
  // more).
  int num_channels = 3;
  // Two extenders on the same channel interfere when closer than this
  // (carrier-sense range; larger than the useful data range).
  double interference_range_m = 60.0;
};

// Interference graph edges: pairs of extender indices within range.
std::vector<std::pair<std::size_t, std::size_t>> InterferenceEdges(
    const model::Network& net, double interference_range_m);

// Greedy colouring, highest-degree-first: returns channel index in
// [0, num_channels) per extender. When a vertex's neighbourhood exhausts
// all channels it receives the least-used channel among its neighbours
// (graceful degradation rather than failure).
std::vector<int> AssignChannels(const model::Network& net,
                                const ChannelPlanParams& params = {});

// Association-weighted recolouring for the joint solver: like
// AssignChannels, but each extender carries a weight (e.g. its current WiFi
// cell demand or user load) and the colouring (a) orders vertices by
// descending weighted interference degree (sum of in-range neighbour
// weights; ties by id) and (b) gives each vertex the channel minimizing the
// summed weight of its same-channel neighbours (ties to the lowest channel
// index). With all weights equal and positive it picks exactly the channels
// AssignChannels would (lowest free channel, else least-used). `weights`
// must have one non-negative entry per extender.
std::vector<int> AssignChannelsWeighted(const model::Network& net,
                                        const std::vector<double>& weights,
                                        const ChannelPlanParams& params = {});

// All extenders on one channel (worst case baseline).
std::vector<int> SameChannelPlan(const model::Network& net);

// Connected components of the co-channel interference graph. Component
// ids are returned per extender; extenders alone on their channel (or out
// of range of same-channel peers) form singleton components.
std::vector<int> ContentionDomains(const model::Network& net,
                                   const std::vector<int>& channels,
                                   double interference_range_m);

// Number of same-channel conflicts (interference edges whose endpoints
// share a channel) — the quantity colouring minimizes.
std::size_t CountConflicts(const model::Network& net,
                           const std::vector<int>& channels,
                           double interference_range_m);

}  // namespace wolt::wifi
