// RSSI -> modulation-and-coding-scheme -> usable rate mapping.
//
// The association algorithms consume r_ij, the long-term WiFi throughput a
// user would get alone on the extender's channel. We model it as the PHY
// rate of the highest MCS whose sensitivity threshold the RSSI clears, times
// a MAC efficiency factor (preamble/backoff/ACK overhead). Two tables are
// provided: 802.11n HT20 (MCS0-7, what a TL-WPA8630-class extender uses per
// spatial stream) and the Cisco Aironet 802.11g stepping the paper's
// simulator cites [28].
#pragma once

#include <span>
#include <string>
#include <vector>

namespace wolt::wifi {

struct McsEntry {
  int index = 0;
  double min_rssi_dbm = 0.0;  // receiver sensitivity threshold
  double phy_rate_mbps = 0.0;
  std::string modulation;
};

class RateTable {
 public:
  // `entries` must be sorted by ascending PHY rate (and ascending RSSI
  // threshold); `mac_efficiency` scales PHY rate to achievable throughput.
  RateTable(std::vector<McsEntry> entries, double mac_efficiency);

  // Achievable rate (Mbit/s) at the given RSSI; 0 when below the lowest
  // sensitivity threshold (out of range).
  double RateAtRssi(double rssi_dbm) const;

  // Highest MCS decodable at this RSSI, or nullptr if out of range.
  const McsEntry* McsAtRssi(double rssi_dbm) const;

  double MaxRate() const;
  double MinSensitivityDbm() const;
  std::span<const McsEntry> entries() const { return entries_; }
  double mac_efficiency() const { return mac_efficiency_; }

  // 802.11n, 20 MHz, long GI, 1 spatial stream: 6.5..65 Mbit/s PHY.
  static RateTable Ieee80211nHt20(double mac_efficiency = 0.65);
  // 802.11g stepping per the Cisco Aironet 1200 datasheet: 6..54 Mbit/s.
  static RateTable CiscoAironet80211g(double mac_efficiency = 0.65);

 private:
  std::vector<McsEntry> entries_;
  double mac_efficiency_;
};

}  // namespace wolt::wifi
