#include "wifi/pathloss.h"

#include <algorithm>
#include <cmath>

namespace wolt::wifi {

double PathLossModel::PathLossDb(double distance_m) const {
  const double d = std::max(distance_m, 0.1);
  return pl0_db + 10.0 * exponent * std::log10(d);
}

double PathLossModel::RssiDbm(double distance_m) const {
  return tx_power_dbm - PathLossDb(distance_m);
}

double PathLossModel::RssiDbm(double distance_m, double shadowing_db) const {
  return RssiDbm(distance_m) + shadowing_db;
}

}  // namespace wolt::wifi
