// Dynamic-arrivals example: drive the online scenario of §V-E — users join
// and leave by a Poisson process, the central controller re-runs its policy
// at every epoch boundary — and watch aggregate throughput, fairness and
// re-association churn evolve.
//
//   $ ./dynamic_arrivals [epochs] [seed]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "sim/dynamics.h"

int main(int argc, char** argv) {
  using namespace wolt;
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;

  sim::ScenarioParams scenario;
  scenario.num_extenders = 15;
  scenario.num_users = 0;  // populated by the arrival process
  const sim::ScenarioGenerator generator(scenario);

  core::WoltPolicy wolt;
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &greedy, &rssi};

  sim::DynamicsParams params;
  params.epochs = epochs;
  util::Rng rng(seed);
  const std::vector<sim::EpochStats> history =
      sim::RunDynamicSimulation(generator, policies, params, rng);

  std::printf("%5s %6s %8s %8s | %21s | %21s | %12s\n", "epoch", "users",
              "arrived", "departed", "aggregate (W/G/R)", "Jain (W/G/R)",
              "WOLT moves");
  for (const auto& epoch : history) {
    std::printf(
        "%5d %6zu %8zu %8zu | %6.1f %6.1f %6.1f | %6.2f %6.2f %6.2f | %12zu\n",
        epoch.epoch, epoch.population, epoch.arrivals, epoch.departures,
        epoch.per_policy[0].aggregate_mbps, epoch.per_policy[1].aggregate_mbps,
        epoch.per_policy[2].aggregate_mbps, epoch.per_policy[0].jain_fairness,
        epoch.per_policy[1].jain_fairness, epoch.per_policy[2].jain_fairness,
        epoch.per_policy[0].reassignments);
  }
  std::printf(
      "\nWOLT re-associates existing users only when the sticky Phase II\n"
      "finds a materially better extender, so the per-epoch move count\n"
      "stays near one swap per arrival (Fig. 6c).\n");
  return 0;
}
