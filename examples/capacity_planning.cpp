// Capacity-planning example: the intro's enterprise motivation — office
// spaces have dozens of outlets; which ones are worth populating with
// extenders? This tool sweeps the number of deployed extenders k (always
// keeping the k best power-line outlets), re-associates users with WOLT-S
// at each step, and prints the marginal aggregate-throughput value of each
// additional extender.
//
//   $ ./capacity_planning [num_users] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "core/wolt.h"
#include "model/evaluator.h"
#include "sim/scenario.h"

int main(int argc, char** argv) {
  using namespace wolt;
  const std::size_t num_users =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 36;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 11;

  sim::ScenarioParams params;
  params.num_extenders = 15;  // candidate outlets
  params.num_users = num_users;
  const sim::ScenarioGenerator generator(params);
  util::Rng rng(seed);
  const model::Network full = generator.Generate(rng);

  // Outlets ranked by measured PLC capacity.
  std::vector<std::size_t> ranked(full.NumExtenders());
  std::iota(ranked.begin(), ranked.end(), 0);
  std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
    return full.PlcRate(a) > full.PlcRate(b);
  });

  std::printf("candidate outlets: %zu, users: %zu (seed %llu)\n\n",
              full.NumExtenders(), full.NumUsers(),
              static_cast<unsigned long long>(seed));
  std::printf("%10s %12s %18s %12s %12s\n", "extenders", "new_outlet",
              "aggregate(Mbit/s)", "marginal", "unreached");

  const model::Evaluator evaluator;
  double previous = 0.0;
  for (std::size_t k = 1; k <= full.NumExtenders(); ++k) {
    // Keep only the k best outlets: blank the rest out of the rate matrix.
    model::Network deployed = full;
    for (std::size_t idx = k; idx < ranked.size(); ++idx) {
      deployed.SetPlcRate(ranked[idx], 0.0);
      for (std::size_t i = 0; i < full.NumUsers(); ++i) {
        deployed.SetWifiRate(i, ranked[idx], 0.0);
      }
    }
    core::WoltOptions so;
    so.subset_search = true;
    core::WoltPolicy wolt(so);
    const model::Assignment a = wolt.AssociateFresh(deployed);
    const double aggregate = evaluator.AggregateThroughput(deployed, a);
    std::size_t unreached = 0;
    for (std::size_t i = 0; i < deployed.NumUsers(); ++i) {
      if (!a.IsAssigned(i)) ++unreached;
    }
    std::printf("%10zu %12zu %18.1f %12.1f %12zu\n", k, ranked[k - 1],
                aggregate, aggregate - previous, unreached);
    previous = aggregate;
  }
  std::printf(
      "\nReading: the marginal column shows when additional outlets stop\n"
      "paying for themselves — coverage gains first, then the shared PLC\n"
      "medium caps the return.\n");
  return 0;
}
