// File-driven solver: load a network description from disk, run every
// association policy, and print the comparison — the workflow a network
// operator would use with measured data. Without an argument it writes a
// sample scenario file next to the binary first, so the example is
// self-contained.
//
//   $ ./solve_file [network-file]
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/greedy.h"
#include "core/optimal.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "model/evaluator.h"
#include "model/io.h"
#include "testbed/lab.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace wolt;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "sample_floor.net";
    if (!model::SaveNetworkFile(testbed::CaseStudyNetwork(), path)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("no file given; wrote the Fig. 3 case study to %s\n\n",
                path.c_str());
  }

  const auto net = model::LoadNetworkFile(path);
  if (!net) {
    std::fprintf(stderr, "failed to parse %s\n", path.c_str());
    return 1;
  }
  std::printf("loaded %s: %zu users, %zu extenders\n\n", path.c_str(),
              net->NumUsers(), net->NumExtenders());

  core::WoltPolicy wolt;
  core::WoltOptions so;
  so.subset_search = true;
  core::WoltPolicy wolts(so);
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::vector<core::AssociationPolicy*> policies = {&wolt, &wolts, &greedy,
                                                    &rssi};

  const model::Evaluator evaluator;
  std::printf("%-8s %18s %8s  %s\n", "policy", "aggregate(Mbit/s)", "Jain",
              "assignment");
  for (auto* policy : policies) {
    const model::Assignment a = policy->AssociateFresh(*net);
    const model::EvalResult r = evaluator.Evaluate(*net, a);
    std::printf("%-8s %18.1f %8.3f  %s\n", policy->Name().c_str(),
                r.aggregate_mbps,
                util::JainFairnessIndex(r.user_throughput_mbps),
                a.ToString().c_str());
  }

  // Brute force when the instance is small enough to afford it.
  const double combos =
      std::pow(static_cast<double>(net->NumExtenders()),
               static_cast<double>(net->NumUsers()));
  if (combos <= 1e6) {
    core::OptimalPolicy optimal;
    const model::Assignment a = optimal.AssociateFresh(*net);
    std::printf("%-8s %18.1f %8s  %s\n", "Optimal",
                evaluator.AggregateThroughput(*net, a), "-",
                a.ToString().c_str());
  }
  return 0;
}
