// MAC-level example: reproduce the two measurement facts the whole WOLT
// model is built on, using the slot-level simulators directly.
//
//  (1) 802.11 is throughput-fair: a slow client drags every client in the
//      cell down to its pace (the performance anomaly, Fig. 2a).
//  (2) IEEE 1901 PLC is time-fair: contending extenders split airtime
//      equally, so each keeps throughput proportional to its own link rate
//      (Fig. 2c).
//
//   $ ./mac_anomaly
#include <cstdio>
#include <vector>

#include "plc/csma1901.h"
#include "util/rng.h"
#include "wifi/dcf_sim.h"

int main() {
  using namespace wolt;
  util::Rng rng(1);

  std::printf("(1) 802.11 DCF cell, fast client (65 Mbit/s PHY) alone vs\n"
              "    sharing with a slow client (6.5 Mbit/s PHY):\n\n");
  const wifi::DcfParams dcf;
  const wifi::DcfResult alone =
      wifi::SimulateDcf(std::vector<double>{65.0}, 5.0, dcf, rng);
  const wifi::DcfResult shared =
      wifi::SimulateDcf(std::vector<double>{65.0, 6.5}, 5.0, dcf, rng);
  std::printf("    fast client alone:      %.1f Mbit/s\n",
              alone.stations[0].throughput_mbps);
  std::printf("    fast client w/ slow:    %.1f Mbit/s (airtime %.0f%%)\n",
              shared.stations[0].throughput_mbps,
              shared.stations[0].airtime_share * 100.0);
  std::printf("    slow client:            %.1f Mbit/s (airtime %.0f%%)\n",
              shared.stations[1].throughput_mbps,
              shared.stations[1].airtime_share * 100.0);
  std::printf("    -> equal throughputs, wildly unequal airtime: the\n"
              "       anomaly that makes WiFi 'throughput-fair'.\n\n");

  std::printf("(2) IEEE 1901 PLC medium, two extenders with 60 and 160\n"
              "    Mbit/s links, each alone and then contending:\n\n");
  const plc::Csma1901Params mac;
  for (double rate : {60.0, 160.0}) {
    const plc::Csma1901Result solo =
        plc::SimulateCsma1901(std::vector<double>{rate}, 10.0, mac, rng);
    std::printf("    link %.0f alone:  %.1f Mbit/s\n", rate,
                solo.aggregate_mbps);
  }
  const plc::Csma1901Result both = plc::SimulateCsma1901(
      std::vector<double>{60.0, 160.0}, 10.0, mac, rng);
  for (std::size_t j = 0; j < 2; ++j) {
    std::printf("    link %.0f shared: %.1f Mbit/s (airtime %.0f%%)\n",
                j == 0 ? 60.0 : 160.0, both.stations[j].throughput_mbps,
                both.stations[j].airtime_share * 100.0);
  }
  std::printf("    -> equal airtime, proportional throughput: PLC is\n"
              "       'time-fair', so a weak extender halves a strong one.\n");
  return 0;
}
