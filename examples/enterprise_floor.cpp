// Enterprise-floor example: generate the paper's §V-A simulation scenario
// (100 m x 100 m office floor, 15 PLC-WiFi extenders with capacities
// calibrated to building measurements, users placed randomly), associate
// users with every policy, and print a per-extender breakdown for WOLT.
//
//   $ ./enterprise_floor [num_users] [seed]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "model/evaluator.h"
#include "sim/scenario.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace wolt;
  const std::size_t num_users =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 36;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  sim::ScenarioParams params;
  params.num_extenders = 15;
  params.num_users = num_users;
  const sim::ScenarioGenerator generator(params);
  util::Rng rng(seed);
  const model::Network net = generator.Generate(rng);
  std::printf("generated floor: %zu extenders, %zu users (seed %llu)\n\n",
              net.NumExtenders(), net.NumUsers(),
              static_cast<unsigned long long>(seed));

  const model::Evaluator evaluator;
  core::WoltPolicy wolt;
  core::WoltOptions subset_opts;
  subset_opts.subset_search = true;
  core::WoltPolicy wolt_s(subset_opts);
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;

  std::vector<core::AssociationPolicy*> policies = {&wolt, &wolt_s, &greedy,
                                                    &rssi};
  model::Assignment best_assignment;
  std::printf("%-8s %18s %12s\n", "policy", "aggregate(Mbit/s)", "Jain");
  for (auto* policy : policies) {
    const model::Assignment a = policy->AssociateFresh(net);
    const model::EvalResult r = evaluator.Evaluate(net, a);
    std::printf("%-8s %18.1f %12.3f\n", policy->Name().c_str(),
                r.aggregate_mbps,
                util::JainFairnessIndex(r.user_throughput_mbps));
    if (policy == &wolt_s) best_assignment = a;
  }

  std::printf("\nWOLT-S per-extender breakdown:\n");
  const model::EvalResult r = evaluator.Evaluate(net, best_assignment);
  std::printf("%-6s %6s %6s %10s %10s %10s %s\n", "ext", "users", "c_j",
              "T_wifi", "plc_share", "delivered", "bottleneck");
  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    const auto& rep = r.extenders[j];
    std::printf("%-6zu %6d %6.0f %10.1f %9.0f%% %10.1f %s\n", j,
                rep.num_users, net.PlcRate(j), rep.wifi_throughput_mbps,
                rep.plc_time_share * 100.0, rep.end_to_end_mbps,
                model::ToString(rep.bottleneck));
  }
  return 0;
}
