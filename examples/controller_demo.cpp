// Control-plane example: drive the Central Controller through its wire
// protocol, exactly as the paper's user-space deployment does (§V-A) —
// capacity probes report each PLC link, users send scan reports, the CC
// answers with association directives.
//
//   $ ./controller_demo
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/wolt.h"

int main() {
  using namespace wolt::core;

  CentralController cc(2, std::make_unique<WoltPolicy>());

  // Offline capacity estimation phase (iperf3 saturation per link).
  const std::vector<std::string> capacity_lines = {
      "CAPACITY extender=0 mbps=60",
      "CAPACITY extender=1 mbps=20",
  };
  for (const auto& line : capacity_lines) {
    std::printf(">> %s\n", line.c_str());
    const auto msg = DecodeCapacityReport(line);
    if (!msg) {
      std::printf("   (malformed, dropped)\n");
      continue;
    }
    cc.HandleCapacityReport(*msg);
  }

  // Two clients come online and report their scans (the Fig. 3 users).
  const std::vector<std::string> scans = {
      "SCAN user=101 rates=15,10 rssi=-58,-71",
      "SCAN user=102 rates=40,20 rssi=-52,-66",
      "SCAN user=999 rates=oops",  // malformed on purpose
  };
  for (const auto& line : scans) {
    std::printf(">> %s\n", line.c_str());
    const auto msg = DecodeScanReport(line);
    if (!msg) {
      std::printf("   (malformed, dropped)\n");
      continue;
    }
    const auto result = cc.HandleUserArrival(*msg);
    if (!result.ok()) {
      std::printf("   (rejected: %s)\n", ToString(result.status));
      continue;
    }
    for (const auto& directive : result.directives) {
      std::printf("<< %s\n", Encode(directive).c_str());
    }
  }

  std::printf("\ncontroller state: %zu users, aggregate %.1f Mbit/s\n",
              cc.NumUsers(), cc.CurrentAggregate());
  std::printf("user 101 on extender %d, user 102 on extender %d\n",
              *cc.ExtenderOf(101), *cc.ExtenderOf(102));

  // User 102 leaves; the CC re-optimizes at the next epoch boundary.
  std::printf("\nuser 102 departs; reoptimizing...\n");
  cc.HandleUserDeparture(102);
  for (const auto& directive : cc.Reoptimize()) {
    std::printf("<< %s\n", Encode(directive).c_str());
  }
  std::printf("aggregate now %.1f Mbit/s\n", cc.CurrentAggregate());
  return 0;
}
