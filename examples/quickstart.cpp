// Quickstart: build a small PLC-WiFi network by hand, associate users with
// WOLT, and inspect the resulting throughputs.
//
// This is the paper's Fig. 3 scenario: two extenders whose power-line links
// run at 60 and 20 Mbit/s, and two users whose WiFi rates make the naive
// associations (strongest signal, online greedy) leave throughput on the
// table.
//
//   $ ./quickstart
#include <cstdio>

#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "model/evaluator.h"
#include "model/network.h"

int main() {
  using namespace wolt;

  // 1. Describe the network: 2 users, 2 extenders.
  model::Network net(2, 2);
  net.SetPlcRate(0, 60.0);  // extender 0: strong power-line link
  net.SetPlcRate(1, 20.0);  // extender 1: weak power-line link
  // WiFi rates r_ij (Mbit/s) as measured by each user's NIC.
  net.SetWifiRate(0, 0, 15.0);
  net.SetWifiRate(0, 1, 10.0);
  net.SetWifiRate(1, 0, 40.0);
  net.SetWifiRate(1, 1, 20.0);

  // 2. Pick an association policy. WoltPolicy is the paper's two-phase
  // algorithm; GreedyPolicy and RssiPolicy are the baselines.
  core::WoltPolicy wolt;
  const model::Assignment assignment = wolt.AssociateFresh(net);

  // 3. Evaluate what the network actually delivers under that association.
  const model::Evaluator evaluator;  // physical PLC sharing model
  const model::EvalResult result = evaluator.Evaluate(net, assignment);

  std::printf("WOLT association:\n");
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    std::printf("  user %zu -> extender %d   (%.1f Mbit/s)\n", i,
                assignment.ExtenderOf(i), result.user_throughput_mbps[i]);
  }
  std::printf("aggregate throughput: %.1f Mbit/s\n", result.aggregate_mbps);

  for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
    const auto& rep = result.extenders[j];
    std::printf(
        "  extender %zu: %d user(s), WiFi %.1f, PLC share %.0f%% -> %.1f, "
        "bottleneck: %s\n",
        j, rep.num_users, rep.wifi_throughput_mbps,
        rep.plc_time_share * 100.0, rep.plc_throughput_mbps,
        model::ToString(rep.bottleneck));
  }

  // 4. Compare against the baselines.
  core::GreedyPolicy greedy;
  core::RssiPolicy rssi;
  std::printf("\nfor comparison:\n");
  std::printf("  greedy baseline: %.1f Mbit/s\n",
              evaluator.AggregateThroughput(net, greedy.AssociateFresh(net)));
  std::printf("  rssi baseline:   %.1f Mbit/s\n",
              evaluator.AggregateThroughput(net, rssi.AssociateFresh(net)));
  return 0;
}
