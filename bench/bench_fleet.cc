// Fleet-runtime microbenchmarks (google-benchmark): sustained control-plane
// message throughput of the sharded round loop at increasing fleet sizes and
// thread counts, the wall-clock budgeted reoptimization path (the PR 5
// ladder under a real deadline), and crash-recovery latency (journal replay
// + state restore). Recorded into BENCH_fleet.json by bench/run_benches.sh.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include "bench_util.h"
#include "fault/storage.h"
#include "fleet/runtime.h"
#include "recover/fleet_journal.h"
#include "util/codec.h"

namespace {

using namespace wolt;

fleet::FleetParams BenchParams(std::size_t shards, std::uint64_t rounds,
                               int threads) {
  fleet::FleetParams p;
  p.num_shards = shards;
  p.rounds = rounds;
  p.threads = threads;
  p.queue_capacity = shards * 6;  // sustained mild overload: shedding active
  p.batch_per_shard = 8;
  p.chaos_from = 1;
  p.chaos_to = rounds;
  fault::WireFaults w;
  w.loss = 0.05;
  w.duplicate = 0.05;
  w.corrupt = 0.1;
  p.shard.wire = fault::FaultPlaneParams::Uniform(w);
  p.shard.plc_crash_prob = 0.05;
  p.shard.departure_prob = 0.05;
  p.reopt_units_per_round = shards + 2;  // budget-starved ladder scheduling
  return p;
}

// Sustained fleet throughput: construct + run a whole fleet per iteration,
// reporting control-plane messages ingested per second of wall time. The
// parallel phase scales with threads; the serial phases (queue, scheduler,
// supervisor, journal-less bookkeeping) are the Amdahl floor this benchmark
// makes visible.
void BM_FleetRound(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  constexpr std::uint64_t kRounds = 6;
  std::uint64_t messages = 0;
  double shed_fraction = 0.0;
  for (auto _ : state) {
    fleet::FleetRuntime fleet(BenchParams(shards, kRounds, threads),
                              0xBE7CF1EE7ULL);
    const fleet::FleetResult result = fleet.Run();
    messages += result.queue.enqueued;
    shed_fraction = result.queue.enqueued
                        ? static_cast<double>(result.queue.shed) /
                              static_cast<double>(result.queue.enqueued)
                        : 0.0;
    benchmark::DoNotOptimize(result.shard_records.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.counters["shed_fraction"] = shed_fraction;
}
BENCHMARK(BM_FleetRound)
    ->ArgNames({"shards", "threads"})
    ->Args({64, 1})
    ->Args({64, 8})
    ->Args({256, 1})
    ->Args({256, 8})
    ->Args({1024, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The bench-only wall-clock reopt path: every shard reoptimizes under a
// real deadline each round and the ladder absorbs the misses. Overrun count
// is surfaced so budget regressions show up as a counter, not just time.
void BM_FleetWallClockReopt(benchmark::State& state) {
  const std::size_t shards = 64;
  constexpr std::uint64_t kRounds = 4;
  std::uint64_t overruns = 0;
  for (auto _ : state) {
    fleet::FleetParams p = BenchParams(shards, kRounds, 8);
    p.reopt_units_per_round = 0;
    p.reopt_wall_budget_seconds =
        static_cast<double>(state.range(0)) * 1e-6;
    fleet::FleetRuntime fleet(p, 0xBE7CF1EE7ULL);
    const fleet::FleetResult result = fleet.Run();
    for (const recover::ShardRoundRecord& r : result.shard_records) {
      if (r.tier > 0) ++overruns;  // a degraded rung served the epoch
    }
    benchmark::DoNotOptimize(result.shard_records.data());
  }
  state.counters["degraded_epochs"] =
      static_cast<double>(overruns) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_FleetWallClockReopt)
    ->ArgName("budget_us")
    ->Arg(50)
    ->Arg(500)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Crash-recovery latency: replay a completed fleet journal (read, validate,
// restore the snapshot into a fresh fleet). This is the time-to-first-round
// a resumed fleet pays after a SIGKILL.
void BM_FleetJournalReplay(benchmark::State& state) {
  namespace fs = std::filesystem;
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  const std::string path =
      (fs::temp_directory_path() / "wolt_bench_fleet_replay.wal").string();
  fleet::FleetParams p = BenchParams(shards, 6, 8);
  p.journal_path = path;
  {
    fleet::FleetRuntime fleet(p, 0xBE7CF1EE7ULL);
    fleet.Run();
  }
  for (auto _ : state) {
    const recover::FleetJournalReadResult read =
        recover::ReadFleetJournal(path);
    fleet::FleetRuntime fleet(p, 0xBE7CF1EE7ULL);
    util::ByteCursor cur(read.checkpoint_blob);
    const bool ok = fleet.RestoreState(&cur);
    benchmark::DoNotOptimize(ok);
  }
  fs::remove(path);
}
BENCHMARK(BM_FleetJournalReplay)
    ->ArgName("shards")
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Rot-recovery latency: the same replay when the journal's tail frame is
// bit-rotted. The reader walks to the damage, classifies it against the
// per-frame checksum, truncates to the last good frame, and the fleet
// restores from the surviving snapshot — the degraded-media analog of
// BM_FleetJournalReplay. Runs against an in-memory disk image (MemVfs) so
// the numbers isolate frame walking + checksum validation from page-cache
// luck.
void BM_FleetJournalRotReplay(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  const std::string path = "fleet_rot.wal";
  fault::MemVfs mem;
  fleet::FleetParams p = BenchParams(shards, 6, 8);
  p.journal_path = path;
  p.vfs = &mem;
  {
    fleet::FleetRuntime fleet(p, 0xBE7CF1EE7ULL);
    fleet.Run();
  }
  const std::optional<std::string> bytes = mem.GetFileBytes(path);
  if (!bytes || bytes->size() < 8) {
    state.SkipWithError("journaled run left no journal");
    return;
  }
  mem.FlipBit(path, (bytes->size() - 3) * 8);
  std::size_t truncated = 0;
  for (auto _ : state) {
    const recover::FleetJournalReadResult read =
        recover::ReadFleetJournal(path, &mem);
    truncated += read.tail_rot ? 1 : 0;
    fleet::FleetRuntime fleet(p, 0xBE7CF1EE7ULL);
    util::ByteCursor cur(read.checkpoint_blob);
    const bool ok = fleet.RestoreState(&cur);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["rot_truncated"] =
      static_cast<double>(truncated) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_FleetJournalRotReplay)
    ->ArgName("shards")
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): --trace=/--metrics= are consumed
// by the ObsSession and stripped before google-benchmark's flag parser (which
// rejects unknown flags) sees argv.
int main(int argc, char** argv) {
  wolt::bench::ObsSession obs(argc, argv);
  wolt::bench::ObsSession::Strip(argc, argv);
#ifdef WOLT_BENCH_BUILD_TYPE
  benchmark::AddCustomContext("wolt_build_type", WOLT_BENCH_BUILD_TYPE);
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
