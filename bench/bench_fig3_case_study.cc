// Fig. 3 — the two-extender / two-user case study: RSSI-based association
// achieves ~22 Mbit/s, online greedy 30 Mbit/s (thanks to leftover airtime
// re-allocation), the optimal assignment 40 Mbit/s. WOLT must find the
// optimum.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/optimal.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "testbed/traces.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Fig. 3 — association policy case study (testbed scenario)",
      "PLC rates 60/20 Mbit/s; WiFi rates u1->{15,10}, u2->{40,20}.");

  const model::Network net = testbed::CaseStudyNetwork();
  const model::Evaluator evaluator;

  std::vector<core::PolicyPtr> policies;
  policies.push_back(std::make_unique<core::RssiPolicy>());
  policies.push_back(std::make_unique<core::GreedyPolicy>());
  policies.push_back(std::make_unique<core::OptimalPolicy>());
  policies.push_back(std::make_unique<core::WoltPolicy>());
  core::WoltOptions so;
  so.subset_search = true;
  policies.push_back(std::make_unique<core::WoltPolicy>(so));

  const auto& reference = testbed::Fig3CaseStudyAggregates();
  const auto paper_value = [&](const std::string& name) -> double {
    for (const auto& p : reference) {
      if (p.label == name) return p.value;
    }
    if (name == "WOLT" || name == "WOLT-S") return 40.0;  // = optimal
    return 0.0;
  };

  util::Table table({"policy", "user1_mbps", "user2_mbps", "aggregate_mbps",
                     "paper_mbps"});
  for (const auto& policy : policies) {
    const model::Assignment a = policy->AssociateFresh(net);
    const model::EvalResult r = evaluator.Evaluate(net, a);
    table.AddRow({policy->Name(), util::Fmt(r.user_throughput_mbps[0], 1),
                  util::Fmt(r.user_throughput_mbps[1], 1),
                  util::Fmt(r.aggregate_mbps, 1),
                  util::Fmt(paper_value(policy->Name()), 0)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: RSSI ~22 (both users pile on extender 1), Greedy 30\n"
      "(leftover PLC airtime flows to extender 2), Optimal/WOLT 40.\n");
  bench::PrintFooter();
  return 0;
}
