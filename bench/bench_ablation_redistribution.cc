// Abl-1 — does PLC leftover-airtime redistribution matter? Evaluates the
// same assignments under the three PLC sharing models (physical max-min
// over active extenders; strict 1/k over active; the paper's literal
// c_j/|A| over all extenders) on the Fig. 3 case study and the enterprise
// floor.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Abl-1 — PLC sharing model ablation",
      "Same associations, three airtime-sharing models. Redistribution is\n"
      "what makes the Fig. 3c greedy outcome 30 rather than 25 Mbit/s.");

  const std::vector<model::PlcSharing> models = {
      model::PlcSharing::kMaxMinActive, model::PlcSharing::kEqualActive,
      model::PlcSharing::kEqualAll};

  // (a) Case study.
  std::printf("(a) Fig. 3 case study\n");
  const model::Network case_net = testbed::CaseStudyNetwork();
  util::Table case_table({"policy", "maxmin-active", "equal-active",
                          "equal-all"});
  core::RssiPolicy rssi;
  core::GreedyPolicy greedy;
  core::WoltPolicy wolt;
  for (core::AssociationPolicy* policy :
       std::vector<core::AssociationPolicy*>{&rssi, &greedy, &wolt}) {
    const model::Assignment a = policy->AssociateFresh(case_net);
    std::vector<std::string> row = {policy->Name()};
    for (model::PlcSharing sharing : models) {
      model::EvalOptions opts;
      opts.plc_sharing = sharing;
      row.push_back(util::Fmt(
          model::Evaluator(opts).AggregateThroughput(case_net, a), 1));
    }
    case_table.AddRow(row);
  }
  case_table.Print();

  // (b) Enterprise floor: decisions fixed (computed under the physical
  // model), aggregates re-evaluated under each sharing model.
  std::printf("\n(b) enterprise floor (15 extenders, 36 users, 30 trials)\n");
  const sim::ScenarioGenerator gen(bench::EnterpriseParams(36));
  util::Rng rng(2020);
  core::WoltOptions so;
  so.subset_search = true;
  core::WoltPolicy wolts(so);
  std::vector<core::AssociationPolicy*> policies = {&wolt, &wolts, &greedy,
                                                    &rssi};
  std::vector<std::vector<double>> sums(policies.size(),
                                        std::vector<double>(models.size()));
  const int kTrials = 30;
  for (int t = 0; t < kTrials; ++t) {
    util::Rng trial_rng = rng.Fork();
    const model::Network net = gen.Generate(trial_rng);
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const model::Assignment a = policies[p]->AssociateFresh(net);
      for (std::size_t m = 0; m < models.size(); ++m) {
        model::EvalOptions opts;
        opts.plc_sharing = models[m];
        sums[p][m] +=
            model::Evaluator(opts).AggregateThroughput(net, a) / kTrials;
      }
    }
  }
  util::Table ent_table({"policy", "maxmin-active", "equal-active",
                         "equal-all"});
  for (std::size_t p = 0; p < policies.size(); ++p) {
    ent_table.AddRow({policies[p]->Name(), util::Fmt(sums[p][0], 1),
                      util::Fmt(sums[p][1], 1), util::Fmt(sums[p][2], 1)});
  }
  ent_table.Print();
  std::printf(
      "\nTakeaways: redistribution only adds throughput (maxmin >= equal),\n"
      "and counting idle extenders (equal-all) punishes concentration-heavy\n"
      "policies like Greedy.\n");
  bench::PrintFooter();
  return 0;
}
