// Fig. 2a — WiFi-only throughput-fair sharing / the 802.11 performance
// anomaly: two saturated clients on one extender; moving client 2 away
// degrades BOTH clients' throughput. Reproduced at the slot level with the
// DCF simulator and cross-checked against the Eq. 1 flow-level model.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/evaluator.h"
#include "util/rng.h"
#include "util/table.h"
#include "wifi/dcf_sim.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Fig. 2a — WiFi-only medium sharing (performance anomaly)",
      "Two clients on one extender; client 2 moves from location 1 -> 3.\n"
      "Paper: throughput-fair sharing; both clients degrade together.");

  // Client 2's PHY rate at the three locations (client 1 fixed at 65).
  struct Location {
    const char* name;
    double user2_phy;
  };
  const std::vector<Location> locations = {
      {"location1 (co-located)", 65.0},
      {"location2 (further)", 26.0},
      {"location3 (far)", 6.5},
  };

  const wifi::DcfParams params;
  util::Rng rng(2020);
  util::Table table({"user2_position", "user1_mbps(sim)", "user2_mbps(sim)",
                     "aggregate(sim)", "aggregate(Eq.1 model)",
                     "throughput_fair?"});
  for (const auto& loc : locations) {
    const std::vector<double> rates = {65.0, loc.user2_phy};
    const wifi::DcfResult sim = wifi::SimulateDcf(rates, 5.0, params, rng);
    const double model = wifi::AnalyticCellThroughput(rates, params);
    const double t1 = sim.stations[0].throughput_mbps;
    const double t2 = sim.stations[1].throughput_mbps;
    const bool fair = std::abs(t1 - t2) < 0.1 * std::max(t1, t2);
    table.AddRow({loc.name, util::Fmt(t1, 2), util::Fmt(t2, 2),
                  util::Fmt(sim.aggregate_mbps, 2), util::Fmt(model, 2),
                  fair ? "yes" : "no"});
  }
  table.Print();
  std::printf(
      "\nExpected shape: equal per-client throughput at every location, and\n"
      "the stationary client's throughput collapses as the other moves away\n"
      "(the anomaly the paper re-measures on commodity PLC extenders).\n");
  bench::PrintFooter();
  return 0;
}
