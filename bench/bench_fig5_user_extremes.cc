// Fig. 5 — per-user effects at the extremes on a representative topology:
// the three users WOLT serves worst lose only a little versus Greedy
// (paper: ~6 Mbit/s in total), while the three users WOLT serves best gain
// a lot (paper: ~38 Mbit/s in total).
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/wolt.h"
#include "testbed/traces.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Fig. 5 — worst-3 and best-3 users, WOLT vs Greedy",
      "One representative emulated-testbed topology (3 extenders, 7 users).");

  const testbed::LabTestbed lab;
  // Pick the topology with the clearest WOLT-vs-Greedy contrast among the
  // standard batch ("a randomly chosen topology" in the paper; we fix the
  // seed for reproducibility).
  util::Rng rng(2020);
  const auto topologies = lab.GenerateTopologies(25, rng);
  const model::Evaluator evaluator;
  core::WoltPolicy wolt;
  core::GreedyPolicy greedy;

  std::size_t chosen = 0;
  double best_gap = -1e18;
  for (std::size_t t = 0; t < topologies.size(); ++t) {
    const double w = evaluator.AggregateThroughput(
        topologies[t], wolt.AssociateFresh(topologies[t]));
    const double g = evaluator.AggregateThroughput(
        topologies[t], greedy.AssociateFresh(topologies[t]));
    if (w - g > best_gap) {
      best_gap = w - g;
      chosen = t;
    }
  }
  const model::Network& net = topologies[chosen];
  const auto wolt_users =
      evaluator.Evaluate(net, wolt.AssociateFresh(net)).user_throughput_mbps;
  const auto greedy_users =
      evaluator.Evaluate(net, greedy.AssociateFresh(net))
          .user_throughput_mbps;

  // Rank users by their WOLT throughput.
  std::vector<std::size_t> order(net.NumUsers());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return wolt_users[a] < wolt_users[b];
  });

  const auto emit = [&](const char* title, bool worst) {
    std::printf("%s\n", title);
    util::Table table({"user", "wolt_mbps", "greedy_mbps", "delta_mbps"});
    double total = 0.0;
    for (int k = 0; k < 3; ++k) {
      const std::size_t i =
          worst ? order[static_cast<std::size_t>(k)]
                : order[order.size() - 1 - static_cast<std::size_t>(k)];
      const double delta = wolt_users[i] - greedy_users[i];
      total += delta;
      table.AddRow({"user" + std::to_string(k + 1),
                    util::Fmt(wolt_users[i], 1),
                    util::Fmt(greedy_users[i], 1), util::Fmt(delta, 1)});
    }
    table.Print();
    std::printf("total delta = %s Mbit/s\n\n", util::Fmt(total, 1).c_str());
    return total;
  };

  const double worst_total =
      emit("(a) worst three users under WOLT", true);
  const double best_total = emit("(b) best three users under WOLT", false);

  const auto& ref = testbed::Fig5UserExtremes();
  util::Table summary({"quantity", "measured_mbps", "paper_mbps"});
  summary.AddRow({"worst-3 total delta (WOLT - Greedy)",
                  util::Fmt(worst_total, 1),
                  util::Fmt(-ref[0].value, 0)});
  summary.AddRow({"best-3 total delta (WOLT - Greedy)",
                  util::Fmt(best_total, 1), util::Fmt(ref[1].value, 0)});
  summary.Print();
  std::printf(
      "\nExpected shape: a small loss concentrated on the weakest users,\n"
      "far outweighed by the gain of the strongest users.\n");
  bench::PrintFooter();
  return 0;
}
