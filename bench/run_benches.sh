#!/usr/bin/env bash
# Runs the runtime/scalability microbenchmark suite and emits the results as
# google-benchmark JSON (BENCH_scaling.json by default). The checked-in
# BENCH_scaling.json at the repo root keeps a before/after pair of such runs
# ({"before": ..., "after": ...}) across performance-sensitive changes; merge
# a fresh run in with:
#
#   jq -n --slurpfile old BENCH_scaling.json --slurpfile new /tmp/run.json \
#     '{before: $old[0].after // $old[0], after: $new[0]}' > BENCH_scaling.json
#
# Usage: bench/run_benches.sh [output.json] [benchmark_filter]
#   BENCH_BIN=path/to/bench_scaling_runtime overrides the binary location.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="${1:-BENCH_scaling.json}"
filter="${2:-.}"

bin="${BENCH_BIN:-}"
if [[ -z "${bin}" ]]; then
  for candidate in \
      "${repo_root}/build-perf/bench/bench_scaling_runtime" \
      "${repo_root}/build/bench/bench_scaling_runtime"; do
    if [[ -x "${candidate}" ]]; then
      bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${bin}" || ! -x "${bin}" ]]; then
  echo "bench_scaling_runtime not found; build it first, e.g.:" >&2
  echo "  cmake --preset perf && cmake --build --preset perf -j" >&2
  exit 1
fi

"${bin}" \
  --benchmark_filter="${filter}" \
  --benchmark_min_time=0.5 \
  --benchmark_format=json \
  --benchmark_out_format=json \
  --benchmark_out="${out}" >/dev/null

echo "wrote ${out} ($(jq '.benchmarks | length' "${out}") benchmarks)" >&2
