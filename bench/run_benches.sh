#!/usr/bin/env bash
# Runs the runtime/scalability microbenchmark suite and emits the results as
# google-benchmark JSON (BENCH_scaling.json by default). The checked-in
# BENCH_scaling.json at the repo root keeps a before/after pair of such runs
# ({"before": ..., "after": ...}) across performance-sensitive changes; merge
# a fresh run in with:
#
#   jq -n --slurpfile old BENCH_scaling.json --slurpfile new /tmp/run.json \
#     '{before: $old[0].after // $old[0], after: $new[0]}' > BENCH_scaling.json
#
# The sweep-engine thread-scaling numbers (BM_SweepThroughput/threads:N) are
# recorded separately:
#
#   bench/run_benches.sh BENCH_sweep.json 'BM_SweepThroughput'
#
# Fleet-runtime numbers (BM_Fleet*) live in their own binary (bench_fleet);
# filters starting with BM_Fleet are routed there automatically:
#
#   bench/run_benches.sh BENCH_fleet.json 'BM_Fleet'
#
# Joint-solver numbers (BM_JointAssociate, BM_Recolour) live in bench_joint
# and are routed the same way, e.g.:
#
#   bench/run_benches.sh /tmp/joint.json 'BM_Joint|BM_Recolour'
#
# Trace-driven dynamics numbers (BM_Workload*, BM_Dynamics*) live in
# bench_dynamics, e.g. the stickiness-vs-throughput frontier recording:
#
#   bench/run_benches.sh BENCH_sweep.json 'BM_Dynamics|BM_Workload'
#
# Usage: bench/run_benches.sh [--allow-debug] [output.json] [benchmark_filter]
#   BENCH_BIN=path/to/bench_scaling_runtime overrides the binary location.
#
# Recorded numbers are only comparable between Release builds, so the script
# refuses to record a run whose JSON context reports any other build type
# (the binary stamps CMAKE_BUILD_TYPE into the context as wolt_build_type).
# Pass --allow-debug to record a non-Release run anyway, e.g. while
# debugging the bench itself.
#
# Every run also archives an observability metrics snapshot (solver counter
# totals accumulated across all benchmark iterations) next to the output as
# <output%.json>.metrics.json — with WOLT_OBS=OFF builds the snapshot is a
# valid-but-empty document.
#
# Failure behaviour: this script fails LOUDLY. A missing binary, a crashed
# benchmark run, or empty/invalid JSON output exits non-zero and leaves any
# existing output file untouched (results are written to a temp file and
# moved into place only after validation).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

allow_debug=0
positional=()
for arg in "$@"; do
  case "${arg}" in
    --allow-debug) allow_debug=1 ;;
    *) positional+=("${arg}") ;;
  esac
done
out="${positional[0]:-BENCH_scaling.json}"
filter="${positional[1]:-.}"

# Route fleet-runtime filters to the fleet binary and joint-solver filters
# (BM_Joint*, BM_Recolour*) to the joint binary; everything else goes to the
# default scaling binary. BENCH_BIN still overrides all of them.
bench_name="bench_scaling_runtime"
if [[ "${filter}" == BM_Fleet* ]]; then
  bench_name="bench_fleet"
elif [[ "${filter}" == BM_Joint* || "${filter}" == BM_Recolour* ]]; then
  bench_name="bench_joint"
elif [[ "${filter}" == BM_Dynamics* || "${filter}" == BM_Workload* ]]; then
  bench_name="bench_dynamics"
fi

bin="${BENCH_BIN:-}"
if [[ -z "${bin}" ]]; then
  for candidate in \
      "${repo_root}/build-perf/bench/${bench_name}" \
      "${repo_root}/build/bench/${bench_name}"; do
    if [[ -x "${candidate}" ]]; then
      bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${bin}" || ! -x "${bin}" ]]; then
  echo "error: ${bench_name} not found; build it first, e.g.:" >&2
  echo "  cmake --preset perf && cmake --build --preset perf -j" >&2
  exit 1
fi

metrics_out="${out%.json}.metrics.json"
tmp="$(mktemp "${out}.XXXXXX")"
tmp_metrics="$(mktemp "${metrics_out}.XXXXXX")"
trap 'rm -f "${tmp}" "${tmp_metrics}"' EXIT

if ! "${bin}" \
    --metrics="${tmp_metrics}" \
    --benchmark_filter="${filter}" \
    --benchmark_min_time=0.5 \
    --benchmark_format=json \
    --benchmark_out_format=json \
    --benchmark_out="${tmp}" >/dev/null; then
  echo "error: ${bin} exited non-zero (filter '${filter}')" >&2
  exit 1
fi

# -s guards the empty-file case (google-benchmark exits 0 on a filter that
# matches nothing, without writing output); the jq output is compared as a
# string because jq 1.6's -e exits 0 on empty input.
if [[ ! -s "${tmp}" ]] ||
    [[ "$(jq '.benchmarks | length > 0' "${tmp}" 2>/dev/null)" != "true" ]]; then
  echo "error: ${bin} produced no benchmark results for filter '${filter}'" >&2
  echo "       (missing, invalid, or empty .benchmarks JSON)" >&2
  exit 1
fi

# Refuse to record non-Release numbers: they are not comparable with the
# checked-in baselines. wolt_build_type is the binary's own CMAKE_BUILD_TYPE
# stamp; library_build_type (google-benchmark's NDEBUG-based guess) is the
# fallback for binaries predating the stamp.
build_type="$(jq -r '.context.wolt_build_type // .context.library_build_type // "unknown"' "${tmp}")"
if [[ "${allow_debug}" -ne 1 && "$(echo "${build_type}" | tr '[:upper:]' '[:lower:]')" != "release" ]]; then
  echo "error: refusing to record a '${build_type}' build (only Release runs are comparable)" >&2
  echo "       build with: cmake --preset perf && cmake --build --preset perf -j" >&2
  echo "       or pass --allow-debug to record anyway" >&2
  exit 1
fi

# The metrics snapshot must at least parse; counter totals vary with the
# iteration counts google-benchmark chose, so only validity is checked.
if [[ ! -s "${tmp_metrics}" ]] || ! jq -e . "${tmp_metrics}" >/dev/null 2>&1; then
  echo "error: ${bin} produced no valid metrics snapshot" >&2
  exit 1
fi

mv "${tmp}" "${out}"
mv "${tmp_metrics}" "${metrics_out}"
trap - EXIT
echo "wrote ${out} ($(jq '.benchmarks | length' "${out}") benchmarks)" >&2
echo "wrote ${metrics_out} (metrics snapshot)" >&2
