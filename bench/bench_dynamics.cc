// Microbenchmarks for the trace-driven dynamic scenario engine
// (google-benchmark): raw trace generation per mobility model
// (BM_WorkloadGenerate), the frontier replay at each rung of the
// reoptimization budget ladder (BM_DynamicsFrontier — its regret /
// reassociation-rate counters are the stickiness-vs-throughput frontier),
// and the sweep engine over a dynamic grid at 1/2/4/8 threads
// (BM_DynamicsSweep), which also asserts in-process that the per-task CSV
// is byte-identical at every thread count. Recorded into BENCH_sweep.json
// by bench/run_benches.sh (filters starting with BM_Dynamics or
// BM_Workload route here).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bench_util.h"
#include "core/controller.h"
#include "core/wolt.h"
#include "model/network.h"
#include "sim/dynamics.h"
#include "sim/scenario.h"
#include "sim/workload.h"
#include "sweep/engine.h"
#include "sweep/grid.h"
#include "sweep/report.h"
#include "util/rng.h"

namespace {

using namespace wolt;

sim::ScenarioParams FloorScenario(std::size_t extenders) {
  sim::ScenarioParams p;
  p.width_m = 120.0;
  p.height_m = 80.0;
  p.num_users = 0;
  p.num_extenders = extenders;
  return p;
}

sim::WorkloadParams DynamicWorkload(sim::MobilityModel model,
                                    double horizon) {
  sim::WorkloadParams wp;
  wp.horizon = horizon;
  wp.initial_users = 24;
  wp.arrival_rate = 1.0;
  wp.mean_session = horizon / 2.0;
  wp.mobility.model = model;
  wp.move_tick = 1.0;
  wp.load = sim::LoadCurve::kDiurnal;
  wp.load_period = horizon / 2.0;
  wp.background_share = 0.3;
  return wp;
}

// Trace generation alone: the DES walk over mobility, churn, diurnal load
// and background flips, per mobility model.
void BM_WorkloadGenerate(benchmark::State& state) {
  const auto model = static_cast<sim::MobilityModel>(state.range(0));
  const sim::ScenarioGenerator gen(FloorScenario(15));
  util::Rng topo_rng(0xD15C0ULL);
  const model::Network base = gen.Generate(topo_rng);
  const sim::WorkloadParams wp = DynamicWorkload(model, 48.0);
  std::int64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const sim::WorkloadTrace trace = sim::GenerateTrace(gen, base, wp, seed++);
    events += static_cast<std::int64_t>(trace.events.size());
    benchmark::DoNotOptimize(trace.events.data());
  }
  state.SetItemsProcessed(events);
  state.counters["events"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_WorkloadGenerate)
    ->ArgName("model")
    ->Arg(static_cast<int>(sim::MobilityModel::kTeleport))
    ->Arg(static_cast<int>(sim::MobilityModel::kWaypoint))
    ->Arg(static_cast<int>(sim::MobilityModel::kHotspot))
    ->Unit(benchmark::kMillisecond);

// Frontier replay of one fixed trace at each budget rung (1 = hold-last-
// good ... 4 = full policy). The regret / reassociation counters trace out
// the stickiness-vs-throughput frontier that the recorded run archives.
void BM_DynamicsFrontier(benchmark::State& state) {
  const int units = static_cast<int>(state.range(0));
  const sim::ScenarioGenerator gen(FloorScenario(10));
  util::Rng topo_rng(0xF107ULL);
  const model::Network base = gen.Generate(topo_rng);
  const sim::WorkloadTrace trace =
      sim::GenerateTrace(gen, base, DynamicWorkload(
                                        sim::MobilityModel::kWaypoint, 36.0),
                         7);
  sim::FrontierParams params;
  params.epoch_length = 12.0;
  params.epochs = 3;
  params.tier = core::TierForBudgetUnits(units);
  sim::FrontierResult last;
  for (auto _ : state) {
    core::WoltOptions wopt;
    wopt.subset_search = true;
    last = sim::RunTraceFrontier(
        base, trace, std::make_unique<core::WoltPolicy>(wopt), params);
    benchmark::DoNotOptimize(last.mean_aggregate_mbps);
  }
  state.counters["aggregate_mbps"] = last.mean_aggregate_mbps;
  state.counters["regret"] = last.regret;
  state.counters["reassoc_rate"] = last.reassoc_per_user_epoch;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(params.epochs));
}
BENCHMARK(BM_DynamicsFrontier)
    ->ArgName("budget")
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

sweep::SweepGrid DynamicGrid() {
  sweep::SweepGrid grid;
  grid.master_seed = 6021;
  grid.SeedRange(4);
  grid.users = {12};
  grid.extenders = {8};
  grid.sharing = {model::PlcSharing::kMaxMinActive};
  grid.policies = {sweep::PolicyKind::kWolt, sweep::PolicyKind::kGreedy};
  grid.mobility = {sim::MobilityModel::kWaypoint,
                   sim::MobilityModel::kHotspot};
  grid.churn_rates = {0.5};
  grid.load_curves = {sim::LoadCurve::kDiurnal};
  grid.reopt_budgets = {2, 4};
  grid.workload.load_period = 12.0;
  grid.frontier_epoch_length = 8.0;
  grid.frontier_epochs = 2;
  return grid;
}

// Dynamic-grid sweep wall-clock scaling with thread count. The work is
// bit-identical at every thread count; this benchmark *asserts* that (the
// acceptance gate for the frontier sweep) by diffing the per-task CSV of
// every run against a single-threaded reference.
void BM_DynamicsSweep(benchmark::State& state) {
  const sweep::SweepGrid grid = DynamicGrid();
  static const std::string* reference = [] {
    sweep::SweepOptions one;
    one.threads = 1;
    const sweep::SweepResult r = sweep::SweepEngine(one).Run(DynamicGrid());
    return new std::string(sweep::TaskCsvString(r));
  }();
  sweep::SweepOptions options;
  options.threads = static_cast<int>(state.range(0));
  sweep::SweepEngine engine(options);
  double regret = 0.0;
  for (auto _ : state) {
    const sweep::SweepResult result = engine.Run(grid);
    const std::string csv = sweep::TaskCsvString(result);
    if (csv != *reference) {
      std::fprintf(stderr,
                   "FATAL: dynamic sweep CSV diverged at %d threads\n",
                   options.threads);
      std::abort();
    }
    regret = result.groups[0].regret.Mean();
    benchmark::DoNotOptimize(csv.data());
  }
  state.counters["tasks"] = static_cast<double>(grid.NumTasks());
  state.counters["mean_regret"] = regret;
}
BENCHMARK(BM_DynamicsSweep)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): --trace=/--metrics= are consumed
// by the ObsSession and stripped before google-benchmark's flag parser
// (which rejects unknown flags) sees argv.
int main(int argc, char** argv) {
  wolt::bench::ObsSession obs(argc, argv);
  wolt::bench::ObsSession::Strip(argc, argv);
#ifdef WOLT_BENCH_BUILD_TYPE
  benchmark::AddCustomContext("wolt_build_type", WOLT_BENCH_BUILD_TYPE);
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
