// Ext-1 — fairness-aware Phase II: the paper notes WOLT optimizes
// efficiency, not fairness (§V-D). This bench swaps Problem 2's WiFi-sum
// objective for proportional fairness (sum of log user throughput) and
// measures the aggregate-vs-Jain tradeoff, alongside the weighted-TDMA
// backhaul knob from the 1901 QoS mode.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/wolt.h"
#include "plc/tdma.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Ext-1 — fairness extensions (proportional-fair Phase II, TDMA QoS)",
      "(a) WOLT with WiFi-sum vs proportional-fair Phase II objective;\n"
      "(b) weighted 1901 TDMA slots as a backhaul QoS knob.");

  std::printf("(a) Phase-II objective tradeoff (testbed scale, 40 trials)\n");
  const testbed::LabTestbed lab;
  util::Rng rng(2020);
  const auto topologies = lab.GenerateTopologies(40, rng);

  core::WoltPolicy wolt_sum;  // paper default
  core::WoltOptions pf_opts;
  pf_opts.phase2_objective = assign::Phase2Objective::kProportionalFair;
  core::WoltPolicy wolt_pf(pf_opts);
  core::GreedyPolicy greedy;
  std::vector<core::AssociationPolicy*> policies = {&wolt_sum, &wolt_pf,
                                                    &greedy};
  const auto results = sim::RunNetworkTrials(topologies, policies);
  util::Table table({"variant", "mean_aggregate_mbps", "mean_jain"});
  const std::vector<std::string> names = {
      "WOLT (WiFi-sum Phase II)", "WOLT (proportional-fair Phase II)",
      "Greedy"};
  for (std::size_t p = 0; p < results.size(); ++p) {
    table.AddRow({names[p], util::Fmt(results[p].MeanAggregate(), 1),
                  util::Fmt(results[p].MeanJain(), 3)});
  }
  table.Print();

  std::printf("\n(b) weighted TDMA backhaul shares (two saturated links)\n");
  const std::vector<double> rates = {100.0, 100.0};
  const std::vector<double> demands = {1e9, 1e9};
  util::Table tdma_table({"weights", "link1_mbps", "link2_mbps"});
  for (double w1 : {1.0, 2.0, 4.0}) {
    const std::vector<double> weights = {w1, 1.0};
    const plc::TdmaSchedule s = plc::ScheduleTdma(rates, demands, weights);
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f:1", w1);
    tdma_table.AddRow({label, util::Fmt(s.throughput[0], 1),
                       util::Fmt(s.throughput[1], 1)});
  }
  tdma_table.Print();
  std::printf(
      "\nTakeaway: the proportional-fair objective buys a markedly higher\n"
      "Jain index for a modest aggregate cost, and TDMA weights let an\n"
      "operator bias the backhaul deliberately instead of time-fairly.\n");
  bench::PrintFooter();
  return 0;
}
