// Abl-2 — Phase-II solver ablation: greedy insertion alone, + relocation
// local search, multi-start, the projected-gradient NLP (the paper's
// interior-point analogue), and brute force as ground truth, all on the
// WiFi-sum objective of Problem 2. Reports the mean optimality gap.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "assign/brute_force.h"
#include "assign/local_search.h"
#include "assign/nlp.h"
#include "bench_util.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  using assign::Phase2Objective;
  bench::PrintHeader(
      "Abl-2 — Phase-II solver comparison (Problem 2, WiFi-sum objective)",
      "Random 8-user / 3-extender instances with 2 users fixed by a\n"
      "Phase-I-like seed; 40 instances; gap vs exhaustive optimum.");

  const int kInstances = 40;
  const std::size_t kUsers = 8, kExts = 3;

  struct Solver {
    std::string name;
    std::function<double(const model::Network&, const model::Assignment&,
                         const std::vector<std::size_t>&)>
        run;
  };
  assign::LocalSearchOptions no_ls;
  const std::vector<Solver> solvers = {
      {"greedy-insert only",
       [&](const model::Network& net, const model::Assignment& fixed,
           const std::vector<std::size_t>& movable) {
         model::Assignment a = fixed;
         assign::GreedyInsert(net, a, movable, no_ls);
         return assign::Phase2Value(net, a, Phase2Objective::kWifiSum, {});
       }},
      {"greedy + local search",
       [&](const model::Network& net, const model::Assignment& fixed,
           const std::vector<std::size_t>& movable) {
         model::Assignment a = fixed;
         assign::GreedyInsert(net, a, movable, no_ls);
         assign::RelocateLocalSearch(net, a, movable, no_ls);
         return assign::Phase2Value(net, a, Phase2Objective::kWifiSum, {});
       }},
      {"multi-start (WOLT default)",
       [&](const model::Network& net, const model::Assignment& fixed,
           const std::vector<std::size_t>& movable) {
         model::Assignment a = fixed;
         return assign::SolvePhase2MultiStart(net, a, movable);
       }},
      {"projected-gradient NLP",
       [&](const model::Network& net, const model::Assignment& fixed,
           const std::vector<std::size_t>& movable) {
         return assign::SolvePhase2Nlp(net, fixed, movable).objective_rounded;
       }},
  };

  std::vector<double> gap_sum(solvers.size(), 0.0);
  std::vector<int> optimal_hits(solvers.size(), 0);
  double nlp_fractionality_max = 0.0;

  util::Rng rng(2020);
  for (int inst = 0; inst < kInstances; ++inst) {
    model::Network net(kUsers, kExts);
    for (std::size_t j = 0; j < kExts; ++j) {
      net.SetPlcRate(j, rng.Uniform(20.0, 160.0));
    }
    for (std::size_t i = 0; i < kUsers; ++i) {
      for (std::size_t j = 0; j < kExts; ++j) {
        net.SetWifiRate(i, j, rng.Uniform(5.0, 65.0));
      }
    }
    model::Assignment fixed(kUsers);
    fixed.Assign(0, 0);
    fixed.Assign(1, 1);
    std::vector<std::size_t> movable;
    for (std::size_t i = 2; i < kUsers; ++i) movable.push_back(i);

    const assign::BruteForceResult bf = assign::SolveBruteForceObjective(
        net, fixed, [&](const model::Assignment& cand) {
          return assign::Phase2Value(net, cand, Phase2Objective::kWifiSum, {});
        });

    for (std::size_t s = 0; s < solvers.size(); ++s) {
      const double value = solvers[s].run(net, fixed, movable);
      gap_sum[s] += 1.0 - value / bf.best_aggregate_mbps;
      if (value >= bf.best_aggregate_mbps - 1e-6) ++optimal_hits[s];
    }
    nlp_fractionality_max =
        std::max(nlp_fractionality_max,
                 assign::SolvePhase2Nlp(net, fixed, movable).max_fractionality);
  }

  util::Table table({"solver", "mean_gap_to_optimum", "optimal_hits"});
  for (std::size_t s = 0; s < solvers.size(); ++s) {
    table.AddRow({solvers[s].name,
                  util::FmtPct(gap_sum[s] / kInstances, 2),
                  std::to_string(optimal_hits[s]) + "/" +
                      std::to_string(kInstances)});
  }
  table.Print();
  std::printf(
      "\nTheorem 3 check: max fractionality of the converged NLP points "
      "across all instances = %.2e (integral optima, as the paper reports).\n",
      nlp_fractionality_max);
  bench::PrintFooter();
  return 0;
}
