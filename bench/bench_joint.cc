// Microbenchmarks for the joint association + channel-assignment solver
// (google-benchmark): the full alternating solve at enterprise floor sizes
// (BM_JointAssociate) and the association-weighted greedy recolouring alone
// (BM_Recolour), which is the per-round inner step the alternating loop
// amortizes. Recorded into BENCH_scaling.json by bench/run_benches.sh
// (filters starting with BM_Joint or BM_Recolour route here).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "assign/joint.h"
#include "bench_util.h"
#include "core/wolt.h"
#include "model/network.h"
#include "sim/scenario.h"
#include "util/rng.h"
#include "wifi/channels.h"

namespace {

using namespace wolt;

model::Network FloorNet(std::size_t users, std::size_t extenders) {
  sim::ScenarioParams p;
  p.width_m = 120.0;
  p.height_m = 80.0;
  p.num_users = users;
  p.num_extenders = extenders;
  sim::ScenarioGenerator gen(p);
  util::Rng rng(0x0117E57ULL + users * 31 + extenders);
  return gen.Generate(rng);
}

void BM_JointAssociate(benchmark::State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const std::size_t extenders = static_cast<std::size_t>(state.range(1));
  const model::Network net = FloorNet(users, extenders);
  assign::JointOptions options;
  options.num_channels = 3;
  options.carrier_sense_range_m = 60.0;
  options.max_rounds = 4;
  const assign::JointAssociator associate = core::WoltJointAssociator();
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const assign::JointResult r =
        assign::SolveJointAlternating(net, associate, options);
    rounds += r.rounds;
    benchmark::DoNotOptimize(r.aggregate_mbps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(users));
  state.counters["rounds"] = benchmark::Counter(
      static_cast<double>(rounds), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_JointAssociate)
    ->ArgNames({"users", "extenders"})
    ->Args({36, 10})
    ->Args({124, 15})
    ->Args({200, 30})
    ->Args({500, 30})
    ->Unit(benchmark::kMillisecond);

void BM_Recolour(benchmark::State& state) {
  const std::size_t extenders = static_cast<std::size_t>(state.range(0));
  const model::Network net = FloorNet(1, extenders);
  util::Rng rng(0xC0107ULL);
  std::vector<double> weights(extenders);
  for (double& w : weights) w = rng.Uniform(0.0, 50.0);
  wifi::ChannelPlanParams params;
  params.num_channels = 3;
  params.interference_range_m = 60.0;
  for (auto _ : state) {
    const std::vector<int> plan =
        wifi::AssignChannelsWeighted(net, weights, params);
    benchmark::DoNotOptimize(plan.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(extenders));
}
BENCHMARK(BM_Recolour)
    ->ArgName("extenders")
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): --trace=/--metrics= are consumed
// by the ObsSession and stripped before google-benchmark's flag parser (which
// rejects unknown flags) sees argv.
int main(int argc, char** argv) {
  wolt::bench::ObsSession obs(argc, argv);
  wolt::bench::ObsSession::Strip(argc, argv);
#ifdef WOLT_BENCH_BUILD_TYPE
  benchmark::AddCustomContext("wolt_build_type", WOLT_BENCH_BUILD_TYPE);
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
