// Abl-5 — quantifying the paper's channel assumption: §V-A assumes every
// extender operates on a non-overlapping WiFi channel, hence zero
// inter-cell interference. With 15 extenders and three orthogonal 2.4 GHz
// channels that cannot literally hold; this bench measures how much
// aggregate the assumption is worth, and how much of the loss a proper
// channel plan (graph colouring over the interference graph) recovers
// compared to everyone camping on channel 1.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/wolt.h"
#include "util/rng.h"
#include "util/table.h"
#include "wifi/channels.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Abl-5 — the non-overlapping-channel assumption (§V-A)",
      "Enterprise floor (15 extenders, 36 users, 30 trials); WOLT-S\n"
      "associations evaluated under three channel regimes.");

  const sim::ScenarioGenerator gen(bench::EnterpriseParams(36));
  const wifi::ChannelPlanParams plan{3, 60.0};

  core::WoltOptions so;
  so.subset_search = true;
  core::WoltPolicy wolts(so);

  double free_air = 0.0, colored = 0.0, same_channel = 0.0;
  std::size_t colored_conflicts = 0, same_conflicts = 0;
  const int kTrials = 30;
  util::Rng rng(2020);
  for (int t = 0; t < kTrials; ++t) {
    util::Rng trial_rng = rng.Fork();
    const model::Network net = gen.Generate(trial_rng);
    const model::Assignment a = wolts.AssociateFresh(net);

    free_air +=
        model::Evaluator().AggregateThroughput(net, a) / kTrials;

    const std::vector<int> plan_channels = wifi::AssignChannels(net, plan);
    model::EvalOptions with_plan;
    with_plan.wifi_contention_domain = wifi::ContentionDomains(
        net, plan_channels, plan.interference_range_m);
    colored +=
        model::Evaluator(with_plan).AggregateThroughput(net, a) / kTrials;
    colored_conflicts +=
        wifi::CountConflicts(net, plan_channels, plan.interference_range_m);

    const std::vector<int> one_channel = wifi::SameChannelPlan(net);
    model::EvalOptions with_one;
    with_one.wifi_contention_domain = wifi::ContentionDomains(
        net, one_channel, plan.interference_range_m);
    same_channel +=
        model::Evaluator(with_one).AggregateThroughput(net, a) / kTrials;
    same_conflicts +=
        wifi::CountConflicts(net, one_channel, plan.interference_range_m);
  }

  util::Table table({"channel_regime", "aggregate_mbps", "vs_assumption",
                     "conflicts/trial"});
  table.AddRow({"non-overlapping (paper assumption)", util::Fmt(free_air, 1),
                "+0.0%", "0.0"});
  table.AddRow({"3 channels, colouring plan", util::Fmt(colored, 1),
                util::FmtPct(colored / free_air - 1.0),
                util::Fmt(static_cast<double>(colored_conflicts) / kTrials,
                          1)});
  table.AddRow({"single shared channel", util::Fmt(same_channel, 1),
                util::FmtPct(same_channel / free_air - 1.0),
                util::Fmt(static_cast<double>(same_conflicts) / kTrials, 1)});
  table.Print();
  std::printf(
      "\nTakeaway: at 15 extenders on one floor, three orthogonal channels\n"
      "cannot fully deliver the paper's interference-free assumption — even\n"
      "a colouring plan loses roughly half the aggregate, though it still\n"
      "recovers ~3x over a single shared channel. The assumption is fine at\n"
      "the paper's 3-extender testbed scale but optimistic at enterprise\n"
      "density (the carrier-sense range spans several grid cells).\n");
  bench::PrintFooter();
  return 0;
}
