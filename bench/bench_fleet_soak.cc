// Journaled fleet chaos-soak CLI — the driver behind ci.sh's kill-and-
// resume smoke and a handy standalone reproduction tool.
//
// Runs a deterministic chaos fleet (wire faults, PLC crashes, churn, one
// permanently wedged shard) with optional crash-safe journaling, renders
// FleetResult::Report() to a file or stdout, and exits non-zero if the run
// failed or any fleet invariant (isolation, accounting, degraded-hold) was
// violated. Because the runtime is deterministic, two invocations with the
// same --shards/--rounds/--seed produce byte-identical reports — even when
// one of them was SIGKILLed mid-run and resumed with --resume.
//
// SIGINT/SIGTERM stop the run cooperatively at the next round boundary
// (async-signal-safe handler, see bench::CancelOnSignal): the journal is
// flushed round-aligned, the partial report is written, and the process
// exits 128+signo — a --resume invocation then completes the run with a
// byte-identical report.
//
// Usage:
//   bench_fleet_soak [--shards=N] [--rounds=N] [--threads=N] [--seed=N]
//                    [--journal=PATH] [--resume] [--report=PATH]
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "fleet/runtime.h"
#include "io/vfs.h"
#include "util/fileio.h"

namespace {

std::atomic<bool> g_cancel{false};

}  // namespace

namespace {

bool ParseU64(const char* arg, const char* key, std::uint64_t* out) {
  const std::size_t n = std::strlen(key);
  if (std::strncmp(arg, key, n) != 0) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg + n, &end, 10);
  if (end == arg + n || *end != '\0') {
    std::cerr << "bench_fleet_soak: bad value in '" << arg << "'\n";
    std::exit(2);
  }
  *out = v;
  return true;
}

bool ParseStr(const char* arg, const char* key, std::string* out) {
  const std::size_t n = std::strlen(key);
  if (std::strncmp(arg, key, n) != 0) return false;
  *out = arg + n;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wolt;

  std::uint64_t shards = 64;
  std::uint64_t rounds = 40;
  std::uint64_t threads = 4;
  std::uint64_t seed = 0xF1EE750AC5ULL;
  std::string journal;
  std::string report_path;
  bool resume = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseU64(arg, "--shards=", &shards) ||
        ParseU64(arg, "--rounds=", &rounds) ||
        ParseU64(arg, "--threads=", &threads) ||
        ParseU64(arg, "--seed=", &seed) ||
        ParseStr(arg, "--journal=", &journal) ||
        ParseStr(arg, "--report=", &report_path)) {
      continue;
    }
    if (std::strcmp(arg, "--resume") == 0) {
      resume = true;
      continue;
    }
    std::cerr << "bench_fleet_soak: unknown argument '" << arg << "'\n";
    return 2;
  }

  fleet::FleetParams p;
  p.num_shards = static_cast<std::size_t>(shards);
  p.rounds = rounds;
  p.threads = static_cast<int>(threads);
  p.queue_capacity = static_cast<std::size_t>(shards) * 6;
  p.batch_per_shard = 8;
  p.chaos_from = 2;
  p.chaos_to = rounds > 2 ? rounds - 2 : rounds;
  fault::WireFaults w;
  w.loss = 0.05;
  w.duplicate = 0.05;
  w.corrupt = 0.15;
  p.shard.wire = fault::FaultPlaneParams::Uniform(w);
  p.shard.plc_crash_prob = 0.1;
  p.shard.plc_down_rounds = 2;
  p.shard.departure_prob = 0.08;
  p.shard.decode_storm_threshold = 6;
  // One permanently wedged shard: crash-loops into the circuit breaker,
  // gets probed, re-parks. Exercises the whole supervision cycle under
  // journaling.
  p.poison_shards = {static_cast<std::uint32_t>(shards / 3)};
  p.poison_from = 2;
  p.poison_to = ~std::uint64_t{0};
  p.supervisor.backoff_initial = 1;
  p.supervisor.crash_loop_threshold = 2;
  p.supervisor.crash_loop_window = 8;
  p.supervisor.probe_after = 5;
  p.reopt_units_per_round = static_cast<std::size_t>(shards) + 2;
  p.journal_path = journal;
  p.resume = resume;
  p.cancel = &g_cancel;
  bench::CancelOnSignal::Install(&g_cancel);

  fleet::FleetRuntime fleet(p, seed);
  const fleet::FleetResult result = fleet.Run();
  if (!result.completed) {
    std::cerr << "bench_fleet_soak: run failed: " << result.error << "\n";
    return 1;
  }

  const std::string report = result.Report();
  if (report_path.empty()) {
    std::cout << report;
  } else {
    // Atomic (temp + fsync + rename): a crash mid-write can never leave a
    // half-report where a previous good one stood.
    const wolt::io::IoStatus st = util::WriteFileAtomic(report_path, report);
    wolt::io::CountWriteError(st, report_path);
    if (!st.ok()) return 1;
  }

  if (result.cancelled) {
    std::fprintf(stderr,
                 "bench_fleet_soak: interrupted by signal %d; journal %s "
                 "flushed — rerun with --resume to finish\n",
                 bench::CancelOnSignal::SignalNumber(),
                 journal.empty() ? "(none)" : journal.c_str());
    return bench::CancelOnSignal::ExitCode();
  }

  std::cerr << "fleet: " << shards << " shards x " << rounds << " rounds, "
            << result.resumed_rounds << " resumed; enqueued="
            << result.queue.enqueued << " shed=" << result.queue.shed
            << " restarts=" << result.restarts
            << " breaks=" << result.circuit_breaks << "\n";

  if (!result.isolation_ok || !result.accounting_ok ||
      !result.degraded_held_ok) {
    std::cerr << "bench_fleet_soak: INVARIANT VIOLATION (isolation="
              << result.isolation_ok << " accounting=" << result.accounting_ok
              << " degraded_held=" << result.degraded_held_ok << ")\n";
    return 1;
  }
  return 0;
}
