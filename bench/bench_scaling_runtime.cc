// Runtime/scalability microbenchmarks (google-benchmark): the O(|A|^3)
// Hungarian core (§IV-B complexity claim), full WOLT association at
// enterprise scales (the paper evaluates up to 15 extenders / 124+ users),
// the greedy baseline, and the throughput evaluator.
#include <benchmark/benchmark.h>

#include <vector>

#include "assign/hungarian.h"
#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "model/evaluator.h"
#include "sim/scenario.h"
#include "util/rng.h"

namespace {

using namespace wolt;

assign::Matrix RandomUtilities(std::size_t rows, std::size_t cols,
                               util::Rng& rng) {
  assign::Matrix m(rows, std::vector<double>(cols, 0.0));
  for (auto& row : m) {
    for (double& cell : row) cell = rng.Uniform(1.0, 100.0);
  }
  return m;
}

void BM_Hungarian(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(42);
  const assign::Matrix m = RandomUtilities(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign::SolveAssignmentMax(m));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Hungarian)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_HungarianRectangular(benchmark::State& state) {
  // The WOLT Phase-I shape: |A| extenders x |U| users.
  const std::size_t extenders = 15;
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  util::Rng rng(42);
  const assign::Matrix m = RandomUtilities(extenders, users, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign::SolveAssignmentMax(m));
  }
}
BENCHMARK(BM_HungarianRectangular)->Arg(36)->Arg(124)->Arg(200)->Arg(400);

model::Network MakeNetwork(std::size_t users, std::size_t extenders) {
  sim::ScenarioParams p;
  p.num_extenders = extenders;
  p.num_users = users;
  sim::ScenarioGenerator gen(p);
  util::Rng rng(7);
  return gen.Generate(rng);
}

void BM_WoltAssociate(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)),
                  static_cast<std::size_t>(state.range(1)));
  core::WoltPolicy wolt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wolt.AssociateFresh(net));
  }
}
BENCHMARK(BM_WoltAssociate)
    ->Args({36, 10})
    ->Args({36, 15})
    ->Args({124, 15})
    ->Args({200, 15})
    ->Args({200, 30});

void BM_WoltSubsetAssociate(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)), 15);
  core::WoltOptions so;
  so.subset_search = true;
  core::WoltPolicy wolt(so);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wolt.AssociateFresh(net));
  }
}
BENCHMARK(BM_WoltSubsetAssociate)->Arg(36)->Arg(124);

void BM_GreedyAssociate(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)), 15);
  core::GreedyPolicy greedy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy.AssociateFresh(net));
  }
}
BENCHMARK(BM_GreedyAssociate)->Arg(36)->Arg(124)->Arg(200);

void BM_RssiAssociate(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)), 15);
  core::RssiPolicy rssi;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rssi.AssociateFresh(net));
  }
}
BENCHMARK(BM_RssiAssociate)->Arg(36)->Arg(200);

void BM_Evaluator(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)), 15);
  core::RssiPolicy rssi;
  const model::Assignment a = rssi.AssociateFresh(net);
  const model::Evaluator evaluator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(net, a));
  }
}
BENCHMARK(BM_Evaluator)->Arg(36)->Arg(124)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
