// Runtime/scalability microbenchmarks (google-benchmark): the O(|A|^3)
// Hungarian core (§IV-B complexity claim), full WOLT association at
// enterprise scales (the paper evaluates up to 15 extenders / 124+ users;
// we push to 1000 users / 50 extenders), the greedy baseline, the
// throughput evaluator, and the Phase-II move-evaluation loop in isolation.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "assign/hungarian.h"
#include "assign/local_search.h"
#include "bench_util.h"
#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "fault/storage.h"
#include "model/evaluator.h"
#include "model/incremental.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "sim/scenario.h"
#include "sweep/engine.h"
#include "sweep/grid.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace wolt;

assign::Matrix RandomUtilities(std::size_t rows, std::size_t cols,
                               util::Rng& rng) {
  assign::Matrix m(rows, cols, 0.0);
  for (std::size_t k = 0; k < m.size(); ++k) {
    m.data()[k] = rng.Uniform(1.0, 100.0);
  }
  return m;
}

void BM_Hungarian(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(42);
  const assign::Matrix m = RandomUtilities(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign::SolveAssignmentMax(m));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Hungarian)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_HungarianRectangular(benchmark::State& state) {
  // The WOLT Phase-I shape: |A| extenders x |U| users.
  const std::size_t extenders = 15;
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  util::Rng rng(42);
  const assign::Matrix m = RandomUtilities(extenders, users, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(assign::SolveAssignmentMax(m));
  }
}
BENCHMARK(BM_HungarianRectangular)->Arg(36)->Arg(124)->Arg(200)->Arg(400);

model::Network MakeNetwork(std::size_t users, std::size_t extenders) {
  sim::ScenarioParams p;
  p.num_extenders = extenders;
  p.num_users = users;
  sim::ScenarioGenerator gen(p);
  util::Rng rng(7);
  return gen.Generate(rng);
}

void BM_WoltAssociate(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)),
                  static_cast<std::size_t>(state.range(1)));
  core::WoltPolicy wolt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wolt.AssociateFresh(net));
  }
}
BENCHMARK(BM_WoltAssociate)
    ->Args({36, 10})
    ->Args({36, 15})
    ->Args({124, 15})
    ->Args({200, 15})
    ->Args({200, 30})
    ->Args({500, 30})
    ->Args({1000, 50})
    ->Args({2000, 100})
    ->Args({5000, 200})
    ->Unit(benchmark::kMicrosecond);

// The same association with the in-solve parallel multi-start: Phase II's
// independent starts spread over a thread pool, merged deterministically by
// start index — the result is byte-identical to the serial solve at every
// thread count, so only wall time may change (hence UseRealTime; CPU time
// sums across workers).
void BM_WoltAssociatePar(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)),
                  static_cast<std::size_t>(state.range(1)));
  util::ThreadPool pool(static_cast<int>(state.range(2)));
  core::WoltOptions wo;
  wo.phase2_pool = &pool;
  core::WoltPolicy wolt(wo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wolt.AssociateFresh(net));
  }
}
BENCHMARK(BM_WoltAssociatePar)
    ->ArgNames({"users", "ext", "threads"})
    ->Args({1000, 50, 1})
    ->Args({1000, 50, 2})
    ->Args({1000, 50, 4})
    ->Args({1000, 50, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// The same association with and without a MetricsScope installed, from ONE
// benchmark function so the two arms share code layout and heap history —
// range(2) == 1 installs the scope and every solver hook (Hungarian augment
// steps, local-search move tallies, evaluator counters) fires into a live
// registry; range(2) == 0 constructs the identical registry but never
// installs it, so the hooks see a null scope. The /200/15/1 vs /200/15/0
// pair in BENCH_sweep.json is the < 3% instrumentation-overhead guard
// (with WOLT_OBS=OFF the scope install is a no-op and the arms are
// identical code).
void BM_WoltAssociateObs(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)),
                  static_cast<std::size_t>(state.range(1)));
  core::WoltPolicy wolt;
  obs::MetricsRegistry registry;
  std::optional<obs::ScopedMetrics> scoped;
  if (state.range(2) != 0) scoped.emplace(registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wolt.AssociateFresh(net));
  }
  // Surface one counter as proof the hooks were live (the default WOLT
  // Phase II runs on the incremental evaluator, so Hungarian solves — one
  // per Phase I — is the counter guaranteed nonzero per iteration).
  const obs::MetricsSnapshot snap = registry.Snapshot();
  for (const auto& c : snap.counters) {
    if (c.name == "hungarian.solves") {
      state.counters["hungarian_solves"] = static_cast<double>(c.value);
    }
  }
}
BENCHMARK(BM_WoltAssociateObs)
    ->Args({200, 15, 0})
    ->Args({200, 15, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_WoltSubsetAssociate(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)), 15);
  core::WoltOptions so;
  so.subset_search = true;
  core::WoltPolicy wolt(so);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wolt.AssociateFresh(net));
  }
}
BENCHMARK(BM_WoltSubsetAssociate)->Arg(36)->Arg(124);

void BM_GreedyAssociate(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)), 15);
  core::GreedyPolicy greedy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy.AssociateFresh(net));
  }
}
BENCHMARK(BM_GreedyAssociate)->Arg(36)->Arg(124)->Arg(200);

void BM_RssiAssociate(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)), 15);
  core::RssiPolicy rssi;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rssi.AssociateFresh(net));
  }
}
BENCHMARK(BM_RssiAssociate)->Arg(36)->Arg(200);

void BM_Evaluator(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)), 15);
  core::RssiPolicy rssi;
  const model::Assignment a = rssi.AssociateFresh(net);
  const model::Evaluator evaluator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(net, a));
  }
}
BENCHMARK(BM_Evaluator)->Arg(36)->Arg(124)->Arg(200);

// Same evaluation with a reused EvalScratch: the allocation-free hot path
// the Phase-II search and the subset search run on.
void BM_EvaluatorScratch(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)), 15);
  core::RssiPolicy rssi;
  const model::Assignment a = rssi.AssociateFresh(net);
  const model::Evaluator evaluator;
  model::EvalScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.Evaluate(net, a, scratch));
  }
}
BENCHMARK(BM_EvaluatorScratch)->Arg(36)->Arg(124)->Arg(200);

// The Phase-II move-evaluation loop in isolation: relocation + swap local
// search under the end-to-end objective, starting from the RSSI baseline's
// assignment. This is the loop the incremental delta-evaluation engine
// accelerates — every candidate move used to cost a full Evaluate.
void BM_RelocateLocalSearch(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)),
                  static_cast<std::size_t>(state.range(1)));
  core::RssiPolicy rssi;
  const model::Assignment start = rssi.AssociateFresh(net);
  std::vector<std::size_t> movable;
  for (std::size_t i = 0; i < net.NumUsers(); ++i) {
    if (start.IsAssigned(i)) movable.push_back(i);
  }
  assign::LocalSearchOptions options;
  options.objective = assign::Phase2Objective::kEndToEnd;
  for (auto _ : state) {
    model::Assignment a = start;
    benchmark::DoNotOptimize(
        assign::RelocateLocalSearch(net, a, movable, options));
  }
}
BENCHMARK(BM_RelocateLocalSearch)
    ->Args({124, 15})
    ->Args({200, 15})
    ->Args({500, 30})
    ->Unit(benchmark::kMicrosecond);

// A raw apply/revert move cycle on the incremental engine (the unit cost
// the local search pays per candidate).
void BM_IncrementalMove(benchmark::State& state) {
  const model::Network net =
      MakeNetwork(static_cast<std::size_t>(state.range(0)), 15);
  core::RssiPolicy rssi;
  const model::Assignment a = rssi.AssociateFresh(net);
  model::IncrementalEvaluator inc(net, a);
  // Find a user with two reachable extenders.
  std::size_t user = 0;
  int alt = -1;
  for (std::size_t i = 0; i < net.NumUsers() && alt < 0; ++i) {
    const int cur = inc.ExtenderOf(i);
    if (cur < 0) continue;
    for (std::size_t j = 0; j < net.NumExtenders(); ++j) {
      if (static_cast<int>(j) != cur && net.WifiRate(i, j) > 0.0 &&
          net.PlcRate(j) > 0.0) {
        user = i;
        alt = static_cast<int>(j);
        break;
      }
    }
  }
  const int home = inc.ExtenderOf(user);
  for (auto _ : state) {
    inc.ApplyMove(user, alt);
    inc.ApplyMove(user, home);
    benchmark::DoNotOptimize(inc.aggregate_mbps());
  }
}
BENCHMARK(BM_IncrementalMove)->Arg(124)->Arg(500);

// The parallel sweep engine on the Fig. 6a grid shape (scaled down to keep
// iterations short): wall-clock scaling with thread count. The work is
// bit-identical at every thread count — only the wall time may change, which
// is why UseRealTime() is required (CPU time sums across workers). Recorded
// into BENCH_sweep.json by bench/run_benches.sh.
void BM_SweepThroughput(benchmark::State& state) {
  sweep::SweepGrid grid;
  grid.master_seed = 2020;
  grid.SeedRange(24);
  grid.users = {36};
  grid.extenders = {15};
  grid.sharing = {model::PlcSharing::kMaxMinActive};
  grid.policies = {sweep::PolicyKind::kWolt, sweep::PolicyKind::kGreedy,
                   sweep::PolicyKind::kRssi};
  sweep::SweepOptions options;
  options.threads = static_cast<int>(state.range(0));
  sweep::SweepEngine engine(options);
  double aggregate = 0.0;
  for (auto _ : state) {
    const sweep::SweepResult result = engine.Run(grid);
    aggregate = result.groups[0].aggregate_mbps.Mean();
    benchmark::DoNotOptimize(aggregate);
  }
  state.counters["tasks"] = static_cast<double>(grid.NumTasks());
  state.counters["mean_aggregate_mbps"] = aggregate;
}
BENCHMARK(BM_SweepThroughput)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The same grid with crash-safe journaling on, routed through the io::Vfs
// seam. vfs:0 journals to a real temp file (RealVfs, batched fsync policy)
// and records what journaling actually costs with the disk in the loop.
// vfs:1 journals to an in-memory disk (fault::MemVfs): journal encoding +
// seam dispatch without disk latency. vfs:2 wraps that same in-memory disk
// in a zero-probability FaultVfs — identical journal work plus ONE extra
// Vfs layer, so the vfs:2 / vfs:1 ratio isolates exactly what a Vfs
// indirection costs the sweep; ci.sh gates it at <= 1% (if a whole extra
// layer is free, the seam the production path pays for is too).
void BM_SweepThroughputJournal(benchmark::State& state) {
  namespace fs = std::filesystem;
  sweep::SweepGrid grid;
  grid.master_seed = 2020;
  grid.SeedRange(24);
  grid.users = {36};
  grid.extenders = {15};
  grid.sharing = {model::PlcSharing::kMaxMinActive};
  grid.policies = {sweep::PolicyKind::kWolt, sweep::PolicyKind::kGreedy,
                   sweep::PolicyKind::kRssi};
  const int vfs_mode = static_cast<int>(state.range(1));
  const std::string path =
      vfs_mode != 0
          ? std::string("sweep_bench.wal")
          : (fs::temp_directory_path() / "wolt_bench_sweep_journal.wal")
                .string();
  fault::MemVfs mem;
  fault::FaultVfs layered(mem, fault::StorageFaultParams{}, /*seed=*/0);
  sweep::SweepOptions options;
  options.threads = static_cast<int>(state.range(0));
  options.journal_path = path;
  options.vfs = vfs_mode == 0 ? nullptr
                              : (vfs_mode == 1 ? static_cast<io::Vfs*>(&mem)
                                               : &layered);
  double aggregate = 0.0;
  for (auto _ : state) {
    sweep::SweepEngine engine(options);
    const sweep::SweepResult result = engine.Run(grid);
    aggregate = result.groups[0].aggregate_mbps.Mean();
    benchmark::DoNotOptimize(aggregate);
  }
  if (vfs_mode == 0) fs::remove(path);
  state.counters["tasks"] = static_cast<double>(grid.NumTasks());
  state.counters["mean_aggregate_mbps"] = aggregate;
}
BENCHMARK(BM_SweepThroughputJournal)
    ->ArgNames({"threads", "vfs"})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 2})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): --trace=/--metrics= are consumed
// by the ObsSession and stripped before google-benchmark's flag parser (which
// rejects unknown flags) sees argv.
int main(int argc, char** argv) {
  wolt::bench::ObsSession obs(argc, argv);
  wolt::bench::ObsSession::Strip(argc, argv);
  // Build-type provenance for recorded runs: bench/run_benches.sh refuses
  // to record anything but a Release build unless --allow-debug is passed.
#ifdef WOLT_BENCH_BUILD_TYPE
  benchmark::AddCustomContext("wolt_build_type", WOLT_BENCH_BUILD_TYPE);
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
