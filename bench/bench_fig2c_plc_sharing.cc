// Fig. 2c — time-fair PLC medium sharing: with k extenders simultaneously
// active, each delivers ~1/k of its isolation throughput (with higher
// absolute throughput for the better link). Reproduced with the slot-level
// IEEE 1901 CSMA simulator.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "plc/csma1901.h"
#include "plc/timeshare.h"
#include "testbed/traces.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Fig. 2c — time-fair sharing between active PLC extenders",
      "Activate 1..4 extenders simultaneously; paper: each link delivers\n"
      "1/k of its isolation throughput.");

  const plc::Csma1901Params mac;
  // Link MAC rates chosen so isolation throughputs match Fig. 2b's
  // 60/90/120/160 Mbit/s.
  const double unit = plc::IsolationThroughput(1.0, mac);
  const std::vector<double> iso = {60.0, 90.0, 120.0, 160.0};
  std::vector<double> mac_rates;
  for (double v : iso) mac_rates.push_back(v / unit);

  util::Rng rng(2020);
  util::Table table({"active_extenders", "link", "isolation_mbps",
                     "shared_mbps(sim)", "fraction(sim)", "paper_fraction"});
  const auto& fractions = testbed::Fig2cSharingFractions();
  for (int k = 1; k <= 4; ++k) {
    const std::vector<double> rates(mac_rates.begin(), mac_rates.begin() + k);
    const plc::Csma1901Result sim =
        plc::SimulateCsma1901(rates, 20.0, mac, rng);
    for (int j = 0; j < k; ++j) {
      const double measured =
          sim.stations[static_cast<std::size_t>(j)].throughput_mbps;
      table.AddRow({std::to_string(k), "link" + std::to_string(j + 1),
                    util::Fmt(iso[static_cast<std::size_t>(j)], 0),
                    util::Fmt(measured, 1),
                    util::Fmt(measured / iso[static_cast<std::size_t>(j)], 3),
                    util::Fmt(fractions[static_cast<std::size_t>(k - 1)].value,
                              3)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: the per-link fraction tracks 1/k (time fairness),\n"
      "with small contention overhead below the ideal at larger k.\n");
  bench::PrintFooter();
  return 0;
}
