// Ext-2 — finite offered loads: the paper models saturated users (§IV-A,
// "worst case"). Real enterprise users stream video or browse at a few
// Mbit/s. This bench sweeps the per-user offered load on the enterprise
// floor and measures (a) how much of the offered load each policy delivers
// and (b) how quickly the value of clever association evaporates as load
// lightens — quantifying how conservative the saturated-demand assumption
// is.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/rssi.h"
#include "core/wolt.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Ext-2 — finite per-user demands vs the saturated assumption",
      "15 extenders, 36 users, 20 trials; every user offers the same load\n"
      "(0 = saturated). Policies decide from rates alone, as in the paper.");

  const sim::ScenarioGenerator gen(bench::EnterpriseParams(36));
  const model::Evaluator evaluator;

  util::Table table({"per_user_demand", "offered_total", "WOLT-S_mbps",
                     "Greedy_mbps", "RSSI_mbps", "WOLT-S_vs_RSSI"});
  const int kTrials = 20;
  for (double demand : {2.0, 4.0, 8.0, 16.0, 0.0}) {
    double wolts_sum = 0.0, greedy_sum = 0.0, rssi_sum = 0.0;
    util::Rng rng(2020);
    for (int t = 0; t < kTrials; ++t) {
      util::Rng trial_rng = rng.Fork();
      model::Network net = gen.Generate(trial_rng);
      for (std::size_t i = 0; i < net.NumUsers(); ++i) {
        net.SetUserDemand(i, demand);
      }
      core::WoltOptions so;
      so.subset_search = true;
      core::WoltPolicy wolts(so);
      core::GreedyPolicy greedy;
      core::RssiPolicy rssi;
      wolts_sum += evaluator.AggregateThroughput(
                       net, wolts.AssociateFresh(net)) / kTrials;
      greedy_sum += evaluator.AggregateThroughput(
                        net, greedy.AssociateFresh(net)) / kTrials;
      rssi_sum += evaluator.AggregateThroughput(
                      net, rssi.AssociateFresh(net)) / kTrials;
    }
    const char* label = demand == 0.0 ? "saturated" : nullptr;
    char buf[32];
    if (!label) {
      std::snprintf(buf, sizeof(buf), "%.0f Mbit/s", demand);
      label = buf;
    }
    table.AddRow({label,
                  demand == 0.0 ? "inf" : util::Fmt(demand * 36.0, 0),
                  util::Fmt(wolts_sum, 1), util::Fmt(greedy_sum, 1),
                  util::Fmt(rssi_sum, 1),
                  util::FmtPct(wolts_sum / rssi_sum - 1.0)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: at light loads every policy delivers ~the offered\n"
      "total and association barely matters; as demand grows the PLC/WiFi\n"
      "bottlenecks bind and the WOLT-S advantage appears — the saturated\n"
      "assumption is the regime where association policy matters most.\n");
  bench::PrintFooter();
  return 0;
}
