// Abl-4 — model fidelity: quantify the error between the flow-level
// formulas the optimizer relies on and the slot-level MAC simulators, over
// systematic sweeps (WiFi rate mixes; PLC population sizes). This is the
// evidence that Eq. 1 / Eq. 2 are trustworthy planning models.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "model/evaluator.h"
#include "plc/csma1901.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "wifi/dcf_sim.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Abl-4 — flow-level formulas vs slot-level MAC simulators",
      "(a) Eq. 1 vs 802.11 DCF across station counts and rate spreads;\n"
      "(b) time-fair share vs IEEE 1901 CSMA across population sizes.");

  util::Rng rng(2020);

  std::printf("(a) WiFi: Eq. 1 (effective rates) vs DCF simulator\n");
  const wifi::DcfParams dcf;
  util::Table wifi_table({"stations", "rate_spread", "model_mbps",
                          "sim_mbps", "error"});
  util::RunningStats wifi_errors;
  const std::vector<double> ladder = {6.5,  13.0, 19.5, 26.0,
                                      39.0, 52.0, 58.5, 65.0};
  for (int n : {2, 3, 5, 8}) {
    for (const char* spread : {"uniform", "bimodal"}) {
      std::vector<double> rates;
      for (int i = 0; i < n; ++i) {
        if (spread[0] == 'u') {
          rates.push_back(ladder[static_cast<std::size_t>(
              rng.UniformInt(0, static_cast<int>(ladder.size()) - 1))]);
        } else {
          rates.push_back(i % 2 == 0 ? 65.0 : 6.5);
        }
      }
      const double model = wifi::AnalyticCellThroughput(rates, dcf);
      const wifi::DcfResult sim = wifi::SimulateDcf(rates, 4.0, dcf, rng);
      const double err = sim.aggregate_mbps / model - 1.0;
      wifi_errors.Add(std::abs(err));
      wifi_table.AddRow({std::to_string(n), spread, util::Fmt(model, 2),
                         util::Fmt(sim.aggregate_mbps, 2),
                         util::FmtPct(err)});
    }
  }
  wifi_table.Print();
  std::printf("mean |error| = %s, max = %s\n",
              util::FmtPct(wifi_errors.Mean()).c_str(),
              util::FmtPct(wifi_errors.Max()).c_str());

  std::printf("\n(b) PLC: c_j/k time-fair model vs 1901 CSMA simulator\n");
  const plc::Csma1901Params mac;
  util::Table plc_table({"extenders", "model_fraction", "sim_fraction_mean",
                         "error"});
  util::RunningStats plc_errors;
  for (int k : {1, 2, 3, 4, 6, 8}) {
    std::vector<double> rates;
    for (int j = 0; j < k; ++j) rates.push_back(rng.Uniform(50.0, 200.0));
    const plc::Csma1901Result sim =
        plc::SimulateCsma1901(rates, 20.0, mac, rng);
    double mean_fraction = 0.0;
    for (int j = 0; j < k; ++j) {
      const double iso = plc::IsolationThroughput(
          rates[static_cast<std::size_t>(j)], mac);
      mean_fraction +=
          sim.stations[static_cast<std::size_t>(j)].throughput_mbps / iso / k;
    }
    const double err = mean_fraction * k - 1.0;  // vs the ideal 1/k each
    plc_errors.Add(std::abs(err));
    plc_table.AddRow({std::to_string(k), util::Fmt(1.0 / k, 3),
                      util::Fmt(mean_fraction, 3), util::FmtPct(err)});
  }
  plc_table.Print();
  std::printf("mean |error| = %s (contention overhead grows mildly with k)\n",
              util::FmtPct(plc_errors.Mean()).c_str());
  bench::PrintFooter();
  return 0;
}
