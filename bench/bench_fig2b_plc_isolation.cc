// Fig. 2b — isolation throughput of individual PLC links (60-160 Mbit/s on
// the paper's four measured outlets). Reproduced from (a) the physical
// channel model at representative wire runs and (b) the slot-level 1901
// simulator running each link alone.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "plc/channel.h"
#include "plc/csma1901.h"
#include "testbed/traces.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Fig. 2b — PLC link isolation throughput",
      "Four outlets of varying link quality; paper measured 60-160 Mbit/s.");

  // Wire runs chosen (tests/plc_channel_test.cc calibration) to span the
  // measured band.
  struct Outlet {
    const char* name;
    plc::PlcPath path;
  };
  const std::vector<Outlet> outlets = {
      {"link1 (long, tapped)", {30.0, 2, 0.0}},
      {"link2 (long, clean)", {30.0, 0, 0.0}},
      {"link3 (medium)", {20.0, 0, 0.0}},
      {"link4 (short, clean)", {6.0, 0, 0.0}},
  };

  const plc::ChannelModel channel;
  const plc::Csma1901Params mac;
  util::Rng rng(2020);

  const auto& reference = testbed::Fig2bPlcIsolationThroughputs();
  util::Table table({"link", "paper_mbps", "channel_model_mbps",
                     "csma1901_sim_mbps", "phy_rate_mbps"});
  for (std::size_t k = 0; k < outlets.size(); ++k) {
    const double capacity = channel.CapacityMbps(outlets[k].path);
    // MAC sim: one station, its link rate set so payload efficiency maps to
    // the channel capacity (IsolationThroughput inverts the framing
    // overhead).
    const double mac_rate =
        capacity / (plc::IsolationThroughput(1.0, mac));
    const plc::Csma1901Result sim = plc::SimulateCsma1901(
        std::vector<double>{mac_rate}, 10.0, mac, rng);
    table.AddRow({reference[k].label, util::Fmt(reference[k].value, 0),
                  util::Fmt(capacity, 1),
                  util::Fmt(sim.aggregate_mbps, 1),
                  util::Fmt(channel.PhyRateMbps(outlets[k].path), 1)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: four links spanning the measured 60-160 Mbit/s\n"
      "band, ordered by wire length / branch taps.\n");
  bench::PrintFooter();
  return 0;
}
