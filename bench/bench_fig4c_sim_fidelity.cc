// Fig. 4c — fidelity of the flow-level simulator: the paper validates its
// simulator against the physical testbed on matched small-scale scenarios.
// Without the hardware we validate one level down: the flow-level evaluator
// (Eq. 1 WiFi sharing + time-fair PLC) against the slot-level 802.11 DCF
// and IEEE 1901 CSMA simulators, plus the noisy testbed emulation against
// the noiseless model across matched topologies.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/wolt.h"
#include "plc/csma1901.h"
#include "sim/hifi.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "wifi/dcf_sim.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Fig. 4c — simulator fidelity validation",
      "(a) Flow-level WiFi formula vs slot-level DCF;\n"
      "(b) flow-level PLC time shares vs slot-level 1901 CSMA;\n"
      "(c) emulated-testbed (noisy) vs simulator (noiseless) aggregates.");

  util::Rng rng(2020);

  // (a) WiFi: Eq. 1 with effective rates vs DCF sim across rate mixes.
  std::printf("(a) WiFi cell aggregate: Eq. 1 model vs slot-level DCF\n");
  const wifi::DcfParams dcf;
  util::Table wifi_table({"phy_rates", "model_mbps", "dcf_sim_mbps",
                          "error"});
  const std::vector<std::vector<double>> mixes = {
      {65.0, 65.0}, {65.0, 26.0}, {52.0, 13.0, 6.5}, {39.0, 39.0, 19.5, 6.5}};
  for (const auto& mix : mixes) {
    std::string label;
    for (double r : mix) label += (label.empty() ? "" : "/") + util::Fmt(r, 0);
    const double model = wifi::AnalyticCellThroughput(mix, dcf);
    const wifi::DcfResult sim = wifi::SimulateDcf(mix, 5.0, dcf, rng);
    wifi_table.AddRow({label, util::Fmt(model, 2),
                       util::Fmt(sim.aggregate_mbps, 2),
                       util::FmtPct(sim.aggregate_mbps / model - 1.0)});
  }
  wifi_table.Print();

  // (b) PLC: 1/k time shares vs 1901 sim airtime.
  std::printf("\n(b) PLC airtime share: time-fair model vs slot-level 1901\n");
  const plc::Csma1901Params mac;
  util::Table plc_table({"active_extenders", "model_share", "sim_share_mean",
                         "max_abs_error"});
  for (int k = 1; k <= 4; ++k) {
    const std::vector<double> rates(static_cast<std::size_t>(k), 100.0);
    const plc::Csma1901Result sim =
        plc::SimulateCsma1901(rates, 20.0, mac, rng);
    double max_err = 0.0, mean = 0.0;
    for (const auto& st : sim.stations) {
      max_err = std::max(max_err, std::abs(st.airtime_share - 1.0 / k));
      mean += st.airtime_share / k;
    }
    plc_table.AddRow({std::to_string(k), util::Fmt(1.0 / k, 3),
                      util::Fmt(mean, 3), util::Fmt(max_err, 3)});
  }
  plc_table.Print();

  // (c) Emulated testbed vs simulator on matched topologies (3 extenders,
  // 7 users — the paper's validation scale).
  std::printf("\n(c) emulated testbed (5%% meas. noise) vs simulator\n");
  const testbed::LabTestbed lab;
  core::WoltPolicy wolt;
  util::Table match_table({"topology", "sim_aggregate", "testbed_aggregate",
                           "error"});
  std::vector<double> errors;
  for (int t = 0; t < 8; ++t) {
    util::Rng topo_rng = rng.Fork();
    const model::Network net = lab.GenerateTopology(topo_rng);
    const model::Assignment a = wolt.AssociateFresh(net);
    const double sim_value =
        model::Evaluator().AggregateThroughput(net, a);
    const auto measured = lab.MeasureUserThroughputs(net, a, rng);
    const double testbed_value = util::Sum(measured);
    errors.push_back(std::abs(testbed_value / sim_value - 1.0));
    match_table.AddRow({std::to_string(t), util::Fmt(sim_value, 1),
                        util::Fmt(testbed_value, 1),
                        util::FmtPct(testbed_value / sim_value - 1.0)});
  }
  match_table.Print();
  std::printf("mean |error| = %s (paper: 'very consistent')\n",
              util::FmtPct(util::Mean(errors)).c_str());

  // (d) Full MAC-level composition (sim/hifi): both hops simulated at slot
  // level and composed, vs the flow-level evaluator, on WOLT assignments.
  std::printf("\n(d) composed slot-level simulation vs flow-level model\n");
  util::Table hifi_table({"topology", "flow_model", "mac_composed",
                          "error"});
  std::vector<double> hifi_errors;
  for (int t = 0; t < 6; ++t) {
    util::Rng topo_rng = rng.Fork();
    const model::Network net = lab.GenerateTopology(topo_rng);
    const model::Assignment a = wolt.AssociateFresh(net);
    const double flow = model::Evaluator().AggregateThroughput(net, a);
    const sim::HifiResult hifi =
        sim::SimulateHifi(net, a, sim::HifiParams{}, rng);
    hifi_errors.push_back(std::abs(hifi.aggregate_mbps / flow - 1.0));
    hifi_table.AddRow({std::to_string(t), util::Fmt(flow, 1),
                       util::Fmt(hifi.aggregate_mbps, 1),
                       util::FmtPct(hifi.aggregate_mbps / flow - 1.0)});
  }
  hifi_table.Print();
  std::printf("mean |error| = %s\n",
              util::FmtPct(util::Mean(hifi_errors)).c_str());
  bench::PrintFooter();
  return 0;
}
