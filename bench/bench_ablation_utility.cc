// Abl-3 — Phase-I utility ablation: the paper's Theorem-2 utility
// min(c_j/|A|, r_ij) vs a naive WiFi-only utility r_ij, plus the WOLT-S
// activation-subset extension. Run on testbed-scale topologies with diverse
// PLC links, where PLC-awareness in Phase I is the whole point.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/greedy.h"
#include "core/wolt.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace wolt;
  bench::PrintHeader(
      "Abl-3 — Phase-I utility ablation",
      "Paper utility min(c_j/|A|, r_ij) vs WiFi-only r_ij, on 40\n"
      "testbed-scale topologies (3 extenders, 7 users, diverse PLC).");

  testbed::LabParams lp;
  // Exaggerate PLC diversity so backhaul-blindness hurts.
  lp.outlet_capacities_mbps = {25.0, 60.0, 160.0};
  const testbed::LabTestbed lab(lp);
  util::Rng rng(2020);
  const auto topologies = lab.GenerateTopologies(40, rng);

  core::WoltPolicy paper_utility;
  core::WoltOptions naive_opts;
  naive_opts.phase1_utility = core::Phase1Utility::kWifiOnly;
  core::WoltPolicy naive_utility(naive_opts);
  core::WoltOptions so;
  so.subset_search = true;
  core::WoltPolicy subset(so);
  core::GreedyPolicy greedy;

  const model::Evaluator evaluator;
  struct Row {
    const char* name;
    core::AssociationPolicy* policy;
    double total = 0.0;
  };
  std::vector<Row> rows = {
      {"WOLT (paper utility)", &paper_utility},
      {"WOLT (WiFi-only utility)", &naive_utility},
      {"WOLT-S (subset extension)", &subset},
      {"Greedy (reference)", &greedy},
  };
  for (const auto& net : topologies) {
    for (auto& row : rows) {
      row.total +=
          evaluator.AggregateThroughput(net, row.policy->AssociateFresh(net));
    }
  }

  util::Table table({"variant", "mean_aggregate_mbps", "vs_paper_utility"});
  const double base = rows[0].total;
  for (const auto& row : rows) {
    table.AddRow({row.name,
                  util::Fmt(row.total / static_cast<double>(topologies.size()),
                            1),
                  util::FmtPct(row.total / base - 1.0)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: dropping the PLC term from the Phase-I utility\n"
      "costs aggregate throughput when PLC links are diverse — the paper's\n"
      "core design insight.\n");
  bench::PrintFooter();
  return 0;
}
